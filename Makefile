# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test soak lint lint-invariants fmt vet

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# soak repeats the chaos and fail-stop recovery scenarios under the race
# detector. Scale is env-tunable: SKUEUE_CHAOS_MEMBERS (in-process cluster
# size), SKUEUE_CHAOS_PROC_MEMBERS / SKUEUE_CHAOS_KILLS / SKUEUE_CHAOS_OPS
# (multi-process storm), SOAK_COUNT (repetitions). Example:
#   SOAK_COUNT=5 SKUEUE_CHAOS_MEMBERS=64 SKUEUE_CHAOS_PROC_MEMBERS=8 make soak
SOAK_COUNT ?= 3

soak:
	$(GO) test -race -count=$(SOAK_COUNT) -timeout 60m \
		-run 'TestSimScenario|TestChaosProc|TestKillsLandInsideBatchWindow' \
		./internal/chaos/
	$(GO) test -race -count=$(SOAK_COUNT) -timeout 60m \
		-run 'TestMemberRestartFromSnapshot|TestStackMemberRestartExactlyOnce' \
		./internal/server/

# lint runs everything that gates a merge locally: formatting, vet, and the
# repo-specific invariant analyzers (see DESIGN.md, "Enforced invariants").
# staticcheck/govulncheck need network access to install, so CI owns those.
lint: fmt vet lint-invariants

lint-invariants:
	$(GO) run ./cmd/skueue-lint ./...
	$(GO) test ./internal/analysis/...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...
