# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test lint lint-invariants fmt vet

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint runs everything that gates a merge locally: formatting, vet, and the
# repo-specific invariant analyzers (see DESIGN.md, "Enforced invariants").
# staticcheck/govulncheck need network access to install, so CI owns those.
lint: fmt vet lint-invariants

lint-invariants:
	$(GO) run ./cmd/skueue-lint ./...
	$(GO) test ./internal/analysis/...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...
