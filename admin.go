package skueue

import "context"

// Admin is the membership sub-surface of a Client: joins, leaves and
// settling. Obtain it with Client.Admin; the zero value is not usable.
type Admin struct {
	c *Client
}

// Admin returns the membership surface of the client.
func (c *Client) Admin() Admin { return Admin{c: c} }

// Join adds a fresh process to the system through the given contact
// process (§IV-A) and returns its index. The process becomes usable once
// the next update phase integrates it; Settle waits for that.
func (a Admin) Join(contact int) (int, error) {
	c := a.c
	if c.rem != nil {
		return 0, ErrUnsupported
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	if err := c.checkProcLocked(contact); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	idx := c.cl.JoinProcess(contact)
	c.mu.Unlock()
	c.poke()
	return idx, nil
}

// Leave withdraws a process from the system (§IV-B). Its data migrates to
// the remaining members; Settle waits for the migration to finish.
func (a Admin) Leave(proc int) error {
	c := a.c
	if c.rem != nil {
		return ErrUnsupported
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if err := c.checkProcLocked(proc); err != nil {
		c.mu.Unlock()
		return err
	}
	if c.cl.Processes()[proc].Joining {
		c.mu.Unlock()
		return ErrStillJoining
	}
	c.cl.LeaveProcess(proc)
	c.mu.Unlock()
	c.poke()
	return nil
}

// Settle blocks until all pending joins and leaves finished integrating
// and the overlay is fully consistent, the context ends, or the client
// closes. Under WithManualClock it drives the engine inline on the calling
// goroutine (the bounded Client.Settle is the non-blocking alternative).
func (a Admin) Settle(ctx context.Context) error {
	if a.c.rem != nil {
		return ErrUnsupported
	}
	return a.c.await(ctx, a.c.settledLocked)
}
