package skueue_test

// Benchmark harness: one benchmark per figure and experiment of the
// paper's evaluation (see DESIGN.md §5), plus BenchmarkClientThroughput
// for the blocking client API's hot path. Each figure benchmark
// regenerates the corresponding data series at bench scale and reports the
// headline quantity via ReportMetric, so `go test -bench=. -benchmem`
// reproduces the shape of every figure. cmd/skueue-experiments prints the
// full series (and -full runs paper-scale sizes).
//
// This file lives in the external test package: the harness drives the
// experiments through the public client layer, so importing it from
// package skueue itself would be an import cycle.

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skueue"
	"skueue/internal/batch"
	"skueue/internal/core"
	"skueue/internal/harness"
	"skueue/internal/server"
	"skueue/internal/workload"
)

// benchOpts are small enough for the benchmark loop but large enough to
// show the figures' shapes.
func benchOpts() harness.Options {
	return harness.Options{
		Seed:        1,
		Sizes:       []int{64, 256},
		Ratios:      []float64{0, 0.5, 1.0},
		Probs:       []float64{0.1, 0.5, 1.0},
		Rounds:      100,
		ReqPerRound: 10,
		Fig4N:       128,
		MaxDrain:    100000,
	}
}

// reportFigure publishes every point of a figure as bench metrics. Metric
// units must not contain whitespace, so labels are kebab-cased.
func reportFigure(b *testing.B, f harness.Figure) {
	b.Helper()
	for _, s := range f.Series {
		label := strings.ReplaceAll(s.Label, " ", "-")
		for _, p := range s.Points {
			b.ReportMetric(p.Y, fmt.Sprintf("%s/x=%g", label, p.X))
		}
	}
}

// BenchmarkFigure2 regenerates paper Fig. 2: queue latency vs n for
// several enqueue ratios.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.Figure2(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkFigure3 regenerates paper Fig. 3: stack latency vs n.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.Figure3(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkFigure4 regenerates paper Fig. 4: queue vs stack under growing
// per-node request probability.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.Figure4(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkBatchSize regenerates E4 (Theorems 18 and 20): max batch size
// under one request per node per round.
func BenchmarkBatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.BatchSizes(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkFairness regenerates E5 (Lemma 4 / Corollary 19): DHT load
// balance.
func BenchmarkFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.Fairness(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkStageBreakdown regenerates E6: measured latency vs the paper's
// 3·ATH + DHT decomposition.
func BenchmarkStageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.StageBreakdown(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkChurnPhases regenerates E7 (Theorem 17): time for join/leave
// bursts to settle.
func BenchmarkChurnPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.ChurnPhases(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkBaseline regenerates E8: Skueue vs the centralized server queue
// under a total load growing with n.
func BenchmarkBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := harness.Baseline(benchOpts())
		if i == b.N-1 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkProtocolRound measures the raw cost of simulating one
// synchronous round of an idle 1000-process system — the unit everything
// above is built from.
func BenchmarkProtocolRound(b *testing.B) {
	cl, err := core.New(core.Config{Processes: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cl.Run(100) // warm the waves up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Step()
	}
}

// BenchmarkThroughput measures end-to-end operation throughput (requests
// per simulated wall-second of this host) at a moderate size.
func BenchmarkThroughput(b *testing.B) {
	cl, err := core.New(core.Config{Processes: 256, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.New(cl, workload.Spec{
		Rounds: 1 << 30, RequestsPerRound: 10, EnqRatio: 0.5,
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Step()
	}
	b.StopTimer()
	if !cl.Drain(1_000_000) {
		b.Fatal("drain failed")
	}
	if err := cl.CheckConsistency(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cl.Finished())/b.Elapsed().Seconds(), "requests/s")
}

// BenchmarkClientThroughput measures the blocking-API hot path: many
// producer/consumer goroutines hammering one autopilot client, every call
// a full submit → runner-advance → future-resolution round trip through
// the client mutex.
func BenchmarkClientThroughput(b *testing.B) {
	c, err := skueue.Open(
		skueue.WithProcesses(16),
		skueue.WithSeed(9),
		skueue.WithAutopilotQuantum(8),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	b.SetParallelism(4) // more blocked clients than GOMAXPROCS, like a real server
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		enq := true
		for pb.Next() {
			if enq {
				if err := c.Enqueue(ctx, 1); err != nil {
					b.Error(err)
					return
				}
			} else {
				if _, _, err := c.Dequeue(ctx); err != nil {
					b.Error(err)
					return
				}
			}
			enq = !enq
		}
	})
	b.StopTimer()
	if err := c.Check(); err != nil {
		b.Fatal(err)
	}
	ops := c.Stats().Total
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "client-ops/s")
}

// BenchmarkStackCombiningAblation quantifies §VI local combining: ops per
// second with and without combining at full request rate (the uncombined
// stack is also unsound — see DESIGN.md §7 — so it runs the queue-safe
// load shape only briefly).
func BenchmarkStackCombiningAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl, err := core.New(core.Config{Processes: 64, Seed: 4, Mode: batch.Stack})
		if err != nil {
			b.Fatal(err)
		}
		gen, _ := workload.New(cl, workload.Spec{Rounds: 100, PerNodeProb: 1.0, EnqRatio: 0.5}, 5)
		if !gen.Run(100000) {
			b.Fatal("drain failed")
		}
		if i == b.N-1 {
			st := cl.Metrics()
			b.ReportMetric(float64(st.CombinedOps), "combined-ops")
			b.ReportMetric(float64(st.MaxBatchRuns), "max-batch-runs")
		}
	}
}

// BenchmarkDurableThroughput measures the durable-mode hot path: a
// single-member loopback server with a state directory (operation
// journal + write-ahead snapshots) — one member, so the figure isolates
// the journal's fsync discipline instead of inter-member protocol hops —
// and 8 remote clients each keeping a 32-deep pipeline of asynchronous
// enqueues. The sub-benchmarks contrast the
// synchronous per-operation fsync baseline (JournalBatchOps: 1, the
// pre-group-commit behavior: two fsyncs per op ON the runner goroutine,
// serializing the whole member) against group commit (the default: one
// fsync per batch, off the runner); the coalesced fsyncs are the entire
// difference. EXPERIMENTS.md records the before/after numbers.
func BenchmarkDurableThroughput(b *testing.B) {
	for _, bc := range []struct {
		name     string
		batchOps int
	}{
		{"fsync-per-op", 1},
		{"group-commit", 0}, // server default (64 ops, flush-when-idle)
	} {
		b.Run(bc.name, func(b *testing.B) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			s, err := server.New(server.Config{
				Listener: l, Seed: 11, Index: 0, Members: []string{l.Addr().String()},
				Tick:     200 * time.Microsecond,
				StateDir: filepath.Join(b.TempDir(), "m0"),
				// Snapshots far apart: the figure isolates the journal's
				// fsync cost, not snapshot churn.
				SnapshotEvery:   time.Hour,
				JournalBatchOps: bc.batchOps,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()

			const clients = 8
			const depth = 32 // async ops in flight per client
			cs := make([]*skueue.Client, clients)
			for i := range cs {
				c, err := skueue.Open(skueue.WithRemote(l.Addr().String()))
				if err != nil {
					b.Fatal(err)
				}
				cs[i] = c
				defer c.Close()
			}

			b.ResetTimer()
			var ops atomic.Int64
			var wg sync.WaitGroup
			per := b.N/clients + 1
			for _, c := range cs {
				wg.Add(1)
				go func(c *skueue.Client) {
					defer wg.Done()
					ctx := context.Background()
					fs := make([]*skueue.Future, 0, depth)
					flush := func() bool {
						for _, f := range fs {
							if err := f.Wait(ctx); err != nil {
								b.Error(err)
								return false
							}
						}
						ops.Add(int64(len(fs)))
						fs = fs[:0]
						return true
					}
					for i := 0; i < per; i++ {
						f, err := c.EnqueueAsync(skueue.AnyProcess, int64(i))
						if err != nil {
							b.Error(err)
							return
						}
						fs = append(fs, f)
						if len(fs) == depth && !flush() {
							return
						}
					}
					flush()
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(ops.Load())/b.Elapsed().Seconds(), "durable-ops/s")
		})
	}
}

// BenchmarkRemoteThroughput measures the networked path end to end: a
// 3-member loopback TCP cluster (in-process servers), 8 concurrent remote
// clients, each issuing blocking enqueue/dequeue pairs over the wire. The
// figure covers the full stack — value codec, framing, member-to-member
// protocol hops, completion acks — and is the baseline for EXPERIMENTS.md
// §"Networked benchmark".
func BenchmarkRemoteThroughput(b *testing.B) {
	lis := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lis[i] = l
		addrs[i] = l.Addr().String()
	}
	srvs := make([]*server.Server, 3)
	for i := range srvs {
		s, err := server.New(server.Config{
			Listener: lis[i], Seed: 7, Index: i, Members: addrs,
			Tick: 200 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		srvs[i] = s
		defer s.Close()
	}

	const clients = 8
	cs := make([]*skueue.Client, clients)
	for i := range cs {
		c, err := skueue.Open(skueue.WithRemote(addrs[i%len(addrs)]))
		if err != nil {
			b.Fatal(err)
		}
		cs[i] = c
		defer c.Close()
	}

	b.ResetTimer()
	var ops atomic.Int64
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for _, c := range cs {
		wg.Add(1)
		go func(c *skueue.Client) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < per; i++ {
				if err := c.Enqueue(ctx, int64(i)); err != nil {
					b.Error(err)
					return
				}
				if _, _, err := c.Dequeue(ctx); err != nil {
					b.Error(err)
					return
				}
				ops.Add(2)
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(ops.Load())/b.Elapsed().Seconds(), "net-ops/s")
	if err := cs[0].Check(); err != nil {
		b.Fatal(err)
	}
}
