package skueue

import (
	"context"
	"fmt"
	"sync"

	"skueue/internal/batch"
	"skueue/internal/core"
	"skueue/internal/dht"
	"skueue/internal/seqcheck"
)

// AnyProcess lets the client choose the submitting process itself: the
// blocking operations round-robin over live, fully-joined members.
const AnyProcess = -1

// waiter is a parked Settle-style call: the autopilot closes ch once pred
// holds. Both fields are touched only under the client mutex.
type waiter struct {
	pred func() bool
	ch   chan struct{}
}

// Client is a running Skueue deployment. All methods are safe for
// concurrent use from any number of goroutines: the simulated protocol
// engine is single-threaded, so every engine access — injecting requests,
// advancing time, resolving completions — is serialized behind one mutex.
//
// By default a background autopilot goroutine advances the engine whenever
// operations or membership changes are pending, which is what makes the
// blocking methods (Enqueue, Dequeue, Admin().Settle) block instead of
// requiring the caller to pump simulated time. Open with WithManualClock
// to disable the autopilot and drive time deterministically through Step,
// Run, Drain and Settle.
type Client struct {
	manual  bool
	quantum int64
	mode    Mode
	// heapLevels is the priority-level count in heap mode (1 otherwise
	// irrelevant); remote clients adopt it from the server's HelloAck.
	heapLevels int
	// rem is set in WithRemote mode: operations round-trip to a networked
	// cluster member and cl is nil. See remote.go.
	rem *remoteClient

	mu      sync.Mutex
	cl      *core.Cluster
	closed  bool
	rr      int // round-robin cursor for AnyProcess submissions
	futures map[uint64]*Future
	values  map[dht.Element]any
	pending map[uint64]any // enqueue values awaiting element binding
	// early holds completions that fired synchronously inside the inject
	// call (locally combined stack pairs), before the future existed. The
	// client mutex covers the whole inject-then-register window, so the
	// race is now confined to this map instead of leaking to callers.
	// injecting marks that window: outside it, completions without a
	// future belong to requests injected directly on the Cluster (the
	// workload generators do that) and are not stashed.
	early     map[uint64]seqcheck.Completion
	injecting bool
	waiters   []*waiter

	wake    chan struct{} // poke the autopilot; buffered, never blocks
	quit    chan struct{} // closed by Close
	stopped chan struct{} // closed when the autopilot exits
}

// Open builds a client with all configured processes as initial members
// and, unless WithManualClock is given, starts the autopilot runner.
//
// With WithRemote the client instead connects to a networked cluster
// member and no simulated cluster is created; see the option's
// documentation for the reduced surface.
func Open(opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.remote != "" {
		return openRemote(o)
	}
	if o.processes < 1 {
		return nil, fmt.Errorf("skueue: WithProcesses(%d): need at least one process", o.processes)
	}
	if o.quantum < 1 {
		return nil, fmt.Errorf("skueue: WithAutopilotQuantum(%d): need at least one round", o.quantum)
	}
	if err := o.wan.shape().Validate(); err != nil {
		return nil, fmt.Errorf("skueue: WithWAN: %w", err)
	}
	mode := batch.Queue
	switch o.mode {
	case Stack:
		mode = batch.Stack
	case Heap:
		mode = batch.Heap
		if o.heapLevels < 1 {
			o.heapLevels = 1
		}
	}
	cl, err := core.New(core.Config{
		Processes:             o.processes,
		Seed:                  o.seed,
		Mode:                  mode,
		HeapLevels:            o.heapLevels,
		Async:                 o.async,
		MaxDelay:              o.maxDelay,
		TimeoutEvery:          o.timeoutEvery,
		ShuffleTimeouts:       o.shuffleTimeouts,
		UpdateThreshold:       o.updateThreshold,
		DisableStage4Wait:     o.noStage4Wait,
		DisableLocalCombining: o.noCombining,
		Shape:                 o.wan.shape(),
	})
	if err != nil {
		return nil, err
	}
	c := &Client{
		manual:     o.manual,
		quantum:    o.quantum,
		mode:       o.mode,
		heapLevels: o.heapLevels,
		cl:         cl,
		futures:    make(map[uint64]*Future),
		values:     make(map[dht.Element]any),
		pending:    make(map[uint64]any),
		early:      make(map[uint64]seqcheck.Completion),
		wake:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	cl.SetOnComplete(c.onComplete)
	if c.manual {
		close(c.stopped)
	} else {
		go c.autopilot()
	}
	return c, nil
}

// Close shuts the client down: the autopilot exits, parked waiters and
// future Waits return ErrClosed, and every subsequent call fails with
// ErrClosed. Closing twice returns ErrClosed as well.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	close(c.quit)
	c.mu.Unlock()
	<-c.stopped
	if c.rem != nil {
		c.rem.close()
	}
	return nil
}

// onComplete resolves the future of a finished request. It always runs
// with the client mutex held: every code path that advances the engine or
// injects a request holds it.
func (c *Client) onComplete(comp seqcheck.Completion) {
	f := c.futures[comp.ReqID]
	if f == nil {
		if c.injecting {
			c.early[comp.ReqID] = comp
		}
		return
	}
	delete(c.futures, comp.ReqID)
	f.rounds = comp.Done - comp.Born
	if comp.Kind == seqcheck.Enqueue {
		if v, ok := c.pending[comp.ReqID]; ok {
			c.values[comp.Elem] = v
			delete(c.pending, comp.ReqID)
		}
	} else {
		f.bottom = comp.Bottom
		if !comp.Bottom {
			f.value = c.values[comp.Elem]
			delete(c.values, comp.Elem)
		}
	}
	close(f.done)
}

// resolveEarlyLocked applies a completion that fired inside the inject
// call, before the future was registered.
func (c *Client) resolveEarlyLocked(id uint64) {
	if comp, ok := c.early[id]; ok {
		delete(c.early, id)
		c.onComplete(comp)
	}
}

func (c *Client) checkProcLocked(proc int) error {
	if proc < 0 || proc >= len(c.cl.Processes()) {
		return fmt.Errorf("process %d: %w", proc, ErrNoSuchProcess)
	}
	if c.cl.Processes()[proc].Left {
		return fmt.Errorf("process %d: %w", proc, ErrProcessLeft)
	}
	return nil
}

// pickLocked round-robins over live, fully-joined processes.
func (c *Client) pickLocked() (int, error) {
	procs := c.cl.Processes()
	n := len(procs)
	for i := 0; i < n; i++ {
		idx := (c.rr + i) % n
		if p := procs[idx]; !p.Left && !p.Joining {
			c.rr = (idx + 1) % n
			return idx, nil
		}
	}
	return 0, fmt.Errorf("no live member process: %w", ErrProcessLeft)
}

// submit injects one request and registers its future, all under the
// mutex so a synchronous completion (stack local combining) cannot race
// the registration. priOp marks a priority-API submission (EnqueuePri /
// DequeueMin); the flavour must match the client's mode, so priorities
// can neither be dropped silently on a queue nor invented on a heap.
func (c *Client) submit(kind seqcheck.Kind, proc int, pri int32, priOp bool, value any) (*Future, error) {
	if priOp != (c.mode == Heap) {
		return nil, fmt.Errorf("%w: %v flavour against a %v client", ErrWrongMode, flavourName(kind, priOp), c.mode)
	}
	if priOp && kind == seqcheck.Enqueue && (pri < 0 || int(pri) >= c.heapLevels) {
		return nil, fmt.Errorf("skueue: priority %d outside [0,%d)", pri, c.heapLevels)
	}
	if c.rem != nil {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return c.rem.submit(kind, proc, pri, priOp, value)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	p := proc
	if p == AnyProcess {
		var err error
		if p, err = c.pickLocked(); err != nil {
			return nil, err
		}
	} else if err := c.checkProcLocked(p); err != nil {
		return nil, err
	}
	f := &Future{c: c, kind: kind, done: make(chan struct{})}
	client := c.cl.Client(p)
	c.injecting = true
	if kind == seqcheck.Enqueue {
		f.id = c.cl.EnqueuePriBlob(client, pri, nil)
	} else {
		f.id = c.cl.Dequeue(client)
	}
	c.injecting = false
	if kind == seqcheck.Enqueue {
		c.pending[f.id] = value
	}
	c.futures[f.id] = f
	c.resolveEarlyLocked(f.id)
	return f, nil
}

// flavourName renders an operation flavour for wrong-mode errors.
func flavourName(kind seqcheck.Kind, priOp bool) string {
	switch {
	case priOp && kind == seqcheck.Enqueue:
		return "EnqueuePri"
	case priOp:
		return "DequeueMin"
	case kind == seqcheck.Enqueue:
		return "Enqueue"
	default:
		return "Dequeue"
	}
}

// block completes a submitted future: under the autopilot it waits; under
// the manual clock it pumps the engine inline on the calling goroutine
// (which keeps single-threaded use fully deterministic).
//
//skueue:awaits-future
func (c *Client) block(ctx context.Context, f *Future) error {
	if c.manual {
		return c.pumpUntil(ctx, f.done)
	}
	c.poke()
	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return ctxError(ctx.Err())
	case <-c.quit:
		return ErrClosed
	}
}

// pumpUntil drives the engine quantum by quantum until done closes or the
// context ends (manual-clock mode only).
func (c *Client) pumpUntil(ctx context.Context, done <-chan struct{}) error {
	for {
		select {
		case <-done:
			return nil
		default:
		}
		if err := ctx.Err(); err != nil {
			return ctxError(err)
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		select {
		case <-done:
			c.mu.Unlock()
			return nil
		default:
		}
		c.cl.Run(c.quantum)
		c.mu.Unlock()
	}
}

// await blocks until pred holds under the mutex. Autopilot mode parks a
// waiter the runner re-evaluates after every quantum; manual mode pumps
// inline.
func (c *Client) await(ctx context.Context, pred func() bool) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if pred() {
		c.mu.Unlock()
		return nil
	}
	if c.manual {
		// Pump quantum by quantum, releasing the mutex in between (like
		// pumpUntil) so concurrent calls and Close are not starved.
		for {
			if pred() {
				c.mu.Unlock()
				return nil
			}
			c.cl.Run(c.quantum)
			c.mu.Unlock()
			if err := ctx.Err(); err != nil {
				return ctxError(err)
			}
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				return ErrClosed
			}
		}
	}
	w := &waiter{pred: pred, ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	c.poke()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		c.removeWaiter(w)
		select {
		case <-w.ch: // satisfied concurrently with cancellation
			return nil
		default:
		}
		return ctxError(ctx.Err())
	case <-c.quit:
		c.removeWaiter(w)
		return ErrClosed
	}
}

func (c *Client) removeWaiter(w *waiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// poke nudges the autopilot; the buffered channel makes it non-blocking
// and coalesces bursts.
func (c *Client) poke() {
	if c.manual {
		return
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// autopilot is the background runner: whenever requests, waiters or
// membership changes are pending it advances the engine one quantum at a
// time, resolving futures and waiters as completions fire.
func (c *Client) autopilot() {
	defer close(c.stopped)
	for {
		select {
		case <-c.quit:
			return
		case <-c.wake:
		}
		for {
			select {
			case <-c.quit:
				return
			default:
			}
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				return
			}
			if c.idleLocked() {
				c.mu.Unlock()
				break
			}
			c.cl.Run(c.quantum)
			c.notifyWaitersLocked()
			c.mu.Unlock()
		}
	}
}

func (c *Client) idleLocked() bool {
	return c.cl.Finished() >= c.cl.Issued() &&
		len(c.waiters) == 0 &&
		c.cl.ChurnQuiescent()
}

func (c *Client) notifyWaitersLocked() {
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.pred() {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// ---- Queue operations ----

// Enqueue submits an ENQUEUE(value) at a client-chosen live process and
// blocks until the operation completes, the context ends, or the client
// closes. Safe to call from many goroutines at once.
//
// Like any distributed queue client, a context error does not retract the
// request: once submitted, the operation is in flight and will still be
// serialized, so an enqueue abandoned on timeout can land in the queue
// (and blindly retrying it can duplicate the value). Use EnqueueAsync and
// keep the Future when that distinction matters.
func (c *Client) Enqueue(ctx context.Context, value any) error {
	return c.EnqueueAt(ctx, AnyProcess, value)
}

// EnqueueAt is Enqueue pinned to a specific process (AnyProcess defers the
// choice to the client).
func (c *Client) EnqueueAt(ctx context.Context, proc int, value any) error {
	f, err := c.submit(seqcheck.Enqueue, proc, 0, false, value)
	if err != nil {
		return err
	}
	return c.block(ctx, f)
}

// Dequeue submits a DEQUEUE at a client-chosen live process and blocks
// until it completes. It returns the dequeued value and ok=true, or
// ok=false when the operation was serialized against an empty structure
// (the paper's ⊥ answer).
//
// As with Enqueue, a context error does not retract the in-flight
// request: an abandoned dequeue still takes its turn in the serialization
// and consumes an element no caller will receive. Use DequeueAsync and
// keep the Future when the element must not be lost on timeout.
func (c *Client) Dequeue(ctx context.Context) (any, bool, error) {
	return c.DequeueAt(ctx, AnyProcess)
}

// DequeueAt is Dequeue pinned to a specific process.
func (c *Client) DequeueAt(ctx context.Context, proc int) (any, bool, error) {
	f, err := c.submit(seqcheck.Dequeue, proc, 0, false, nil)
	if err != nil {
		return nil, false, err
	}
	if err := c.block(ctx, f); err != nil {
		return nil, false, err
	}
	return f.Value(), !f.Empty(), nil
}

// Push is the stack-flavoured alias of Enqueue.
func (c *Client) Push(ctx context.Context, value any) error { return c.Enqueue(ctx, value) }

// Pop is the stack-flavoured alias of Dequeue.
func (c *Client) Pop(ctx context.Context) (any, bool, error) { return c.Dequeue(ctx) }

// EnqueueAsync submits an ENQUEUE (PUSH) at the given process without
// waiting; the returned Future resolves as the simulation advances.
func (c *Client) EnqueueAsync(proc int, value any) (*Future, error) {
	f, err := c.submit(seqcheck.Enqueue, proc, 0, false, value)
	if err != nil {
		return nil, err
	}
	c.poke()
	return f, nil
}

// DequeueAsync submits a DEQUEUE (POP) at the given process without
// waiting.
func (c *Client) DequeueAsync(proc int) (*Future, error) {
	f, err := c.submit(seqcheck.Dequeue, proc, 0, false, nil)
	if err != nil {
		return nil, err
	}
	c.poke()
	return f, nil
}

// PushAsync is the stack-flavoured alias of EnqueueAsync.
func (c *Client) PushAsync(proc int, value any) (*Future, error) {
	return c.EnqueueAsync(proc, value)
}

// PopAsync is the stack-flavoured alias of DequeueAsync.
func (c *Client) PopAsync(proc int) (*Future, error) { return c.DequeueAsync(proc) }

// ---- Priority operations (heap mode, WithHeap) ----

// EnqueuePri submits an ENQUEUE(value) at priority level pri (0 is the
// most urgent) at a client-chosen live process and blocks until it
// completes. Only valid on a heap client: any other mode returns
// ErrWrongMode, as does a plain Enqueue on a heap client.
func (c *Client) EnqueuePri(ctx context.Context, pri int32, value any) error {
	return c.EnqueuePriAt(ctx, AnyProcess, pri, value)
}

// EnqueuePriAt is EnqueuePri pinned to a specific process.
func (c *Client) EnqueuePriAt(ctx context.Context, proc int, pri int32, value any) error {
	f, err := c.submit(seqcheck.Enqueue, proc, pri, true, value)
	if err != nil {
		return err
	}
	return c.block(ctx, f)
}

// DequeueMin submits a DEQUEUE-MIN at a client-chosen live process and
// blocks until it completes: it returns the oldest element of the lowest
// non-empty priority level, or ok=false for ⊥. Heap clients only
// (ErrWrongMode otherwise).
func (c *Client) DequeueMin(ctx context.Context) (any, bool, error) {
	return c.DequeueMinAt(ctx, AnyProcess)
}

// DequeueMinAt is DequeueMin pinned to a specific process.
func (c *Client) DequeueMinAt(ctx context.Context, proc int) (any, bool, error) {
	f, err := c.submit(seqcheck.Dequeue, proc, 0, true, nil)
	if err != nil {
		return nil, false, err
	}
	if err := c.block(ctx, f); err != nil {
		return nil, false, err
	}
	return f.Value(), !f.Empty(), nil
}

// EnqueuePriAsync submits an ENQUEUE at the given priority level without
// waiting.
func (c *Client) EnqueuePriAsync(proc int, pri int32, value any) (*Future, error) {
	f, err := c.submit(seqcheck.Enqueue, proc, pri, true, value)
	if err != nil {
		return nil, err
	}
	c.poke()
	return f, nil
}

// DequeueMinAsync submits a DEQUEUE-MIN without waiting.
func (c *Client) DequeueMinAsync(proc int) (*Future, error) {
	f, err := c.submit(seqcheck.Dequeue, proc, 0, true, nil)
	if err != nil {
		return nil, err
	}
	c.poke()
	return f, nil
}

// HeapLevels returns the priority-level count of a heap client (1 when
// opened with WithMode(Heap); 0 in the other modes).
func (c *Client) HeapLevels() int {
	if c.mode != Heap {
		return 0
	}
	return c.heapLevels
}

// ---- Manual clock (WithManualClock only) ----

// Step advances the simulation by one round (one event when async).
func (c *Client) Step() error {
	if !c.manual {
		return ErrAutoClock
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.cl.Step()
	return nil
}

// Run advances the simulation by n rounds (time units when async).
func (c *Client) Run(n int64) error {
	if !c.manual {
		return ErrAutoClock
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.cl.Run(n)
	return nil
}

// Drain runs until every submitted operation completed, up to maxTime; it
// reports whether the system fully drained.
func (c *Client) Drain(maxTime int64) (bool, error) {
	if !c.manual {
		return false, ErrAutoClock
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, ErrClosed
	}
	return c.cl.Drain(maxTime), nil
}

// Settle runs until all pending joins and leaves finished integrating and
// the overlay is fully consistent, up to maxTime.
func (c *Client) Settle(maxTime int64) (bool, error) {
	if !c.manual {
		return false, ErrAutoClock
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, ErrClosed
	}
	return c.cl.Engine().RunUntil(c.settledLocked, maxTime), nil
}

// settledLocked is the single definition of "churn has settled": no
// pending joins or leaves and a fully consistent overlay.
func (c *Client) settledLocked() bool {
	return c.cl.ChurnQuiescent() && c.cl.VerifyTopology() == nil
}

// ---- Introspection ----

// Check verifies the entire execution so far against the paper's
// sequential-consistency definition (Definition 1). On a remote client it
// fetches and merges the completion histories of every cluster member
// (completions are recorded where they finish) and runs the same checker
// locally — so a networked execution is verified end to end, across all
// members and all clients. A WithSession client additionally verifies its
// own session guarantees against the merged history: every outcome it was
// delivered exists exactly once, at the rank the history assigned, and in
// the session's dependency order (seqcheck.CheckSession).
func (c *Client) Check() error {
	if c.rem != nil {
		hist, err := c.rem.histories()
		if err != nil {
			return err
		}
		var cerr error
		switch c.mode {
		case Stack:
			cerr = seqcheck.Check(seqcheck.Stack, hist)
		case Heap:
			cerr = seqcheck.CheckPriority(hist, c.heapLevels)
		default:
			cerr = seqcheck.Check(seqcheck.Queue, hist)
		}
		if cerr != nil {
			return cerr
		}
		return c.rem.checkSession(hist)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cl.CheckConsistency()
}

// History returns the execution's completion history: on a remote client
// the freshly fetched and merged histories of every cluster member (the
// same data Check verifies), on an embedded cluster the local record.
// Harnesses use it to dump the execution when a check fails.
func (c *Client) History() (*seqcheck.History, error) {
	if c.rem != nil {
		return c.rem.histories()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cl.History(), nil
}

// Stats summarizes completed operations.
type Stats struct {
	Total     int
	Enqueues  int
	Dequeues  int
	Bottoms   int     // dequeues answered ⊥
	Combined  int     // stack operations completed by local combining
	AvgRounds float64 // mean request latency in simulated rounds
	MaxRounds int64
}

// Stats returns a snapshot of the completed-operation statistics. On a
// remote client they cover the whole cluster (merged member histories);
// fetch errors yield the zero Stats.
func (c *Client) Stats() Stats {
	if c.rem != nil {
		hist, err := c.rem.histories()
		if err != nil {
			return Stats{}
		}
		st := seqcheck.Summarize(hist)
		return Stats{
			Total:     st.Total,
			Enqueues:  st.Enqueues,
			Dequeues:  st.Dequeues,
			Bottoms:   st.Bottoms,
			Combined:  st.Combined,
			AvgRounds: st.AvgRounds,
			MaxRounds: st.MaxRounds,
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := seqcheck.Summarize(c.cl.History())
	return Stats{
		Total:     st.Total,
		Enqueues:  st.Enqueues,
		Dequeues:  st.Dequeues,
		Bottoms:   st.Bottoms,
		Combined:  st.Combined,
		AvgRounds: st.AvgRounds,
		MaxRounds: st.MaxRounds,
	}
}

// Metrics exposes protocol-level counters (batch sizes, waves, routing).
type Metrics struct {
	BatchesSent   int64
	MaxBatchRuns  int
	WavesAssigned int64
	UpdatePhases  int64
	ParkedGets    int64
	CombinedOps   int64
	ForwardedMsgs int64
	RouteMsgs     int64
	RouteHops     int64
	MaxQueueSize  int64
	AvgRouteHops  float64 // mean LDB routing path length
}

// Metrics returns a snapshot of the protocol metrics (zero on a remote
// client, whose members keep their own).
func (c *Client) Metrics() Metrics {
	if c.rem != nil {
		return Metrics{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.cl.Metrics()
	return Metrics{
		BatchesSent:   m.BatchesSent,
		MaxBatchRuns:  m.MaxBatchRuns,
		WavesAssigned: m.WavesAssigned,
		UpdatePhases:  m.UpdatePhases,
		ParkedGets:    m.ParkedGets,
		CombinedOps:   m.CombinedOps,
		ForwardedMsgs: m.ForwardedMsgs,
		RouteMsgs:     m.RouteMsgs,
		RouteHops:     m.RouteHops,
		MaxQueueSize:  m.MaxQueueSize,
		AvgRouteHops:  m.AvgRouteHops(),
	}
}

// Mode returns the configured semantics.
func (c *Client) Mode() Mode { return c.mode }

// NumProcesses returns the number of processes ever part of the system
// (including departed ones; their indices stay valid for bookkeeping).
// Zero on a remote client.
func (c *Client) NumProcesses() int {
	if c.rem != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cl.Processes())
}

// Stored returns the number of elements currently held in the DHT (zero
// on a remote client).
func (c *Client) Stored() int {
	if c.rem != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cl.TotalStored()
}

// Now returns the current simulated time (zero on a remote client).
func (c *Client) Now() int64 {
	if c.rem != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cl.Engine().Now()
}

// Cluster exposes the underlying protocol cluster for experiments and
// advanced inspection (nil on a remote client). The cluster is not
// concurrency-safe: use it only in WithManualClock mode, from one
// goroutine at a time.
func (c *Client) Cluster() *core.Cluster { return c.cl }
