package skueue

// Concurrency tests for the autopilot client: many goroutines over the
// blocking API, context semantics on Future.Wait, and lifecycle edges.
// All of these are meant to run under -race.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestConcurrentEnqueueDequeue(t *testing.T) {
	c, err := Open(WithProcesses(8), WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const producers, consumers, perWorker = 4, 4, 25
	const total = producers * perWorker

	var wg sync.WaitGroup
	errs := make(chan error, producers+consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := c.Enqueue(ctx, p*perWorker+i); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	got := make(chan any, total)
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Consumers race the producers, so ⊥ answers are legal;
				// retry until a value arrives.
				for {
					v, ok, err := c.Dequeue(ctx)
					if err != nil {
						errs <- err
						return
					}
					if ok {
						got <- v
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(got)
	seen := map[any]bool{}
	for v := range got {
		if seen[v] {
			t.Fatalf("value %v dequeued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), total)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedAtPinnedProcesses(t *testing.T) {
	c, err := Open(WithProcesses(4), WithSeed(32), WithMode(Stack))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.EnqueueAt(ctx, p, i); err != nil {
					t.Errorf("push at %d: %v", p, err)
					return
				}
				if _, _, err := c.DequeueAt(ctx, p); err != nil {
					t.Errorf("pop at %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFutureWaitContextCancel(t *testing.T) {
	// Manual clock with nobody driving: the operation can never complete,
	// so Wait must end through the context.
	c, err := Open(WithProcesses(2), WithSeed(33), WithManualClock())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.EnqueueAsync(0, "stuck")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait under cancellation: got %v, want context.Canceled", err)
	}
}

func TestFutureWaitContextTimeout(t *testing.T) {
	c, err := Open(WithProcesses(2), WithSeed(34), WithManualClock())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.EnqueueAsync(0, "stuck")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = f.Wait(ctx)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Wait past deadline: got %v, want ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrTimeout should wrap context.DeadlineExceeded, got %v", err)
	}
}

func TestBlockingCallContextTimeout(t *testing.T) {
	// The blocking helpers honour an already-dead context even in manual
	// mode, where they would otherwise pump the clock inline.
	c, err := Open(WithProcesses(2), WithSeed(35), WithManualClock())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := c.Enqueue(ctx, "x"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired-deadline enqueue: got %v, want ErrTimeout", err)
	}
}

func TestBlockingOpsManualModeDriveInline(t *testing.T) {
	// In manual-clock mode the blocking methods pump the engine on the
	// calling goroutine, so a single-threaded caller needs no Step/Drain.
	c, err := Open(WithProcesses(4), WithSeed(36), WithManualClock())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := c.Enqueue(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok, err := c.Dequeue(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("dequeue %d came up empty", i)
		}
		_ = v
	}
	if _, ok, err := c.Dequeue(ctx); err != nil || ok {
		t.Fatalf("drained queue should answer ⊥ (ok=%v err=%v)", ok, err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAfterClose(t *testing.T) {
	c, err := Open(WithProcesses(2), WithSeed(37), WithManualClock())
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.EnqueueAsync(0, "orphan")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Wait across Close: got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after Close")
	}
}

func TestAdminChurnUnderAutopilot(t *testing.T) {
	c, err := Open(WithProcesses(4), WithSeed(38))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	admin := c.Admin()

	for i := 0; i < 6; i++ {
		if err := c.EnqueueAt(ctx, i%4, i); err != nil {
			t.Fatal(err)
		}
	}
	p, err := admin.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.EnqueueAt(ctx, p, "joiner"); err != nil {
		t.Fatal(err)
	}
	if err := admin.Leave(1); err != nil {
		t.Fatal(err)
	}
	if err := admin.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	values := 0
	for {
		_, ok, err := c.Dequeue(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		values++
	}
	if values != 7 {
		t.Fatalf("recovered %d values across churn, want 7", values)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSettleContextCancel(t *testing.T) {
	c, err := Open(WithProcesses(3), WithSeed(39), WithManualClock())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Admin().Join(0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := c.Admin().Settle(ctx); !errors.Is(err, ErrTimeout) {
		t.Fatalf("settle past deadline: got %v, want ErrTimeout", err)
	}
	// A live context then settles normally (manual mode pumps inline).
	if err := c.Admin().Settle(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinSkipsDeparted(t *testing.T) {
	c, err := Open(WithProcesses(3), WithSeed(40))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Admin().Leave(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Admin().Settle(ctx); err != nil {
		t.Fatal(err)
	}
	// AnyProcess submissions must keep working, silently skipping the
	// departed member.
	for i := 0; i < 8; i++ {
		if err := c.Enqueue(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, ok, err := c.Dequeue(ctx); err != nil || !ok {
			t.Fatalf("dequeue %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}
