// skueue-benchjson renders `go test -bench` output into the
// BENCH_micro.json artifact committed by the bench-smoke CI job.
//
// The artifact's shape is fixed by BENCH_micro.schema.json at the repo
// root (schema id "skueue/bench-micro/v1"); the Report and Benchmark
// structs here are that schema's source of truth. Every benchmark line
// becomes one entry carrying the iteration count and every metric the
// benchmark reported (ns/op plus custom ReportMetric units such as
// client-ops/s, net-ops/s and durable-ops/s), so successive CI runs
// form a comparable perf trajectory instead of a pile of free-text
// logs.
//
// Usage:
//
//	go test -bench 'ClientThroughput|...' -run '^$' | skueue-benchjson \
//	    -sha "$GITHUB_SHA" -require client-ops/s,net-ops/s,durable-ops/s \
//	    -o BENCH_micro.json
//
// -require makes the job fail loudly when an expected headline metric
// is missing (a renamed or silently-skipped benchmark would otherwise
// publish a hollow artifact).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Report is the top-level BENCH_micro.json document.
type Report struct {
	Schema     string      `json:"schema"` // always "skueue/bench-micro/v1"
	GitSHA     string      `json:"git_sha,omitempty"`
	Timestamp  string      `json:"timestamp"` // RFC 3339, UTC
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkX[/sub]-P  N  v unit [v unit ...]` line.
type Benchmark struct {
	Name       string             `json:"name"`  // "DurableThroughput/group-commit"
	Procs      int                `json:"procs"` // the -P GOMAXPROCS suffix
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit → value, e.g. "ns/op", "client-ops/s"
}

const schemaID = "skueue/bench-micro/v1"

func main() {
	out := flag.String("o", "BENCH_micro.json", "output file (\"-\" for stdout)")
	sha := flag.String("sha", "", "git commit recorded in the artifact (default: git rev-parse HEAD)")
	require := flag.String("require", "", "comma-separated metric units that must each appear in at least one benchmark")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	rep.GitSHA = *sha
	if rep.GitSHA == "" {
		if b, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
			rep.GitSHA = strings.TrimSpace(string(b))
		}
	}
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	if missing := missingMetrics(rep, *require); len(missing) > 0 {
		fatal(fmt.Errorf("required metrics absent from benchmark output: %s", strings.Join(missing, ", ")))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "skueue-benchjson: %d benchmark(s) → %s\n", len(rep.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skueue-benchjson:", err)
	os.Exit(1)
}

// parse consumes `go test -bench` output: the goos/goarch/pkg/cpu
// preamble and every Benchmark line; everything else (PASS, ok, test
// logs) is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: schemaID, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBench splits one result line. Fields: name-P, iterations, then
// (value, unit) pairs. A bare "BenchmarkX" line with no fields (printed
// when -v interleaves) is skipped, not an error.
func parseBench(line string) (Benchmark, bool, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Metrics: map[string]float64{}}
	b.Name = strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("iteration count %q: %w", f[1], err)
	}
	b.Iterations = n
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("odd metric field count %d", len(rest))
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("metric value %q: %w", rest[i], err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true, nil
}

// missingMetrics returns the units from the comma-separated require
// list that no parsed benchmark reported.
func missingMetrics(rep *Report, require string) []string {
	var missing []string
	for _, unit := range strings.Split(require, ",") {
		unit = strings.TrimSpace(unit)
		if unit == "" {
			continue
		}
		found := false
		for _, b := range rep.Benchmarks {
			if _, ok := b.Metrics[unit]; ok {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, unit)
		}
	}
	return missing
}
