package main

import (
	"strings"
	"testing"
)

// sample is real-shaped `go test -bench` output: preamble, plain and
// sub-benchmark lines, custom ReportMetric units, and noise lines
// (PASS/ok/log output) that the parser must ignore.
const sample = `goos: linux
goarch: amd64
pkg: skueue
cpu: AMD EPYC 7B13
BenchmarkClientThroughput-8   	  213504	      5613 ns/op	    356216 client-ops/s
BenchmarkRemoteThroughput-8   	   60278	     19858 ns/op	    100714 net-ops/s
BenchmarkDurableThroughput/fsync-per-op-8         	    4476	    266932 ns/op	      3745 durable-ops/s
BenchmarkDurableThroughput/group-commit-8         	   63708	     18663 ns/op	     53585 durable-ops/s
PASS
ok  	skueue	12.446s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != schemaID {
		t.Errorf("schema = %q, want %q", rep.Schema, schemaID)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "skueue" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("preamble = %q/%q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg, rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	ct := rep.Benchmarks[0]
	if ct.Name != "ClientThroughput" || ct.Procs != 8 || ct.Iterations != 213504 {
		t.Errorf("first benchmark = %+v", ct)
	}
	if ct.Metrics["ns/op"] != 5613 || ct.Metrics["client-ops/s"] != 356216 {
		t.Errorf("ClientThroughput metrics = %v", ct.Metrics)
	}
	gc := rep.Benchmarks[3]
	if gc.Name != "DurableThroughput/group-commit" {
		t.Errorf("sub-benchmark name = %q", gc.Name)
	}
	if gc.Metrics["durable-ops/s"] != 53585 {
		t.Errorf("group-commit metrics = %v", gc.Metrics)
	}
}

// TestRequire: the CI job lists the three headline units; a renamed or
// skipped benchmark must fail the run, not publish a hollow artifact.
func TestRequire(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if m := missingMetrics(rep, "client-ops/s, net-ops/s, durable-ops/s"); len(m) != 0 {
		t.Errorf("headline units reported missing: %v", m)
	}
	if m := missingMetrics(rep, "client-ops/s,frobnication/s"); len(m) != 1 || m[0] != "frobnication/s" {
		t.Errorf("missing = %v, want [frobnication/s]", m)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 10 5 ns/op 7", // dangling value without a unit
		"BenchmarkX-8 10 five ns/op",
	} {
		if _, err := parse(strings.NewReader(bad)); err == nil {
			t.Errorf("parse(%q) accepted malformed line", bad)
		}
	}
	// A bare in-progress line (from -v interleaving) is skipped silently.
	rep, err := parse(strings.NewReader("BenchmarkClientThroughput\n"))
	if err != nil || len(rep.Benchmarks) != 0 {
		t.Errorf("bare benchmark line: benchmarks=%d err=%v, want 0/nil", len(rep.Benchmarks), err)
	}
}
