// Command skueue-chaos is the scale-out chaos and capacity harness CLI:
// it launches large Skueue clusters, drives sustained mixed workloads
// under WAN shaping and fault storms, verifies every run against the
// paper's Definition 1, and writes a machine-readable BENCH_<scenario>.json
// so runs accumulate into a perf trajectory across commits.
//
// Two scenario families:
//
//	# In-process scaling sweep: simulator clusters at several member
//	# counts, each riding out a join/leave churn storm under a WAN
//	# profile. Latency is reported in simulated rounds (protocol
//	# fidelity), throughput in completed ops per wall-clock second
//	# (harness capacity).
//	skueue-chaos -scenario scaling -members 16,32,64,100 \
//	    -rounds 120 -requests-per-round 4 -joins 3 -leaves 3 \
//	    -wan-latency 2ms -wan-jitter 2ms -wan-loss 0.02 -out .
//
//	# Multi-process kill/restart storm: real skueue-server processes on
//	# loopback with durable state, remote clients driving traffic while
//	# members are SIGKILLed inside journal group-commit windows and
//	# restarted from their state directories. Exact element accounting
//	# plus the Definition 1 check must both pass for the run to count.
//	# By default workers ride durable client sessions (-sessions=true):
//	# kills cost latency, not outcomes, and each worker's session order
//	# is verified against the merged history; -sessions=false reverts to
//	# ephemeral fail-fast connections.
//	skueue-chaos -scenario proc -proc-members 16 -workers 8 \
//	    -ops-per-worker 150 -kills 3 -out .
//
// The proc scenario needs a skueue-server binary; with no -server-bin it
// builds one with `go build` (run from inside the repo).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"skueue"
	"skueue/internal/chaos"
	"skueue/internal/transport"
)

func main() {
	var (
		scenario = flag.String("scenario", "scaling", "scenario: scaling (in-process sweep) or proc (multi-process kill/restart storm)")
		mode     = flag.String("mode", "queue", "semantics: queue, stack, or heap (proc only)")
		seed     = flag.Int64("seed", 1, "random seed (runs are reproducible from it)")
		out      = flag.String("out", ".", "directory for the BENCH_<scenario>.json file")
		verbose  = flag.Bool("v", false, "log scenario progress")

		// WAN shaping (both scenario families).
		wanLatency = flag.Duration("wan-latency", 0, "WAN shaping: base one-way delay per message")
		wanJitter  = flag.Duration("wan-jitter", 0, "WAN shaping: uniform extra delay in [0, jitter)")
		wanLoss    = flag.Float64("wan-loss", 0, "WAN shaping: per-attempt loss probability in [0, 1), charged as retransmission delay")
		wanRTO     = flag.Duration("wan-rto", 0, "WAN shaping: retransmission timeout (default 4x latency)")
		roundLen   = flag.Duration("round-length", 0, "simulated duration of one synchronous round (default 1ms; scaling only)")

		// Scaling sweep (in-process simulator).
		members  = flag.String("members", "16,32,64", "comma-separated member counts for the scaling sweep")
		rounds   = flag.Int("rounds", 120, "request generation rounds per point")
		rpr      = flag.Int("requests-per-round", 4, "requests per generation round")
		enqRatio = flag.Float64("enq-ratio", 0.6, "probability an op is an enqueue/push")
		joins    = flag.Int("joins", 2, "churn storm joins per point (scaling)")
		leaves   = flag.Int("leaves", 2, "churn storm leaves per point (scaling)")
		maxDrain = flag.Int64("max-drain", 0, "drain round budget per point (0: default)")

		// Multi-process storm.
		serverBin   = flag.String("server-bin", "", "skueue-server binary (empty: go build one, requires running inside the repo)")
		procMembers = flag.Int("proc-members", 8, "cluster size for the proc scenario")
		workers     = flag.Int("workers", 8, "concurrent client workers (proc)")
		opsPer      = flag.Int("ops-per-worker", 150, "operations per worker (proc)")
		kills       = flag.Int("kills", 2, "kill/restart pairs in the storm (proc)")
		stormStart  = flag.Duration("storm-start", 300*time.Millisecond, "first kill offset from traffic start (proc)")
		stormEvery  = flag.Duration("storm-every", 900*time.Millisecond, "nominal spacing between kills (proc)")
		downtime    = flag.Duration("storm-downtime", 250*time.Millisecond, "victim downtime before restart (proc)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "journal group-commit window the kills are phase-aligned into (proc)")
		snapEvery   = flag.Duration("snapshot-every", 50*time.Millisecond, "server snapshot cadence (proc)")
		tick        = flag.Duration("tick", 500*time.Microsecond, "server protocol TIMEOUT cadence (proc)")
		batchOps    = flag.Int("journal-batch-ops", 0, "server journal group-commit op cap (proc; 0: server default)")
		batchDelay  = flag.Duration("journal-batch-delay", 2*time.Millisecond, "server journal batch hold time (proc; should match -batch-window)")
		sessions    = flag.Bool("sessions", true, "drive proc traffic through durable client sessions (WithSession + reconnect) instead of ephemeral fail-fast connections")
		stateDir    = flag.String("state-dir", "", "state/log directory for the proc cluster (empty: fresh temp dir)")
		heapLevels  = flag.Int("heap-levels", 4, "priority levels for -mode heap (proc)")
	)
	flag.Parse()

	var m skueue.Mode
	switch *mode {
	case "queue":
		m = skueue.Queue
	case "stack":
		m = skueue.Stack
	case "heap":
		m = skueue.Heap
	default:
		log.Fatalf("skueue-chaos: unknown -mode %q (want queue, stack, or heap)", *mode)
	}
	wan := skueue.WANProfile{
		Latency: *wanLatency, Jitter: *wanJitter, Loss: *wanLoss,
		RTO: *wanRTO, RoundLength: *roundLen,
	}
	shape := transport.Shape{Latency: *wanLatency, Jitter: *wanJitter, Loss: *wanLoss, RTO: *wanRTO, Round: *roundLen}
	if err := shape.Validate(); err != nil {
		log.Fatalf("skueue-chaos: %v", err)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	bench := &chaos.Bench{Scenario: *scenario, Mode: *mode, Seed: *seed, WAN: shape.String()}

	switch *scenario {
	case "scaling", "storm":
		if m == skueue.Heap {
			log.Fatalf("skueue-chaos: the in-process scaling sweep drives the plain enqueue/dequeue workload; heap mode runs under -scenario proc")
		}
		sizes, err := parseSizes(*members)
		if err != nil {
			log.Fatalf("skueue-chaos: %v", err)
		}
		bench.Workload = fmt.Sprintf("%d rounds x %d req/round, enq %.2f, churn %d+%d",
			*rounds, *rpr, *enqRatio, *joins, *leaves)
		for _, n := range sizes {
			sc := chaos.SimScenario{
				Mode: m, Members: n, Rounds: *rounds, RequestsPerRound: *rpr,
				EnqRatio: *enqRatio, MaxDrain: *maxDrain, Seed: *seed,
				WAN: wan, Joins: *joins, Leaves: *leaves,
			}
			logf("skueue-chaos: running %d members...", n)
			res, err := chaos.RunSim(sc)
			if err != nil {
				log.Fatalf("skueue-chaos: %v", err)
			}
			p := res.Point(n)
			bench.AddPoint(p)
			fmt.Printf("members=%-4d ops=%-6d ops/s=%-9.0f p50=%dr p99=%dr p999=%dr avg=%.1fr faults=%d/%d\n",
				n, p.Ops, p.OpsPerSec, p.P50, p.P99, p.P999, p.AvgRounds, p.Faults.Joins, p.Faults.Leaves)
		}

	case "proc":
		bin, cleanup, err := ensureServerBin(*serverBin)
		if err != nil {
			log.Fatalf("skueue-chaos: %v", err)
		}
		defer cleanup()
		kindWord := "ephemeral"
		if *sessions {
			kindWord = "sessions"
		}
		bench.Workload = fmt.Sprintf("%d workers x %d ops, enq %.2f, %d kills, %s",
			*workers, *opsPer, *enqRatio, *kills, kindWord)
		lv := 0
		if m == skueue.Heap {
			lv = *heapLevels
			// Heap runs get their own BENCH file so the nightly's queue
			// and heap storms don't overwrite each other's artifact.
			bench.Scenario = "proc-heap"
		}
		sc := chaos.ProcScenario{
			Bin: bin, Members: *procMembers, Mode: *mode, HeapLevels: lv, Seed: *seed,
			Workers: *workers, OpsPerWorker: *opsPer, EnqRatio: *enqRatio,
			Sessions: *sessions,
			Storm: chaos.StormSpec{
				Kills: *kills, Start: *stormStart, Every: *stormEvery,
				Downtime: *downtime, BatchWindow: *batchWindow,
			},
			WANLatency: *wanLatency, WANJitter: *wanJitter, WANLoss: *wanLoss,
			SnapshotEvery: *snapEvery, Tick: *tick,
			JournalBatchOps: *batchOps, JournalBatchDelay: *batchDelay,
			BaseDir: *stateDir, Logf: logf,
		}
		res, err := chaos.RunProc(sc)
		if err != nil {
			log.Fatalf("skueue-chaos: %v", err)
		}
		p := res.Point()
		bench.AddPoint(p)
		fmt.Printf("members=%-4d ops=%-6d ops/s=%-9.0f p50=%dus p99=%dus p999=%dus kills=%d confirmed=%d maybe=%d drained=%d\n",
			p.Members, p.Ops, p.OpsPerSec, p.P50, p.P99, p.P999,
			p.Faults.Kills, res.Confirmed, res.MaybeEnqueued, res.Drained)

	default:
		log.Fatalf("skueue-chaos: unknown -scenario %q (want scaling or proc)", *scenario)
	}

	bench.Stamp(".")
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("skueue-chaos: %v", err)
	}
	path, err := bench.WriteFile(*out)
	if err != nil {
		log.Fatalf("skueue-chaos: %v", err)
	}
	fmt.Printf("wrote %s\n", path)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -members entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-members is empty")
	}
	return out, nil
}

// ensureServerBin returns the skueue-server binary to use, building one
// into a temp dir when none was supplied.
func ensureServerBin(path string) (string, func(), error) {
	if path != "" {
		return path, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "skueue-chaos-bin-*")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "skueue-server")
	out, err := exec.Command("go", "build", "-o", bin, "skueue/cmd/skueue-server").CombinedOutput()
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building skueue-server (pass -server-bin, or run inside the repo): %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}
