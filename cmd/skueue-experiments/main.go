// Command skueue-experiments regenerates the paper's evaluation figures
// and the additional experiments from DESIGN.md §5.
//
//	skueue-experiments -fig all          # quick, laptop-sized sweep
//	skueue-experiments -fig fig2 -full   # paper-scale (slow)
//
// Experiments: fig2, fig3, fig4 (the paper's figures), batchsize (Thm 18 /
// Thm 20), fairness (Lemma 4), stages (§VII-B decomposition), churn
// (Thm 17), baseline (central-server comparison).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skueue/internal/harness"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "experiment id or 'all' ("+strings.Join(harness.IDs(), ", ")+")")
		full   = flag.Bool("full", false, "paper-scale sizes (n up to 100000, 1000 rounds)")
		seed   = flag.Int64("seed", 1, "random seed")
		sizes  = flag.String("sizes", "", "comma-separated process counts (overrides preset)")
		rounds = flag.Int("rounds", 0, "request generation rounds (overrides preset)")
		csv    = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	)
	flag.Parse()

	o := harness.Defaults(*full)
	o.Seed = *seed
	if *sizes != "" {
		o.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "bad -sizes entry %q\n", s)
				os.Exit(2)
			}
			o.Sizes = append(o.Sizes, v)
		}
	}
	if *rounds > 0 {
		o.Rounds = *rounds
	}

	run := func(id string) {
		gen, ok := harness.All()[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", id, strings.Join(harness.IDs(), ", "))
			os.Exit(2)
		}
		f := gen(o)
		if *csv {
			fmt.Print(f.CSV())
			return
		}
		fmt.Println(f.Render())
	}

	if *fig == "all" {
		for _, id := range harness.IDs() {
			run(id)
		}
		return
	}
	run(*fig)
}
