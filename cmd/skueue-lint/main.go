// Command skueue-lint runs the repo's invariant analyzers (package
// skueue/internal/analysis) over the module and exits non-zero if any
// invariant is violated.
//
// Usage:
//
//	go run ./cmd/skueue-lint [-list] [-only name,name] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// are suppressed line-by-line with a justified comment:
//
//	//skueue:ignore <analyzer>[,<analyzer>] -- reason
//
// The standalone driver replaces the usual `go vet -vettool` entry
// point, which requires golang.org/x/tools' unitchecker; this build is
// self-contained so the suite works in offline environments.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skueue/internal/analysis"
	"skueue/internal/analysis/all"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range all.Analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all.Analyzers
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		analyzers = nil
		for _, a := range all.Analyzers {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "skueue-lint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "skueue-lint:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skueue-lint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "skueue-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
