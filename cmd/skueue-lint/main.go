// Command skueue-lint runs the repo's invariant analyzers (package
// skueue/internal/analysis) over the module and exits non-zero if any
// invariant is violated.
//
// Usage:
//
//	go run ./cmd/skueue-lint [-list] [-only name,name] [-json] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// are suppressed line-by-line with a justified comment:
//
//	//skueue:ignore <analyzer>[,<analyzer>] -- reason
//
// With -json, findings are written to stdout as a JSON array of
// {analyzer, file, line, column, message} objects (an empty array when
// clean), so CI can post them as annotations without scraping text.
//
// The standalone driver replaces the usual `go vet -vettool` entry
// point, which requires golang.org/x/tools' unitchecker; this build is
// self-contained so the suite works in offline environments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"skueue/internal/analysis"
	"skueue/internal/analysis/all"
)

// moduleRoot walks up from dir to the directory holding go.mod; dir
// itself if no module is found (paths then stay absolute).
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive the
// flag handling and output formats in-process. The return value is the
// process exit code: 0 clean, 1 findings, 2 usage or load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("skueue-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all.Analyzers
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		analyzers = nil
		for _, a := range all.Analyzers {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, fmt.Sprintf("%q", name))
			}
			sort.Strings(unknown)
			valid := make([]string, 0, len(all.Analyzers))
			for _, a := range all.Analyzers {
				valid = append(valid, a.Name)
			}
			fmt.Fprintf(stderr, "skueue-lint: unknown analyzer %s (valid: %s)\n",
				strings.Join(unknown, ", "), strings.Join(valid, ", "))
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "skueue-lint:", err)
		return 2
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "skueue-lint:", err)
		return 2
	}
	diags := analysis.Run(prog, analyzers)
	if *asJSON {
		root := moduleRoot(cwd)
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			// Report paths relative to the module root so CI can map
			// findings onto the checkout without knowing our absolute
			// workspace root.
			file := d.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     file,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "skueue-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "skueue-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
