package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestUnknownOnlyListsValidNames: a typo in -only must fail fast (exit 2)
// and name every valid analyzer, so the caller can fix the invocation
// without reading the source.
func TestUnknownOnlyListsValidNames(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nosuch,guardedby"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, `"nosuch"`) {
		t.Errorf("stderr does not name the unknown analyzer: %s", msg)
	}
	for _, name := range []string{"guardedby", "statecomplete", "lockorder", "wirereg"} {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr does not list valid analyzer %q: %s", name, msg)
		}
	}
}

// TestListExitsZero guards the -list path (no load, no findings).
func TestListExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "statecomplete") {
		t.Errorf("-list output missing an analyzer:\n%s", stdout.String())
	}
}

// TestJSONFindings runs the guardedby analyzer over its own golden
// fixture (a package full of intentional violations) and checks the
// -json output carries machine-readable findings with repo-relative
// paths. A clean package must yield an empty array, not null.
func TestJSONFindings(t *testing.T) {
	fixture := "../../internal/analysis/guardedby/testdata/src/guarded"
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-only", "guardedby", fixture}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has intentional findings); stderr: %s", code, stderr.String())
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded from a fixture full of violations")
	}
	for _, f := range findings {
		if f.Analyzer != "guardedby" {
			t.Errorf("finding from analyzer %q leaked through -only guardedby", f.Analyzer)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute, want repo-relative", f.File)
		}
		if f.Line <= 0 || f.Column <= 0 {
			t.Errorf("finding at %s has no position: line %d col %d", f.File, f.Line, f.Column)
		}
		if f.Message == "" {
			t.Errorf("finding at %s:%d has an empty message", f.File, f.Line)
		}
	}

	// Clean package: an empty array, exit 0.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-json", "-only", "guardedby", "../../internal/xrand"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("clean package exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean package output = %q, want []", got)
	}
}
