// Command skueue-server hosts one member of a networked Skueue cluster:
// its share of the protocol's virtual nodes runs over the TCP transport,
// and the same port serves remote clients (skueue.Open with WithRemote).
//
// Bootstrap a 3-member cluster on one machine:
//
//	skueue-server -addr 127.0.0.1:7001 -index 0 -members 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	skueue-server -addr 127.0.0.1:7002 -index 1 -members 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	skueue-server -addr 127.0.0.1:7003 -index 2 -members 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//
// All bootstrap members must agree on -members, -procs, -seed, -mode and
// (in heap mode) -heap-levels; the topology is derived deterministically
// from them, so the members wire themselves without any coordination
// traffic.
//
// Add a fourth member later by pointing it at the seed (member 0):
//
//	skueue-server -addr 127.0.0.1:7004 -join 127.0.0.1:7001
//
// The newcomer is admitted by the seed and integrated through the paper's
// JOIN protocol (§IV-A).
//
// Fail-stop recovery: give each member a -state directory and it
// persists write-ahead snapshots of its DHT fragment and queue, stack or
// heap state (all -mode values are recoverable), plus an operation journal
// that makes client operations exactly-once across a crash. A crashed
// member restarts from the snapshot with the same flags — it re-submits
// the journaled operations the snapshot misses, re-announces its address
// through the seed (-join), and its peers replay everything else:
//
//	skueue-server -addr 127.0.0.1:7002 -state /var/lib/skueue/m1 -join 127.0.0.1:7001
//
// -give-up bounds how long the member waits for an unreachable peer (or
// seed) before failing pending operations (or exiting) with a clear
// error instead of blocking forever; 0 waits indefinitely.
//
// Durable-mode throughput is governed by the journal's group commit:
// instead of fsyncing every operation on the submission path, a journal
// writer coalesces concurrent operations into one write+fsync per batch
// and releases their confirmations only after the sync — the same
// durability contract, a fraction of the disk syncs. -journal-batch-ops
// caps how many operations one batch may coalesce (default 64; 1
// restores the synchronous per-operation fsync), and -journal-batch-delay
// deliberately holds a batch open to accumulate more operations: zero
// (the default) adds no latency — batches only form while a previous
// fsync is in flight — while e.g. 2ms trades up to that much confirmation
// latency for fewer, larger syncs on slow disks:
//
//	skueue-server -addr 127.0.0.1:7002 -state /var/lib/skueue/m1 \
//	    -join 127.0.0.1:7001 -journal-batch-ops 256 -journal-batch-delay 2ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skueue/internal/server"
	"skueue/internal/transport"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7001", "listen address")
		seed       = flag.Int64("seed", 1, "cluster-wide seed (bootstrap members must agree)")
		mode       = flag.String("mode", "queue", "semantics: queue, stack or heap")
		heapLvls   = flag.Int("heap-levels", 0, "priority levels in heap mode (default 4)")
		index      = flag.Int("index", 0, "this member's index into -members")
		members    = flag.String("members", "", "comma-separated bootstrap member addresses")
		procs      = flag.Int("procs", 0, "total bootstrap processes (default: one per member)")
		join       = flag.String("join", "", "join a running cluster via this seed address (ignores bootstrap flags)")
		state      = flag.String("state", "", "state directory for fail-stop snapshots and the operation journal (empty: no persistence)")
		snapEv     = flag.Duration("snapshot-every", 250*time.Millisecond, "write-ahead snapshot cadence (with -state)")
		batchOps   = flag.Int("journal-batch-ops", 0, "journal group-commit op cap: flush once this many ops are staged (0: default 64; 1: synchronous per-op fsync)")
		batchDelay = flag.Duration("journal-batch-delay", 0, "hold a journal batch open this long to accumulate ops before the fsync (0: flush when idle)")
		giveUp     = flag.Duration("give-up", 0, "declare an unreachable member dead after this long (0: wait forever)")
		tick       = flag.Duration("tick", time.Millisecond, "protocol TIMEOUT cadence")
		wanLatency = flag.Duration("wan-latency", 0, "WAN shaping: base one-way delay added to inbound peer frames")
		wanJitter  = flag.Duration("wan-jitter", 0, "WAN shaping: uniform extra delay in [0, jitter)")
		wanLoss    = flag.Float64("wan-loss", 0, "WAN shaping: per-attempt loss probability in [0, 1), charged as retransmission delay")
		verbose    = flag.Bool("v", false, "log transport diagnostics")
	)
	flag.Parse()

	shape := transport.Shape{Latency: *wanLatency, Jitter: *wanJitter, Loss: *wanLoss}
	if err := shape.Validate(); err != nil {
		log.Fatalf("skueue-server: %v", err)
	}

	cfg := server.Config{
		Addr:              *addr,
		Seed:              *seed,
		Mode:              *mode,
		HeapLevels:        *heapLvls,
		Tick:              *tick,
		Join:              *join,
		StateDir:          *state,
		SnapshotEvery:     *snapEv,
		JournalBatchOps:   *batchOps,
		JournalBatchDelay: *batchDelay,
		GiveUp:            *giveUp,
		Shape:             shape,
	}
	if *join == "" {
		if *members == "" {
			fmt.Fprintln(os.Stderr, "skueue-server: need -members for bootstrap or -join for admission")
			os.Exit(2)
		}
		cfg.Index = *index
		cfg.Members = strings.Split(*members, ",")
		cfg.Procs = *procs
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("skueue-server: %v", err)
	}
	if *join != "" {
		log.Printf("skueue-server: joined cluster via %s, serving on %s", *join, s.Addr())
	} else {
		log.Printf("skueue-server: member %d of %d serving on %s (mode=%s seed=%d)",
			*index, len(cfg.Members), s.Addr(), *mode, *seed)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("skueue-server: shutting down")
	s.Close()
}
