// Command skueue-sim runs a single configured Skueue simulation under the
// paper's workload model and reports latency statistics, protocol metrics
// and the sequential-consistency verdict. It opens the public client in
// manual-clock mode, so every run is exactly reproducible from its seed.
//
// Example:
//
//	skueue-sim -n 1000 -rounds 500 -rate 10 -ratio 0.5 -mode queue
package main

import (
	"flag"
	"fmt"
	"os"

	"skueue"
	"skueue/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of processes")
		seed    = flag.Int64("seed", 1, "random seed")
		mode    = flag.String("mode", "queue", "queue or stack")
		rounds  = flag.Int("rounds", 200, "request generation rounds")
		rate    = flag.Int("rate", 10, "requests per round (0 to use -prob)")
		prob    = flag.Float64("prob", 0, "per-node request probability per round")
		ratio   = flag.Float64("ratio", 0.5, "enqueue/push ratio")
		async   = flag.Bool("async", false, "fully asynchronous message passing")
		drain   = flag.Int64("drain", 100000, "max drain time after generation")
		verbose = flag.Bool("v", false, "print per-figure diagnostics")
	)
	flag.Parse()

	m := skueue.Queue
	if *mode == "stack" {
		m = skueue.Stack
	} else if *mode != "queue" {
		fmt.Fprintln(os.Stderr, "mode must be queue or stack")
		os.Exit(2)
	}
	opts := []skueue.Option{
		skueue.WithManualClock(),
		skueue.WithProcesses(*n),
		skueue.WithSeed(*seed),
		skueue.WithMode(m),
	}
	if *async {
		opts = append(opts, skueue.WithAsync())
	}
	c, err := skueue.Open(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer c.Close()
	spec := workload.Spec{Rounds: *rounds, RequestsPerRound: *rate, PerNodeProb: *prob, EnqRatio: *ratio}
	if *prob > 0 {
		spec.RequestsPerRound = 0
	}
	gen, err := workload.New(c.Cluster(), spec, *seed+7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !gen.Run(*drain) {
		fmt.Fprintf(os.Stderr, "did not drain: %d of %d requests finished\n",
			c.Cluster().Finished(), c.Cluster().Issued())
		os.Exit(1)
	}
	st := c.Stats()
	met := c.Metrics()
	fmt.Printf("mode=%s n=%d rounds=%d requests=%d\n", m, *n, *rounds, st.Total)
	fmt.Printf("avg rounds/request: %.2f (max %d)\n", st.AvgRounds, st.MaxRounds)
	fmt.Printf("enqueues=%d dequeues=%d bottoms=%d combined=%d\n", st.Enqueues, st.Dequeues, st.Bottoms, st.Combined)
	fmt.Printf("waves=%d maxBatchRuns=%d avgRouteHops=%.1f parkedGets=%d maxQueueSize=%d\n",
		met.WavesAssigned, met.MaxBatchRuns, met.AvgRouteHops, met.ParkedGets, met.MaxQueueSize)
	if *verbose {
		fmt.Printf("tree height (ATH): %d\n", c.Cluster().TreeHeight())
		eng := c.Cluster().Engine().Stats()
		fmt.Printf("messages: %d sent, %d delivered\n", eng.MessagesSent, eng.MessagesDelivered)
	}
	if err := c.Check(); err != nil {
		fmt.Printf("sequential consistency: VIOLATED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("sequential consistency: OK (Definition 1 verified over the full history)")
}
