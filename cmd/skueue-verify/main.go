// Command skueue-verify tortures the protocol for sequential consistency:
// many seeds of adversarial asynchronous schedules with churn, for both
// the queue and the stack, each execution checked against Definition 1.
// With -stack-no-wait it instead demonstrates the §VI counterexample by
// disabling the stage-4 completion wait and counting how many seeds
// violate consistency (E9 in DESIGN.md).
//
// The torture loop runs the public client in manual-clock mode and
// injects requests at every virtual node (not only the per-process client
// node) through the advanced Cluster surface, to keep the schedule
// coverage the adversarial test needs.
package main

import (
	"flag"
	"fmt"
	"os"

	"skueue"
	"skueue/internal/xrand"
)

func runSeed(mode skueue.Mode, seed int64, churn, noWait bool) (drained bool, err error) {
	opts := []skueue.Option{
		skueue.WithManualClock(),
		skueue.WithProcesses(4),
		skueue.WithSeed(seed),
		skueue.WithMode(mode),
		skueue.WithAsync(),
		skueue.WithAsyncDelays(16, 5),
	}
	if noWait {
		opts = append(opts, skueue.WithoutStage4Wait(), skueue.WithoutLocalCombining())
	}
	c, e := skueue.Open(opts...)
	if e != nil {
		return false, e
	}
	defer c.Close()
	cl := c.Cluster()
	rng := xrand.New(seed)
	if err := c.Run(10); err != nil {
		return false, err
	}
	for burst := 0; burst < 25; burst++ {
		clients := cl.ActiveClients()
		target := clients[rng.Intn(len(clients))]
		if rng.Bool(0.5) {
			cl.Enqueue(target)
		} else {
			cl.Dequeue(target)
		}
		if churn {
			switch burst {
			case 8:
				if _, err := c.Admin().Join(0); err != nil {
					return false, err
				}
			case 16:
				if err := c.Admin().Leave(2); err != nil {
					return false, err
				}
			}
		}
		if err := c.Run(int64(2 + rng.Intn(25))); err != nil {
			return false, err
		}
	}
	ok, err := c.Drain(500000)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	return true, c.Check()
}

func main() {
	var (
		seeds  = flag.Int("seeds", 50, "number of seeds per configuration")
		noWait = flag.Bool("stack-no-wait", false, "demonstrate the §VI counterexample instead")
	)
	flag.Parse()

	if *noWait {
		violations := 0
		for s := int64(0); s < int64(*seeds); s++ {
			drained, err := runSeed(skueue.Stack, s, false, true)
			if !drained || err != nil {
				violations++
			}
		}
		fmt.Printf("stack WITHOUT stage-4 wait: %d/%d seeds violated sequential consistency\n", violations, *seeds)
		fmt.Println("(each violation is a stuck or misdelivered pop — exactly the race §VI's fix prevents)")
		return
	}

	fail := 0
	for _, mode := range []skueue.Mode{skueue.Queue, skueue.Stack} {
		for _, churn := range []bool{false, true} {
			for s := int64(0); s < int64(*seeds); s++ {
				drained, err := runSeed(mode, s, churn, false)
				switch {
				case !drained:
					fmt.Printf("FAIL %s churn=%v seed=%d: did not drain\n", mode, churn, s)
					fail++
				case err != nil:
					fmt.Printf("FAIL %s churn=%v seed=%d: %v\n", mode, churn, s, err)
					fail++
				}
			}
			fmt.Printf("%s churn=%v: %d seeds checked\n", mode, churn, *seeds)
		}
	}
	if fail > 0 {
		fmt.Printf("%d configurations violated sequential consistency\n", fail)
		os.Exit(1)
	}
	fmt.Println("all executions sequentially consistent (Definition 1)")
}
