// Command skueue-verify tortures the protocol for sequential consistency:
// many seeds of adversarial asynchronous schedules with churn, for both
// the queue and the stack, each execution checked against Definition 1.
// With -stack-no-wait it instead demonstrates the §VI counterexample by
// disabling the stage-4 completion wait and counting how many seeds
// violate consistency (E9 in DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"skueue/internal/batch"
	"skueue/internal/core"
	"skueue/internal/xrand"
)

func runSeed(mode batch.Mode, seed int64, churn, noWait bool) (drained bool, err error) {
	cl, e := core.New(core.Config{
		Processes: 4, Seed: seed, Mode: mode,
		Async: true, MaxDelay: 16, TimeoutEvery: 5,
		DisableStage4Wait: noWait, DisableLocalCombining: noWait,
	})
	if e != nil {
		return false, e
	}
	rng := xrand.New(seed)
	cl.Run(10)
	for burst := 0; burst < 25; burst++ {
		clients := cl.ActiveClients()
		c := clients[rng.Intn(len(clients))]
		if rng.Bool(0.5) {
			cl.Enqueue(c)
		} else {
			cl.Dequeue(c)
		}
		if churn {
			switch burst {
			case 8:
				cl.JoinProcess(0)
			case 16:
				cl.LeaveProcess(2)
			}
		}
		cl.Run(int64(2 + rng.Intn(25)))
	}
	if !cl.Drain(500000) {
		return false, nil
	}
	return true, cl.CheckConsistency()
}

func main() {
	var (
		seeds  = flag.Int("seeds", 50, "number of seeds per configuration")
		noWait = flag.Bool("stack-no-wait", false, "demonstrate the §VI counterexample instead")
	)
	flag.Parse()

	if *noWait {
		violations := 0
		for s := int64(0); s < int64(*seeds); s++ {
			drained, err := runSeed(batch.Stack, s, false, true)
			if !drained || err != nil {
				violations++
			}
		}
		fmt.Printf("stack WITHOUT stage-4 wait: %d/%d seeds violated sequential consistency\n", violations, *seeds)
		fmt.Println("(each violation is a stuck or misdelivered pop — exactly the race §VI's fix prevents)")
		return
	}

	fail := 0
	for _, mode := range []batch.Mode{batch.Queue, batch.Stack} {
		for _, churn := range []bool{false, true} {
			for s := int64(0); s < int64(*seeds); s++ {
				drained, err := runSeed(mode, s, churn, false)
				switch {
				case !drained:
					fmt.Printf("FAIL %s churn=%v seed=%d: did not drain\n", mode, churn, s)
					fail++
				case err != nil:
					fmt.Printf("FAIL %s churn=%v seed=%d: %v\n", mode, churn, s, err)
					fail++
				}
			}
			fmt.Printf("%s churn=%v: %d seeds checked\n", mode, churn, *seeds)
		}
	}
	if fail > 0 {
		fmt.Printf("%d configurations violated sequential consistency\n", fail)
		os.Exit(1)
	}
	fmt.Println("all executions sequentially consistent (Definition 1)")
}
