package skueue_test

// Mode-conformance suite: one table of lifecycle tests run identically
// against all three ordering disciplines (queue, stack, heap). Each row
// exercises behavior every discipline must share — the shape of a full
// enqueue/dequeue lifecycle, empty-structure ⊥ semantics, and
// exactly-once delivery across a kill -9 restart of a durable cluster
// member — while the expected dequeue order is the only per-mode input.
// A new discipline behind the seam (internal/core/discipline.go) joins
// the table by adding one entry.

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"skueue"
	"skueue/internal/server"
)

// confMode is one discipline under test.
type confMode struct {
	name   string
	opts   []skueue.Option // embedded-client configuration
	server string          // skueue-server -mode value
	levels int             // priority levels (heap only)
	// order permutes enqueue indices 0..n-1 into the dequeue order a
	// strictly sequential client must observe.
	order func(n int) []int
}

func confModes() []confMode {
	const levels = 3
	return []confMode{
		{
			name:   "queue",
			opts:   []skueue.Option{skueue.WithMode(skueue.Queue)},
			server: "queue",
			order: func(n int) []int {
				out := make([]int, n)
				for i := range out {
					out[i] = i
				}
				return out
			},
		},
		{
			name:   "stack",
			opts:   []skueue.Option{skueue.WithMode(skueue.Stack)},
			server: "stack",
			order: func(n int) []int {
				out := make([]int, n)
				for i := range out {
					out[i] = n - 1 - i
				}
				return out
			},
		},
		{
			name:   "heap",
			opts:   []skueue.Option{skueue.WithHeap(levels)},
			server: "heap",
			levels: levels,
			order: func(n int) []int {
				out := make([]int, n)
				for i := range out {
					out[i] = i
				}
				// Lowest level first, FIFO within a level.
				sort.SliceStable(out, func(a, b int) bool {
					return confPri(out[a], levels) < confPri(out[b], levels)
				})
				return out
			},
		},
	}
}

// confPri assigns enqueue index i its priority level (heap rows spread
// elements over every level; other modes ignore it).
func confPri(i, levels int) int32 {
	if levels == 0 {
		return 0
	}
	return int32(i % levels)
}

// confEnqueue and confDequeue adapt the per-mode operation flavour: the
// heap's priority API against heap clients, the plain API elsewhere.
// Everything else in the suite is mode-independent.
func confEnqueue(ctx context.Context, c *skueue.Client, pri int32, v any) error {
	if c.HeapLevels() > 0 {
		return c.EnqueuePri(ctx, pri, v)
	}
	return c.Enqueue(ctx, v)
}

func confDequeue(ctx context.Context, c *skueue.Client) (any, bool, error) {
	if c.HeapLevels() > 0 {
		return c.DequeueMin(ctx)
	}
	return c.Dequeue(ctx)
}

func confEnqueueAsync(c *skueue.Client, pri int32, v any) (*skueue.Future, error) {
	if c.HeapLevels() > 0 {
		return c.EnqueuePriAsync(skueue.AnyProcess, pri, v)
	}
	return c.EnqueueAsync(skueue.AnyProcess, v)
}

// TestModeConformance runs every lifecycle row against every discipline.
func TestModeConformance(t *testing.T) {
	rows := []struct {
		name string
		run  func(t *testing.T, m confMode)
	}{
		{"Lifecycle", confLifecycle},
		{"EmptyStructure", confEmptyStructure},
		{"KillRestartExactlyOnce", confKillRestart},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			for _, m := range confModes() {
				t.Run(m.name, func(t *testing.T) { row.run(t, m) })
			}
		})
	}
}

// confLifecycle: a strictly sequential client enqueues n values and
// dequeues them all; the observed order must be exactly the discipline's
// (FIFO, LIFO, or priority-then-FIFO), the structure must be empty
// afterwards, and the full history must pass the discipline's checker.
func confLifecycle(t *testing.T, m confMode) {
	c, err := skueue.Open(append([]skueue.Option{
		skueue.WithProcesses(4), skueue.WithSeed(21),
	}, m.opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const n = 12
	for i := 0; i < n; i++ {
		if err := confEnqueue(ctx, c, confPri(i, m.levels), fmt.Sprintf("v-%d", i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	want := m.order(n)
	for k := 0; k < n; k++ {
		v, ok, err := confDequeue(ctx, c)
		if err != nil {
			t.Fatalf("dequeue %d: %v", k, err)
		}
		if !ok {
			t.Fatalf("dequeue %d: structure empty with %d elements outstanding", k, n-k)
		}
		if exp := fmt.Sprintf("v-%d", want[k]); v != exp {
			t.Fatalf("dequeue %d: got %v, want %v (discipline order %v)", k, v, exp, want)
		}
	}
	if _, ok, err := confDequeue(ctx, c); err != nil || ok {
		t.Fatalf("dequeue on drained structure: ok=%v err=%v, want ⊥", ok, err)
	}
	if err := c.Check(); err != nil {
		t.Fatalf("history check: %v", err)
	}
}

// confEmptyStructure: ⊥ from a fresh structure, a single element
// round-trips, ⊥ again after it is taken.
func confEmptyStructure(t *testing.T, m confMode) {
	c, err := skueue.Open(append([]skueue.Option{
		skueue.WithProcesses(2), skueue.WithSeed(22),
	}, m.opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, ok, err := confDequeue(ctx, c); err != nil || ok {
		t.Fatalf("dequeue on fresh structure: ok=%v err=%v, want ⊥", ok, err)
	}
	if err := confEnqueue(ctx, c, 0, "solo"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := confDequeue(ctx, c)
	if err != nil || !ok || v != "solo" {
		t.Fatalf("dequeue: got (%v, %v, %v), want (solo, true, nil)", v, ok, err)
	}
	if _, ok, err := confDequeue(ctx, c); err != nil || ok {
		t.Fatalf("dequeue after drain: ok=%v err=%v, want ⊥", ok, err)
	}
	if err := c.Check(); err != nil {
		t.Fatalf("history check: %v", err)
	}
}

// confKillRestart: exactly-once across a fail-stop crash, identically in
// every mode. A 3-member durable cluster takes traffic, one member is
// killed without warning (kill -9 semantics: no final snapshot, staged
// journal batches lost), operations issued while it is down wedge
// mid-protocol, and the member restarts from its snapshot on a new
// address. Every enqueued value must then come out exactly once and the
// merged history must pass the discipline's checker.
func confKillRestart(t *testing.T, m confMode) {
	if testing.Short() {
		t.Skip("boots a durable TCP cluster per mode")
	}
	lis := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lis[i] = l
		addrs[i] = l.Addr().String()
	}
	base := t.TempDir()
	srvs := make([]*server.Server, 3)
	dirs := make([]string, 3)
	for i := range srvs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("m%d", i))
		s, err := server.New(server.Config{
			Listener: lis[i], Seed: 33, Index: i, Members: addrs,
			Mode: m.server, HeapLevels: m.levels,
			Tick:          500 * time.Microsecond,
			StateDir:      dirs[i],
			SnapshotEvery: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		srvs[i] = s
		t.Cleanup(s.Close)
	}

	c, err := skueue.Open(skueue.WithRemote(addrs[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	enqueued := make(map[string]bool)
	dequeued := make(map[string]bool)
	takeOne := func(mustHave bool) bool {
		t.Helper()
		v, ok, err := confDequeue(ctx, c)
		if err != nil {
			t.Fatalf("dequeue: %v", err)
		}
		if !ok {
			if mustHave {
				t.Fatalf("structure empty with %d values unaccounted", len(enqueued)-len(dequeued))
			}
			return false
		}
		s := v.(string)
		if dequeued[s] {
			t.Fatalf("value %q dequeued twice", s)
		}
		if !enqueued[s] {
			t.Fatalf("value %q dequeued but never enqueued", s)
		}
		dequeued[s] = true
		return true
	}

	// Phase 1: live traffic across every member's fragment.
	for i := 0; i < 12; i++ {
		v := fmt.Sprintf("pre-%d", i)
		if err := confEnqueue(ctx, c, confPri(i, m.levels), v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		enqueued[v] = true
	}
	for i := 0; i < 4; i++ {
		takeOne(true)
	}
	time.Sleep(500 * time.Millisecond) // let snapshots cover the traffic

	victim := -1
	for i := 1; i < len(srvs); i++ {
		if !srvs[i].HasAnchor() {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no non-seed member without the anchor")
	}
	srvs[victim].Kill()

	// Phase 2: operations wedged against the dead member's fragment.
	var futures []*skueue.Future
	for i := 0; i < 6; i++ {
		v := fmt.Sprintf("down-%d", i)
		f, err := confEnqueueAsync(c, confPri(i, m.levels), v)
		if err != nil {
			t.Fatalf("enqueue while member down: %v", err)
		}
		enqueued[v] = true
		futures = append(futures, f)
	}
	time.Sleep(300 * time.Millisecond)

	restarted, err := server.New(server.Config{
		Addr: "127.0.0.1:0", Join: addrs[0],
		StateDir:      dirs[victim],
		SnapshotEvery: 50 * time.Millisecond,
		Tick:          500 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("restarting member %d: %v", victim, err)
	}
	t.Cleanup(restarted.Close)

	for i, f := range futures {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("stalled enqueue %d never completed after restart: %v", i, err)
		}
		if err := f.Err(); err != nil {
			t.Fatalf("stalled enqueue %d failed: %v", i, err)
		}
	}

	// Exactly-once: everything still in the structure comes out once,
	// then ⊥, with the full enqueued set accounted for.
	for takeOne(len(dequeued) < len(enqueued)) {
	}
	if len(dequeued) != len(enqueued) {
		t.Fatalf("accounting: %d enqueued, %d dequeued", len(enqueued), len(dequeued))
	}
	if err := c.Check(); err != nil {
		t.Fatalf("history check after restart: %v", err)
	}
}
