package skueue

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors returned by the client layer. All errors carrying extra
// context (process indices, deadlines) wrap one of these, so callers
// dispatch with errors.Is.
var (
	// ErrNoSuchProcess reports a process index outside the process table.
	ErrNoSuchProcess = errors.New("skueue: no such process")

	// ErrProcessLeft reports an operation addressed to a process that has
	// left the system (§IV-B). Departed indices stay valid for bookkeeping
	// but can no longer issue requests.
	ErrProcessLeft = errors.New("skueue: process has left the system")

	// ErrStillJoining reports a Leave for a process whose three virtual
	// nodes are not yet integrated (§IV-A).
	ErrStillJoining = errors.New("skueue: process is still joining")

	// ErrTimeout reports a blocking call that ran out of its context
	// deadline. It always also wraps context.DeadlineExceeded.
	ErrTimeout = errors.New("skueue: operation timed out")

	// ErrClosed reports any use of a closed client.
	ErrClosed = errors.New("skueue: client is closed")

	// ErrAutoClock reports a manual clock call (Step, Run, Drain, Settle)
	// on a client running the autopilot; open with WithManualClock to take
	// deterministic control of simulated time.
	ErrAutoClock = errors.New("skueue: clock is automatic (open with WithManualClock to step manually)")

	// ErrWrongMode reports an operation whose flavour does not match the
	// cluster's mode: EnqueuePri/DequeueMin against a queue or stack, or
	// plain Enqueue/Dequeue against a heap. The operation never executes.
	// Remote clients receive it through the future when the server polices
	// the mismatch (wire.CliDone.WrongMode).
	ErrWrongMode = errors.New("skueue: operation flavour does not match the cluster mode")

	// ErrRemote is the umbrella sentinel for remote-cluster conditions on
	// a client opened with WithRemote. It is never returned bare anymore:
	// callers receive ErrUnsupported or ErrUnreachable, both of which wrap
	// it, so existing errors.Is(err, ErrRemote) dispatch keeps working.
	// Match on the two specific sentinels to tell the cases apart.
	ErrRemote = errors.New("skueue: operation not available on a remote client")
)

// The two faces ErrRemote used to conflate. Both wrap ErrRemote.
var (
	// ErrUnsupported reports an operation that only exists against an
	// in-process simulated cluster — process pinning, membership
	// administration, simulation clock control. The networked cluster's
	// membership is managed by its servers (cmd/skueue-server -join).
	ErrUnsupported = fmt.Errorf("%w: operation only exists against an in-process cluster", ErrRemote)

	// ErrUnreachable reports an operation the remote cluster could not
	// carry to completion because a member became unreachable: the cluster
	// abandoned it past the server's give-up timeout (fail-stop detection;
	// see cmd/skueue-server -give-up), the connection was lost on an
	// ephemeral client, or a session client exhausted its reconnect budget
	// (WithReconnect) without resuming. Futures failed this way report
	// Indeterminate() — the operation may or may not have executed.
	ErrUnreachable = fmt.Errorf("%w: cluster member unreachable", ErrRemote)
)

// ctxError converts a context error into the client's typed form: deadline
// expiry gains the ErrTimeout sentinel (while still wrapping
// context.DeadlineExceeded); cancellation passes through unchanged.
func ctxError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}
