package skueue_test

import (
	"context"
	"fmt"
	"log"

	"skueue"
)

// ExampleOpen shows the minimal lifecycle: open a simulated deployment,
// issue blocking operations from the calling goroutine, verify the
// execution, close.
func ExampleOpen() {
	c, err := skueue.Open(skueue.WithProcesses(8), skueue.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Enqueue(ctx, "job-1"); err != nil {
		log.Fatal(err)
	}
	v, ok, err := c.Dequeue(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, ok)

	// Verify the whole run against the paper's Definition 1.
	fmt.Println("consistent:", c.Check() == nil)
	// Output:
	// job-1 true
	// consistent: true
}

// ExampleClient_Enqueue demonstrates FIFO order across values enqueued by
// one client: dequeues return them in enqueue order.
func ExampleClient_Enqueue() {
	c, err := skueue.Open(skueue.WithProcesses(4), skueue.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	for _, job := range []string{"a", "b", "c"} {
		if err := c.Enqueue(ctx, job); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		v, _, err := c.Dequeue(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(v)
	}
	// Output:
	// a
	// b
	// c
}

// ExampleClient_DequeueAsync shows the future-based API: submissions
// return immediately and resolve as the protocol serializes them.
func ExampleClient_DequeueAsync() {
	c, err := skueue.Open(skueue.WithProcesses(4), skueue.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	f, err := c.DequeueAsync(0) // racing against nothing: the queue is empty
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("empty:", f.Empty())
	// Output:
	// empty: true
}
