// Churn: processes join and leave while the queue is in use (paper §IV).
// Elements survive membership changes — joining nodes receive their share
// of the DHT, leaving nodes hand theirs over — and the execution stays
// sequentially consistent throughout. Membership management lives on the
// client's Admin surface; Settle blocks until the overlay is consistent
// again.
package main

import (
	"context"
	"fmt"
	"log"

	"skueue"
)

func main() {
	c, err := skueue.Open(skueue.WithProcesses(4), skueue.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	admin := c.Admin()

	// Fill the queue from one process, so FIFO order is the submission
	// order (across processes only the serialization order is fixed).
	for i := 0; i < 12; i++ {
		if err := c.EnqueueAt(ctx, 0, i); err != nil {
			log.Fatalf("fill: %v", err)
		}
	}
	fmt.Printf("12 elements stored over 4 processes\n")

	// Two processes join; the DHT rebalances onto their virtual nodes.
	p1, err := admin.Join(0)
	if err != nil {
		log.Fatalf("join: %v", err)
	}
	p2, err := admin.Join(2)
	if err != nil {
		log.Fatalf("join: %v", err)
	}
	if err := admin.Settle(ctx); err != nil {
		log.Fatalf("joins did not settle: %v", err)
	}
	fmt.Printf("processes %d and %d joined; still storing %d elements\n", p1, p2, c.Stored())

	// One of the original members leaves; its data migrates away.
	if err := admin.Leave(1); err != nil {
		log.Fatalf("leave: %v", err)
	}
	if err := admin.Settle(ctx); err != nil {
		log.Fatalf("leave did not settle: %v", err)
	}
	fmt.Printf("process 1 left; still storing %d elements\n", c.Stored())

	// Everything is still there, in FIFO order.
	for i := 0; i < 12; i++ {
		v, ok, err := c.DequeueAt(ctx, p1)
		if err != nil {
			log.Fatalf("dequeue: %v", err)
		}
		if !ok || v != i {
			log.Fatalf("FIFO broken after churn: got %v, want %d", v, i)
		}
	}
	if err := c.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("all 12 elements dequeued in order across two joins and one leave")
}
