// Churn: processes join and leave while the queue is in use (paper §IV).
// Elements survive membership changes — joining nodes receive their share
// of the DHT, leaving nodes hand theirs over — and the execution stays
// sequentially consistent throughout.
package main

import (
	"fmt"
	"log"

	"skueue"
)

func main() {
	sys, err := skueue.New(skueue.Config{Processes: 4, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Fill the queue from one process, so FIFO order is the submission
	// order (across processes only the serialization order is fixed).
	for i := 0; i < 12; i++ {
		sys.Enqueue(0, i)
	}
	if !sys.Drain(50_000) {
		log.Fatal("fill did not finish")
	}
	fmt.Printf("12 elements stored over 4 processes\n")

	// Two processes join; the DHT rebalances onto their virtual nodes.
	p1 := sys.Join(0)
	p2 := sys.Join(2)
	if !sys.Settle(100_000) {
		log.Fatal("joins did not settle")
	}
	fmt.Printf("processes %d and %d joined; still storing %d elements\n", p1, p2, sys.Stored())

	// One of the original members leaves; its data migrates away.
	sys.Leave(1)
	if !sys.Settle(200_000) {
		log.Fatal("leave did not settle")
	}
	fmt.Printf("process 1 left; still storing %d elements\n", sys.Stored())

	// Everything is still there, in FIFO order.
	for i := 0; i < 12; i++ {
		h := sys.Dequeue(p1)
		if !sys.Drain(50_000) {
			log.Fatal("dequeue did not finish")
		}
		if h.Empty() || h.Value() != i {
			log.Fatalf("FIFO broken after churn: got %v, want %d", h.Value(), i)
		}
	}
	if err := sys.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("all 12 elements dequeued in order across two joins and one leave")
}
