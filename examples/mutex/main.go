// Distributed mutual exclusion (paper §I): the queue's global FIFO order
// hands out a critical section fairly. Each contender enqueues its own
// token; whoever's token reaches the front holds the lock, dequeues it on
// release, and the next token in FIFO order takes over. Sequential
// consistency guarantees a single global handover order.
package main

import (
	"fmt"
	"log"

	"skueue"
)

func main() {
	const contenders = 5
	sys, err := skueue.New(skueue.Config{Processes: contenders, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	// Every contender requests the lock by enqueuing its id.
	for p := 0; p < contenders; p++ {
		sys.Enqueue(p, p)
	}
	if !sys.Drain(50_000) {
		log.Fatal("lock requests did not finish")
	}

	// The token at the queue head owns the critical section. Releasing =
	// dequeuing the head; the dequeue result tells everyone who just ran.
	fmt.Println("critical-section schedule (FIFO = request order):")
	var order []any
	for i := 0; i < contenders; i++ {
		h := sys.Dequeue(i) // the releasing process advances the queue
		if !sys.Drain(50_000) {
			log.Fatal("handover did not finish")
		}
		order = append(order, h.Value())
		fmt.Printf("  slot %d: process %v enters and leaves the critical section\n", i, h.Value())
	}

	// No process ran twice, and the schedule respects enqueue order.
	seen := map[any]bool{}
	for _, p := range order {
		if seen[p] {
			log.Fatalf("process %v scheduled twice — mutual exclusion broken", p)
		}
		seen[p] = true
	}
	if err := sys.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("mutual exclusion schedule is a total order — verified")
}
