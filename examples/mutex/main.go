// Distributed mutual exclusion (paper §I): the queue's global FIFO order
// hands out a critical section fairly. Each contender enqueues its own
// token; whoever's token reaches the front holds the lock, dequeues it on
// release, and the next token in FIFO order takes over. Sequential
// consistency guarantees a single global handover order.
package main

import (
	"context"
	"fmt"
	"log"

	"skueue"
)

func main() {
	const contenders = 5
	c, err := skueue.Open(skueue.WithProcesses(contenders), skueue.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Every contender requests the lock by enqueuing its id.
	for p := 0; p < contenders; p++ {
		if err := c.EnqueueAt(ctx, p, p); err != nil {
			log.Fatalf("lock request: %v", err)
		}
	}

	// The token at the queue head owns the critical section. Releasing =
	// dequeuing the head; the dequeue result tells everyone who just ran.
	fmt.Println("critical-section schedule (FIFO = request order):")
	var order []any
	for i := 0; i < contenders; i++ {
		v, ok, err := c.DequeueAt(ctx, i) // the releasing process advances the queue
		if err != nil {
			log.Fatalf("handover: %v", err)
		}
		if !ok {
			log.Fatalf("slot %d: token missing", i)
		}
		order = append(order, v)
		fmt.Printf("  slot %d: process %v enters and leaves the critical section\n", i, v)
	}

	// No process ran twice, and the schedule respects enqueue order.
	seen := map[any]bool{}
	for _, p := range order {
		if seen[p] {
			log.Fatalf("process %v scheduled twice — mutual exclusion broken", p)
		}
		seen[p] = true
	}
	if err := c.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("mutual exclusion schedule is a total order — verified")
}
