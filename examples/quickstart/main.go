// Quickstart: a minimal Skueue session — open a client, enqueue from
// several producer goroutines, dequeue from consumer goroutines, verify
// sequential consistency. The background autopilot advances the simulated
// protocol, so the blocking calls behave like a real queue client's.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"skueue"
)

func main() {
	c, err := skueue.Open(skueue.WithProcesses(8), skueue.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Three producer goroutines enqueue jobs from different processes.
	var producers sync.WaitGroup
	for p := 0; p < 3; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for i := 0; i < 3; i++ {
				if err := c.EnqueueAt(ctx, p, fmt.Sprintf("job-%d-%d", p, i)); err != nil {
					log.Fatalf("enqueue: %v", err)
				}
			}
		}(p)
	}
	producers.Wait()
	fmt.Printf("enqueued 9 jobs; DHT now stores %d elements across the ring\n", c.Stored())

	// Two consumer goroutines on other processes drain them concurrently.
	jobs := make(chan any, 9)
	var consumers sync.WaitGroup
	for w := 0; w < 2; w++ {
		consumers.Add(1)
		go func(w int) {
			defer consumers.Done()
			for {
				v, ok, err := c.DequeueAt(ctx, 4+w)
				if err != nil {
					log.Fatalf("dequeue: %v", err)
				}
				if !ok { // ⊥: the queue is empty, we are done
					return
				}
				jobs <- v
			}
		}(w)
	}
	consumers.Wait()
	close(jobs)
	n := 0
	for v := range jobs {
		fmt.Printf("dequeued %v\n", v)
		n++
	}
	fmt.Printf("%d jobs fetched, none lost, none duplicated\n", n)

	if err := c.Check(); err != nil {
		log.Fatalf("sequential consistency violated: %v", err)
	}
	fmt.Println("execution verified sequentially consistent (paper Definition 1)")
}
