// Quickstart: a minimal Skueue session — build a system, enqueue from
// several processes, dequeue from others, verify sequential consistency.
package main

import (
	"fmt"
	"log"

	"skueue"
)

func main() {
	sys, err := skueue.New(skueue.Config{Processes: 8, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Three producers enqueue jobs from different processes.
	for i := 0; i < 9; i++ {
		sys.Enqueue(i%3, fmt.Sprintf("job-%d", i))
	}
	if !sys.Drain(50_000) {
		log.Fatal("enqueues did not finish")
	}
	fmt.Printf("enqueued 9 jobs; DHT now stores %d elements across the ring\n", sys.Stored())

	// Two consumers on other processes drain them in FIFO order.
	var handles []*skueue.Handle
	for i := 0; i < 9; i++ {
		handles = append(handles, sys.Dequeue(4+i%2))
	}
	if !sys.Drain(50_000) {
		log.Fatal("dequeues did not finish")
	}
	for i, h := range handles {
		fmt.Printf("dequeue %d -> %v (%d rounds)\n", i, h.Value(), h.Rounds())
	}

	if err := sys.Check(); err != nil {
		log.Fatalf("sequential consistency violated: %v", err)
	}
	fmt.Println("execution verified sequentially consistent (paper Definition 1)")
}
