// Stack order: the distributed stack variant (paper §VI). Pops return the
// newest pushes first, and a push immediately followed by a pop on the
// same process is answered locally without any network traffic at all —
// the local combining that keeps stack batches constant-sized (Thm 20).
package main

import (
	"fmt"
	"log"

	"skueue"
)

func main() {
	sys, err := skueue.New(skueue.Config{Processes: 4, Seed: 3, Mode: skueue.Stack})
	if err != nil {
		log.Fatal(err)
	}

	// Build a stack from one process.
	for i := 1; i <= 5; i++ {
		sys.Push(0, i*10)
	}
	if !sys.Drain(50_000) {
		log.Fatal("pushes did not finish")
	}

	// Pop from another process: LIFO order.
	fmt.Println("draining the stack from process 2:")
	for i := 0; i < 5; i++ {
		h := sys.Pop(2)
		if !sys.Drain(50_000) {
			log.Fatal("pop did not finish")
		}
		fmt.Printf("  pop -> %v\n", h.Value())
	}

	// Local combining: push+pop on the same process completes instantly,
	// with zero protocol rounds.
	before := sys.Metrics().CombinedOps
	h1 := sys.Push(3, "ephemeral")
	h2 := sys.Pop(3)
	if !h1.Done() || !h2.Done() {
		log.Fatal("combined pair should complete immediately")
	}
	fmt.Printf("local combining answered a push/pop pair in %d rounds (combined ops: %d)\n",
		h2.Rounds(), sys.Metrics().CombinedOps-before)

	if err := sys.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("stack execution verified sequentially consistent")
}
