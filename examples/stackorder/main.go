// Stack order: the distributed stack variant (paper §VI). Pops return the
// newest pushes first, and a push immediately followed by a pop on the
// same process is answered locally without any network traffic at all —
// the local combining that keeps stack batches constant-sized (Thm 20).
//
// This example runs the client in manual-clock mode: the async
// submissions return Futures and the caller drives simulated time
// explicitly, which makes the zero-round local combining directly
// observable.
package main

import (
	"fmt"
	"log"

	"skueue"
)

func main() {
	c, err := skueue.Open(
		skueue.WithProcesses(4),
		skueue.WithSeed(3),
		skueue.WithMode(skueue.Stack),
		skueue.WithManualClock(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Build a stack from one process.
	for i := 1; i <= 5; i++ {
		if _, err := c.PushAsync(0, i*10); err != nil {
			log.Fatalf("push: %v", err)
		}
	}
	if ok, err := c.Drain(50_000); err != nil || !ok {
		log.Fatalf("pushes did not finish (err=%v)", err)
	}

	// Pop from another process: LIFO order.
	fmt.Println("draining the stack from process 2:")
	for i := 0; i < 5; i++ {
		f, err := c.PopAsync(2)
		if err != nil {
			log.Fatalf("pop: %v", err)
		}
		if ok, err := c.Drain(50_000); err != nil || !ok {
			log.Fatalf("pop did not finish (err=%v)", err)
		}
		if !f.Completed() {
			log.Fatal("pop future not completed after drain")
		}
		fmt.Printf("  pop -> %v\n", f.Value())
	}

	// Local combining: push+pop on the same process completes instantly,
	// with zero protocol rounds — both futures resolve inside the submit
	// calls, before any clock step.
	before := c.Metrics().CombinedOps
	f1, err := c.PushAsync(3, "ephemeral")
	if err != nil {
		log.Fatalf("push: %v", err)
	}
	f2, err := c.PopAsync(3)
	if err != nil {
		log.Fatalf("pop: %v", err)
	}
	if !f1.Completed() || !f2.Completed() {
		log.Fatal("combined pair should complete immediately")
	}
	fmt.Printf("local combining answered a push/pop pair (%v) in %d rounds (combined ops: %d)\n",
		f2.Value(), f2.Rounds(), c.Metrics().CombinedOps-before)

	if err := c.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("stack execution verified sequentially consistent")
}
