// Work stealing: the paper's motivating application (§I) — a distributed
// queue realizes fair work stealing, because idle workers fetch tasks in
// FIFO order instead of raiding each other's local deques.
//
// A few producer processes publish tasks with different costs; all worker
// processes pull from the shared Skueue. Because dequeues serialize
// globally, no task is fetched twice and tasks start in submission order.
package main

import (
	"fmt"
	"log"

	"skueue"
)

type task struct {
	id   int
	cost int
}

func main() {
	const producers, workers = 2, 6
	sys, err := skueue.New(skueue.Config{Processes: producers + workers, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Producers publish 20 tasks round-robin.
	for i := 0; i < 20; i++ {
		sys.Enqueue(i%producers, task{id: i, cost: 1 + i%5})
	}
	if !sys.Drain(50_000) {
		log.Fatal("task publication did not finish")
	}

	// Workers steal until the queue is empty. Each worker pulls one task
	// per iteration; an Empty result means the pool drained.
	assigned := map[int][]int{}
	busy := 0
	for done := 0; done < 20; {
		var hs []*skueue.Handle
		for w := 0; w < workers; w++ {
			hs = append(hs, sys.Dequeue(producers+w))
		}
		if !sys.Drain(50_000) {
			log.Fatal("steal round did not finish")
		}
		for w, h := range hs {
			if h.Empty() {
				continue
			}
			tk := h.Value().(task)
			assigned[w] = append(assigned[w], tk.id)
			busy += tk.cost
			done++
		}
	}

	fmt.Println("fair work stealing over the distributed queue:")
	for w := 0; w < workers; w++ {
		fmt.Printf("  worker %d got tasks %v\n", w, assigned[w])
	}
	fmt.Printf("total work %d distributed over %d workers\n", busy, workers)
	if err := sys.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("every task fetched exactly once, in FIFO submission order per worker")
}
