// Work stealing: the paper's motivating application (§I) — a distributed
// queue realizes fair work stealing, because idle workers fetch tasks in
// FIFO order instead of raiding each other's local deques.
//
// A few producer processes publish tasks with different costs; all worker
// processes pull from the shared Skueue concurrently, each round one
// blocking Dequeue per worker goroutine. Because dequeues serialize
// globally, no task is fetched twice and a ⊥ answer tells a worker the
// pool was empty at its turn.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"skueue"
)

type task struct {
	id   int
	cost int
}

func main() {
	const producers, workers = 2, 6
	c, err := skueue.Open(skueue.WithProcesses(producers+workers), skueue.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Producers publish 20 tasks round-robin.
	for i := 0; i < 20; i++ {
		if err := c.EnqueueAt(ctx, i%producers, task{id: i, cost: 1 + i%5}); err != nil {
			log.Fatalf("publish: %v", err)
		}
	}

	// Workers steal in rounds: each round, every worker blocks on one
	// concurrent Dequeue, then all pick up their results together. A
	// worker fetches at most one task per round, so the FIFO pool spreads
	// the work instead of letting one fast goroutine drain it all.
	assigned := map[int][]int{}
	busy := 0
	for done := 0; done < 20; {
		var (
			wg      sync.WaitGroup
			results [workers]task
			got     [workers]bool
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				v, ok, err := c.DequeueAt(ctx, producers+w)
				if err != nil {
					log.Fatalf("steal: %v", err)
				}
				if ok {
					results[w] = v.(task)
					got[w] = true
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if !got[w] { // ⊥: the pool was empty at this worker's turn
				continue
			}
			assigned[w] = append(assigned[w], results[w].id)
			busy += results[w].cost
			done++
		}
	}

	fmt.Println("fair work stealing over the distributed queue:")
	total := 0
	for w := 0; w < workers; w++ {
		fmt.Printf("  worker %d got tasks %v\n", w, assigned[w])
		total += len(assigned[w])
	}
	fmt.Printf("%d tasks (total work %d) distributed over %d workers\n", total, busy, workers)
	if total != 20 {
		log.Fatalf("fetched %d tasks, want 20", total)
	}
	if err := c.Check(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("every task fetched exactly once — verified")
}
