package skueue

import (
	"context"

	"skueue/internal/seqcheck"
)

// Future tracks one submitted operation. It completes as the simulation
// advances — driven by the autopilot runner, or by the manual clock calls
// in WithManualClock mode. All methods are safe for concurrent use.
//
// The result accessors (Value, Empty, Rounds) return their zero values
// until the future completes; synchronize on Done or Wait first
// (enforced by internal/analysis/futureerr).
//
//skueue:future
type Future struct {
	c    *Client
	id   uint64
	kind seqcheck.Kind
	done chan struct{}

	// Written once under the client mutex before done is closed; the
	// channel close publishes them, so reads gated on Done are race-free.
	value  any
	bottom bool
	rounds int64
	// err is a per-operation failure (remote mode only: server-side
	// rejection or an undecodable value); simulated operations always
	// complete cleanly.
	err error
	// indeterminate marks a failed operation whose outcome is unknown
	// rather than definitely rejected (remote mode: the connection or the
	// member died with the operation in flight and no session resume
	// recovered the journaled outcome).
	indeterminate bool
}

// Done returns a channel closed when the operation completes. It never
// closes for an operation the simulation cannot finish (e.g. on a closed
// client); select against ctx.Done or the client's lifecycle for that.
func (f *Future) Done() <-chan struct{} { return f.done }

// Completed reports whether the operation already completed.
func (f *Future) Completed() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the operation completes, the context ends, or the
// client closes. It never advances the simulated clock itself: under the
// autopilot the runner completes the operation in the background; under
// WithManualClock some goroutine must drive Step/Run/Drain (or use the
// blocking Client methods, which pump the clock inline).
//
// A context deadline expiry returns an error wrapping both ErrTimeout and
// context.DeadlineExceeded; cancellation returns the context's error; a
// closed client returns ErrClosed.
func (f *Future) Wait(ctx context.Context) error {
	select {
	case <-f.done:
		return f.err
	default:
	}
	if err := ctx.Err(); err != nil {
		return ctxError(err)
	}
	if !f.c.manual {
		f.c.poke()
	}
	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return ctxError(ctx.Err())
	case <-f.c.quit:
		return ErrClosed
	}
}

// Err returns the operation's failure, if any, once it completed (remote
// mode: server-side rejection or an undecodable value). It is nil while
// the future is pending and always nil for simulated operations.
func (f *Future) Err() error {
	if f.Completed() {
		return f.err
	}
	return nil
}

// Indeterminate reports whether a completed operation's outcome is
// unknown rather than definitely rejected: the member executing it
// crashed or became unreachable with the operation in flight and no
// session resume (WithSession) recovered the journaled outcome. An
// indeterminate enqueue may or may not have entered the structure; an
// indeterminate dequeue may have consumed an element whose identity is
// lost. False while the future is pending, and false for definite
// failures (a server-side rejection: Err non-nil, Indeterminate false).
func (f *Future) Indeterminate() bool { return f.Completed() && f.indeterminate }

// Result folds Wait, Err and the result accessors into one call: it
// blocks like Wait (same context/close semantics), then returns the
// operation's outcome. For a dequeue, value is the dequeued element and
// ok reports whether one was present (ok false means ⊥); for an enqueue
// both are zero. A non-nil error carries the same sentinels Wait
// returns, plus the operation's own failure if any; Result counts as a
// synchronization point for the futureerr analyzer.
func (f *Future) Result(ctx context.Context) (value any, ok bool, err error) {
	if err := f.Wait(ctx); err != nil {
		return nil, false, err
	}
	if f.kind == seqcheck.Dequeue {
		return f.value, !f.bottom, nil
	}
	return nil, false, nil
}

// Value returns the dequeued value (nil for ⊥, for enqueues, and until the
// operation completes).
func (f *Future) Value() any {
	if f.Completed() {
		return f.value
	}
	return nil
}

// Empty reports whether a completed dequeue/pop returned ⊥ (empty
// structure).
func (f *Future) Empty() bool { return f.Completed() && f.bottom }

// Rounds returns the request latency in simulated rounds (0 until the
// operation completes).
func (f *Future) Rounds() int64 {
	if f.Completed() {
		return f.rounds
	}
	return 0
}
