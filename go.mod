module skueue

go 1.24
