package skueue

// End-to-end integration tests through the public client API: both data
// structures, both message-passing models, both clock modes, with churn,
// always finishing with a Definition 1 verification of the complete
// history.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestIntegrationQueueAsyncChurn(t *testing.T) {
	c := mustOpen(t, WithProcesses(4), WithSeed(21), WithAsync())
	admin := c.Admin()
	var deqs []*Future
	procs := []int{0, 1, 2, 3}
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 5; i++ {
			if _, err := c.EnqueueAsync(procs[i%len(procs)], fmt.Sprintf("p%d-%d", phase, i)); err != nil {
				t.Fatal(err)
			}
		}
		if ok, err := c.Drain(200_000); err != nil || !ok {
			t.Fatalf("phase %d enqueues did not drain (err=%v)", phase, err)
		}
		switch phase {
		case 0:
			if _, err := admin.Join(1); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := admin.Leave(2); err != nil {
				t.Fatal(err)
			}
			procs = []int{0, 1, 3} // process 2 is gone
		}
		if ok, err := c.Settle(400_000); err != nil || !ok {
			t.Fatalf("phase %d churn did not settle (err=%v)", phase, err)
		}
		for i := 0; i < 5; i++ {
			f, err := c.DequeueAsync(0)
			if err != nil {
				t.Fatal(err)
			}
			deqs = append(deqs, f)
		}
		if ok, err := c.Drain(200_000); err != nil || !ok {
			t.Fatalf("phase %d dequeues did not drain (err=%v)", phase, err)
		}
	}
	for i, d := range deqs {
		if d.Empty() {
			t.Fatalf("dequeue %d lost its element", i)
		}
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationStackSyncChurn(t *testing.T) {
	c := mustOpen(t, WithProcesses(4), WithSeed(22), WithMode(Stack))
	for i := 0; i < 8; i++ {
		if _, err := c.PushAsync(i%4, i); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, c, 100_000)
	p, err := c.Admin().Join(0)
	if err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c, 200_000)
	// The joiner pops everything; values must be the pushed set.
	got := map[any]bool{}
	for i := 0; i < 8; i++ {
		f, err := c.PopAsync(p)
		if err != nil {
			t.Fatal(err)
		}
		mustDrain(t, c, 100_000)
		if f.Empty() {
			t.Fatalf("pop %d empty", i)
		}
		if got[f.Value()] {
			t.Fatalf("value %v popped twice", f.Value())
		}
		got[f.Value()] = true
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationManySeedsMixed(t *testing.T) {
	// A compact cross-product soak: mode × scheduler over several seeds,
	// driven deterministically through the manual clock.
	for _, mode := range []Mode{Queue, Stack} {
		for _, async := range []bool{false, true} {
			for seed := int64(30); seed < 33; seed++ {
				opts := []Option{WithManualClock(), WithProcesses(3), WithSeed(seed), WithMode(mode)}
				if async {
					opts = append(opts, WithAsync())
				}
				c, err := Open(opts...)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 12; i++ {
					if i%3 == 0 {
						_, err = c.DequeueAsync(i % 3)
					} else {
						_, err = c.EnqueueAsync(i%3, i)
					}
					if err != nil {
						t.Fatal(err)
					}
					if err := c.Run(7); err != nil {
						t.Fatal(err)
					}
				}
				if ok, err := c.Drain(300_000); err != nil || !ok {
					t.Fatalf("mode=%v async=%v seed=%d did not drain (err=%v)", mode, async, seed, err)
				}
				if err := c.Check(); err != nil {
					t.Fatalf("mode=%v async=%v seed=%d: %v", mode, async, seed, err)
				}
				c.Close()
			}
		}
	}
}

// TestIntegrationAutopilotChurnConcurrent drives blocking operations from
// several goroutines while the membership changes underneath — the
// workload the redesigned client exists for.
func TestIntegrationAutopilotChurnConcurrent(t *testing.T) {
	c, err := Open(WithProcesses(4), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	admin := c.Admin()

	const total = 40
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < total/2; i++ {
				if err := c.Enqueue(ctx, p*1000+i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	// Churn while the producers run.
	if _, err := admin.Join(0); err != nil {
		t.Fatal(err)
	}
	if err := admin.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	if err := admin.Leave(3); err != nil {
		t.Fatal(err)
	}
	if err := admin.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	seen := map[any]bool{}
	for len(seen) < total {
		v, ok, err := c.Dequeue(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("queue empty after %d of %d values", len(seen), total)
		}
		if seen[v] {
			t.Fatalf("value %v dequeued twice", v)
		}
		seen[v] = true
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}
