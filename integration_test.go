package skueue

// End-to-end integration tests through the public API: both data
// structures, both message-passing models, with churn, always finishing
// with a Definition 1 verification of the complete history.

import (
	"fmt"
	"testing"
)

func TestIntegrationQueueAsyncChurn(t *testing.T) {
	sys, err := New(Config{Processes: 4, Seed: 21, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	var deqs []*Handle
	procs := []int{0, 1, 2, 3}
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 5; i++ {
			sys.Enqueue(procs[i%len(procs)], fmt.Sprintf("p%d-%d", phase, i))
		}
		if !sys.Drain(200_000) {
			t.Fatalf("phase %d enqueues did not drain", phase)
		}
		switch phase {
		case 0:
			sys.Join(1)
		case 1:
			sys.Leave(2)
			procs = []int{0, 1, 3} // process 2 is gone
		}
		if !sys.Settle(400_000) {
			t.Fatalf("phase %d churn did not settle", phase)
		}
		for i := 0; i < 5; i++ {
			deqs = append(deqs, sys.Dequeue(0))
		}
		if !sys.Drain(200_000) {
			t.Fatalf("phase %d dequeues did not drain", phase)
		}
	}
	for i, d := range deqs {
		if d.Empty() {
			t.Fatalf("dequeue %d lost its element", i)
		}
	}
	if err := sys.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationStackSyncChurn(t *testing.T) {
	sys, err := New(Config{Processes: 4, Seed: 22, Mode: Stack})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		sys.Push(i%4, i)
	}
	if !sys.Drain(100_000) {
		t.Fatal("pushes did not drain")
	}
	p := sys.Join(0)
	if !sys.Settle(200_000) {
		t.Fatal("join did not settle")
	}
	// The joiner pops everything; values must be the pushed set.
	got := map[any]bool{}
	for i := 0; i < 8; i++ {
		h := sys.Pop(p)
		if !sys.Drain(100_000) {
			t.Fatal("pop did not drain")
		}
		if h.Empty() {
			t.Fatalf("pop %d empty", i)
		}
		if got[h.Value()] {
			t.Fatalf("value %v popped twice", h.Value())
		}
		got[h.Value()] = true
	}
	if err := sys.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationManySeedsMixed(t *testing.T) {
	// A compact cross-product soak: mode × scheduler over several seeds.
	for _, mode := range []Mode{Queue, Stack} {
		for _, async := range []bool{false, true} {
			for seed := int64(30); seed < 33; seed++ {
				sys, err := New(Config{Processes: 3, Seed: seed, Mode: mode, Async: async})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 12; i++ {
					if i%3 == 0 {
						sys.Dequeue(i % 3)
					} else {
						sys.Enqueue(i%3, i)
					}
					sys.Run(7)
				}
				if !sys.Drain(300_000) {
					t.Fatalf("mode=%v async=%v seed=%d did not drain", mode, async, seed)
				}
				if err := sys.Check(); err != nil {
					t.Fatalf("mode=%v async=%v seed=%d: %v", mode, async, seed, err)
				}
			}
		}
	}
}
