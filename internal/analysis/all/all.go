// Package all registers every skueue-lint analyzer: the cmd/skueue-lint
// driver and the repo self-test both run this list, so a new analyzer
// added here is picked up by both.
package all

import (
	"skueue/internal/analysis"
	"skueue/internal/analysis/futureerr"
	"skueue/internal/analysis/guardedby"
	"skueue/internal/analysis/lockorder"
	"skueue/internal/analysis/modeseam"
	"skueue/internal/analysis/releaseorder"
	"skueue/internal/analysis/runnerblock"
	"skueue/internal/analysis/statecomplete"
	"skueue/internal/analysis/wirereg"
)

// Analyzers is the full suite, in reporting-name order.
var Analyzers = []*analysis.Analyzer{
	futureerr.Analyzer,
	guardedby.Analyzer,
	lockorder.Analyzer,
	modeseam.Analyzer,
	releaseorder.Analyzer,
	runnerblock.Analyzer,
	statecomplete.Analyzer,
	wirereg.Analyzer,
}
