package all_test

import (
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"skueue/internal/analysis"
	"skueue/internal/analysis/all"
)

// TestRepoIsClean runs the full analyzer suite over this repository —
// the same check `go run ./cmd/skueue-lint ./...` and the CI
// lint-invariants job perform. A failure here means a change violated
// one of the enforced invariants (or needs a justified
// //skueue:ignore).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module from source")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(prog, all.Analyzers)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d invariant finding(s); fix them or add a justified //skueue:ignore (see internal/analysis/doc.go)", len(diags))
	}

	// Guard the guard: each analyzer keys on annotations in the
	// production tree; if those vanish (a refactor drops a marker
	// comment), the analyzer passes vacuously. The golden suites prove
	// detection works; this proves the production anchors exist.
	anchors := map[string]int{}
	prog.Ann.Funcs("runner", func(*types.Func, analysis.Annotation) { anchors["runner roots"]++ })
	prog.Ann.Funcs("client-release", func(*types.Func, analysis.Annotation) { anchors["client-release funcs"]++ })
	prog.Ann.Funcs("wire-payload", func(*types.Func, analysis.Annotation) { anchors["wire-payload funcs"]++ })
	prog.Ann.Funcs("wire-register", func(*types.Func, analysis.Annotation) { anchors["wire-register funcs"]++ })
	prog.Ann.Types("client-outcome", func(*types.TypeName, analysis.Annotation) { anchors["client-outcome types"]++ })
	prog.Ann.Types("future", func(*types.TypeName, analysis.Annotation) { anchors["future types"]++ })
	prog.Ann.Fields("lock", func(*types.Var, analysis.Annotation) { anchors["ranked locks"]++ })
	prog.Ann.Types("discipline-seam", func(*types.TypeName, analysis.Annotation) { anchors["discipline-seam types"]++ })
	prog.Ann.Types("discipline", func(*types.TypeName, analysis.Annotation) { anchors["discipline types"]++ })
	prog.Ann.Types("snapshot-state", func(*types.TypeName, analysis.Annotation) { anchors["snapshot-state types"]++ })
	prog.Ann.Funcs("snapshot-capture", func(*types.Func, analysis.Annotation) { anchors["snapshot-capture funcs"]++ })
	prog.Ann.Funcs("snapshot-restore", func(*types.Func, analysis.Annotation) { anchors["snapshot-restore funcs"]++ })
	prog.Ann.Fields("ephemeral", func(*types.Var, analysis.Annotation) { anchors["ephemeral fields"]++ })
	prog.Ann.Fields("guarded-by", func(*types.Var, analysis.Annotation) { anchors["guarded-by fields"]++ })
	prog.Ann.Funcs("owned-by", func(*types.Func, analysis.Annotation) { anchors["owned-by funcs"]++ })
	prog.Ann.Funcs("locked", func(*types.Func, analysis.Annotation) { anchors["locked helpers"]++ })
	for _, anchor := range []string{
		"runner roots", "client-release funcs", "wire-payload funcs",
		"wire-register funcs", "client-outcome types", "future types", "ranked locks",
		"discipline-seam types", "discipline types",
		"snapshot-state types", "snapshot-capture funcs", "snapshot-restore funcs",
		"ephemeral fields", "guarded-by fields", "owned-by funcs", "locked helpers",
	} {
		if anchors[anchor] == 0 {
			t.Errorf("no %s annotated anywhere in the tree; the corresponding analyzer is running vacuously", anchor)
		}
	}
	if n := anchors["discipline types"]; n > 0 && n < 3 {
		t.Errorf("only %d discipline implementation(s) annotated; queue, stack and heap should each carry //skueue:discipline", n)
	}
}

// TestNodeIsModeFree is the grep-style form of the discipline-seam
// acceptance criterion: the wave engine in internal/core/node.go must
// not mention the configured mode or a mode constant at all — every
// mode-specific behavior goes through the discipline interface (the
// modeseam analyzer enforces the semantic version of this for the whole
// core package; this literal check pins the engine file itself).
func TestNodeIsModeFree(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "core", "node.go"))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`cfg\.Mode|batch\.(Queue|Stack|Heap)\b`)
	for _, m := range re.FindAll(src, -1) {
		t.Errorf("internal/core/node.go mentions %q; mode-specific behavior belongs in a discipline implementation (internal/core/discipline.go)", m)
	}
}
