package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker. Run sees the whole Program and
// reports findings through the Pass; it runs exactly once per Program.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //skueue:ignore comments.
	Name string
	// Doc is the one-line description shown by `skueue-lint -list`.
	Doc string
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries the program and the reporting sink into one analyzer run.
type Pass struct {
	Prog *Program
	Ann  *Annotations

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a finding at pos unless a //skueue:ignore for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.Ann.Suppressed(position, p.analyzer.Name) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over prog and returns their findings sorted
// by position, plus any malformed-suppression diagnostics the annotation
// scan produced.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, prog.Ann.malformed...)
	for _, a := range analyzers {
		pass := &Pass{Prog: prog, Ann: prog.Ann, analyzer: a, sink: &diags}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Pos, diags[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ---- Shared type/AST helpers used by several analyzers ----

// FuncDeclFor maps a *types.Func back to its declaration within the
// program, or nil for functions outside it (standard library).
func (p *Program) FuncDeclFor(fn *types.Func) *ast.FuncDecl {
	pkg := p.byPath[pkgPath(fn)]
	if pkg == nil {
		return nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

func pkgPath(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// Callee resolves the *types.Func a call expression statically invokes:
// a plain function, a concrete method, or an interface method (the caller
// decides how to handle dynamic dispatch). nil for calls of function
// values, builtins and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (qualifier is a package name).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsInterfaceCall reports whether call dispatches through an interface
// method (the receiver's static type is an interface).
func IsInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	return types.IsInterface(selection.Recv())
}

// FuncID renders a function for diagnostics: pkg.Func or (pkg.Recv).Meth,
// always package-qualified (by name, not import path) so cross-package
// call paths read unambiguously.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return "<dynamic>"
	}
	qual := func(p *types.Package) string { return p.Name() }
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), qual), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
