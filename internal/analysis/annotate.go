package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation is one parsed //skueue:<name> marker.
type Annotation struct {
	Name   string
	Args   []string
	Reason string
	Pos    token.Pos
}

// knownAnnotations guards against typos: a marker outside this set is
// reported instead of silently doing nothing.
var knownAnnotations = map[string]bool{
	"runner":            true,
	"runs-on-runner":    true,
	"nonblocking":       true,
	"blocking":          true,
	"lock":              true,
	"client-release":    true,
	"client-outcome":    true,
	"journaled-release": true,
	"wire-payload":      true,
	"wire-register":     true,
	"future":            true,
	"awaits-future":     true,
	"discipline-seam":   true,
	"discipline":        true,
	"snapshot-state":    true,
	"snapshot-capture":  true,
	"snapshot-restore":  true,
	"ephemeral":         true,
	"guarded-by":        true,
	"owned-by":          true,
	"locked":            true,
	"ignore":            true,
}

// Annotations indexes every //skueue: marker in a Program by the object
// it annotates, plus the //skueue:ignore suppression lines.
type Annotations struct {
	fn    map[*types.Func][]Annotation
	field map[*types.Var][]Annotation
	typ   map[*types.TypeName][]Annotation
	// ignores: filename -> line -> analyzer names suppressed there.
	ignores   map[string]map[int]map[string]bool
	malformed []Diagnostic
}

// Func returns the named annotation on fn's declaration, or nil.
func (a *Annotations) Func(fn *types.Func, name string) *Annotation {
	return find(a.fn[fn], name)
}

// Field returns the named annotation on a struct field, or nil.
func (a *Annotations) Field(v *types.Var, name string) *Annotation {
	return find(a.field[v], name)
}

// Type returns the named annotation on a type declaration, or nil.
func (a *Annotations) Type(tn *types.TypeName, name string) *Annotation {
	return find(a.typ[tn], name)
}

// Funcs calls fn for every function carrying the named annotation.
func (a *Annotations) Funcs(name string, visit func(*types.Func, Annotation)) {
	for obj, anns := range a.fn {
		if ann := find(anns, name); ann != nil {
			visit(obj, *ann)
		}
	}
}

// Types calls visit for every type carrying the named annotation.
func (a *Annotations) Types(name string, visit func(*types.TypeName, Annotation)) {
	for obj, anns := range a.typ {
		if ann := find(anns, name); ann != nil {
			visit(obj, *ann)
		}
	}
}

// Fields calls visit for every struct field carrying the named annotation.
func (a *Annotations) Fields(name string, visit func(*types.Var, Annotation)) {
	for obj, anns := range a.field {
		if ann := find(anns, name); ann != nil {
			visit(obj, *ann)
		}
	}
}

func find(anns []Annotation, name string) *Annotation {
	for i := range anns {
		if anns[i].Name == name {
			return &anns[i]
		}
	}
	return nil
}

// Suppressed reports whether an //skueue:ignore for analyzer covers the
// position: an ignore suppresses its own line (trailing comment) and the
// line below it (comment above the offending line). Analyzers may consult
// it directly to prune work (e.g. a call-graph edge) in addition to the
// automatic check Reportf performs.
func (a *Annotations) Suppressed(pos token.Position, analyzer string) bool {
	lines := a.ignores[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// parseMarker parses one comment line. ok is false for ordinary comments.
func parseMarker(text string) (ann Annotation, ok bool) {
	body, found := strings.CutPrefix(strings.TrimSpace(text), "//skueue:")
	if !found {
		return ann, false
	}
	body, reason, hasReason := strings.Cut(body, " -- ")
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return ann, false
	}
	ann.Name = fields[0]
	ann.Args = fields[1:]
	if hasReason {
		ann.Reason = strings.TrimSpace(reason)
	}
	return ann, true
}

func buildAnnotations(prog *Program) *Annotations {
	a := &Annotations{
		fn:      make(map[*types.Func][]Annotation),
		field:   make(map[*types.Var][]Annotation),
		typ:     make(map[*types.TypeName][]Annotation),
		ignores: make(map[string]map[int]map[string]bool),
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			a.scanComments(prog.Fset, file)
			a.scanDecls(prog.Fset, pkg.Info, file)
		}
	}
	return a
}

// scanComments indexes ignore markers and flags malformed ones; it sees
// every comment in the file, so markers that scanDecls also picks up are
// validated here exactly once.
func (a *Annotations) scanComments(fset *token.FileSet, file *ast.File) {
	for _, group := range file.Comments {
		for _, c := range group.List {
			ann, ok := parseMarker(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if !knownAnnotations[ann.Name] {
				a.malformed = append(a.malformed, Diagnostic{
					Analyzer: "lint", Pos: pos,
					Message: "unknown marker //skueue:" + ann.Name,
				})
				continue
			}
			if ann.Name != "ignore" {
				continue
			}
			if len(ann.Args) != 1 || ann.Reason == "" {
				a.malformed = append(a.malformed, Diagnostic{
					Analyzer: "lint", Pos: pos,
					Message: `malformed suppression: want "//skueue:ignore <analyzer>[,<analyzer>] -- reason"`,
				})
				continue
			}
			lines := a.ignores[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				a.ignores[pos.Filename] = lines
			}
			names := lines[pos.Line]
			if names == nil {
				names = make(map[string]bool)
				lines[pos.Line] = names
			}
			for _, name := range strings.Split(ann.Args[0], ",") {
				names[name] = true
			}
		}
	}
}

// scanDecls attaches non-ignore markers to the objects they document:
// function declarations, interface methods, struct fields and type specs.
func (a *Annotations) scanDecls(fset *token.FileSet, info *types.Info, file *ast.File) {
	addFunc := func(ident *ast.Ident, groups ...*ast.CommentGroup) {
		fn, ok := info.Defs[ident].(*types.Func)
		if !ok {
			return
		}
		a.fn[fn] = append(a.fn[fn], markersOf(groups)...)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			addFunc(n.Name, n.Doc)
		case *ast.InterfaceType:
			for _, m := range n.Methods.List {
				for _, name := range m.Names {
					addFunc(name, m.Doc, m.Comment)
				}
			}
		case *ast.StructType:
			for _, f := range n.Fields.List {
				anns := markersOf([]*ast.CommentGroup{f.Doc, f.Comment})
				if len(anns) == 0 {
					continue
				}
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						a.field[v] = append(a.field[v], anns...)
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				anns := markersOf([]*ast.CommentGroup{ts.Doc, n.Doc, ts.Comment})
				if len(anns) == 0 {
					continue
				}
				if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
					a.typ[tn] = append(a.typ[tn], anns...)
				}
			}
		}
		return true
	})
}

func markersOf(groups []*ast.CommentGroup) []Annotation {
	var out []Annotation
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if ann, ok := parseMarker(c.Text); ok && ann.Name != "ignore" && knownAnnotations[ann.Name] {
				ann.Pos = c.Pos()
				out = append(out, ann)
			}
		}
	}
	return out
}
