// Package atest is the golden-file test harness for the analyzers, in
// the spirit of golang.org/x/tools/go/analysis/analysistest (which the
// offline build cannot depend on).
//
// A test points it at testdata/src/<pkg> directories; every line that
// should produce a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment (several quoted patterns for several diagnostics). The
// harness type-checks the packages, runs the analyzer, and fails the
// test for every unmatched expectation and every unexpected diagnostic.
// Expectations match against "[analyzer] message", so a pattern can pin
// the analyzer name as well as the text.
package atest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"skueue/internal/analysis"
)

// Reporter is the slice of *testing.T the harness consumes. It exists so
// the harness can be tested against a recording implementation: a golden
// harness that silently swallows unmatched expectations or unexpected
// diagnostics would quietly hollow out every analyzer suite built on it.
// Implementations whose Fatal does not stop the goroutine (testing.T's
// does, via runtime.Goexit) are safe: the harness returns after Fatal.
type Reporter interface {
	Helper()
	Errorf(format string, args ...any)
	Fatal(args ...any)
}

var _ Reporter = (*testing.T)(nil)

// Run loads testdata/src/<pkg> for each named package (listed in
// dependency order if they import each other), runs the analyzer over
// the resulting program, and checks diagnostics against want comments.
func Run(t Reporter, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := load(testdata, pkgs)
	if err != nil {
		t.Fatal(err)
		return
	}
	check(t, prog, analysis.Run(prog, []*analysis.Analyzer{a}))
}

// testImporter resolves testdata packages by their directory name and
// everything else from the standard library source importer.
type testImporter struct {
	done map[string]*analysis.Package
	std  types.ImporterFrom
}

func (m *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.done[path]; ok {
		return pkg.Types, nil
	}
	return m.std.ImportFrom(path, "", 0)
}

func load(testdata string, pkgs []string) (*analysis.Program, error) {
	fset := token.NewFileSet()
	imp := &testImporter{done: make(map[string]*analysis.Package), std: analysis.NewStdImporter(fset)}
	var order []*analysis.Package
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		var files []*ast.File
		for _, m := range matches {
			f, err := parser.ParseFile(fset, m, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := analysis.CheckFiles(fset, imp, name, files)
		if err != nil {
			return nil, fmt.Errorf("type-checking testdata package %s: %w", name, err)
		}
		pkg := &analysis.Package{Path: name, Dir: dir, Types: tpkg, Info: info, Files: files}
		imp.done[name] = pkg
		order = append(order, pkg)
	}
	return analysis.NewProgram(fset, order), nil
}

// expectation is one `// want "re"` pattern with its location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func expectations(prog *analysis.Program) ([]*expectation, error) {
	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(m[1])
					for rest != "" {
						if rest[0] != '"' && rest[0] != '`' {
							return nil, fmt.Errorf("%s: malformed want comment: %s", pos, c.Text)
						}
						q, err := quotedPrefix(rest)
						if err != nil {
							return nil, fmt.Errorf("%s: malformed want comment: %s", pos, c.Text)
						}
						pattern, err := strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s: malformed want pattern %s", pos, q)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want regexp: %v", pos, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
						rest = strings.TrimSpace(rest[len(q):])
					}
				}
			}
		}
	}
	return wants, nil
}

// quotedPrefix extracts one leading Go string literal — double-quoted
// (with escapes) or backquoted (raw, the friendly form for regexes).
func quotedPrefix(s string) (string, error) {
	if s[0] == '`' {
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[:i+2], nil
		}
		return "", fmt.Errorf("unterminated raw quote")
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated quote")
}

func check(t Reporter, prog *analysis.Program, got []analysis.Diagnostic) {
	t.Helper()
	wants, err := expectations(prog)
	if err != nil {
		t.Fatal(err)
		return
	}
	for _, d := range got {
		text := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
