package atest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"skueue/internal/analysis"
)

// probe reports every function whose name starts with "bad" — a minimal
// analyzer with fully predictable output, so the test can distinguish
// the harness's verdicts from the analyzer's.
var probe = &analysis.Analyzer{
	Name: "probe",
	Doc:  "test analyzer: reports functions named bad*",
	Run: func(pass *analysis.Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					if fn, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fn.Name.Name, "bad") {
						pass.Reportf(fn.Pos(), "probe found %s", fn.Name.Name)
					}
				}
			}
		}
	},
}

// recorder implements Reporter, collecting what the harness would have
// failed the test with.
type recorder struct {
	errors []string
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatal(args ...any) {
	r.fatals = append(r.fatals, fmt.Sprint(args...))
}

func (r *recorder) errorMatching(substr string) string {
	for _, e := range r.errors {
		if strings.Contains(e, substr) {
			return e
		}
	}
	return ""
}

// TestHarnessFlagsMismatches proves the golden harness itself fails on
// both kinds of drift: a diagnostic with no want comment, and a want
// comment no diagnostic matched. If either path went quiet, every
// analyzer suite in the repo would still pass while checking nothing.
func TestHarnessFlagsMismatches(t *testing.T) {
	rec := &recorder{}
	Run(rec, "testdata", probe, "selfcheck")
	if len(rec.fatals) > 0 {
		t.Fatalf("harness failed to load the fixture: %v", rec.fatals)
	}
	if len(rec.errors) != 2 {
		t.Fatalf("harness reported %d errors, want exactly 2 (one unexpected, one unmatched):\n%s",
			len(rec.errors), strings.Join(rec.errors, "\n"))
	}
	if e := rec.errorMatching("unexpected diagnostic"); e == "" || !strings.Contains(e, "badSurprise") {
		t.Errorf("no 'unexpected diagnostic' error naming badSurprise:\n%s", strings.Join(rec.errors, "\n"))
	}
	if e := rec.errorMatching("expected diagnostic matching"); e == "" || !strings.Contains(e, "goodGhost") {
		t.Errorf("no 'expected diagnostic matching' error for goodGhost's want comment:\n%s", strings.Join(rec.errors, "\n"))
	}
	// The matched pair must NOT produce an error — a harness that flags
	// correct matches is as useless as one that misses drift.
	if e := rec.errorMatching("badMatched"); e != "" {
		t.Errorf("harness flagged the correctly matched diagnostic: %s", e)
	}
}

// TestHarnessRejectsMalformedWant: a want comment that is not a quoted
// pattern must abort the run (Fatal), not silently check nothing.
func TestHarnessRejectsMalformedWant(t *testing.T) {
	rec := &recorder{}
	Run(rec, "testdata", probe, "malformedwant")
	if len(rec.fatals) == 0 {
		t.Fatal("harness accepted a malformed want comment")
	}
	if msg := rec.fatals[0]; !strings.Contains(msg, "malformed want") {
		t.Errorf("fatal does not explain the malformed want comment: %s", msg)
	}
}
