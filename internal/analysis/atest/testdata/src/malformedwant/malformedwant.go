// Package malformedwant carries a want comment without a quoted pattern;
// the harness must refuse the whole run rather than ignore it.
package malformedwant

func ok() {} // want unquoted-pattern

var _ = ok
