// Package selfcheck is the fixture for the harness's own test: the probe
// analyzer reports every function whose name starts with "bad", so each
// function below exercises one harness verdict.
package selfcheck

// badMatched is reported and its want comment matches: no harness error.
func badMatched() {} // want `\[probe\] probe found badMatched`

// badSurprise is reported but carries no want comment: the harness must
// flag an unexpected diagnostic.
func badSurprise() {}

// goodGhost is never reported, so its want comment must surface as an
// unmatched expectation.
func goodGhost() {} // want "probe found goodGhost"

var _ = badMatched
var _ = badSurprise
var _ = goodGhost
