// Package analysis is a small, self-contained static-analysis framework
// in the spirit of golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast and go/types (the x/tools module is not a
// dependency of this repo, and the build environment is offline — see
// the loader in load.go for how packages are type-checked without it).
//
// It exists to mechanically enforce the repo's load-bearing concurrency
// and durability invariants — rules that previously lived only in
// DESIGN.md prose and code review:
//
//   - runnerblock: code reachable from the transport runner hot path must
//     never block (no fsync, no time.Sleep, no dial, no unguarded channel
//     send). PR 5's fsync-on-the-runner bug is the motivating regression.
//   - lockorder: mutexes nest only along the declared lock hierarchy, and
//     ranked locks are not held across blocking channel operations or
//     blocking I/O (unless the lock is declared an I/O guard).
//   - releaseorder: a client-visible outcome (wire.CliDone carrying a
//     result) is released to a session only through the journal's parked
//     releases — after the covering fsync — or under an explicit
//     journal-disabled guard (PR 4/5's journaled-before-release contract).
//   - wirereg: every concrete type that crosses the wire inside an
//     interface-typed payload is registered with the wire codec, so the
//     "gob: name not registered" class of drift fails in CI instead of at
//     runtime.
//   - futureerr: results of a Future are only read after synchronizing on
//     its completion, and Wait errors are not discarded (the remote-future
//     hang class fixed ad hoc in PR 5).
//   - modeseam: the ordering semantics (queue/stack/heap) stay behind the
//     discipline strategy interface — every marked discipline implements
//     the seam, and the seam's package names the mode enum's constants
//     only in the file declaring the seam, so `cfg.Mode == batch.Stack`
//     special cases cannot creep back into the wave engine.
//   - statecomplete: every field of a struct marked as snapshot state is
//     either referenced (transitively, through helpers and interface
//     implementations) by the struct's marked capture AND restore
//     functions, or carries a justified //skueue:ephemeral marker — so a
//     field added to recovery-critical state cannot silently be dropped
//     from the member image (the earlyReplies/earlyAcks gap class). The
//     image side is checked too: an image field no snapshot function
//     reads is dead, and one that is captured but never restored (or
//     vice versa) is half-wired.
//   - guardedby: fields annotated with their guarding mutex are only
//     accessed while that mutex is lexically held, from a helper marked
//     //skueue:locked (whose call sites must hold the mutex), or inside
//     a function marked //skueue:owned-by (single-owner phases like
//     constructors and pre-Start restore).
//
// # Declaring invariants in source
//
// Analyzers are driven by machine-readable marker comments placed on the
// declarations they concern, so the rules live next to the code they
// protect and testdata packages can declare their own:
//
//	//skueue:runner                  — func: root of the runner hot path
//	//skueue:runs-on-runner          — func: func-literal args run on the runner
//	//skueue:nonblocking -- reason   — func: trusted not to block (pruned)
//	//skueue:blocking -- reason      — func: blocks by design; calling it
//	                                   from the hot path is a violation
//	//skueue:lock <rank> [io]        — mutex field: hierarchy rank; "io"
//	                                   permits blocking I/O while held
//	//skueue:client-release          — func: hands frames to a client session
//	//skueue:client-outcome          — type: the client completion frame
//	//skueue:journaled-release       — func: runs after the covering fsync
//	//skueue:wire-payload            — func: last arg crosses the wire
//	//skueue:wire-register           — func: registers a wire type
//	//skueue:future                  — type: a future with Value/Err/Done
//	//skueue:awaits-future           — func: synchronizes a future argument
//	//skueue:discipline-seam <type>  — interface: the mode-strategy seam;
//	                                   the arg names the guarded mode enum
//	//skueue:discipline              — type: one mode-strategy implementation
//	//skueue:snapshot-state <Image>  — struct: survives restarts via the
//	                                   named image struct
//	//skueue:snapshot-capture <S...> — func: capture root for the named
//	                                   snapshot-state structs
//	//skueue:snapshot-restore <S...> — func: restore root for the named
//	                                   snapshot-state structs
//	//skueue:ephemeral -- reason     — field: justified as not surviving
//	                                   a restart
//	//skueue:guarded-by <mu>         — field: accessed only under the
//	                                   sibling mutex field <mu> (or
//	                                   <Type>.<mu> for another struct's)
//	//skueue:locked <mu>             — method: called with the receiver's
//	                                   <mu> held (checked at call sites)
//	//skueue:owned-by <o> -- reason  — func: exclusive-owner phase; guarded
//	                                   fields are accessible throughout
//
// A finding is silenced with a justified suppression on (or on the line
// above) the offending line:
//
//	//skueue:ignore <analyzer>[,<analyzer>] -- reason
//
// The reason is mandatory; an ignore without one is itself reported.
package analysis
