// Package futureerr catches unsynchronized reads of future results.
//
// Reading a //skueue:future's result accessors (Value, Empty, Rounds)
// before the future completes returns zero values and, worse, hides the
// error a failed operation carried — the remote-future hang class fixed
// ad hoc in PR 5. Within each function body, a read of a future's
// result is accepted only if the same receiver expression was
// synchronized lexically earlier: a call to one of its completion
// methods (Wait, Result, Err, Completed, Done), or being passed to a
// //skueue:awaits-future function. A Wait or Result whose error result
// is discarded (expression statement) is reported too.
package futureerr

import (
	"go/ast"
	"go/token"
	"go/types"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "futureerr",
	Doc:  "future results are read only after synchronizing on completion, and Wait errors are not discarded",
	Run:  run,
}

var readMethods = map[string]bool{"Value": true, "Empty": true, "Rounds": true}
var syncMethods = map[string]bool{"Wait": true, "Result": true, "Err": true, "Completed": true, "Done": true}

// errCarrying marks the sync methods whose returned error must not be
// dropped on the floor: discarding it hides a failed operation.
var errCarrying = map[string]bool{"Wait": true, "Result": true}

func run(pass *analysis.Pass) {
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkBody(pass, pkg, fd.Body)
			}
		}
	}
}

type access struct {
	recv string // rendered receiver expression
	pos  token.Pos
	name string // method called
}

// checkBody collects future accesses across one function body (nested
// literals included: a closure over the same variable shares the
// receiver expression) and validates reads against earlier syncs.
func checkBody(pass *analysis.Pass, pkg *analysis.Package, body *ast.BlockStmt) {
	var reads, syncs []access
	discard := make(map[*ast.CallExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				discard[call] = true
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Futures handed to an awaiting helper are synchronized by it.
		if callee := analysis.Callee(pkg.Info, call); callee != nil && pass.Ann.Func(callee, "awaits-future") != nil {
			for _, arg := range call.Args {
				if isFuture(pass, pkg.Info, arg) {
					syncs = append(syncs, access{recv: types.ExprString(arg), pos: call.Pos()})
				}
			}
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isFuture(pass, pkg.Info, sel.X) {
			return true
		}
		a := access{recv: types.ExprString(sel.X), pos: call.Pos(), name: sel.Sel.Name}
		switch {
		case syncMethods[a.name]:
			if errCarrying[a.name] && discard[call] {
				pass.Reportf(call.Pos(), "%s.%s error discarded; a failed operation would go unnoticed", a.recv, a.name)
			}
			syncs = append(syncs, a)
		case readMethods[a.name]:
			reads = append(reads, a)
		}
		return true
	})

	for _, r := range reads {
		ok := false
		for _, s := range syncs {
			if s.recv == r.recv && s.pos < r.pos {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(r.pos, "%s.%s read before synchronizing on completion; check Wait/Err/Completed (or Done) first", r.recv, r.name)
		}
	}
}

// isFuture reports whether the expression's static type is (a pointer
// to) a //skueue:future type.
func isFuture(pass *analysis.Pass, info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return pass.Ann.Type(named.Obj(), "future") != nil
}
