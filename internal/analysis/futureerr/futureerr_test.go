package futureerr_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/futureerr"
)

func TestFutureerr(t *testing.T) {
	atest.Run(t, "testdata", futureerr.Analyzer, "fut")
}
