// Package fut exercises the futureerr analyzer: unsynchronized result
// reads, every accepted synchronization form, discarded Wait errors,
// malformed suppressions and valid ones.
package fut

import "errors"

//skueue:future
type Future struct{ done chan struct{} }

func (f *Future) Wait() error { return errors.New("x") }
func (f *Future) Result() (any, bool, error) {
	return nil, false, errors.New("x")
}
func (f *Future) Err() error            { return nil }
func (f *Future) Completed() bool       { return true }
func (f *Future) Done() <-chan struct{} { return f.done }
func (f *Future) Value() []byte         { return nil }
func (f *Future) Empty() bool           { return false }
func (f *Future) Rounds() uint64        { return 0 }

//skueue:awaits-future
func await(f *Future) {}

func bad(f *Future) {
	_ = f.Value() // want `f\.Value read before synchronizing on completion`
}

func good(f *Future) {
	if err := f.Wait(); err != nil {
		return
	}
	_ = f.Value() // ok
}

func discarded(f *Future) {
	f.Wait()      // want `f\.Wait error discarded`
	_ = f.Value() // ok: Wait still synchronized, its error is the finding
}

func viaResult(f *Future) {
	if _, _, err := f.Result(); err != nil {
		return
	}
	_ = f.Rounds() // ok: Result is a synchronization point
}

func discardedResult(f *Future) {
	f.Result() // want `f\.Result error discarded`
}

func viaCompleted(f *Future) {
	if !f.Completed() {
		return
	}
	_ = f.Empty() // ok
}

func viaHelper(f *Future) {
	await(f)
	_ = f.Empty() // ok
}

func viaDone(f *Future) {
	<-f.Done()
	_ = f.Rounds() // ok
}

func wrongReceiver(f, g *Future) {
	_ = f.Wait()
	_ = g.Value() // want `g\.Value read before synchronizing`
}

func suppressedRead(f *Future) {
	//skueue:ignore futureerr -- fixture: best-effort progress probe
	_ = f.Value()
}

func malformedSuppression(f *Future) {
	//skueue:ignore futureerr // want `\[lint\] malformed suppression`
	_ = f.Value() // want `f\.Value read before synchronizing`
}
