// Package guardedby enforces declared mutex→field guard relations.
//
// A struct field annotated //skueue:guarded-by <mutexfield> may only be
// read or written while that mutex is held. Two spellings are accepted:
//
//	//skueue:guarded-by mu        — sibling field of the same struct;
//	                                 an access x.f needs x.mu held
//	//skueue:guarded-by Server.mu — a mutex field of another struct in
//	                                 the same package; any holder of
//	                                 that mutex qualifies
//
// Two escape hatches keep the rule honest instead of noisy:
//
//	//skueue:owned-by <owner> -- reason   on a function: its whole body
//	    is exempt — the function runs while no other goroutine can see
//	    the fields (constructors, pre-Start restore paths, runner-only
//	    helpers).
//	//skueue:locked <mutexfield>          on a method: the body is
//	    analyzed with the receiver's mutex already held, and every call
//	    site is checked to actually hold it (the *Locked helper idiom).
//
// The walk is the same branch-aware lexical pass lockorder uses: it
// threads the held-lock set through straight-line code, branches, loops
// and defers of one function body. Unlike lockorder it tracks every
// sync.Mutex/RWMutex field acquisition, ranked or not. Accesses are
// field selections (x.f); keyed composite-literal writes are exempt by
// design — a literal builds a fresh value no other goroutine can see
// yet. Aliased receivers (two variables naming the same struct) defeat
// the sibling-form expression match; name the receiver consistently or
// suppress with a justification.
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "//skueue:guarded-by fields are only touched with their mutex held, from an //skueue:owned-by function, or via an //skueue:locked helper",
	Run:  run,
}

var acquireMethods = map[string]bool{"Lock": true, "RLock": true}
var releaseMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// guard is one resolved //skueue:guarded-by relation.
type guard struct {
	mu      *types.Var // the guarding mutex field
	sibling bool       // same-struct form: the access path must match
	display string     // annotation text for diagnostics
	owner   string     // name of the struct declaring the guarded field
}

// held is one currently-held mutex.
type held struct {
	field *types.Var // the mutex field object
	expr  string     // rendered acquisition expression, e.g. "s.mu"
}

type checker struct {
	pass   *analysis.Pass
	pkg    *analysis.Package
	guards map[*types.Var]*guard      // guarded field -> its relation
	locked map[*types.Func]*types.Var // //skueue:locked method -> receiver mutex
}

func run(pass *analysis.Pass) {
	guards := resolveGuards(pass)
	locked := resolveLocked(pass)
	for _, pkg := range pass.Prog.Pkgs {
		c := &checker{pass: pass, pkg: pkg, guards: guards, locked: locked}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn != nil {
					if ann := pass.Ann.Func(fn, "owned-by"); ann != nil {
						if len(ann.Args) == 0 || ann.Reason == "" {
							pass.Reportf(fn.Pos(), `malformed //skueue:owned-by on %s: want "//skueue:owned-by <owner> -- reason"`, fn.Name())
						}
						continue // single-owner context: no locking required
					}
				}
				var seed []*held
				if fn != nil {
					if mu := locked[fn]; mu != nil {
						seed = seedLocked(fd, mu)
					}
				}
				c.block(fd.Body.List, seed)
			}
		}
	}
}

// seedLocked builds the initial held set of an //skueue:locked method:
// the receiver's mutex is held on entry by contract.
func seedLocked(fd *ast.FuncDecl, mu *types.Var) []*held {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recv := fd.Recv.List[0].Names[0].Name
	if recv == "" || recv == "_" {
		return nil
	}
	return []*held{{field: mu, expr: recv + "." + mu.Name()}}
}

// resolveGuards maps every //skueue:guarded-by field to its mutex.
func resolveGuards(pass *analysis.Pass) map[*types.Var]*guard {
	out := make(map[*types.Var]*guard)
	pass.Ann.Fields("guarded-by", func(f *types.Var, ann analysis.Annotation) {
		if len(ann.Args) != 1 {
			pass.Reportf(f.Pos(), `malformed //skueue:guarded-by on %s: want "//skueue:guarded-by <mutexfield>" or "//skueue:guarded-by <Type>.<mutexfield>"`, f.Name())
			return
		}
		ownerName, st := owningStruct(pass.Prog, f)
		g := &guard{display: ann.Args[0], owner: ownerName}
		if typeName, muName, qualified := strings.Cut(ann.Args[0], "."); qualified {
			g.mu = structField(namedStruct(f.Pkg(), typeName), muName)
		} else if st != nil {
			g.sibling = true
			g.mu = structField(st, ann.Args[0])
		}
		if g.mu == nil {
			pass.Reportf(f.Pos(), "//skueue:guarded-by on %s names %q, which does not resolve to a field in this package", f.Name(), ann.Args[0])
			return
		}
		if !isMutex(g.mu.Type()) {
			pass.Reportf(f.Pos(), "//skueue:guarded-by on %s names %q, which is not a sync.Mutex or sync.RWMutex field", f.Name(), ann.Args[0])
			return
		}
		out[f] = g
	})
	return out
}

// resolveLocked maps every //skueue:locked method to the receiver mutex
// its contract requires held.
func resolveLocked(pass *analysis.Pass) map[*types.Func]*types.Var {
	out := make(map[*types.Func]*types.Var)
	pass.Ann.Funcs("locked", func(fn *types.Func, ann analysis.Annotation) {
		sig, _ := fn.Type().(*types.Signature)
		if len(ann.Args) != 1 || sig == nil || sig.Recv() == nil {
			pass.Reportf(fn.Pos(), `malformed //skueue:locked on %s: want "//skueue:locked <mutexfield>" on a method`, fn.Name())
			return
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		st, _ := recv.Underlying().(*types.Struct)
		mu := structField(st, ann.Args[0])
		if mu == nil || !isMutex(mu.Type()) {
			pass.Reportf(fn.Pos(), "//skueue:locked on %s names %q, which is not a sync mutex field of the receiver", fn.Name(), ann.Args[0])
			return
		}
		out[fn] = mu
	})
	return out
}

// owningStruct finds the named struct type declaring field f.
func owningStruct(prog *analysis.Program, f *types.Var) (string, *types.Struct) {
	if f.Pkg() == nil {
		return "", nil
	}
	scope := f.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name(), st
			}
		}
	}
	return "", nil
}

func namedStruct(pkg *types.Package, name string) *types.Struct {
	if pkg == nil {
		return nil
	}
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	st, _ := tn.Type().Underlying().(*types.Struct)
	return st
}

func structField(st *types.Struct, name string) *types.Var {
	if st == nil {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// lockOf resolves a call like x.mu.Lock() to the mutex field it takes.
// Every sync mutex field participates — the guard map does not require
// a //skueue:lock rank.
func (c *checker) lockOf(call *ast.CallExpr) (h *held, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !(acquireMethods[sel.Sel.Name] || releaseMethods[sel.Sel.Name]) {
		return nil, false, false
	}
	recv, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	field, isVar := c.pkg.Info.Uses[recv.Sel].(*types.Var)
	if !isVar || !isMutex(field.Type()) {
		return nil, false, false
	}
	return &held{field: field, expr: types.ExprString(sel.X)}, acquireMethods[sel.Sel.Name], true
}

// block walks one statement list, threading the held set through it.
func (c *checker) block(stmts []ast.Stmt, locks []*held) []*held {
	for _, s := range stmts {
		locks = c.stmt(s, locks)
	}
	return locks
}

func (c *checker) stmt(s ast.Stmt, locks []*held) []*held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.expr(s.X, locks)
	case *ast.SendStmt:
		locks = c.expr(s.Chan, locks)
		return c.expr(s.Value, locks)
	case *ast.IncDecStmt:
		return c.expr(s.X, locks)
	case *ast.AssignStmt:
		for _, e := range append(append([]ast.Expr{}, s.Rhs...), s.Lhs...) {
			locks = c.expr(e, locks)
		}
		return locks
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						locks = c.expr(v, locks)
					}
				}
			}
		}
		return locks
	case *ast.DeferStmt:
		// A deferred unlock holds the lock to the end of the body: leave
		// the set unchanged. Arguments evaluate now, under the current
		// set; a deferred literal runs at return, approximated by the
		// current set.
		if _, _, isLock := c.lockOf(s.Call); isLock {
			return locks
		}
		for _, arg := range s.Call.Args {
			c.expr(arg, locks)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(lit.Body.List, locks)
		} else {
			c.expr(s.Call.Fun, locks)
		}
		return locks
	case *ast.GoStmt:
		// Arguments evaluate on this goroutine; the body runs on a new
		// one with nothing held.
		for _, arg := range s.Call.Args {
			c.expr(arg, locks)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(lit.Body.List, nil)
		} else {
			c.expr(s.Call.Fun, locks)
		}
		return locks
	case *ast.IfStmt:
		if s.Init != nil {
			locks = c.stmt(s.Init, locks)
		}
		locks = c.expr(s.Cond, locks)
		thenLocks := c.block(s.Body.List, locks)
		elseLocks := locks
		if s.Else != nil {
			elseLocks = c.stmt(s.Else, locks)
		}
		switch {
		case terminates(s.Body) && s.Else == nil:
			return locks
		case terminates(s.Body):
			return elseLocks
		case s.Else != nil && stmtTerminates(s.Else):
			return thenLocks
		default:
			return locks
		}
	case *ast.BlockStmt:
		return c.block(s.List, locks)
	case *ast.ForStmt:
		if s.Init != nil {
			locks = c.stmt(s.Init, locks)
		}
		if s.Cond != nil {
			locks = c.expr(s.Cond, locks)
		}
		c.block(s.Body.List, locks)
		return locks
	case *ast.RangeStmt:
		locks = c.expr(s.X, locks)
		c.block(s.Body.List, locks)
		return locks
	case *ast.SwitchStmt:
		if s.Init != nil {
			locks = c.stmt(s.Init, locks)
		}
		if s.Tag != nil {
			locks = c.expr(s.Tag, locks)
		}
		for _, cl := range s.Body.List {
			c.block(cl.(*ast.CaseClause).Body, locks)
		}
		return locks
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			locks = c.stmt(s.Init, locks)
		}
		locks = c.stmt(s.Assign, locks)
		for _, cl := range s.Body.List {
			c.block(cl.(*ast.CaseClause).Body, locks)
		}
		return locks
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			inner := locks
			if cc.Comm != nil {
				inner = c.stmt(cc.Comm, locks)
			}
			c.block(cc.Body, inner)
		}
		return locks
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			locks = c.expr(e, locks)
		}
		return locks
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, locks)
	}
	return locks
}

// expr scans an expression for mutex transitions, guarded-field accesses
// and //skueue:locked call sites, returning the updated held set.
func (c *checker) expr(e ast.Expr, locks []*held) []*held {
	if e == nil {
		return locks
	}
	result := locks
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal may run on another goroutine or after the locks
			// are gone: analyze it with nothing held.
			c.block(n.Body.List, nil)
			return false
		case *ast.SelectorExpr:
			c.checkAccess(n, result)
		case *ast.CallExpr:
			h, acquire, isLock := c.lockOf(n)
			if !isLock {
				c.checkLockedCall(n, result)
				return true
			}
			if acquire {
				result = append(append([]*held{}, result...), h)
			} else {
				result = release(result, h)
			}
		}
		return true
	})
	return result
}

// checkAccess flags a read or write of a guarded field without its
// mutex. Keyed composite-literal fields are not selector expressions
// and are therefore exempt (a fresh value under construction).
func (c *checker) checkAccess(sel *ast.SelectorExpr, locks []*held) {
	selection, ok := c.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	f, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	g, ok := c.guards[f]
	if !ok {
		return
	}
	if c.holds(g, sel, locks) {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(), "%s.%s accessed without holding its guard %s (//skueue:guarded-by); hold the mutex, use an //skueue:locked helper, or mark the function //skueue:owned-by",
		g.owner, f.Name(), g.display)
}

func (c *checker) holds(g *guard, sel *ast.SelectorExpr, locks []*held) bool {
	want := ""
	if g.sibling {
		want = types.ExprString(sel.X) + "." + g.mu.Name()
	}
	for _, h := range locks {
		if h.field != g.mu {
			continue
		}
		if !g.sibling || h.expr == want {
			return true
		}
	}
	return false
}

// checkLockedCall enforces the //skueue:locked contract at call sites:
// calling x.fooLocked() requires x's mutex in the held set.
func (c *checker) checkLockedCall(call *ast.CallExpr, locks []*held) {
	callee := analysis.Callee(c.pkg.Info, call)
	if callee == nil {
		return
	}
	mu, ok := c.locked[callee]
	if !ok {
		return
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	want := ""
	if isSel {
		want = types.ExprString(sel.X) + "." + mu.Name()
	}
	for _, h := range locks {
		if h.field == mu && (want == "" || h.expr == want) {
			return
		}
	}
	c.pass.Reportf(call.Pos(), "call to %s requires %s held at the call site (//skueue:locked)",
		analysis.FuncID(callee), mu.Name())
}

func release(locks []*held, h *held) []*held {
	for i := len(locks) - 1; i >= 0; i-- {
		if locks[i].field == h.field && locks[i].expr == h.expr {
			return append(append([]*held{}, locks[:i]...), locks[i+1:]...)
		}
	}
	for i := len(locks) - 1; i >= 0; i-- {
		if locks[i].field == h.field {
			return append(append([]*held{}, locks[:i]...), locks[i+1:]...)
		}
	}
	return locks
}

func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}
