package guardedby_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	atest.Run(t, "testdata", guardedby.Analyzer, "guarded")
}
