// Package guarded exercises the guardedby analyzer: the sibling and
// cross-struct guard forms, the owned-by and locked escape hatches,
// branch-aware lock tracking, goroutine boundaries and suppression.
package guarded

import "sync"

// box is the sibling form: count and names may only be touched while
// the same instance's mu is held.
type box struct {
	mu sync.Mutex
	//skueue:guarded-by mu
	count int
	//skueue:guarded-by mu
	names map[string]int
}

// registry/session is the cross-struct form: any holder of a
// registry's mu may touch a session's cursor.
type registry struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

type session struct {
	id string
	//skueue:guarded-by registry.mu
	cursor int
}

func (b *box) inc() {
	b.mu.Lock()
	b.count++
	b.mu.Unlock()
}

func (b *box) deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

func (b *box) bare() int {
	return b.count // want `\[guardedby\] box\.count accessed without holding its guard mu`
}

func (b *box) afterUnlock() {
	b.mu.Lock()
	b.count = 1
	b.mu.Unlock()
	b.count = 2 // want `box\.count accessed without holding its guard mu`
}

// steal holds a's mutex but touches b's field: the sibling form matches
// the access path, so another instance's lock does not qualify.
func steal(a, b *box) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.count++ // want `box\.count accessed without holding its guard mu`
}

// branch exercises the terminating-branch threading: the early-return
// path releases, the fall-through path still holds.
func (b *box) branch(ok bool) {
	b.mu.Lock()
	if !ok {
		b.mu.Unlock()
		return
	}
	b.count++
	b.mu.Unlock()
}

// read holds the guard as a reader; RLock qualifies, and the
// cross-struct form accepts it for the session's field.
func (r *registry) read(id string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sessions[id].cursor
}

func wander(s *session) {
	s.cursor++ // want `session\.cursor accessed without holding its guard registry\.mu`
}

// iterate ranges over a guarded map without the lock (the range operand
// is an access too).
func (b *box) iterate() {
	for k := range b.names { // want `box\.names accessed without holding its guard mu`
		_ = k
	}
}

// spawn leaks the access onto a new goroutine: the literal body starts
// with nothing held even though the spawner holds mu.
func (b *box) spawn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.count++ // want `box\.count accessed without holding its guard mu`
	}()
}

// newBox is single-owner until it returns: exempt wholesale.
//
//skueue:owned-by constructor -- fixture: no other goroutine can see b yet
func newBox() *box {
	b := &box{names: make(map[string]int)}
	b.count = 1
	return b
}

// fresh writes through a keyed composite literal: a fresh value under
// construction, exempt by design.
func fresh() box {
	return box{count: 3}
}

// bumpLocked is the *Locked helper idiom: the body assumes mu held, and
// call sites are checked instead.
//
//skueue:locked mu
func (b *box) bumpLocked() {
	b.count++
}

func (b *box) viaHelper() {
	b.mu.Lock()
	b.bumpLocked()
	b.mu.Unlock()
}

func (b *box) helperUnlocked() {
	b.bumpLocked() // want `call to \(\*guarded\.box\)\.bumpLocked requires mu held at the call site`
}

// suppressed documents a justified unlocked read.
func (b *box) suppressed() int {
	//skueue:ignore guardedby -- fixture: racy stats read is acceptable here
	return b.count
}

// ownerless is malformed: owned-by needs an owner and a reason.
//
//skueue:owned-by constructor
func ownerless(b *box) { // want `malformed //skueue:owned-by on ownerless`
	b.count = 0
}

// wrongLocked names a mutex the receiver does not have.
//
//skueue:locked nosuch
func (b *box) wrongLocked() { // want `//skueue:locked on wrongLocked names "nosuch", which is not a sync mutex field`
}

// broken declares guards that do not resolve.
type broken struct {
	mu   sync.Mutex
	flag bool
	//skueue:guarded-by nosuchmu
	x int // want `names "nosuchmu", which does not resolve to a field in this package`
	//skueue:guarded-by flag
	y int // want `names "flag", which is not a sync\.Mutex or sync\.RWMutex field`
}
