package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package: its syntax trees and the
// full go/types information analyzers need.
type Package struct {
	Path  string
	Dir   string
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Program is the unit analyzers run over: every matched module package,
// type-checked, in dependency order, plus the annotation index built from
// their comments. Analyzers see the whole program at once, so
// cross-package rules (the runner call graph, the wire registration set)
// need no fact plumbing.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	Ann  *Annotations

	byPath map[string]*Package
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
}

// forcePureGo makes both `go list` and the source importer see a cgo-free
// build: with cgo on, packages like net split declarations into cgo files
// that go/types cannot check from source. The repo itself uses no cgo, so
// the pure-Go view is faithful.
var forcePureGo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

// goList runs `go list -json` for the patterns in dir and decodes the
// package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// moduleImporter resolves imports during type checking: module packages
// come from the Program being built, everything else (the standard
// library) from the stdlib source importer, which type-checks GOROOT
// sources on demand — no export data, no network, no x/tools.
type moduleImporter struct {
	done map[string]*types.Package
	std  types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.done[path]; ok {
		return pkg, nil
	}
	return m.std.ImportFrom(path, srcDir, mode)
}

// NewProgram assembles a Program from already type-checked packages
// (dependency order) and builds its annotation index. The golden-test
// loader uses it to construct programs from testdata trees.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{Fset: fset, Pkgs: pkgs, byPath: make(map[string]*Package)}
	for _, pkg := range pkgs {
		prog.byPath[pkg.Path] = pkg
	}
	prog.Ann = buildAnnotations(prog)
	return prog
}

// Load lists patterns in dir, parses and type-checks every matched module
// package (production files only; _test.go files are not part of the
// checked invariant surface), and returns the Program with its annotation
// index built.
func Load(dir string, patterns ...string) (*Program, error) {
	forcePureGo()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	inModule := make(map[string]*listedPackage)
	for _, lp := range listed {
		if !lp.Standard {
			inModule[lp.ImportPath] = lp
		}
	}
	// Dependency order: imports within the module first. The import graph
	// is acyclic (the compiler enforces it), so a simple DFS suffices.
	var order []*listedPackage
	state := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("import cycle through %s", lp.ImportPath)
		}
		state[lp.ImportPath] = 1
		for _, imp := range lp.Imports {
			if dep, ok := inModule[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = 2
		order = append(order, lp)
		return nil
	}
	// Deterministic traversal order for deterministic diagnostics.
	paths := make([]string, 0, len(inModule))
	for path := range inModule {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(inModule[path]); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	prog := &Program{Fset: fset, byPath: make(map[string]*Package)}
	imp := &moduleImporter{
		done: make(map[string]*types.Package),
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	for _, lp := range order {
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		imp.done[lp.ImportPath] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[lp.ImportPath] = pkg
	}
	prog.Ann = buildAnnotations(prog)
	return prog, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := CheckFiles(fset, imp, lp.ImportPath, files)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Dir: lp.Dir, Types: pkg, Info: info, Files: files}, nil
}

// CheckFiles type-checks one package's parsed files with a fresh
// types.Info holding everything the analyzers consume. On failure the
// error lists every type error with its file:line position — a broken
// tree usually has several, and the first alone rarely explains the
// rest. It is exported for the golden-test loader
// (internal/analysis/atest), which builds programs from testdata trees
// instead of `go list`.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var terrs []types.Error
	conf := types.Config{
		Importer: imp,
		// Collecting instead of stopping makes Check report every error
		// in the package, not just the first.
		Error: func(err error) {
			if te, ok := err.(types.Error); ok && !te.Soft {
				terrs = append(terrs, te)
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		if len(terrs) > 0 {
			const maxShown = 10
			var b strings.Builder
			fmt.Fprintf(&b, "%d type error(s):", len(terrs))
			for i, te := range terrs {
				if i == maxShown {
					fmt.Fprintf(&b, "\n\t... and %d more", len(terrs)-maxShown)
					break
				}
				fmt.Fprintf(&b, "\n\t%s: %s", fset.Position(te.Pos), te.Msg)
			}
			return nil, nil, errors.New(b.String())
		}
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewStdImporter returns an importer for standard-library packages that
// type-checks GOROOT sources (shared with the testdata loader).
func NewStdImporter(fset *token.FileSet) types.ImporterFrom {
	forcePureGo()
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}
