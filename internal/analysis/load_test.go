package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestLoadRepo type-checks the whole module through the loader: the
// analyzers are only as good as the program view this builds.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module from source")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) < 5 {
		t.Fatalf("loaded %d packages, want the full module", len(prog.Pkgs))
	}
	for _, want := range []string{"skueue", "skueue/internal/server", "skueue/internal/transport/tcp", "skueue/internal/wire"} {
		if prog.Package(want) == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
}

// TestLoadBrokenPackage: a package that fails to type-check must come
// back as an error listing EVERY type error with its file:line position —
// the deliberately broken fixture has three, and an opaque or
// first-error-only failure would leave the operator hunting the rest.
func TestLoadBrokenPackage(t *testing.T) {
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir, "./testdata/src/broken")
	if err == nil {
		t.Fatal("loading a package with type errors succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "type-checking") || !strings.Contains(msg, "3 type error(s)") {
		t.Errorf("error does not summarize the failure: %v", msg)
	}
	pos := regexp.MustCompile(`broken/broken\.go:(\d+):\d+`)
	lines := make(map[string]bool)
	for _, m := range pos.FindAllStringSubmatch(msg, -1) {
		lines[m[1]] = true
	}
	for _, want := range []string{"7", "11", "15"} {
		if !lines[want] {
			t.Errorf("error is missing the type error at broken.go:%s:\n%v", want, msg)
		}
	}
	if !strings.Contains(msg, "nowhere") {
		t.Errorf("error does not carry the type checker's message: %v", msg)
	}
}
