package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoadRepo type-checks the whole module through the loader: the
// analyzers are only as good as the program view this builds.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module from source")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) < 5 {
		t.Fatalf("loaded %d packages, want the full module", len(prog.Pkgs))
	}
	for _, want := range []string{"skueue", "skueue/internal/server", "skueue/internal/transport/tcp", "skueue/internal/wire"} {
		if prog.Package(want) == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
}
