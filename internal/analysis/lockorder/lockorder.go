// Package lockorder enforces the declared mutex hierarchy.
//
// Every load-bearing mutex carries a //skueue:lock <rank> [io] field
// annotation. While a lock of rank r is held, only locks of strictly
// greater rank may be acquired — equal ranks declare mutual exclusion
// ("never hold both", the tcp Peer.mu / link.bmu rule). The analyzer
// also flags blocking operations (channel ops, fsync/read/write, dial,
// sleep) performed while a ranked lock is held, unless the lock is
// declared an I/O guard with the "io" flag (the journal's file-side
// mutex is held across fsync by design).
//
// The walk is intraprocedural and lexical: it tracks Lock/Unlock pairs
// through straight-line code, branches and loops of one function body.
// A branch that returns releases its locks with the path; locks
// acquired inside a branch are assumed released inside it. Deferred
// unlocks keep the lock held to the end of the body, which is what the
// hierarchy check needs.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "mutexes nest only along the declared //skueue:lock hierarchy and are not held across blocking ops",
	Run:  run,
}

// blockingIOCalls block the goroutine while a lock is held, keyed by
// (*types.Func).FullName.
var blockingIOCalls = map[string]string{
	"(*os.File).Sync":    "fsync",
	"(*os.File).Write":   "file write",
	"(*os.File).Read":    "file read",
	"(*os.File).ReadAt":  "file read",
	"(*os.File).WriteAt": "file write",
	"time.Sleep":         "sleep",
	"net.Dial":           "network dial",
	"net.DialTimeout":    "network dial",
}

var acquireMethods = map[string]bool{"Lock": true, "RLock": true}
var releaseMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// held is one currently-held ranked lock.
type held struct {
	field *types.Var // the annotated mutex field
	expr  string     // rendered receiver expression, e.g. "j.wmu"
	rank  int
	io    bool
}

type checker struct {
	pass *analysis.Pass
	pkg  *analysis.Package
}

func run(pass *analysis.Pass) {
	for _, pkg := range pass.Prog.Pkgs {
		c := &checker{pass: pass, pkg: pkg}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						c.block(n.Body.List, nil)
					}
					return false // nested literals handled by the walk itself
				}
				return true
			})
		}
	}
}

// lockOf resolves a call like x.mu.Lock() to its annotated mutex field;
// ok distinguishes "a mutex method call" from other calls, and h is nil
// for mutexes without a //skueue:lock annotation (not in the hierarchy).
func (c *checker) lockOf(call *ast.CallExpr) (h *held, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !(acquireMethods[sel.Sel.Name] || releaseMethods[sel.Sel.Name]) {
		return nil, "", false
	}
	recv, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	field, isVar := c.pkg.Info.Uses[recv.Sel].(*types.Var)
	if !isVar || !isMutex(field.Type()) {
		return nil, "", false
	}
	ann := c.pass.Ann.Field(field, "lock")
	if ann == nil {
		return nil, sel.Sel.Name, true
	}
	rank := -1
	if len(ann.Args) > 0 {
		if r, err := strconv.Atoi(ann.Args[0]); err == nil {
			rank = r
		}
	}
	if rank < 0 {
		c.pass.Reportf(ann.Pos, "malformed //skueue:lock on %s: want a non-negative integer rank", field.Name())
		return nil, sel.Sel.Name, true
	}
	h = &held{field: field, expr: types.ExprString(sel.X), rank: rank}
	for _, a := range ann.Args[1:] {
		if a == "io" {
			h.io = true
		}
	}
	return h, sel.Sel.Name, true
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// block walks one statement list, threading the held-lock set through it
// and returning the set at its end.
func (c *checker) block(stmts []ast.Stmt, locks []*held) []*held {
	for _, s := range stmts {
		locks = c.stmt(s, locks)
	}
	return locks
}

func (c *checker) stmt(s ast.Stmt, locks []*held) []*held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.expr(s.X, locks)
	case *ast.SendStmt:
		c.blockingOp(s.Pos(), "channel send", locks)
		return c.expr(s.Value, locks)
	case *ast.AssignStmt:
		for _, e := range append(append([]ast.Expr{}, s.Rhs...), s.Lhs...) {
			locks = c.expr(e, locks)
		}
		return locks
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						locks = c.expr(v, locks)
					}
				}
			}
		}
		return locks
	case *ast.DeferStmt:
		// A deferred unlock holds the lock to the end of the body: leave
		// the set unchanged. A deferred literal runs at return; walk it
		// with the current set, since the locks it sees are those still
		// held then (approximated by now).
		if h, _, isLock := c.lockOf(s.Call); isLock {
			_ = h
			return locks
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(lit.Body.List, locks)
		}
		return locks
	case *ast.GoStmt:
		// New goroutine: fresh lock set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(lit.Body.List, nil)
		}
		return locks
	case *ast.IfStmt:
		if s.Init != nil {
			locks = c.stmt(s.Init, locks)
		}
		locks = c.expr(s.Cond, locks)
		thenLocks := c.block(s.Body.List, locks)
		elseLocks := locks
		if s.Else != nil {
			elseLocks = c.stmt(s.Else, locks)
		}
		// A terminating branch takes its lock changes with it; the
		// fall-through state is the other branch's.
		switch {
		case terminates(s.Body) && s.Else == nil:
			return locks
		case terminates(s.Body):
			return elseLocks
		case s.Else != nil && stmtTerminates(s.Else):
			return thenLocks
		default:
			return locks
		}
	case *ast.BlockStmt:
		return c.block(s.List, locks)
	case *ast.ForStmt:
		if s.Init != nil {
			locks = c.stmt(s.Init, locks)
		}
		if s.Cond != nil {
			locks = c.expr(s.Cond, locks)
		}
		c.block(s.Body.List, locks)
		return locks
	case *ast.RangeStmt:
		if t, ok := c.pkg.Info.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				c.blockingOp(s.Pos(), "range over channel", locks)
			}
		}
		c.block(s.Body.List, locks)
		return locks
	case *ast.SwitchStmt:
		if s.Init != nil {
			locks = c.stmt(s.Init, locks)
		}
		if s.Tag != nil {
			locks = c.expr(s.Tag, locks)
		}
		for _, cl := range s.Body.List {
			c.block(cl.(*ast.CaseClause).Body, locks)
		}
		return locks
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			c.block(cl.(*ast.CaseClause).Body, locks)
		}
		return locks
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.blockingOp(s.Pos(), "select without default", locks)
		}
		for _, cl := range s.Body.List {
			c.block(cl.(*ast.CommClause).Body, locks)
		}
		return locks
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			locks = c.expr(e, locks)
		}
		return locks
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, locks)
	}
	return locks
}

// expr scans an expression for lock/unlock calls, blocking receives and
// nested literals, returning the updated held set.
func (c *checker) expr(e ast.Expr, locks []*held) []*held {
	if e == nil {
		return locks
	}
	result := locks
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.block(n.Body.List, nil)
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				c.blockingOp(n.Pos(), "channel receive", result)
			}
		case *ast.CallExpr:
			h, method, isLock := c.lockOf(n)
			if !isLock {
				if callee := analysis.Callee(c.pkg.Info, n); callee != nil {
					if what, ok := blockingIOCalls[callee.FullName()]; ok {
						c.blockingOp(n.Pos(), what, result)
					}
				}
				return true
			}
			if h == nil {
				return true // unranked mutex: not part of the hierarchy
			}
			if acquireMethods[method] {
				for _, other := range result {
					if other.field == h.field && other.expr == h.expr {
						c.pass.Reportf(n.Pos(), "%s acquired while already held", h.expr)
						return true
					}
					if h.rank <= other.rank {
						c.pass.Reportf(n.Pos(), "lock order violation: acquiring %s (rank %d) while holding %s (rank %d); ranks must strictly increase",
							h.expr, h.rank, other.expr, other.rank)
					}
				}
				result = append(append([]*held{}, result...), h)
			} else {
				result = release(result, h)
			}
		}
		return true
	})
	return result
}

func release(locks []*held, h *held) []*held {
	for i := len(locks) - 1; i >= 0; i-- {
		if locks[i].field == h.field && locks[i].expr == h.expr {
			return append(append([]*held{}, locks[:i]...), locks[i+1:]...)
		}
	}
	for i := len(locks) - 1; i >= 0; i-- {
		if locks[i].field == h.field {
			return append(append([]*held{}, locks[:i]...), locks[i+1:]...)
		}
	}
	return locks
}

func (c *checker) blockingOp(pos token.Pos, what string, locks []*held) {
	for _, h := range locks {
		if !h.io {
			c.pass.Reportf(pos, "%s while holding %s (rank %d); mark the lock \"io\" or move the operation outside the critical section",
				what, h.expr, h.rank)
			return
		}
	}
}

func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}
