package lockorder_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "locks")
}
