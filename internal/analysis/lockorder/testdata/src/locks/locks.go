// Package locks exercises the lockorder analyzer: the rank hierarchy,
// equal-rank mutual exclusion, I/O and channel ops under ranked locks,
// the io escape flag, and suppressions.
package locks

import (
	"os"
	"sync"
)

type J struct {
	//skueue:lock 40 io
	wmu sync.Mutex
	//skueue:lock 44
	mu sync.Mutex
	f  *os.File
	ch chan int
}

type P struct {
	//skueue:lock 60
	mu sync.Mutex
}

type L struct {
	//skueue:lock 60
	bmu sync.Mutex
}

type R struct {
	//skueue:lock 10
	rw sync.RWMutex
}

// plain is not part of the hierarchy: never reported.
type plain struct {
	mu sync.Mutex
}

func ok(j *J) {
	j.wmu.Lock()
	j.mu.Lock() // ok: 44 > 40
	j.mu.Unlock()
	j.f.Sync() // ok: wmu is an io lock
	j.wmu.Unlock()
}

func badOrder(j *J) {
	j.mu.Lock()
	j.wmu.Lock() // want `lock order violation: acquiring j\.wmu \(rank 40\) while holding j\.mu \(rank 44\)`
	j.wmu.Unlock()
	j.mu.Unlock()
}

func equalRank(p *P, l *L) {
	p.mu.Lock()
	l.bmu.Lock() // want `acquiring l\.bmu \(rank 60\) while holding p\.mu \(rank 60\)`
	l.bmu.Unlock()
	p.mu.Unlock()
}

func doubleLock(j *J) {
	j.mu.Lock()
	j.mu.Lock() // want `j\.mu acquired while already held`
	j.mu.Unlock()
	j.mu.Unlock()
}

func heldAcrossSend(j *J) {
	j.mu.Lock()
	j.ch <- 1 // want `channel send while holding j\.mu \(rank 44\)`
	j.mu.Unlock()
}

func heldAcrossRecv(j *J) {
	j.mu.Lock()
	<-j.ch // want `channel receive while holding j\.mu`
	j.mu.Unlock()
}

func heldAcrossIO(j *J) {
	j.mu.Lock()
	j.f.Sync() // want `fsync while holding j\.mu`
	j.mu.Unlock()
}

func ioLockOK(j *J) {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	j.f.Sync() // ok: the io flag permits blocking I/O under wmu
}

func rlockOrder(r *R, j *J) {
	r.rw.RLock()
	j.wmu.Lock() // ok: 40 > 10
	j.wmu.Unlock()
	r.rw.RUnlock()
}

func branchRelease(j *J) {
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	j.wmu.Lock() // ok: mu was released on every live path
	j.wmu.Unlock()
}

func selectNoDefault(j *J) {
	j.mu.Lock()
	select { // want `select without default while holding j\.mu`
	case v := <-j.ch:
		_ = v
	}
	j.mu.Unlock()
}

func selectWithDefault(j *J) {
	j.mu.Lock()
	select {
	case j.ch <- 1: // ok: non-blocking attempt
	default:
	}
	j.mu.Unlock()
}

func unranked(p *plain, j *J) {
	p.mu.Lock()
	j.ch <- 1 // ok: plain.mu is not in the hierarchy
	p.mu.Unlock()
}

func suppressedCase(j *J) {
	j.mu.Lock()
	//skueue:ignore lockorder -- fixture: startup path, nothing serving yet
	j.wmu.Lock()
	j.wmu.Unlock()
	j.mu.Unlock()
}

func goroutineResets(j *J) {
	j.mu.Lock()
	go func() {
		j.wmu.Lock() // ok: fresh goroutine holds nothing
		j.wmu.Unlock()
	}()
	j.mu.Unlock()
}
