// Package modeseam proves the discipline seam is real: every type
// marked as a discipline implements the seam interface, and the seam's
// package branches on the mode enum only inside the file that declares
// the seam.
//
// The wave protocol's ordering semantics (queue §III, stack §VI, heap)
// live behind one strategy interface, annotated
//
//	//skueue:discipline-seam <pkg.Type>
//
// where the argument names the mode enum the strategies are selected by
// (batch.Mode). Each implementation carries //skueue:discipline. Before
// the seam existed, `cfg.Mode == batch.Stack` comparisons were scattered
// across the engine (13 in node.go alone); this analyzer keeps them from
// creeping back: any use of the enum's constants in the seam's package
// outside the seam's own file — a comparison, a switch case, a composite
// literal — is reported. Constructing the strategies (the single
// dispatch switch) lives next to the interface, so it is allowed by
// construction.
package modeseam

import (
	"go/types"
	"path/filepath"
	"strings"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "modeseam",
	Doc:  "mode dispatch stays behind the discipline seam and every discipline implements it",
	Run:  run,
}

// seam is one //skueue:discipline-seam interface with its guarded enum.
type seam struct {
	tn    *types.TypeName
	iface *types.Interface
	file  string     // declaring file; mode dispatch is confined to it
	mode  types.Type // the enum named by the marker argument
	enums []*types.Const
}

func run(pass *analysis.Pass) {
	var seams []*seam
	pass.Ann.Types("discipline-seam", func(tn *types.TypeName, ann analysis.Annotation) {
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			pass.Reportf(tn.Pos(), "discipline-seam marker on non-interface type %s", tn.Name())
			return
		}
		s := &seam{tn: tn, iface: iface, file: pass.Prog.Fset.Position(tn.Pos()).Filename}
		if len(ann.Args) != 1 {
			pass.Reportf(tn.Pos(), `discipline-seam wants the guarded enum: "//skueue:discipline-seam <pkg.Type>"`)
		} else if s.mode = resolveType(tn.Pkg(), ann.Args[0]); s.mode == nil {
			pass.Reportf(tn.Pos(), "discipline-seam: cannot resolve mode type %q from package %s", ann.Args[0], tn.Pkg().Path())
		} else {
			s.enums = enumConsts(s.mode)
		}
		seams = append(seams, s)
	})

	// Every marked discipline implements its package's seam.
	pass.Ann.Types("discipline", func(tn *types.TypeName, _ analysis.Annotation) {
		var s *seam
		for _, cand := range seams {
			if cand.tn.Pkg() == tn.Pkg() {
				s = cand
				break
			}
		}
		if s == nil {
			pass.Reportf(tn.Pos(), "discipline implementation %s has no discipline-seam interface in its package", tn.Name())
			return
		}
		T := tn.Type()
		if types.Implements(T, s.iface) || types.Implements(types.NewPointer(T), s.iface) {
			return
		}
		if m, _ := types.MissingMethod(types.NewPointer(T), s.iface, true); m != nil {
			pass.Reportf(tn.Pos(), "discipline %s does not implement %s: missing or mismatched %s", tn.Name(), s.tn.Name(), m.Name())
		} else {
			pass.Reportf(tn.Pos(), "discipline %s does not implement %s", tn.Name(), s.tn.Name())
		}
	})

	// Confinement: in the seam's package, the enum's constants appear only
	// in the seam's file. (Other packages are out of scope — the client
	// API, the server and the batch algebra legitimately name modes.)
	for _, s := range seams {
		if len(s.enums) == 0 {
			continue
		}
		pkg := pass.Prog.Package(s.tn.Pkg().Path())
		if pkg == nil {
			continue
		}
		for id, obj := range pkg.Info.Uses {
			c, ok := obj.(*types.Const)
			if !ok || !isEnum(s.enums, c) {
				continue
			}
			pos := pass.Prog.Fset.Position(id.Pos())
			if pos.Filename == s.file {
				continue
			}
			pass.Reportf(id.Pos(), "mode dispatch outside the discipline seam: %s.%s referenced in %s (mode-specific behavior belongs in a %s implementation in %s)",
				c.Pkg().Name(), c.Name(), filepath.Base(pos.Filename), s.tn.Name(), filepath.Base(s.file))
		}
	}
}

func isEnum(enums []*types.Const, c *types.Const) bool {
	for _, e := range enums {
		if e == c {
			return true
		}
	}
	return false
}

// enumConsts lists the constants of the enum type declared in its own
// package — the values a mode switch dispatches on.
func enumConsts(mode types.Type) []*types.Const {
	named, ok := mode.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), mode) {
			out = append(out, c)
		}
	}
	return out
}

// resolveType resolves the marker argument — "pkg.Type" through the
// seam package's imports (matching the package's declared name), or a
// bare "Type" in the seam's own package.
func resolveType(pkg *types.Package, name string) types.Type {
	pkgName, typName, qualified := strings.Cut(name, ".")
	scopes := []*types.Scope{pkg.Scope()}
	if qualified {
		scopes = nil
		for _, imp := range pkg.Imports() {
			if imp.Name() == pkgName {
				scopes = append(scopes, imp.Scope())
			}
		}
	} else {
		typName = pkgName
	}
	for _, scope := range scopes {
		if tn, ok := scope.Lookup(typName).(*types.TypeName); ok {
			return tn.Type()
		}
	}
	return nil
}
