package modeseam_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/modeseam"
)

func TestModeseam(t *testing.T) {
	atest.Run(t, "testdata", modeseam.Analyzer, "mbatch", "disc", "noseam", "badseam")
}
