// Package badseam exercises malformed seam markers.
package badseam

import "mbatch"

//skueue:discipline-seam
type noArg interface { // want `discipline-seam wants the guarded enum`
	mode() mbatch.Mode
}

//skueue:discipline-seam mbatch.Missing
type badArg interface { // want `cannot resolve mode type "mbatch\.Missing" from package badseam`
	mode() mbatch.Mode
}

//skueue:discipline-seam mbatch.Mode
type notIface struct{} // want `discipline-seam marker on non-interface type notIface`
