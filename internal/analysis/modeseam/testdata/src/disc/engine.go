package disc

import "mbatch"

// dispatch is the engine-style code the seam exists to keep mode-free.
func dispatch(d disc) int {
	if d.mode() == mbatch.Stack { // want `mode dispatch outside the discipline seam: mbatch\.Stack referenced in engine\.go`
		return 1
	}
	switch d.mode() {
	case mbatch.Heap: // want `mbatch\.Heap referenced in engine\.go`
		return 2
	}
	//skueue:ignore modeseam -- boundary API legitimately names the mode
	if d.mode() == mbatch.Queue {
		return 0
	}
	return 3
}

//skueue:discipline
type partial struct{} // want `discipline partial does not implement disc: missing or mismatched take`

func (partial) mode() mbatch.Mode { return 0 }
