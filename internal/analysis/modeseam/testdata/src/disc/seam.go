// Package disc exercises the modeseam analyzer: the seam file may name
// mode constants freely (the dispatch switch lives here), other files
// may not, and every marked discipline must implement the seam.
package disc

import "mbatch"

//skueue:discipline-seam mbatch.Mode
type disc interface {
	mode() mbatch.Mode
	take() int
}

// newDisc is the single dispatch site; constant uses in the seam's own
// file are allowed by construction.
func newDisc(m mbatch.Mode) disc {
	switch m {
	case mbatch.Stack:
		return stackImpl{}
	default:
		return queueImpl{}
	}
}

//skueue:discipline
type queueImpl struct{}

func (queueImpl) mode() mbatch.Mode { return mbatch.Queue }
func (queueImpl) take() int         { return 0 }

//skueue:discipline
type stackImpl struct{}

func (stackImpl) mode() mbatch.Mode { return mbatch.Stack }
func (stackImpl) take() int         { return 1 }
