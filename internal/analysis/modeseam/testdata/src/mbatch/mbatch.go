// Package mbatch is a stand-in for the batch algebra: the mode enum the
// discipline seam guards.
package mbatch

type Mode int

const (
	Queue Mode = iota
	Stack
	Heap
)
