// Package noseam has a marked discipline but no seam interface.
package noseam

//skueue:discipline
type lone struct{} // want `discipline implementation lone has no discipline-seam interface in its package`
