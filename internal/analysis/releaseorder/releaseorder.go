// Package releaseorder protects the journaled-before-release contract.
//
// A client-visible outcome (a //skueue:client-outcome frame carrying a
// result) must not reach a //skueue:client-release function unless the
// journal has a chance to make the outcome durable first — the PR 4/5
// rule that a confirmed result survives a crash. A release is accepted
// when one of these holds:
//
//   - the enclosing function is //skueue:journaled-release (it runs as a
//     parked release after the covering fsync);
//   - the frame is an error notification: a composite literal that sets
//     none of the outcome type's result-bearing fields (fields marked
//     //skueue:client-outcome themselves) — failures are not outcomes;
//   - the release is inside an `if <journal> == nil` guard (journaling
//     disabled, nothing to wait for);
//   - an immediately preceding `if <journal> != nil { ...; return }`
//     sibling diverted the journaled case, so this path is the
//     journal-disabled fall-through.
//
// "<journal>" is any nil-comparison whose other operand mentions a
// journal (by rendered expression), keeping the analyzer free of
// hard-coded type paths. Everything else is reported.
package releaseorder

import (
	"go/ast"
	"go/types"
	"strings"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "releaseorder",
	Doc:  "client outcomes are released only through the journal's parked releases (or under a journal-disabled guard)",
	Run:  run,
}

func run(pass *analysis.Pass) {
	outcomeTypes := make(map[*types.TypeName]bool)
	resultFields := make(map[*types.Var]bool)
	for _, pkg := range pass.Prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || pass.Ann.Type(tn, "client-outcome") == nil {
				continue
			}
			outcomeTypes[tn] = true
			if st, ok := tn.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if pass.Ann.Field(st.Field(i), "client-outcome") != nil {
						resultFields[st.Field(i)] = true
					}
				}
			}
		}
	}
	if len(outcomeTypes) == 0 {
		return
	}

	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			parents := parentMap(file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				journaled := false
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					journaled = pass.Ann.Func(fn, "journaled-release") != nil
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := analysis.Callee(pkg.Info, call)
					if callee == nil || pass.Ann.Func(callee, "client-release") == nil {
						return true
					}
					arg := outcomeArg(pkg.Info, call, outcomeTypes)
					if arg == nil {
						return true
					}
					if journaled {
						return true
					}
					if isErrorShape(pkg.Info, arg, resultFields) {
						return true
					}
					if underJournalNilGuard(parents, call) || afterJournaledReturn(parents, call) {
						return true
					}
					pass.Reportf(call.Pos(),
						"client outcome released without a dominating journal stage: park it via the journal's release queue, or guard the journal-disabled path")
					return true
				})
			}
		}
	}
}

// outcomeArg returns the first call argument whose static type is a
// client-outcome frame, or nil.
func outcomeArg(info *types.Info, call *ast.CallExpr, outcomes map[*types.TypeName]bool) ast.Expr {
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && outcomes[named.Obj()] {
			return arg
		}
	}
	return nil
}

// isErrorShape reports whether the argument is a composite literal that
// sets no result-bearing field: a failure notification, not an outcome.
func isErrorShape(info *types.Info, arg ast.Expr, resultFields map[*types.Var]bool) bool {
	lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		return false
	}
	if len(lit.Elts) == 0 {
		return false // a zero frame is an (empty) outcome, not an error
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return false // positional literal sets every field
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return false
		}
		if v, ok := info.Uses[key].(*types.Var); ok && resultFields[v] {
			return false
		}
	}
	return true
}

// underJournalNilGuard walks the ancestors looking for
// `if <journal> == nil { ... }` containing the call.
func underJournalNilGuard(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		ifs, ok := cur.(*ast.IfStmt)
		if !ok {
			continue
		}
		if nodeWithin(ifs.Body, n) && journalNilCond(ifs.Cond, "==") {
			return true
		}
	}
	return false
}

// afterJournaledReturn checks whether some enclosing statement is
// immediately preceded by `if <journal> != nil { ...; return }`: the
// journaled case was diverted, so the call is the disabled fall-through.
func afterJournaledReturn(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for cur := ast.Node(n); cur != nil; cur = parents[cur] {
		block, ok := parents[cur].(*ast.BlockStmt)
		if !ok {
			continue
		}
		stmt, ok := cur.(ast.Stmt)
		if !ok {
			continue
		}
		for i, s := range block.List {
			if s != stmt || i == 0 {
				continue
			}
			prev, ok := block.List[i-1].(*ast.IfStmt)
			if ok && journalNilCond(prev.Cond, "!=") && endsInReturn(prev.Body) {
				return true
			}
		}
	}
	return false
}

// journalNilCond matches `X <op> nil` where X's rendered expression
// mentions a journal.
func journalNilCond(cond ast.Expr, op string) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != op {
		return false
	}
	x, y := bin.X, bin.Y
	if isNil(x) {
		x, y = y, x
	}
	if !isNil(y) {
		return false
	}
	return strings.Contains(strings.ToLower(types.ExprString(x)), "journal")
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

func nodeWithin(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// parentMap records each node's syntactic parent within the file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
