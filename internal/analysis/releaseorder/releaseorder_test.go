package releaseorder_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/releaseorder"
)

func TestReleaseorder(t *testing.T) {
	atest.Run(t, "testdata", releaseorder.Analyzer, "rel")
}
