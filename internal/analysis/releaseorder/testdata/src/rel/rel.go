// Package rel exercises the releaseorder analyzer: unjournaled outcome
// releases, the error-notification shape, the journal-disabled guards,
// the journaled-release annotation and suppressions.
package rel

//skueue:client-outcome
type CliDone struct {
	Seq   uint64
	ReqID uint64
	//skueue:client-outcome
	Value []byte
	//skueue:client-outcome
	Bottom bool
	//skueue:client-outcome
	Rounds      uint64
	Err         string
	Unreachable bool
}

type session struct{}

//skueue:client-release
func (s *session) send(v any) {}

type journalT struct{}

func (j *journalT) appendDone(done CliDone, rel func(error)) {}

type server struct {
	journal *journalT
	sess    *session
}

func bad(s *server, done CliDone) {
	s.sess.send(done) // want `client outcome released without a dominating journal stage`
}

func badLiteral(s *server) {
	s.sess.send(CliDone{Seq: 1, Value: []byte("x")}) // want `released without a dominating journal stage`
}

func errorShape(s *server, seq uint64) {
	// ok: sets no result-bearing field — a failure notice, not an outcome.
	s.sess.send(CliDone{Seq: seq, Err: "member unreachable", Unreachable: true})
}

func emptyLiteral(s *server) {
	s.sess.send(CliDone{}) // want `released without a dominating journal stage`
}

//skueue:journaled-release
func (s *server) releaseDone(done CliDone) func(error) {
	return func(err error) {
		s.sess.send(done) // ok: runs after the covering fsync
	}
}

func guarded(s *server, done CliDone) {
	if s.journal == nil {
		s.sess.send(done) // ok: journaling disabled, nothing to wait for
		return
	}
	s.journal.appendDone(done, s.releaseDone(done))
}

func fallthroughStyle(s *server, done CliDone) {
	if s.journal != nil {
		s.journal.appendDone(done, s.releaseDone(done))
		return
	}
	s.sess.send(done) // ok: the journaled case diverted above
}

func suppressedRelease(s *server, done CliDone) {
	//skueue:ignore releaseorder -- fixture: test hook, not a client path
	s.sess.send(done)
}

func otherFrames(s *server) {
	s.sess.send(struct{ X int }{1}) // ok: not an outcome frame
}
