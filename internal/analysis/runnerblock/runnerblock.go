// Package runnerblock reports blocking operations reachable from a
// transport runner goroutine.
//
// The tcp transport multiplexes every handler onto one runner goroutine
// per peer; anything that blocks there stalls message delivery, timer
// ticks and reconnects for the whole node (the PR 5 fsync-on-the-runner
// regression). The analyzer walks the call graph from //skueue:runner
// roots — following static calls, interface dispatch to every in-module
// implementation, func literals (except those started with go), and
// func literals handed to //skueue:runs-on-runner schedulers — and
// reports fsyncs, sleeps, dials, channel sends outside select-default,
// and calls to //skueue:blocking functions, with the call path that
// reaches them. //skueue:nonblocking prunes traversal into a function;
// an //skueue:ignore on a call site prunes that one edge.
package runnerblock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "runnerblock",
	Doc:  "code reachable from a transport runner must not block (fsync, sleep, dial, unguarded channel send)",
	Run:  run,
}

// blockingStdCalls are standard-library calls that block the calling
// goroutine, keyed by (*types.Func).FullName.
var blockingStdCalls = map[string]string{
	"(*os.File).Sync": "fsync",
	"time.Sleep":      "sleep",
	"net.Dial":        "network dial",
	"net.DialTimeout": "network dial",
	"net.DialTCP":     "network dial",
}

// body is one callable unit: a declared function or a func literal.
type body struct {
	pkg *analysis.Package
	fn  *types.Func  // nil for literals
	lit *ast.FuncLit // nil for declared functions
	via string       // for literal roots: the scheduler they were handed to
}

func (b *body) label(fset *token.FileSet) string {
	if b.fn != nil {
		return analysis.FuncID(b.fn)
	}
	pos := fset.Position(b.lit.Pos())
	return fmt.Sprintf("func literal at %s:%d", pos.Filename, pos.Line)
}

// visit is a node in the BFS tree; parent links reconstruct the path
// from a runner root to the blocking operation for the diagnostic.
type visit struct {
	b      *body
	parent *visit
}

type graph struct {
	pass     *analysis.Pass
	declBody map[*types.Func]*body
	declOf   map[*types.Func]*ast.FuncDecl
	visited  map[ast.Node]bool // FuncDecl or FuncLit
	queue    []*visit
}

func run(pass *analysis.Pass) {
	g := &graph{
		pass:     pass,
		declBody: make(map[*types.Func]*body),
		declOf:   make(map[*types.Func]*ast.FuncDecl),
		visited:  make(map[ast.Node]bool),
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.declBody[fn] = &body{pkg: pkg, fn: fn}
				g.declOf[fn] = fd
			}
		}
	}

	// Roots: //skueue:runner functions, in source order for deterministic
	// BFS (and therefore deterministic diagnostic paths).
	var roots []*types.Func
	pass.Ann.Funcs("runner", func(fn *types.Func, _ analysis.Annotation) {
		if g.declBody[fn] != nil {
			roots = append(roots, fn)
		}
	})
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	for _, fn := range roots {
		g.enqueue(g.declBody[fn], nil)
	}

	// Func literals handed to //skueue:runs-on-runner schedulers execute
	// on the runner no matter where the call site lives: they are roots.
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.Callee(pkg.Info, call)
				if callee == nil || pass.Ann.Func(callee, "runs-on-runner") == nil {
					return true
				}
				if g.edgeSuppressed(call.Pos()) {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						g.enqueue(&body{pkg: pkg, lit: lit, via: analysis.FuncID(callee)}, nil)
					}
				}
				return true
			})
		}
	}

	for len(g.queue) > 0 {
		v := g.queue[0]
		g.queue = g.queue[1:]
		g.scan(v)
	}
}

func (g *graph) edgeSuppressed(pos token.Pos) bool {
	return g.pass.Ann.Suppressed(g.pass.Prog.Fset.Position(pos), "runnerblock")
}

func (g *graph) enqueue(b *body, parent *visit) {
	var key ast.Node
	if b.fn != nil {
		key = g.declOf[b.fn]
	} else {
		key = b.lit
	}
	if key == nil || g.visited[key] {
		return
	}
	g.visited[key] = true
	g.queue = append(g.queue, &visit{b: b, parent: parent})
}

func (g *graph) scan(v *visit) {
	var block *ast.BlockStmt
	if v.b.fn != nil {
		block = g.declOf[v.b.fn].Body
	} else {
		block = v.b.lit.Body
	}
	// Sends that are a comm clause of a select with a default case are
	// non-blocking attempts; selects are visited before their clauses, so
	// the set is populated before the send is reached.
	okSends := make(map[ast.Stmt]bool)
	ast.Inspect(block, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A spawned goroutine is not the runner.
			return false
		case *ast.FuncLit:
			g.enqueue(&body{pkg: v.b.pkg, lit: n}, v)
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, cl := range n.Body.List {
					if comm := cl.(*ast.CommClause).Comm; comm != nil {
						okSends[comm] = true
					}
				}
			}
		case *ast.SendStmt:
			if !okSends[n] {
				g.report(v, n.Pos(), "channel send outside a select with default")
			}
		case *ast.CallExpr:
			g.call(v, n)
		}
		return true
	})
}

func (g *graph) call(v *visit, call *ast.CallExpr) {
	info := v.b.pkg.Info
	callee := analysis.Callee(info, call)
	if callee == nil {
		return // dynamic call through a function value; literals are edged at their definition
	}
	if g.edgeSuppressed(call.Pos()) {
		return
	}
	if g.pass.Ann.Func(callee, "nonblocking") != nil {
		return
	}
	if ann := g.pass.Ann.Func(callee, "blocking"); ann != nil {
		g.report(v, call.Pos(), fmt.Sprintf("call to %s, which blocks by design (%s)", analysis.FuncID(callee), ann.Reason))
		return
	}
	if what, ok := blockingStdCalls[callee.FullName()]; ok {
		g.report(v, call.Pos(), fmt.Sprintf("%s via %s", what, analysis.FuncID(callee)))
		return
	}
	if analysis.IsInterfaceCall(info, call) {
		for _, impl := range implementations(g.pass.Prog, callee) {
			if g.pass.Ann.Func(impl, "nonblocking") != nil {
				continue
			}
			if ann := g.pass.Ann.Func(impl, "blocking"); ann != nil {
				g.report(v, call.Pos(), fmt.Sprintf("dynamic call to %s, which blocks by design (%s)", analysis.FuncID(impl), ann.Reason))
				continue
			}
			if b := g.declBody[impl]; b != nil {
				g.enqueue(b, v)
			}
		}
		return
	}
	if b := g.declBody[callee]; b != nil {
		g.enqueue(b, v)
	}
}

func (g *graph) report(v *visit, pos token.Pos, msg string) {
	g.pass.Reportf(pos, "%s on runner hot path: %s", msg, g.path(v))
}

func (g *graph) path(v *visit) string {
	fset := g.pass.Prog.Fset
	var labels []string
	for cur := v; cur != nil; cur = cur.parent {
		labels = append(labels, cur.b.label(fset))
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	root := v
	for root.parent != nil {
		root = root.parent
	}
	if root.b.via != "" {
		labels[0] += " (runs on runner via " + root.b.via + ")"
	}
	return strings.Join(labels, " -> ")
}

// implementations resolves an interface method to every concrete method
// in the program that satisfies the interface: dynamic dispatch on the
// runner can land on any of them.
func implementations(prog *analysis.Program, m *types.Func) []*types.Func {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			T := tn.Type()
			if types.IsInterface(T) {
				continue
			}
			for _, typ := range []types.Type{T, types.NewPointer(T)} {
				if !types.Implements(typ, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(typ, true, tn.Pkg(), m.Name())
				if fn, ok := obj.(*types.Func); ok {
					out = append(out, fn)
				}
				break
			}
		}
	}
	return out
}
