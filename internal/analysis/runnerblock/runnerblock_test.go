package runnerblock_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/runnerblock"
)

func TestRunnerblock(t *testing.T) {
	atest.Run(t, "testdata", runnerblock.Analyzer, "runner")
}
