package runner

import "os"

// Interface dispatch from a runner root must reach every in-module
// implementation.

type handler interface {
	OnMsg()
}

type syncingHandler struct{ f *os.File }

func (h *syncingHandler) OnMsg() {
	h.f.Sync() // want `fsync via \(\*os\.File\)\.Sync on runner hot path: runner\.dispatch -> \(\*runner\.syncingHandler\)\.OnMsg`
}

type politeHandler struct{ n int }

func (h *politeHandler) OnMsg() { h.n++ } // ok

//skueue:runner
func dispatch(h handler) {
	h.OnMsg()
}

// Literals handed to a runs-on-runner scheduler execute on the runner
// regardless of the call site.

//skueue:runs-on-runner
func do(fn func()) { fn() }

func scheduleFromAnywhere(p *peer) {
	do(func() {
		p.f.Sync() // want `fsync via \(\*os\.File\)\.Sync on runner hot path: func literal at .*dispatch\.go:\d+ \(runs on runner via runner\.do\)`
	})
	do(func() { p.offRunnerBookkeeping() }) // ok
}

func (p *peer) offRunnerBookkeeping() { p.ch = nil }
