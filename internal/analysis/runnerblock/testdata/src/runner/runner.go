// Package runner exercises the runnerblock analyzer: blocking calls on
// the annotated hot path, transitive reachability, interface dispatch,
// escape hatches and suppressions.
package runner

import (
	"net"
	"os"
	"time"
)

type peer struct {
	f  *os.File
	ch chan int
}

//skueue:runner
func (p *peer) run() {
	p.step()
	p.f.Sync()              // want `\[runnerblock\] fsync via \(\*os\.File\)\.Sync on runner hot path`
	time.Sleep(time.Second) // want `sleep via time\.Sleep on runner hot path`
	net.Dial("tcp", "addr") // want `network dial via net\.Dial on runner hot path`
	p.ch <- 1               // want `channel send outside a select with default on runner hot path`
	select {
	case p.ch <- 1: // ok: non-blocking attempt
	default:
	}
	blocked()        // want `call to runner\.blocked, which blocks by design \(waits for the operation to finish\)`
	trusted()        // ok: nonblocking prunes the walk
	p.f.Sync()       //skueue:ignore runnerblock -- seeded suppression case: deliberate in this fixture
	go p.offRunner() // ok: a spawned goroutine is not the runner
	func() {
		p.f.Sync() // want `fsync via \(\*os\.File\)\.Sync on runner hot path: \(\*runner\.peer\)\.run -> func literal`
	}()
}

// step is reachable from run; the finding inside deep must carry the
// full path.
func (p *peer) step() { p.deep() }

func (p *peer) deep() {
	p.f.Sync() // want `on runner hot path: \(\*runner\.peer\)\.run -> \(\*runner\.peer\)\.step -> \(\*runner\.peer\)\.deep`
}

func (p *peer) offRunner() {
	p.f.Sync() // ok: only ever started with go
}

//skueue:blocking -- waits for the operation to finish
func blocked() { time.Sleep(time.Millisecond) }

// trusted sleeps, but the annotation vouches for it; the analyzer must
// not walk into it.
//
//skueue:nonblocking -- fixture: pretend this is lock-free bookkeeping
func trusted() { time.Sleep(time.Millisecond) }
