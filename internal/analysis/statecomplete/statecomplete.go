// Package statecomplete enforces snapshot-state completeness: "added a
// field, forgot the snapshot" fails in CI instead of surfacing as a
// recovery bug months later.
//
// A struct annotated //skueue:snapshot-state <ImageType> declares that
// its instances survive fail-stop restarts through the named image
// struct. Functions annotated //skueue:snapshot-capture <State...> and
// //skueue:snapshot-restore <State...> are the roots of the capture and
// restore paths for those states. The analyzer computes the transitive
// static call closure of each root — expanding interface calls to every
// module implementation, so strategy seams like the core discipline
// interface are followed — and requires:
//
//   - every named field of the state struct is referenced somewhere in
//     the capture or restore closure, or carries
//     //skueue:ephemeral -- reason (the written justification for why
//     it need not survive a restart);
//   - every named field of the image struct is referenced in BOTH the
//     capture closure and the restore closure (a field captured but
//     never restored — or vice versa — is exactly the half-wired bug
//     the rule exists for), taking the union over all states that
//     declare the same image;
//   - each state has at least one capture and one restore root.
//
// "Referenced" is lexical: any identifier resolving to the field
// object, which covers selector reads/writes and keyed composite
// literal fields alike. A refusal check (len(n.heldServes) > 0 → defer
// the snapshot) therefore counts as coverage — the analyzer verifies
// the snapshot code CONSIDERED the field, not that it serialized it.
// Embedded (anonymous) fields are skipped: marker comments cannot
// attach to them, and they are structural composition rather than
// state.
package statecomplete

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statecomplete",
	Doc:  "every field of a //skueue:snapshot-state struct is captured and restored (or justified //skueue:ephemeral), and its image has no dead fields",
	Run:  run,
}

// state is one //skueue:snapshot-state declaration with its resolved
// image and snapshot roots.
type state struct {
	decl    *types.TypeName
	img     *types.TypeName
	capture []*types.Func
	restore []*types.Func
}

func run(pass *analysis.Pass) {
	states := collectStates(pass)
	collectRoots(pass, states, "snapshot-capture", func(s *state, fn *types.Func) { s.capture = append(s.capture, fn) })
	collectRoots(pass, states, "snapshot-restore", func(s *state, fn *types.Func) { s.restore = append(s.restore, fn) })
	checkEphemeralReasons(pass)

	// imgRefs accumulates, per image type, the union of capture-side and
	// restore-side references over every state declaring that image.
	type imgSide struct{ cap, res map[*types.Var]bool }
	imgRefs := make(map[*types.TypeName]*imgSide)

	for _, tn := range sortedStates(states) {
		s := states[tn]
		missing := false
		if len(s.capture) == 0 {
			pass.Reportf(tn.Pos(), "//skueue:snapshot-state %s has no //skueue:snapshot-capture function", tn.Name())
			missing = true
		}
		if len(s.restore) == 0 {
			pass.Reportf(tn.Pos(), "//skueue:snapshot-state %s has no //skueue:snapshot-restore function", tn.Name())
			missing = true
		}
		if missing {
			continue
		}
		capRefs := referenced(pass.Prog, closure(pass, s.capture))
		resRefs := referenced(pass.Prog, closure(pass, s.restore))

		st, _ := tn.Type().Underlying().(*types.Struct)
		for i := 0; st != nil && i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() || capRefs[f] || resRefs[f] {
				continue
			}
			if pass.Ann.Field(f, "ephemeral") != nil {
				continue
			}
			pass.Reportf(f.Pos(), "%s.%s survives a restart but is not referenced by its snapshot functions (capture: %s; restore: %s); image it or mark it //skueue:ephemeral with a reason",
				tn.Name(), f.Name(), funcList(s.capture), funcList(s.restore))
		}

		side := imgRefs[s.img]
		if side == nil {
			side = &imgSide{cap: make(map[*types.Var]bool), res: make(map[*types.Var]bool)}
			imgRefs[s.img] = side
		}
		for f := range capRefs {
			side.cap[f] = true
		}
		for f := range resRefs {
			side.res[f] = true
		}
	}

	imgs := make([]*types.TypeName, 0, len(imgRefs))
	for img := range imgRefs {
		imgs = append(imgs, img)
	}
	sort.Slice(imgs, func(i, j int) bool { return imgs[i].Pos() < imgs[j].Pos() })
	for _, img := range imgs {
		side := imgRefs[img]
		st, _ := img.Type().Underlying().(*types.Struct)
		for i := 0; st != nil && i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() {
				continue
			}
			switch {
			case !side.cap[f] && !side.res[f]:
				pass.Reportf(f.Pos(), "image field %s.%s is dead: no //skueue:snapshot-capture or //skueue:snapshot-restore path references it", img.Name(), f.Name())
			case !side.res[f]:
				pass.Reportf(f.Pos(), "image field %s.%s is captured but never restored: no //skueue:snapshot-restore path references it", img.Name(), f.Name())
			case !side.cap[f]:
				pass.Reportf(f.Pos(), "image field %s.%s is restored but never captured: no //skueue:snapshot-capture path references it", img.Name(), f.Name())
			}
		}
	}
}

// collectStates resolves every //skueue:snapshot-state annotation to its
// image type (looked up in the declaring package).
func collectStates(pass *analysis.Pass) map[*types.TypeName]*state {
	states := make(map[*types.TypeName]*state)
	pass.Ann.Types("snapshot-state", func(tn *types.TypeName, ann analysis.Annotation) {
		if _, ok := tn.Type().Underlying().(*types.Struct); !ok {
			pass.Reportf(tn.Pos(), "//skueue:snapshot-state on %s, which is not a struct type", tn.Name())
			return
		}
		if len(ann.Args) != 1 {
			pass.Reportf(tn.Pos(), `malformed //skueue:snapshot-state on %s: want "//skueue:snapshot-state <ImageType>"`, tn.Name())
			return
		}
		img := lookupType(tn.Pkg(), ann.Args[0])
		if img == nil {
			pass.Reportf(tn.Pos(), "//skueue:snapshot-state on %s names image %q, which does not resolve to a struct type in this package", tn.Name(), ann.Args[0])
			return
		}
		states[tn] = &state{decl: tn, img: img}
	})
	return states
}

// collectRoots attaches //skueue:snapshot-capture / snapshot-restore
// functions to the states their arguments name.
func collectRoots(pass *analysis.Pass, states map[*types.TypeName]*state, marker string, add func(*state, *types.Func)) {
	pass.Ann.Funcs(marker, func(fn *types.Func, ann analysis.Annotation) {
		if len(ann.Args) == 0 {
			pass.Reportf(fn.Pos(), `malformed //skueue:%s on %s: want "//skueue:%s <State> [<State>...]"`, marker, fn.Name(), marker)
			return
		}
		for _, arg := range ann.Args {
			tn := lookupType(fn.Pkg(), arg)
			s := states[tn]
			if s == nil {
				pass.Reportf(fn.Pos(), "//skueue:%s on %s names %q, which does not name a //skueue:snapshot-state struct in this package", marker, fn.Name(), arg)
				continue
			}
			add(s, fn)
		}
	})
}

func checkEphemeralReasons(pass *analysis.Pass) {
	pass.Ann.Fields("ephemeral", func(f *types.Var, ann analysis.Annotation) {
		if ann.Reason == "" {
			pass.Reportf(f.Pos(), "//skueue:ephemeral on %s needs a reason (\"-- why it need not survive a restart\")", f.Name())
		}
	})
}

func lookupType(pkg *types.Package, name string) *types.TypeName {
	if pkg == nil {
		return nil
	}
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return tn
}

// closure computes the transitive static call closure of the roots
// within the module: function and method calls follow their resolved
// callee, and interface-method calls expand to every module type
// implementing the interface. Calls through function values are not
// followed (no bodies to follow them into).
func closure(pass *analysis.Pass, roots []*types.Func) []*types.Func {
	seen := make(map[*types.Func]bool)
	var queue []*types.Func
	push := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for _, fn := range roots {
		push(fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl := pass.Prog.FuncDeclFor(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		info := infoFor(pass.Prog, fn)
		if info == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(info, call)
			if callee == nil {
				return true
			}
			if analysis.IsInterfaceCall(info, call) {
				for _, impl := range implementations(pass.Prog, callee) {
					push(impl)
				}
				return true
			}
			push(callee)
			return true
		})
	}
	out := make([]*types.Func, 0, len(seen))
	for fn := range seen {
		out = append(out, fn)
	}
	return out
}

// implementations finds every concrete module type satisfying the
// interface an interface method belongs to, returning their methods of
// the same name.
func implementations(prog *analysis.Program, ifaceFn *types.Func) []*types.Func {
	sig, _ := ifaceFn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			ptr := types.NewPointer(tn.Type())
			if !types.Implements(tn.Type(), iface) && !types.Implements(ptr, iface) {
				continue
			}
			if obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceFn.Pkg(), ifaceFn.Name()); obj != nil {
				if m, ok := obj.(*types.Func); ok {
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// referenced collects every field object an identifier in the closure's
// bodies resolves to: selector accesses and keyed composite-literal
// fields alike.
func referenced(prog *analysis.Program, fns []*types.Func) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	for _, fn := range fns {
		decl := prog.FuncDeclFor(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		info := infoFor(prog, fn)
		if info == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok && v.IsField() {
				refs[v] = true
			}
			return true
		})
	}
	return refs
}

func infoFor(prog *analysis.Program, fn *types.Func) *types.Info {
	for _, pkg := range prog.Pkgs {
		if pkg.Types == fn.Pkg() {
			return pkg.Info
		}
	}
	return nil
}

func sortedStates(states map[*types.TypeName]*state) []*types.TypeName {
	out := make([]*types.TypeName, 0, len(states))
	for tn := range states {
		out = append(out, tn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func funcList(fns []*types.Func) string {
	names := make([]string, len(fns))
	for i, fn := range fns {
		names[i] = analysis.FuncID(fn)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
