package statecomplete_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/statecomplete"
)

func TestStateComplete(t *testing.T) {
	atest.Run(t, "testdata", statecomplete.Analyzer, "snap")
}
