// Package snap exercises the statecomplete analyzer: direct and
// transitive field references, interface-call expansion, ephemeral
// justifications, dead image fields and suppression.
package snap

// part is a strategy seam: capture/restore dispatch through it, so the
// analyzer must expand the interface call to the implementation.
type part interface {
	capturePart(t *thing, img *thingImage)
	restorePart(t *thing, img *thingImage)
}

type leftPart struct{}

func (leftPart) capturePart(t *thing, img *thingImage) { img.Extra = t.extra }
func (leftPart) restorePart(t *thing, img *thingImage) { t.extra = img.Extra }

// thing is the live state imaged by thingImage.
//
//skueue:snapshot-state thingImage
type thing struct {
	a     int
	b     []byte
	extra int // only the part implementation touches it
	p     part
	gone  int // want `thing\.gone survives a restart but is not referenced by its snapshot functions \(capture: snap\.capture; restore: snap\.restore\)`
	//skueue:ephemeral -- fixture: scratch table rebuilt on boot
	scratch map[int]int
	//skueue:ephemeral
	badEph int // want `//skueue:ephemeral on badEph needs a reason`
	//skueue:ignore statecomplete -- fixture: justified known gap
	hidden int
}

type thingImage struct {
	A            int
	B            []byte
	Extra        int
	Orphan       int // want `image field thingImage\.Orphan is dead`
	OnlyCaptured int // want `image field thingImage\.OnlyCaptured is captured but never restored`
	OnlyRestored int // want `image field thingImage\.OnlyRestored is restored but never captured`
}

//skueue:snapshot-capture thing
func capture(t *thing) *thingImage {
	img := &thingImage{A: t.a}
	img.B = grabB(t)
	t.p.capturePart(t, img)
	img.OnlyCaptured = 1
	return img
}

//skueue:snapshot-restore thing
func restore(img *thingImage) *thing {
	t := &thing{a: img.A, p: leftPart{}}
	setB(t, img)
	t.p.restorePart(t, img)
	_ = img.OnlyRestored
	return t
}

// grabB proves transitive coverage: capture never names t.b itself.
func grabB(t *thing) []byte { return append([]byte(nil), t.b...) }

func setB(t *thing, img *thingImage) { t.b = img.B }

// orphanState declares persistence but wires no snapshot functions.
//
//skueue:snapshot-state orphanImage
type orphanState struct { // want `orphanState has no //skueue:snapshot-capture function` `orphanState has no //skueue:snapshot-restore function`
	v int
}

type orphanImage struct{ V int }

// badState names an image that does not exist.
//
//skueue:snapshot-state noSuchImage
type badState struct { // want `names image "noSuchImage", which does not resolve`
	z int
}

// badCapture names a state that is not declared //skueue:snapshot-state.
//
//skueue:snapshot-capture orphanImage
func badCapture() { // want `names "orphanImage", which does not name a //skueue:snapshot-state struct`
}
