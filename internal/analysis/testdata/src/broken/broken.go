// Package broken deliberately fails to type-check: the loader's
// regression test asserts every error below surfaces with its file:line
// position instead of an opaque first-error-only failure.
package broken

func undefinedName() int {
	return nowhere // line 7: undefined identifier
}

func mismatch() string {
	return 42 // line 11: int returned as string
}

func badCall() {
	undefinedName(1, 2) // line 15: too many arguments
}
