// Package wirepkg exercises the wirereg analyzer: unregistered payload
// types, the interface-field closure rule, interface-typed arguments
// and suppressions.
package wirepkg

type NodeID struct{ Index int32 }

// Envelope mimics the wire envelope: its Payload field forwards any
// concrete type stored in it onto the wire.
type Envelope struct {
	From, To NodeID
	Payload  any
}

//skueue:wire-register
func register(v any) {}

//skueue:wire-payload
func wireSend(to NodeID, payload any) {}

type Registered struct{ A int }
type Unregistered struct{ B int }
type NestedOK struct{ C int }
type NestedBad struct{ D int }
type TestOnly struct{ E int }

func init() {
	register(Registered{})
	register(Envelope{})
	register(NestedOK{})
}

func sends(to NodeID) {
	wireSend(to, Registered{})   // ok
	wireSend(to, Unregistered{}) // want `wirepkg\.Unregistered crosses the wire but is never registered`
	var e Envelope
	e.Payload = NestedBad{} // want `wirepkg\.NestedBad crosses the wire but is never registered`
	wireSend(to, e)
	wireSend(to, Envelope{Payload: NestedOK{}}) // ok: closure rule finds it registered

	var p any = Registered{}
	wireSend(to, p) // ok: interface-typed argument contributes nothing itself
}

func suppressedSend(to NodeID) {
	wireSend(to, TestOnly{}) //skueue:ignore wirereg -- fixture: loopback-only frame, never serialized
}
