// Package wirereg proves every type that crosses the wire is registered
// with the codec before it is ever encoded.
//
// The wire protocol moves values through interface-typed fields (an
// Envelope's Payload, a client frame written as `any`), and gob refuses
// unregistered concrete types at runtime — a drift class previously
// caught only by a round-trip test, and only for the types that test
// happened to exercise.
//
// The crossing set is seeded by the last argument of every call to a
// //skueue:wire-payload function (the choke points where values enter
// the wire) and closed under interface-field assignment: if a crossing
// struct has an interface-typed field, every concrete type stored in
// that field — by composite literal or assignment, anywhere in the
// program — also crosses. Interface-typed arguments contribute nothing
// themselves (their dynamic types arrive via the closure rule). The
// registered set is the first argument of every call to a
// //skueue:wire-register function or to encoding/gob.Register. Named
// non-basic crossing types missing from the registered set are
// reported at the call that first put them on the wire.
package wirereg

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"skueue/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirereg",
	Doc:  "every concrete type placed on the wire is registered with the codec",
	Run:  run,
}

func run(pass *analysis.Pass) {
	registered := make(map[string]bool)
	crossing := make(map[string]token.Pos) // type key -> first wire entry
	crossingObj := make(map[string]*types.TypeName)

	record := func(t types.Type, pos token.Pos) {
		tn := namedOf(t)
		if tn == nil {
			return
		}
		key := typeKey(tn)
		if _, seen := crossing[key]; !seen {
			crossing[key] = pos
			crossingObj[key] = tn
		}
	}

	// Seed: arguments at wire-payload choke points, and everything a
	// wire-register call covers.
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				callee := analysis.Callee(pkg.Info, call)
				if callee == nil {
					return true
				}
				if pass.Ann.Func(callee, "wire-register") != nil || callee.FullName() == "encoding/gob.Register" {
					if tn := namedOf(argType(pkg.Info, call.Args[0])); tn != nil {
						registered[typeKey(tn)] = true
					}
					return true
				}
				if pass.Ann.Func(callee, "wire-payload") != nil {
					arg := call.Args[len(call.Args)-1]
					if t := argType(pkg.Info, arg); t != nil && !types.IsInterface(t) {
						record(t, arg.Pos())
					}
				}
				return true
			})
		}
	}

	// Closure: concrete types stored into interface-typed fields of
	// crossing structs cross too. Iterate to a fixed point — a payload
	// can nest another envelope-like struct.
	for {
		fields := interfaceFields(crossingObj)
		if len(fields) == 0 {
			break
		}
		before := len(crossing)
		for _, pkg := range pass.Prog.Pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CompositeLit:
						tn := namedOf(typeOf(pkg.Info, n))
						if tn == nil || crossingObj[typeKey(tn)] == nil {
							return true
						}
						for _, elt := range n.Elts {
							kv, ok := elt.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							key, ok := kv.Key.(*ast.Ident)
							if !ok {
								continue
							}
							if v, ok := pkg.Info.Uses[key].(*types.Var); ok && fields[v] {
								if t := argType(pkg.Info, kv.Value); t != nil && !types.IsInterface(t) {
									record(t, kv.Value.Pos())
								}
							}
						}
					case *ast.AssignStmt:
						for i, lhs := range n.Lhs {
							sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
							if !ok || i >= len(n.Rhs) {
								continue
							}
							if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && fields[v] {
								if t := argType(pkg.Info, n.Rhs[i]); t != nil && !types.IsInterface(t) {
									record(t, n.Rhs[i].Pos())
								}
							}
						}
					}
					return true
				})
			}
		}
		if len(crossing) == before {
			break
		}
	}

	keys := make([]string, 0, len(crossing))
	for key := range crossing {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !registered[key] {
			pass.Reportf(crossing[key], "%s crosses the wire but is never registered with the codec (add it to the wire type registry)", key)
		}
	}
}

// interfaceFields collects the interface-typed struct fields of every
// crossing type: values stored there cross the wire inside the struct.
func interfaceFields(crossing map[string]*types.TypeName) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, tn := range crossing {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if types.IsInterface(st.Field(i).Type()) {
				out[st.Field(i)] = true
			}
		}
	}
	return out
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func argType(info *types.Info, e ast.Expr) types.Type {
	t := typeOf(info, e)
	if t == nil {
		return nil
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return nil
	}
	return t
}

// namedOf reduces a type to the named type that gob would register:
// pointers are dereferenced, basics and anonymous composites are out of
// scope (the codec pre-registers the base kinds).
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, basic := named.Underlying().(*types.Basic); basic {
		return nil
	}
	return named.Obj()
}

func typeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}
