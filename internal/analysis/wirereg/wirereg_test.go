package wirereg_test

import (
	"testing"

	"skueue/internal/analysis/atest"
	"skueue/internal/analysis/wirereg"
)

func TestWirereg(t *testing.T) {
	atest.Run(t, "testdata", wirereg.Analyzer, "wirepkg")
}
