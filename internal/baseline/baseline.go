// Package baseline implements the comparison system the paper motivates
// against (§I): a conventional server-based queue ("Apache ActiveMQ, IBM
// MQ, or JMS queues ... none of these implementations provides a queue
// that allows massively parallel accesses without requiring powerful
// servers"). A single server holds the queue; clients send it one message
// per request and get one reply. The server processes a bounded number of
// requests per round (its capacity) — the knob that makes the bottleneck
// measurable. Under a total load that grows with n, latency explodes once
// the load passes the capacity, while Skueue's batching keeps the cost at
// O(log n) (Corollary 16).
package baseline

import (
	"skueue/internal/dht"
	"skueue/internal/sim"
	"skueue/internal/xrand"
)

// request is a client's message to the server.
type request struct {
	Enq   bool
	Elem  dht.Element
	Born  int64
	Reply sim.NodeID
	ReqID uint64
}

// reply is the server's answer.
type reply struct {
	Elem   dht.Element
	Bottom bool
	Born   int64
}

// server is the central queue holder.
type server struct {
	capacity int
	backlog  []request
	fifo     []dht.Element
	done     func(born, now int64)
}

func (s *server) OnInit(ctx *sim.Context) {}

func (s *server) OnMessage(ctx *sim.Context, from sim.NodeID, payload any) {
	s.backlog = append(s.backlog, payload.(request))
}

// OnTimeout processes up to capacity requests per round, strictly FIFO in
// arrival order — the sequential semantics a single server gives for free.
func (s *server) OnTimeout(ctx *sim.Context) {
	n := s.capacity
	if n > len(s.backlog) {
		n = len(s.backlog)
	}
	for _, req := range s.backlog[:n] {
		if req.Enq {
			s.fifo = append(s.fifo, req.Elem)
			// The baseline runs only on the in-memory simulator backend
			// (sim.Engine delivers payloads by reference, no codec), so
			// its frames are exempt from wire registration.
			//
			//skueue:ignore wirereg -- simulator-only frame; the baseline never runs over the TCP transport
			ctx.Send(req.Reply, reply{Born: req.Born})
			continue
		}
		rep := reply{Born: req.Born, Bottom: true}
		if len(s.fifo) > 0 {
			rep.Elem = s.fifo[0]
			rep.Bottom = false
			s.fifo = s.fifo[1:]
		}
		ctx.Send(req.Reply, rep)
	}
	s.backlog = s.backlog[n:]
}

// client issues requests on demand and records completion latency.
type client struct {
	server sim.NodeID
	done   func(born, now int64)
}

func (c *client) OnInit(ctx *sim.Context)    {}
func (c *client) OnTimeout(ctx *sim.Context) {}
func (c *client) OnMessage(ctx *sim.Context, from sim.NodeID, payload any) {
	rep := payload.(reply)
	c.done(rep.Born, ctx.Now())
}

// Cluster is a centralized-queue deployment mirroring the core.Cluster
// driver surface the harness needs.
type Cluster struct {
	eng      *sim.Engine
	serverID sim.NodeID
	clients  []sim.NodeID
	issued   int64
	finished int64
	sumLat   int64
	reqSeq   uint64
	seq      int64
}

// Config parameterizes the baseline.
type Config struct {
	Clients int
	// Capacity is the number of requests the server can process per round.
	Capacity int
	Seed     int64
}

// New builds the deployment: one server, Clients client nodes.
func New(cfg Config) *Cluster {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 16
	}
	cl := &Cluster{}
	cl.eng = sim.New(sim.Config{Seed: xrand.New(cfg.Seed).Fork("baseline").Int63()})
	done := func(born, now int64) {
		cl.finished++
		cl.sumLat += now - born
	}
	cl.serverID = cl.eng.Spawn(&server{capacity: cfg.Capacity, done: done})
	for i := 0; i < cfg.Clients; i++ {
		cl.clients = append(cl.clients, cl.eng.Spawn(&client{server: cl.serverID, done: done}))
	}
	return cl
}

// Enqueue sends an enqueue request from the given client.
func (cl *Cluster) Enqueue(i int) {
	cl.issued++
	cl.seq++
	cl.reqSeq++
	cl.eng.Inject(cl.clients[i], cl.serverID, request{
		Enq: true, Elem: dht.Element{Origin: int32(i), Seq: cl.seq},
		Born: cl.eng.Now(), Reply: cl.clients[i], ReqID: cl.reqSeq,
	})
}

// Dequeue sends a dequeue request from the given client.
func (cl *Cluster) Dequeue(i int) {
	cl.issued++
	cl.reqSeq++
	cl.eng.Inject(cl.clients[i], cl.serverID, request{
		Born: cl.eng.Now(), Reply: cl.clients[i], ReqID: cl.reqSeq,
	})
}

// Clients returns the number of client nodes.
func (cl *Cluster) Clients() int { return len(cl.clients) }

// Step advances one round.
func (cl *Cluster) Step() { cl.eng.Step() }

// Drain runs until every request was answered (or maxRounds elapse).
func (cl *Cluster) Drain(maxRounds int64) bool {
	return cl.eng.RunUntil(func() bool { return cl.finished >= cl.issued }, maxRounds)
}

// AvgRounds returns the mean rounds per finished request.
func (cl *Cluster) AvgRounds() float64 {
	if cl.finished == 0 {
		return 0
	}
	return float64(cl.sumLat) / float64(cl.finished)
}

// Issued and Finished return request counters.
func (cl *Cluster) Issued() int64   { return cl.issued }
func (cl *Cluster) Finished() int64 { return cl.finished }
