package baseline

import "testing"

func TestServerFIFO(t *testing.T) {
	cl := New(Config{Clients: 2, Capacity: 10, Seed: 1})
	cl.Enqueue(0)
	cl.Enqueue(0)
	cl.Dequeue(1)
	cl.Dequeue(1)
	if !cl.Drain(100) {
		t.Fatalf("did not drain")
	}
	if cl.Finished() != 4 {
		t.Fatalf("finished %d", cl.Finished())
	}
}

func TestLatencyLowUnderCapacity(t *testing.T) {
	cl := New(Config{Clients: 4, Capacity: 100, Seed: 2})
	for i := 0; i < 50; i++ {
		cl.Enqueue(i % 4)
		cl.Step()
	}
	if !cl.Drain(1000) {
		t.Fatalf("did not drain")
	}
	if avg := cl.AvgRounds(); avg > 5 {
		t.Fatalf("uncontended latency %v too high", avg)
	}
}

func TestBacklogExplodesPastCapacity(t *testing.T) {
	// Offered load 20/round vs capacity 5: latency grows with run length.
	runAvg := func(rounds int) float64 {
		cl := New(Config{Clients: 20, Capacity: 5, Seed: 3})
		for r := 0; r < rounds; r++ {
			for c := 0; c < 20; c++ {
				cl.Enqueue(c)
			}
			cl.Step()
		}
		if !cl.Drain(100000) {
			t.Fatalf("did not drain")
		}
		return cl.AvgRounds()
	}
	short, long := runAvg(20), runAvg(80)
	if long < short*2 {
		t.Fatalf("saturated server latency should grow with load duration: %v -> %v", short, long)
	}
}

func TestCapacityDefault(t *testing.T) {
	cl := New(Config{Clients: 1, Seed: 4})
	cl.Enqueue(0)
	if !cl.Drain(100) {
		t.Fatalf("default capacity should process requests")
	}
}

func TestDequeueEmptyAnswers(t *testing.T) {
	cl := New(Config{Clients: 1, Capacity: 5, Seed: 5})
	cl.Dequeue(0)
	if !cl.Drain(100) || cl.Finished() != 1 {
		t.Fatalf("empty dequeue must still be answered")
	}
}
