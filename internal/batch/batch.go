// Package batch implements the operation-batch algebra of the paper:
// run-length encoded batches (Definition 5), batch combination, the
// anchor's position-interval assignment (§III-D for the queue, §VI for the
// stack), the recursive interval decomposition of Stage 3 (§III-E), and
// the join/leave counters of §IV. It also threads through the value()
// ranks of §V, which define the witness total order ≺ used to verify
// sequential consistency, and the ticket counters of the stack variant.
//
// Everything here is pure data manipulation with no I/O; the protocol
// packages drive it from their message handlers.
package batch

import "fmt"

// Mode selects the data-structure semantics: FIFO queue, LIFO stack, or
// bounded-priority heap.
type Mode uint8

// The two data structures of the paper, plus the Skeap-style bounded
// constant-priority heap the follow-up paper derives from the same wave
// machinery: L FIFO levels, DequeueMin pops the front of the lowest
// non-empty level.
const (
	Queue Mode = iota
	Stack
	Heap
)

func (m Mode) String() string {
	switch m {
	case Stack:
		return "stack"
	case Heap:
		return "heap"
	default:
		return "queue"
	}
}

// Batch is a sequence of operation runs (Definition 5): Runs[i-1] is the
// paper's op_i; odd 1-based indices are enqueue (push) run lengths, even
// indices are dequeue (pop) run lengths. J and L count the JOIN and LEAVE
// requests the batch reports towards the anchor (§IV).
//
// The stack variant always uses the canonical shape (0, pops, pushes)
// so that combining batches keeps every pop ordered before every push of
// the same aggregation wave (Theorem 20 and the §VI asynchrony fix rely on
// this).
type Batch struct {
	Runs []int64
	J, L int64
}

// IsDeqIndex reports whether 0-based run index i holds dequeues.
func IsDeqIndex(i int) bool { return i%2 == 1 }

// Empty reports whether the batch carries nothing at all: no operations
// and no join/leave counts. It corresponds to the paper's empty batch (0).
func (b Batch) Empty() bool {
	if b.J != 0 || b.L != 0 {
		return false
	}
	for _, r := range b.Runs {
		if r != 0 {
			return false
		}
	}
	return true
}

// NumOps returns the total number of queue operations in the batch.
func (b Batch) NumOps() int64 {
	var n int64
	for _, r := range b.Runs {
		n += r
	}
	return n
}

// NumEnqueues returns the number of enqueue (push) operations.
func (b Batch) NumEnqueues() int64 {
	var n int64
	for i := 0; i < len(b.Runs); i += 2 {
		n += b.Runs[i]
	}
	return n
}

// NumDequeues returns the number of dequeue (pop) operations.
func (b Batch) NumDequeues() int64 {
	var n int64
	for i := 1; i < len(b.Runs); i += 2 {
		n += b.Runs[i]
	}
	return n
}

// Size is a rough message-size measure: the number of run entries
// (Theorem 18 bounds it by O(log n) under one request per node per round).
func (b Batch) Size() int { return len(b.Runs) }

// AppendEnqueue records one locally generated enqueue, preserving the
// local generation order (§III-A): extend the last run if it is an
// enqueue run, else open a new one.
func (b *Batch) AppendEnqueue() {
	if len(b.Runs)%2 == 1 {
		b.Runs[len(b.Runs)-1]++
		return
	}
	b.Runs = append(b.Runs, 1)
}

// AppendDequeue records one locally generated dequeue.
func (b *Batch) AppendDequeue() {
	if n := len(b.Runs); n > 0 && n%2 == 0 {
		b.Runs[n-1]++
		return
	}
	if len(b.Runs) == 0 {
		// The batch must start with an (empty) enqueue run so that the
		// dequeue lands on an even 1-based index.
		b.Runs = append(b.Runs, 0)
	}
	b.Runs = append(b.Runs, 1)
}

// MakeStack builds the canonical stack batch (0, pops, pushes), trimming
// trailing zero runs.
func MakeStack(pops, pushes int64) Batch {
	switch {
	case pops == 0 && pushes == 0:
		return Batch{}
	case pushes == 0:
		return Batch{Runs: []int64{0, pops}}
	default:
		return Batch{Runs: []int64{0, pops, pushes}}
	}
}

// Heap batches use a fixed canonical run layout: run 2l holds the
// enqueues of priority level l, run 1 holds every DequeueMin, and the
// remaining odd runs are always empty. The layout is closed under
// element-wise Combine, so folding canonical heap sub-batches up the
// aggregation tree keeps the shape canonical.

// HeapEnqRunIndex returns the canonical run index of a level-l enqueue.
func HeapEnqRunIndex(level int32) int { return 2 * int(level) }

// HeapDeqRunIndex is the canonical run index of every DequeueMin.
const HeapDeqRunIndex = 1

// MakeHeap builds the canonical heap batch: enqs[l] level-l enqueues plus
// deqs DequeueMin operations, trimming trailing zero runs.
func MakeHeap(deqs int64, enqs []int64) Batch {
	n := 0
	for l, k := range enqs {
		if k > 0 {
			n = HeapEnqRunIndex(int32(l)) + 1
		}
	}
	if deqs > 0 && n < HeapDeqRunIndex+1 {
		n = HeapDeqRunIndex + 1
	}
	if n == 0 {
		return Batch{}
	}
	runs := make([]int64, n)
	for l, k := range enqs {
		if ri := HeapEnqRunIndex(int32(l)); ri < n {
			runs[ri] = k
		}
	}
	if deqs > 0 {
		runs[HeapDeqRunIndex] = deqs
	}
	return Batch{Runs: runs}
}

// Combine merges batches element-wise (§III-A): run i of the result is the
// sum of runs i, and the join/leave counters add up. The order of the
// arguments is the sub-batch order later used by Decompose; it determines
// the relative serialization of the sub-batches' operations.
func Combine(bs ...Batch) Batch {
	var out Batch
	for _, b := range bs {
		if len(b.Runs) > len(out.Runs) {
			out.Runs = append(out.Runs, make([]int64, len(b.Runs)-len(out.Runs))...)
		}
		for i, r := range b.Runs {
			out.Runs[i] += r
		}
		out.J += b.J
		out.L += b.L
	}
	return out
}

func (b Batch) String() string {
	return fmt.Sprintf("B%v{j=%d,l=%d}", b.Runs, b.J, b.L)
}

// Clone returns a deep copy.
func (b Batch) Clone() Batch {
	return Batch{Runs: append([]int64(nil), b.Runs...), J: b.J, L: b.L}
}

// Interval is an inclusive range of DHT positions; it is empty when
// Hi < Lo (canonically Hi == Lo-1, the paper's x_i = y_i + 1 case).
type Interval struct {
	Lo, Hi int64
}

// Len returns the number of positions in the interval.
func (iv Interval) Len() int64 {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Empty reports whether the interval holds no position.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// HeapPosShift positions the priority level in the high bits of a heap
// DHT position; the low bits carry the level-local index (starting at 1).
// Positions stay globally unique across levels and are never reused, so
// the DHT layer treats them exactly like queue positions.
const HeapPosShift = 40

// HeapPos builds the tagged DHT position of level-local index idx.
func HeapPos(level int32, idx int64) int64 { return int64(level)<<HeapPosShift | idx }

// HeapPosLevel extracts the priority level of a tagged heap position.
func HeapPosLevel(pos int64) int32 { return int32(pos >> HeapPosShift) }

// Segment is one contiguous piece of a heap dequeue-run assignment: a
// position interval within a single priority level. A DequeueMin run's
// assignment spans levels in priority order, so it carries a segment list
// instead of the single interval queue and stack runs use.
type Segment struct {
	Level int32
	Iv    Interval
}

// RunAssign is the assignment the anchor computes for one run of a batch
// (Stage 2) and that Stage 3 decomposes down the tree: the position
// interval, the value() rank of the run's first operation (§V), and for
// the stack the ticket base (pushes) or ticket bound (pops) of §VI. Heap
// dequeue runs carry Segs instead of Iv: the consumed positions span
// priority levels (lowest first, FIFO within a level).
type RunAssign struct {
	Iv        Interval
	ValueBase int64
	Ticket    int64
	Segs      []Segment
}

// segsLen returns the total number of positions across the segments.
func segsLen(segs []Segment) int64 {
	var n int64
	for _, s := range segs {
		n += s.Iv.Len()
	}
	return n
}

// LevelWindow is one priority level's occupied position window (heap
// mode), in level-local coordinates with the queue invariant
// First <= Last+1.
type LevelWindow struct {
	First, Last int64
}

// AnchorState is the state the anchor maintains across waves: the occupied
// position window [First,Last] with the invariant First <= Last+1 (queue;
// the stack uses only Last), the value counter c of §V, and the
// monotonically increasing ticket counter of §VI. Heap mode keeps one
// window per priority level in Levels instead of [First,Last]; the slice
// grows on first use of a level and is nil in queue and stack mode.
type AnchorState struct {
	First  int64
	Last   int64
	Value  int64
	Ticket int64
	Levels []LevelWindow
}

// NewAnchorState returns the initial state: empty structure, positions
// starting at 1, value counter starting at 1 (§V).
func NewAnchorState() AnchorState {
	return AnchorState{First: 1, Last: 0, Value: 1, Ticket: 0}
}

// ensureLevel grows the per-level windows through level l.
func (st *AnchorState) ensureLevel(l int) {
	for len(st.Levels) <= l {
		st.Levels = append(st.Levels, LevelWindow{First: 1, Last: 0})
	}
}

// Size returns the current number of stored elements.
func (st AnchorState) Size() int64 {
	if len(st.Levels) > 0 {
		var s int64
		for _, w := range st.Levels {
			s += w.Last - w.First + 1
		}
		return s
	}
	return st.Last - st.First + 1
}

// CheckInvariant panics if the queue invariant First <= Last+1 is broken
// (per level in heap mode); the protocol calls it after every assignment
// as a self-check.
func (st *AnchorState) CheckInvariant() {
	if st.First > st.Last+1 {
		panic(fmt.Sprintf("batch: anchor invariant violated: first=%d last=%d", st.First, st.Last))
	}
	for l, w := range st.Levels {
		if w.First > w.Last+1 {
			panic(fmt.Sprintf("batch: anchor level-%d invariant violated: first=%d last=%d", l, w.First, w.Last))
		}
	}
}

// Assign performs Stage 2 at the anchor: one RunAssign per run of b, in
// index order, updating the anchor state. Queue semantics follow §III-D;
// stack semantics follow §VI (pops consume descending from Last, pushes
// get fresh positions and tickets). Heap semantics generalize the queue:
// run 2l appends fresh positions to level l's window, and a DequeueMin
// run consumes ascending from the front of each level in priority order,
// yielding a segment list.
func (st *AnchorState) Assign(mode Mode, b Batch) []RunAssign {
	if mode == Heap {
		return st.assignHeap(b)
	}
	out := make([]RunAssign, len(b.Runs))
	for i, k := range b.Runs {
		ra := RunAssign{ValueBase: st.Value}
		st.Value += k
		if !IsDeqIndex(i) {
			// Enqueue / push run: fresh positions above Last.
			ra.Iv = Interval{Lo: st.Last + 1, Hi: st.Last + k}
			ra.Ticket = st.Ticket + 1
			st.Ticket += k
			st.Last += k
		} else if mode == Queue {
			// Dequeue run: consume ascending from First.
			hi := st.First + k - 1
			if hi > st.Last {
				hi = st.Last
			}
			ra.Iv = Interval{Lo: st.First, Hi: hi}
			st.First = min64(st.First+k, st.Last+1)
		} else {
			// Pop run: consume descending from Last; the interval is
			// stored ascending, consumers take it from Hi downward. All
			// pops of the run share the current ticket as their bound.
			lo := st.Last - k + 1
			if lo < 1 {
				lo = 1
			}
			ra.Iv = Interval{Lo: lo, Hi: st.Last}
			ra.Ticket = st.Ticket
			st.Last -= k
			if st.Last < 0 {
				st.Last = 0
			}
			if st.First > st.Last+1 {
				st.First = st.Last + 1
			}
		}
		out[i] = ra
	}
	st.CheckInvariant()
	return out
}

// assignHeap is the heap branch of Assign. Runs are processed in index
// order, so a wave's DequeueMin operations (run 1) see the same wave's
// level-0 enqueues (run 0) but not its level ≥ 1 enqueues — exactly the
// serialization the value() ranks define.
func (st *AnchorState) assignHeap(b Batch) []RunAssign {
	out := make([]RunAssign, len(b.Runs))
	for i, k := range b.Runs {
		ra := RunAssign{ValueBase: st.Value}
		st.Value += k
		if !IsDeqIndex(i) {
			// Enqueue run of level i/2: fresh positions above the level's
			// Last; the interval stays within the level's tagged space.
			l := i / 2
			st.ensureLevel(l)
			w := &st.Levels[l]
			ra.Iv = Interval{Lo: HeapPos(int32(l), w.Last+1), Hi: HeapPos(int32(l), w.Last+k)}
			w.Last += k
		} else {
			// DequeueMin run: consume from the front of the lowest non-empty
			// levels first, FIFO within each level. Operations beyond the
			// total stored size return ⊥.
			rem := k
			for l := range st.Levels {
				if rem == 0 {
					break
				}
				w := &st.Levels[l]
				avail := w.Last - w.First + 1
				if avail <= 0 {
					continue
				}
				take := min64(rem, avail)
				ra.Segs = append(ra.Segs, Segment{
					Level: int32(l),
					Iv:    Interval{Lo: HeapPos(int32(l), w.First), Hi: HeapPos(int32(l), w.First+take-1)},
				})
				w.First += take
				rem -= take
			}
		}
		out[i] = ra
	}
	st.CheckInvariant()
	return out
}

// Decompose carves the prefix of each run assignment for one sub-batch
// (Stage 3, §III-E). It mutates assigns — the remaining suffixes stay for
// the following sub-batches — and returns the sub-batch's own run
// assignments, aligned with sub.Runs.
func Decompose(mode Mode, assigns []RunAssign, sub Batch) []RunAssign {
	out := make([]RunAssign, len(sub.Runs))
	for i, k := range sub.Runs {
		a := &assigns[i]
		ra := RunAssign{ValueBase: a.ValueBase, Ticket: a.Ticket}
		a.ValueBase += k
		switch {
		case !IsDeqIndex(i):
			// Enqueue / push run: exact prefix of length k. Heap enqueue
			// intervals live inside a single level's tagged space, so the
			// same arithmetic applies.
			ra.Iv = Interval{Lo: a.Iv.Lo, Hi: a.Iv.Lo + k - 1}
			a.Iv.Lo += k
			a.Ticket += k
		case mode == Heap:
			// DequeueMin run: prefix of length at most k across the
			// segments, in order (lowest level first, FIFO within).
			rem := k
			for rem > 0 && len(a.Segs) > 0 {
				s := &a.Segs[0]
				take := min64(rem, s.Iv.Len())
				ra.Segs = append(ra.Segs, Segment{Level: s.Level, Iv: Interval{Lo: s.Iv.Lo, Hi: s.Iv.Lo + take - 1}})
				s.Iv.Lo += take
				if s.Iv.Empty() {
					a.Segs = a.Segs[1:]
				}
				rem -= take
			}
		case mode == Queue:
			// Dequeue run: prefix of length at most k; the rest of the
			// sub-run returns ⊥ (paper: [x_i, min{x_i+op_i-1, y_i}]).
			hi := a.Iv.Lo + k - 1
			if hi > a.Iv.Hi {
				hi = a.Iv.Hi
			}
			ra.Iv = Interval{Lo: a.Iv.Lo, Hi: hi}
			a.Iv.Lo = min64(a.Iv.Lo+k, a.Iv.Hi+1)
		default:
			// Pop run: suffix of length at most k, consumed from the top.
			lo := a.Iv.Hi - k + 1
			if lo < a.Iv.Lo {
				lo = a.Iv.Lo
			}
			ra.Iv = Interval{Lo: lo, Hi: a.Iv.Hi}
			a.Iv.Hi = max64(a.Iv.Hi-k, a.Iv.Lo-1)
		}
		out[i] = ra
	}
	return out
}

// OpAssign is one operation's final assignment: its DHT position (or
// NoPosition for a ⊥ dequeue), its value() rank, and its ticket (stack:
// the push's ticket, or the pop's inclusive upper bound).
type OpAssign struct {
	Pos    int64
	Value  int64
	Ticket int64
}

// NoPosition marks a dequeue that returns ⊥ without touching the DHT.
const NoPosition int64 = -1

// Expand lists the per-operation assignments of one run of length k owned
// by a single node. For queue runs positions ascend from Iv.Lo; for stack
// pop runs they descend from Iv.Hi (the first pop takes the top); heap
// dequeue runs walk the segment list in order. The operations beyond the
// interval (or segment) capacity are ⊥ dequeues.
func Expand(mode Mode, runIndex int, ra RunAssign, k int64) []OpAssign {
	if mode == Heap && IsDeqIndex(runIndex) {
		return expandHeapDeq(ra, k)
	}
	out := make([]OpAssign, k)
	avail := ra.Iv.Len()
	for j := int64(0); j < k; j++ {
		oa := OpAssign{Value: ra.ValueBase + j, Ticket: ra.Ticket}
		switch {
		case !IsDeqIndex(runIndex):
			oa.Pos = ra.Iv.Lo + j
			oa.Ticket = ra.Ticket + j
		case j >= avail:
			oa.Pos = NoPosition
		case mode == Queue:
			oa.Pos = ra.Iv.Lo + j
		default:
			oa.Pos = ra.Iv.Hi - j
		}
		out[j] = oa
	}
	return out
}

// expandHeapDeq lists a DequeueMin run's per-operation assignments: the
// segment positions in order, then ⊥ for the remainder.
func expandHeapDeq(ra RunAssign, k int64) []OpAssign {
	out := make([]OpAssign, k)
	seg, off := 0, int64(0)
	for j := int64(0); j < k; j++ {
		oa := OpAssign{Value: ra.ValueBase + j, Pos: NoPosition}
		if seg < len(ra.Segs) {
			oa.Pos = ra.Segs[seg].Iv.Lo + off
			off++
			if off >= ra.Segs[seg].Iv.Len() {
				seg++
				off = 0
			}
		}
		out[j] = oa
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
