// Package batch implements the operation-batch algebra of the paper:
// run-length encoded batches (Definition 5), batch combination, the
// anchor's position-interval assignment (§III-D for the queue, §VI for the
// stack), the recursive interval decomposition of Stage 3 (§III-E), and
// the join/leave counters of §IV. It also threads through the value()
// ranks of §V, which define the witness total order ≺ used to verify
// sequential consistency, and the ticket counters of the stack variant.
//
// Everything here is pure data manipulation with no I/O; the protocol
// packages drive it from their message handlers.
package batch

import "fmt"

// Mode selects the data-structure semantics: FIFO queue or LIFO stack.
type Mode uint8

// The two data structures of the paper.
const (
	Queue Mode = iota
	Stack
)

func (m Mode) String() string {
	if m == Stack {
		return "stack"
	}
	return "queue"
}

// Batch is a sequence of operation runs (Definition 5): Runs[i-1] is the
// paper's op_i; odd 1-based indices are enqueue (push) run lengths, even
// indices are dequeue (pop) run lengths. J and L count the JOIN and LEAVE
// requests the batch reports towards the anchor (§IV).
//
// The stack variant always uses the canonical shape (0, pops, pushes)
// so that combining batches keeps every pop ordered before every push of
// the same aggregation wave (Theorem 20 and the §VI asynchrony fix rely on
// this).
type Batch struct {
	Runs []int64
	J, L int64
}

// IsDeqIndex reports whether 0-based run index i holds dequeues.
func IsDeqIndex(i int) bool { return i%2 == 1 }

// Empty reports whether the batch carries nothing at all: no operations
// and no join/leave counts. It corresponds to the paper's empty batch (0).
func (b Batch) Empty() bool {
	if b.J != 0 || b.L != 0 {
		return false
	}
	for _, r := range b.Runs {
		if r != 0 {
			return false
		}
	}
	return true
}

// NumOps returns the total number of queue operations in the batch.
func (b Batch) NumOps() int64 {
	var n int64
	for _, r := range b.Runs {
		n += r
	}
	return n
}

// NumEnqueues returns the number of enqueue (push) operations.
func (b Batch) NumEnqueues() int64 {
	var n int64
	for i := 0; i < len(b.Runs); i += 2 {
		n += b.Runs[i]
	}
	return n
}

// NumDequeues returns the number of dequeue (pop) operations.
func (b Batch) NumDequeues() int64 {
	var n int64
	for i := 1; i < len(b.Runs); i += 2 {
		n += b.Runs[i]
	}
	return n
}

// Size is a rough message-size measure: the number of run entries
// (Theorem 18 bounds it by O(log n) under one request per node per round).
func (b Batch) Size() int { return len(b.Runs) }

// AppendEnqueue records one locally generated enqueue, preserving the
// local generation order (§III-A): extend the last run if it is an
// enqueue run, else open a new one.
func (b *Batch) AppendEnqueue() {
	if len(b.Runs)%2 == 1 {
		b.Runs[len(b.Runs)-1]++
		return
	}
	b.Runs = append(b.Runs, 1)
}

// AppendDequeue records one locally generated dequeue.
func (b *Batch) AppendDequeue() {
	if n := len(b.Runs); n > 0 && n%2 == 0 {
		b.Runs[n-1]++
		return
	}
	if len(b.Runs) == 0 {
		// The batch must start with an (empty) enqueue run so that the
		// dequeue lands on an even 1-based index.
		b.Runs = append(b.Runs, 0)
	}
	b.Runs = append(b.Runs, 1)
}

// MakeStack builds the canonical stack batch (0, pops, pushes), trimming
// trailing zero runs.
func MakeStack(pops, pushes int64) Batch {
	switch {
	case pops == 0 && pushes == 0:
		return Batch{}
	case pushes == 0:
		return Batch{Runs: []int64{0, pops}}
	default:
		return Batch{Runs: []int64{0, pops, pushes}}
	}
}

// Combine merges batches element-wise (§III-A): run i of the result is the
// sum of runs i, and the join/leave counters add up. The order of the
// arguments is the sub-batch order later used by Decompose; it determines
// the relative serialization of the sub-batches' operations.
func Combine(bs ...Batch) Batch {
	var out Batch
	for _, b := range bs {
		if len(b.Runs) > len(out.Runs) {
			out.Runs = append(out.Runs, make([]int64, len(b.Runs)-len(out.Runs))...)
		}
		for i, r := range b.Runs {
			out.Runs[i] += r
		}
		out.J += b.J
		out.L += b.L
	}
	return out
}

func (b Batch) String() string {
	return fmt.Sprintf("B%v{j=%d,l=%d}", b.Runs, b.J, b.L)
}

// Clone returns a deep copy.
func (b Batch) Clone() Batch {
	return Batch{Runs: append([]int64(nil), b.Runs...), J: b.J, L: b.L}
}

// Interval is an inclusive range of DHT positions; it is empty when
// Hi < Lo (canonically Hi == Lo-1, the paper's x_i = y_i + 1 case).
type Interval struct {
	Lo, Hi int64
}

// Len returns the number of positions in the interval.
func (iv Interval) Len() int64 {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Empty reports whether the interval holds no position.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// RunAssign is the assignment the anchor computes for one run of a batch
// (Stage 2) and that Stage 3 decomposes down the tree: the position
// interval, the value() rank of the run's first operation (§V), and for
// the stack the ticket base (pushes) or ticket bound (pops) of §VI.
type RunAssign struct {
	Iv        Interval
	ValueBase int64
	Ticket    int64
}

// AnchorState is the state the anchor maintains across waves: the occupied
// position window [First,Last] with the invariant First <= Last+1 (queue;
// the stack uses only Last), the value counter c of §V, and the
// monotonically increasing ticket counter of §VI.
type AnchorState struct {
	First  int64
	Last   int64
	Value  int64
	Ticket int64
}

// NewAnchorState returns the initial state: empty structure, positions
// starting at 1, value counter starting at 1 (§V).
func NewAnchorState() AnchorState {
	return AnchorState{First: 1, Last: 0, Value: 1, Ticket: 0}
}

// Size returns the current number of stored elements.
func (st AnchorState) Size() int64 { return st.Last - st.First + 1 }

// CheckInvariant panics if the queue invariant First <= Last+1 is broken;
// the protocol calls it after every assignment as a self-check.
func (st *AnchorState) CheckInvariant() {
	if st.First > st.Last+1 {
		panic(fmt.Sprintf("batch: anchor invariant violated: first=%d last=%d", st.First, st.Last))
	}
}

// Assign performs Stage 2 at the anchor: one RunAssign per run of b, in
// index order, updating the anchor state. Queue semantics follow §III-D;
// stack semantics follow §VI (pops consume descending from Last, pushes
// get fresh positions and tickets).
func (st *AnchorState) Assign(mode Mode, b Batch) []RunAssign {
	out := make([]RunAssign, len(b.Runs))
	for i, k := range b.Runs {
		ra := RunAssign{ValueBase: st.Value}
		st.Value += k
		if !IsDeqIndex(i) {
			// Enqueue / push run: fresh positions above Last.
			ra.Iv = Interval{Lo: st.Last + 1, Hi: st.Last + k}
			ra.Ticket = st.Ticket + 1
			st.Ticket += k
			st.Last += k
		} else if mode == Queue {
			// Dequeue run: consume ascending from First.
			hi := st.First + k - 1
			if hi > st.Last {
				hi = st.Last
			}
			ra.Iv = Interval{Lo: st.First, Hi: hi}
			st.First = min64(st.First+k, st.Last+1)
		} else {
			// Pop run: consume descending from Last; the interval is
			// stored ascending, consumers take it from Hi downward. All
			// pops of the run share the current ticket as their bound.
			lo := st.Last - k + 1
			if lo < 1 {
				lo = 1
			}
			ra.Iv = Interval{Lo: lo, Hi: st.Last}
			ra.Ticket = st.Ticket
			st.Last -= k
			if st.Last < 0 {
				st.Last = 0
			}
			if st.First > st.Last+1 {
				st.First = st.Last + 1
			}
		}
		out[i] = ra
	}
	st.CheckInvariant()
	return out
}

// Decompose carves the prefix of each run assignment for one sub-batch
// (Stage 3, §III-E). It mutates assigns — the remaining suffixes stay for
// the following sub-batches — and returns the sub-batch's own run
// assignments, aligned with sub.Runs.
func Decompose(mode Mode, assigns []RunAssign, sub Batch) []RunAssign {
	out := make([]RunAssign, len(sub.Runs))
	for i, k := range sub.Runs {
		a := &assigns[i]
		ra := RunAssign{ValueBase: a.ValueBase, Ticket: a.Ticket}
		a.ValueBase += k
		switch {
		case !IsDeqIndex(i):
			// Enqueue / push run: exact prefix of length k.
			ra.Iv = Interval{Lo: a.Iv.Lo, Hi: a.Iv.Lo + k - 1}
			a.Iv.Lo += k
			a.Ticket += k
		case mode == Queue:
			// Dequeue run: prefix of length at most k; the rest of the
			// sub-run returns ⊥ (paper: [x_i, min{x_i+op_i-1, y_i}]).
			hi := a.Iv.Lo + k - 1
			if hi > a.Iv.Hi {
				hi = a.Iv.Hi
			}
			ra.Iv = Interval{Lo: a.Iv.Lo, Hi: hi}
			a.Iv.Lo = min64(a.Iv.Lo+k, a.Iv.Hi+1)
		default:
			// Pop run: suffix of length at most k, consumed from the top.
			lo := a.Iv.Hi - k + 1
			if lo < a.Iv.Lo {
				lo = a.Iv.Lo
			}
			ra.Iv = Interval{Lo: lo, Hi: a.Iv.Hi}
			a.Iv.Hi = max64(a.Iv.Hi-k, a.Iv.Lo-1)
		}
		out[i] = ra
	}
	return out
}

// OpAssign is one operation's final assignment: its DHT position (or
// NoPosition for a ⊥ dequeue), its value() rank, and its ticket (stack:
// the push's ticket, or the pop's inclusive upper bound).
type OpAssign struct {
	Pos    int64
	Value  int64
	Ticket int64
}

// NoPosition marks a dequeue that returns ⊥ without touching the DHT.
const NoPosition int64 = -1

// Expand lists the per-operation assignments of one run of length k owned
// by a single node. For queue runs positions ascend from Iv.Lo; for stack
// pop runs they descend from Iv.Hi (the first pop takes the top). The
// operations beyond the interval capacity are ⊥ dequeues.
func Expand(mode Mode, runIndex int, ra RunAssign, k int64) []OpAssign {
	out := make([]OpAssign, k)
	avail := ra.Iv.Len()
	for j := int64(0); j < k; j++ {
		oa := OpAssign{Value: ra.ValueBase + j, Ticket: ra.Ticket}
		switch {
		case !IsDeqIndex(runIndex):
			oa.Pos = ra.Iv.Lo + j
			oa.Ticket = ra.Ticket + j
		case j >= avail:
			oa.Pos = NoPosition
		case mode == Queue:
			oa.Pos = ra.Iv.Lo + j
		default:
			oa.Pos = ra.Iv.Hi - j
		}
		out[j] = oa
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
