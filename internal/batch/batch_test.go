package batch

import (
	"reflect"
	"testing"
	"testing/quick"

	"skueue/internal/xrand"
)

func TestAppendAlternation(t *testing.T) {
	var b Batch
	b.AppendEnqueue()
	b.AppendEnqueue()
	b.AppendDequeue()
	b.AppendDequeue()
	b.AppendDequeue()
	b.AppendEnqueue()
	want := []int64{2, 3, 1}
	if !reflect.DeepEqual(b.Runs, want) {
		t.Fatalf("runs = %v, want %v", b.Runs, want)
	}
}

func TestAppendDequeueFirst(t *testing.T) {
	var b Batch
	b.AppendDequeue()
	if !reflect.DeepEqual(b.Runs, []int64{0, 1}) {
		t.Fatalf("runs = %v, want [0 1]", b.Runs)
	}
	b.AppendDequeue()
	if !reflect.DeepEqual(b.Runs, []int64{0, 2}) {
		t.Fatalf("runs = %v, want [0 2]", b.Runs)
	}
}

func TestCounts(t *testing.T) {
	b := Batch{Runs: []int64{2, 3, 1, 4}}
	if b.NumEnqueues() != 3 || b.NumDequeues() != 7 || b.NumOps() != 10 {
		t.Fatalf("counts wrong: %d/%d/%d", b.NumEnqueues(), b.NumDequeues(), b.NumOps())
	}
	if b.Size() != 4 {
		t.Fatalf("size = %d", b.Size())
	}
}

func TestEmpty(t *testing.T) {
	if !(Batch{}).Empty() {
		t.Errorf("zero batch should be empty")
	}
	if !(Batch{Runs: []int64{0, 0}}).Empty() {
		t.Errorf("all-zero runs should be empty")
	}
	if (Batch{J: 1}).Empty() || (Batch{L: 1}).Empty() {
		t.Errorf("join/leave counters make a batch non-empty")
	}
	if (Batch{Runs: []int64{1}}).Empty() {
		t.Errorf("batch with ops is not empty")
	}
}

func TestCombine(t *testing.T) {
	a := Batch{Runs: []int64{1, 2}, J: 1}
	b := Batch{Runs: []int64{0, 1, 3}, L: 2}
	c := Combine(a, b)
	if !reflect.DeepEqual(c.Runs, []int64{1, 3, 3}) || c.J != 1 || c.L != 2 {
		t.Fatalf("combine wrong: %v", c)
	}
}

func TestCombineAssociativeCommutative(t *testing.T) {
	// As pure element-wise sums, batch values are associative and
	// commutative (the sub-batch order only matters for Decompose).
	gen := func(r *xrand.RNG) Batch {
		runs := make([]int64, r.Intn(5))
		for i := range runs {
			runs[i] = int64(r.Intn(4))
		}
		return Batch{Runs: runs, J: int64(r.Intn(3)), L: int64(r.Intn(3))}
	}
	r := xrand.New(42)
	for trial := 0; trial < 200; trial++ {
		a, b, c := gen(r), gen(r), gen(r)
		ab_c := Combine(Combine(a, b), c)
		a_bc := Combine(a, Combine(b, c))
		if !equalBatch(ab_c, a_bc) {
			t.Fatalf("not associative: %v %v %v", a, b, c)
		}
		if !equalBatch(Combine(a, b), Combine(b, a)) {
			t.Fatalf("not commutative: %v %v", a, b)
		}
	}
}

func equalBatch(a, b Batch) bool {
	if a.J != b.J || a.L != b.L {
		return false
	}
	n := len(a.Runs)
	if len(b.Runs) > n {
		n = len(b.Runs)
	}
	at := func(rs []int64, i int) int64 {
		if i < len(rs) {
			return rs[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if at(a.Runs, i) != at(b.Runs, i) {
			return false
		}
	}
	return true
}

func TestMakeStack(t *testing.T) {
	if !MakeStack(0, 0).Empty() {
		t.Errorf("MakeStack(0,0) should be empty")
	}
	if got := MakeStack(2, 0).Runs; !reflect.DeepEqual(got, []int64{0, 2}) {
		t.Errorf("MakeStack(2,0) = %v", got)
	}
	if got := MakeStack(2, 3).Runs; !reflect.DeepEqual(got, []int64{0, 2, 3}) {
		t.Errorf("MakeStack(2,3) = %v", got)
	}
	if got := MakeStack(0, 3).Runs; !reflect.DeepEqual(got, []int64{0, 0, 3}) {
		t.Errorf("MakeStack(0,3) = %v; pushes must stay at index 3", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	if (Interval{Lo: 3, Hi: 5}).Len() != 3 {
		t.Errorf("len wrong")
	}
	if !(Interval{Lo: 3, Hi: 2}).Empty() || (Interval{Lo: 3, Hi: 2}).Len() != 0 {
		t.Errorf("empty interval wrong")
	}
	if (Interval{Lo: 3, Hi: 3}).Empty() {
		t.Errorf("singleton interval should not be empty")
	}
}

func TestAssignQueueExample(t *testing.T) {
	// Batch (2, 3, 1): 2 enqueues, 3 dequeues, 1 enqueue on an empty queue.
	st := NewAnchorState()
	ras := st.Assign(Queue, Batch{Runs: []int64{2, 3, 1}})
	if ras[0].Iv != (Interval{1, 2}) {
		t.Errorf("enq run 1 interval %v", ras[0].Iv)
	}
	// Dequeues: only positions 1,2 exist; the third gets nothing.
	if ras[1].Iv != (Interval{1, 2}) {
		t.Errorf("deq run interval %v", ras[1].Iv)
	}
	if ras[2].Iv != (Interval{3, 3}) {
		t.Errorf("enq run 2 interval %v", ras[2].Iv)
	}
	if st.First != 3 || st.Last != 3 || st.Size() != 1 {
		t.Errorf("anchor state %+v", st)
	}
	// Value bases: 1, 3, 6.
	if ras[0].ValueBase != 1 || ras[1].ValueBase != 3 || ras[2].ValueBase != 6 {
		t.Errorf("value bases %d %d %d", ras[0].ValueBase, ras[1].ValueBase, ras[2].ValueBase)
	}
	if st.Value != 7 {
		t.Errorf("value counter %d", st.Value)
	}
}

func TestAssignQueueEmptyDequeues(t *testing.T) {
	st := NewAnchorState()
	ras := st.Assign(Queue, Batch{Runs: []int64{0, 5}})
	if !ras[1].Iv.Empty() {
		t.Errorf("dequeues on empty queue should get empty interval, got %v", ras[1].Iv)
	}
	if st.First != 1 || st.Last != 0 {
		t.Errorf("state moved: %+v", st)
	}
	st.CheckInvariant()
}

func TestAssignStack(t *testing.T) {
	st := NewAnchorState()
	// Push 3.
	ras := st.Assign(Stack, MakeStack(0, 3))
	if ras[2].Iv != (Interval{1, 3}) || ras[2].Ticket != 1 {
		t.Fatalf("push assign wrong: %+v", ras[2])
	}
	// Pop 2, push 1: pops take 3,2 (descending) with bound ticket 3;
	// push gets position 2 again but fresh ticket 4.
	ras = st.Assign(Stack, MakeStack(2, 1))
	if ras[1].Iv != (Interval{2, 3}) || ras[1].Ticket != 3 {
		t.Fatalf("pop assign wrong: %+v", ras[1])
	}
	if ras[2].Iv != (Interval{2, 2}) || ras[2].Ticket != 4 {
		t.Fatalf("push-after-pop assign wrong: %+v", ras[2])
	}
	if st.Last != 2 || st.Ticket != 4 {
		t.Fatalf("state %+v", st)
	}
}

func TestAssignStackUnderflow(t *testing.T) {
	st := NewAnchorState()
	st.Assign(Stack, MakeStack(0, 2))
	ras := st.Assign(Stack, MakeStack(5, 0))
	if ras[1].Iv != (Interval{1, 2}) {
		t.Fatalf("pop interval %v, want [1,2]", ras[1].Iv)
	}
	if st.Last != 0 {
		t.Fatalf("stack should be empty, last=%d", st.Last)
	}
	st.CheckInvariant()
}

func TestDecomposePaperExample(t *testing.T) {
	// Combined dequeue run of 5 with only 3 available positions [3,5].
	assigns := []RunAssign{{}, {Iv: Interval{3, 5}, ValueBase: 10}}
	sub1 := Batch{Runs: []int64{0, 2}}
	sub2 := Batch{Runs: []int64{0, 3}}
	d1 := Decompose(Queue, assigns, sub1)
	d2 := Decompose(Queue, assigns, sub2)
	if d1[1].Iv != (Interval{3, 4}) {
		t.Errorf("sub1 deq interval %v, want [3,4]", d1[1].Iv)
	}
	if d2[1].Iv != (Interval{5, 5}) {
		t.Errorf("sub2 deq interval %v, want [5,5]", d2[1].Iv)
	}
	if d1[1].ValueBase != 10 || d2[1].ValueBase != 12 {
		t.Errorf("value bases %d %d", d1[1].ValueBase, d2[1].ValueBase)
	}
}

func TestDecomposeStackPops(t *testing.T) {
	// Pop run of 5 on a stack of 3: positions [1,3], first sub-batch pops
	// from the top.
	assigns := []RunAssign{{}, {Iv: Interval{1, 3}, ValueBase: 1, Ticket: 9}}
	d1 := Decompose(Stack, assigns, MakeStack(2, 0))
	d2 := Decompose(Stack, assigns, MakeStack(3, 0))
	if d1[1].Iv != (Interval{2, 3}) {
		t.Errorf("sub1 pops get %v, want [2,3]", d1[1].Iv)
	}
	if d2[1].Iv != (Interval{1, 1}) {
		t.Errorf("sub2 pops get %v, want [1,1]", d2[1].Iv)
	}
	if d1[1].Ticket != 9 || d2[1].Ticket != 9 {
		t.Errorf("pop ticket bounds must pass through")
	}
}

func TestExpandQueueDequeueShortfall(t *testing.T) {
	ra := RunAssign{Iv: Interval{5, 6}, ValueBase: 100}
	ops := Expand(Queue, 1, ra, 4)
	wantPos := []int64{5, 6, NoPosition, NoPosition}
	for i, op := range ops {
		if op.Pos != wantPos[i] {
			t.Errorf("op %d pos %d, want %d", i, op.Pos, wantPos[i])
		}
		if op.Value != 100+int64(i) {
			t.Errorf("op %d value %d", i, op.Value)
		}
	}
}

func TestExpandStackPopsDescend(t *testing.T) {
	ra := RunAssign{Iv: Interval{4, 6}, ValueBase: 50, Ticket: 7}
	ops := Expand(Stack, 1, ra, 4)
	wantPos := []int64{6, 5, 4, NoPosition}
	for i, op := range ops {
		if op.Pos != wantPos[i] {
			t.Errorf("pop %d pos %d, want %d", i, op.Pos, wantPos[i])
		}
		if op.Ticket != 7 {
			t.Errorf("pop %d ticket %d, want bound 7", i, op.Ticket)
		}
	}
}

func TestExpandPushTickets(t *testing.T) {
	ra := RunAssign{Iv: Interval{4, 6}, ValueBase: 1, Ticket: 10}
	ops := Expand(Stack, 0, ra, 3)
	for i, op := range ops {
		if op.Ticket != 10+int64(i) || op.Pos != 4+int64(i) {
			t.Errorf("push %d = %+v", i, op)
		}
	}
}

func TestInvariantPanics(t *testing.T) {
	st := AnchorState{First: 5, Last: 2}
	defer func() {
		if recover() == nil {
			t.Errorf("CheckInvariant should panic on first > last+1")
		}
	}()
	st.CheckInvariant()
}

// opRef identifies an operation in the randomized end-to-end test below.
type opRef struct {
	OpAssign
	deq bool
}

// runTree simulates an aggregation tree purely at the batch level: leaves
// hold random batches, inner nodes combine, the root assigns, and
// decomposition plus expansion yield per-op assignments. It returns all
// operations from all leaves.
func runTree(t *testing.T, mode Mode, rng *xrand.RNG, st *AnchorState, leaves int) []opRef {
	t.Helper()
	// Random leaf batches.
	subs := make([]Batch, leaves)
	for i := range subs {
		if mode == Queue {
			var b Batch
			for k := rng.Intn(6); k > 0; k-- {
				if rng.Bool(0.5) {
					b.AppendEnqueue()
				} else {
					b.AppendDequeue()
				}
			}
			subs[i] = b
		} else {
			subs[i] = MakeStack(int64(rng.Intn(3)), int64(rng.Intn(3)))
		}
	}
	root := Combine(subs...)
	assigns := st.Assign(mode, root)
	var ops []opRef
	for _, sb := range subs {
		d := Decompose(mode, assigns, sb)
		for ri, k := range sb.Runs {
			for _, oa := range Expand(mode, ri, d[ri], k) {
				ops = append(ops, opRef{OpAssign: oa, deq: IsDeqIndex(ri)})
			}
		}
	}
	return ops
}

func TestQueueAlgebraSequentialReplay(t *testing.T) {
	// The heart of Theorem 14 at the algebra level: ordering all operations
	// by value() and replaying them against a sequential queue must
	// reproduce exactly the assigned positions and ⊥ results.
	rng := xrand.New(2024)
	for trial := 0; trial < 200; trial++ {
		st := NewAnchorState()
		var all []opRef
		for wave := 0; wave < 4; wave++ {
			all = append(all, runTree(t, Queue, rng, &st, 1+rng.Intn(6))...)
		}
		replayQueue(t, all)
	}
}

func replayQueue(t *testing.T, all []opRef) {
	t.Helper()
	sortByValue(all)
	// Values must be unique and consecutive from 1.
	for i, op := range all {
		if op.Value != int64(i)+1 {
			t.Fatalf("value sequence broken at %d: %+v", i, op)
		}
	}
	var fifo []int64 // positions of live elements, FIFO order
	for _, op := range all {
		if !op.deq {
			// Enqueue: must extend with a fresh, strictly increasing pos.
			if len(fifo) > 0 && op.Pos <= fifo[len(fifo)-1] {
				t.Fatalf("enqueue position %d not increasing", op.Pos)
			}
			fifo = append(fifo, op.Pos)
			continue
		}
		if op.Pos == NoPosition {
			if len(fifo) != 0 {
				t.Fatalf("⊥ dequeue while %d elements present", len(fifo))
			}
			continue
		}
		if len(fifo) == 0 {
			t.Fatalf("dequeue at pos %d on empty queue", op.Pos)
		}
		if fifo[0] != op.Pos {
			t.Fatalf("dequeue got pos %d, FIFO head is %d", op.Pos, fifo[0])
		}
		fifo = fifo[1:]
	}
}

func TestStackAlgebraSequentialReplay(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 200; trial++ {
		st := NewAnchorState()
		var all []opRef
		for wave := 0; wave < 4; wave++ {
			all = append(all, runTree(t, Stack, rng, &st, 1+rng.Intn(6))...)
		}
		replayStack(t, all)
	}
}

func replayStack(t *testing.T, all []opRef) {
	t.Helper()
	sortByValue(all)
	type elem struct{ pos, ticket int64 }
	var stk []elem
	for _, op := range all {
		if !op.deq {
			if int64(len(stk))+1 != op.Pos {
				t.Fatalf("push pos %d but stack height %d", op.Pos, len(stk))
			}
			stk = append(stk, elem{op.Pos, op.Ticket})
			continue
		}
		if op.Pos == NoPosition {
			if len(stk) != 0 {
				t.Fatalf("⊥ pop while %d elements present", len(stk))
			}
			continue
		}
		if len(stk) == 0 {
			t.Fatalf("pop at pos %d on empty stack", op.Pos)
		}
		top := stk[len(stk)-1]
		if top.pos != op.Pos {
			t.Fatalf("pop got pos %d, top is %d", op.Pos, top.pos)
		}
		if top.ticket > op.Ticket {
			t.Fatalf("pop bound %d older than matched push ticket %d", op.Ticket, top.ticket)
		}
		stk = stk[:len(stk)-1]
	}
}

func sortByValue(ops []opRef) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].Value < ops[j-1].Value; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

func TestQueuePositionsUniqueProperty(t *testing.T) {
	// testing/quick over random run vectors: enqueue positions across an
	// assignment are all distinct and partition the assigned intervals.
	f := func(runsRaw []uint8) bool {
		runs := make([]int64, len(runsRaw))
		var total int64
		for i, r := range runsRaw {
			runs[i] = int64(r % 8)
			if i%2 == 0 {
				total += runs[i]
			}
		}
		st := NewAnchorState()
		ras := st.Assign(Queue, Batch{Runs: runs})
		seen := make(map[int64]bool)
		for i, ra := range ras {
			if IsDeqIndex(i) {
				continue
			}
			for p := ra.Iv.Lo; p <= ra.Iv.Hi; p++ {
				if seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return int64(len(seen)) == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Batch{Runs: []int64{1, 2}, J: 3}
	b := a.Clone()
	b.Runs[0] = 9
	b.J = 0
	if a.Runs[0] != 1 || a.J != 3 {
		t.Errorf("clone aliases original")
	}
}

func TestModeString(t *testing.T) {
	if Queue.String() != "queue" || Stack.String() != "stack" {
		t.Errorf("mode strings wrong")
	}
}
