package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// FaultSummary counts the faults a run actually executed, by kind.
type FaultSummary struct {
	Joins    int `json:"joins,omitempty"`
	Leaves   int `json:"leaves,omitempty"`
	Kills    int `json:"kills,omitempty"`
	Restarts int `json:"restarts,omitempty"`
}

// Point is one member-count measurement of a BENCH file: throughput and
// the latency tail, with enough context to reproduce the run.
type Point struct {
	Members int `json:"members"`
	// Ops is the number of completed operations the point measured.
	Ops     int `json:"ops"`
	Bottoms int `json:"bottoms"`
	// ElapsedSec is wall-clock run time; OpsPerSec is Ops/ElapsedSec.
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// LatencyUnit names the unit of the latency fields: "rounds" for
	// in-process simulator runs, "us" for multi-process runs.
	LatencyUnit string  `json:"latency_unit"`
	P50         int64   `json:"p50"`
	P99         int64   `json:"p99"`
	P999        int64   `json:"p999"`
	MaxLatency  int64   `json:"max_latency"`
	MeanLatency float64 `json:"mean_latency"`
	// AvgRounds is the protocol-level mean request latency in simulated
	// rounds (simulator runs only; mirrors the paper's Figures 2-3 axis).
	AvgRounds float64      `json:"avg_rounds,omitempty"`
	Faults    FaultSummary `json:"faults"`
}

// Bench is the machine-readable result of one chaos scenario, written as
// BENCH_<scenario>.json so CI artifacts and committed files form a
// perf trajectory across PRs.
type Bench struct {
	Scenario  string `json:"scenario"`
	GitSHA    string `json:"git_sha"`
	Timestamp string `json:"timestamp"`
	Mode      string `json:"mode"`
	Seed      int64  `json:"seed"`
	// WAN describes the delivery profile of the run ("off" when unshaped).
	WAN string `json:"wan"`
	// Workload describes the request pattern in one line.
	Workload string  `json:"workload"`
	Points   []Point `json:"points"`
}

// AddPoint appends a measurement.
func (b *Bench) AddPoint(p Point) { b.Points = append(b.Points, p) }

// WriteFile writes the bench as dir/BENCH_<scenario>.json and returns the
// path. Scenario names are sanitized to keep the filename flat.
func (b *Bench) WriteFile(dir string) (string, error) {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, b.Scenario)
	if name == "" {
		return "", fmt.Errorf("chaos: empty bench scenario name")
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Stamp fills the bench's provenance fields: the current git commit (or
// $GITHUB_SHA, or "unknown") and the current UTC time.
func (b *Bench) Stamp(repoDir string) {
	b.GitSHA = gitSHA(repoDir)
	b.Timestamp = time.Now().UTC().Format(time.RFC3339)
}

func gitSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short=12", "HEAD")
	cmd.Dir = dir
	if out, err := cmd.Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	return "unknown"
}
