package chaos

import (
	"fmt"
	"math/bits"
)

// Histogram is a fixed-bucket log-linear latency histogram: values below
// 8 get exact buckets, larger values get 8 buckets per power of two
// (≤12.5% relative bucket width), so recording is allocation-free and
// percentile error is bounded regardless of how many samples a chaos run
// produces. The unit is whatever the caller records — simulated rounds
// for in-process runs, microseconds for multi-process runs.
type Histogram struct {
	unit    string
	buckets [8 + 8*61]int64
	count   int64
	sum     int64
	max     int64
}

// NewHistogram creates an empty histogram whose samples are in unit.
func NewHistogram(unit string) *Histogram { return &Histogram{unit: unit} }

// Unit returns the sample unit label.
func (h *Histogram) Unit() string { return h.unit }

func bucketOf(v int64) int {
	u := uint64(v)
	if u < 8 {
		return int(u)
	}
	// Shift the value down into [8, 16); the discarded bits select one of
	// 8 sub-buckets per octave.
	exp := bits.Len64(u) - 4
	return 8 + 8*(exp-0) + int(u>>uint(exp)) - 8
}

// bucketBounds returns the half-open value range [lo, hi) of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b < 8 {
		return int64(b), int64(b) + 1
	}
	exp := uint((b - 8) / 8)
	m := int64(8 + (b-8)%8)
	return m << exp, (m + 1) << exp
}

// Record adds one sample; negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h. Units must match.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if h.unit != other.unit {
		panic(fmt.Sprintf("chaos: merging %q histogram into %q", other.unit, h.unit))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact sample mean (the sum is tracked, not estimated).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the covering bucket, clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for b, c := range h.buckets {
		if c == 0 {
			continue
		}
		if rank < seen+c {
			lo, hi := bucketBounds(b)
			est := lo + (hi-lo)*(rank-seen)/c
			if est > h.max {
				est = h.max
			}
			return est
		}
		seen += c
	}
	return h.max
}

// P50, P99 and P999 are the percentile shorthands every BENCH point uses.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%d p99=%d p999=%d max=%d %s",
		h.count, h.P50(), h.P99(), h.P999(), h.max, h.unit)
}
