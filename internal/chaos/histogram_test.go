package chaos

import (
	"testing"

	"skueue/internal/xrand"
)

func TestHistogramBucketsCoverInt64(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1 << 20, 1<<62 + 12345} {
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if v < lo || v >= hi {
			t.Fatalf("value %d landed in bucket %d = [%d, %d)", v, b, lo, hi)
		}
	}
	// Relative bucket width stays <= 12.5% beyond the exact range.
	for _, v := range []int64{64, 1000, 1 << 30} {
		lo, hi := bucketBounds(bucketOf(v))
		if width := float64(hi-lo) / float64(lo); width > 0.126 {
			t.Fatalf("bucket of %d has relative width %.3f", v, width)
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram("rounds")
	for v := int64(0); v < 8; v++ {
		h.Record(v)
	}
	if h.Count() != 8 || h.Max() != 7 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %d, want 0", q)
	}
	if q := h.Quantile(1); q != 7 {
		t.Fatalf("q1 = %d, want 7", q)
	}
}

func TestHistogramQuantilesUniform(t *testing.T) {
	h := NewHistogram("us")
	rng := xrand.New(11)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Record(int64(rng.Intn(10000)))
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 5000}, {0.99, 9900}, {0.999, 9990}} {
		got := h.Quantile(tc.q)
		if got < tc.want*85/100 || got > tc.want*115/100 {
			t.Fatalf("q%.3f = %d, want within 15%% of %d", tc.q, got, tc.want)
		}
	}
	if m := h.Mean(); m < 4800 || m > 5200 {
		t.Fatalf("mean = %f, want ~5000", m)
	}
}

func TestHistogramMergeMatchesCombined(t *testing.T) {
	a, b, all := NewHistogram("us"), NewHistogram("us"), NewHistogram("us")
	rng := xrand.New(3)
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 16))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.P99() != all.P99() || a.P999() != all.P999() {
		t.Fatalf("merged %s != combined %s", a, all)
	}
}

func TestHistogramClampsNegative(t *testing.T) {
	h := NewHistogram("us")
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample not clamped: %s", h)
	}
}
