package chaos

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"skueue"
	"skueue/internal/core"
	"skueue/internal/seqcheck"
	"skueue/internal/xrand"
)

// ProcScenario configures a multi-process chaos run: a durable
// skueue-server cluster on loopback, worker clients driving mixed traffic
// through the remote client layer, and a kill/restart storm aimed inside
// journal group-commit windows.
type ProcScenario struct {
	// Bin is the path to a skueue-server binary (tests build one with
	// `go build`; the CLI defaults to `go run`-style lookup by the caller).
	Bin string
	// Members is the cluster size (member 0 is the seed and never dies).
	Members int
	// Mode is "queue", "stack" or "heap".
	Mode string
	// HeapLevels is the number of priority levels in heap mode (default
	// 4). Heap workers spread enqueues uniformly over the levels and
	// dequeue with DequeueMin; the post-storm accounting is then kept per
	// level (ProcResult.Levels) on top of the global element accounting.
	HeapLevels int
	Seed       int64
	// Workers and OpsPerWorker size the client traffic; EnqRatio is the
	// probability an op is an enqueue/push.
	Workers      int
	OpsPerWorker int
	EnqRatio     float64
	// Sessions drives the traffic through durable client sessions
	// (WithSession + WithReconnect): a kill no longer tears a worker's
	// pending operations down — the client resumes the session at the
	// restarted owner and collects the journaled outcomes exactly once.
	// Each worker's session order is verified against the merged history
	// after the storm (seqcheck.CheckSession via Client.Check).
	Sessions bool
	// Storm's Members and Seed fields are filled in from the scenario.
	Storm StormSpec
	// WANLatency/WANJitter/WANLoss shape every member's inbound peer
	// traffic (skueue-server -wan-* flags).
	WANLatency, WANJitter time.Duration
	WANLoss               float64
	// Server tuning; zero values pick the server defaults.
	SnapshotEvery     time.Duration
	Tick              time.Duration
	GiveUp            time.Duration
	JournalBatchOps   int
	JournalBatchDelay time.Duration
	// BaseDir holds state directories and member logs (default: a fresh
	// temp dir the caller is responsible for cleaning up).
	BaseDir string
	// OpTimeout bounds one client operation (default 60s: an op caught by
	// a kill stalls until the victim replays its journal and rejoins).
	OpTimeout time.Duration
	Logf      func(format string, args ...any)
}

// ProcResult is the outcome of a multi-process chaos run after exact
// element accounting and the Definition 1 check both passed.
type ProcResult struct {
	Members int
	// Ops counts client-confirmed operations (workers + drain).
	Ops     int
	Bottoms int
	// Confirmed / MaybeEnqueued / IndetDequeues describe the accounting
	// universe: values whose enqueue confirmed, values whose enqueue was
	// cut off mid-flight (outcome unknown), and dequeues whose answer was
	// lost (each may have consumed at most one element server-side).
	Confirmed     int
	MaybeEnqueued int
	IndetDequeues int
	// Drained counts elements recovered by the post-storm drain.
	Drained int
	// Levels is the per-priority-level slice of the accounting universe
	// (heap runs only): each level's confirmed/maybe enqueues, dequeues,
	// and confirmed-but-undequeued elements. The sum of Missing across
	// levels is bounded by IndetDequeues, like the global check.
	Levels  map[int32]*LevelTally
	Hist    *Histogram // microseconds
	Elapsed time.Duration
	// OpsPerSec counts confirmed ops per wall-clock second of the traffic
	// phase.
	OpsPerSec float64
	Faults    FaultSummary
	Stats     skueue.Stats
}

// LevelTally is one priority level's element accounting (heap runs).
type LevelTally struct {
	Confirmed int // enqueues confirmed at this level
	Maybe     int // enqueues cut off mid-flight at this level
	Dequeued  int // elements of this level dequeued (workers + drain)
	Missing   int // confirmed at this level but never seen again
}

// Point converts the result into a BENCH point.
func (r *ProcResult) Point() Point {
	return Point{
		Members:     r.Members,
		Ops:         r.Ops,
		Bottoms:     r.Bottoms,
		ElapsedSec:  r.Elapsed.Seconds(),
		OpsPerSec:   r.OpsPerSec,
		LatencyUnit: r.Hist.Unit(),
		P50:         r.Hist.P50(),
		P99:         r.Hist.P99(),
		P999:        r.Hist.P999(),
		MaxLatency:  r.Hist.Max(),
		MeanLatency: r.Hist.Mean(),
		Faults:      r.Faults,
	}
}

// procMember is one skueue-server process slot.
type procMember struct {
	index int
	addr  string
	dir   string
	boot  int
	cmd   *exec.Cmd
	alive bool
}

// ProcCluster manages the skueue-server processes of one scenario.
//
//skueue:lock 90
type ProcCluster struct {
	sc   ProcScenario
	base string
	mu   sync.Mutex
	m    []*procMember
	logf func(format string, args ...any)
}

// freeAddrs reserves n distinct loopback ports. All n listeners are held
// open until every port is picked: binding and closing one at a time lets
// the kernel hand the same just-freed ephemeral port out twice, and a
// duplicate bootstrap address silently cripples the cluster (the
// duplicate member fails to bind while its readiness dial succeeds
// against the other member's listener). The window between the final
// release and the servers' own binds is the standard pre-pick race.
func freeAddrs(n int) ([]string, error) {
	ls := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range ls {
			l.Close()
		}
	}()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ls = append(ls, l)
		addrs[i] = l.Addr().String()
	}
	return addrs, nil
}

// StartProcCluster boots the scenario's cluster and waits until every
// member accepts connections.
func StartProcCluster(sc ProcScenario) (*ProcCluster, error) {
	if sc.Members < 2 {
		return nil, fmt.Errorf("chaos: proc cluster needs >= 2 members (have %d)", sc.Members)
	}
	if sc.Bin == "" {
		return nil, fmt.Errorf("chaos: proc cluster needs a skueue-server binary path")
	}
	base := sc.BaseDir
	if base == "" {
		var err error
		if base, err = os.MkdirTemp("", "skueue-chaos-*"); err != nil {
			return nil, err
		}
	}
	logf := sc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &ProcCluster{sc: sc, base: base, logf: logf}
	addrs, err := freeAddrs(sc.Members)
	if err != nil {
		return nil, err
	}
	for i := 0; i < sc.Members; i++ {
		m := &procMember{
			index: i,
			addr:  addrs[i],
			dir:   filepath.Join(base, fmt.Sprintf("m%d", i)),
		}
		if err := os.MkdirAll(m.dir, 0o755); err != nil {
			return nil, err
		}
		c.m = append(c.m, m)
	}
	for i, m := range c.m {
		args := append(c.commonArgs(m),
			"-index", fmt.Sprint(i),
			"-members", joinAddrs(addrs),
		)
		if err := c.spawn(m, args); err != nil {
			c.Stop()
			return nil, err
		}
	}
	for _, m := range c.m {
		if err := c.waitReady(m, 30*time.Second); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

func joinAddrs(addrs []string) string {
	out := ""
	for i, a := range addrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

// commonArgs are the flags shared by bootstrap and restart starts.
func (c *ProcCluster) commonArgs(m *procMember) []string {
	sc := c.sc
	args := []string{
		"-addr", m.addr,
		"-seed", fmt.Sprint(sc.Seed),
		"-mode", sc.Mode,
		"-state", m.dir,
		"-v",
	}
	if sc.HeapLevels > 0 {
		args = append(args, "-heap-levels", fmt.Sprint(sc.HeapLevels))
	}
	if sc.SnapshotEvery > 0 {
		args = append(args, "-snapshot-every", sc.SnapshotEvery.String())
	}
	if sc.Tick > 0 {
		args = append(args, "-tick", sc.Tick.String())
	}
	if sc.GiveUp > 0 {
		args = append(args, "-give-up", sc.GiveUp.String())
	}
	if sc.JournalBatchOps != 0 {
		args = append(args, "-journal-batch-ops", fmt.Sprint(sc.JournalBatchOps))
	}
	if sc.JournalBatchDelay > 0 {
		args = append(args, "-journal-batch-delay", sc.JournalBatchDelay.String())
	}
	if sc.WANLatency > 0 {
		args = append(args, "-wan-latency", sc.WANLatency.String())
	}
	if sc.WANJitter > 0 {
		args = append(args, "-wan-jitter", sc.WANJitter.String())
	}
	if sc.WANLoss > 0 {
		args = append(args, "-wan-loss", fmt.Sprint(sc.WANLoss))
	}
	return args
}

// spawn starts one member process, logging to m<idx>.boot<N>.log.
func (c *ProcCluster) spawn(m *procMember, args []string) error {
	m.boot++
	logPath := filepath.Join(c.base, fmt.Sprintf("m%d.boot%d.log", m.index, m.boot))
	logFile, err := os.Create(logPath)
	if err != nil {
		return err
	}
	cmd := exec.Command(c.sc.Bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("chaos: starting member %d: %w", m.index, err)
	}
	go func() {
		cmd.Wait() // reap; exit status is uninteresting (kills are -9)
		logFile.Close()
	}()
	c.mu.Lock()
	m.cmd = cmd
	m.alive = true
	c.mu.Unlock()
	c.logf("chaos: member %d up (boot %d, pid %d, %s)", m.index, m.boot, cmd.Process.Pid, m.addr)
	return nil
}

func (c *ProcCluster) waitReady(m *procMember, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", m.addr, time.Second)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: member %d (%s) not accepting after %v: %w", m.index, m.addr, timeout, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// SeedAddr returns the seed member's address.
func (c *ProcCluster) SeedAddr() string { return c.m[0].addr }

// LiveAddr returns the address of a random live member.
func (c *ProcCluster) LiveAddr(rng *xrand.RNG) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var live []string
	for _, m := range c.m {
		if m.alive {
			live = append(live, m.addr)
		}
	}
	if len(live) == 0 {
		return "", false
	}
	return live[rng.Intn(len(live))], true
}

// Kill SIGKILLs member i — a real fail-stop crash: staged journal batches
// whose fsync has not returned are lost, exactly the window the storm
// schedule aims for.
func (c *ProcCluster) Kill(i int) error {
	c.mu.Lock()
	m := c.m[i]
	if !m.alive {
		c.mu.Unlock()
		return fmt.Errorf("chaos: kill of member %d while down", i)
	}
	m.alive = false
	cmd := m.cmd
	c.mu.Unlock()
	c.logf("chaos: killing member %d (pid %d)", i, cmd.Process.Pid)
	return cmd.Process.Kill()
}

// Restart brings member i back from its state directory on a fresh port,
// rejoining through the seed (the PR 4 fail-stop recovery path).
func (c *ProcCluster) Restart(i int) error {
	c.mu.Lock()
	m := c.m[i]
	if m.alive {
		c.mu.Unlock()
		return fmt.Errorf("chaos: restart of member %d while alive", i)
	}
	c.mu.Unlock()
	// Pick a fresh port that does not collide with any current member
	// (the released listener's port can be re-handed to us).
	var addr string
	for {
		addrs, err := freeAddrs(1)
		if err != nil {
			return err
		}
		addr = addrs[0]
		c.mu.Lock()
		dup := false
		for _, other := range c.m {
			if other != m && other.addr == addr {
				dup = true
			}
		}
		c.mu.Unlock()
		if !dup {
			break
		}
	}
	m.addr = addr
	args := append(c.commonArgs(m), "-join", c.SeedAddr())
	if err := c.spawn(m, args); err != nil {
		return err
	}
	return c.waitReady(m, 30*time.Second)
}

// Stop kills every process and leaves state directories behind for
// post-mortems.
func (c *ProcCluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.m {
		if m.cmd != nil && m.alive {
			m.cmd.Process.Kill()
			m.alive = false
		}
	}
}

// BaseDir returns the scenario's state/log directory.
func (c *ProcCluster) BaseDir() string { return c.base }

// workerTally is one worker's private accounting, merged after the run.
type workerTally struct {
	confirmed map[string]bool
	maybeEnq  map[string]bool
	dequeued  []string
	bottoms   int
	indetDeq  int
	hist      *Histogram
}

// RunProc executes a full multi-process chaos scenario: boot, traffic
// under the storm, drain, exact element accounting, Definition 1 check.
func RunProc(sc ProcScenario) (*ProcResult, error) {
	if sc.Workers < 1 || sc.OpsPerWorker < 1 {
		return nil, fmt.Errorf("chaos: proc scenario needs workers and ops (%+v)", sc)
	}
	if sc.Mode == "" {
		sc.Mode = "queue"
	}
	if sc.Mode == "heap" && sc.HeapLevels <= 0 {
		sc.HeapLevels = 4
	}
	if sc.OpTimeout <= 0 {
		sc.OpTimeout = 60 * time.Second
	}
	sc.Storm.Members = sc.Members
	sc.Storm.Seed = sc.Seed
	// Spare the anchor-hosting member: the anchor role is a singleton
	// that dies with its process, and fail-stop recovery restores a
	// member's queue state, not a role it was holding. The harness boots
	// one process per member, so the anchor's process ID is its member
	// index.
	sc.Storm.Avoid = append(sc.Storm.Avoid, int(core.AnchorProcess(sc.Seed, sc.Members))%sc.Members)
	var schedule []Fault
	if sc.Storm.Kills > 0 {
		var err error
		if schedule, err = sc.Storm.Schedule(); err != nil {
			return nil, err
		}
	}
	cluster, err := StartProcCluster(sc)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	logf := cluster.logf

	// Fault storm, clocked from traffic start.
	var faults FaultSummary
	stormDone := make(chan error, 1)
	start := time.Now()
	go func() {
		for _, f := range schedule {
			time.Sleep(time.Until(start.Add(f.At)))
			switch f.Kind {
			case Kill:
				if err := cluster.Kill(f.Member); err != nil {
					stormDone <- err
					return
				}
				faults.Kills++
			case Restart:
				if err := cluster.Restart(f.Member); err != nil {
					stormDone <- err
					return
				}
				faults.Restarts++
			}
		}
		stormDone <- nil
	}()

	// Traffic: each worker drives a remote client, redialing a live
	// member whenever a kill tears its connection down (ephemeral mode)
	// or letting the session layer reconnect underneath it (Sessions).
	tallies := make([]*workerTally, sc.Workers)
	sessClients := make([]*skueue.Client, sc.Workers)
	var wg sync.WaitGroup
	for w := 0; w < sc.Workers; w++ {
		w := w
		tallies[w] = &workerTally{
			confirmed: make(map[string]bool),
			maybeEnq:  make(map[string]bool),
			hist:      NewHistogram("us"),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sc.Sessions {
				sessClients[w] = runSessionWorker(cluster, sc, w, tallies[w])
			} else {
				runWorker(cluster, sc, w, tallies[w])
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-stormDone; err != nil {
		return nil, fmt.Errorf("chaos: storm execution: %w", err)
	}

	// Per-session order check: every outcome each session observed must
	// exist in the merged history at the rank it was delivered with, in
	// the session's dependency order — across however many kills and
	// resumes the storm inflicted on its owner.
	for w, cl := range sessClients {
		if cl == nil {
			continue
		}
		err := cl.Check()
		if err != nil {
			dumpHistory(cluster, cl)
			cl.Close()
			return nil, fmt.Errorf("chaos: session check (worker %d): %w", w, err)
		}
		cl.Close()
	}

	// Merge the accounting universe.
	confirmed := make(map[string]bool)
	maybeEnq := make(map[string]bool)
	dequeued := make(map[string]int)
	hist := NewHistogram("us")
	res := &ProcResult{Members: sc.Members, Faults: faults, Elapsed: elapsed, Hist: hist}
	for _, t := range tallies {
		for v := range t.confirmed {
			confirmed[v] = true
		}
		for v := range t.maybeEnq {
			maybeEnq[v] = true
		}
		for _, v := range t.dequeued {
			dequeued[v]++
		}
		res.Bottoms += t.bottoms
		res.IndetDequeues += t.indetDeq
		hist.Merge(t.hist)
	}

	// Drain the queue empty so every confirmed element is accounted for.
	drained, stats, err := drainAndCheck(cluster, sc, dequeued)
	if err != nil {
		return nil, err
	}
	res.Drained = drained
	res.Confirmed = len(confirmed)
	res.MaybeEnqueued = len(maybeEnq)
	res.Ops = int(hist.Count()) + drained
	res.OpsPerSec = float64(hist.Count()) / elapsed.Seconds()
	res.Stats = stats

	// Exact element accounting.
	var missing []string
	for v := range confirmed {
		if dequeued[v] == 0 {
			missing = append(missing, v)
		}
	}
	sort.Strings(missing)
	for v, n := range dequeued {
		if n > 1 {
			return nil, fmt.Errorf("chaos: element %q dequeued %d times", v, n)
		}
		if !confirmed[v] && !maybeEnq[v] {
			return nil, fmt.Errorf("chaos: dequeued element %q was never enqueued", v)
		}
	}
	// A confirmed element may only be missing client-side if one of the
	// indeterminate dequeues consumed it (the answer died with the
	// connection, the element is validly gone).
	if len(missing) > res.IndetDequeues {
		show := missing
		if len(show) > 8 {
			show = show[:8]
		}
		return nil, fmt.Errorf("chaos: %d confirmed elements unaccounted for (> %d indeterminate dequeues): %v",
			len(missing), res.IndetDequeues, show)
	}
	// Server-side cross-check: the merged history must hold every
	// confirmed enqueue and no more than confirmed+maybe.
	if stats.Enqueues < len(confirmed) || stats.Enqueues > len(confirmed)+len(maybeEnq) {
		return nil, fmt.Errorf("chaos: history has %d enqueues, client accounting allows [%d, %d]",
			stats.Enqueues, len(confirmed), len(confirmed)+len(maybeEnq))
	}
	// Heap runs additionally account per priority level: every value
	// carries its level, so each level's confirmed/maybe/dequeued slice
	// must balance on its own — a level overdrawn (more dequeues than
	// enqueues that could have fed it) is a discipline bug even when the
	// global totals happen to cancel out.
	if sc.Mode == "heap" {
		levels := make(map[int32]*LevelTally)
		at := func(pri int32) *LevelTally {
			lt := levels[pri]
			if lt == nil {
				lt = &LevelTally{}
				levels[pri] = lt
			}
			return lt
		}
		tally := func(set map[string]bool, count func(*LevelTally)) error {
			for v := range set {
				pri, ok := valueLevel(v)
				if !ok || int(pri) >= sc.HeapLevels {
					return fmt.Errorf("chaos: heap value %q carries no valid level", v)
				}
				count(at(pri))
			}
			return nil
		}
		if err := tally(confirmed, func(lt *LevelTally) { lt.Confirmed++ }); err != nil {
			return nil, err
		}
		if err := tally(maybeEnq, func(lt *LevelTally) { lt.Maybe++ }); err != nil {
			return nil, err
		}
		for v, n := range dequeued {
			pri, ok := valueLevel(v)
			if !ok || int(pri) >= sc.HeapLevels {
				return nil, fmt.Errorf("chaos: dequeued heap value %q carries no valid level", v)
			}
			at(pri).Dequeued += n
		}
		for _, v := range missing {
			pri, _ := valueLevel(v)
			at(pri).Missing++
		}
		for pri, lt := range levels {
			if lt.Dequeued > lt.Confirmed+lt.Maybe {
				return nil, fmt.Errorf("chaos: level %d overdrawn: %d dequeued, only %d confirmed + %d maybe enqueued",
					pri, lt.Dequeued, lt.Confirmed, lt.Maybe)
			}
			logf("chaos: level %d: %d confirmed, %d maybe, %d dequeued, %d missing",
				pri, lt.Confirmed, lt.Maybe, lt.Dequeued, lt.Missing)
		}
		res.Levels = levels
	}
	logf("chaos: proc run ok: %d confirmed, %d maybe, %d indet dequeues, %d drained, %d kills",
		res.Confirmed, res.MaybeEnqueued, res.IndetDequeues, res.Drained, faults.Kills)
	return res, nil
}

// runWorker drives one client's share of the traffic, tolerating
// connection loss from kills by redialing a live member.
func runWorker(cluster *ProcCluster, sc ProcScenario, id int, t *workerTally) {
	rng := xrand.New(sc.Seed ^ int64(id)<<21).Fork("worker")
	var c *skueue.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	redial := func() bool {
		if c != nil {
			c.Close()
			c = nil
		}
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			addr, ok := cluster.LiveAddr(rng)
			if ok {
				cl, err := skueue.Open(skueue.WithRemote(addr))
				if err == nil {
					c = cl
					return true
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		return false
	}
	for i := 0; i < sc.OpsPerWorker; i++ {
		if c == nil && !redial() {
			return // cluster unreachable; accounting will catch real loss
		}
		ctx, cancel := context.WithTimeout(context.Background(), sc.OpTimeout)
		if rng.Bool(sc.EnqRatio) {
			v, pri := chaosValue(sc, rng, id, i)
			t0 := time.Now()
			var err error
			if sc.HeapLevels > 0 {
				err = c.EnqueuePri(ctx, pri, v)
			} else {
				err = c.Enqueue(ctx, v)
			}
			if err == nil {
				t.confirmed[v] = true
				t.hist.Record(time.Since(t0).Microseconds())
			} else {
				// The connection (or the op) died mid-flight: the enqueue
				// may or may not have committed server-side.
				t.maybeEnq[v] = true
				c.Close()
				c = nil
			}
		} else {
			t0 := time.Now()
			var v any
			var ok bool
			var err error
			if sc.HeapLevels > 0 {
				v, ok, err = c.DequeueMin(ctx)
			} else {
				v, ok, err = c.Dequeue(ctx)
			}
			if err == nil {
				if ok {
					if s, isStr := v.(string); isStr {
						t.dequeued = append(t.dequeued, s)
					}
				} else {
					t.bottoms++
				}
				t.hist.Record(time.Since(t0).Microseconds())
			} else {
				// The answer died with the connection; the dequeue may
				// have consumed an element whose identity is unknown.
				t.indetDeq++
				c.Close()
				c = nil
			}
		}
		cancel()
	}
}

// chaosValue names one worker enqueue. Heap runs pick a uniform priority
// level and bake it into the value ("w3-17@L2"), so the per-level
// accounting can be reconstructed from the values alone after the storm.
func chaosValue(sc ProcScenario, rng *xrand.RNG, id, i int) (string, int32) {
	if sc.HeapLevels > 0 {
		pri := int32(rng.Intn(sc.HeapLevels))
		return fmt.Sprintf("w%d-%d@L%d", id, i, pri), pri
	}
	return fmt.Sprintf("w%d-%d", id, i), 0
}

// valueLevel recovers the priority level a heap value was enqueued at.
func valueLevel(v string) (int32, bool) {
	i := strings.LastIndex(v, "@L")
	if i < 0 {
		return 0, false
	}
	var pri int32
	if _, err := fmt.Sscanf(v[i+2:], "%d", &pri); err != nil {
		return 0, false
	}
	return pri, true
}

// runSessionWorker drives one worker's traffic through a durable session:
// reconnects and resumes happen inside the client (WithReconnect), so a
// kill mid-operation usually costs latency, not an outcome. Only a client
// that gave up — retry budget exhausted, or an operation answered
// indeterminate/timed out — is replaced, under a fresh session
// incarnation so the old and new dedupe windows never mix. Returns the
// final incarnation's client, still open, for the per-session order
// check.
func runSessionWorker(cluster *ProcCluster, sc ProcScenario, id int, t *workerTally) *skueue.Client {
	rng := xrand.New(sc.Seed ^ int64(id)<<21).Fork("session-worker")
	incarnation := 0
	var c *skueue.Client
	open := func() bool {
		if c != nil {
			c.Close()
			c = nil
		}
		incarnation++
		sess := fmt.Sprintf("chaos-%d-w%d-i%d", sc.Seed, id, incarnation)
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			addr, ok := cluster.LiveAddr(rng)
			if ok {
				cl, err := skueue.Open(
					skueue.WithRemote(addr),
					skueue.WithSession(sess),
					skueue.WithDialTimeout(2*time.Second),
					skueue.WithReconnect(60, 200*time.Millisecond),
				)
				if err == nil {
					c = cl
					return true
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		return false
	}
	for i := 0; i < sc.OpsPerWorker; i++ {
		if c == nil && !open() {
			return nil // cluster unreachable; accounting will catch real loss
		}
		ctx, cancel := context.WithTimeout(context.Background(), sc.OpTimeout)
		var opErr error
		if rng.Bool(sc.EnqRatio) {
			v, pri := chaosValue(sc, rng, id, i)
			t0 := time.Now()
			var f *skueue.Future
			var err error
			if sc.HeapLevels > 0 {
				f, err = c.EnqueuePriAsync(skueue.AnyProcess, pri, v)
			} else {
				f, err = c.EnqueueAsync(skueue.AnyProcess, v)
			}
			if err == nil {
				_, _, err = f.Result(ctx)
			}
			if err == nil {
				t.confirmed[v] = true
				t.hist.Record(time.Since(t0).Microseconds())
			} else {
				// Retries exhausted, a timeout, or an indeterminate answer:
				// the enqueue may or may not have committed server-side.
				t.maybeEnq[v] = true
			}
			opErr = err
		} else {
			t0 := time.Now()
			var f *skueue.Future
			var err error
			if sc.HeapLevels > 0 {
				f, err = c.DequeueMinAsync(skueue.AnyProcess)
			} else {
				f, err = c.DequeueAsync(skueue.AnyProcess)
			}
			var v any
			var present bool
			if err == nil {
				v, present, err = f.Result(ctx)
			}
			if err == nil {
				if present {
					if s, isStr := v.(string); isStr {
						t.dequeued = append(t.dequeued, s)
					}
				} else {
					t.bottoms++
				}
				t.hist.Record(time.Since(t0).Microseconds())
			} else {
				// The answer is lost; the dequeue may have consumed an
				// element whose identity is unknown.
				t.indetDeq++
			}
			opErr = err
		}
		cancel()
		if opErr != nil {
			// A timed-out operation could still settle on this session, but
			// its tally entry is already conservative (maybe/indeterminate);
			// replacing the incarnation keeps each pending window's
			// accounting unambiguous.
			c.Close()
			c = nil
		}
	}
	return c
}

// drainAndCheck empties the structure after the storm, then fetches the
// merged histories for the Definition 1 check and the final stats.
// dequeued is extended with the drained elements.
func drainAndCheck(cluster *ProcCluster, sc ProcScenario, dequeued map[string]int) (int, skueue.Stats, error) {
	rng := xrand.New(sc.Seed ^ 0x1d7a1).Fork("drain")
	var c *skueue.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	open := func() error {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			addr, ok := cluster.LiveAddr(rng)
			if ok {
				cl, err := skueue.Open(skueue.WithRemote(addr))
				if err == nil {
					c = cl
					return nil
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		return fmt.Errorf("chaos: no reachable member for drain")
	}
	if err := open(); err != nil {
		return 0, skueue.Stats{}, err
	}
	drained := 0
	bottoms := 0
	deadline := time.Now().Add(5 * time.Minute)
	// Consecutive ⊥ answers prove emptiness only once no enqueue can
	// still be in flight; workers and storm are done, so 25 in a row
	// (spread over transport latency) is far past any journal replay.
	for bottoms < 25 {
		if time.Now().After(deadline) {
			return drained, skueue.Stats{}, fmt.Errorf("chaos: drain did not reach empty in 5m (%d drained)", drained)
		}
		ctx, cancel := context.WithTimeout(context.Background(), sc.OpTimeout)
		var v any
		var ok bool
		var err error
		if sc.HeapLevels > 0 {
			v, ok, err = c.DequeueMin(ctx)
		} else {
			v, ok, err = c.Dequeue(ctx)
		}
		cancel()
		if err != nil {
			c.Close()
			c = nil
			if err := open(); err != nil {
				return drained, skueue.Stats{}, err
			}
			continue
		}
		if ok {
			bottoms = 0
			drained++
			if s, isStr := v.(string); isStr {
				dequeued[s]++
			}
		} else {
			bottoms++
			time.Sleep(20 * time.Millisecond)
		}
	}
	if err := c.Check(); err != nil {
		dumpHistory(cluster, c)
		return drained, skueue.Stats{}, fmt.Errorf("chaos: Definition 1 check failed: %w", err)
	}
	return drained, c.Stats(), nil
}

// dumpHistory writes the merged completion history to the scenario's
// base directory when a consistency check fails, so a violation found by
// a storm can be diagnosed from the artifacts instead of re-run. Best
// effort: fetch or write errors only log.
func dumpHistory(cluster *ProcCluster, c *skueue.Client) {
	h, err := c.History()
	if err != nil {
		cluster.logf("chaos: history dump failed: %v", err)
		return
	}
	ops := append([]seqcheck.Completion(nil), h.Ops...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Value < ops[j].Value })
	var b strings.Builder
	b.WriteString("rank\tclient\tseq\tkind\telem\tbottom\treqid\n")
	for _, op := range ops {
		fmt.Fprintf(&b, "%d\tc%d\t%d\t%v\t%v\t%v\t%#x\n",
			op.Value, op.Client, op.LocalSeq, op.Kind, op.Elem, op.Bottom, op.ReqID)
	}
	path := filepath.Join(cluster.BaseDir(), "history.tsv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		cluster.logf("chaos: history dump failed: %v", err)
		return
	}
	cluster.logf("chaos: merged history dumped to %s", path)
}
