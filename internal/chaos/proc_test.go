package chaos

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// serverBin is the skueue-server binary TestMain builds for the
// multi-process scenarios (the module has no dependencies, so the build
// works offline and takes well under the cost of one scenario).
var serverBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "skueue-chaos-bin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	serverBin = filepath.Join(dir, "skueue-server")
	out, err := exec.Command("go", "build", "-o", serverBin, "skueue/cmd/skueue-server").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building skueue-server: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func chaosEnvInt(t *testing.T, name string, def int) int {
	t.Helper()
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		t.Fatalf("%s=%q: want a positive integer", name, s)
	}
	return n
}

// TestChaosProcKillRestart is the multi-process acceptance scenario: a
// durable loopback cluster serves mixed traffic from concurrent remote
// clients while the storm SIGKILLs a member inside a journal group-commit
// window and restarts it from its state directory mid-traffic. RunProc
// then performs exact element accounting (every confirmed enqueue
// dequeued exactly once, modulo dequeues whose answers died with a
// connection) and the Definition 1 check over the merged histories.
// Scale is env-tunable for `make soak`: SKUEUE_CHAOS_PROC_MEMBERS,
// SKUEUE_CHAOS_KILLS, SKUEUE_CHAOS_OPS.
func TestChaosProcKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos scenario skipped in -short mode")
	}
	members := chaosEnvInt(t, "SKUEUE_CHAOS_PROC_MEMBERS", 3)
	kills := chaosEnvInt(t, "SKUEUE_CHAOS_KILLS", 1)
	ops := chaosEnvInt(t, "SKUEUE_CHAOS_OPS", 150)
	sc := ProcScenario{
		Bin:          serverBin,
		Members:      members,
		Mode:         "queue",
		Seed:         42,
		Workers:      4,
		OpsPerWorker: ops,
		EnqRatio:     0.65,
		Storm: StormSpec{
			Kills:       kills,
			Start:       300 * time.Millisecond,
			Every:       900 * time.Millisecond,
			Downtime:    250 * time.Millisecond,
			BatchWindow: 2 * time.Millisecond,
		},
		SnapshotEvery:     50 * time.Millisecond,
		Tick:              500 * time.Microsecond,
		JournalBatchDelay: 2 * time.Millisecond,
		BaseDir:           t.TempDir(),
		Logf:              t.Logf,
	}
	res, err := RunProc(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != kills || res.Faults.Restarts != kills {
		t.Fatalf("storm executed %+v, want %d kill/restart pairs", res.Faults, kills)
	}
	if res.Confirmed == 0 {
		t.Fatal("no enqueue confirmed; the scenario measured nothing")
	}
	if res.Hist.Count() == 0 || res.Hist.P999() < res.Hist.P50() {
		t.Fatalf("malformed latency histogram %s", res.Hist)
	}
	t.Logf("proc chaos: %d members, %d ops (%.0f ops/s), latency %s, drained %d, stats %+v",
		res.Members, res.Ops, res.OpsPerSec, res.Hist, res.Drained, res.Stats)
}

// TestChaosProcKillRestartHeap runs the kill/restart storm against a
// heap-mode cluster: workers spread EnqueuePri over every priority level
// and dequeue with DequeueMin while the storm SIGKILLs members inside
// group-commit windows. On top of the global exact element accounting
// and the CheckPriority verification RunProc performs (Client.Check on a
// heap cluster replays the merged history against L FIFO levels), the
// test asserts the per-level accounting balances: every level's
// confirmed enqueues are dequeued exactly once, modulo the globally
// bounded indeterminate dequeues.
func TestChaosProcKillRestartHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos scenario skipped in -short mode")
	}
	members := chaosEnvInt(t, "SKUEUE_CHAOS_PROC_MEMBERS", 3)
	kills := chaosEnvInt(t, "SKUEUE_CHAOS_KILLS", 1)
	ops := chaosEnvInt(t, "SKUEUE_CHAOS_OPS", 150)
	const levels = 3
	sc := ProcScenario{
		Bin:          serverBin,
		Members:      members,
		Mode:         "heap",
		HeapLevels:   levels,
		Seed:         44,
		Workers:      4,
		OpsPerWorker: ops,
		EnqRatio:     0.65,
		Storm: StormSpec{
			Kills:       kills,
			Start:       300 * time.Millisecond,
			Every:       900 * time.Millisecond,
			Downtime:    250 * time.Millisecond,
			BatchWindow: 2 * time.Millisecond,
		},
		SnapshotEvery:     50 * time.Millisecond,
		Tick:              500 * time.Microsecond,
		JournalBatchDelay: 2 * time.Millisecond,
		BaseDir:           t.TempDir(),
		Logf:              t.Logf,
	}
	res, err := RunProc(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != kills || res.Faults.Restarts != kills {
		t.Fatalf("storm executed %+v, want %d kill/restart pairs", res.Faults, kills)
	}
	if res.Confirmed == 0 {
		t.Fatal("no enqueue confirmed; the scenario measured nothing")
	}
	if len(res.Levels) == 0 {
		t.Fatal("heap run produced no per-level accounting")
	}
	var confirmed, dequeued, missing int
	for pri, lt := range res.Levels {
		if pri < 0 || pri >= levels {
			t.Errorf("accounting for out-of-range level %d: %+v", pri, lt)
		}
		confirmed += lt.Confirmed
		dequeued += lt.Dequeued
		missing += lt.Missing
		t.Logf("level %d: %+v", pri, lt)
	}
	if confirmed != res.Confirmed {
		t.Errorf("per-level confirmed sums to %d, global accounting says %d", confirmed, res.Confirmed)
	}
	if missing > res.IndetDequeues {
		t.Errorf("%d confirmed elements missing across levels, only %d indeterminate dequeues", missing, res.IndetDequeues)
	}
	t.Logf("heap proc chaos: %d members, %d levels, %d ops (%.0f ops/s), latency %s, drained %d, stats %+v",
		res.Members, levels, res.Ops, res.OpsPerSec, res.Hist, res.Drained, res.Stats)
}

// TestChaosProcKillRestartSessions runs the same kill/restart storm with
// every worker riding a durable client session (WithSession + reconnect)
// instead of ephemeral fail-fast connections. The acceptance bar is
// strictly higher: a kill costs the session client latency, never an
// outcome, so the run must finish with zero confirmed-but-lost elements,
// zero indeterminate operations of either kind, and every worker's
// per-session order check passing against the merged history (RunProc
// runs Client.Check per session worker before returning).
func TestChaosProcKillRestartSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos scenario skipped in -short mode")
	}
	members := chaosEnvInt(t, "SKUEUE_CHAOS_PROC_MEMBERS", 3)
	kills := chaosEnvInt(t, "SKUEUE_CHAOS_KILLS", 1)
	ops := chaosEnvInt(t, "SKUEUE_CHAOS_OPS", 150)
	sc := ProcScenario{
		Bin:          serverBin,
		Members:      members,
		Mode:         "queue",
		Seed:         43,
		Workers:      4,
		OpsPerWorker: ops,
		EnqRatio:     0.65,
		Sessions:     true,
		Storm: StormSpec{
			Kills:       kills,
			Start:       300 * time.Millisecond,
			Every:       900 * time.Millisecond,
			Downtime:    250 * time.Millisecond,
			BatchWindow: 2 * time.Millisecond,
		},
		SnapshotEvery:     50 * time.Millisecond,
		Tick:              500 * time.Microsecond,
		JournalBatchDelay: 2 * time.Millisecond,
		BaseDir:           t.TempDir(),
		Logf:              t.Logf,
	}
	res, err := RunProc(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != kills || res.Faults.Restarts != kills {
		t.Fatalf("storm executed %+v, want %d kill/restart pairs", res.Faults, kills)
	}
	if res.Confirmed == 0 {
		t.Fatal("no enqueue confirmed; the scenario measured nothing")
	}
	if res.MaybeEnqueued != 0 {
		t.Fatalf("%d enqueues ended indeterminate; session reconnect must resolve every submitted operation", res.MaybeEnqueued)
	}
	if res.IndetDequeues != 0 {
		t.Fatalf("%d dequeues ended indeterminate; session reconnect must resolve every submitted operation", res.IndetDequeues)
	}
	t.Logf("proc session chaos: %d members, %d ops (%.0f ops/s), latency %s, drained %d, stats %+v",
		res.Members, res.Ops, res.OpsPerSec, res.Hist, res.Drained, res.Stats)
}
