package chaos

import (
	"fmt"
	"sort"
	"time"

	"skueue/internal/workload"
	"skueue/internal/xrand"
)

// FaultKind classifies one scheduled fault.
type FaultKind uint8

// Kill and Restart apply to multi-process clusters (SIGKILL a
// skueue-server, bring it back from its state directory); Join and Leave
// are the simulator's fault vocabulary (membership churn — the sim has no
// process to kill, and churn is the paper's §IV dynamic behaviour).
const (
	Kill FaultKind = iota
	Restart
	Join
	Leave
)

func (k FaultKind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Restart:
		return "restart"
	case Join:
		return "join"
	default:
		return "leave"
	}
}

// Fault is one scheduled event of a storm.
type Fault struct {
	// At is the offset from storm start (wall clock, proc clusters).
	At time.Duration
	// Member is the victim member index (never 0 — the seed member owns
	// rejoin admission and must survive — and never in StormSpec.Avoid).
	Member int
	Kind   FaultKind
}

// StormSpec parameterizes a kill/restart fault storm against a durable
// multi-process cluster. The generator aims every kill inside the middle
// half of a journal group-commit window — the moment a member is most
// likely to hold staged-but-unsynced journal records, which is exactly
// the crash CI's journal matrix (PR 5) is supposed to cover but never
// provokes deliberately.
type StormSpec struct {
	// Members is the cluster size; victims are drawn from 1..Members-1
	// minus the Avoid list.
	Members int
	// Kills is the number of kill(+restart) pairs to schedule.
	Kills int
	// Start is the earliest kill time (traffic should be flowing first).
	Start time.Duration
	// Every is the nominal spacing between consecutive kills.
	Every time.Duration
	// Downtime is how long a victim stays down before its restart.
	Downtime time.Duration
	// BatchWindow is the journal group-commit accumulation window the
	// kills are phase-aligned into (JournalBatchDelay, or the expected
	// batch fill time). Each kill lands at phase [W/4, 3W/4) of a window.
	BatchWindow time.Duration
	// Avoid lists member indexes that are never victims, in addition to
	// the seed. RunProc adds the anchor-hosting member: the anchor role
	// is a singleton that dies with its process, so killing its host is
	// outside the fail-stop recovery contract (the repo's restart tests
	// spare it for the same reason).
	Avoid []int
	// Seed makes the schedule reproducible.
	Seed int64
}

// victims returns the eligible victim pool in index order: all members
// except the seed and the Avoid list.
func (s StormSpec) victims() []int {
	avoid := make(map[int]bool, len(s.Avoid)+1)
	avoid[0] = true
	for _, m := range s.Avoid {
		avoid[m] = true
	}
	var out []int
	for i := 1; i < s.Members; i++ {
		if !avoid[i] {
			out = append(out, i)
		}
	}
	return out
}

// Validate reports configuration errors.
func (s StormSpec) Validate() error {
	if s.Members < 2 {
		return fmt.Errorf("chaos: storm needs at least 2 members (have %d), the seed is never a victim", s.Members)
	}
	if s.Kills < 0 {
		return fmt.Errorf("chaos: negative kill count %d", s.Kills)
	}
	if s.Kills > 0 {
		if s.Every <= 0 || s.Downtime <= 0 || s.BatchWindow <= 0 {
			return fmt.Errorf("chaos: storm needs positive Every, Downtime and BatchWindow (%+v)", s)
		}
		victims := s.victims()
		if len(victims) == 0 {
			return fmt.Errorf("chaos: no eligible victims among %d members with avoid list %v", s.Members, s.Avoid)
		}
		if s.Downtime >= s.Every*time.Duration(len(victims)) {
			return fmt.Errorf("chaos: downtime %v too long for %d victims every %v (a member would be killed while down)",
				s.Downtime, len(victims), s.Every)
		}
	}
	return nil
}

// Schedule generates the storm: Kills kill events, each phase-aligned
// into the middle half of a BatchWindow and followed by the victim's
// restart Downtime later, sorted by time. Victims rotate round-robin over
// the eligible members (non-seed, not avoided) from a seeded random
// starting order, and a victim is never killed before its previous
// restart. The schedule is a pure function of the spec.
func (s StormSpec) Schedule() ([]Fault, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(s.Seed).Fork("storm")
	victims := s.victims()
	rng.ShuffleInts(victims)

	w := s.BatchWindow
	readyAt := make(map[int]time.Duration)
	var last time.Duration
	var faults []Fault
	for i := 0; i < s.Kills; i++ {
		victim := victims[i%len(victims)]
		nominal := s.Start + time.Duration(i)*s.Every
		// Land in the middle half of the window covering the nominal
		// time: phase uniform in [W/4, 3W/4).
		phase := w/4 + time.Duration(rng.Int63()%int64(w/2))
		at := nominal - nominal%w + phase
		// Keep the storm ordered and never kill a member that is still
		// down; whole-window steps preserve the phase alignment.
		for at <= last || at < readyAt[victim] {
			at += w
		}
		faults = append(faults, Fault{At: at, Member: victim, Kind: Kill})
		faults = append(faults, Fault{At: at + s.Downtime, Member: victim, Kind: Restart})
		readyAt[victim] = at + s.Downtime
		last = at
	}
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].At != faults[j].At {
			return faults[i].At < faults[j].At
		}
		return faults[i].Kind < faults[j].Kind
	})
	return faults, nil
}

// ChurnStorm is the simulator's fault storm: scheduled join/leave
// membership churn riding the workload's generation rounds.
type ChurnStorm struct {
	// Procs is the initial process count.
	Procs int
	// Joins and Leaves are the event counts to spread over the run.
	Joins, Leaves int
	// Rounds is the workload's generation-round budget; events land in
	// its middle three quarters so the cluster is warm and has time to
	// finish the final update phases before drain.
	Rounds int
	// Seed makes the storm reproducible.
	Seed int64
}

// Events generates the churn schedule. Leaves pick distinct non-zero
// processes (process 0 stays as the join contact), joins contact process
// 0. The schedule is a pure function of the spec.
func (c ChurnStorm) Events() ([]workload.ChurnEvent, error) {
	if c.Joins == 0 && c.Leaves == 0 {
		return nil, nil
	}
	if c.Procs < 2 || c.Rounds < 8 {
		return nil, fmt.Errorf("chaos: churn storm needs >=2 procs and >=8 rounds (%+v)", c)
	}
	if c.Leaves > c.Procs-1 {
		return nil, fmt.Errorf("chaos: %d leaves exceed the %d non-contact processes", c.Leaves, c.Procs-1)
	}
	rng := xrand.New(c.Seed).Fork("churn")
	lo, hi := c.Rounds/8, c.Rounds*7/8
	roundIn := func() int { return lo + rng.Intn(hi-lo) }

	var events []workload.ChurnEvent
	for i := 0; i < c.Joins; i++ {
		events = append(events, workload.ChurnEvent{Round: roundIn(), Join: true, Proc: 0})
	}
	leavers := make([]int, c.Procs-1)
	for i := range leavers {
		leavers[i] = i + 1
	}
	rng.ShuffleInts(leavers)
	for i := 0; i < c.Leaves; i++ {
		events = append(events, workload.ChurnEvent{Round: roundIn(), Proc: leavers[i]})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Round < events[j].Round })
	return events, nil
}
