package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestKillsLandInsideBatchWindow is the property PR 5's CI matrix relies
// on but never asserted: every scheduled kill falls in the middle half of
// a journal group-commit window — the phase where a member holds
// staged-but-unsynced journal records, so the crash actually exercises
// the group-commit loss window rather than an idle disk.
func TestKillsLandInsideBatchWindow(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		spec := StormSpec{
			Members:     8,
			Kills:       25,
			Start:       500 * time.Millisecond,
			Every:       300 * time.Millisecond,
			Downtime:    150 * time.Millisecond,
			BatchWindow: 20 * time.Millisecond,
			Seed:        seed,
		}
		faults, err := spec.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		kills := 0
		w := spec.BatchWindow
		for _, f := range faults {
			if f.Kind != Kill {
				continue
			}
			kills++
			phase := f.At % w
			if phase < w/4 || phase >= 3*w/4 {
				t.Fatalf("seed %d: kill at %v has phase %v outside [%v, %v)", seed, f.At, phase, w/4, 3*w/4)
			}
		}
		if kills != spec.Kills {
			t.Fatalf("seed %d: scheduled %d kills, want %d", seed, kills, spec.Kills)
		}
	}
}

func TestScheduleRestartsFollowKills(t *testing.T) {
	spec := StormSpec{
		Members: 4, Kills: 12,
		Start: 100 * time.Millisecond, Every: 250 * time.Millisecond,
		Downtime: 100 * time.Millisecond, BatchWindow: 10 * time.Millisecond,
		Seed: 99,
	}
	faults, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	down := make(map[int]time.Duration) // member -> restart due
	var prev time.Duration
	for _, f := range faults {
		if f.At < prev {
			t.Fatalf("schedule not sorted: %v after %v", f.At, prev)
		}
		prev = f.At
		if f.Member == 0 {
			t.Fatalf("seed member scheduled as a victim: %+v", f)
		}
		switch f.Kind {
		case Kill:
			if due, isDown := down[f.Member]; isDown {
				t.Fatalf("member %d killed at %v while down until %v", f.Member, f.At, due)
			}
			down[f.Member] = f.At + spec.Downtime
		case Restart:
			due, isDown := down[f.Member]
			if !isDown {
				t.Fatalf("restart of member %d at %v without a preceding kill", f.Member, f.At)
			}
			if f.At != due {
				t.Fatalf("member %d restarts at %v, want kill+downtime = %v", f.Member, f.At, due)
			}
			delete(down, f.Member)
		default:
			t.Fatalf("unexpected fault kind %v in a proc storm", f.Kind)
		}
	}
	if len(down) != 0 {
		t.Fatalf("members left down at storm end: %v", down)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	spec := StormSpec{
		Members: 16, Kills: 40,
		Start: time.Second, Every: 100 * time.Millisecond,
		Downtime: 50 * time.Millisecond, BatchWindow: 5 * time.Millisecond,
		Seed: 7,
	}
	a, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical specs produced different schedules")
	}
	spec.Seed = 8
	c, _ := spec.Schedule()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleAvoidsProtectedMembers covers the anchor exclusion RunProc
// relies on: avoided members (like the anchor host) are never victims.
func TestScheduleAvoidsProtectedMembers(t *testing.T) {
	spec := StormSpec{
		Members: 6, Kills: 30,
		Start: 100 * time.Millisecond, Every: 200 * time.Millisecond,
		Downtime: 50 * time.Millisecond, BatchWindow: 10 * time.Millisecond,
		Avoid: []int{2, 4}, Seed: 13,
	}
	faults, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	hit := map[int]bool{}
	for _, f := range faults {
		if f.Member == 0 || f.Member == 2 || f.Member == 4 {
			t.Fatalf("protected member scheduled as victim: %+v", f)
		}
		hit[f.Member] = true
	}
	if len(hit) != 3 { // members 1, 3, 5 all rotate through
		t.Fatalf("victim pool %v, want all of 1, 3, 5", hit)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []StormSpec{
		{Members: 1, Kills: 1, Every: time.Second, Downtime: time.Millisecond, BatchWindow: time.Millisecond},
		{Members: 4, Kills: 1},                      // missing durations
		{Members: 4, Kills: -1, Every: time.Second}, // negative kills
		{Members: 2, Kills: 2, Every: 10 * time.Millisecond, Downtime: time.Second, BatchWindow: time.Millisecond},                // down > rotation
		{Members: 3, Kills: 1, Every: time.Second, Downtime: time.Millisecond, BatchWindow: time.Millisecond, Avoid: []int{1, 2}}, // empty pool
	}
	for i, spec := range bad {
		if _, err := spec.Schedule(); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestChurnStormEvents(t *testing.T) {
	storm := ChurnStorm{Procs: 10, Joins: 4, Leaves: 3, Rounds: 400, Seed: 5}
	events, err := storm.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	seenLeaver := map[int]bool{}
	prev := -1
	for _, ev := range events {
		if ev.Round < prev {
			t.Fatal("events not sorted by round")
		}
		prev = ev.Round
		if ev.Round < 400/8 || ev.Round >= 400*7/8 {
			t.Fatalf("event at round %d outside the middle of the run", ev.Round)
		}
		if ev.Join {
			if ev.Proc != 0 {
				t.Fatalf("join contacts proc %d, want the stable contact 0", ev.Proc)
			}
		} else {
			if ev.Proc == 0 {
				t.Fatal("leave scheduled for the contact process")
			}
			if seenLeaver[ev.Proc] {
				t.Fatalf("process %d leaves twice", ev.Proc)
			}
			seenLeaver[ev.Proc] = true
		}
	}
	again, _ := storm.Events()
	if !reflect.DeepEqual(events, again) {
		t.Fatal("churn storm not deterministic")
	}
	if _, err := (ChurnStorm{Procs: 3, Leaves: 5, Rounds: 100, Joins: 0, Seed: 1}).Events(); err == nil {
		t.Fatal("accepted more leaves than processes")
	}
}
