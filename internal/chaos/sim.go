// Package chaos is the scale-out chaos and capacity harness: it launches
// large Skueue clusters — in-process on the simulator (hundreds of
// members) or as real skueue-server processes on one host — drives
// sustained mixed workloads through the public client layer under
// configurable WAN shaping and scheduled fault storms, records per-op
// latency into fixed-bucket histograms, verifies every run against the
// paper's Definition 1 via internal/seqcheck, and emits machine-readable
// BENCH_<scenario>.json files so the repo accumulates a perf trajectory
// (cmd/skueue-chaos is the CLI front end).
//
// Fault storms are backend-appropriate: the simulator's storms are
// join/leave membership churn (§IV dynamics — there is no process to
// kill), while multi-process storms SIGKILL members mid-traffic, aimed
// inside journal group-commit windows, and restart them from their state
// directories (the PR 4/5 recovery paths, at cluster scale).
package chaos

import (
	"fmt"
	"time"

	"skueue"
	"skueue/internal/harness"
	"skueue/internal/workload"
)

// SimScenario configures one in-process (simulator) chaos run.
type SimScenario struct {
	Mode    skueue.Mode
	Members int // member processes (each emulates 3 virtual nodes)
	// Workload: Rounds of generation at RequestsPerRound, EnqRatio
	// enqueue probability, then drain (bounded by MaxDrain).
	Rounds           int
	RequestsPerRound int
	EnqRatio         float64
	MaxDrain         int64
	Seed             int64
	// WAN shapes message delivery; the zero profile is the classic model.
	WAN skueue.WANProfile
	// Joins and Leaves size the churn storm (zero = calm run).
	Joins, Leaves int
}

// SimResult is the certified outcome of a simulator chaos run: the
// sequential-consistency check already passed (RunSim fails otherwise).
type SimResult struct {
	Stats   skueue.Stats
	Metrics skueue.Metrics
	// Hist holds per-op latency in simulated rounds (Done - Born).
	Hist    *Histogram
	Elapsed time.Duration
	// OpsPerSec is completed operations per wall-clock second — the
	// capacity axis of the scaling tables (simulated-round latency is
	// the fidelity axis).
	OpsPerSec float64
	Faults    FaultSummary
}

// RunSim executes one simulator chaos scenario end to end: workload with
// scheduled churn under the WAN profile, drain, Definition 1 check, and
// latency collection from the completion history. The run is exactly
// reproducible from the scenario.
func RunSim(sc SimScenario) (res *SimResult, err error) {
	if sc.Members < 1 || sc.Rounds < 1 || sc.RequestsPerRound < 1 {
		return nil, fmt.Errorf("chaos: sim scenario needs members, rounds and a request rate (%+v)", sc)
	}
	maxDrain := sc.MaxDrain
	if maxDrain <= 0 {
		maxDrain = 20000
	}
	storm := ChurnStorm{
		Procs: sc.Members, Joins: sc.Joins, Leaves: sc.Leaves,
		Rounds: sc.Rounds, Seed: sc.Seed,
	}
	churn, err := storm.Events()
	if err != nil {
		return nil, err
	}
	// The harness driver panics when a run cannot certify itself (drain
	// failure, Definition 1 violation); surface that as an error — a chaos
	// harness reports failures, it does not crash the sweep.
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("chaos: sim run (members=%d seed=%d): %v", sc.Members, sc.Seed, p)
		}
	}()
	spec := workload.Spec{
		Rounds:           sc.Rounds,
		RequestsPerRound: sc.RequestsPerRound,
		EnqRatio:         sc.EnqRatio,
	}
	start := time.Now()
	st, met, c := harness.RunOne(sc.Mode, sc.Members, spec, sc.Seed, maxDrain, sc.WAN, churn...)
	elapsed := time.Since(start)
	defer c.Close()

	hist := NewHistogram("rounds")
	for _, op := range c.Cluster().History().Ops {
		hist.Record(op.Done - op.Born)
	}
	var faults FaultSummary
	for _, ev := range churn {
		if ev.Join {
			faults.Joins++
		} else {
			faults.Leaves++
		}
	}
	return &SimResult{
		Stats:     st,
		Metrics:   met,
		Hist:      hist,
		Elapsed:   elapsed,
		OpsPerSec: float64(st.Total) / elapsed.Seconds(),
		Faults:    faults,
	}, nil
}

// Point converts the result into a BENCH point for the given member count.
func (r *SimResult) Point(members int) Point {
	return Point{
		Members:     members,
		Ops:         r.Stats.Total,
		Bottoms:     r.Stats.Bottoms,
		ElapsedSec:  r.Elapsed.Seconds(),
		OpsPerSec:   r.OpsPerSec,
		LatencyUnit: r.Hist.Unit(),
		P50:         r.Hist.P50(),
		P99:         r.Hist.P99(),
		P999:        r.Hist.P999(),
		MaxLatency:  r.Hist.Max(),
		MeanLatency: r.Hist.Mean(),
		AvgRounds:   r.Stats.AvgRounds,
		Faults:      r.Faults,
	}
}
