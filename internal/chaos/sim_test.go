package chaos

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"skueue"
)

// chaosMembers returns the in-process cluster size for scenario tests,
// env-tunable for `make soak` (SKUEUE_CHAOS_MEMBERS).
func chaosMembers(t *testing.T, def int) int {
	t.Helper()
	s := os.Getenv("SKUEUE_CHAOS_MEMBERS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 2 {
		t.Fatalf("SKUEUE_CHAOS_MEMBERS=%q: want an integer >= 2", s)
	}
	return n
}

// TestSimScenarioUnderStormAndWAN is the in-process chaos acceptance
// path in miniature: a cluster under WAN shaping rides out a churn storm
// while serving a mixed workload, drains, and passes Definition 1 (the
// RunSim driver fails otherwise).
func TestSimScenarioUnderStormAndWAN(t *testing.T) {
	sc := SimScenario{
		Mode:             skueue.Queue,
		Members:          chaosMembers(t, 16),
		Rounds:           160,
		RequestsPerRound: 6,
		EnqRatio:         0.6,
		Seed:             21,
		WAN: skueue.WANProfile{
			Latency: 2 * time.Millisecond,
			Jitter:  2 * time.Millisecond,
			Loss:    0.02,
			RTO:     4 * time.Millisecond,
		},
		Joins:  2,
		Leaves: 2,
	}
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total == 0 {
		t.Fatal("run completed no operations")
	}
	if got, want := res.Hist.Count(), int64(res.Stats.Total); got != want {
		t.Fatalf("histogram has %d samples, history has %d completions", got, want)
	}
	if res.Faults.Joins != 2 || res.Faults.Leaves != 2 {
		t.Fatalf("fault summary %+v, want 2 joins and 2 leaves", res.Faults)
	}
	// WAN latency must show up: with >= 2 extra rounds each way, no op
	// can complete in fewer rounds than an unshaped one-hop exchange.
	if res.Hist.P50() < 4 {
		t.Fatalf("p50 latency %d rounds is too low for a 2ms-latency WAN profile", res.Hist.P50())
	}
	p := res.Point(sc.Members)
	if p.OpsPerSec <= 0 || p.P999 < p.P50 || p.LatencyUnit != "rounds" {
		t.Fatalf("malformed bench point %+v", p)
	}
}

func TestSimScenarioDeterministic(t *testing.T) {
	sc := SimScenario{
		Mode:             skueue.Stack,
		Members:          8,
		Rounds:           80,
		RequestsPerRound: 4,
		EnqRatio:         0.5,
		Seed:             9,
		Joins:            1,
		Leaves:           1,
	}
	a, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("same scenario diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Hist.String() != b.Hist.String() {
		t.Fatalf("latency histograms diverged: %s vs %s", a.Hist, b.Hist)
	}
}
