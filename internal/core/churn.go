package core

import (
	"fmt"
	"sort"

	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/fixpoint"
	"skueue/internal/ldb"
	"skueue/internal/transport"
)

// This file implements §IV of the paper: JOIN and LEAVE, handled lazily
// through responsible nodes, plus the update phase during which joining
// nodes are spliced into the ring and leave replacements are absorbed by
// their left neighbours.
//
// Implementation notes (see DESIGN.md §8 for the substitution rationale):
//
//   - A departed node stays in the simulation as a pure forwarder instead
//     of executing the paper's per-edge acknowledgment drain; the
//     observable post-condition — no message addressed to it is ever lost
//     — is the same, and the permission/priority handshake is implemented
//     in full.
//   - A leaving node first drains its own client state (buffered and
//     in-flight requests) through normal waves before handing off; the
//     paper's node does the equivalent by forwarding and acknowledging
//     until quiescent. Child sub-batches, DHT data, joiners and
//     responsibilities transfer with the handoff.
//   - Update phases are numbered (epochs) so that duplicated or straggling
//     phase-control messages from an earlier phase cannot corrupt a later
//     one under asynchrony.

// joinerInfo is a joining node this node is responsible for (§IV-A). The
// field is exported because joiner lists ride in handoff and absorb
// messages, which cross the wire under the TCP transport.
type joinerInfo struct {
	Ref ldb.Ref
}

// anchorBundle is the anchor's transferable role state: the position
// window and value counter (§III-D, §V), the pending churn level, and the
// update-phase epoch counter.
type anchorBundle struct {
	Ast          batch.AnchorState
	PendChurn    int64
	EpochCounter int64
}

// churnState bundles all join/leave/update-phase state of a node.
type churnState struct {
	// Joining side: set while this node awaits integration.
	joining  bool
	relayVia ldb.Ref // the responsible node relaying for us
	// routedHold buffers routed messages that reach us before we know our
	// ring neighbours (the paper's "wait until a closer node is known").
	routedHold []routedMsg
	// rangeFrom/rangeEnd is the key range a joiner owns before it is part
	// of the ring; transferCmds shrink it when newer joiners split it.
	rangeFrom, rangeEnd fixpoint.Frac
	rangeValid          bool
	heldTransfers       []transferCmd
	heldHandovers       []handoverMsg

	// Responsible side.
	joiners []joinerInfo // joining nodes hanging off us, sorted by point

	// Leaving side.
	leaving       bool
	leaveReqSent  bool
	leaveGranted  bool
	grantsPending []ldb.Ref // permission requests we have not answered yet
	grantedOpen   int       // grants given whose leaver has not departed yet
	departed      bool
	forwardTo     transport.NodeID // valid once the replacement introduced itself
	buffer        []any            // messages held between handoff and redirect

	// Replacement side. A replacement may only dissolve together with its
	// two sibling replacements (triad-atomic absorption): the aggregation
	// tree's virtual edges require intact process triads, so absorbing one
	// sibling while another survives would leave the survivor with a dead
	// tree slot and deadlock the wave. Each phase, a replacement asks its
	// siblings whether they dissolve too and proceeds only on a unanimous
	// yes; the vote is stable within a phase, so the triad decides
	// consistently.
	isReplacement bool
	absorbSent    bool
	votesPending  int
	dissolveOK    bool
	// heldQueries are dissolve queries for a phase we have not entered
	// yet; they are answered at phase entry so the answer reflects our
	// status within that phase (phase entry is not simultaneous across the
	// tree, and an early "no" would wedge the querier's triad).
	heldQueries []heldQuery
	// heldHandoffs are leave handoffs that arrived while we were inside an
	// update phase; spawning a replacement mid-phase would create a node
	// that cannot participate in the phase's triad votes.
	heldHandoffs []nodeSnapshot
	// lastEpoch is the newest update phase this node has entered.
	lastEpoch int64

	// Update phase (§IV-A).
	updatePhase    bool
	epoch          int64
	pold           transport.NodeID
	acksLeft       int
	introAcksLeft  int
	integrationRun bool
	phaseDone      bool

	// Anchor bookkeeping (valid while holding the anchor role).
	pendChurn    int64
	epochCounter int64
}

// Churn control messages.

// joinReq is routed to the node responsible for the new node's point.
type joinReq struct{ NewNode ldb.Ref }

// adoptMsg tells a joining node who relays for it and which key range
// [From, End) it now owns.
type adoptMsg struct {
	Responsible ldb.Ref
	From, End   fixpoint.Frac
}

// transferCmd instructs a joiner to hand the DHT keys in [From, End) over
// to a newer joiner ("u issues v_i to transfer the DHT data to v'").
type transferCmd struct {
	To        ldb.Ref
	From, End fixpoint.Frac
}

// handoverMsg moves DHT data (and parked GETs) to a new owner.
type handoverMsg struct {
	Entries []dht.Entry
	Parked  []dht.ParkedEntry
}

// migrateEntry re-homes a stored element whose owner changed while it was
// in flight; unlike putReq it records no completion.
type migrateEntry struct{ Ent dht.Entry }

// migrateParked re-homes a parked GET.
type migrateParked struct {
	Pos int64
	W   dht.Waiter
}

// setNeighbors integrates a joiner by giving it its ring neighbours.
type setNeighbors struct {
	Pred, Succ ldb.Ref
	Epoch      int64
}

// setPred rewires the successor side of a splice.
type setPred struct {
	Pred  ldb.Ref
	Epoch int64
}

// introAck confirms a setNeighbors / setPred was applied.
type introAck struct{ Epoch int64 }

// sibHello tells the process siblings that this virtual node is now an
// integrated ring member (see Node.sibIn).
type sibHello struct{ Kind ldb.Kind }

// updateAck aggregates "my old subtree finished integrating" (§IV-A).
type updateAck struct{ Epoch int64 }

// updateOver announces the end of the update phase down the new tree.
type updateOver struct{ Epoch int64 }

// rejectBatch returns an unprocessed relayed sub-batch to a joiner that is
// being integrated; the joiner re-buffers its operations and resubmits
// them through its new tree position.
type rejectBatch struct{ B batch.Batch }

// leavePermissionReq asks the left neighbour for permission to leave.
type leavePermissionReq struct{ From ldb.Ref }

// leaveGrant allows the requester to hand off once it has drained.
type leaveGrant struct{}

// leaveHandoff carries the leaving node's transferable state to its left
// neighbour, which spawns the replacement.
type leaveHandoff struct{ Snap nodeSnapshot }

// redirectMsg announces that Old has been replaced by New.
type redirectMsg struct{ Old, New ldb.Ref }

// absorbMsg is sent by a replacement to its pred during the update phase:
// take my data, successor, responsibilities and possibly the anchor role.
type absorbMsg struct {
	Entries     []dht.Entry
	Parked      []dht.ParkedEntry
	Succ        ldb.Ref
	Waiting     []subBatch
	Joiners     []joinerInfo
	Grants      []ldb.Ref
	GrantedOpen int
	AnchorRole  bool
	Anchor      anchorBundle
	Epoch       int64
}

// absorbAck confirms an absorbMsg was ingested.
type absorbAck struct{ Epoch int64 }

// dissolveQuery asks a process sibling whether it dissolves in this phase.
type dissolveQuery struct{ Epoch int64 }

// dissolveReply answers a dissolveQuery.
type dissolveReply struct {
	Epoch int64
	Yes   bool
}

// heldQuery is a buffered dissolveQuery.
type heldQuery struct {
	from  transport.NodeID
	epoch int64
}

// anchorWalk carries the anchor role leftward to the structural minimum
// at the end of an update phase.
type anchorWalk struct{ Anchor anchorBundle }

// nodeSnapshot is the transferable state of a drained leaving node.
type nodeSnapshot struct {
	Self                         ldb.Ref
	Pred, Succ, SibL, SibM, SibR ldb.Ref
	AnchorRole                   bool
	Anchor                       anchorBundle
	Waiting                      []subBatch
	Entries                      []dht.Entry
	Parked                       []dht.ParkedEntry
	Joiners                      []joinerInfo
	GrantsPending                []ldb.Ref
	GrantedOpen                  int
	SibIn                        [3]bool
}

// frozen reports whether stage 1 must hold: an unadopted joiner cannot
// send batches anywhere.
func (c *churnState) frozen() bool {
	return c.joining && !c.relayVia.Valid()
}

// takeJoinCount reports the current number of un-integrated joiners. The
// level (not a delta) rides in every batch, so stragglers keep triggering
// update phases until everyone is integrated.
func (c *churnState) takeJoinCount() int64 { return int64(len(c.joiners)) }

// takeLeaveCount reports this node's own pending-leave level: a live
// replacement reports itself until it dissolves. (Replacements are ring
// members and send their own batches, unlike joiners, which are reported
// by their responsible node.)
func (c *churnState) takeLeaveCount() int64 {
	if c.isReplacement {
		return 1
	}
	return 0
}

// restoreCounts is a no-op under level-based reporting.
func (c *churnState) restoreCounts(j, l int64) {}

// anchorObserve runs at the anchor during Stage 2: decide whether this
// wave starts an update phase. It returns the phase epoch, or 0.
func (c *churnState) anchorObserve(n *Node, b batch.Batch) int64 {
	c.pendChurn = b.J + b.L
	if c.updatePhase || c.pendChurn < int64(n.cl.updateThreshold()) {
		return 0
	}
	c.epochCounter++
	n.cl.metrics.UpdatePhases++
	return c.epochCounter
}

// enterUpdatePhase records the old-tree bookkeeping when the flagged
// intervals arrive: p_old and |C_old| (§IV-A). Dissolve queries that were
// waiting for this phase are answered now.
func (c *churnState) enterUpdatePhase(ctx *transport.Context, from transport.NodeID, epoch int64, subs []subBatch) {
	c.updatePhase = true
	c.epoch = epoch
	c.lastEpoch = epoch
	c.pold = from
	c.acksLeft = 0
	c.introAcksLeft = 0
	c.integrationRun = false
	c.phaseDone = false
	c.absorbSent = false
	for _, sb := range subs {
		if sb.From != transport.None {
			c.acksLeft++
		}
	}
	held := c.heldQueries
	c.heldQueries = nil
	for _, q := range held {
		if q.epoch == epoch {
			ctx.Send(q.from, dissolveReply{Epoch: q.epoch, Yes: c.isReplacement})
		} else if q.epoch < epoch {
			ctx.Send(q.from, dissolveReply{Epoch: q.epoch, Yes: false})
		} else {
			c.heldQueries = append(c.heldQueries, q)
		}
	}
}

// startIntegration begins this node's update-phase duties right after the
// flagged serve was forwarded: splice joiners into the ring and reject
// their unprocessed next-wave sub-batches.
func (c *churnState) startIntegration(ctx *transport.Context, n *Node) {
	if c.integrationRun {
		return
	}
	c.integrationRun = true

	if len(c.joiners) > 0 {
		js := c.joiners
		c.joiners = nil

		var keep []subBatch
		for _, w := range n.waiting {
			rejected := false
			for _, j := range js {
				if w.From == j.Ref.ID {
					ctx.Send(j.Ref.ID, rejectBatch{B: w.B})
					rejected = true
					break
				}
			}
			if !rejected {
				keep = append(keep, w)
			}
		}
		n.waiting = keep

		oldSucc := n.succ
		for i, j := range js {
			pred := n.self
			if i > 0 {
				pred = js[i-1].Ref
			}
			succ := oldSucc
			if i+1 < len(js) {
				succ = js[i+1].Ref
			}
			ctx.Send(j.Ref.ID, setNeighbors{Pred: pred, Succ: succ, Epoch: c.epoch})
			c.introAcksLeft++
		}
		if oldSucc.ID != n.self.ID {
			ctx.Send(oldSucc.ID, setPred{Pred: js[len(js)-1].Ref, Epoch: c.epoch})
			c.introAcksLeft++
		}
		n.succ = js[0].Ref
		n.invalidateTopology()
	}

	// Replacements poll their sibling triad before dissolving.
	c.votesPending = 0
	c.dissolveOK = true
	if c.isReplacement {
		for _, sib := range []ldb.Ref{n.sibL, n.sibM, n.sibR} {
			if sib.Valid() && sib.ID != n.self.ID {
				ctx.Send(sib.ID, dissolveQuery{Epoch: c.epoch})
				c.votesPending++
			}
		}
	}
	c.maybeFinishPhase(ctx, n)
}

// maybeFinishPhase completes this node's part of the update phase once all
// local work and child acknowledgments are in.
func (c *churnState) maybeFinishPhase(ctx *transport.Context, n *Node) {
	if !c.updatePhase || c.phaseDone || !c.integrationRun {
		return
	}
	if c.acksLeft > 0 || c.introAcksLeft > 0 || c.votesPending > 0 {
		return
	}
	// A replacement's final duty is to dissolve into its pred; it acks
	// p_old only after the pred confirmed the splice (absorbAck), so the
	// phase cannot end with a dangling ring edge. It dissolves only with
	// a unanimous triad vote (see churnState).
	if c.isReplacement && c.dissolveOK && !c.absorbSent {
		c.absorbSent = true
		ents, parked := n.store.ExtractAll()
		ctx.Send(n.pred.ID, absorbMsg{
			Entries: ents, Parked: parked, Succ: n.succ,
			Waiting: n.waiting, Joiners: c.joiners,
			Grants:      c.grantsPending,
			GrantedOpen: c.grantedOpen,
			AnchorRole:  n.anchorRole, Anchor: n.anchorBundle(),
			Epoch: c.epoch,
		})
		n.waiting = nil
		c.joiners = nil
		c.grantsPending = nil
		return
	}
	c.phaseDone = true
	if c.pold != transport.None {
		ctx.Send(c.pold, updateAck{Epoch: c.epoch})
		return
	}
	// Root of the old tree: the phase is globally done.
	n.anchorFinal(ctx)
}

func (n *Node) anchorBundle() anchorBundle {
	return anchorBundle{Ast: n.ast, PendChurn: n.churn.pendChurn, EpochCounter: n.churn.epochCounter}
}

func (n *Node) setAnchorBundle(b anchorBundle) {
	n.ast = b.Ast
	n.churn.pendChurn = b.PendChurn
	n.churn.epochCounter = b.EpochCounter
}

// anchorFinal ends the update phase: if nodes joined left of us the anchor
// role walks to the new leftmost node, which then announces updateOver.
func (n *Node) anchorFinal(ctx *transport.Context) {
	if !n.anchorRole {
		panic(fmt.Sprintf("core: anchorFinal on non-anchor %v", n.self))
	}
	if n.nb().IsAnchor() {
		n.broadcastUpdateOver(ctx)
		return
	}
	n.anchorRole = false
	ctx.Send(n.pred.ID, anchorWalk{Anchor: n.anchorBundle()})
}

// broadcastUpdateOver resumes normal operation down the new tree. The
// epoch being ended is the anchor's phase counter — NOT the local
// churn.epoch: the node announcing the end may have been integrated
// mid-phase (the anchor role walked to it) and never have entered the
// phase itself.
func (n *Node) broadcastUpdateOver(ctx *transport.Context) {
	epoch := n.churn.epochCounter
	if n.churn.epoch > epoch {
		epoch = n.churn.epoch
	}
	if epoch > n.churn.lastEpoch {
		n.churn.lastEpoch = epoch
	}
	n.exitUpdatePhase(ctx)
	for _, id := range n.updateOverTargets() {
		ctx.Send(id, updateOver{Epoch: epoch})
	}
}

// updateOverTargets lists where to propagate the end-of-phase signal: the
// aggregation-tree children without the sibling-integration gate (the gate
// protects wave expectations, but would cut the broadcast), plus the ring
// neighbours. Flooding over tree and ring edges with epoch deduplication
// reaches every ring member even while tree links are still settling.
func (n *Node) updateOverTargets() []transport.NodeID {
	seen := map[transport.NodeID]bool{n.self.ID: true}
	var out []transport.NodeID
	add := func(id transport.NodeID) {
		if id >= 0 && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if !n.churn.joining {
		for _, c := range n.nb().Children() {
			add(c.ID)
		}
		add(n.pred.ID)
		add(n.succ.ID)
	}
	for _, j := range n.churn.joiners {
		add(j.Ref.ID)
	}
	return out
}

// exitUpdatePhase leaves the phase and runs actions deferred during it.
func (n *Node) exitUpdatePhase(ctx *transport.Context) {
	n.churn.exitUpdatePhase()
	held := n.churn.heldHandoffs
	n.churn.heldHandoffs = nil
	for _, snap := range held {
		n.spawnReplacement(ctx, snap)
	}
}

func (c *churnState) exitUpdatePhase() {
	c.updatePhase = false
	c.pold = transport.None
	c.acksLeft = 0
	c.introAcksLeft = 0
	c.integrationRun = false
	c.phaseDone = false
}

// tick runs deferred churn actions from TIMEOUT.
func (c *churnState) tick(ctx *transport.Context, n *Node) {
	if c.departed {
		return
	}
	// Ask for leave permission once, postponing while we owe a granted
	// right neighbour its departure (§IV-B: a node that acknowledged a
	// right neighbour's leave waits until that neighbour has left).
	// Unanswered requests from the right do NOT block us — the paper's
	// priority rule makes the rightward leaver the one that postpones; its
	// pending request transfers to our replacement, which grants it.
	if c.leaving && !c.leaveReqSent && !c.joining && c.grantedOpen == 0 {
		c.leaveReqSent = true
		ctx.Send(n.pred.ID, leavePermissionReq{From: n.self})
	}
	// Serve deferred permission grants outside update phases, unless we
	// are leaving ourselves (then the requester waits until our own leave
	// finished; our replacement inherits the pending request).
	if len(c.grantsPending) > 0 && !c.updatePhase && !c.leaving {
		for _, req := range c.grantsPending {
			c.grantedOpen++
			ctx.Send(req.ID, leaveGrant{})
		}
		c.grantsPending = nil
	}
	// Execute our own handoff once granted, drained, and outside update
	// phases.
	if c.leaveGranted && !c.updatePhase && n.drainedForLeave() {
		n.executeLeave(ctx)
	}
}

// drainedForLeave reports whether all client-attributed state has flushed
// through normal waves, so the replacement never carries foreign requests.
func (n *Node) drainedForLeave() bool {
	return len(n.pending) == 0 && n.disc.drained(n) && n.inBatch == nil &&
		len(n.pendingGets) == 0
}

// handleChurn processes churn control messages; it reports whether the
// payload was one.
func (n *Node) handleChurn(ctx *transport.Context, from transport.NodeID, payload any) bool {
	c := &n.churn
	switch m := payload.(type) {
	case adoptMsg:
		c.relayVia = m.Responsible
		c.rangeFrom, c.rangeEnd = m.From, m.End
		c.rangeValid = true
		heldH := c.heldHandovers
		c.heldHandovers = nil
		for _, h := range heldH {
			n.ingest(ctx, h.Entries, h.Parked)
		}
		held := c.heldTransfers
		c.heldTransfers = nil
		for _, tc := range held {
			n.applyTransfer(ctx, tc)
		}
	case handoverMsg:
		if c.joining && !c.rangeValid {
			// Raced ahead of our adoption message; ingest once adopted.
			c.heldHandovers = append(c.heldHandovers, m)
			return true
		}
		n.ingest(ctx, m.Entries, m.Parked)
	case transferCmd:
		if c.joining && !c.rangeValid {
			// Raced ahead of our own adoption; apply once adopted.
			c.heldTransfers = append(c.heldTransfers, m)
			return true
		}
		n.applyTransfer(ctx, m)
	case setNeighbors:
		n.pred, n.succ = m.Pred, m.Succ
		c.joining = false
		c.relayVia = ldb.Ref{ID: transport.None}
		c.rangeValid = false
		n.invalidateTopology()
		n.cl.noteIntegrated(n)
		ctx.Send(from, introAck{Epoch: m.Epoch})
		for _, sib := range []ldb.Ref{n.sibL, n.sibM, n.sibR} {
			if sib.Valid() && sib.ID != n.self.ID {
				ctx.Send(sib.ID, sibHello{Kind: n.self.Kind})
			}
		}
		// Now that the ring neighbours are known, release any routed
		// messages that arrived too early.
		hold := c.routedHold
		c.routedHold = nil
		for _, rm := range hold {
			n.routeStep(ctx, rm)
		}
	case setPred:
		n.pred = m.Pred
		n.invalidateTopology()
		ctx.Send(from, introAck{Epoch: m.Epoch})
	case introAck:
		if c.updatePhase && m.Epoch == c.epoch {
			c.introAcksLeft--
			c.maybeFinishPhase(ctx, n)
		}
	case updateAck:
		if c.updatePhase && m.Epoch == c.epoch {
			c.acksLeft--
			c.maybeFinishPhase(ctx, n)
		}
	case updateOver:
		// A newer epoch proves every older phase ended globally; this
		// matters for nodes integrated in phase k whose process triad only
		// completed in a later phase — they can miss phase k's broadcast
		// (their tree parent was not a ring member yet).
		fresh := m.Epoch > c.lastEpoch
		if c.updatePhase && m.Epoch >= c.epoch {
			n.exitUpdatePhase(ctx)
			fresh = true
		}
		if m.Epoch > c.lastEpoch {
			c.lastEpoch = m.Epoch
		}
		if fresh {
			for _, id := range n.updateOverTargets() {
				ctx.Send(id, updateOver{Epoch: m.Epoch})
			}
		}
	case rejectBatch:
		if n.inBatch == nil {
			if n.cl.memberMode() {
				// Replay duplicate after a fail-stop restart: the batch it
				// bounces was already restored or re-fired.
				n.cl.logf("core: %v dropping rejectBatch without a batch in flight (restart replay)", n.self)
				return true
			}
			panic(fmt.Sprintf("core: %v got rejectBatch without a batch in flight", n.self))
		}
		kids := n.inBatch[1:]
		own := n.inOwn
		n.inBatch = nil
		n.inOwn = ownWave{}
		n.restoreOwn(own, kids)
	case leavePermissionReq:
		c.grantsPending = append(c.grantsPending, m.From)
	case leaveGrant:
		c.leaveGranted = true
	case leaveHandoff:
		if c.updatePhase {
			// Spawning a replacement mid-phase would create a node outside
			// the phase's triad votes; hold until the phase ends.
			c.heldHandoffs = append(c.heldHandoffs, m.Snap)
		} else {
			n.spawnReplacement(ctx, m.Snap)
		}
	case redirectMsg:
		n.applyRedirect(m.Old, m.New)
	case absorbMsg:
		n.absorb(ctx, from, m)
	case absorbAck:
		// Accept the ack even if a racing updateOver already ended the
		// phase locally: the splice happened, so we must depart either way.
		if c.absorbSent && !c.departed {
			c.phaseDone = true
			if c.updatePhase && c.pold != transport.None {
				ctx.Send(c.pold, updateAck{Epoch: c.epoch})
			}
			n.depart(ctx, n.pred.ID)
		}
	case sibHello:
		n.sibIn[m.Kind] = true
		n.invalidateTopology()
	case dissolveQuery:
		switch {
		case c.updatePhase && c.epoch == m.Epoch:
			ctx.Send(from, dissolveReply{Epoch: m.Epoch, Yes: c.isReplacement})
		case c.lastEpoch >= m.Epoch:
			// A stale query from a phase we have already passed through.
			ctx.Send(from, dissolveReply{Epoch: m.Epoch, Yes: false})
		default:
			// We have not entered that phase yet; answer at entry.
			c.heldQueries = append(c.heldQueries, heldQuery{from: from, epoch: m.Epoch})
		}
	case dissolveReply:
		if c.updatePhase && m.Epoch == c.epoch && c.votesPending > 0 {
			c.votesPending--
			if !m.Yes {
				c.dissolveOK = false
			}
			c.maybeFinishPhase(ctx, n)
		}
	case anchorWalk:
		n.receiveAnchorWalk(ctx, m)
	default:
		return false
	}
	return true
}

// handleRoutedChurn processes routed payloads that are not DHT operations.
func (n *Node) handleRoutedChurn(ctx *transport.Context, inner any) {
	switch m := inner.(type) {
	case joinReq:
		n.adoptJoiner(ctx, m.NewNode)
	default:
		panic(fmt.Sprintf("core: %v cannot handle routed payload %T", n.self, inner))
	}
}

// cwLess orders ring points by clockwise distance from this node: the
// order in which joiners must be chained into the ring. Absolute label
// order would be wrong for the node before the 0/1 seam, whose interval
// wraps.
func (n *Node) cwLess(a, b ldb.Point) bool {
	da := fixpoint.CWDist(n.self.Point.Label, a.Label)
	db := fixpoint.CWDist(n.self.Point.Label, b.Label)
	if da != db {
		return da < db
	}
	return a.Tie < b.Tie
}

// adoptJoiner makes this node responsible for a joining node (§IV-A): it
// introduces itself, hands over the DHT sub-interval (delegating to the
// joiner's closest joining predecessor when one exists), and treats the
// joiner as an extra aggregation-tree child.
func (n *Node) adoptJoiner(ctx *transport.Context, v ldb.Ref) {
	c := &n.churn
	idx := sort.Search(len(c.joiners), func(i int) bool {
		return n.cwLess(v.Point, c.joiners[i].Ref.Point)
	})
	c.joiners = append(c.joiners, joinerInfo{})
	copy(c.joiners[idx+1:], c.joiners[idx:])
	c.joiners[idx] = joinerInfo{Ref: v}

	end := n.succ.Point.Label
	if idx+1 < len(c.joiners) {
		end = c.joiners[idx+1].Ref.Point.Label
	}
	if idx > 0 {
		holder := c.joiners[idx-1].Ref
		ctx.Send(holder.ID, transferCmd{To: v, From: v.Point.Label, End: end})
	} else {
		ents, parked := n.store.Extract(func(pos int64) bool {
			return fixpoint.InCWRange(n.cl.keyHash.Frac(uint64(pos)), v.Point.Label, end)
		})
		ctx.Send(v.ID, handoverMsg{Entries: ents, Parked: parked})
	}
	ctx.Send(v.ID, adoptMsg{Responsible: n.self, From: v.Point.Label, End: end})
}

// joinerFor returns the joiner owning key, if any: the joiner with the
// largest point not above the key, measured clockwise from this node.
func (c *churnState) joinerFor(key fixpoint.Frac, self ldb.Ref) (joinerInfo, bool) {
	if len(c.joiners) == 0 {
		return joinerInfo{}, false
	}
	kd := fixpoint.CWDist(self.Point.Label, key)
	best := -1
	for i, j := range c.joiners {
		jd := fixpoint.CWDist(self.Point.Label, j.Ref.Point.Label)
		if jd <= kd {
			best = i
		}
	}
	if best < 0 {
		return joinerInfo{}, false
	}
	return c.joiners[best], true
}

// applyTransfer extracts a key range for a newer joiner and hands it over.
func (n *Node) applyTransfer(ctx *transport.Context, m transferCmd) {
	if n.churn.rangeValid {
		// Shrink our owned range; anything arriving later for the split
		// part will be re-dispatched by ingest.
		if fixpoint.CWDist(n.churn.rangeFrom, m.From) < fixpoint.CWDist(n.churn.rangeFrom, n.churn.rangeEnd) {
			n.churn.rangeEnd = m.From
		}
	}
	ents, parked := n.store.Extract(func(pos int64) bool {
		return fixpoint.InCWRange(n.cl.keyHash.Frac(uint64(pos)), m.From, m.End)
	})
	ctx.Send(m.To.ID, handoverMsg{Entries: ents, Parked: parked})
}

// ingest re-homes handed-over data. Every item passes through the
// ownership-aware dispatch, so data that raced past a topology change
// keeps moving until it reaches its current owner; nothing is ever
// stranded or lost.
func (n *Node) ingest(ctx *transport.Context, ents []dht.Entry, parked []dht.ParkedEntry) {
	for _, p := range parked {
		n.dispatchDHT(ctx, n.cl.keyHash.Frac(uint64(p.Pos)), migrateParked{Pos: p.Pos, W: p.Waiter})
	}
	for _, ent := range ents {
		n.dispatchDHT(ctx, n.cl.keyHash.Frac(uint64(ent.Pos)), migrateEntry{Ent: ent})
	}
}

// RequestLeave marks this node as wanting to leave; the permission
// handshake and drained handoff run from TIMEOUT.
func (n *Node) RequestLeave() { n.churn.leaving = true }

// executeLeave hands the node's transferable state to the left neighbour
// (§IV-B). The node has drained all client-attributed state by now.
func (n *Node) executeLeave(ctx *transport.Context) {
	c := &n.churn
	snap := nodeSnapshot{
		Self: n.self, Pred: n.pred, Succ: n.succ,
		SibL: n.sibL, SibM: n.sibM, SibR: n.sibR,
		AnchorRole: n.anchorRole, Anchor: n.anchorBundle(),
		Waiting:       n.waiting,
		Joiners:       c.joiners,
		GrantsPending: c.grantsPending, GrantedOpen: c.grantedOpen,
		SibIn: n.sibIn,
	}
	snap.Entries, snap.Parked = n.store.ExtractAll()
	n.waiting = nil
	ctx.Send(n.pred.ID, leaveHandoff{Snap: snap})
	// Buffer everything until the replacement tells us its address.
	c.departed = true
	c.forwardTo = transport.None
	ctx.StopTimeouts(ctx.Self())
	n.cl.noteDeparted(n)
}

// spawnReplacement creates the replacement node v' for a departed right
// neighbour and becomes responsible for it (§IV-B).
func (n *Node) spawnReplacement(ctx *transport.Context, snap nodeSnapshot) {
	repl := &Node{
		cl:   n.cl,
		disc: n.cl.newDiscipline(),
		self: ldb.Ref{ID: transport.None, Point: snap.Self.Point, Kind: snap.Self.Kind},
		pred: snap.Pred, succ: snap.Succ,
		sibL: snap.SibL, sibM: snap.SibM, sibR: snap.SibR,
		anchorRole:  snap.AnchorRole,
		clientID:    -1, // replacements never issue requests
		store:       dht.NewStore(),
		pendingGets: make(map[uint64]getCtx),
		waiting:     snap.Waiting,
	}
	repl.setAnchorBundle(snap.Anchor)
	repl.sibIn = snap.SibIn
	repl.churn.isReplacement = true
	repl.churn.joiners = snap.Joiners
	repl.churn.grantsPending = snap.GrantsPending
	repl.churn.grantedOpen = snap.GrantedOpen
	id := ctx.Spawn(repl)
	repl.self.ID = id
	for _, p := range snap.Parked {
		repl.store.Park(p.Pos, p.Waiter)
	}
	for _, ent := range snap.Entries {
		repl.store.Insert(ent)
	}
	// Rewrite every reference we hold to the departed node — we may be its
	// ring predecessor, but also its process sibling.
	n.applyRedirect(snap.Self, repl.self)
	if n.churn.grantedOpen > 0 {
		n.churn.grantedOpen--
	}
	// Tell everyone who knew the old node, including the departed node
	// itself so it can start forwarding. The order is deterministic: the
	// engine schedule must not depend on map iteration.
	targets := []transport.NodeID{snap.Self.ID}
	seen := map[transport.NodeID]bool{snap.Self.ID: true, n.self.ID: true}
	candidates := []ldb.Ref{snap.Pred, snap.Succ, snap.SibL, snap.SibM, snap.SibR}
	for _, j := range snap.Joiners {
		candidates = append(candidates, j.Ref)
	}
	for _, r := range candidates {
		if r.Valid() && !seen[r.ID] {
			seen[r.ID] = true
			targets = append(targets, r.ID)
		}
	}
	for _, t := range targets {
		ctx.Send(t, redirectMsg{Old: snap.Self, New: repl.self})
	}
	n.cl.noteReplacement(repl)
}

// applyRedirect rewrites every stored reference Old -> New.
func (n *Node) applyRedirect(old, new ldb.Ref) {
	rw := func(r *ldb.Ref) {
		if r.ID == old.ID {
			*r = new
			n.invalidateTopology()
		}
	}
	rw(&n.pred)
	rw(&n.succ)
	rw(&n.sibL)
	rw(&n.sibM)
	rw(&n.sibR)
	rw(&n.churn.relayVia)
	for i := range n.churn.joiners {
		rw(&n.churn.joiners[i].Ref)
	}
	for i := range n.churn.grantsPending {
		rw(&n.churn.grantsPending[i])
	}
}

// absorb ingests a dissolving replacement: its data, successor, relayed
// joiners, pending duties, and possibly the anchor role (§IV-B).
func (n *Node) absorb(ctx *transport.Context, from transport.NodeID, m absorbMsg) {
	// Splice first: ingest re-dispatches anything we do not own, so the
	// ring view must already cover the absorbed range.
	if m.Succ.ID != from && m.Succ.ID != n.self.ID {
		n.succ = m.Succ
		ctx.Send(m.Succ.ID, setPred{Pred: n.self, Epoch: m.Epoch})
		if n.churn.updatePhase && n.churn.epoch == m.Epoch {
			n.churn.introAcksLeft++
		}
	}
	n.invalidateTopology()
	n.ingest(ctx, m.Entries, m.Parked)
	n.churn.joiners = append(n.churn.joiners, m.Joiners...)
	sort.Slice(n.churn.joiners, func(i, j int) bool {
		return n.cwLess(n.churn.joiners[i].Ref.Point, n.churn.joiners[j].Ref.Point)
	})
	n.churn.grantsPending = append(n.churn.grantsPending, m.Grants...)
	n.churn.grantedOpen += m.GrantedOpen
	n.waiting = append(n.waiting, m.Waiting...)
	ctx.Send(from, absorbAck{Epoch: m.Epoch})
	if m.AnchorRole {
		// The replacement was the old-tree root; its phase-end duty now
		// falls to the anchor role holder, found by walking left.
		n.receiveAnchorWalk(ctx, anchorWalk{Anchor: m.Anchor})
	}
	n.churn.maybeFinishPhase(ctx, n)
}

// receiveAnchorWalk accepts or forwards the travelling anchor role.
func (n *Node) receiveAnchorWalk(ctx *transport.Context, m anchorWalk) {
	if n.churn.departed {
		n.churn.forwardOrBuffer(ctx, n, m)
		return
	}
	if n.churn.isReplacement && n.churn.absorbSent {
		// We are dissolving and already spliced out of our pred's view;
		// re-accepting the role here would strand it on a zombie node.
		// Push the walk back towards the ring (it converges once the
		// splice introductions land).
		ctx.Send(n.pred.ID, anchorWalk{Anchor: m.Anchor})
		return
	}
	if n.nb().IsAnchor() {
		n.anchorRole = true
		n.setAnchorBundle(m.Anchor)
		n.broadcastUpdateOver(ctx)
		return
	}
	if n.succ.Point.Less(n.self.Point) {
		// We are the ring maximum (this happens when the departed anchor's
		// replacement dissolved into us); the minimum is our successor.
		ctx.Send(n.succ.ID, anchorWalk{Anchor: m.Anchor})
		return
	}
	ctx.Send(n.pred.ID, anchorWalk{Anchor: m.Anchor})
}

// depart switches the node into pure-forwarder mode towards a known peer.
// Any DHT content that arrived after the handoff snapshot is flushed to
// the forwarding target, which re-homes it.
func (n *Node) depart(ctx *transport.Context, forwardTo transport.NodeID) {
	n.churn.departed = true
	n.churn.forwardTo = forwardTo
	if ents, parked := n.store.ExtractAll(); len(ents) > 0 || len(parked) > 0 {
		ctx.Send(forwardTo, handoverMsg{Entries: ents, Parked: parked})
	}
	ctx.StopTimeouts(ctx.Self())
	n.cl.noteDeparted(n)
	n.churn.flushBuffer(ctx, n)
}

// forwardOrBuffer relays a message for a departed node, or holds it until
// the forwarding target is known.
func (c *churnState) forwardOrBuffer(ctx *transport.Context, n *Node, payload any) {
	if c.forwardTo == transport.None {
		c.buffer = append(c.buffer, payload)
		return
	}
	n.cl.metrics.ForwardedMsgs++
	ctx.Send(c.forwardTo, payload)
}

func (c *churnState) flushBuffer(ctx *transport.Context, n *Node) {
	buf := c.buffer
	c.buffer = nil
	for _, m := range buf {
		c.forwardOrBuffer(ctx, n, m)
	}
}

// handleDeparted processes messages at a departed node: the redirect that
// names our replacement is consumed; everything else is forwarded.
func (n *Node) handleDeparted(ctx *transport.Context, payload any) {
	if m, ok := payload.(redirectMsg); ok && m.Old.ID == n.self.ID {
		n.churn.forwardTo = m.New.ID
		n.churn.flushBuffer(ctx, n)
		return
	}
	n.churn.forwardOrBuffer(ctx, n, payload)
}
