package core

import (
	"testing"

	"skueue/internal/batch"
	"skueue/internal/seqcheck"
	"skueue/internal/xrand"
)

// settleChurn runs until no process is joining/leaving-incomplete and the
// topology verifies, or fails the test.
func settleChurn(t *testing.T, cl *Cluster, maxTime int64) {
	t.Helper()
	ok := cl.Engine().RunUntil(func() bool {
		return cl.ChurnQuiescent() && cl.VerifyTopology() == nil
	}, maxTime)
	if !ok {
		for _, p := range cl.Processes() {
			if p.Joining {
				t.Logf("process %d still joining", p.ID)
			}
		}
		t.Fatalf("churn did not settle within %d: quiescent=%v topology=%v",
			maxTime, cl.ChurnQuiescent(), cl.VerifyTopology())
	}
}

func TestSingleJoinIntegrates(t *testing.T) {
	cl := newCluster(t, Config{Processes: 3, Seed: 100})
	cl.Run(5) // let the waves start
	p := cl.JoinProcess(0)
	settleChurn(t, cl, 5000)
	if cl.Processes()[p].Joining {
		t.Fatalf("process %d not integrated", p)
	}
	ring := cl.LiveRing()
	if ring.Len() != 12 {
		t.Fatalf("ring has %d nodes, want 12", ring.Len())
	}
	if err := cl.VerifyTopology(); err != nil {
		t.Fatalf("topology: %v", err)
	}
}

func TestJoinThenOperate(t *testing.T) {
	cl := newCluster(t, Config{Processes: 3, Seed: 101})
	cl.Run(5)
	p := cl.JoinProcess(1)
	settleChurn(t, cl, 5000)
	// The new process can enqueue/dequeue like anyone else. Drain the
	// enqueues first so the dequeues are guaranteed to find them.
	c := cl.Client(p)
	cl.Enqueue(c)
	cl.Enqueue(c)
	drainAndCheck(t, cl, 10000)
	cl.Dequeue(cl.Client(0))
	cl.Dequeue(cl.Client(0))
	drainAndCheck(t, cl, 10000)
	st := seqcheck.Summarize(cl.History())
	if st.Bottoms != 0 {
		t.Fatalf("dequeues missed elements enqueued by the joiner: %+v", st)
	}
}

func TestJoinWhileLoaded(t *testing.T) {
	// Join in the middle of request traffic; everything stays consistent
	// and no element is lost.
	cl := newCluster(t, Config{Processes: 4, Seed: 102, ShuffleTimeouts: true})
	rng := xrand.New(5)
	enq := 0
	for round := 0; round < 40; round++ {
		clients := cl.ActiveClients()
		c := clients[rng.Intn(len(clients))]
		if rng.Bool(0.7) {
			cl.Enqueue(c)
			enq++
		} else {
			cl.Dequeue(c)
		}
		if round == 10 {
			cl.JoinProcess(0)
		}
		if round == 25 {
			cl.JoinProcess(2)
		}
		cl.Step()
	}
	settleChurn(t, cl, 20000)
	drainAndCheck(t, cl, 20000)
	st := seqcheck.Summarize(cl.History())
	returned := st.Dequeues - st.Bottoms
	if returned+cl.TotalStored() != enq {
		t.Fatalf("element conservation broken across join: %d + %d != %d",
			returned, cl.TotalStored(), enq)
	}
}

func TestJoinMovesData(t *testing.T) {
	// Fill the DHT, then join: the new nodes must end up owning the keys
	// in their intervals, and dequeues must still find everything.
	cl := newCluster(t, Config{Processes: 3, Seed: 103})
	const k = 60
	for i := 0; i < k; i++ {
		cl.Enqueue(cl.Client(i % 3))
	}
	drainAndCheck(t, cl, 10000)
	p := cl.JoinProcess(0)
	settleChurn(t, cl, 10000)
	// New process should have received some data (60 keys over 12 nodes).
	got := 0
	for _, id := range cl.Processes()[p].Nodes {
		if n, ok := cl.Node(id); ok {
			got += n.Store().Len()
		}
	}
	t.Logf("joiner holds %d of %d elements", got, k)
	if cl.TotalStored() != k {
		t.Fatalf("stored %d, want %d", cl.TotalStored(), k)
	}
	for i := 0; i < k; i++ {
		cl.Dequeue(cl.Client(i % 4))
	}
	drainAndCheck(t, cl, 20000)
	st := seqcheck.Summarize(cl.History())
	if st.Bottoms != 0 {
		t.Fatalf("lost elements across join: %d ⊥ dequeues", st.Bottoms)
	}
}

func TestJoinLeftOfAnchorMovesRole(t *testing.T) {
	// Join processes until one lands left of the anchor; the anchor role
	// must follow the leftmost node.
	cl := newCluster(t, Config{Processes: 2, Seed: 104})
	cl.Run(5)
	for i := 0; i < 6; i++ {
		cl.JoinProcess(0)
		settleChurn(t, cl, 20000)
	}
	if err := cl.VerifyTopology(); err != nil {
		t.Fatalf("topology/anchor: %v", err)
	}
	// And the queue still works.
	cl.Enqueue(cl.Client(3))
	cl.Dequeue(cl.Client(5))
	drainAndCheck(t, cl, 20000)
}

func TestSingleLeave(t *testing.T) {
	cl := newCluster(t, Config{Processes: 4, Seed: 105})
	cl.Run(5)
	cl.LeaveProcess(2)
	settleChurn(t, cl, 20000)
	ring := cl.LiveRing()
	if ring.Len() != 9 {
		t.Fatalf("ring has %d nodes after leave, want 9", ring.Len())
	}
	cl.Enqueue(cl.Client(0))
	cl.Dequeue(cl.Client(1))
	drainAndCheck(t, cl, 20000)
}

func TestLeavePreservesData(t *testing.T) {
	cl := newCluster(t, Config{Processes: 4, Seed: 106})
	const k = 40
	for i := 0; i < k; i++ {
		cl.Enqueue(cl.Client(i % 4))
	}
	drainAndCheck(t, cl, 10000)
	cl.LeaveProcess(1)
	settleChurn(t, cl, 30000)
	if cl.TotalStored() != k {
		t.Fatalf("stored %d after leave, want %d", cl.TotalStored(), k)
	}
	for i := 0; i < k; i++ {
		cl.Dequeue(cl.Client([]int{0, 2, 3}[i%3]))
	}
	drainAndCheck(t, cl, 30000)
	if st := seqcheck.Summarize(cl.History()); st.Bottoms != 0 {
		t.Fatalf("lost %d elements across leave", st.Bottoms)
	}
}

func TestAnchorLeave(t *testing.T) {
	// The process owning the anchor leaves; the role must survive and the
	// structure must keep working.
	cl := newCluster(t, Config{Processes: 4, Seed: 107})
	cl.Run(5)
	a := cl.AnchorNode()
	if a == nil {
		t.Fatalf("no anchor")
	}
	var anchorProc int = -1
	for i, p := range cl.Processes() {
		for _, id := range p.Nodes {
			if id == a.Ref().ID {
				anchorProc = i
			}
		}
	}
	if anchorProc < 0 {
		t.Fatalf("anchor not owned by any process")
	}
	cl.Enqueue(cl.Client((anchorProc + 1) % 4))
	drainAndCheck(t, cl, 10000)
	cl.LeaveProcess(anchorProc)
	settleChurn(t, cl, 30000)
	if err := cl.VerifyTopology(); err != nil {
		t.Fatalf("topology after anchor leave: %v", err)
	}
	cl.Dequeue(cl.Client((anchorProc + 2) % 4))
	drainAndCheck(t, cl, 20000)
	if st := seqcheck.Summarize(cl.History()); st.Bottoms != 0 {
		t.Fatalf("element lost across anchor leave")
	}
}

func TestAdjacentLeavesPrioritize(t *testing.T) {
	// Several processes leave concurrently; the label-order priority must
	// untangle adjacent leavers.
	cl := newCluster(t, Config{Processes: 6, Seed: 108})
	cl.Run(5)
	cl.LeaveProcess(1)
	cl.LeaveProcess(2)
	cl.LeaveProcess(3)
	settleChurn(t, cl, 60000)
	if got := cl.LiveRing().Len(); got != 9 {
		t.Fatalf("ring has %d nodes, want 9", got)
	}
	cl.Enqueue(cl.Client(0))
	cl.Dequeue(cl.Client(4))
	drainAndCheck(t, cl, 20000)
}

func TestChurnStorm(t *testing.T) {
	// Joins and leaves interleaved with traffic across several seeds.
	for seed := int64(110); seed < 114; seed++ {
		cl := newCluster(t, Config{Processes: 5, Seed: seed, ShuffleTimeouts: true})
		rng := xrand.New(seed)
		enq, deqHit := 0, 0
		for round := 0; round < 120; round++ {
			clients := cl.ActiveClients()
			if len(clients) > 0 && rng.Bool(0.8) {
				c := clients[rng.Intn(len(clients))]
				if rng.Bool(0.6) {
					cl.Enqueue(c)
					enq++
				} else {
					cl.Dequeue(c)
				}
			}
			switch round {
			case 20:
				cl.JoinProcess(0)
			case 45:
				cl.LeaveProcess(2)
			case 70:
				cl.JoinProcess(4)
			case 95:
				cl.LeaveProcess(1)
			}
			cl.Step()
		}
		settleChurn(t, cl, 60000)
		drainAndCheck(t, cl, 60000)
		st := seqcheck.Summarize(cl.History())
		deqHit = st.Dequeues - st.Bottoms
		if deqHit+cl.TotalStored() != enq {
			t.Fatalf("seed %d: conservation broken: %d + %d != %d",
				seed, deqHit, cl.TotalStored(), enq)
		}
	}
}

func TestChurnAsyncConsistency(t *testing.T) {
	for seed := int64(120); seed < 124; seed++ {
		cl := newCluster(t, Config{
			Processes: 4, Seed: seed, Async: true, MaxDelay: 8, TimeoutEvery: 4,
		})
		rng := xrand.New(seed)
		cl.Run(20)
		for burst := 0; burst < 20; burst++ {
			clients := cl.ActiveClients()
			c := clients[rng.Intn(len(clients))]
			if rng.Bool(0.5) {
				cl.Enqueue(c)
			} else {
				cl.Dequeue(c)
			}
			if burst == 6 {
				cl.JoinProcess(0)
			}
			if burst == 14 {
				cl.LeaveProcess(3)
			}
			cl.Run(int64(5 + rng.Intn(30)))
		}
		settleChurn(t, cl, 300000)
		drainAndCheck(t, cl, 300000)
	}
}

func TestStackWithChurn(t *testing.T) {
	cl := newCluster(t, Config{Processes: 4, Seed: 130, Mode: batch.Stack})
	rng := xrand.New(9)
	for round := 0; round < 80; round++ {
		clients := cl.ActiveClients()
		c := clients[rng.Intn(len(clients))]
		if rng.Bool(0.6) {
			cl.Enqueue(c)
		} else {
			cl.Dequeue(c)
		}
		if round == 20 {
			cl.JoinProcess(1)
		}
		if round == 50 {
			cl.LeaveProcess(0)
		}
		cl.Step()
	}
	settleChurn(t, cl, 60000)
	drainAndCheck(t, cl, 60000)
}

func TestManyJoinsAtOnce(t *testing.T) {
	// Theorem 17 flavour: a burst of joins integrates within one or few
	// update phases.
	cl := newCluster(t, Config{Processes: 4, Seed: 131})
	cl.Run(5)
	for i := 0; i < 6; i++ {
		cl.JoinProcess(i % 4)
	}
	settleChurn(t, cl, 60000)
	if got := cl.LiveRing().Len(); got != 30 {
		t.Fatalf("ring has %d nodes, want 30", got)
	}
	// The system stays functional afterwards.
	for i := 0; i < 10; i++ {
		cl.Enqueue(cl.Client(i % 10))
	}
	drainAndCheck(t, cl, 30000)
	for i := 0; i < 10; i++ {
		cl.Dequeue(cl.Client((i + 3) % 10))
	}
	drainAndCheck(t, cl, 30000)
	if st := seqcheck.Summarize(cl.History()); st.Bottoms != 0 {
		t.Fatalf("lost elements after join burst")
	}
}

func TestJoinersBelowRingSeam(t *testing.T) {
	// Regression: the node before the 0/1 seam (the ring maximum) adopts
	// joiners on both sides of the wrap; chaining them by absolute label
	// order instead of clockwise order corrupted the ring and stranded the
	// anchor role. A large burst at a small base reliably hits the seam.
	for seed := int64(3); seed < 12; seed++ {
		cl := newCluster(t, Config{Processes: 8, Seed: seed})
		cl.Run(5)
		for i := 0; i < 8; i++ {
			cl.JoinProcess(i % 8)
		}
		settleChurn(t, cl, 200000)
		// The system must remain live: new requests still complete.
		cl.Enqueue(cl.Client(9))
		cl.Dequeue(cl.Client(12))
		drainAndCheck(t, cl, 30000)
	}
}

func TestLivenessAfterChurn(t *testing.T) {
	// A settled system must still process traffic — wedged waves hide
	// behind drained pre-churn requests otherwise.
	cl := newCluster(t, Config{Processes: 5, Seed: 140, ShuffleTimeouts: true})
	rng := xrand.New(1)
	for round := 0; round < 100; round++ {
		clients := cl.ActiveClients()
		if rng.Bool(0.5) {
			c := clients[rng.Intn(len(clients))]
			cl.Enqueue(c)
		}
		switch round {
		case 10:
			cl.JoinProcess(0)
		case 40:
			cl.LeaveProcess(1)
		case 70:
			cl.JoinProcess(3)
		}
		cl.Step()
	}
	settleChurn(t, cl, 100000)
	drainAndCheck(t, cl, 100000)
	// Fresh traffic after full quiescence.
	clients := cl.ActiveClients()
	for i := 0; i < 10; i++ {
		cl.Enqueue(clients[i%len(clients)])
		cl.Dequeue(clients[(i+3)%len(clients)])
	}
	drainAndCheck(t, cl, 60000)
}

func TestUpdateThresholdBatchesChurn(t *testing.T) {
	// With a higher threshold the anchor waits for several pending churn
	// requests before starting a phase (§IV: "a sufficiently large number
	// of nodes").
	cl := newCluster(t, Config{Processes: 6, Seed: 141, UpdateThreshold: 6})
	cl.Run(5)
	cl.JoinProcess(0) // 3 joiners: below threshold
	cl.Run(300)
	if cl.Metrics().UpdatePhases != 0 {
		t.Fatalf("phase started below threshold")
	}
	cl.JoinProcess(1) // 6 joiners total: meets threshold
	settleChurn(t, cl, 60000)
	if cl.Metrics().UpdatePhases == 0 {
		t.Fatalf("phase never started at threshold")
	}
	if got := cl.LiveRing().Len(); got != 24 {
		t.Fatalf("ring size %d, want 24", got)
	}
}

func TestRejoinAfterLeave(t *testing.T) {
	// Processes can come and go repeatedly.
	cl := newCluster(t, Config{Processes: 4, Seed: 142})
	cl.Run(5)
	for cycle := 0; cycle < 3; cycle++ {
		p := cl.JoinProcess(0)
		settleChurn(t, cl, 100000)
		cl.Enqueue(cl.Client(p))
		drainAndCheck(t, cl, 30000)
		cl.LeaveProcess(p)
		settleChurn(t, cl, 200000)
	}
	if got := cl.LiveRing().Len(); got != 12 {
		t.Fatalf("ring size %d after 3 join/leave cycles, want 12", got)
	}
	// All enqueued elements still retrievable.
	for i := 0; i < 3; i++ {
		cl.Dequeue(cl.Client(1))
	}
	drainAndCheck(t, cl, 30000)
	if st := seqcheck.Summarize(cl.History()); st.Bottoms != 0 {
		t.Fatalf("lost elements across rejoin cycles")
	}
}
