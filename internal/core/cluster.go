package core

import (
	"errors"
	"fmt"

	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/ldb"
	"skueue/internal/seqcheck"
	"skueue/internal/sim"
	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// Config parameterizes a simulated Skueue deployment.
type Config struct {
	// Processes is the initial number of processes; each emulates three
	// virtual nodes (Definition 2).
	Processes int
	// Seed drives all randomness: labels, keys, scheduling, workloads.
	Seed int64
	// Mode selects queue (§III), stack (§VI) or heap (bounded-priority,
	// Skeap-style) semantics.
	Mode batch.Mode
	// HeapLevels is the number of priority levels in heap mode (bounded
	// constant priorities); valid levels are 0..HeapLevels-1. Values
	// below 1 select a single level. Ignored outside heap mode.
	HeapLevels int
	// Async switches to the fully asynchronous scheduler (§I-B model); the
	// default is the synchronous round model the evaluation uses.
	Async bool
	// MaxDelay and TimeoutEvery tune the asynchronous scheduler.
	MaxDelay     int
	TimeoutEvery int
	// ShuffleTimeouts randomizes per-round TIMEOUT order (synchronous).
	ShuffleTimeouts bool
	// DisableLocalCombining turns off the §VI local push/pop combining
	// (ablation: batches grow, Theorem 20 no longer holds).
	DisableLocalCombining bool
	// DisableStage4Wait turns off the §VI completion wait (ablation: the
	// paper's counterexample becomes reachable and sequential consistency
	// can break under asynchrony).
	DisableStage4Wait bool
	// UpdateThreshold is the number of pending join/leave requests the
	// anchor requires before starting an update phase; default 1.
	UpdateThreshold int
	// AckAllPuts makes every PUT acknowledged to its issuer, not only the
	// stack-mode ones the §VI completion wait needs. Networked members set
	// it: an enqueue's completion is recorded at the member storing the
	// element, so the issuing member needs the ack to resolve its client's
	// blocking call. The simulator leaves it off (one cluster sees every
	// completion).
	AckAllPuts bool
	// Shape is an optional WAN delivery profile for the simulator backend
	// (extra per-message delay in rounds; see transport.Shape). Ignored in
	// member mode, where the hosting server configures the TCP peer.
	Shape transport.Shape
}

// Process groups the three virtual nodes a process emulates.
type Process struct {
	ID    int32
	Nodes [3]transport.NodeID // indexed by ldb.Kind: Left, Middle, Right
	// Joining is true until all three nodes have been integrated.
	Joining bool
	// Left is true once the process has requested to leave.
	Left bool
}

// Metrics aggregates protocol-level counters across a run.
type Metrics struct {
	BatchesSent   int64
	MaxBatchRuns  int
	WavesAssigned int64
	UpdatePhases  int64
	ParkedGets    int64
	CombinedOps   int64
	ForwardedMsgs int64
	RouteMsgs     int64
	RouteHops     int64
	MaxQueueSize  int64
}

func (m *Metrics) noteBatch(b batch.Batch) {
	m.BatchesSent++
	if b.Size() > m.MaxBatchRuns {
		m.MaxBatchRuns = b.Size()
	}
}

func (m *Metrics) noteQueueSize(s int64) {
	if s > m.MaxQueueSize {
		m.MaxQueueSize = s
	}
}

func (m *Metrics) noteRoute(hops int) {
	m.RouteMsgs++
	m.RouteHops += int64(hops)
}

// AvgRouteHops returns the mean LDB routing path length observed.
func (m *Metrics) AvgRouteHops() float64 {
	if m.RouteMsgs == 0 {
		return 0
	}
	return float64(m.RouteHops) / float64(m.RouteMsgs)
}

// Cluster is one deployment's view of the Skueue protocol: the processes
// and virtual nodes it hosts, the backend delivering their messages, and
// the completion history recorded here.
//
// Under the simulator (New) a Cluster owns every node of the system and
// the engine driving them. Under the TCP transport (NewMember) each
// operating-system process holds one Cluster covering only its local
// nodes; the engine is absent, simulation-only methods (Step, Run, Drain,
// Engine, ...) must not be called, and counters such as Issued, Finished
// and the history are member-local.
//
// In member mode a Cluster survives fail-stop crashes through
// MemberSnapshot (snapshot.go); statecomplete enforces field coverage.
//
//skueue:snapshot-state MemberSnapshot
type Cluster struct {
	cfg     Config
	eng     *sim.Engine       // simulator backend; nil in member mode
	net     transport.Network // message delivery (the engine, or a TCP peer)
	reg     transport.Registry
	labels  xrand.Hasher
	keyHash xrand.Hasher
	procs   []*Process
	nodes   map[transport.NodeID]*Node
	hist    *seqcheck.History
	//skueue:ephemeral -- observability counters; a restart resets metrics, not queue state
	metrics  Metrics
	issued   int64
	finished int64
	// reqBase tags this member's request IDs so they stay globally unique
	// across a networked cluster; zero under the simulator.
	reqBase  uint64
	reqSeq   uint64
	nextProc int32
	//skueue:ephemeral -- completion callback, rewired by the hosting layer after restore
	onComplete func(seqcheck.Completion)
	//skueue:ephemeral -- put-ack callback, rewired by the hosting layer after restore
	onPutAck func(reqID uint64)
	// onFire reports committed wave fires to the hosting layer (operation
	// journal wave boundaries for exactly-once restart; see replay.go).
	//
	//skueue:ephemeral -- wave-fire callback, rewired by the hosting layer after restore
	onFire func(node transport.NodeID, waveSeq int64)
	//skueue:ephemeral -- logger, rewired via SetLogf after restore
	log func(format string, args ...any)
}

// New builds and wires a cluster. All processes given in the config are
// present from the start (bootstrap); later arrivals use JoinProcess.
func New(cfg Config) (*Cluster, error) {
	if cfg.Processes < 1 {
		return nil, errors.New("core: need at least one process")
	}
	cl := &Cluster{
		cfg:     cfg,
		labels:  xrand.NewHasher(cfg.Seed, "labels"),
		keyHash: xrand.NewHasher(cfg.Seed, "positions"),
		nodes:   make(map[transport.NodeID]*Node),
		hist:    &seqcheck.History{},
	}
	cl.eng = sim.New(sim.Config{
		Seed:            xrand.New(cfg.Seed).Fork("engine").Int63(),
		Async:           cfg.Async,
		MaxDelay:        cfg.MaxDelay,
		TimeoutEvery:    cfg.TimeoutEvery,
		ShuffleTimeouts: cfg.ShuffleTimeouts,
		Shape:           cfg.Shape,
	})
	cl.net = cl.eng

	// Spawn all initial nodes, then wire the ring and the sibling edges.
	var refs []ldb.Ref
	sibs := make(map[int32][3]ldb.Ref)
	for p := 0; p < cfg.Processes; p++ {
		proc, prefs := cl.spawnProcess()
		proc.Joining = false
		sibs[proc.ID] = prefs
		refs = append(refs, prefs[0], prefs[1], prefs[2])
	}
	ring := ldb.NewRing(refs)
	for i := 0; i < ring.Len(); i++ {
		ref := ring.At(i)
		n := cl.nodes[ref.ID]
		n.pred = ring.Pred(i)
		n.succ = ring.Succ(i)
		n.churn.joining = false
		n.sibIn = [3]bool{true, true, true}
	}
	anchor := cl.nodes[ring.Min().ID]
	anchor.anchorRole = true
	anchor.ast = batch.NewAnchorState()
	return cl, nil
}

// spawnProcess creates the three virtual nodes of a fresh process under
// the next free process ID. The caller decides whether they start
// integrated (bootstrap) or joining.
func (cl *Cluster) spawnProcess() (*Process, [3]ldb.Ref) {
	pid := cl.nextProc
	cl.nextProc++
	return cl.spawnProcessAt(pid)
}

// NodeIDForProcess is the globally agreed node address of process pid's
// virtual node of the given kind under backends with caller-chosen
// addresses (transport.Registry). The simulator's dense spawn order
// produces the same IDs for bootstrap processes.
func NodeIDForProcess(pid int32, kind ldb.Kind) transport.NodeID {
	return transport.NodeID(pid*3 + int32(kind))
}

// spawnProcessAt creates the three virtual nodes of process pid.
func (cl *Cluster) spawnProcessAt(pid int32) (*Process, [3]ldb.Ref) {
	l, m, r := ldb.ProcessPoints(cl.labels, uint64(pid))
	proc := &Process{ID: pid, Joining: true}
	var prefs [3]ldb.Ref
	points := [3]ldb.Point{ldb.Left: l, ldb.Middle: m, ldb.Right: r}
	for k, pt := range points {
		kind := ldb.Kind(k)
		n := &Node{
			cl:          cl,
			disc:        cl.newDiscipline(),
			store:       dht.NewStore(),
			pendingGets: make(map[uint64]getCtx),
			// Until wired, every ref must be explicitly invalid; the zero
			// Ref would silently address node 0.
			pred: ldb.Ref{ID: transport.None},
			succ: ldb.Ref{ID: transport.None},
		}
		n.churn.joining = true
		n.churn.relayVia = ldb.Ref{ID: transport.None}
		n.sibIn[kind] = true
		var id transport.NodeID
		if cl.reg != nil {
			id = NodeIDForProcess(pid, kind)
			cl.reg.Register(id, n)
		} else {
			id = cl.eng.Spawn(n)
		}
		n.self = ldb.Ref{ID: id, Point: pt, Kind: kind}
		n.clientID = int32(id)
		cl.nodes[id] = n
		proc.Nodes[kind] = id
		prefs[kind] = n.self
	}
	// Sibling (virtual) edges.
	for kind := ldb.Left; kind <= ldb.Right; kind++ {
		n := cl.nodes[proc.Nodes[kind]]
		n.sibL, n.sibM, n.sibR = prefs[ldb.Left], prefs[ldb.Middle], prefs[ldb.Right]
	}
	cl.procs = append(cl.procs, proc)
	return proc, prefs
}

func (cl *Cluster) updateThreshold() int {
	if cl.cfg.UpdateThreshold < 1 {
		return 1
	}
	return cl.cfg.UpdateThreshold
}

// ReqIDMemberShift positions the issuing member's tag in a request ID:
// the high bits carry memberIndex+1 (zero = simulator), the low 40 bits
// the member-local sequence — ~10^12 requests per member before overflow.
const ReqIDMemberShift = 40

// ReqIDMember extracts the member tag of a request ID (memberIndex+1, or
// zero under the simulator). The server layer uses it to recognize
// completions of its own requests in a merged world.
func ReqIDMember(reqID uint64) uint64 { return reqID >> ReqIDMemberShift }

func (cl *Cluster) nextReqID() uint64 {
	cl.reqSeq++
	return cl.reqBase | cl.reqSeq
}

// memberMode reports whether this Cluster is one member's fragment of a
// networked deployment. The simulator treats protocol anomalies as fatal
// bugs (panic); a networked member additionally tolerates the benign
// duplicates a fail-stop restart produces — a restored member re-executes
// the tail of its history past its last snapshot, so its peers can see a
// handful of its pre-crash messages again (see internal/server).
func (cl *Cluster) memberMode() bool { return cl.eng == nil }

// SetLogf routes diagnostics (restart-replay tolerance, churn corners) to
// the member's logger; default discards.
func (cl *Cluster) SetLogf(fn func(format string, args ...any)) { cl.log = fn }

func (cl *Cluster) logf(format string, args ...any) {
	if cl.log != nil {
		cl.log(format, args...)
	}
}

func (cl *Cluster) recordCompletion(c seqcheck.Completion) {
	cl.hist.Record(c)
	cl.finished++
	if cl.onComplete != nil {
		cl.onComplete(c)
	}
}

// SetOnComplete registers a callback invoked for every completed request
// (the client layer uses it to resolve futures; a networked member uses
// it to answer remote clients). The callback fires on the runner
// goroutine and must not block.
//
//skueue:runs-on-runner
func (cl *Cluster) SetOnComplete(fn func(seqcheck.Completion)) { cl.onComplete = fn }

// SetOnPutAck registers a callback invoked when a PUT issued by one of
// this cluster's nodes is acknowledged as stored. With Config.AckAllPuts
// set this covers every enqueue, which is how a networked member resolves
// enqueues whose completion was recorded at the storing member. The
// callback fires on the runner goroutine and must not block.
//
//skueue:runs-on-runner
func (cl *Cluster) SetOnPutAck(fn func(reqID uint64)) { cl.onPutAck = fn }

func (cl *Cluster) noteDeparted(n *Node)    { delete(cl.nodes, n.self.ID) }
func (cl *Cluster) noteReplacement(n *Node) { cl.nodes[n.self.ID] = n }
func (cl *Cluster) noteIntegrated(n *Node) {
	// Mark the owning process fully joined once all three nodes are in.
	for _, p := range cl.procs {
		for _, id := range p.Nodes {
			if id == n.self.ID {
				for _, other := range p.Nodes {
					if on, ok := cl.nodes[other]; ok && on.churn.joining {
						return
					}
				}
				p.Joining = false
				return
			}
		}
	}
}

// Engine exposes the simulation engine.
func (cl *Cluster) Engine() *sim.Engine { return cl.eng }

// History returns the completion history for verification.
func (cl *Cluster) History() *seqcheck.History { return cl.hist }

// Metrics returns a copy of the protocol metrics.
func (cl *Cluster) Metrics() Metrics { return cl.metrics }

// Issued and Finished return request progress counters.
func (cl *Cluster) Issued() int64   { return cl.issued }
func (cl *Cluster) Finished() int64 { return cl.finished }

// Mode returns the configured semantics.
func (cl *Cluster) Mode() batch.Mode { return cl.cfg.Mode }

// Processes returns the process table (including departed entries).
func (cl *Cluster) Processes() []*Process { return cl.procs }

// Node returns the live node with the given id, if present.
func (cl *Cluster) Node(id transport.NodeID) (*Node, bool) {
	n, ok := cl.nodes[id]
	return n, ok
}

// Client returns the virtual node a process issues requests through (its
// middle node, per the client layer's convention).
func (cl *Cluster) Client(proc int) transport.NodeID {
	return cl.procs[proc].Nodes[ldb.Middle]
}

// ActiveClients lists nodes eligible to issue requests: live, not
// departed, not leaving, not replacements.
func (cl *Cluster) ActiveClients() []transport.NodeID {
	var out []transport.NodeID
	for _, p := range cl.procs {
		if p.Left {
			continue
		}
		for _, id := range p.Nodes {
			n, ok := cl.nodes[id]
			if ok && !n.churn.departed && !n.churn.leaving {
				out = append(out, id)
			}
		}
	}
	return out
}

// Enqueue buffers an ENQUEUE (PUSH) request at the given client node.
func (cl *Cluster) Enqueue(client transport.NodeID) uint64 {
	return cl.EnqueueBlob(client, nil)
}

// EnqueueBlob is Enqueue with an opaque application payload that rides
// with the element through the DHT (see Node.InjectEnqueueBlob).
func (cl *Cluster) EnqueueBlob(client transport.NodeID, blob []byte) uint64 {
	return cl.EnqueuePriBlob(client, 0, blob)
}

// EnqueuePriBlob buffers an ENQUEUE at the given priority level (heap
// mode; other modes use level 0). Out-of-range levels are a caller bug.
func (cl *Cluster) EnqueuePriBlob(client transport.NodeID, pri int32, blob []byte) uint64 {
	n, ok := cl.nodes[client]
	if !ok {
		panic(fmt.Sprintf("core: Enqueue at unknown node %d", client))
	}
	if pri < 0 || int(pri) >= n.disc.priLevels() {
		panic(fmt.Sprintf("core: enqueue priority %d out of range for mode %v (levels=%d)", pri, cl.cfg.Mode, n.disc.priLevels()))
	}
	return n.InjectEnqueuePriBlob(cl.net.Now(), pri, blob)
}

// heapLevels returns the effective number of priority levels.
func (cl *Cluster) heapLevels() int {
	if cl.cfg.HeapLevels < 1 {
		return 1
	}
	return cl.cfg.HeapLevels
}

// HeapLevels exposes the effective priority-level count; the hosting
// layer validates client-supplied levels against it before injection.
func (cl *Cluster) HeapLevels() int { return cl.heapLevels() }

// Dequeue buffers a DEQUEUE (POP) request at the given client node.
func (cl *Cluster) Dequeue(client transport.NodeID) uint64 {
	n, ok := cl.nodes[client]
	if !ok {
		panic(fmt.Sprintf("core: Dequeue at unknown node %d", client))
	}
	return n.InjectDequeue(cl.net.Now())
}

// Step advances the simulation by one round (or one event when async).
func (cl *Cluster) Step() { cl.eng.Step() }

// Run advances the simulation by the given number of rounds / time units.
func (cl *Cluster) Run(rounds int64) { cl.eng.Run(rounds) }

// Drain runs until every issued request completed, or maxTime elapses.
// It reports whether the system fully drained.
func (cl *Cluster) Drain(maxTime int64) bool {
	return cl.eng.RunUntil(func() bool { return cl.finished >= cl.issued }, maxTime)
}

// CheckConsistency verifies the full history against Definition 1 (or
// its priority generalization in heap mode).
func (cl *Cluster) CheckConsistency() error {
	return cl.newDiscipline().check(cl.hist)
}

// JoinProcess spawns a fresh process and routes its three JOIN requests
// into the system via the given contact process (§IV-A). It returns the
// new process index.
func (cl *Cluster) JoinProcess(contactProc int) int {
	contact := cl.procs[contactProc]
	contactID := contact.Nodes[ldb.Middle]
	if _, ok := cl.nodes[contactID]; !ok {
		panic("core: contact process has departed")
	}
	proc, prefs := cl.spawnProcess()
	for _, ref := range prefs {
		cl.net.Send(ref.ID, contactID, routedMsg{
			RS:    ldb.RouteState{Target: ref.Point.Label, BitsLeft: -1},
			Inner: joinReq{NewNode: ref},
		})
	}
	return int(proc.ID)
}

// LeaveProcess asks all three nodes of a process to leave (§IV-B).
func (cl *Cluster) LeaveProcess(proc int) {
	p := cl.procs[proc]
	if p.Joining {
		panic("core: cannot leave while still joining")
	}
	if p.Left {
		return
	}
	p.Left = true
	for _, id := range p.Nodes {
		if n, ok := cl.nodes[id]; ok {
			n.RequestLeave()
		}
	}
}

// ChurnQuiescent reports whether all joins and leaves have fully settled:
// no joining processes, no relayed joiners, no replacements awaiting
// absorption, no update phase in progress, and every leave request
// executed.
func (cl *Cluster) ChurnQuiescent() bool {
	for _, p := range cl.procs {
		if p.Joining {
			return false
		}
	}
	for _, n := range cl.nodes {
		c := &n.churn
		if c.departed {
			continue
		}
		if c.joining || len(c.joiners) > 0 ||
			c.isReplacement || c.updatePhase || c.leaving ||
			len(c.heldHandoffs) > 0 || len(c.grantsPending) > 0 {
			return false
		}
	}
	return true
}

// TreeHeight returns the height of the current aggregation tree, measured
// from the global oracle (Corollary 6 predicts O(log n) w.h.p.; the §VII
// latency discussion calls it ATH).
func (cl *Cluster) TreeHeight() int {
	max := 0
	for _, n := range cl.nodes {
		if n.churn.departed || n.churn.joining {
			continue
		}
		depth := 0
		cur := n
		for {
			p, ok := cur.nb().Parent()
			if !ok {
				break
			}
			next, live := cl.nodes[p.ID]
			if !live {
				break
			}
			depth++
			if depth > len(cl.nodes) {
				return -1 // should not happen: parent chain cycles
			}
			cur = next
		}
		if depth > max {
			max = depth
		}
	}
	return max
}

// Diagnose reports, for every live node that has not fired its current
// wave, which children it is still waiting for — the first tool to reach
// for when a wave stalls.
func (cl *Cluster) Diagnose() []string {
	var out []string
	for _, n := range cl.nodes {
		c := &n.churn
		if c.departed || n.inBatch != nil {
			continue
		}
		if c.updatePhase {
			out = append(out, fmt.Sprintf("%v in update phase e%d (acks=%d intro=%d votes=%d done=%v)",
				n.self, c.epoch, c.acksLeft, c.introAcksLeft, c.votesPending, c.phaseDone))
			continue
		}
		var missing []string
		for _, k := range n.children() {
			if !n.hasWaitingFrom(k.ID) {
				missing = append(missing, k.String())
			}
		}
		if len(missing) > 0 {
			out = append(out, fmt.Sprintf("%v (anchor=%v joining=%v) waits for %v",
				n.self, n.anchorRole, c.joining, missing))
		}
	}
	return out
}

// AnchorProcess returns the process ID whose virtual node holds the
// anchor role at bootstrap. The bootstrap topology is a pure function of
// the seed and the process count (labels come from the seeded hasher,
// spawn order is dense), so harnesses that must spare the anchor-hosting
// member — killing the anchor holder is outside the fail-stop recovery
// contract, the role would die with the process — can compute the member
// to protect without starting a cluster.
func AnchorProcess(seed int64, procs int) int32 {
	labels := xrand.NewHasher(seed, "labels")
	var refs []ldb.Ref
	for pid := int32(0); pid < int32(procs); pid++ {
		l, m, r := ldb.ProcessPoints(labels, uint64(pid))
		points := [3]ldb.Point{ldb.Left: l, ldb.Middle: m, ldb.Right: r}
		for k, pt := range points {
			refs = append(refs, ldb.Ref{ID: NodeIDForProcess(pid, ldb.Kind(k)), Point: pt, Kind: ldb.Kind(k)})
		}
	}
	return int32(ldb.NewRing(refs).Min().ID) / 3
}

// AnchorNode returns the node currently holding the anchor role.
func (cl *Cluster) AnchorNode() *Node {
	for _, n := range cl.nodes {
		if n.anchorRole && !n.churn.departed {
			return n
		}
	}
	return nil
}

// StoreSizes returns the number of stored elements per live ring node
// (fairness experiments, Lemma 4 / Corollary 19).
func (cl *Cluster) StoreSizes() []int {
	var out []int
	for _, n := range cl.nodes {
		if !n.churn.departed && !n.churn.joining {
			out = append(out, n.store.Len())
		}
	}
	return out
}

// TotalStored returns the number of elements held across the DHT.
func (cl *Cluster) TotalStored() int {
	total := 0
	for _, n := range cl.nodes {
		if !n.churn.departed {
			total += n.store.Len()
		}
	}
	return total
}

// LiveRing returns the live ring nodes sorted by point (test oracle).
func (cl *Cluster) LiveRing() *ldb.Ring {
	var refs []ldb.Ref
	for _, n := range cl.nodes {
		if !n.churn.departed && !n.churn.joining {
			refs = append(refs, n.self)
		}
	}
	return ldb.NewRing(refs)
}

// VerifyTopology checks, from the global test oracle, that every live
// ring node's pred/succ agree with the sorted ring — the eventual
// correctness condition after churn settles.
func (cl *Cluster) VerifyTopology() error {
	ring := cl.LiveRing()
	for i := 0; i < ring.Len(); i++ {
		n := cl.nodes[ring.At(i).ID]
		if n.pred.ID != ring.Pred(i).ID {
			return fmt.Errorf("node %v pred = %v, ring says %v", n.self, n.pred, ring.Pred(i))
		}
		if n.succ.ID != ring.Succ(i).ID {
			return fmt.Errorf("node %v succ = %v, ring says %v", n.self, n.succ, ring.Succ(i))
		}
	}
	anchors := 0
	for _, n := range cl.nodes {
		if n.anchorRole && !n.churn.departed {
			anchors++
			if n.self.ID != ring.Min().ID {
				return fmt.Errorf("anchor role at %v, leftmost is %v", n.self, ring.Min())
			}
		}
	}
	if anchors != 1 {
		return fmt.Errorf("%d anchor roles in the system", anchors)
	}
	return nil
}
