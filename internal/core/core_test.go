package core

import (
	"reflect"
	"testing"

	"skueue/internal/batch"
	"skueue/internal/seqcheck"
	"skueue/internal/xrand"
)

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return cl
}

func drainAndCheck(t *testing.T, cl *Cluster, maxTime int64) {
	t.Helper()
	if !cl.Drain(maxTime) {
		t.Fatalf("did not drain: finished %d of %d within %d time units",
			cl.Finished(), cl.Issued(), maxTime)
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
}

func TestSingleProcessEnqueueDequeue(t *testing.T) {
	cl := newCluster(t, Config{Processes: 1, Seed: 1})
	client := cl.Client(0)
	cl.Enqueue(client)
	cl.Enqueue(client)
	cl.Dequeue(client)
	cl.Dequeue(client)
	drainAndCheck(t, cl, 2000)
	h := cl.History()
	if h.Len() != 4 {
		t.Fatalf("expected 4 completions, got %d", h.Len())
	}
	// FIFO: the two dequeues return the elements in insertion order.
	var deqElems []int64
	for _, op := range h.Ops {
		if op.Kind == seqcheck.Dequeue {
			if op.Bottom {
				t.Fatalf("unexpected ⊥: %+v", op)
			}
			deqElems = append(deqElems, op.Elem.Seq)
		}
	}
	if len(deqElems) != 2 || deqElems[0] != 0 || deqElems[1] != 1 {
		t.Fatalf("dequeues out of order: %v", deqElems)
	}
}

func TestDequeueEmptyReturnsBottom(t *testing.T) {
	cl := newCluster(t, Config{Processes: 3, Seed: 2})
	cl.Dequeue(cl.Client(0))
	cl.Dequeue(cl.Client(1))
	drainAndCheck(t, cl, 2000)
	for _, op := range cl.History().Ops {
		if !op.Bottom {
			t.Fatalf("dequeue on empty system must return ⊥: %+v", op)
		}
	}
}

func TestInterleavedProducersConsumers(t *testing.T) {
	cl := newCluster(t, Config{Processes: 8, Seed: 3, ShuffleTimeouts: true})
	rng := xrand.New(99)
	enq, deq := 0, 0
	for round := 0; round < 120; round++ {
		for i := 0; i < 3; i++ {
			p := rng.Intn(8)
			if rng.Bool(0.6) {
				cl.Enqueue(cl.Client(p))
				enq++
			} else {
				cl.Dequeue(cl.Client(p))
				deq++
			}
		}
		cl.Step()
	}
	drainAndCheck(t, cl, 20000)
	if got := int(cl.Issued()); got != enq+deq {
		t.Fatalf("issued %d, expected %d", got, enq+deq)
	}
	st := seqcheck.Summarize(cl.History())
	if st.Total != enq+deq {
		t.Fatalf("history has %d ops, expected %d", st.Total, enq+deq)
	}
	// Element conservation: everything enqueued is either dequeued or
	// still stored.
	returned := st.Dequeues - st.Bottoms
	if returned+cl.TotalStored() != enq {
		t.Fatalf("conservation broken: %d returned + %d stored != %d enqueued",
			returned, cl.TotalStored(), enq)
	}
}

func TestConsistencyAcrossSeedsSync(t *testing.T) {
	for seed := int64(10); seed < 18; seed++ {
		cl := newCluster(t, Config{Processes: 5, Seed: seed, ShuffleTimeouts: true})
		rng := xrand.New(seed * 7)
		clients := cl.ActiveClients()
		for round := 0; round < 60; round++ {
			for i := 0; i < 2; i++ {
				c := clients[rng.Intn(len(clients))]
				if rng.Bool(0.5) {
					cl.Enqueue(c)
				} else {
					cl.Dequeue(c)
				}
			}
			cl.Step()
		}
		drainAndCheck(t, cl, 20000)
	}
}

func TestConsistencyAsync(t *testing.T) {
	// The asynchronous model with non-FIFO delivery is where sequential
	// consistency is actually at risk; sweep several seeds.
	for seed := int64(20); seed < 30; seed++ {
		cl := newCluster(t, Config{
			Processes: 4, Seed: seed, Async: true, MaxDelay: 12, TimeoutEvery: 5,
		})
		rng := xrand.New(seed)
		clients := cl.ActiveClients()
		for burst := 0; burst < 30; burst++ {
			c := clients[rng.Intn(len(clients))]
			if rng.Bool(0.5) {
				cl.Enqueue(c)
			} else {
				cl.Dequeue(c)
			}
			cl.Run(int64(1 + rng.Intn(20)))
		}
		drainAndCheck(t, cl, 100000)
	}
}

func TestAnchorWindowMatchesContents(t *testing.T) {
	cl := newCluster(t, Config{Processes: 4, Seed: 5})
	for i := 0; i < 10; i++ {
		cl.Enqueue(cl.Client(i % 4))
	}
	drainAndCheck(t, cl, 5000)
	a := cl.AnchorNode()
	if a == nil {
		t.Fatalf("no anchor")
	}
	if size := a.AnchorState().Size(); size != 10 {
		t.Fatalf("anchor window size %d, want 10", size)
	}
	if cl.TotalStored() != 10 {
		t.Fatalf("stored %d, want 10", cl.TotalStored())
	}
	for i := 0; i < 10; i++ {
		cl.Dequeue(cl.Client(i % 4))
	}
	drainAndCheck(t, cl, 5000)
	a = cl.AnchorNode()
	if size := a.AnchorState().Size(); size != 0 {
		t.Fatalf("anchor window size %d after draining, want 0", size)
	}
	if cl.TotalStored() != 0 {
		t.Fatalf("stored %d after draining, want 0", cl.TotalStored())
	}
}

func TestPerClientFIFOOrder(t *testing.T) {
	// One producer, one consumer on different processes: strict FIFO of
	// the producer's elements.
	cl := newCluster(t, Config{Processes: 2, Seed: 6})
	prod, cons := cl.Client(0), cl.Client(1)
	const k = 20
	for i := 0; i < k; i++ {
		cl.Enqueue(prod)
	}
	drainAndCheck(t, cl, 5000)
	for i := 0; i < k; i++ {
		cl.Dequeue(cons)
	}
	drainAndCheck(t, cl, 5000)
	// Collect dequeues in the consumer's issue order (completions arrive
	// in reply order, which races; the issue order is what FIFO promises).
	bySeq := map[int64]int64{}
	for _, op := range cl.History().Ops {
		if op.Kind == seqcheck.Dequeue && !op.Bottom {
			bySeq[op.LocalSeq] = op.Elem.Seq
		}
	}
	if len(bySeq) != k {
		t.Fatalf("got %d dequeues, want %d", len(bySeq), k)
	}
	i := 0
	for seq := int64(0); i < k && seq <= 1000; seq++ {
		if elem, ok := bySeq[seq]; ok {
			if elem != int64(i) {
				t.Fatalf("dequeue issue-index %d returned element %d", i, elem)
			}
			i++
		}
	}
	if i != k {
		t.Fatalf("only matched %d of %d dequeues", i, k)
	}
}

func TestValuesAreUniqueAndDense(t *testing.T) {
	cl := newCluster(t, Config{Processes: 3, Seed: 7})
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			cl.Dequeue(cl.Client(i % 3))
		} else {
			cl.Enqueue(cl.Client(i % 3))
		}
	}
	drainAndCheck(t, cl, 5000)
	seen := map[int64]bool{}
	max := int64(0)
	for _, op := range cl.History().Ops {
		if op.Value == seqcheck.NoValue {
			t.Fatalf("queue op without value: %+v", op)
		}
		if seen[op.Value] {
			t.Fatalf("duplicate value %d", op.Value)
		}
		seen[op.Value] = true
		if op.Value > max {
			max = op.Value
		}
	}
	if int(max) != len(seen) {
		t.Fatalf("values not dense: max %d over %d ops", max, len(seen))
	}
}

func TestBatchSizeStaysSmall(t *testing.T) {
	// Theorem 18: run length stays O(log n); with a single request type
	// alternation per client per round it stays tiny.
	cl := newCluster(t, Config{Processes: 6, Seed: 8})
	rng := xrand.New(1)
	clients := cl.ActiveClients()
	for round := 0; round < 200; round++ {
		c := clients[rng.Intn(len(clients))]
		if rng.Bool(0.5) {
			cl.Enqueue(c)
		} else {
			cl.Dequeue(c)
		}
		cl.Step()
	}
	drainAndCheck(t, cl, 20000)
	if m := cl.Metrics().MaxBatchRuns; m > 64 {
		t.Fatalf("max batch runs %d, expected small", m)
	}
}

func TestEngineAccountingClean(t *testing.T) {
	cl := newCluster(t, Config{Processes: 4, Seed: 9})
	for i := 0; i < 12; i++ {
		cl.Enqueue(cl.Client(i % 4))
		cl.Dequeue(cl.Client((i + 1) % 4))
	}
	drainAndCheck(t, cl, 5000)
	// Let in-flight serves settle, then verify no messages are stuck.
	cl.Run(200)
	if inflight := cl.Engine().InFlight(); inflight > 100 {
		t.Fatalf("suspiciously many in-flight messages: %d", inflight)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() ([]seqcheck.Completion, Metrics) {
		cl := newCluster(t, Config{Processes: 4, Seed: 42, ShuffleTimeouts: true})
		rng := xrand.New(7)
		clients := cl.ActiveClients()
		for round := 0; round < 50; round++ {
			c := clients[rng.Intn(len(clients))]
			if rng.Bool(0.5) {
				cl.Enqueue(c)
			} else {
				cl.Dequeue(c)
			}
			cl.Step()
		}
		cl.Drain(10000)
		return cl.History().Ops, cl.Metrics()
	}
	a, am := run()
	b, bm := run()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("divergence at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if am != bm {
		t.Fatalf("metrics differ: %+v vs %+v", am, bm)
	}
}

func TestDHTFairness(t *testing.T) {
	// Lemma 4 / Corollary 19: elements spread evenly over nodes.
	cl := newCluster(t, Config{Processes: 16, Seed: 11})
	for i := 0; i < 600; i++ {
		cl.Enqueue(cl.Client(i % 16))
	}
	drainAndCheck(t, cl, 20000)
	sizes := cl.StoreSizes()
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	mean := 600.0 / float64(len(sizes))
	if float64(maxSize) > mean*8 {
		t.Fatalf("load imbalance: max %d vs mean %.1f", maxSize, mean)
	}
}

func TestModeQueueNoCombinedOps(t *testing.T) {
	cl := newCluster(t, Config{Processes: 2, Seed: 12, Mode: batch.Queue})
	c := cl.Client(0)
	cl.Enqueue(c)
	cl.Dequeue(c)
	drainAndCheck(t, cl, 2000)
	if cl.Metrics().CombinedOps != 0 {
		t.Fatalf("queue mode must not combine ops")
	}
}

// TestAnchorProcessMatchesBootstrap pins the pure derivation used by the
// chaos harness to spare the anchor-hosting member against the cluster
// the same (seed, procs) pair actually boots.
func TestAnchorProcessMatchesBootstrap(t *testing.T) {
	for _, procs := range []int{2, 3, 4, 8, 16} {
		for seed := int64(0); seed < 20; seed++ {
			cl := newCluster(t, Config{Processes: procs, Seed: seed})
			a := cl.AnchorNode()
			if a == nil {
				t.Fatalf("procs=%d seed=%d: no anchor after bootstrap", procs, seed)
			}
			got := AnchorProcess(seed, procs)
			if want := int32(a.self.ID) / 3; got != want {
				t.Fatalf("procs=%d seed=%d: AnchorProcess = %d, bootstrap anchor is on process %d", procs, seed, got, want)
			}
		}
	}
}
