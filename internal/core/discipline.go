package core

import (
	"fmt"
	"sort"

	"skueue/internal/batch"
	"skueue/internal/seqcheck"
	"skueue/internal/stack"
)

// discipline is the mode-strategy seam of the wave protocol: everything
// the queue (§III), stack (§VI) and heap (Skeap-style bounded priority)
// semantics disagree on lives behind this interface, one instance per
// virtual node. The wave core in node.go owns the mode-independent
// machinery — firing, folding, serve routing, replay dedupe windows — and
// calls out here for batch composition, local pre-combining, stage-4
// completion gating, assignment shapes, per-op tickets, snapshot imaging
// of strategy state and the put-acknowledgment policy. node.go itself
// contains no mode comparisons (the lint suite asserts this).
//
// Strategy-private state (the stack's residual combiner word and
// outstanding-ack accounting) lives inside the strategy instance; shared
// per-node buffers (Node.pending) stay on the node.
//
//skueue:discipline-seam batch.Mode
type discipline interface {
	// mode names the batch algebra this strategy drives.
	mode() batch.Mode

	// Stage 1: bufferOp absorbs one locally generated operation (it may
	// complete immediately against buffered state — stack combining),
	// takeOwn drains buffered operations into the node's wave
	// contribution, and restoreOwn undoes a takeOwn whose fire could not
	// proceed (rare churn corner).
	bufferOp(n *Node, op pendingOp, now int64)
	takeOwn(n *Node) ownWave
	restoreOwn(n *Node, own ownWave)

	// Stages 2/3: the anchor's position assignment, the recursive
	// decomposition down the tree, and the per-operation expansion of one
	// run. These fix the serve/assignment shape of the mode.
	assign(st *batch.AnchorState, b batch.Batch) []batch.RunAssign
	decompose(assigns []batch.RunAssign, sub batch.Batch) []batch.RunAssign
	expand(runIndex int, ra batch.RunAssign, k int64) []batch.OpAssign

	// Stage 4: gated blocks the next aggregation while completions are
	// outstanding (§VI completion wait); opTicket extracts the ticket a
	// PUT carries or the bound a GET carries (zero outside stack mode);
	// trackGet/getResolved and trackPut/putAcked account the node's own
	// in-flight DHT operations. putAcked reports whether the ack is
	// accounted for and should reach the hosting layer's callback.
	gated(n *Node) bool
	opTicket(oa batch.OpAssign) int64
	trackGet(n *Node)
	getResolved(n *Node)
	trackPut(n *Node, reqID uint64)
	putAcked(n *Node, reqID uint64) bool

	// ackPuts is the replay/ack policy: whether a storing node must
	// acknowledge every PUT back to its issuer even without
	// Config.AckAllPuts (the stack's §VI wait needs it).
	ackPuts() bool

	// drained reports that no strategy-private client state is buffered
	// (leave handshake, §IV-B).
	drained(n *Node) bool

	// priLevels is the number of valid enqueue priority levels: 1 outside
	// heap mode (level 0 only), the configured level count in heap mode.
	priLevels() int

	// check verifies a completion history against this discipline's
	// correctness condition (Definition 1, or its priority generalization
	// for the heap).
	check(h *seqcheck.History) error

	// capture/restoreImage move strategy-private state into and out of
	// the member snapshot image (fail-stop recovery).
	capture(n *Node, img *NodeImage)
	restoreImage(n *Node, img *NodeImage)
}

// newDiscipline builds the strategy instance for one node of this
// cluster. This is the only place the configured mode is dispatched on.
func (cl *Cluster) newDiscipline() discipline {
	switch cl.cfg.Mode {
	case batch.Stack:
		return &stackDisc{modeDisc: modeDisc{batch.Stack}}
	case batch.Heap:
		levels := cl.cfg.HeapLevels
		if levels < 1 {
			levels = 1
		}
		return &heapDisc{fifoDisc: fifoDisc{modeDisc{batch.Heap}}, levels: levels}
	default:
		return &queueDisc{fifoDisc{modeDisc{batch.Queue}}}
	}
}

// modeDisc supplies the batch-algebra delegation every strategy shares.
type modeDisc struct{ m batch.Mode }

func (d modeDisc) mode() batch.Mode { return d.m }

func (d modeDisc) assign(st *batch.AnchorState, b batch.Batch) []batch.RunAssign {
	return st.Assign(d.m, b)
}

func (d modeDisc) decompose(assigns []batch.RunAssign, sub batch.Batch) []batch.RunAssign {
	return batch.Decompose(d.m, assigns, sub)
}

func (d modeDisc) expand(runIndex int, ra batch.RunAssign, k int64) []batch.OpAssign {
	return batch.Expand(d.m, runIndex, ra, k)
}

// drainPending is the shared uncombined Stage-1 drain: take every
// buffered operation in generation order and run-length encode it.
func drainPending(n *Node) ownWave {
	var w ownWave
	w.ops = n.pending
	n.pending = nil
	for _, op := range w.ops {
		if op.isDeq {
			w.B.AppendDequeue()
		} else {
			w.B.AppendEnqueue()
		}
	}
	return w
}

// fifoDisc collects the behavior the queue and heap strategies share:
// positions are never reused, so there are no tickets, no stage-4
// completion wait, no ack accounting and no strategy-private buffers.
// It is a partial base, not a discipline itself — queueDisc and heapDisc
// complete it.
type fifoDisc struct{ modeDisc }

func (fifoDisc) bufferOp(n *Node, op pendingOp, now int64) { n.pending = append(n.pending, op) }

func (fifoDisc) restoreOwn(n *Node, own ownWave) { n.pending = append(own.ops, n.pending...) }

func (fifoDisc) gated(*Node) bool               { return false }
func (fifoDisc) opTicket(batch.OpAssign) int64  { return 0 }
func (fifoDisc) trackGet(*Node)                 {}
func (fifoDisc) getResolved(*Node)              {}
func (fifoDisc) trackPut(*Node, uint64)         {}
func (fifoDisc) putAcked(*Node, uint64) bool    { return true }
func (fifoDisc) ackPuts() bool                  { return false }
func (fifoDisc) drained(*Node) bool             { return true }
func (fifoDisc) priLevels() int                 { return 1 }
func (fifoDisc) capture(*Node, *NodeImage)      {}
func (fifoDisc) restoreImage(*Node, *NodeImage) {}

// queueDisc is the FIFO queue strategy (§III): buffered operations drain
// wholesale in generation order.
//
//skueue:discipline
type queueDisc struct{ fifoDisc }

func (queueDisc) takeOwn(n *Node) ownWave { return drainPending(n) }

func (queueDisc) check(h *seqcheck.History) error { return seqcheck.Check(seqcheck.Queue, h) }

// stackDisc is the LIFO stack strategy (§VI): local push/pop combining
// through the residual-word combiner, ticketed stage-4 operations with
// the completion wait, and mandatory put acknowledgments. The combiner
// and the outstanding-ack accounting are private to the strategy; the
// member snapshot carries them through capture/restoreImage, and
// statecomplete holds the strategy to the same field-coverage rule as
// the node itself.
//
//skueue:discipline
//skueue:snapshot-state NodeImage
type stackDisc struct {
	modeDisc
	combiner stack.Combiner
	// outstanding counts the node's own unconfirmed DHT operations
	// (ticketed PUTs and GETs); the §VI completion wait gates the next
	// aggregation on it. awaitingAcks holds the request IDs of the
	// unacknowledged PUTs, making the accounting idempotent: around a
	// fail-stop restart an ack can arrive twice (the replayed original
	// plus the dedupe re-ack), and a blind decrement would corrupt the
	// gate. earlyAcks (member mode only) parks link-replayed acks that
	// arrive before the journal replay re-registers their PUT.
	outstanding  int
	awaitingAcks map[uint64]struct{}
	earlyAcks    map[uint64]struct{}
}

func (d *stackDisc) combining(n *Node) bool { return !n.cl.cfg.DisableLocalCombining }

func (d *stackDisc) bufferOp(n *Node, op pendingOp, now int64) {
	if !d.combining(n) {
		n.pending = append(n.pending, op)
		return
	}
	if !op.isDeq {
		d.combiner.Push(stack.PendingOp{ReqID: op.reqID, Elem: op.elem, Born: op.born, LocalSeq: op.localSeq, Blob: op.blob})
		return
	}
	sop := stack.PendingOp{ReqID: op.reqID, Born: op.born, LocalSeq: op.localSeq}
	if match, ok := d.combiner.Pop(sop); ok {
		// Both operations complete on the spot, without value() ranks;
		// the verifier anchors them into ≺ as a combined block.
		n.cl.metrics.CombinedOps += 2
		n.cl.recordCompletion(seqcheck.Completion{
			Client: n.clientID, LocalSeq: match.LocalSeq,
			Kind: seqcheck.Push, Elem: match.Elem,
			Value: seqcheck.NoValue, Born: match.Born, Done: now, ReqID: match.ReqID,
			Blob: match.Blob,
		})
		n.cl.recordCompletion(seqcheck.Completion{
			Client: n.clientID, LocalSeq: op.localSeq,
			Kind: seqcheck.Pop, Elem: match.Elem,
			Value: seqcheck.NoValue, Born: op.born, Done: now, ReqID: op.reqID,
			Blob: match.Blob,
		})
	}
}

func (d *stackDisc) takeOwn(n *Node) ownWave {
	if !d.combining(n) {
		return drainPending(n)
	}
	var w ownWave
	pops, pushes := d.combiner.TakeResidual()
	for _, p := range pops {
		w.ops = append(w.ops, pendingOp{isDeq: true, reqID: p.ReqID, born: p.Born, localSeq: p.LocalSeq})
	}
	for _, p := range pushes {
		w.ops = append(w.ops, pendingOp{elem: p.Elem, reqID: p.ReqID, born: p.Born, localSeq: p.LocalSeq, blob: p.Blob})
	}
	w.B = batch.MakeStack(int64(len(pops)), int64(len(pushes)))
	return w
}

func (d *stackDisc) restoreOwn(n *Node, own ownWave) {
	if !d.combining(n) {
		n.pending = append(own.ops, n.pending...)
		return
	}
	a := own.B.NumDequeues()
	for i, op := range own.ops {
		sop := stack.PendingOp{ReqID: op.reqID, Elem: op.elem, Born: op.born, LocalSeq: op.localSeq, Blob: op.blob}
		if int64(i) < a {
			d.combiner.RestorePop(sop)
		} else {
			d.combiner.RestorePush(sop)
		}
	}
}

func (d *stackDisc) gated(n *Node) bool {
	return !n.cl.cfg.DisableStage4Wait && d.outstanding > 0
}

func (d *stackDisc) opTicket(oa batch.OpAssign) int64 { return oa.Ticket }

func (d *stackDisc) trackGet(*Node)    { d.outstanding++ }
func (d *stackDisc) getResolved(*Node) { d.outstanding-- }

func (d *stackDisc) trackPut(n *Node, reqID uint64) {
	d.outstanding++
	if d.awaitingAcks == nil {
		d.awaitingAcks = make(map[uint64]struct{})
	}
	d.awaitingAcks[reqID] = struct{}{}
	if _, ok := d.earlyAcks[reqID]; ok {
		// The ack already arrived via link replay while this op was
		// still being re-injected from the journal (see earlyAcks).
		delete(d.earlyAcks, reqID)
		delete(d.awaitingAcks, reqID)
		d.outstanding--
		n.cl.logf("core: %v claiming parked ack for PUT %d (restart replay)", n.self, reqID)
		if n.cl.onPutAck != nil {
			n.cl.onPutAck(reqID)
		}
	}
}

func (d *stackDisc) putAcked(n *Node, reqID uint64) bool {
	if _, awaited := d.awaitingAcks[reqID]; awaited {
		delete(d.awaitingAcks, reqID)
		d.outstanding--
		return true
	}
	if !n.cl.memberMode() {
		panic(fmt.Sprintf("core: node %v got ack for unawaited PUT %d", n.self, reqID))
	}
	// Either a duplicate ack around a fail-stop restart (replayed
	// original plus dedupe re-ack, already accounted) or a link-replayed
	// ack racing ahead of the journal replay that will re-register the
	// PUT. Park it so the re-registered op can claim it (see earlyAcks);
	// an unclaimed entry is inert.
	n.cl.logf("core: %v parking ack for unawaited PUT %d (restart replay)", n.self, reqID)
	if d.earlyAcks == nil {
		d.earlyAcks = make(map[uint64]struct{})
	}
	d.earlyAcks[reqID] = struct{}{}
	return false
}

func (d *stackDisc) ackPuts() bool { return true }

func (d *stackDisc) drained(*Node) bool {
	return d.combiner.Empty() && d.outstanding == 0
}

func (*stackDisc) priLevels() int { return 1 }

func (*stackDisc) check(h *seqcheck.History) error { return seqcheck.Check(seqcheck.Stack, h) }

//skueue:snapshot-capture stackDisc
func (d *stackDisc) capture(n *Node, img *NodeImage) {
	pops, pushes := d.combiner.Snapshot()
	img.Combiner = CombinerImage{Pops: stackOpImages(pops, true), Pushes: stackOpImages(pushes, false)}
	img.Outstanding = d.outstanding
	for reqID := range d.awaitingAcks {
		img.AwaitingAcks = append(img.AwaitingAcks, reqID)
	}
	sort.Slice(img.AwaitingAcks, func(i, j int) bool { return img.AwaitingAcks[i] < img.AwaitingAcks[j] })
	for reqID := range d.earlyAcks {
		img.EarlyAcks = append(img.EarlyAcks, reqID)
	}
	sort.Slice(img.EarlyAcks, func(i, j int) bool { return img.EarlyAcks[i] < img.EarlyAcks[j] })
}

//skueue:snapshot-restore stackDisc
func (d *stackDisc) restoreImage(n *Node, img *NodeImage) {
	d.combiner.Restore(stackOpsFromImages(img.Combiner.Pops), stackOpsFromImages(img.Combiner.Pushes))
	d.outstanding = img.Outstanding
	if len(img.AwaitingAcks) > 0 {
		d.awaitingAcks = make(map[uint64]struct{}, len(img.AwaitingAcks))
		for _, reqID := range img.AwaitingAcks {
			d.awaitingAcks[reqID] = struct{}{}
		}
	}
	if len(img.EarlyAcks) > 0 {
		d.earlyAcks = make(map[uint64]struct{}, len(img.EarlyAcks))
		for _, reqID := range img.EarlyAcks {
			d.earlyAcks[reqID] = struct{}{}
		}
	}
}

// heapDisc is the bounded-constant-priority heap strategy: levels FIFO
// queues, DequeueMin consuming the front of the lowest non-empty level.
// Positions are level-tagged and never reused, so stage 4 behaves like
// the queue's (fifoDisc). The one heap-specific piece is the Stage-1
// drain: only a maximal prefix of buffered operations whose canonical run
// indices are non-decreasing in generation order may ride one wave —
// within a wave the value() ranks follow run-index order, so a
// decreasing pair would invert the issuer's program order (Definition 1
// property 4). The remainder waits for the next wave.
//
//skueue:discipline
type heapDisc struct {
	fifoDisc
	levels int
}

func (d *heapDisc) priLevels() int { return d.levels }

func (d *heapDisc) check(h *seqcheck.History) error { return seqcheck.CheckPriority(h, d.levels) }

// heapRunIndex maps one buffered operation to its canonical run index.
func heapRunIndex(op pendingOp) int {
	if op.isDeq {
		return batch.HeapDeqRunIndex
	}
	return batch.HeapEnqRunIndex(op.pri)
}

func (d *heapDisc) takeOwn(n *Node) ownWave {
	var w ownWave
	cut, last := 0, -1
	for cut < len(n.pending) {
		ri := heapRunIndex(n.pending[cut])
		if ri < last {
			break
		}
		last = ri
		cut++
	}
	if cut == 0 {
		return w
	}
	w.ops = n.pending[:cut:cut]
	if cut == len(n.pending) {
		n.pending = nil
	} else {
		n.pending = append([]pendingOp(nil), n.pending[cut:]...)
	}
	var deqs int64
	enqs := make([]int64, d.levels)
	for _, op := range w.ops {
		if op.isDeq {
			deqs++
		} else {
			enqs[op.pri]++
		}
	}
	w.B = batch.MakeHeap(deqs, enqs)
	return w
}
