// Package core implements the Skueue protocol itself: the virtual nodes
// of the linearized De Bruijn overlay, the four-stage wave pipeline, and
// the join/leave machinery of the paper.
//
// # Structure
//
// A Cluster owns a set of protocol Nodes — three per process, one per
// virtual node of Definition 2 — and wires them to a transport.Network
// backend that delivers their messages:
//
//   - New builds a simulated deployment: every node of the system lives in
//     one Cluster driven by the deterministic engine of internal/sim.
//   - NewMember builds one operating-system process's share of a
//     networked deployment over internal/transport/tcp; the bootstrap
//     topology is derived from the shared seed, so members wire themselves
//     without coordination, and later arrivals enter through JoinRemote.
//
// Node (node.go) is the per-node state machine: TIMEOUT fires the wave
// stages of Algorithms 1–2 — buffered operations fold into batches
// (Stage 1, internal/batch), the anchor assigns position intervals
// (Stage 2), assignments decompose back down the aggregation tree
// (Stage 3), and the resulting PUTs and GETs route over the overlay into
// the DHT fragments (Stage 4, internal/ldb + internal/dht).
//
// Churn (churn.go) implements §IV: joins relay through responsible nodes
// until an update phase splices them into the ring; leaves drain, hand
// their state to the left neighbour, and dissolve through replacement
// nodes absorbed triad-atomically.
//
// messages.go declares the wave messages, churn.go the churn control
// messages; wire.go registers them all with the network codec
// (internal/wire) for deployments whose members exchange them over TCP.
//
// Execution histories are recorded per Cluster (per member, in networked
// mode) and checked against the paper's Definition 1 by
// internal/seqcheck; networked deployments merge member histories first.
package core
