package core

import (
	"errors"
	"fmt"

	"skueue/internal/batch"
	"skueue/internal/ldb"
	"skueue/internal/seqcheck"
	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// This file is the member-mode constructor of Cluster: one operating-
// system process's share of a networked Skueue deployment, running over a
// transport.Network backend (in practice internal/transport/tcp) instead
// of the simulator.
//
// The trick that makes distributed bootstrap coordination-free is that
// the initial topology is a pure function of the shared seed: process
// pid's three virtual nodes live at the globally agreed addresses
// NodeIDForProcess(pid, kind) with labels ldb.ProcessPoints(labels, pid),
// so every member can compute the full bootstrap ring locally and wire
// just its own nodes — no leader election, no wiring messages. Later
// arrivals go through the paper's JOIN protocol (JoinRemote), exactly as
// a simulated joiner would, except the routed JOIN requests cross real
// sockets.

// NewMember builds the Cluster fragment a networked member hosts: the
// processes in localPids, wired against the deterministic bootstrap ring
// of cfg.Processes processes. The backend must also implement
// transport.Registry, because bootstrap node addresses are fixed.
//
// A member that joins after bootstrap passes no localPids (its process
// enters through JoinRemote); cfg.Processes then only documents the
// bootstrap size and may be zero.
func NewMember(cfg Config, memberIndex int32, localPids []int32, net transport.Network) (*Cluster, error) {
	reg, ok := net.(transport.Registry)
	if !ok {
		return nil, errors.New("core: member backend does not support fixed-address registration")
	}
	if memberIndex < 0 {
		return nil, fmt.Errorf("core: invalid member index %d", memberIndex)
	}
	for _, pid := range localPids {
		if pid < 0 || int(pid) >= cfg.Processes {
			return nil, fmt.Errorf("core: local pid %d outside bootstrap range [0,%d)", pid, cfg.Processes)
		}
	}
	RegisterWireTypes()
	cl := &Cluster{
		cfg:     cfg,
		net:     net,
		reg:     reg,
		labels:  xrand.NewHasher(cfg.Seed, "labels"),
		keyHash: xrand.NewHasher(cfg.Seed, "positions"),
		nodes:   make(map[transport.NodeID]*Node),
		hist:    &seqcheck.History{},
		reqBase: uint64(memberIndex+1) << ReqIDMemberShift,
		// Networked clusters allocate process IDs through the seed member
		// (see internal/server); the local counter is never consulted.
		nextProc: int32(cfg.Processes),
	}

	// Compute the full bootstrap ring from the seed, spawn only our share.
	var refs []ldb.Ref
	for pid := int32(0); pid < int32(cfg.Processes); pid++ {
		l, m, r := ldb.ProcessPoints(cl.labels, uint64(pid))
		points := [3]ldb.Point{ldb.Left: l, ldb.Middle: m, ldb.Right: r}
		for k, pt := range points {
			kind := ldb.Kind(k)
			refs = append(refs, ldb.Ref{ID: NodeIDForProcess(pid, kind), Point: pt, Kind: kind})
		}
	}
	for _, pid := range localPids {
		proc, _ := cl.spawnProcessAt(pid)
		proc.Joining = false
	}
	if len(refs) > 0 {
		ring := ldb.NewRing(refs)
		for i := 0; i < ring.Len(); i++ {
			n, ok := cl.nodes[ring.At(i).ID]
			if !ok {
				continue // hosted by another member
			}
			n.pred = ring.Pred(i)
			n.succ = ring.Succ(i)
			n.churn.joining = false
			n.sibIn = [3]bool{true, true, true}
		}
		if anchor, ok := cl.nodes[ring.Min().ID]; ok {
			anchor.anchorRole = true
			anchor.ast = batch.NewAnchorState()
		}
	}
	return cl, nil
}

// JoinRemote spawns the local process pid in joining state and routes its
// three JOIN requests through contact, a node hosted by an existing member
// (§IV-A). The pid must have been allocated by the seed member so it is
// globally unique. It returns the local process index for Client().
func (cl *Cluster) JoinRemote(pid int32, contact transport.NodeID) int {
	_, prefs := cl.spawnProcessAt(pid)
	for _, ref := range prefs {
		cl.net.Send(ref.ID, contact, routedMsg{
			RS:    ldb.RouteState{Target: ref.Point.Label, BitsLeft: -1},
			Inner: joinReq{NewNode: ref},
		})
	}
	return len(cl.procs) - 1
}

// LocalProcs returns the indices (into Processes()) of the live processes
// this cluster actually hosts — in member mode, the ones client requests
// can be injected at.
func (cl *Cluster) LocalProcs() []int {
	var out []int
	for i, p := range cl.procs {
		if !p.Left {
			out = append(out, i)
		}
	}
	return out
}
