package core

import (
	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/fixpoint"
	"skueue/internal/ldb"
	"skueue/internal/transport"
)

// aggregateMsg carries a combined batch one hop up the aggregation tree
// (Stage 1, Algorithm 1: AGGREGATE). WaveSeq is the sender's fire
// counter: the parent echoes it in the matching serveMsg, so a node can
// recognize a serve for a wave it no longer has in flight — which only
// happens around a fail-stop restart, when a rolled-back member re-fires
// a wave its peers partially saw (see internal/core/snapshot.go).
type aggregateMsg struct {
	From    ldb.Ref
	B       batch.Batch
	WaveSeq int64
}

// serveMsg carries decomposed run assignments one hop down the aggregation
// tree (Stage 3, Algorithm 2: SERVE), echoing the aggregateMsg's WaveSeq.
// A non-zero UpdateEpoch signals the start of that update phase (§IV): no
// node may send new batches until the phase ends.
type serveMsg struct {
	Assigns     []batch.RunAssign
	UpdateEpoch int64
	WaveSeq     int64
}

// routedMsg wraps a payload travelling over the LDB towards the node
// responsible for a key (Lemma 3 routing).
type routedMsg struct {
	RS    ldb.RouteState
	Inner any
}

// putReq inserts an element into the DHT (Stage 4). It carries everything
// the storing node needs to record the enqueue completion (§VII measures
// an ENQUEUE as finished when the element is stored) and, in stack mode,
// to acknowledge completion to the issuer for the stage-4 wait.
type putReq struct {
	Pos    int64
	Ticket int64
	Elem   dht.Element
	Blob   []byte // opaque application payload stored with the element

	Requester transport.NodeID
	ReqID     uint64
	Born      int64
	Client    int32
	LocalSeq  int64
	Value     int64
	// Pri is the element's priority level (heap mode); it rides to the
	// storing node so the enqueue completion records the level the
	// priority checker replays against.
	Pri int32
}

// getReq removes an element from the DHT and delivers it to the requester
// (Stage 4). Bound is the stack ticket bound (§VI); queue gets use 0.
type getReq struct {
	Pos       int64
	Bound     int64
	Requester transport.NodeID
	ReqID     uint64
}

// getReply returns the element of a GET to its requester.
type getReply struct {
	ReqID uint64
	Entry dht.Entry
}

// putAck confirms a PUT was stored; only stack nodes request it (the
// §VI fix: a node must not start the next aggregation phase before all
// its stage-4 operations finished).
type putAck struct {
	ReqID uint64
}

// directMsg carries a DHT payload directly to a known node, bypassing
// routing: used when the responsible node forwards requests into the
// sub-interval of a joining node it relays for (§IV-A).
type directMsg struct {
	Key   fixpoint.Frac
	Inner any
}
