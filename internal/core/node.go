package core

import (
	"fmt"
	"sort"

	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/fixpoint"
	"skueue/internal/ldb"
	"skueue/internal/seqcheck"
	"skueue/internal/transport"
)

// pendingOp is one locally generated, not-yet-assigned queue operation.
type pendingOp struct {
	isDeq    bool
	elem     dht.Element
	reqID    uint64
	born     int64
	localSeq int64
	pri      int32  // priority level of a heap enqueue; zero otherwise
	blob     []byte // opaque payload riding with an enqueue (networked mode)
}

// subBatch remembers one component of the processing batch and where it
// came from: a child's sub-batch, or (From == transport.None) the node's
// own buffered operations. WaveSeq is the child's fire counter, echoed in
// the serve so the child can match (or reject) it after a restart. Fields
// are exported because sub-batches travel inside leave handoffs and
// absorb messages, which cross the wire under the TCP transport.
type subBatch struct {
	From    transport.NodeID
	B       batch.Batch
	WaveSeq int64
}

// ownWave is the node's own contribution to the current processing batch:
// the operations in order plus their run encoding.
type ownWave struct {
	ops []pendingOp
	B   batch.Batch
}

// getCtx is what the requester remembers about an in-flight GET.
type getCtx struct {
	born     int64
	localSeq int64
	value    int64
}

// heldServe is a replayed serve parked until its wave re-fires.
type heldServe struct {
	from    transport.NodeID
	assigns []batch.RunAssign
	epoch   int64
}

// Node is one virtual node of the linearized De Bruijn network running the
// Skueue protocol. A process emulates three of them (§II-A); each is an
// independent transport.Handler.
//
// Fail-stop recovery images every field through NodeImage (snapshot.go);
// the statecomplete analyzer enforces that a field is either part of the
// capture/restore paths or carries an explicit ephemeral justification.
//
//skueue:snapshot-state NodeImage
type Node struct {
	cl   *Cluster
	self ldb.Ref
	// clientID identifies this node as a request issuer in completion
	// records; -1 for replacement nodes, which never issue requests.
	clientID int32

	// Topology (maintained under churn).
	pred, succ       ldb.Ref
	sibL, sibM, sibR ldb.Ref
	// sibIn tracks which of the process's virtual nodes are integrated
	// ring members (indexed by ldb.Kind). A sibling-derived tree child is
	// only expected once that sibling announced its integration; joiners
	// of a process can be integrated in different update phases, and
	// waiting for a not-yet-integrated sibling would deadlock the wave.
	sibIn [3]bool
	//skueue:ephemeral -- derived route cache, recomputed from the topology on first use
	childCache []ldb.Ref
	//skueue:ephemeral -- validity bit of childCache, reset with it
	childCacheOK bool

	// disc is the mode strategy (queue, stack or heap): every
	// mode-specific behavior of the wave protocol lives behind it, along
	// with strategy-private state such as the stack's combiner and
	// outstanding-ack accounting. See discipline.go.
	disc discipline

	// Anchor role and state (§III-D). The role follows the leftmost node;
	// it is transferred explicitly during update phases.
	anchorRole bool
	ast        batch.AnchorState

	// Request generation.
	nextElemSeq  int64
	nextLocalSeq int64

	// waveSeq counts this node's wave fires; the current processing batch
	// (inBatch != nil) carries it upward and the parent's serve echoes it.
	waveSeq int64

	// Stage 1: own buffered operations (queue and heap mode, and
	// uncombined stack mode). The stack strategy's residual combiner
	// word lives inside disc.
	pending []pendingOp

	// Stage 1: sub-batches received from children, waiting to be folded.
	waiting []subBatch
	// The processing batch B: provenance plus own-op bookkeeping.
	// inBatch == nil means B is empty (the paper's B = (0)).
	inBatch []subBatch
	inOwn   ownWave

	// DHT fragment and in-flight GETs issued by this node.
	store       *dht.Store
	pendingGets map[uint64]getCtx

	// Replay-dedupe windows (member mode only; see replay.go): request
	// IDs of PUTs applied and GETs served here, so the re-executed tail
	// of a crashed peer's history cannot double-apply an operation.
	appliedPuts reqRing
	servedGets  reqRing
	// earlyReplies (member mode only; the stack strategy keeps the
	// analogous earlyAcks) parks link-replayed getReply frames that
	// arrive before the journal replay has
	// re-registered the operation they answer. After a fail-stop restart
	// the peer link re-delivers its unacked frames immediately, while
	// the restarted member is still re-injecting its journal tail wave
	// by wave — so a reply can land while pendingGets/awaitingAcks is
	// empty. Dropping it would lose the completion for good: when the
	// re-injected op finally sends its GET, the serving member's
	// servedGets window dedupes the request on the assumption that the
	// original reply is (or was) replayed by the link layer. Instead the
	// reply is parked here and consumed the moment the op re-registers.
	// Entries that are never claimed are genuine duplicates (the GET was
	// resolved before the snapshot cut, so its completion is already in
	// the restored history); request IDs are never reused, so a stale
	// entry can never be claimed by a different op, and the map is
	// bounded by the link-replay window.
	earlyReplies map[uint64]getReply
	// foldedWaves (member mode only) is the per-child cursor of the
	// newest wave this node has FOLDED into a processing batch for that
	// child. A restarted child re-fires the wave its snapshot rolled
	// back, and the re-sent aggregate can arrive after the original was
	// already folded — either already served, or still inside this
	// node's in-flight batch: folding it again would double-count its
	// operations at the anchor and orphan the fresh positions (nobody
	// ever fills or consumes them), wedging the structure. Instead the
	// re-send is dropped — the original serve, sent or still to come and
	// unacknowledged by the crashed child either way, answers the
	// re-fired wave.
	foldedWaves map[transport.NodeID]int64
	// heldServes (member mode only) parks replayed serves that arrive
	// AHEAD of this node's wave counter. After a restart the parent's
	// link replays every unacknowledged serve back-to-back — serve(w),
	// serve(w+1), ... — while the rolled-back node is still at wave w;
	// the later serves are not duplicates but the only copies of
	// assignments this incarnation has yet to reach, so they wait here
	// until the matching re-fire advances the counter.
	heldServes map[int64]heldServe

	// Churn (§IV) — see churn.go.
	churn churnState
}

var _ transport.Handler = (*Node)(nil)

// nb assembles the local neighbourhood view for the topology rules.
func (n *Node) nb() ldb.Neighborhood {
	return ldb.Neighborhood{
		Self: n.self, Pred: n.pred, Succ: n.succ,
		SibL: n.sibL, SibM: n.sibM, SibR: n.sibR,
	}
}

// children returns the aggregation-tree children: the structural children
// of §III-B plus any joining nodes this node relays for (§IV-A). A node
// that is itself still joining is a pure leaf hanging off its responsible
// node.
func (n *Node) children() []ldb.Ref {
	if n.churn.joining {
		return nil
	}
	if !n.childCacheOK {
		n.childCache = n.childCache[:0]
		for _, c := range n.nb().Children() {
			// Gate sibling-derived children on their integration; ring
			// successors are ring members by construction.
			if c.ID == n.sibM.ID && n.self.Kind == ldb.Left && !n.sibIn[ldb.Middle] {
				continue
			}
			if c.ID == n.sibR.ID && n.self.Kind == ldb.Middle && !n.sibIn[ldb.Right] {
				continue
			}
			n.childCache = append(n.childCache, c)
		}
		n.childCacheOK = true
	}
	if len(n.churn.joiners) == 0 {
		return n.childCache
	}
	out := make([]ldb.Ref, 0, len(n.childCache)+len(n.churn.joiners))
	out = append(out, n.childCache...)
	for _, j := range n.churn.joiners {
		out = append(out, j.Ref)
	}
	return out
}

// invalidateTopology drops caches after pred/succ/sibling updates.
func (n *Node) invalidateTopology() { n.childCacheOK = false }

// OnInit is a no-op: bootstrap wiring happens in Cluster before the run,
// and runtime spawns (join, leave replacement) wire explicitly.
func (n *Node) OnInit(ctx *transport.Context) {}

// OnTimeout is the paper's TIMEOUT action (Algorithm 1): when the
// processing batch is empty and every child contributed a sub-batch, fold
// the waiting data into the processing batch and push it towards the
// anchor — or, at the anchor, assign positions immediately.
func (n *Node) OnTimeout(ctx *transport.Context) {
	if n.churn.departed {
		return
	}
	n.churn.tick(ctx, n)
	if n.churn.departed || n.churn.updatePhase || n.churn.frozen() {
		return
	}
	if len(n.waiting) > 0 {
		n.bounceStaleWaiting(ctx)
	}
	if n.inBatch != nil {
		return
	}
	if n.stage4Gated() {
		return
	}
	kids := n.children()
	for _, k := range kids {
		if !n.hasWaitingFrom(k.ID) {
			return
		}
	}
	n.fire(ctx)
}

// bounceStaleWaiting returns buffered sub-batches whose senders are no
// longer our children. Keeping them could deadlock: the stale batch's
// sender blocks on being served, while the wave that would serve it blocks
// (transitively) on that sender's next batch. Bouncing makes the sender
// re-buffer and resubmit through its current parent.
func (n *Node) bounceStaleWaiting(ctx *transport.Context) {
	kids := n.children()
	keep := n.waiting[:0]
	for _, w := range n.waiting {
		current := false
		for _, k := range kids {
			if k.ID == w.From {
				current = true
				break
			}
		}
		if current {
			keep = append(keep, w)
		} else {
			ctx.Send(w.From, rejectBatch{B: w.B})
		}
	}
	n.waiting = keep
}

// stage4Gated reports whether the strategy's completion wait (§VI for
// the stack) blocks the next aggregation phase.
func (n *Node) stage4Gated() bool {
	return n.disc.gated(n)
}

// isCurrentChild reports whether id is one of our aggregation-tree
// children right now.
func (n *Node) isCurrentChild(id transport.NodeID) bool {
	for _, c := range n.children() {
		if c.ID == id {
			return true
		}
	}
	return false
}

func (n *Node) hasWaitingFrom(id transport.NodeID) bool {
	for _, w := range n.waiting {
		if w.From == id {
			return true
		}
	}
	return false
}

// takeOwnOps drains the node's own buffered operations into an ownWave.
func (n *Node) takeOwnOps() ownWave {
	return n.disc.takeOwn(n)
}

// takeWaiting drains the sub-batches for the next wave: the OLDEST
// pending wave of each child. Normally that is everything buffered (one
// wave per child); during a fail-stop replay a child's re-sent waves
// queue up here and must be folded one per fire, in order, to line up
// with the serves already in flight for them.
func (n *Node) takeWaiting() []subBatch {
	if !n.cl.memberMode() {
		// The simulator delivers exactly once, so a second pending wave
		// per child is impossible (OnMessage panics): take everything,
		// allocation-free.
		out := n.waiting
		n.waiting = nil
		return out
	}
	chosen := make([]subBatch, 0, len(n.waiting))
	var rest []subBatch
	pick := make(map[transport.NodeID]int, len(n.waiting))
	for _, w := range n.waiting {
		i, dup := pick[w.From]
		if !dup {
			pick[w.From] = len(chosen)
			chosen = append(chosen, w)
			continue
		}
		if w.WaveSeq < chosen[i].WaveSeq {
			rest = append(rest, chosen[i])
			chosen[i] = w
		} else {
			rest = append(rest, w)
		}
	}
	n.waiting = rest
	return chosen
}

// fire executes the Stage 1 transfer W -> B (Algorithm 1).
func (n *Node) fire(ctx *transport.Context) {
	own := n.takeOwnOps()
	own.B.J = n.churn.takeJoinCount()
	own.B.L = n.churn.takeLeaveCount()
	taken := n.takeWaiting()
	subs := make([]subBatch, 0, 1+len(taken))
	subs = append(subs, subBatch{From: transport.None, B: own.B})
	subs = append(subs, taken...)
	if n.cl.memberMode() {
		if len(subs) > 2 {
			// Fold child sub-batches in sorted order, not arrival order:
			// the fold order fixes how a later serve's intervals decompose
			// over the children, and after a fail-stop restart the
			// re-fired wave must decompose exactly like its crashed
			// incarnation did even though the replayed sub-batches may
			// arrive interleaved differently across links. Any fold order
			// is a valid serialization; a deterministic one makes replay
			// exact.
			sort.Slice(subs[1:], func(i, j int) bool { return subs[1+i].From < subs[1+j].From })
		}
		// Advance the folded-wave cursors: from here on, a duplicate of
		// any of these sub-batches is a restart re-send to drop.
		for _, sb := range subs[1:] {
			if sb.WaveSeq == 0 {
				continue
			}
			if n.foldedWaves == nil {
				n.foldedWaves = make(map[transport.NodeID]int64)
			}
			if sb.WaveSeq > n.foldedWaves[sb.From] {
				n.foldedWaves[sb.From] = sb.WaveSeq
			}
		}
	}
	n.inBatch = subs
	n.inOwn = own
	n.waveSeq++

	parts := make([]batch.Batch, len(subs))
	for i, sb := range subs {
		parts[i] = sb.B
	}
	combined := batch.Combine(parts...)
	n.cl.metrics.noteBatch(combined)

	if n.anchorRole {
		n.noteFire()
		n.assignAndServe(ctx, combined)
		return
	}
	if n.churn.joining {
		// Joining nodes relay their requests through the responsible node,
		// which treats them as extra aggregation-tree children (§IV-A).
		n.noteFire()
		ctx.Send(n.churn.relayVia.ID, aggregateMsg{From: n.self, B: combined, WaveSeq: n.waveSeq})
		n.takeHeldServe(ctx)
		return
	}
	parent, ok := n.nb().Parent()
	if !ok {
		// Structurally leftmost but not (yet) holding the anchor role:
		// happens only transiently during churn; hold the batch until the
		// role arrives.
		n.inBatch = nil
		n.waveSeq--
		n.restoreOwn(own, subs[1:])
		return
	}
	n.noteFire()
	ctx.Send(parent.ID, aggregateMsg{From: n.self, B: combined, WaveSeq: n.waveSeq})
	n.takeHeldServe(ctx)
}

// takeHeldServe applies a replayed serve parked for the wave this node
// just fired (see heldServes). The aggregate was still sent — the parent
// recognizes it as already served and drops it — so ordering matches a
// serve that had arrived the instant after the fire.
func (n *Node) takeHeldServe(ctx *transport.Context) {
	if len(n.heldServes) == 0 {
		return
	}
	hs, ok := n.heldServes[n.waveSeq]
	if !ok {
		return
	}
	delete(n.heldServes, n.waveSeq)
	n.cl.logf("core: %v applying held serve for wave %d (restart replay)", n.self, n.waveSeq)
	if n.inBatch != nil && !n.assignsFit(hs.assigns) {
		// No second copy of a held serve exists; refusing it stops this
		// node's waves rather than corrupting positions. Replay of an
		// unchanged snapshot+journal is deterministic, so reaching this
		// line means a replay-divergence bug — surface it loudly.
		n.cl.logf("core: %v REFUSING held serve with mismatched shape for wave %d — replay diverged; member wedged pending restart (state remains recoverable)", n.self, n.waveSeq)
		return
	}
	n.serve(ctx, hs.assigns, hs.epoch, hs.from)
}

// noteFire reports a committed wave fire to the hosting layer (operation
// journal wave boundaries). It runs only on the paths that actually send
// or assign the batch — an undone fire (restoreOwn) must not count.
func (n *Node) noteFire() {
	if n.cl.onFire != nil {
		n.cl.onFire(n.self.ID, n.waveSeq)
	}
}

// restoreOwn undoes a fire that could not proceed (rare churn corner).
func (n *Node) restoreOwn(own ownWave, kids []subBatch) {
	n.disc.restoreOwn(n, own)
	n.churn.restoreCounts(own.B.J, own.B.L)
	n.waiting = append(kids, n.waiting...)
}

// assignAndServe is Stage 2 at the anchor (Algorithm 2: ASSIGN).
func (n *Node) assignAndServe(ctx *transport.Context, combined batch.Batch) {
	n.cl.metrics.WavesAssigned++
	epoch := n.churn.anchorObserve(n, combined)
	assigns := n.disc.assign(&n.ast, combined)
	n.cl.metrics.noteQueueSize(n.ast.Size())
	n.serve(ctx, assigns, epoch, transport.None)
}

// serve is Stage 3 (Algorithm 2: SERVE): decompose the run assignments
// over the remembered sub-batches and forward each share — down the tree
// for child batches, into Stage 4 for own operations. A non-zero epoch
// starts the update phase of §IV.
func (n *Node) serve(ctx *transport.Context, assigns []batch.RunAssign, epoch int64, from transport.NodeID) {
	if n.inBatch == nil {
		if n.cl.memberMode() {
			// A restarted member can receive the serve for a wave its
			// snapshot predates (the fire was re-executed, or the wave was
			// a pre-crash phantom). The restart protocol only guarantees
			// this for empty waves, which lose nothing when dropped.
			n.cl.logf("core: %v dropping SERVE without a processing batch (restart replay)", n.self)
			return
		}
		panic(fmt.Sprintf("core: node %v received SERVE without a processing batch", n.self))
	}
	subs := n.inBatch
	own := n.inOwn
	n.inBatch = nil
	n.inOwn = ownWave{}

	if epoch != 0 {
		n.churn.enterUpdatePhase(ctx, from, epoch, subs)
	}
	for _, sb := range subs {
		d := n.disc.decompose(assigns, sb.B)
		if sb.From == transport.None {
			n.applyOwn(ctx, own, d)
		} else {
			ctx.Send(sb.From, serveMsg{Assigns: d, UpdateEpoch: epoch, WaveSeq: sb.WaveSeq})
		}
	}
	if epoch != 0 {
		n.churn.startIntegration(ctx, n)
	}
}

// applyOwn is Stage 4 for the node's own operations: turn every assigned
// position into a PUT or GET, and complete ⊥ dequeues immediately.
func (n *Node) applyOwn(ctx *transport.Context, own ownWave, d []batch.RunAssign) {
	cur := 0
	for ri, k := range own.B.Runs {
		ops := n.disc.expand(ri, d[ri], k)
		for j := int64(0); j < k; j++ {
			n.dispatchOp(ctx, own.ops[cur], ops[j], batch.IsDeqIndex(ri))
			cur++
		}
	}
	if cur != len(own.ops) {
		panic(fmt.Sprintf("core: node %v own-op bookkeeping mismatch: %d runs ops, %d pending", n.self, cur, len(own.ops)))
	}
}

// resolveGet completes an in-flight GET of this node's client with the
// given reply. The caller has checked that pendingGets holds the request.
func (n *Node) resolveGet(ctx *transport.Context, m getReply) {
	gc := n.pendingGets[m.ReqID]
	delete(n.pendingGets, m.ReqID)
	n.disc.getResolved(n)
	n.cl.recordCompletion(seqcheck.Completion{
		Client: n.clientID, LocalSeq: gc.localSeq,
		Kind: seqcheck.Dequeue, Elem: m.Entry.Elem,
		Value: gc.value, Born: gc.born, Done: ctx.Now(), ReqID: m.ReqID,
		Blob: m.Entry.Blob,
	})
}

func (n *Node) dispatchOp(ctx *transport.Context, po pendingOp, oa batch.OpAssign, isDeq bool) {
	if isDeq && oa.Pos == batch.NoPosition {
		// Empty-structure dequeue: returns ⊥ right here (§III-E).
		n.cl.recordCompletion(seqcheck.Completion{
			Client: n.clientID, LocalSeq: po.localSeq,
			Kind: seqcheck.Dequeue, Bottom: true,
			Value: oa.Value, Born: po.born, Done: ctx.Now(), ReqID: po.reqID,
		})
		return
	}
	key := n.cl.keyHash.Frac(uint64(oa.Pos))
	if isDeq {
		bound := n.disc.opTicket(oa)
		n.pendingGets[po.reqID] = getCtx{born: po.born, localSeq: po.localSeq, value: oa.Value}
		n.disc.trackGet(n)
		if m, ok := n.earlyReplies[po.reqID]; ok {
			// The reply already arrived via link replay while this op was
			// still being re-injected from the journal (see earlyReplies).
			// Complete it here; the serving member would only dedupe a
			// re-sent GET anyway.
			delete(n.earlyReplies, po.reqID)
			n.cl.logf("core: %v claiming parked reply for GET %d (restart replay)", n.self, po.reqID)
			n.resolveGet(ctx, m)
			return
		}
		n.sendRouted(ctx, key, getReq{Pos: oa.Pos, Bound: bound, Requester: n.self.ID, ReqID: po.reqID})
		return
	}
	ticket := n.disc.opTicket(oa)
	n.disc.trackPut(n, po.reqID)
	n.sendRouted(ctx, key, putReq{
		Pos: oa.Pos, Ticket: ticket, Elem: po.elem, Blob: po.blob,
		Requester: n.self.ID, ReqID: po.reqID, Born: po.born,
		Client: n.clientID, LocalSeq: po.localSeq, Value: oa.Value, Pri: po.pri,
	})
}

// sendRouted starts LDB routing of a payload towards key, beginning at
// this node. A joining node that is not yet part of the ring injects the
// message through the node responsible for it instead (§IV-A).
func (n *Node) sendRouted(ctx *transport.Context, key fixpoint.Frac, inner any) {
	if n.churn.relayVia.Valid() {
		ctx.Send(n.churn.relayVia.ID, routedMsg{RS: ldb.RouteState{Target: key, BitsLeft: -1}, Inner: inner})
		return
	}
	rs := n.nb().NewRoute(key)
	n.routeStep(ctx, routedMsg{RS: rs, Inner: inner})
}

// routeStep advances a routed message by one hop, or consumes it here.
func (n *Node) routeStep(ctx *transport.Context, m routedMsg) {
	if n.churn.joining {
		// We do not know our ring neighbours yet; deciding now could
		// misdeliver. Hold the message until integration (§IV-A: a request
		// "can wait until it has learned to know a node that is closer").
		n.churn.routedHold = append(n.churn.routedHold, m)
		return
	}
	if m.RS.BitsLeft < 0 {
		// Injected by a joiner through us: start a fresh route here.
		m.RS = n.nb().NewRoute(m.RS.Target)
	}
	next, out, deliver := n.nb().NextHop(m.RS)
	if deliver {
		n.cl.metrics.noteRoute(out.Hops)
		n.deliverRouted(ctx, m.RS.Target, m.Inner)
		return
	}
	m.RS = out
	ctx.Send(next.ID, m)
}

// deliverRouted handles a payload that routing delivered at this node.
func (n *Node) deliverRouted(ctx *transport.Context, key fixpoint.Frac, inner any) {
	switch inner.(type) {
	case putReq, getReq, migrateEntry, migrateParked:
		n.dispatchDHT(ctx, key, inner)
	default:
		n.handleRoutedChurn(ctx, inner)
	}
}

// dispatchDHT places a DHT payload with the node that currently owns its
// key: a relayed joiner's sub-interval (§IV-A), this node itself, or —
// when ownership moved while the payload was in flight — the ring, via a
// fresh route. This single choke point makes data placement self-healing
// under churn.
func (n *Node) dispatchDHT(ctx *transport.Context, key fixpoint.Frac, inner any) {
	if j, ok := n.churn.joinerFor(key, n.self); ok {
		ctx.Send(j.Ref.ID, directMsg{Key: key, Inner: inner})
		return
	}
	if n.churn.joining {
		if n.churn.rangeValid && fixpoint.InCWRange(key, n.churn.rangeFrom, n.churn.rangeEnd) {
			n.handleDHT(ctx, inner)
			return
		}
		// Not ours: bounce through the responsible node.
		ctx.Send(n.churn.relayVia.ID, directMsg{Key: key, Inner: inner})
		return
	}
	if !n.nb().Responsible(key) {
		n.sendRouted(ctx, key, inner)
		return
	}
	n.handleDHT(ctx, inner)
}

// handleDHT executes a delivered PUT or GET against the local fragment.
func (n *Node) handleDHT(ctx *transport.Context, inner any) {
	switch m := inner.(type) {
	case putReq:
		if n.cl.memberMode() && (n.appliedPuts.has(m.ReqID) || n.store.Has(m.Pos, m.Ticket)) {
			// Replayed duplicate after a fail-stop restart: the element
			// was already stored — and possibly already consumed again,
			// which is why the request-ID window backs up the positional
			// check — and its completion recorded. Re-acknowledge: the
			// ack, not the store, may be what the crash swallowed.
			n.cl.logf("core: %v dropping duplicate PUT %d at pos=%d (restart replay)", n.self, m.ReqID, m.Pos)
			if n.disc.ackPuts() || n.cl.cfg.AckAllPuts {
				ctx.Send(m.Requester, putAck{ReqID: m.ReqID})
			}
			return
		}
		released := n.store.PutBlob(m.Pos, m.Ticket, m.Elem, m.Blob)
		if n.cl.memberMode() {
			n.appliedPuts.add(m.ReqID)
		}
		// The enqueue finishes the moment its element is stored (§VII).
		n.cl.recordCompletion(seqcheck.Completion{
			Client: m.Client, LocalSeq: m.LocalSeq,
			Kind: seqcheck.Enqueue, Elem: m.Elem,
			Value: m.Value, Born: m.Born, Done: ctx.Now(), ReqID: m.ReqID,
			Pri: m.Pri,
		})
		if n.disc.ackPuts() || n.cl.cfg.AckAllPuts {
			ctx.Send(m.Requester, putAck{ReqID: m.ReqID})
		}
		for _, rel := range released {
			n.noteServedGet(rel.Waiter.ReqID)
			ctx.Send(rel.Waiter.Requester, getReply{ReqID: rel.Waiter.ReqID, Entry: rel.Entry})
		}
	case getReq:
		if n.cl.memberMode() && n.servedGets.has(m.ReqID) {
			// Replayed duplicate of a GET this node already served: the
			// original reply is replayed by the link layer (it stays
			// unacknowledged until the requester's snapshot covers it).
			// Serving — or parking — again would consume or steal a
			// second element; in stack mode, where positions are reused,
			// a stale parked waiter would swallow a future push.
			n.cl.logf("core: %v dropping duplicate GET %d at pos=%d (restart replay)", n.self, m.ReqID, m.Pos)
			return
		}
		if ent, ok := n.store.Get(m.Pos, m.Bound); ok {
			n.noteServedGet(m.ReqID)
			ctx.Send(m.Requester, getReply{ReqID: m.ReqID, Entry: ent})
			return
		}
		// GET outran its PUT: park until the element arrives (§III-F).
		n.store.Park(m.Pos, dht.Waiter{Requester: m.Requester, ReqID: m.ReqID, Bound: m.Bound})
		n.cl.metrics.ParkedGets++
	case migrateEntry:
		if n.cl.memberMode() && n.store.Has(m.Ent.Pos, m.Ent.Ticket) {
			n.cl.logf("core: %v dropping duplicate migrated entry at pos=%d (restart replay)", n.self, m.Ent.Pos)
			return
		}
		for _, rel := range n.store.Insert(m.Ent) {
			n.noteServedGet(rel.Waiter.ReqID)
			ctx.Send(rel.Waiter.Requester, getReply{ReqID: rel.Waiter.ReqID, Entry: rel.Entry})
		}
	case migrateParked:
		// The element may already be here (it migrated first).
		if ent, ok := n.store.Get(m.Pos, m.W.Bound); ok {
			n.noteServedGet(m.W.ReqID)
			ctx.Send(m.W.Requester, getReply{ReqID: m.W.ReqID, Entry: ent})
			return
		}
		n.store.Park(m.Pos, m.W)
	default:
		panic(fmt.Sprintf("core: %v: handleDHT got %T", n.self, inner))
	}
}

// noteServedGet records a served GET in the replay-dedupe window (member
// mode; see replay.go).
func (n *Node) noteServedGet(reqID uint64) {
	if n.cl.memberMode() {
		n.servedGets.add(reqID)
	}
}

// OnMessage dispatches a delivered message (a remote action call).
func (n *Node) OnMessage(ctx *transport.Context, from transport.NodeID, payload any) {
	if n.churn.departed {
		// A replaced node only forwards until the ring forgets it (§IV-B).
		n.handleDeparted(ctx, payload)
		return
	}
	switch m := payload.(type) {
	case aggregateMsg:
		if !n.isCurrentChild(m.From.ID) {
			// The sender is not (or no longer) our child: its batch was in
			// flight across a topology change (integration, replacement).
			// Bounce it back so the sender re-buffers its operations and
			// resubmits through its current parent; queueing it here could
			// deadlock the wave (the new tree never consumes it).
			ctx.Send(m.From.ID, rejectBatch{B: m.B})
			return
		}
		if n.cl.memberMode() && m.WaveSeq != 0 && m.WaveSeq <= n.foldedWaves[m.From.ID] {
			// A restarted child re-sent a wave this node already folded:
			// the original serve — sent, or still to come with this
			// node's in-flight batch — answers the child, so the re-send
			// must not be consumed again (see foldedWaves).
			n.cl.logf("core: %v dropping re-sent sub-batch from %v for already-folded wave %d (restart replay)",
				n.self, m.From, m.WaveSeq)
			return
		}
		if n.hasWaitingFrom(m.From.ID) {
			if n.cl.memberMode() {
				// Around a fail-stop restart several of a child's waves can
				// be pending here at once: the link replays every
				// unacknowledged aggregate back-to-back while this node is
				// still working through its own rollback. An arrival for a
				// wave already buffered is the restarted child's re-fire of
				// that same wave (regenerated from replayed inputs) and
				// replaces it; a NEWER wave queues behind the buffered ones
				// — each wave must be folded individually, in order, or the
				// re-fired waves would not match the serves already in
				// flight for them (fire folds the oldest wave per child).
				for i := range n.waiting {
					if n.waiting[i].From == m.From.ID && n.waiting[i].WaveSeq == m.WaveSeq {
						n.cl.logf("core: %v replacing sub-batch from restarted child %v (wave %d)", n.self, m.From, m.WaveSeq)
						n.waiting[i].B = m.B
						return
					}
				}
				n.cl.logf("core: %v queueing sub-batch from %v for wave %d behind its pending waves (restart replay)", n.self, m.From, m.WaveSeq)
				n.waiting = append(n.waiting, subBatch{From: m.From.ID, B: m.B, WaveSeq: m.WaveSeq})
				return
			}
			panic(fmt.Sprintf("core: node %v got a second sub-batch from child %v within one wave", n.self, m.From))
		}
		n.waiting = append(n.waiting, subBatch{From: m.From.ID, B: m.B, WaveSeq: m.WaveSeq})
	case serveMsg:
		if n.cl.memberMode() && m.WaveSeq != 0 && m.WaveSeq != n.waveSeq {
			if m.WaveSeq < n.waveSeq {
				// A serve for a wave this node already completed: around a
				// fail-stop restart both the replayed original and a serve
				// for the re-sent aggregate can arrive; the first consumed
				// the batch, this one is a true duplicate.
				n.cl.logf("core: %v dropping serve for past wave %d (current %d; restart replay)", n.self, m.WaveSeq, n.waveSeq)
				return
			}
			// A serve AHEAD of this node's counter: the link replays the
			// whole unacknowledged tail back-to-back — serve(w), serve(w+1)
			// — while the rolled-back node is still re-executing wave w.
			// This is the only copy of those assignments; park it until
			// the matching re-fire (see heldServes).
			if n.heldServes == nil {
				n.heldServes = make(map[int64]heldServe)
			}
			n.heldServes[m.WaveSeq] = heldServe{from: from, assigns: m.Assigns, epoch: m.UpdateEpoch}
			n.cl.logf("core: %v holding replayed serve for future wave %d (current %d)", n.self, m.WaveSeq, n.waveSeq)
			return
		}
		if n.cl.memberMode() && n.inBatch != nil && !n.assignsFit(m.Assigns) {
			// Shape guard: the serve was computed for a batch that differs
			// from the one in flight — a replay divergence the protocol
			// must not apply (it would double-assign or orphan positions).
			// Keep the batch; the serve matching the re-sent aggregate
			// carries the same WaveSeq and is applied when it arrives.
			n.cl.logf("core: %v dropping serve with mismatched shape for wave %d (restart replay divergence)", n.self, m.WaveSeq)
			return
		}
		n.serve(ctx, m.Assigns, m.UpdateEpoch, from)
	case routedMsg:
		n.routeStep(ctx, m)
	case directMsg:
		n.dispatchDHT(ctx, m.Key, m.Inner)
	case getReply:
		if _, ok := n.pendingGets[m.ReqID]; !ok {
			if n.cl.memberMode() {
				// After a fail-stop restart this is either a genuine
				// duplicate (the restored state already resolved the GET)
				// or a link-replayed reply racing ahead of the journal
				// replay that will re-register the op. The two are
				// indistinguishable here, so park it: a re-registered op
				// claims it immediately, an unclaimed entry is inert (see
				// earlyReplies).
				n.cl.logf("core: %v parking reply for unknown GET %d (restart replay)", n.self, m.ReqID)
				if n.earlyReplies == nil {
					n.earlyReplies = make(map[uint64]getReply)
				}
				n.earlyReplies[m.ReqID] = m
				return
			}
			panic(fmt.Sprintf("core: node %v got reply for unknown GET %d", n.self, m.ReqID))
		}
		n.resolveGet(ctx, m)
	case putAck:
		// The strategy accounts the ack (stack: outstanding/awaitingAcks,
		// parking replay strays); a parked or duplicate ack must not reach
		// the hosting layer's callback.
		if n.disc.putAcked(n, m.ReqID) {
			if n.cl.onPutAck != nil {
				n.cl.onPutAck(m.ReqID)
			}
		}
	default:
		if !n.handleChurn(ctx, from, payload) {
			panic(fmt.Sprintf("core: node %v cannot handle message %T", n.self, payload))
		}
	}
}

// InjectEnqueue buffers a locally generated ENQUEUE (PUSH) request. It is
// called by the workload driver between rounds, mirroring the paper's
// "nodes generate requests" — generation itself costs no messages.
func (n *Node) InjectEnqueue(now int64) uint64 {
	return n.InjectEnqueueBlob(now, nil)
}

// InjectEnqueueBlob is InjectEnqueue with an opaque application payload
// that rides with the element through the DHT; a dequeue serialized
// against it receives the payload in its completion record. The networked
// client layer stores the user's encoded value here.
func (n *Node) InjectEnqueueBlob(now int64, blob []byte) uint64 {
	return n.InjectEnqueuePriBlob(now, 0, blob)
}

// InjectEnqueuePriBlob buffers an enqueue at the given priority level
// (heap mode; other modes use pri 0).
func (n *Node) InjectEnqueuePriBlob(now int64, pri int32, blob []byte) uint64 {
	reqID := n.cl.nextReqID()
	n.injectEnqueue(reqID, now, pri, blob)
	return reqID
}

// injectEnqueue buffers an enqueue under a caller-chosen request ID —
// fresh from nextReqID, or the original ID of a journaled operation being
// re-submitted after a fail-stop restart (Cluster.Resubmit).
func (n *Node) injectEnqueue(reqID uint64, now int64, pri int32, blob []byte) {
	elem := dht.Element{Origin: n.clientID, Seq: n.nextElemSeq}
	n.nextElemSeq++
	op := pendingOp{elem: elem, reqID: reqID, born: now, localSeq: n.nextLocalSeq, pri: pri, blob: blob}
	n.nextLocalSeq++
	n.cl.issued++
	n.disc.bufferOp(n, op, now)
}

// InjectDequeue buffers a locally generated DEQUEUE (POP, DEQUEUEMIN)
// request. In stack mode with local combining it may complete immediately
// together with a buffered push (§VI).
func (n *Node) InjectDequeue(now int64) uint64 {
	reqID := n.cl.nextReqID()
	n.injectDequeue(reqID, now)
	return reqID
}

// injectDequeue is injectEnqueue's dequeue counterpart.
func (n *Node) injectDequeue(reqID uint64, now int64) {
	op := pendingOp{isDeq: true, reqID: reqID, born: now, localSeq: n.nextLocalSeq}
	n.nextLocalSeq++
	n.cl.issued++
	n.disc.bufferOp(n, op, now)
}

// Store exposes the DHT fragment for tests and load statistics.
func (n *Node) Store() *dht.Store { return n.store }

// Ref returns the node's identity.
func (n *Node) Ref() ldb.Ref { return n.self }

// IsAnchor reports whether the node currently holds the anchor role.
func (n *Node) IsAnchor() bool { return n.anchorRole }

// AnchorState returns a copy of the anchor's position window (valid only
// on the anchor).
func (n *Node) AnchorState() batch.AnchorState { return n.ast }
