package core

import (
	"fmt"

	"skueue/internal/batch"
	"skueue/internal/transport"
)

// This file holds the member-mode replay machinery that upgrades
// fail-stop recovery from at-least-once to exactly-once for operations
// mid-flight at the crashed member: bounded request-ID dedupe windows for
// replayed DHT operations, the re-submission entry points the hosting
// layer's operation journal drives, and the serve shape guard.
//
// The threat model: a member restored from a write-ahead snapshot rolls
// back to the cut and re-executes the interval up to the crash from
// replayed inputs. Its re-sent messages reach peers a second time under a
// new boot epoch, so the link layer cannot dedupe them — the receivers
// must. Position-based dedupe (dht.Store.Has) covers a PUT replayed while
// its element is still stored, but not a PUT whose element was already
// consumed, and not a GET replayed after it was served — in stack mode
// the latter would park forever and steal a future element, because
// stack positions are reused (§VI: Last decrements on pops). The request
// ID, tagged with the issuing member (ReqIDMemberShift), identifies an
// operation across both incarnations and closes both holes.

// replayDedupeWindow bounds the per-node dedupe memory. Duplicates only
// arise within one crash-recovery replay interval — the traffic between
// two snapshots plus the reconnect replay — so the window needs to cover
// that interval's operations, not history. 2^14 request IDs per node is
// several snapshot intervals of saturated traffic; beyond it, oldest
// entries are evicted first.
const replayDedupeWindow = 1 << 14

// reqRing is a bounded FIFO set of request IDs. The zero value is ready
// to use and allocates nothing until the first add, so simulator nodes
// (which never see replays) pay nothing.
type reqRing struct {
	set  map[uint64]struct{}
	buf  []uint64
	next int
}

func (r *reqRing) add(id uint64) {
	if id == 0 {
		return // member request IDs are never zero (reqBase tag)
	}
	if r.set == nil {
		r.set = make(map[uint64]struct{})
		r.buf = make([]uint64, replayDedupeWindow)
	}
	if _, dup := r.set[id]; dup {
		return
	}
	if old := r.buf[r.next]; old != 0 {
		delete(r.set, old)
	}
	r.buf[r.next] = id
	r.next = (r.next + 1) % replayDedupeWindow
	r.set[id] = struct{}{}
}

func (r *reqRing) has(id uint64) bool {
	_, ok := r.set[id]
	return ok
}

// entries lists the window oldest first, for the member snapshot.
func (r *reqRing) entries() []uint64 {
	if r.set == nil {
		return nil
	}
	out := make([]uint64, 0, len(r.set))
	for i := 0; i < replayDedupeWindow; i++ {
		if id := r.buf[(r.next+i)%replayDedupeWindow]; id != 0 {
			out = append(out, id)
		}
	}
	return out
}

func (r *reqRing) restore(ids []uint64) {
	for _, id := range ids {
		r.add(id)
	}
}

// ReqIDSeq extracts the member-local sequence part of a request ID (the
// low ReqIDMemberShift bits). The hosting layer compares it against the
// snapshotted ReqSeq to decide which journaled operations the snapshot
// already covers.
func ReqIDSeq(reqID uint64) uint64 { return reqID & (1<<ReqIDMemberShift - 1) }

// ReqSeq returns the member-local request sequence most recently issued;
// the next operation injected at this member receives ReqSeq()+1. The
// hosting layer compares it against its durable sequence lease before
// accepting an operation (see internal/server: a request ID must never
// be issued unless a ceiling above it is already on stable storage, or a
// crash could re-issue the ID and peer dedupe would swallow the new
// operation as a replay of the dead one). Runner goroutine only.
func (cl *Cluster) ReqSeq() uint64 { return cl.reqSeq }

// AdvanceReqSeq raises the member-local request sequence to at least seq.
// A restore calls it with the journal's high-water mark BEFORE any client
// can submit: journaled operations held back for their wave boundaries
// keep their original request IDs, and a fresh ID colliding with one of
// them would make two distinct operations indistinguishable to every
// dedupe path. Runner goroutine (or before the transport starts) only.
func (cl *Cluster) AdvanceReqSeq(seq uint64) {
	if seq > cl.reqSeq {
		cl.reqSeq = seq
	}
}

// SetOnFire registers a callback invoked on the runner goroutine every
// time a local node fires a wave (Stage 1 transfer W -> B), after the
// wave's composition is fixed. The hosting layer uses it to place wave
// boundaries in its operation journal and to feed held-back re-submitted
// operations into the wave they originally rode in.
//
//skueue:runs-on-runner
func (cl *Cluster) SetOnFire(fn func(node transport.NodeID, waveSeq int64)) { cl.onFire = fn }

// Resubmit re-injects a journaled client operation during or after a
// fail-stop restart, under its ORIGINAL request ID: the re-executed
// operation is thereby the same operation as far as every dedupe path is
// concerned, and fresh request IDs can never collide with pre-crash ones
// because the member-local sequence counter advances past it. It must run
// on the runner goroutine (or before the transport starts).
func (cl *Cluster) Resubmit(client transport.NodeID, reqID uint64, isDeq bool, pri int32, blob []byte) {
	n, ok := cl.nodes[client]
	if !ok {
		cl.logf("core: dropping resubmitted op %d for unknown node %d", reqID, client)
		return
	}
	if seq := ReqIDSeq(reqID); seq > cl.reqSeq {
		cl.reqSeq = seq
	}
	if isDeq {
		n.injectDequeue(reqID, cl.net.Now())
	} else {
		n.injectEnqueue(reqID, cl.net.Now(), pri, blob)
	}
}

// HeldReplayServes reports how many replayed serve messages are still
// parked for future waves across this member's nodes (Node.heldServes).
// While any are parked, the restart replay has not converged: the parked
// serves pin the exact batch shape of waves this member has yet to
// re-fire, and a fresh operation joining one of those waves would fail
// the shape guard and wedge the member. The hosting layer holds new
// client traffic until this reaches zero (and the peer replay fences
// have arrived — a serve still in TCP flight is parked only on arrival).
// Runner goroutine only.
func (cl *Cluster) HeldReplayServes() int {
	n := 0
	for _, node := range cl.nodes {
		n += len(node.heldServes)
	}
	return n
}

// assignsFit checks a serve's assignments against the node's current
// processing batch: every enqueue/push run's position interval must have
// exactly the run's length (the anchor always allocates enqueue intervals
// exactly; only dequeue intervals may come up short). A mismatch means
// the serve was computed for a different batch than the one in flight —
// possible only when a fail-stop replay diverged — and applying it would
// corrupt position accounting cluster-wide (double-assigned or orphaned
// positions). Member mode drops such serves. The recompute is O(children)
// with two small allocations per serve, on par with the Decompose work a
// serve performs anyway.
func (n *Node) assignsFit(assigns []batch.RunAssign) bool {
	parts := make([]batch.Batch, len(n.inBatch))
	for i, sb := range n.inBatch {
		parts[i] = sb.B
	}
	combined := batch.Combine(parts...)
	if len(assigns) != len(combined.Runs) {
		n.cl.logf("core: %v assigns mismatch: %d assigns vs batch %v (inBatch %v)", n.self, len(assigns), combined, n.describeInBatch())
		return false
	}
	for i, k := range combined.Runs {
		if !batch.IsDeqIndex(i) && assigns[i].Iv.Len() != k {
			n.cl.logf("core: %v assigns mismatch at run %d: interval %v vs run %d (batch %v, inBatch %v)",
				n.self, i, assigns[i].Iv, k, combined, n.describeInBatch())
			return false
		}
	}
	return true
}

// describeInBatch renders the in-flight batch's provenance for replay
// diagnostics.
func (n *Node) describeInBatch() string {
	out := ""
	for _, sb := range n.inBatch {
		out += fmt.Sprintf("[from=%d w=%d %v]", sb.From, sb.WaveSeq, sb.B)
	}
	return out
}
