package core

import (
	"errors"
	"fmt"
	"sort"

	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/ldb"
	"skueue/internal/seqcheck"
	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// This file is the fail-stop recovery surface of a networked member: an
// exported, gob-encodable image of everything a member must carry across
// a crash — its DHT fragment (the elements and their queue positions),
// topology references, wave buffers, request counters and completion
// history — plus the constructor that rebuilds a Cluster from it.
//
// The image is deliberately a plain-data mirror of the node state rather
// than the state itself: Node fields are unexported and full of
// simulation-only bookkeeping, while the image only holds what a restart
// needs and what the wire codec (encoding/gob) can carry.
//
// Consistency model: SnapshotMember must run on the transport's runner
// goroutine, so the image is a point-in-time cut between two message
// deliveries. Paired with the transport's write-ahead acknowledgment
// release (tcp.Options.AckGate — deliveries are only acknowledged to
// their senders once a snapshot covering them is durable), a restored
// member re-receives exactly the messages its snapshot misses and
// re-executes them against the rolled-back state. Messages the member
// SENT after the snapshot may reach peers twice (once pre-crash, once
// re-executed); the member-mode tolerance paths in node.go/churn.go and
// the receiver-side idempotence of the DHT make those duplicates benign
// for empty waves, which is why recovery is exact when the crash happens
// while no client operations are in flight at the member, and
// at-least-once best-effort otherwise (see DESIGN.md).

// ErrNotQuiescent reports a snapshot attempt while churn is in progress
// at this member: join/leave handshakes hold multi-message state that the
// image does not model. Callers skip the interval and retry.
var ErrNotQuiescent = errors.New("core: member is not churn-quiescent")

// OpImage is one buffered, not-yet-assigned client operation.
type OpImage struct {
	IsDeq    bool
	Elem     dht.Element
	ReqID    uint64
	Born     int64
	LocalSeq int64
	Blob     []byte
}

// SubBatchImage is one remembered sub-batch component of a wave.
type SubBatchImage struct {
	From    transport.NodeID
	B       batch.Batch
	WaveSeq int64
}

// GetImage is one in-flight GET issued by the node.
type GetImage struct {
	ReqID    uint64
	Born     int64
	LocalSeq int64
	Value    int64
}

// NodeImage captures one virtual node.
type NodeImage struct {
	Self, Pred, Succ ldb.Ref
	SibL, SibM, SibR ldb.Ref
	SibIn            [3]bool
	ClientID         int32

	Anchor bool
	Ast    batch.AnchorState

	NextElemSeq  int64
	NextLocalSeq int64
	WaveSeq      int64

	Pending  []OpImage
	Waiting  []SubBatchImage
	InBatch  []SubBatchImage // nil: no processing batch in flight
	InOwnOps []OpImage
	InOwnB   batch.Batch

	Outstanding int

	Entries []dht.Entry
	Parked  []dht.ParkedEntry
	Gets    []GetImage

	LastEpoch    int64
	EpochCounter int64
	PendChurn    int64
}

// ProcessImage captures one process-table entry.
type ProcessImage struct {
	ID      int32
	Nodes   [3]transport.NodeID
	Joining bool
	Left    bool
}

// MemberSnapshot is the full persistent image of one networked member.
type MemberSnapshot struct {
	Index    int32
	Procs    []ProcessImage
	Nodes    []NodeImage
	ReqSeq   uint64
	Issued   int64
	Finished int64
	History  []seqcheck.Completion
}

func opImages(ops []pendingOp) []OpImage {
	out := make([]OpImage, len(ops))
	for i, op := range ops {
		out[i] = OpImage{IsDeq: op.isDeq, Elem: op.elem, ReqID: op.reqID, Born: op.born, LocalSeq: op.localSeq, Blob: op.blob}
	}
	return out
}

func opsFromImages(imgs []OpImage) []pendingOp {
	if len(imgs) == 0 {
		return nil
	}
	out := make([]pendingOp, len(imgs))
	for i, im := range imgs {
		out[i] = pendingOp{isDeq: im.IsDeq, elem: im.Elem, reqID: im.ReqID, born: im.Born, localSeq: im.LocalSeq, blob: im.Blob}
	}
	return out
}

func subImages(subs []subBatch) []SubBatchImage {
	out := make([]SubBatchImage, len(subs))
	for i, sb := range subs {
		out[i] = SubBatchImage{From: sb.From, B: sb.B, WaveSeq: sb.WaveSeq}
	}
	return out
}

func subsFromImages(imgs []SubBatchImage) []subBatch {
	if imgs == nil {
		return nil
	}
	out := make([]subBatch, len(imgs))
	for i, im := range imgs {
		out[i] = subBatch{From: im.From, B: im.B, WaveSeq: im.WaveSeq}
	}
	return out
}

// snapshottable reports whether the node's churn state is trivial enough
// to omit from the image: anything mid-handshake refuses the snapshot.
func (n *Node) snapshottable() bool {
	c := &n.churn
	return !c.joining && !c.leaving && !c.departed && !c.isReplacement &&
		!c.updatePhase && !c.leaveReqSent && !c.rangeValid &&
		len(c.routedHold) == 0 && len(c.heldTransfers) == 0 &&
		len(c.heldHandovers) == 0 && len(c.joiners) == 0 &&
		len(c.grantsPending) == 0 && c.grantedOpen == 0 &&
		len(c.buffer) == 0 && len(c.heldQueries) == 0 &&
		len(c.heldHandoffs) == 0 && !c.relayVia.Valid()
}

// SnapshotMember captures this member's persistent image. It must run on
// the transport's runner goroutine (tcp.Peer.DoSync), where no handler is
// concurrently mutating node state. It fails with ErrNotQuiescent while
// any local node is inside a join/leave handshake, and refuses stack mode
// outright (the residual combiner and ticket wait make the stack's
// restart story a separate project).
func (cl *Cluster) SnapshotMember() (*MemberSnapshot, error) {
	if !cl.memberMode() {
		return nil, errors.New("core: only networked members snapshot (the simulator has no crashes)")
	}
	if cl.cfg.Mode == batch.Stack {
		return nil, errors.New("core: stack-mode members do not support snapshots yet")
	}
	snap := &MemberSnapshot{
		Index:    int32(cl.reqBase>>ReqIDMemberShift) - 1,
		ReqSeq:   cl.reqSeq,
		Issued:   cl.issued,
		Finished: cl.finished,
	}
	for _, p := range cl.procs {
		snap.Procs = append(snap.Procs, ProcessImage{ID: p.ID, Nodes: p.Nodes, Joining: p.Joining, Left: p.Left})
	}
	ids := make([]transport.NodeID, 0, len(cl.nodes))
	for id := range cl.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := cl.nodes[id]
		if !n.snapshottable() {
			return nil, fmt.Errorf("%w: node %v mid-churn", ErrNotQuiescent, n.self)
		}
		img := NodeImage{
			Self: n.self, Pred: n.pred, Succ: n.succ,
			SibL: n.sibL, SibM: n.sibM, SibR: n.sibR,
			SibIn:        n.sibIn,
			ClientID:     n.clientID,
			Anchor:       n.anchorRole,
			Ast:          n.ast,
			NextElemSeq:  n.nextElemSeq,
			NextLocalSeq: n.nextLocalSeq,
			WaveSeq:      n.waveSeq,
			Pending:      opImages(n.pending),
			Waiting:      subImages(n.waiting),
			InOwnB:       n.inOwn.B,
			Outstanding:  n.outstanding,
			Entries:      n.store.Entries(),
			LastEpoch:    n.churn.lastEpoch,
			EpochCounter: n.churn.epochCounter,
			PendChurn:    n.churn.pendChurn,
		}
		if n.inBatch != nil {
			img.InBatch = subImages(n.inBatch)
			img.InOwnOps = opImages(n.inOwn.ops)
		}
		img.Parked = parkedImage(n.store)
		reqIDs := make([]uint64, 0, len(n.pendingGets))
		for reqID := range n.pendingGets {
			reqIDs = append(reqIDs, reqID)
		}
		sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })
		for _, reqID := range reqIDs {
			gc := n.pendingGets[reqID]
			img.Gets = append(img.Gets, GetImage{ReqID: reqID, Born: gc.born, LocalSeq: gc.localSeq, Value: gc.value})
		}
		snap.Nodes = append(snap.Nodes, img)
	}
	snap.History = append(snap.History, cl.hist.Ops...)
	return snap, nil
}

// parkedImage lists a store's parked GETs without disturbing them.
func parkedImage(s *dht.Store) []dht.ParkedEntry {
	ents, parked := s.ExtractAll()
	for _, e := range ents {
		s.Insert(e)
	}
	for _, pk := range parked {
		s.Park(pk.Pos, pk.Waiter)
	}
	return parked
}

// RestoreMember rebuilds the Cluster fragment of a member restarting
// after a fail-stop crash: nodes are re-registered at their snapshotted
// IDs with their snapshotted topology, DHT fragment and wave buffers, so
// the member resumes exactly where the image was cut. The transport must
// be restored to the matching state (tcp.Peer.RestoreState) so peers
// replay everything the image misses.
func RestoreMember(cfg Config, snap *MemberSnapshot, net transport.Network) (*Cluster, error) {
	reg, ok := net.(transport.Registry)
	if !ok {
		return nil, errors.New("core: member backend does not support fixed-address registration")
	}
	if snap.Index < 0 {
		return nil, fmt.Errorf("core: invalid member index %d in snapshot", snap.Index)
	}
	if cfg.Mode == batch.Stack {
		return nil, errors.New("core: stack-mode members do not support snapshots yet")
	}
	RegisterWireTypes()
	cl := &Cluster{
		cfg:      cfg,
		net:      net,
		reg:      reg,
		labels:   xrand.NewHasher(cfg.Seed, "labels"),
		keyHash:  xrand.NewHasher(cfg.Seed, "positions"),
		nodes:    make(map[transport.NodeID]*Node),
		hist:     &seqcheck.History{},
		reqBase:  uint64(snap.Index+1) << ReqIDMemberShift,
		reqSeq:   snap.ReqSeq,
		issued:   snap.Issued,
		finished: snap.Finished,
		nextProc: int32(cfg.Processes),
	}
	cl.hist.Ops = append(cl.hist.Ops, snap.History...)
	for _, pi := range snap.Procs {
		cl.procs = append(cl.procs, &Process{ID: pi.ID, Nodes: pi.Nodes, Joining: pi.Joining, Left: pi.Left})
	}
	for _, img := range snap.Nodes {
		n := &Node{
			cl:           cl,
			self:         img.Self,
			clientID:     img.ClientID,
			pred:         img.Pred,
			succ:         img.Succ,
			sibL:         img.SibL,
			sibM:         img.SibM,
			sibR:         img.SibR,
			sibIn:        img.SibIn,
			anchorRole:   img.Anchor,
			ast:          img.Ast,
			nextElemSeq:  img.NextElemSeq,
			nextLocalSeq: img.NextLocalSeq,
			waveSeq:      img.WaveSeq,
			pending:      opsFromImages(img.Pending),
			waiting:      subsFromImages(img.Waiting),
			outstanding:  img.Outstanding,
			store:        dht.NewStore(),
			pendingGets:  make(map[uint64]getCtx),
		}
		if img.InBatch != nil {
			n.inBatch = subsFromImages(img.InBatch)
			n.inOwn = ownWave{ops: opsFromImages(img.InOwnOps), B: img.InOwnB}
		}
		for _, ent := range img.Entries {
			n.store.Insert(ent)
		}
		for _, pk := range img.Parked {
			n.store.Park(pk.Pos, pk.Waiter)
		}
		for _, g := range img.Gets {
			n.pendingGets[g.ReqID] = getCtx{born: g.Born, localSeq: g.LocalSeq, value: g.Value}
		}
		n.churn.joining = false
		n.churn.relayVia = ldb.Ref{ID: transport.None}
		n.churn.lastEpoch = img.LastEpoch
		n.churn.epochCounter = img.EpochCounter
		n.churn.pendChurn = img.PendChurn
		cl.nodes[img.Self.ID] = n
		reg.Register(img.Self.ID, n)
	}
	return cl, nil
}
