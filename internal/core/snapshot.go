package core

import (
	"errors"
	"fmt"
	"sort"

	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/ldb"
	"skueue/internal/seqcheck"
	"skueue/internal/stack"
	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// This file is the fail-stop recovery surface of a networked member: an
// exported, gob-encodable image of everything a member must carry across
// a crash — its DHT fragment (the elements and their queue or stack
// positions), topology references, wave buffers, the stack combiner's
// residual word and stage-4 ticket waits, request counters, replay-dedupe
// windows and completion history — plus the constructor that rebuilds a
// Cluster from it. Both modes are supported: queue (§III) and stack
// (§VI) members snapshot and restore alike.
//
// The image is deliberately a plain-data mirror of the node state rather
// than the state itself: Node fields are unexported and full of
// simulation-only bookkeeping, while the image only holds what a restart
// needs and what the wire codec (encoding/gob) can carry.
//
// Consistency model: SnapshotMember must run on the transport's runner
// goroutine, so the image is a point-in-time cut between two message
// deliveries. Paired with the transport's write-ahead acknowledgment
// release (tcp.Options.AckGate — deliveries are only acknowledged to
// their senders once a snapshot covering them is durable), a restored
// member re-receives exactly the messages its snapshot misses and
// re-executes them against the rolled-back state. Messages the member
// SENT after the snapshot may reach peers twice (once pre-crash, once
// re-executed); three mechanisms make the re-execution converge on
// exactly-once application:
//
//   - deterministic re-aggregation: member-mode nodes fold sub-batches in
//     sorted child order (see Node.fire), and the hosting layer re-injects
//     journaled client operations at their original wave boundaries
//     (internal/server's operation journal), so a re-fired wave carries
//     the same batch the crashed incarnation sent and the replayed serve's
//     assignments line up position for position;
//   - receiver-side dedupe: stores recognize replayed PUTs by (position,
//     ticket) and — surviving even consume-then-replay races — by request
//     ID (Node.appliedPuts), served GETs are remembered by request ID so a
//     re-executed GET cannot park again and steal a reused stack position
//     (Node.servedGets), duplicate put-acks are absorbed by per-request
//     accounting (Node.awaitingAcks), a parent drops a restarted child's
//     re-sent aggregate for a wave it already folded (Node.foldedWaves —
//     the original serve, sent or still to come, answers the re-fire)
//     while queueing a child's replayed later waves and folding them one
//     per fire in order (Node.takeWaiting), serves replayed
//     AHEAD of a rolled-back node's wave counter are parked until the
//     matching re-fire (Node.heldServes), and serves for past waves are
//     dropped by WaveSeq;
//   - a shape guard: a serve whose assignments cannot match the node's
//     current processing batch (possible only if replay diverged) is
//     dropped rather than applied, so divergence degrades to a retried
//     wave instead of corrupting position accounting.
//
// See DESIGN.md "Fail-stop recovery" for the full argument.

// ErrNotQuiescent reports a snapshot attempt while churn is in progress
// at this member: join/leave handshakes hold multi-message state that the
// image does not model. Callers skip the interval and retry.
var ErrNotQuiescent = errors.New("core: member is not churn-quiescent")

// OpImage is one buffered, not-yet-assigned client operation.
type OpImage struct {
	IsDeq    bool
	Elem     dht.Element
	ReqID    uint64
	Born     int64
	LocalSeq int64
	Pri      int32
	Blob     []byte
}

// SubBatchImage is one remembered sub-batch component of a wave.
type SubBatchImage struct {
	From    transport.NodeID
	B       batch.Batch
	WaveSeq int64
}

// GetImage is one in-flight GET issued by the node. Restoring it re-arms
// the stage-4 wait: the node keeps counting the GET as outstanding until
// the replayed (or re-executed) reply arrives.
type GetImage struct {
	ReqID    uint64
	Born     int64
	LocalSeq int64
	Value    int64
}

// CombinerImage is the stack combiner's buffered residual word (§VI):
// the not-yet-sent operations in their reduced POP^a PUSH^b form. Pops
// carry no element; pushes carry their element and blob.
type CombinerImage struct {
	Pops   []OpImage
	Pushes []OpImage
}

// FoldedWaveImage is one entry of the per-child folded-wave cursor.
type FoldedWaveImage struct {
	From    transport.NodeID
	WaveSeq int64
}

// EarlyReplyImage is one parked link-replayed GET reply (member mode):
// it arrived before the journal replay re-registered its GET, and its
// delivery cursor has already advanced, so it exists nowhere but here.
type EarlyReplyImage struct {
	ReqID uint64
	Entry dht.Entry
}

// NodeImage captures one virtual node.
type NodeImage struct {
	Self, Pred, Succ ldb.Ref
	SibL, SibM, SibR ldb.Ref
	SibIn            [3]bool
	ClientID         int32

	Anchor bool
	Ast    batch.AnchorState

	NextElemSeq  int64
	NextLocalSeq int64
	WaveSeq      int64

	Pending  []OpImage
	Waiting  []SubBatchImage
	InBatch  []SubBatchImage // nil: no processing batch in flight
	InOwnOps []OpImage
	InOwnB   batch.Batch

	// Combiner is the stack-mode residual word; empty in queue mode.
	Combiner CombinerImage
	// Outstanding re-arms the §VI stage-4 completion wait: the number of
	// the node's own DHT operations (ticketed PUTs and GETs) still
	// unconfirmed at the cut. The restored node stays gated until the
	// replayed acknowledgments and replies drain it. AwaitingAcks lists
	// the unacknowledged PUTs' request IDs, keeping the accounting
	// idempotent under replayed duplicate acks.
	Outstanding  int
	AwaitingAcks []uint64

	Entries []dht.Entry
	Parked  []dht.ParkedEntry
	Gets    []GetImage

	// AppliedPuts and ServedGets are the node's replay-dedupe windows:
	// request IDs of recently applied PUTs and served GETs, oldest first.
	// They survive the restart so a member that crashes can still
	// recognize duplicates produced by an earlier crash of a peer.
	AppliedPuts []uint64
	ServedGets  []uint64
	// FoldedWaves is the per-child cursor of waves already folded into
	// a processing batch, which recognizes a restarted child's re-sent
	// aggregates (see Node.foldedWaves).
	FoldedWaves []FoldedWaveImage
	// EarlyReplies are the parked replies of Node.earlyReplies, and
	// EarlyAcks the stack strategy's analogous parked put-acks
	// (stackDisc.earlyAcks), both sorted by request ID. A snapshot cut
	// inside a restart-replay window must carry them: their link
	// delivery cursors have already advanced, so dropping them here
	// would lose the completions for good on a second crash.
	EarlyReplies []EarlyReplyImage
	EarlyAcks    []uint64

	LastEpoch    int64
	EpochCounter int64
	PendChurn    int64
}

// ProcessImage captures one process-table entry.
type ProcessImage struct {
	ID      int32
	Nodes   [3]transport.NodeID
	Joining bool
	Left    bool
}

// MemberSnapshot is the full persistent image of one networked member.
type MemberSnapshot struct {
	Index    int32
	Procs    []ProcessImage
	Nodes    []NodeImage
	ReqSeq   uint64
	Issued   int64
	Finished int64
	History  []seqcheck.Completion
}

// SnapshotStats summarizes the client-visible operations a snapshot holds
// in flight, for diagnostics and for tests that need to assert a crash
// was taken mid-traffic (e.g. with a non-empty combiner residual).
type SnapshotStats struct {
	// PendingOps counts buffered, not-yet-fired operations outside the
	// combiner (queue mode, or stack mode with combining disabled).
	PendingOps int
	// CombinerPops and CombinerPushes are the residual word shape summed
	// over the member's nodes (stack mode).
	CombinerPops   int
	CombinerPushes int
	// InFlightOps counts own operations inside a processing batch (fired,
	// not yet served).
	InFlightOps int
	// PendingGets counts GETs awaiting their reply.
	PendingGets int
}

// Stats computes the in-flight operation summary of the image.
func (s *MemberSnapshot) Stats() SnapshotStats {
	var st SnapshotStats
	for _, img := range s.Nodes {
		st.PendingOps += len(img.Pending)
		st.CombinerPops += len(img.Combiner.Pops)
		st.CombinerPushes += len(img.Combiner.Pushes)
		st.InFlightOps += len(img.InOwnOps)
		st.PendingGets += len(img.Gets)
	}
	return st
}

func opImages(ops []pendingOp) []OpImage {
	out := make([]OpImage, len(ops))
	for i, op := range ops {
		out[i] = OpImage{IsDeq: op.isDeq, Elem: op.elem, ReqID: op.reqID, Born: op.born, LocalSeq: op.localSeq, Pri: op.pri, Blob: op.blob}
	}
	return out
}

func opsFromImages(imgs []OpImage) []pendingOp {
	if len(imgs) == 0 {
		return nil
	}
	out := make([]pendingOp, len(imgs))
	for i, im := range imgs {
		out[i] = pendingOp{isDeq: im.IsDeq, elem: im.Elem, reqID: im.ReqID, born: im.Born, localSeq: im.LocalSeq, pri: im.Pri, blob: im.Blob}
	}
	return out
}

func stackOpImages(ops []stack.PendingOp, isDeq bool) []OpImage {
	if len(ops) == 0 {
		return nil
	}
	out := make([]OpImage, len(ops))
	for i, op := range ops {
		out[i] = OpImage{IsDeq: isDeq, Elem: op.Elem, ReqID: op.ReqID, Born: op.Born, LocalSeq: op.LocalSeq, Blob: op.Blob}
	}
	return out
}

func stackOpsFromImages(imgs []OpImage) []stack.PendingOp {
	if len(imgs) == 0 {
		return nil
	}
	out := make([]stack.PendingOp, len(imgs))
	for i, im := range imgs {
		out[i] = stack.PendingOp{ReqID: im.ReqID, Elem: im.Elem, Born: im.Born, LocalSeq: im.LocalSeq, Blob: im.Blob}
	}
	return out
}

func subImages(subs []subBatch) []SubBatchImage {
	out := make([]SubBatchImage, len(subs))
	for i, sb := range subs {
		out[i] = SubBatchImage{From: sb.From, B: sb.B, WaveSeq: sb.WaveSeq}
	}
	return out
}

func subsFromImages(imgs []SubBatchImage) []subBatch {
	if imgs == nil {
		return nil
	}
	out := make([]subBatch, len(imgs))
	for i, im := range imgs {
		out[i] = subBatch{From: im.From, B: im.B, WaveSeq: im.WaveSeq}
	}
	return out
}

// snapshottable reports whether the node's churn state is trivial enough
// to omit from the image: anything mid-handshake refuses the snapshot.
func (n *Node) snapshottable() bool {
	c := &n.churn
	return !c.joining && !c.leaving && !c.departed && !c.isReplacement &&
		!c.updatePhase && !c.leaveReqSent && !c.rangeValid &&
		len(c.routedHold) == 0 && len(c.heldTransfers) == 0 &&
		len(c.heldHandovers) == 0 && len(c.joiners) == 0 &&
		len(c.grantsPending) == 0 && c.grantedOpen == 0 &&
		len(c.buffer) == 0 && len(c.heldQueries) == 0 &&
		len(c.heldHandoffs) == 0 && !c.relayVia.Valid()
}

// SnapshotMember captures this member's persistent image, in queue and
// stack mode alike: the stack's residual combiner word, anchor-side
// tickets (inside batch.AnchorState) and pending stage-4 ticket waits
// are part of the image. It must run on the transport's runner goroutine
// (tcp.Peer.DoSync), where no handler is concurrently mutating node
// state. It fails with ErrNotQuiescent while any local node is inside a
// join/leave handshake.
//
//skueue:snapshot-capture Cluster Node
func (cl *Cluster) SnapshotMember() (*MemberSnapshot, error) {
	if !cl.memberMode() {
		return nil, errors.New("core: only networked members snapshot (the simulator has no crashes)")
	}
	snap := &MemberSnapshot{
		Index:    int32(cl.reqBase>>ReqIDMemberShift) - 1,
		ReqSeq:   cl.reqSeq,
		Issued:   cl.issued,
		Finished: cl.finished,
	}
	for _, p := range cl.procs {
		snap.Procs = append(snap.Procs, ProcessImage{ID: p.ID, Nodes: p.Nodes, Joining: p.Joining, Left: p.Left})
	}
	ids := make([]transport.NodeID, 0, len(cl.nodes))
	for id := range cl.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := cl.nodes[id]
		if !n.snapshottable() {
			return nil, fmt.Errorf("%w: node %v mid-churn", ErrNotQuiescent, n.self)
		}
		if len(n.heldServes) > 0 {
			// A held serve is delivered-but-unapplied link state the image
			// does not model: its delivery cursor already advanced, so a
			// snapshot taken now could release the ack and lose the serve
			// for good. Held serves drain within a wave; skip and retry.
			return nil, fmt.Errorf("%w: node %v holds replayed serves", ErrNotQuiescent, n.self)
		}
		img := NodeImage{
			Self: n.self, Pred: n.pred, Succ: n.succ,
			SibL: n.sibL, SibM: n.sibM, SibR: n.sibR,
			SibIn:        n.sibIn,
			ClientID:     n.clientID,
			Anchor:       n.anchorRole,
			Ast:          n.ast,
			NextElemSeq:  n.nextElemSeq,
			NextLocalSeq: n.nextLocalSeq,
			WaveSeq:      n.waveSeq,
			Pending:      opImages(n.pending),
			Waiting:      subImages(n.waiting),
			InOwnB:       n.inOwn.B,
			Entries:      n.store.Entries(),
			LastEpoch:    n.churn.lastEpoch,
			EpochCounter: n.churn.epochCounter,
			PendChurn:    n.churn.pendChurn,
		}
		if n.inBatch != nil {
			img.InBatch = subImages(n.inBatch)
			img.InOwnOps = opImages(n.inOwn.ops)
		}
		// Strategy-private state (stack: combiner residual, outstanding
		// stage-4 waits, unacknowledged PUT IDs) is captured by the mode
		// strategy; the image fields stay zero for the other modes.
		n.disc.capture(n, &img)
		img.AppliedPuts = n.appliedPuts.entries()
		img.ServedGets = n.servedGets.entries()
		for from, wave := range n.foldedWaves {
			img.FoldedWaves = append(img.FoldedWaves, FoldedWaveImage{From: from, WaveSeq: wave})
		}
		sort.Slice(img.FoldedWaves, func(i, j int) bool { return img.FoldedWaves[i].From < img.FoldedWaves[j].From })
		for reqID, reply := range n.earlyReplies {
			img.EarlyReplies = append(img.EarlyReplies, EarlyReplyImage{ReqID: reqID, Entry: reply.Entry})
		}
		sort.Slice(img.EarlyReplies, func(i, j int) bool { return img.EarlyReplies[i].ReqID < img.EarlyReplies[j].ReqID })
		img.Parked = parkedImage(n.store)
		reqIDs := make([]uint64, 0, len(n.pendingGets))
		for reqID := range n.pendingGets {
			reqIDs = append(reqIDs, reqID)
		}
		sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })
		for _, reqID := range reqIDs {
			gc := n.pendingGets[reqID]
			img.Gets = append(img.Gets, GetImage{ReqID: reqID, Born: gc.born, LocalSeq: gc.localSeq, Value: gc.value})
		}
		snap.Nodes = append(snap.Nodes, img)
	}
	snap.History = append(snap.History, cl.hist.Ops...)
	return snap, nil
}

// parkedImage lists a store's parked GETs without disturbing them.
func parkedImage(s *dht.Store) []dht.ParkedEntry {
	ents, parked := s.ExtractAll()
	for _, e := range ents {
		s.Insert(e)
	}
	for _, pk := range parked {
		s.Park(pk.Pos, pk.Waiter)
	}
	return parked
}

// RestoreMember rebuilds the Cluster fragment of a member restarting
// after a fail-stop crash: nodes are re-registered at their snapshotted
// IDs with their snapshotted topology, DHT fragment and wave buffers, so
// the member resumes exactly where the image was cut. The transport must
// be restored to the matching state (tcp.Peer.RestoreState) so peers
// replay everything the image misses.
//
//skueue:snapshot-restore Cluster Node
func RestoreMember(cfg Config, snap *MemberSnapshot, net transport.Network) (*Cluster, error) {
	reg, ok := net.(transport.Registry)
	if !ok {
		return nil, errors.New("core: member backend does not support fixed-address registration")
	}
	if snap.Index < 0 {
		return nil, fmt.Errorf("core: invalid member index %d in snapshot", snap.Index)
	}
	RegisterWireTypes()
	cl := &Cluster{
		cfg:      cfg,
		net:      net,
		reg:      reg,
		labels:   xrand.NewHasher(cfg.Seed, "labels"),
		keyHash:  xrand.NewHasher(cfg.Seed, "positions"),
		nodes:    make(map[transport.NodeID]*Node),
		hist:     &seqcheck.History{},
		reqBase:  uint64(snap.Index+1) << ReqIDMemberShift,
		reqSeq:   snap.ReqSeq,
		issued:   snap.Issued,
		finished: snap.Finished,
		nextProc: int32(cfg.Processes),
	}
	cl.hist.Ops = append(cl.hist.Ops, snap.History...)
	for _, pi := range snap.Procs {
		cl.procs = append(cl.procs, &Process{ID: pi.ID, Nodes: pi.Nodes, Joining: pi.Joining, Left: pi.Left})
	}
	for _, img := range snap.Nodes {
		n := &Node{
			cl:           cl,
			disc:         cl.newDiscipline(),
			self:         img.Self,
			clientID:     img.ClientID,
			pred:         img.Pred,
			succ:         img.Succ,
			sibL:         img.SibL,
			sibM:         img.SibM,
			sibR:         img.SibR,
			sibIn:        img.SibIn,
			anchorRole:   img.Anchor,
			ast:          img.Ast,
			nextElemSeq:  img.NextElemSeq,
			nextLocalSeq: img.NextLocalSeq,
			waveSeq:      img.WaveSeq,
			pending:      opsFromImages(img.Pending),
			waiting:      subsFromImages(img.Waiting),
			store:        dht.NewStore(),
			pendingGets:  make(map[uint64]getCtx),
		}
		if img.InBatch != nil {
			n.inBatch = subsFromImages(img.InBatch)
			n.inOwn = ownWave{ops: opsFromImages(img.InOwnOps), B: img.InOwnB}
		}
		n.disc.restoreImage(n, &img)
		n.appliedPuts.restore(img.AppliedPuts)
		n.servedGets.restore(img.ServedGets)
		if len(img.FoldedWaves) > 0 {
			n.foldedWaves = make(map[transport.NodeID]int64, len(img.FoldedWaves))
			for _, sw := range img.FoldedWaves {
				n.foldedWaves[sw.From] = sw.WaveSeq
			}
		}
		if len(img.EarlyReplies) > 0 {
			n.earlyReplies = make(map[uint64]getReply, len(img.EarlyReplies))
			for _, er := range img.EarlyReplies {
				n.earlyReplies[er.ReqID] = getReply{ReqID: er.ReqID, Entry: er.Entry}
			}
		}
		for _, ent := range img.Entries {
			n.store.Insert(ent)
		}
		for _, pk := range img.Parked {
			n.store.Park(pk.Pos, pk.Waiter)
		}
		for _, g := range img.Gets {
			n.pendingGets[g.ReqID] = getCtx{born: g.Born, localSeq: g.LocalSeq, value: g.Value}
		}
		n.churn.joining = false
		n.churn.relayVia = ldb.Ref{ID: transport.None}
		n.churn.lastEpoch = img.LastEpoch
		n.churn.epochCounter = img.EpochCounter
		n.churn.pendChurn = img.PendChurn
		cl.nodes[img.Self.ID] = n
		reg.Register(img.Self.ID, n)
	}
	return cl, nil
}
