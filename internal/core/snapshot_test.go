package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"skueue/internal/batch"
	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// memNet is a minimal single-threaded member-mode backend: a registry and
// a FIFO delivery queue driven explicitly by the test. It stands in for
// the TCP peer so snapshot/restore can be exercised without sockets.
type memNet struct {
	t     *testing.T
	nodes map[transport.NodeID]transport.Handler
	ctxs  map[transport.NodeID]*transport.Context
	order []transport.NodeID
	queue []memEnv
	now   int64
	rng   *xrand.RNG
}

type memEnv struct {
	from, to transport.NodeID
	payload  any
}

func newMemNet(t *testing.T) *memNet {
	return &memNet{
		t:     t,
		nodes: make(map[transport.NodeID]transport.Handler),
		ctxs:  make(map[transport.NodeID]*transport.Context),
		rng:   xrand.New(1),
	}
}

func (m *memNet) Send(from, to transport.NodeID, payload any) {
	m.queue = append(m.queue, memEnv{from, to, payload})
}
func (m *memNet) Spawn(h transport.Handler) transport.NodeID {
	m.t.Fatal("memNet: Spawn not supported")
	return transport.None
}
func (m *memNet) Now() int64                       { return m.now }
func (m *memNet) Rand() *xrand.RNG                 { return m.rng }
func (m *memNet) StopTimeouts(id transport.NodeID) {}
func (m *memNet) Deactivate(id transport.NodeID)   { delete(m.nodes, id) }
func (m *memNet) Register(id transport.NodeID, h transport.Handler) {
	ctx := transport.NewContext(m, id)
	m.nodes[id] = h
	m.ctxs[id] = &ctx
	m.order = append(m.order, id)
	h.OnInit(&ctx)
}

// step runs one round: TIMEOUT everywhere, then drain deliveries.
func (m *memNet) step() {
	m.now++
	for _, id := range m.order {
		if h, ok := m.nodes[id]; ok {
			h.OnTimeout(m.ctxs[id])
		}
	}
	for len(m.queue) > 0 {
		e := m.queue[0]
		m.queue = m.queue[1:]
		if h, ok := m.nodes[e.to]; ok {
			h.OnMessage(m.ctxs[e.to], e.from, e.payload)
		}
	}
}

func (m *memNet) drain(cl *Cluster, maxRounds int) {
	for i := 0; i < maxRounds && cl.Finished() < cl.Issued(); i++ {
		m.step()
	}
	if cl.Finished() < cl.Issued() {
		m.t.Fatalf("cluster did not drain: %d/%d", cl.Finished(), cl.Issued())
	}
}

// TestMemberSnapshotRoundTrip drives a member-mode cluster through real
// traffic, snapshots it, pushes the image through the gob codec (the
// on-disk representation), restores a fresh cluster from it, and checks
// the restored member both preserves the old state (elements, history)
// and keeps serving new operations consistently.
func TestMemberSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Processes: 2, Seed: 7, AckAllPuts: true}
	net1 := newMemNet(t)
	cl, err := NewMember(cfg, 0, []int32{0, 1}, net1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cl.EnqueueBlob(cl.Client(i%2), []byte{byte('a' + i)})
	}
	net1.drain(cl, 200)
	cl.Dequeue(cl.Client(0))
	cl.Dequeue(cl.Client(1))
	net1.drain(cl, 200)

	snap, err := cl.SnapshotMember()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var decoded MemberSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}

	net2 := newMemNet(t)
	cl2, err := RestoreMember(cfg, &decoded, net2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := cl2.TotalStored(), cl.TotalStored(); got != want {
		t.Fatalf("restored member stores %d elements, want %d", got, want)
	}
	if got, want := len(cl2.History().Ops), len(cl.History().Ops); got != want {
		t.Fatalf("restored history has %d ops, want %d", got, want)
	}
	if cl2.Issued() != cl.Issued() || cl2.Finished() != cl.Finished() {
		t.Fatalf("restored counters %d/%d, want %d/%d", cl2.Finished(), cl2.Issued(), cl.Finished(), cl.Issued())
	}

	// The restored member keeps serving: drain the remaining elements and
	// verify the whole pre+post history is sequentially consistent.
	for i := 0; i < 4; i++ {
		cl2.Dequeue(cl2.Client(i % 2))
	}
	net2.drain(cl2, 400)
	if err := cl2.CheckConsistency(); err != nil {
		t.Fatalf("restored member history inconsistent: %v", err)
	}
}

// TestMemberSnapshotStackRoundTrip is the stack-mode twin: the snapshot
// is taken with a NON-EMPTY combiner residual (a buffered pop at one
// node, buffered pushes at another) so the §VI word-combining state must
// survive the gob round trip and the restored member must complete the
// buffered operations exactly once.
func TestMemberSnapshotStackRoundTrip(t *testing.T) {
	cfg := Config{Processes: 2, Seed: 11, Mode: batch.Stack, AckAllPuts: true}
	net1 := newMemNet(t)
	cl, err := NewMember(cfg, 0, []int32{0, 1}, net1)
	if err != nil {
		t.Fatal(err)
	}
	// Settled traffic first, so the DHT fragment is non-trivial.
	for i := 0; i < 4; i++ {
		cl.EnqueueBlob(cl.Client(i%2), []byte{byte('a' + i)})
	}
	net1.drain(cl, 300)

	// Mid-flight state: a pop buffered at process 0 (nothing local to
	// combine with), pushes buffered at process 1.
	cl.Dequeue(cl.Client(0))
	cl.EnqueueBlob(cl.Client(1), []byte{'x'})
	cl.EnqueueBlob(cl.Client(1), []byte{'y'})

	snap, err := cl.SnapshotMember()
	if err != nil {
		t.Fatalf("stack snapshot: %v", err)
	}
	st := snap.Stats()
	if st.CombinerPops != 1 || st.CombinerPushes != 2 {
		t.Fatalf("snapshot residual = %d pops, %d pushes; want 1, 2", st.CombinerPops, st.CombinerPushes)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var decoded MemberSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}

	net2 := newMemNet(t)
	cl2, err := RestoreMember(cfg, &decoded, net2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := cl2.TotalStored(), cl.TotalStored(); got != want {
		t.Fatalf("restored member stores %d elements, want %d", got, want)
	}
	// The buffered residual completes after the restart: the pop and both
	// pushes were issued but unfinished at the cut.
	net2.drain(cl2, 400)
	if cl2.Finished() != cl2.Issued() {
		t.Fatalf("restored member finished %d/%d", cl2.Finished(), cl2.Issued())
	}
	// Drain the structure and verify Definition 1 end to end.
	remaining := cl2.TotalStored()
	for i := 0; i < remaining; i++ {
		cl2.Dequeue(cl2.Client(i % 2))
	}
	net2.drain(cl2, 600)
	if err := cl2.CheckConsistency(); err != nil {
		t.Fatalf("restored stack history inconsistent: %v", err)
	}
	if got := cl2.TotalStored(); got != 0 {
		t.Fatalf("%d elements left after full drain", got)
	}
}
