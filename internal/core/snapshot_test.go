package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// memNet is a minimal single-threaded member-mode backend: a registry and
// a FIFO delivery queue driven explicitly by the test. It stands in for
// the TCP peer so snapshot/restore can be exercised without sockets.
type memNet struct {
	t     *testing.T
	nodes map[transport.NodeID]transport.Handler
	ctxs  map[transport.NodeID]*transport.Context
	order []transport.NodeID
	queue []memEnv
	now   int64
	rng   *xrand.RNG
}

type memEnv struct {
	from, to transport.NodeID
	payload  any
}

func newMemNet(t *testing.T) *memNet {
	return &memNet{
		t:     t,
		nodes: make(map[transport.NodeID]transport.Handler),
		ctxs:  make(map[transport.NodeID]*transport.Context),
		rng:   xrand.New(1),
	}
}

func (m *memNet) Send(from, to transport.NodeID, payload any) {
	m.queue = append(m.queue, memEnv{from, to, payload})
}
func (m *memNet) Spawn(h transport.Handler) transport.NodeID {
	m.t.Fatal("memNet: Spawn not supported")
	return transport.None
}
func (m *memNet) Now() int64                       { return m.now }
func (m *memNet) Rand() *xrand.RNG                 { return m.rng }
func (m *memNet) StopTimeouts(id transport.NodeID) {}
func (m *memNet) Deactivate(id transport.NodeID)   { delete(m.nodes, id) }
func (m *memNet) Register(id transport.NodeID, h transport.Handler) {
	ctx := transport.NewContext(m, id)
	m.nodes[id] = h
	m.ctxs[id] = &ctx
	m.order = append(m.order, id)
	h.OnInit(&ctx)
}

// step runs one round: TIMEOUT everywhere, then drain deliveries.
func (m *memNet) step() {
	m.now++
	for _, id := range m.order {
		if h, ok := m.nodes[id]; ok {
			h.OnTimeout(m.ctxs[id])
		}
	}
	for len(m.queue) > 0 {
		e := m.queue[0]
		m.queue = m.queue[1:]
		if h, ok := m.nodes[e.to]; ok {
			h.OnMessage(m.ctxs[e.to], e.from, e.payload)
		}
	}
}

func (m *memNet) drain(cl *Cluster, maxRounds int) {
	for i := 0; i < maxRounds && cl.Finished() < cl.Issued(); i++ {
		m.step()
	}
	if cl.Finished() < cl.Issued() {
		m.t.Fatalf("cluster did not drain: %d/%d", cl.Finished(), cl.Issued())
	}
}

// TestMemberSnapshotRoundTrip drives a member-mode cluster through real
// traffic, snapshots it, pushes the image through the gob codec (the
// on-disk representation), restores a fresh cluster from it, and checks
// the restored member both preserves the old state (elements, history)
// and keeps serving new operations consistently.
func TestMemberSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Processes: 2, Seed: 7, AckAllPuts: true}
	net1 := newMemNet(t)
	cl, err := NewMember(cfg, 0, []int32{0, 1}, net1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cl.EnqueueBlob(cl.Client(i%2), []byte{byte('a' + i)})
	}
	net1.drain(cl, 200)
	cl.Dequeue(cl.Client(0))
	cl.Dequeue(cl.Client(1))
	net1.drain(cl, 200)

	snap, err := cl.SnapshotMember()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var decoded MemberSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}

	net2 := newMemNet(t)
	cl2, err := RestoreMember(cfg, &decoded, net2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := cl2.TotalStored(), cl.TotalStored(); got != want {
		t.Fatalf("restored member stores %d elements, want %d", got, want)
	}
	if got, want := len(cl2.History().Ops), len(cl.History().Ops); got != want {
		t.Fatalf("restored history has %d ops, want %d", got, want)
	}
	if cl2.Issued() != cl.Issued() || cl2.Finished() != cl.Finished() {
		t.Fatalf("restored counters %d/%d, want %d/%d", cl2.Finished(), cl2.Issued(), cl.Finished(), cl.Issued())
	}

	// The restored member keeps serving: drain the remaining elements and
	// verify the whole pre+post history is sequentially consistent.
	for i := 0; i < 4; i++ {
		cl2.Dequeue(cl2.Client(i % 2))
	}
	net2.drain(cl2, 400)
	if err := cl2.CheckConsistency(); err != nil {
		t.Fatalf("restored member history inconsistent: %v", err)
	}
}

// TestMemberSnapshotStackRoundTrip is the stack-mode twin: the snapshot
// is taken with a NON-EMPTY combiner residual (a buffered pop at one
// node, buffered pushes at another) so the §VI word-combining state must
// survive the gob round trip and the restored member must complete the
// buffered operations exactly once.
func TestMemberSnapshotStackRoundTrip(t *testing.T) {
	cfg := Config{Processes: 2, Seed: 11, Mode: batch.Stack, AckAllPuts: true}
	net1 := newMemNet(t)
	cl, err := NewMember(cfg, 0, []int32{0, 1}, net1)
	if err != nil {
		t.Fatal(err)
	}
	// Settled traffic first, so the DHT fragment is non-trivial.
	for i := 0; i < 4; i++ {
		cl.EnqueueBlob(cl.Client(i%2), []byte{byte('a' + i)})
	}
	net1.drain(cl, 300)

	// Mid-flight state: a pop buffered at process 0 (nothing local to
	// combine with), pushes buffered at process 1.
	cl.Dequeue(cl.Client(0))
	cl.EnqueueBlob(cl.Client(1), []byte{'x'})
	cl.EnqueueBlob(cl.Client(1), []byte{'y'})

	snap, err := cl.SnapshotMember()
	if err != nil {
		t.Fatalf("stack snapshot: %v", err)
	}
	st := snap.Stats()
	if st.CombinerPops != 1 || st.CombinerPushes != 2 {
		t.Fatalf("snapshot residual = %d pops, %d pushes; want 1, 2", st.CombinerPops, st.CombinerPushes)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var decoded MemberSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}

	net2 := newMemNet(t)
	cl2, err := RestoreMember(cfg, &decoded, net2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := cl2.TotalStored(), cl.TotalStored(); got != want {
		t.Fatalf("restored member stores %d elements, want %d", got, want)
	}
	// The buffered residual completes after the restart: the pop and both
	// pushes were issued but unfinished at the cut.
	net2.drain(cl2, 400)
	if cl2.Finished() != cl2.Issued() {
		t.Fatalf("restored member finished %d/%d", cl2.Finished(), cl2.Issued())
	}
	// Drain the structure and verify Definition 1 end to end.
	remaining := cl2.TotalStored()
	for i := 0; i < remaining; i++ {
		cl2.Dequeue(cl2.Client(i % 2))
	}
	net2.drain(cl2, 600)
	if err := cl2.CheckConsistency(); err != nil {
		t.Fatalf("restored stack history inconsistent: %v", err)
	}
	if got := cl2.TotalStored(); got != 0 {
		t.Fatalf("%d elements left after full drain", got)
	}
}

// roundTrip pushes a snapshot through the gob codec (the on-disk
// representation) so the restored state went through exactly what a
// restart sees.
func roundTrip(t *testing.T, snap *MemberSnapshot) *MemberSnapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var decoded MemberSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &decoded
}

// TestSnapshotCarriesEarlyReplies is the regression test for a recovery
// gap the statecomplete analyzer surfaced: a GET reply parked in
// Node.earlyReplies during a restart-replay window (delivered, cursor
// advanced, GET not yet re-registered by the journal replay) was not
// part of the member image. A snapshot cut in that window followed by a
// second crash lost the completion for good.
func TestSnapshotCarriesEarlyReplies(t *testing.T) {
	cfg := Config{Processes: 1, Seed: 3}
	net1 := newMemNet(t)
	cl, err := NewMember(cfg, 0, []int32{0}, net1)
	if err != nil {
		t.Fatal(err)
	}
	// Park a reply the way the restart-replay window does: the link
	// replayed a getReply whose GET has not been re-injected yet.
	var n *Node
	for _, cand := range cl.nodes {
		n = cand
		break
	}
	ent := dht.Entry{Pos: 7, Ticket: 1, Elem: dht.Element{}, Blob: []byte("held")}
	n.earlyReplies = map[uint64]getReply{42: {ReqID: 42, Entry: ent}}

	snap, err := cl.SnapshotMember()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	net2 := newMemNet(t)
	cl2, err := RestoreMember(cfg, roundTrip(t, snap), net2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	n2 := cl2.nodes[n.self.ID]
	if n2 == nil {
		t.Fatalf("restored cluster lost node %v", n.self.ID)
	}
	got, ok := n2.earlyReplies[42]
	if !ok {
		t.Fatalf("restored node dropped the parked early reply; a second crash would lose the completion")
	}
	if got.Entry.Pos != ent.Pos || !bytes.Equal(got.Entry.Blob, ent.Blob) {
		t.Fatalf("restored early reply = %+v, want entry %+v", got, ent)
	}
}

// TestStackSnapshotCarriesEarlyAcks is the stack-mode twin: a put-ack
// parked in stackDisc.earlyAcks (link-replayed ahead of the journal
// replay re-registering its PUT) must survive the snapshot, or the
// re-registered PUT waits for an ack that never comes again.
func TestStackSnapshotCarriesEarlyAcks(t *testing.T) {
	cfg := Config{Processes: 1, Seed: 5, Mode: batch.Stack}
	net1 := newMemNet(t)
	cl, err := NewMember(cfg, 0, []int32{0}, net1)
	if err != nil {
		t.Fatal(err)
	}
	var n *Node
	for _, cand := range cl.nodes {
		n = cand
		break
	}
	disc := n.disc.(*stackDisc)
	disc.earlyAcks = map[uint64]struct{}{99: {}, 7: {}}

	snap, err := cl.SnapshotMember()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	net2 := newMemNet(t)
	cl2, err := RestoreMember(cfg, roundTrip(t, snap), net2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	disc2 := cl2.nodes[n.self.ID].disc.(*stackDisc)
	if len(disc2.earlyAcks) != 2 {
		t.Fatalf("restored stack strategy has %d parked acks, want 2", len(disc2.earlyAcks))
	}
	for _, reqID := range []uint64{7, 99} {
		if _, ok := disc2.earlyAcks[reqID]; !ok {
			t.Errorf("parked ack for PUT %d lost across the snapshot", reqID)
		}
	}
}
