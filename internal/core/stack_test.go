package core

import (
	"testing"

	"skueue/internal/batch"
	"skueue/internal/seqcheck"
	"skueue/internal/xrand"
)

func stackCluster(t *testing.T, procs int, seed int64) *Cluster {
	t.Helper()
	return newCluster(t, Config{Processes: procs, Seed: seed, Mode: batch.Stack})
}

func TestStackSingleClientLIFO(t *testing.T) {
	// Pushes and pops issued in separate waves so nothing combines
	// locally: LIFO order must come from the protocol.
	cl := stackCluster(t, 2, 1)
	c := cl.Client(0)
	for i := 0; i < 5; i++ {
		cl.Enqueue(c)
	}
	drainAndCheck(t, cl, 5000)
	for i := 0; i < 5; i++ {
		cl.Dequeue(cl.Client(1))
	}
	drainAndCheck(t, cl, 5000)
	bySeq := map[int64]int64{}
	for _, op := range cl.History().Ops {
		if op.Kind == seqcheck.Pop && !op.Bottom {
			bySeq[op.LocalSeq] = op.Elem.Seq
		}
	}
	if len(bySeq) != 5 {
		t.Fatalf("got %d pops, want 5", len(bySeq))
	}
	// The consumer's pops in issue order must return 4,3,2,1,0.
	want := int64(4)
	for seq := int64(0); seq < 5; seq++ {
		if bySeq[seq] != want {
			t.Fatalf("pop %d returned element %d, want %d", seq, bySeq[seq], want)
		}
		want--
	}
}

func TestStackLocalCombining(t *testing.T) {
	// Pushes immediately followed by pops on the same node combine without
	// any protocol traffic (§VI).
	cl := stackCluster(t, 3, 2)
	c := cl.Client(0)
	cl.Enqueue(c)
	cl.Enqueue(c)
	cl.Dequeue(c)
	cl.Dequeue(c)
	if cl.Finished() != 4 {
		t.Fatalf("combining should complete all 4 ops instantly, finished %d", cl.Finished())
	}
	if cl.Metrics().CombinedOps != 4 {
		t.Fatalf("combined ops = %d, want 4", cl.Metrics().CombinedOps)
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	// The pops returned the pushes in LIFO order.
	var pops []int64
	for _, op := range cl.History().Ops {
		if op.Kind == seqcheck.Pop {
			pops = append(pops, op.Elem.Seq)
		}
	}
	if len(pops) != 2 || pops[0] != 1 || pops[1] != 0 {
		t.Fatalf("combined pops wrong: %v", pops)
	}
}

func TestStackPopEmptyBottom(t *testing.T) {
	cl := stackCluster(t, 2, 3)
	cl.Dequeue(cl.Client(0))
	cl.Dequeue(cl.Client(1))
	drainAndCheck(t, cl, 5000)
	for _, op := range cl.History().Ops {
		if !op.Bottom {
			t.Fatalf("pop on empty stack must return ⊥: %+v", op)
		}
	}
}

func TestStackPositionReuseAcrossWaves(t *testing.T) {
	// The §VI counterexample shape: (push, pop, push, pop) issued so that
	// the same position is reused with different tickets. With the stage-4
	// wait the result is consistent.
	cl := stackCluster(t, 2, 4)
	prod := cl.Client(0)
	cons := cl.Client(1)
	for round := 0; round < 4; round++ {
		cl.Enqueue(prod)
		drainAndCheck(t, cl, 5000)
		cl.Dequeue(cons)
		drainAndCheck(t, cl, 5000)
	}
	st := seqcheck.Summarize(cl.History())
	if st.Bottoms != 0 {
		t.Fatalf("all pops should hit: %+v", st)
	}
}

func TestStackConsistencySyncSweep(t *testing.T) {
	for seed := int64(30); seed < 38; seed++ {
		cl := newCluster(t, Config{Processes: 5, Seed: seed, Mode: batch.Stack, ShuffleTimeouts: true})
		rng := xrand.New(seed * 3)
		clients := cl.ActiveClients()
		for round := 0; round < 60; round++ {
			for i := 0; i < 2; i++ {
				c := clients[rng.Intn(len(clients))]
				if rng.Bool(0.5) {
					cl.Enqueue(c)
				} else {
					cl.Dequeue(c)
				}
			}
			cl.Step()
		}
		drainAndCheck(t, cl, 30000)
	}
}

func TestStackConsistencyAsync(t *testing.T) {
	for seed := int64(40); seed < 50; seed++ {
		cl := newCluster(t, Config{
			Processes: 4, Seed: seed, Mode: batch.Stack,
			Async: true, MaxDelay: 12, TimeoutEvery: 5,
		})
		rng := xrand.New(seed)
		clients := cl.ActiveClients()
		for burst := 0; burst < 30; burst++ {
			c := clients[rng.Intn(len(clients))]
			if rng.Bool(0.5) {
				cl.Enqueue(c)
			} else {
				cl.Dequeue(c)
			}
			cl.Run(int64(1 + rng.Intn(20)))
		}
		drainAndCheck(t, cl, 200000)
	}
}

func TestStackWithoutCombiningIsUnsound(t *testing.T) {
	// Ablation finding: local combining is not merely the §VI throughput
	// optimization — the canonical pop^a push^b batch shape it produces is
	// load-bearing for stack correctness. Without it, a node's batch can
	// interleave push and pop runs, a wave can reuse a freed position for
	// a new push, and two pops of the SAME wave can race for the same
	// position in the DHT: one steals the other's element and the loser
	// parks forever (the stage-4 wait only separates waves, so it cannot
	// help). This test demonstrates the failure mode; DESIGN.md §7
	// documents it.
	broken := 0
	for seed := int64(50); seed < 60; seed++ {
		cl := newCluster(t, Config{
			Processes: 4, Seed: seed, Mode: batch.Stack,
			DisableLocalCombining: true, ShuffleTimeouts: true,
		})
		rng := xrand.New(seed)
		clients := cl.ActiveClients()
		for round := 0; round < 50; round++ {
			c := clients[rng.Intn(len(clients))]
			if rng.Bool(0.5) {
				cl.Enqueue(c)
			} else {
				cl.Dequeue(c)
			}
			cl.Step()
		}
		if cl.Metrics().CombinedOps != 0 {
			t.Fatalf("combining disabled but ops combined")
		}
		if !cl.Drain(30000) || cl.CheckConsistency() != nil {
			broken++
		}
	}
	if broken == 0 {
		t.Fatalf("expected the uncombined stack to misbehave on some seeds")
	}
	t.Logf("uncombined stack misbehaved on %d/10 seeds (stuck pops or inconsistency)", broken)
}

func TestStackBatchConstantSize(t *testing.T) {
	// Theorem 20: with local combining, stack batches have constant size
	// (at most 3 runs) regardless of the request rate.
	cl := stackCluster(t, 4, 60)
	rng := xrand.New(1)
	clients := cl.ActiveClients()
	for round := 0; round < 150; round++ {
		for _, c := range clients {
			if rng.Bool(0.5) {
				cl.Enqueue(c)
			} else {
				cl.Dequeue(c)
			}
		}
		cl.Step()
	}
	drainAndCheck(t, cl, 30000)
	if m := cl.Metrics().MaxBatchRuns; m > 3 {
		t.Fatalf("stack batch grew to %d runs; Theorem 20 promises <= 3", m)
	}
}

func TestStackTicketsMonotone(t *testing.T) {
	cl := stackCluster(t, 2, 61)
	c := cl.Client(0)
	for i := 0; i < 3; i++ {
		cl.Enqueue(c)
		drainAndCheck(t, cl, 5000)
		cl.Dequeue(cl.Client(1))
		drainAndCheck(t, cl, 5000)
	}
	a := cl.AnchorNode()
	st := a.AnchorState()
	if st.Ticket != 3 {
		t.Fatalf("ticket counter %d, want 3 (one per push)", st.Ticket)
	}
	if st.Last != 0 {
		t.Fatalf("stack should be empty, last=%d", st.Last)
	}
}

func TestStackNoWaitViolationReachable(t *testing.T) {
	// E9: without the stage-4 wait, the paper's counterexample (§VI) can
	// produce an inconsistent execution under adversarial asynchrony. We
	// sweep seeds and expect at least one violation — and, crucially, the
	// checker must be the thing that catches it.
	violations := 0
	for seed := int64(0); seed < 120; seed++ {
		cl, err := New(Config{
			Processes: 2, Seed: seed, Mode: batch.Stack,
			DisableStage4Wait: true, DisableLocalCombining: true,
			Async: true, MaxDelay: 40, TimeoutEvery: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(seed)
		clients := cl.ActiveClients()
		// Alternating push/pop traffic reusing the same positions.
		for burst := 0; burst < 12; burst++ {
			c := clients[rng.Intn(len(clients))]
			cl.Enqueue(c)
			cl.Run(int64(1 + rng.Intn(6)))
			c = clients[rng.Intn(len(clients))]
			cl.Dequeue(c)
			cl.Run(int64(1 + rng.Intn(6)))
		}
		if !cl.Drain(200000) {
			// Without the wait, a pop can park forever on a bound that no
			// later put satisfies — that is itself the §VI failure mode.
			violations++
			continue
		}
		if err := cl.CheckConsistency(); err != nil {
			violations++
		}
	}
	if violations == 0 {
		t.Fatalf("expected at least one consistency violation without the stage-4 wait across 120 seeds")
	}
	t.Logf("stage-4-wait ablation: %d/120 seeds violated sequential consistency", violations)
}
