package core

import "skueue/internal/wire"

// RegisterWireTypes registers every protocol message that can cross a
// member boundary with the wire codec, so envelopes carrying them encode
// and decode on both ends. The networked transport calls it once at
// startup; the simulator never serializes and does not need it.
//
// Keep this list in sync with messages.go and the churn control messages
// in churn.go: a type missing here fails loudly ("gob: name not registered
// for interface") the first time it crosses the wire.
func RegisterWireTypes() {
	// Wave pipeline (Stages 1-4).
	wire.Register(aggregateMsg{})
	wire.Register(serveMsg{})
	wire.Register(routedMsg{})
	wire.Register(directMsg{})
	wire.Register(putReq{})
	wire.Register(getReq{})
	wire.Register(getReply{})
	wire.Register(putAck{})
	wire.Register(rejectBatch{})

	// Churn: join side (§IV-A).
	wire.Register(joinReq{})
	wire.Register(adoptMsg{})
	wire.Register(transferCmd{})
	wire.Register(handoverMsg{})
	wire.Register(migrateEntry{})
	wire.Register(migrateParked{})
	wire.Register(setNeighbors{})
	wire.Register(setPred{})
	wire.Register(introAck{})
	wire.Register(sibHello{})
	wire.Register(updateAck{})
	wire.Register(updateOver{})

	// Churn: leave side (§IV-B).
	wire.Register(leavePermissionReq{})
	wire.Register(leaveGrant{})
	wire.Register(leaveHandoff{})
	wire.Register(redirectMsg{})
	wire.Register(absorbMsg{})
	wire.Register(absorbAck{})
	wire.Register(dissolveQuery{})
	wire.Register(dissolveReply{})
	wire.Register(anchorWalk{})
}
