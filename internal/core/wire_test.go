package core

import (
	"net"
	"reflect"
	"testing"

	"skueue/internal/batch"
	"skueue/internal/dht"
	"skueue/internal/ldb"
	"skueue/internal/wire"
)

// TestWireRoundTrip pushes one of every registered protocol message
// through the framed gob codec and checks it survives unchanged. This is
// the guard for the RegisterWireTypes/messages.go sync invariant and for
// gob-compatibility of the message structs (exported fields only).
func TestWireRoundTrip(t *testing.T) {
	RegisterWireTypes()

	ref := ldb.Ref{ID: 7, Point: ldb.Point{Label: 1 << 60, Tie: 42}, Kind: ldb.Middle}
	ent := dht.Entry{Pos: 3, Ticket: 1, Elem: dht.Element{Origin: 2, Seq: 9}, Blob: []byte("v")}
	snap := nodeSnapshot{
		Self: ref, Pred: ref, Succ: ref, SibL: ref, SibM: ref, SibR: ref,
		AnchorRole: true,
		Anchor:     anchorBundle{Ast: batch.AnchorState{First: 1, Last: 4, Value: 9, Ticket: 2}, PendChurn: 1, EpochCounter: 3},
		Waiting:    []subBatch{{From: 5, B: batch.Batch{Runs: []int64{1, 2}, J: 1}}},
		Entries:    []dht.Entry{ent},
		Parked:     []dht.ParkedEntry{{Pos: 3, Waiter: dht.Waiter{Requester: 4, ReqID: 8, Bound: 1}}},
		Joiners:    []joinerInfo{{Ref: ref}},
		SibIn:      [3]bool{true, false, true},
	}

	msgs := []any{
		aggregateMsg{From: ref, B: batch.Batch{Runs: []int64{2, 1}, J: 1, L: 2}, WaveSeq: 17},
		serveMsg{Assigns: []batch.RunAssign{{Iv: batch.Interval{Lo: 1, Hi: 3}, ValueBase: 5, Ticket: 2}}, UpdateEpoch: 4, WaveSeq: 17},
		routedMsg{RS: ldb.RouteState{Target: 123, BitsLeft: -1}, Inner: joinReq{NewNode: ref}},
		directMsg{Key: 77, Inner: getReq{Pos: 1, Bound: 2, Requester: 3, ReqID: 4}},
		putReq{Pos: 1, Ticket: 2, Elem: ent.Elem, Blob: []byte("payload"), Requester: 3, ReqID: 4, Born: 5, Client: 6, LocalSeq: 7, Value: 8},
		getReq{Pos: 1, Bound: 2, Requester: 3, ReqID: 4},
		getReply{ReqID: 4, Entry: ent},
		putAck{ReqID: 9},
		rejectBatch{B: batch.Batch{Runs: []int64{0, 3}}},
		joinReq{NewNode: ref},
		adoptMsg{Responsible: ref, From: 1, End: 2},
		transferCmd{To: ref, From: 1, End: 2},
		handoverMsg{Entries: []dht.Entry{ent}, Parked: []dht.ParkedEntry{{Pos: 1}}},
		migrateEntry{Ent: ent},
		migrateParked{Pos: 2, W: dht.Waiter{Requester: 1, ReqID: 2, Bound: 3}},
		setNeighbors{Pred: ref, Succ: ref, Epoch: 2},
		setPred{Pred: ref, Epoch: 2},
		introAck{Epoch: 2},
		sibHello{Kind: ldb.Right},
		updateAck{Epoch: 2},
		updateOver{Epoch: 2},
		leavePermissionReq{From: ref},
		leaveGrant{},
		leaveHandoff{Snap: snap},
		redirectMsg{Old: ref, New: ref},
		absorbMsg{Entries: []dht.Entry{ent}, Succ: ref, Waiting: snap.Waiting, Joiners: snap.Joiners, Grants: []ldb.Ref{ref}, GrantedOpen: 1, AnchorRole: true, Anchor: snap.Anchor, Epoch: 2},
		absorbAck{Epoch: 2},
		dissolveQuery{Epoch: 2},
		dissolveReply{Epoch: 2, Yes: true},
		anchorWalk{Anchor: snap.Anchor},
	}

	a, b := net.Pipe()
	ca, cb := wire.NewConn(a), wire.NewConn(b)
	defer ca.Close()
	defer cb.Close()

	go func() {
		for i, m := range msgs {
			if err := ca.Write(wire.Envelope{From: 1, To: 2, Payload: m}); err != nil {
				t.Errorf("write msg %d (%T): %v", i, m, err)
				return
			}
		}
	}()
	for i, want := range msgs {
		got, err := cb.Read()
		if err != nil {
			t.Fatalf("read msg %d (%T): %v", i, want, err)
		}
		env, ok := got.(wire.Envelope)
		if !ok {
			t.Fatalf("msg %d: got %T, want Envelope", i, got)
		}
		if env.From != 1 || env.To != 2 {
			t.Fatalf("msg %d: envelope header %d->%d", i, env.From, env.To)
		}
		if !reflect.DeepEqual(env.Payload, want) {
			t.Fatalf("msg %d (%T): payload changed:\n got %+v\nwant %+v", i, want, env.Payload, want)
		}
	}
}
