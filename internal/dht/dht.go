// Package dht implements the storage component a virtual node contributes
// to the distributed hash table (paper §II-B, §III-F): the elements whose
// hashed position keys fall into the node's responsibility interval, plus
// the GET requests that arrived before their matching PUT and are parked
// until it shows up (the asynchronous model allows a GET to outrun the
// corresponding PUT).
//
// Entries are identified by their queue position; for the stack variant a
// position can hold several live entries distinguished by ticket (§VI),
// and a pop removes the newest entry whose ticket does not exceed the
// pop's bound. Queue entries simply use ticket 0 with bound 0.
//
// Routing, responsibility and handover policy belong to the protocol
// layer; this package only stores, matches and releases.
package dht

import (
	"fmt"
	"sort"

	"skueue/internal/transport"
)

// Element is a value stored in the distributed queue or stack. The paper
// assumes every element is enqueued at most once; uniqueness comes from
// the (origin process, per-origin sequence) pair.
type Element struct {
	Origin int32
	Seq    int64
}

func (e Element) String() string { return fmt.Sprintf("e%d.%d", e.Origin, e.Seq) }

// Entry is one stored element with its DHT identity. Blob is an opaque
// application payload riding with the element: the networked client layer
// stores the user's encoded value here so that a dequeue issued at a
// different cluster member than the enqueue can still return it. The
// simulated client layer keeps values outside the DHT and leaves Blob nil.
type Entry struct {
	Pos    int64
	Ticket int64
	Elem   Element
	Blob   []byte
}

// Waiter is a parked GET: who asked, which request of theirs this is, and
// the newest ticket they may take.
type Waiter struct {
	Requester transport.NodeID
	ReqID     uint64
	Bound     int64
}

// ParkedEntry pairs a waiter with the position it waits on, for handover.
type ParkedEntry struct {
	Pos    int64
	Waiter Waiter
}

// Released is a parked GET that a later PUT satisfied.
type Released struct {
	Waiter Waiter
	Entry  Entry
}

// Store is the per-node DHT fragment.
type Store struct {
	items  map[int64][]Entry // per position, ascending by ticket
	parked map[int64][]Waiter
	nItems int
	nPark  int
}

// NewStore returns an empty fragment.
func NewStore() *Store {
	return &Store{items: make(map[int64][]Entry), parked: make(map[int64][]Waiter)}
}

// Len returns the number of stored elements.
func (s *Store) Len() int { return s.nItems }

// Parked returns the number of parked GETs.
func (s *Store) Parked() int { return s.nPark }

// Put inserts an entry and returns any parked GETs it satisfies (at most
// one per Put in practice, but the slice keeps the API shape uniform).
// Inserting a duplicate (position, ticket) violates the protocol's unique
// position assignment and panics.
func (s *Store) Put(pos, ticket int64, e Element) []Released {
	return s.PutBlob(pos, ticket, e, nil)
}

// PutBlob is Put with an opaque application payload attached to the entry.
func (s *Store) PutBlob(pos, ticket int64, e Element, blob []byte) []Released {
	list := s.items[pos]
	i := sort.Search(len(list), func(i int) bool { return list[i].Ticket >= ticket })
	if i < len(list) && list[i].Ticket == ticket {
		panic(fmt.Sprintf("dht: duplicate put at pos=%d ticket=%d (have %v, new %v)", pos, ticket, list[i].Elem, e))
	}
	list = append(list, Entry{})
	copy(list[i+1:], list[i:])
	list[i] = Entry{Pos: pos, Ticket: ticket, Elem: e, Blob: blob}
	s.items[pos] = list
	s.nItems++

	var out []Released
	ws := s.parked[pos]
	for wi, w := range ws {
		if ent, ok := s.take(pos, w.Bound); ok {
			out = append(out, Released{Waiter: w, Entry: ent})
			ws = append(ws[:wi], ws[wi+1:]...)
			s.nPark--
			break
		}
	}
	if len(ws) == 0 {
		delete(s.parked, pos)
	} else {
		s.parked[pos] = ws
	}
	return out
}

// take removes and returns the newest entry at pos with ticket <= bound.
func (s *Store) take(pos, bound int64) (Entry, bool) {
	list := s.items[pos]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].Ticket <= bound {
			ent := list[i]
			list = append(list[:i], list[i+1:]...)
			if len(list) == 0 {
				delete(s.items, pos)
			} else {
				s.items[pos] = list
			}
			s.nItems--
			return ent, true
		}
	}
	return Entry{}, false
}

// Get removes and returns the matching entry for a GET(pos) with the given
// ticket bound. ok is false when no eligible entry is present; the caller
// then parks the request with Park.
func (s *Store) Get(pos, bound int64) (Entry, bool) {
	return s.take(pos, bound)
}

// Has reports whether an entry with exactly (pos, ticket) is stored. The
// networked protocol uses it to recognize a replayed duplicate PUT after
// a fail-stop restart, where Put's duplicate panic would be wrong.
func (s *Store) Has(pos, ticket int64) bool {
	for _, e := range s.items[pos] {
		if e.Ticket == ticket {
			return true
		}
	}
	return false
}

// Park records a GET whose PUT has not arrived yet. A waiter with the
// same request ID already parked at the position is not parked twice: a
// fail-stop restart can replay a GET while its original is still
// waiting, and a duplicate waiter would swallow a second element once
// positions are reused (stack mode). Under exactly-once delivery
// (simulator) duplicates cannot occur, so this changes nothing there.
func (s *Store) Park(pos int64, w Waiter) {
	for _, have := range s.parked[pos] {
		if have.ReqID == w.ReqID {
			return
		}
	}
	s.parked[pos] = append(s.parked[pos], w)
	s.nPark++
}

// Extract removes and returns every entry and parked GET whose position
// satisfies keep. It implements the data handover of JOIN and LEAVE
// (§IV): the predicate is "hashes into the receiver's interval".
func (s *Store) Extract(keep func(pos int64) bool) ([]Entry, []ParkedEntry) {
	var ents []Entry
	for pos, list := range s.items {
		if keep(pos) {
			ents = append(ents, list...)
			s.nItems -= len(list)
			delete(s.items, pos)
		}
	}
	var parked []ParkedEntry
	for pos, ws := range s.parked {
		if keep(pos) {
			for _, w := range ws {
				parked = append(parked, ParkedEntry{Pos: pos, Waiter: w})
			}
			s.nPark -= len(ws)
			delete(s.parked, pos)
		}
	}
	// Deterministic order for the simulation.
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].Pos != ents[j].Pos {
			return ents[i].Pos < ents[j].Pos
		}
		return ents[i].Ticket < ents[j].Ticket
	})
	sort.Slice(parked, func(i, j int) bool { return parked[i].Pos < parked[j].Pos })
	return ents, parked
}

// ExtractAll removes and returns everything (full handover on LEAVE).
func (s *Store) ExtractAll() ([]Entry, []ParkedEntry) {
	return s.Extract(func(int64) bool { return true })
}

// Insert adds a handed-over entry, satisfying parked GETs like Put does.
func (s *Store) Insert(ent Entry) []Released {
	return s.PutBlob(ent.Pos, ent.Ticket, ent.Elem, ent.Blob)
}

// Entries returns a sorted snapshot of all stored entries (tests, stats).
func (s *Store) Entries() []Entry {
	var out []Entry
	for _, list := range s.items {
		out = append(out, list...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Ticket < out[j].Ticket
	})
	return out
}
