package dht

import (
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	e := Element{Origin: 1, Seq: 7}
	if rel := s.Put(5, 0, e); len(rel) != 0 {
		t.Fatalf("unexpected releases: %v", rel)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	ent, ok := s.Get(5, 0)
	if !ok || ent.Elem != e {
		t.Fatalf("get failed: %v %v", ent, ok)
	}
	if s.Len() != 0 {
		t.Fatalf("len after get = %d", s.Len())
	}
	if _, ok := s.Get(5, 0); ok {
		t.Fatalf("second get should miss")
	}
}

func TestGetBeforePutParks(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get(9, 0); ok {
		t.Fatalf("get on empty store should miss")
	}
	w := Waiter{Requester: 3, ReqID: 42}
	s.Park(9, w)
	if s.Parked() != 1 {
		t.Fatalf("parked = %d", s.Parked())
	}
	rel := s.Put(9, 0, Element{Origin: 2, Seq: 1})
	if len(rel) != 1 || rel[0].Waiter != w || rel[0].Entry.Elem != (Element{Origin: 2, Seq: 1}) {
		t.Fatalf("release wrong: %v", rel)
	}
	if s.Parked() != 0 || s.Len() != 0 {
		t.Fatalf("store not drained: %d items %d parked", s.Len(), s.Parked())
	}
}

func TestPutDifferentPositionDoesNotRelease(t *testing.T) {
	s := NewStore()
	s.Park(1, Waiter{Requester: 1})
	if rel := s.Put(2, 0, Element{}); len(rel) != 0 {
		t.Fatalf("put at other position released a waiter")
	}
	if s.Parked() != 1 || s.Len() != 1 {
		t.Fatalf("state wrong")
	}
}

func TestStackTicketSelection(t *testing.T) {
	s := NewStore()
	// Same position, three generations of pushes.
	s.Put(4, 10, Element{Seq: 10})
	s.Put(4, 20, Element{Seq: 20})
	s.Put(4, 30, Element{Seq: 30})
	// A pop with bound 25 must take ticket 20 (newest <= bound).
	ent, ok := s.Get(4, 25)
	if !ok || ent.Ticket != 20 {
		t.Fatalf("got %v, want ticket 20", ent)
	}
	// Bound 5: nothing eligible (only 10 and 30 remain; 10 <= 5 false).
	if _, ok := s.Get(4, 5); ok {
		t.Fatalf("bound 5 should match nothing")
	}
	// Bound 100 takes the newest remaining, 30.
	ent, _ = s.Get(4, 100)
	if ent.Ticket != 30 {
		t.Fatalf("got ticket %d, want 30", ent.Ticket)
	}
}

func TestParkedBoundRespectedOnPut(t *testing.T) {
	s := NewStore()
	// Waiter may only take tickets <= 7; a newer put must not release it.
	w := Waiter{Requester: 1, ReqID: 1, Bound: 7}
	s.Park(3, w)
	if rel := s.Put(3, 9, Element{Seq: 9}); len(rel) != 0 {
		t.Fatalf("put with newer ticket released bounded waiter")
	}
	rel := s.Put(3, 6, Element{Seq: 6})
	if len(rel) != 1 || rel[0].Entry.Ticket != 6 {
		t.Fatalf("eligible put did not release waiter: %v", rel)
	}
}

func TestParkDedupesByReqID(t *testing.T) {
	s := NewStore()
	// A replayed GET (fail-stop restart) must not park a second waiter:
	// once positions are reused, the stale duplicate would swallow a
	// later element.
	w := Waiter{Requester: 1, ReqID: 42}
	s.Park(3, w)
	s.Park(3, w)
	if s.Parked() != 1 {
		t.Fatalf("duplicate park counted: %d waiters", s.Parked())
	}
	if rel := s.Put(3, 0, Element{Seq: 1}); len(rel) != 1 {
		t.Fatalf("put released %d waiters, want 1", len(rel))
	}
	// The duplicate must be gone too: a second put at the position (after
	// the first was consumed) has nobody to release.
	if rel := s.PutBlob(3, 1, Element{Seq: 2}, nil); len(rel) != 0 {
		t.Fatalf("stale duplicate waiter stole a later element: %v", rel)
	}
	// A different request at the same position still parks normally.
	s.Park(3, Waiter{Requester: 1, ReqID: 43, Bound: 99})
	if s.Parked() != 1 {
		t.Fatalf("distinct waiter rejected: %d parked", s.Parked())
	}
}

func TestDuplicatePutPanics(t *testing.T) {
	s := NewStore()
	s.Put(1, 0, Element{})
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate put should panic")
		}
	}()
	s.Put(1, 0, Element{Seq: 1})
}

func TestExtractByPredicate(t *testing.T) {
	s := NewStore()
	for pos := int64(1); pos <= 10; pos++ {
		s.Put(pos, 0, Element{Seq: pos})
	}
	s.Park(3, Waiter{ReqID: 3})
	s.Park(8, Waiter{ReqID: 8})
	ents, parked := s.Extract(func(pos int64) bool { return pos%2 == 0 })
	if len(ents) != 5 {
		t.Fatalf("extracted %d entries, want 5", len(ents))
	}
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Pos >= ents[i].Pos {
			t.Fatalf("extract not sorted: %v", ents)
		}
	}
	if len(parked) != 1 || parked[0].Pos != 8 {
		t.Fatalf("parked extraction wrong: %v", parked)
	}
	if s.Len() != 5 || s.Parked() != 1 {
		t.Fatalf("leftovers wrong: %d/%d", s.Len(), s.Parked())
	}
}

func TestExtractAllAndReinsert(t *testing.T) {
	a, b := NewStore(), NewStore()
	for pos := int64(1); pos <= 6; pos++ {
		a.Put(pos, pos, Element{Seq: pos})
	}
	ents, _ := a.ExtractAll()
	if a.Len() != 0 || len(ents) != 6 {
		t.Fatalf("extract all failed")
	}
	for _, ent := range ents {
		b.Insert(ent)
	}
	if b.Len() != 6 {
		t.Fatalf("reinsert failed")
	}
	ent, ok := b.Get(4, 99)
	if !ok || ent.Ticket != 4 {
		t.Fatalf("entry lost in handover: %v", ent)
	}
}

func TestInsertSatisfiesParked(t *testing.T) {
	s := NewStore()
	s.Park(2, Waiter{ReqID: 9, Bound: 5})
	rel := s.Insert(Entry{Pos: 2, Ticket: 1, Elem: Element{Seq: 1}})
	if len(rel) != 1 || rel[0].Waiter.ReqID != 9 {
		t.Fatalf("insert did not satisfy parked waiter")
	}
}

func TestEntriesSnapshotSorted(t *testing.T) {
	s := NewStore()
	s.Put(3, 2, Element{})
	s.Put(1, 0, Element{})
	s.Put(3, 1, Element{})
	ents := s.Entries()
	if len(ents) != 3 || ents[0].Pos != 1 || ents[1].Ticket != 1 || ents[2].Ticket != 2 {
		t.Fatalf("snapshot wrong: %v", ents)
	}
	if s.Len() != 3 {
		t.Fatalf("snapshot must not consume entries")
	}
}

func TestConservationProperty(t *testing.T) {
	// Random interleavings of puts and matching gets conserve elements:
	// every put is either still stored or was returned by exactly one get.
	f := func(ops []uint8) bool {
		s := NewStore()
		nextPos := int64(1)
		live := map[int64]bool{}
		returned := map[int64]bool{}
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				s.Put(nextPos, 0, Element{Seq: nextPos})
				live[nextPos] = true
				nextPos++
			} else {
				// Get the smallest live position.
				var pos int64 = -1
				for p := range live {
					if pos == -1 || p < pos {
						pos = p
					}
				}
				ent, ok := s.Get(pos, 0)
				if !ok || ent.Elem.Seq != pos || returned[pos] {
					return false
				}
				returned[pos] = true
				delete(live, pos)
			}
		}
		return s.Len() == len(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultipleWaitersFIFO(t *testing.T) {
	s := NewStore()
	s.Park(1, Waiter{ReqID: 1, Bound: 100})
	s.Park(1, Waiter{ReqID: 2, Bound: 100})
	rel := s.Put(1, 1, Element{Seq: 1})
	if len(rel) != 1 || rel[0].Waiter.ReqID != 1 {
		t.Fatalf("first parked waiter should release first: %v", rel)
	}
	rel = s.Put(1, 2, Element{Seq: 2})
	if len(rel) != 1 || rel[0].Waiter.ReqID != 2 {
		t.Fatalf("second waiter should release next: %v", rel)
	}
}

func TestElementString(t *testing.T) {
	if (Element{Origin: 3, Seq: 9}).String() != "e3.9" {
		t.Errorf("element string wrong")
	}
}
