// Package fixpoint implements exact fixed-point arithmetic on the unit
// interval [0,1), the label and key space of the linearized De Bruijn
// network and the DHT (paper §II). A Frac is a uint64 x interpreted as the
// real number x/2^64. All protocol-relevant operations — De Bruijn halving,
// clockwise distances and containment on the ring — are exact bit
// operations, so the implementation is deterministic across platforms and
// free of floating-point rounding.
package fixpoint

import (
	"fmt"
	"math"
	"math/bits"
)

// Frac is a number in [0,1) represented as numerator/2^64.
type Frac uint64

// Common constants.
const (
	Zero Frac = 0
	// Half is 0.5, the boundary between left virtual node labels [0, 0.5)
	// and right virtual node labels [0.5, 1).
	Half Frac = 1 << 63
)

// FromFloat converts a float64 in [0,1) to the nearest Frac.
// Values outside [0,1) are clamped.
func FromFloat(f float64) Frac {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return Frac(math.MaxUint64)
	}
	return Frac(f * (1 << 32) * (1 << 32))
}

// Float returns the value as a float64 approximation (for display only;
// never used in protocol decisions).
func (x Frac) Float() float64 {
	return float64(x) / (1 << 32) / (1 << 32)
}

// Halve returns x/2, the label of the left De Bruijn child of a middle
// virtual node with label x (paper Definition 2: l(v) = m(v)/2).
func (x Frac) Halve() Frac { return x >> 1 }

// HalvePlus returns (x+1)/2, the label of the right De Bruijn child
// (paper Definition 2: r(v) = (m(v)+1)/2).
func (x Frac) HalvePlus() Frac { return x>>1 | 1<<63 }

// Double returns 2x mod 1, the inverse of the halving maps: both
// l(v).Double() and r(v).Double() equal m(v).
func (x Frac) Double() Frac { return x << 1 }

// Bit returns the i-th bit of the binary expansion 0.b1 b2 b3 …, with
// i = 1 denoting the most significant bit b1. For i outside [1,64] it
// returns 0.
func (x Frac) Bit(i int) int {
	if i < 1 || i > 64 {
		return 0
	}
	return int(x>>(64-uint(i))) & 1
}

// PrependBit returns (b+x)/2 for bit b ∈ {0,1}: the point reached by one
// De Bruijn hop that prepends b to the binary expansion of x.
func (x Frac) PrependBit(b int) Frac {
	if b == 0 {
		return x.Halve()
	}
	return x.HalvePlus()
}

// CWDist returns the clockwise (increasing-label, wrapping) distance from x
// to y on the unit circle. CWDist(x,x) == 0.
func CWDist(x, y Frac) Frac { return y - x }

// CCWDist returns the counter-clockwise distance from x to y, i.e. the
// clockwise distance from y to x.
func CCWDist(x, y Frac) Frac { return x - y }

// InCWRange reports whether k lies in the clockwise half-open interval
// [from, to). When from == to the interval is the full circle, so the
// result is always true; this matches consistent-hashing responsibility
// when a single node owns the whole ring.
func InCWRange(k, from, to Frac) bool {
	if from == to {
		return true
	}
	return CWDist(from, k) < CWDist(from, to)
}

// MidCW returns the midpoint of the clockwise arc from x to y. For x == y
// it returns the antipode of x (the arc is the full circle).
func MidCW(x, y Frac) Frac { return x + (y-x)>>1 }

// String renders the fraction with enough decimal digits to be readable in
// logs while making clear it is an approximation.
func (x Frac) String() string {
	return fmt.Sprintf("%.12f", x.Float())
}

// Log2Inv returns ⌈log2(1/d)⌉ where d = x/2^64 is the real value of x,
// capped at 64 (and 64 for x == 0). It is used to estimate log n from the
// local node density: the distance to the ring successor is ≈ 1/n.
func (x Frac) Log2Inv() int {
	if x == 0 {
		return 64
	}
	return 65 - bits.Len64(uint64(x))
}
