package fixpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.25, 0.5, 0.75, 0.999, 1.0 / 3.0}
	for _, f := range cases {
		x := FromFloat(f)
		if got := x.Float(); math.Abs(got-f) > 1e-12 {
			t.Errorf("FromFloat(%v).Float() = %v", f, got)
		}
	}
}

func TestFromFloatClamps(t *testing.T) {
	if FromFloat(-0.5) != 0 {
		t.Errorf("negative input should clamp to 0")
	}
	if FromFloat(1.5) != Frac(math.MaxUint64) {
		t.Errorf("input >= 1 should clamp to max")
	}
	if FromFloat(0) != 0 {
		t.Errorf("zero should map to zero")
	}
}

func TestHalveExact(t *testing.T) {
	cases := []struct {
		in, want Frac
	}{
		{0, 0},
		{Half, Half >> 1},                   // 0.5 -> 0.25
		{FromFloat(0.75), FromFloat(0.375)}, // 0.75 -> 0.375
		{Frac(math.MaxUint64), Frac(math.MaxUint64) >> 1},
	}
	for _, c := range cases {
		if got := c.in.Halve(); got != c.want {
			t.Errorf("Halve(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHalvePlusExact(t *testing.T) {
	// (x+1)/2 for x=0 is 0.5; for x=0.5 is 0.75.
	if got := Frac(0).HalvePlus(); got != Half {
		t.Errorf("HalvePlus(0) = %v, want 0.5", got)
	}
	if got := Half.HalvePlus(); got != FromFloat(0.75) {
		t.Errorf("HalvePlus(0.5) = %v, want 0.75", got)
	}
}

func TestHalveRangeProperty(t *testing.T) {
	// Left child labels are always < 0.5, right child labels always >= 0.5
	// (paper: left virtual nodes live in [0,0.5), right in [0.5,1)).
	f := func(x uint64) bool {
		fx := Frac(x)
		return fx.Halve() < Half && fx.HalvePlus() >= Half
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoubleInvertsHalving(t *testing.T) {
	f := func(x uint64) bool {
		fx := Frac(x)
		return fx.Halve().Double() == fx&^1 && fx.HalvePlus().Double() == fx&^1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBit(t *testing.T) {
	x := Half // binary 0.1000...
	if x.Bit(1) != 1 {
		t.Errorf("Bit(1) of 0.5 should be 1")
	}
	for i := 2; i <= 64; i++ {
		if x.Bit(i) != 0 {
			t.Errorf("Bit(%d) of 0.5 should be 0", i)
		}
	}
	y := FromFloat(0.25 + 0.125) // 0.011
	if y.Bit(1) != 0 || y.Bit(2) != 1 || y.Bit(3) != 1 {
		t.Errorf("bits of 0.375 wrong: %d%d%d", y.Bit(1), y.Bit(2), y.Bit(3))
	}
	if x.Bit(0) != 0 || x.Bit(65) != 0 {
		t.Errorf("out-of-range bit indices should be 0")
	}
}

func TestPrependBit(t *testing.T) {
	// Prepending bit b to x yields a value whose first bit is b and whose
	// remaining bits are x shifted.
	f := func(x uint64, b bool) bool {
		bit := 0
		if b {
			bit = 1
		}
		y := Frac(x).PrependBit(bit)
		return y.Bit(1) == bit && y.Double() == Frac(x)&^1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCWDistWraps(t *testing.T) {
	a, b := FromFloat(0.9), FromFloat(0.1)
	d := CWDist(a, b)
	if got := d.Float(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("CWDist(0.9, 0.1) = %v, want ~0.2", got)
	}
	if CWDist(a, a) != 0 {
		t.Errorf("CWDist(x,x) should be 0")
	}
}

func TestCWDistSumProperty(t *testing.T) {
	// Going clockwise x->y->x covers the whole circle (or 0 if x==y).
	f := func(x, y uint64) bool {
		a, b := Frac(x), Frac(y)
		if a == b {
			return CWDist(a, b) == 0
		}
		return CWDist(a, b)+CWDist(b, a) == 0 // sum is 2^64 ≡ 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCCWDist(t *testing.T) {
	f := func(x, y uint64) bool {
		return CCWDist(Frac(x), Frac(y)) == CWDist(Frac(y), Frac(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInCWRange(t *testing.T) {
	cases := []struct {
		k, from, to Frac
		want        bool
	}{
		{FromFloat(0.5), FromFloat(0.4), FromFloat(0.6), true},
		{FromFloat(0.3), FromFloat(0.4), FromFloat(0.6), false},
		{FromFloat(0.7), FromFloat(0.4), FromFloat(0.6), false},
		{FromFloat(0.4), FromFloat(0.4), FromFloat(0.6), true},  // inclusive lo
		{FromFloat(0.6), FromFloat(0.4), FromFloat(0.6), false}, // exclusive hi
		// wrapping interval [0.9, 0.1)
		{FromFloat(0.95), FromFloat(0.9), FromFloat(0.1), true},
		{FromFloat(0.05), FromFloat(0.9), FromFloat(0.1), true},
		{FromFloat(0.5), FromFloat(0.9), FromFloat(0.1), false},
		// degenerate full circle
		{FromFloat(0.123), FromFloat(0.7), FromFloat(0.7), true},
	}
	for _, c := range cases {
		if got := InCWRange(c.k, c.from, c.to); got != c.want {
			t.Errorf("InCWRange(%v, %v, %v) = %v, want %v", c.k, c.from, c.to, got, c.want)
		}
	}
}

func TestInCWRangePartitionProperty(t *testing.T) {
	// For from != to, every point is in exactly one of [from,to) and [to,from).
	f := func(k, from, to uint64) bool {
		if from == to {
			return true
		}
		a := InCWRange(Frac(k), Frac(from), Frac(to))
		b := InCWRange(Frac(k), Frac(to), Frac(from))
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidCW(t *testing.T) {
	m := MidCW(FromFloat(0.2), FromFloat(0.4))
	if got := m.Float(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("MidCW(0.2,0.4) = %v, want 0.3", got)
	}
	// wrapping arc 0.9 -> 0.1: midpoint at 0.0
	m = MidCW(FromFloat(0.9), FromFloat(0.1))
	if got := m.Float(); got > 0.01 && got < 0.99 {
		t.Errorf("MidCW(0.9,0.1) = %v, want ~0.0", got)
	}
}

func TestMidCWInRangeProperty(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Frac(x), Frac(y)
		if a == b {
			return true
		}
		return InCWRange(MidCW(a, b), a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Inv(t *testing.T) {
	cases := []struct {
		x    Frac
		want int
	}{
		{0, 64},
		{Half, 1},            // 1/0.5 = 2
		{FromFloat(0.25), 2}, // 1/0.25 = 4
		{FromFloat(0.26), 2}, // ceil(log2(1/0.26)) = 2
		{FromFloat(0.24), 3}, // 1/0.24 = 4.17 -> ceil = 3
		{1, 64},
	}
	for _, c := range cases {
		if got := c.x.Log2Inv(); got != c.want {
			t.Errorf("Log2Inv(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLog2InvMonotone(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Frac(x), Frac(y)
		if a <= b {
			return a.Log2Inv() >= b.Log2Inv()
		}
		return a.Log2Inv() <= b.Log2Inv()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if s := Half.String(); s != "0.500000000000" {
		t.Errorf("String() = %q", s)
	}
}
