// Package harness regenerates the paper's evaluation (§VII): Figure 2
// (queue latency scaling), Figure 3 (stack latency scaling), Figure 4
// (latency under growing per-node request rates, queue vs stack), plus the
// additional experiments E4-E8 from DESIGN.md that measure the paper's
// analytical claims (batch sizes, DHT fairness, the 3·ATH+DHT latency
// decomposition, update-phase durations, and the centralized-server
// baseline).
//
// Every run also verifies sequential consistency of the full execution, so
// regenerating the figures doubles as an end-to-end correctness check.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"skueue"
	"skueue/internal/baseline"
	"skueue/internal/workload"
	"skueue/internal/xrand"
)

func newRng(seed int64) *xrand.RNG { return xrand.New(seed) }

// Point is one measurement.
type Point struct {
	X, Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a rendered experiment result.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Options scales the experiments. The paper runs up to n = 100000
// processes for 1000 rounds; the defaults are laptop-sized and preserve
// the shapes (see DESIGN.md §5).
type Options struct {
	Seed        int64
	Sizes       []int     // process counts for the n sweeps
	Ratios      []float64 // enqueue/push ratios (Figures 2, 3)
	Rounds      int       // request generation rounds
	ReqPerRound int       // requests per round (Figures 2, 3)
	Probs       []float64 // per-node probabilities (Figure 4)
	Fig4N       int       // process count for Figure 4
	MaxDrain    int64     // drain budget after generation stops
}

// Defaults returns quick (laptop) or full (paper-scale) options.
func Defaults(full bool) Options {
	o := Options{
		Seed:        1,
		Ratios:      []float64{0, 0.25, 0.5, 0.75, 1.0},
		Probs:       []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0},
		ReqPerRound: 10,
	}
	if full {
		o.Sizes = []int{10000, 25000, 50000, 75000, 100000}
		o.Rounds = 1000
		o.Fig4N = 10000
		o.MaxDrain = 20000
	} else {
		o.Sizes = []int{100, 250, 500, 1000, 2000}
		o.Rounds = 200
		o.Fig4N = 500
		o.MaxDrain = 20000
	}
	return o
}

// RunOne drives a single configured deployment through a workload and
// returns the summary statistics. Construction goes through the public
// client layer in manual-clock mode so every run is exactly reproducible;
// the workload generator keeps driving the underlying cluster directly.
// A non-zero wan profile shapes message delivery, and churn events are
// scheduled into the generator — the chaos harness uses both to run its
// storm scenarios through the same certified driver as the experiments.
// It panics on drain failure or inconsistency — a run that cannot certify
// its own execution must not report.
func RunOne(mode skueue.Mode, procs int, spec workload.Spec, seed, maxDrain int64, wan skueue.WANProfile, churn ...workload.ChurnEvent) (skueue.Stats, skueue.Metrics, *skueue.Client) {
	c, err := skueue.Open(
		skueue.WithManualClock(),
		skueue.WithProcesses(procs),
		skueue.WithSeed(seed),
		skueue.WithMode(mode),
		skueue.WithWAN(wan),
	)
	if err != nil {
		panic(err)
	}
	gen, err := workload.New(c.Cluster(), spec, seed+7)
	if err != nil {
		panic(err)
	}
	gen.Schedule(churn...)
	if !gen.Run(maxDrain) {
		panic(fmt.Sprintf("harness: %s n=%d did not drain (%d/%d)",
			mode, procs, c.Cluster().Finished(), c.Cluster().Issued()))
	}
	if err := c.Check(); err != nil {
		panic(fmt.Sprintf("harness: consistency violated: %v", err))
	}
	return c.Stats(), c.Metrics(), c
}

// runOne is RunOne without shaping or churn (the classic experiments).
func runOne(mode skueue.Mode, procs int, spec workload.Spec, seed int64, maxDrain int64) (skueue.Stats, skueue.Metrics, *skueue.Client) {
	return RunOne(mode, procs, spec, seed, maxDrain, skueue.WANProfile{})
}

// latencySweep is the shared engine behind Figures 2 and 3.
func latencySweep(id, title string, mode skueue.Mode, o Options) Figure {
	fig := Figure{
		ID: id, Title: title,
		XLabel: "n (processes)", YLabel: "avg rounds per request",
	}
	for _, ratio := range o.Ratios {
		s := Series{Label: fmt.Sprintf("p=%.2f", ratio)}
		for _, n := range o.Sizes {
			spec := workload.Spec{
				Rounds: o.Rounds, RequestsPerRound: o.ReqPerRound, EnqRatio: ratio,
			}
			st, _, _ := runOne(mode, n, spec, o.Seed+int64(n), o.MaxDrain)
			s.Points = append(s.Points, Point{X: float64(n), Y: st.AvgRounds})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d requests/round for %d rounds, then drained; p is the enqueue (push) ratio.", o.ReqPerRound, o.Rounds))
	return fig
}

// Figure2 reproduces the queue latency scaling (paper Fig. 2).
func Figure2(o Options) Figure {
	return latencySweep("fig2", "Queue: avg rounds per request vs n (paper Fig. 2)", skueue.Queue, o)
}

// Figure3 reproduces the stack latency scaling (paper Fig. 3).
func Figure3(o Options) Figure {
	return latencySweep("fig3", "Stack: avg rounds per request vs n (paper Fig. 3)", skueue.Stack, o)
}

// Figure4 reproduces the request-rate experiment (paper Fig. 4): fixed n,
// every node generates a request with probability p each round, ratio 0.5.
func Figure4(o Options) Figure {
	fig := Figure{
		ID: "fig4", Title: fmt.Sprintf("Queue vs stack under per-node request probability, n=%d (paper Fig. 4)", o.Fig4N),
		XLabel: "request probability", YLabel: "avg rounds per request",
	}
	for _, mode := range []skueue.Mode{skueue.Queue, skueue.Stack} {
		s := Series{Label: mode.String()}
		for _, p := range o.Probs {
			spec := workload.Spec{Rounds: o.Rounds, PerNodeProb: p, EnqRatio: 0.5}
			st, _, _ := runOne(mode, o.Fig4N, spec, o.Seed+int64(p*1000), o.MaxDrain)
			s.Points = append(s.Points, Point{X: p, Y: st.AvgRounds})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"The stack improves with load: local combining answers co-located push/pop pairs immediately (§VI).")
	return fig
}

// BatchSizes measures the maximum batch size (runs per batch) under one
// request per node per round — Theorem 18 bounds the queue's batches by
// O(log n); Theorem 20 bounds the stack's by a constant.
func BatchSizes(o Options) Figure {
	fig := Figure{
		ID: "batchsize", Title: "Max batch size (runs) at full request rate (Thm. 18 / Thm. 20)",
		XLabel: "n (processes)", YLabel: "max runs per batch",
	}
	for _, mode := range []skueue.Mode{skueue.Queue, skueue.Stack} {
		s := Series{Label: mode.String()}
		for _, n := range o.Sizes {
			spec := workload.Spec{Rounds: o.Rounds, PerNodeProb: 1.0, EnqRatio: 0.5}
			_, m, _ := runOne(mode, n, spec, o.Seed+int64(n)*3, o.MaxDrain)
			s.Points = append(s.Points, Point{X: float64(n), Y: float64(m.MaxBatchRuns)})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "One request per node per round; queue batches grow ~log n, stack batches stay <= 3 runs.")
	return fig
}

// Fairness measures the DHT load balance (Lemma 4, Corollary 19): the
// ratio of the most loaded node to the mean, after an enqueue-only fill.
func Fairness(o Options) Figure {
	fig := Figure{
		ID: "fairness", Title: "DHT load balance after enqueue-only fill (Lemma 4 / Cor. 19)",
		XLabel: "n (processes)", YLabel: "load",
	}
	maxMean := Series{Label: "max/mean"}
	cv := Series{Label: "coeff-of-variation"}
	for _, n := range o.Sizes {
		spec := workload.Spec{Rounds: o.Rounds, RequestsPerRound: o.ReqPerRound, EnqRatio: 1.0}
		_, _, c := runOne(skueue.Queue, n, spec, o.Seed+int64(n)*5, o.MaxDrain)
		sizes := c.Cluster().StoreSizes()
		var sum, sumSq float64
		maxLoad := 0.0
		for _, s := range sizes {
			f := float64(s)
			sum += f
			sumSq += f * f
			if f > maxLoad {
				maxLoad = f
			}
		}
		mean := sum / float64(len(sizes))
		variance := sumSq/float64(len(sizes)) - mean*mean
		maxMean.Points = append(maxMean.Points, Point{X: float64(n), Y: maxLoad / mean})
		cv.Points = append(cv.Points, Point{X: float64(n), Y: math.Sqrt(variance) / mean})
	}
	fig.Series = []Series{maxMean, cv}
	fig.Notes = append(fig.Notes, "Consistent hashing spreads elements; max/mean stays bounded as n grows.")
	return fig
}

// StageBreakdown validates the paper's latency decomposition (§VII-B):
// the measured average should track 3·ATH + average DHT routing hops.
func StageBreakdown(o Options) Figure {
	fig := Figure{
		ID: "stages", Title: "Latency decomposition: measured vs 3·ATH + DHT hops (§VII-B)",
		XLabel: "n (processes)", YLabel: "rounds",
	}
	measured := Series{Label: "measured avg"}
	predicted := Series{Label: "3·ATH + route"}
	ath := Series{Label: "ATH (tree height)"}
	for _, n := range o.Sizes {
		spec := workload.Spec{Rounds: o.Rounds, RequestsPerRound: o.ReqPerRound, EnqRatio: 0.5}
		st, m, c := runOne(skueue.Queue, n, spec, o.Seed+int64(n)*7, o.MaxDrain)
		h := float64(c.Cluster().TreeHeight())
		measured.Points = append(measured.Points, Point{X: float64(n), Y: st.AvgRounds})
		predicted.Points = append(predicted.Points, Point{X: float64(n), Y: 3*h + m.AvgRouteHops})
		ath.Points = append(ath.Points, Point{X: float64(n), Y: h})
	}
	fig.Series = []Series{measured, predicted, ath}
	return fig
}

// ChurnPhases measures how long a burst of joins (and of leaves) takes to
// settle — Theorem 17 predicts O(log n) rounds per update phase.
func ChurnPhases(o Options) Figure {
	fig := Figure{
		ID: "churn", Title: "Rounds for a churn burst to fully settle (Thm. 17)",
		XLabel: "burst size (processes)", YLabel: "rounds to quiescence",
	}
	base := 32
	if len(o.Sizes) > 0 {
		base = o.Sizes[0]
	}
	joins := Series{Label: "joins"}
	leaves := Series{Label: "leaves"}
	churnClient := func(procs int, seed int64) *skueue.Client {
		c, err := skueue.Open(
			skueue.WithManualClock(),
			skueue.WithProcesses(procs),
			skueue.WithSeed(seed),
		)
		if err != nil {
			panic(err)
		}
		if err := c.Run(5); err != nil {
			panic(err)
		}
		return c
	}
	for _, burst := range []int{1, 2, 4, 8} {
		// Joins.
		c := churnClient(base, o.Seed+int64(burst))
		for i := 0; i < burst; i++ {
			if _, err := c.Admin().Join(i % base); err != nil {
				panic(err)
			}
		}
		start := c.Now()
		if ok, err := c.Settle(200000); err != nil || !ok {
			panic("harness: join burst did not settle")
		}
		joins.Points = append(joins.Points, Point{X: float64(burst), Y: float64(c.Now() - start)})

		// Leaves.
		c = churnClient(base+burst, o.Seed+100+int64(burst))
		for i := 0; i < burst; i++ {
			if err := c.Admin().Leave(1 + i); err != nil {
				panic(err)
			}
		}
		start = c.Now()
		if ok, err := c.Settle(200000); err != nil || !ok {
			panic("harness: leave burst did not settle")
		}
		leaves.Points = append(leaves.Points, Point{X: float64(burst), Y: float64(c.Now() - start)})
	}
	fig.Series = []Series{joins, leaves}
	fig.Notes = append(fig.Notes, fmt.Sprintf("Base system: %d processes; burst applied at once, measured to full quiescence.", base))
	return fig
}

// Baseline compares Skueue against the centralized server queue under a
// total load that grows with n (per-node probability workload): the server
// saturates at its capacity, Skueue keeps scaling (Cor. 16, §I).
func Baseline(o Options) Figure {
	const perNode = 0.05
	const capacity = 16
	fig := Figure{
		ID: "baseline", Title: fmt.Sprintf("Skueue vs centralized server (capacity %d req/round), load %.2f·n", capacity, perNode),
		XLabel: "n (processes)", YLabel: "avg rounds per request",
	}
	sk := Series{Label: "skueue"}
	srv := Series{Label: "central server"}
	for _, n := range o.Sizes {
		spec := workload.Spec{Rounds: o.Rounds, PerNodeProb: perNode, EnqRatio: 0.5}
		st, _, _ := runOne(skueue.Queue, n, spec, o.Seed+int64(n)*11, o.MaxDrain)
		sk.Points = append(sk.Points, Point{X: float64(n), Y: st.AvgRounds})

		bl := baseline.New(baseline.Config{Clients: 3 * n, Capacity: capacity, Seed: o.Seed + int64(n)})
		rng := newRng(o.Seed + int64(n)*13)
		for round := 0; round < o.Rounds; round++ {
			for c := 0; c < bl.Clients(); c++ {
				if rng.Bool(perNode) {
					if rng.Bool(0.5) {
						bl.Enqueue(c)
					} else {
						bl.Dequeue(c)
					}
				}
			}
			bl.Step()
		}
		if !bl.Drain(int64(o.Rounds) * 1000) {
			panic("harness: baseline did not drain")
		}
		srv.Points = append(srv.Points, Point{X: float64(n), Y: bl.AvgRounds()})
	}
	fig.Series = []Series{sk, srv}
	fig.Notes = append(fig.Notes, "Total load grows with n; the single server's backlog explodes past its capacity while Skueue stays logarithmic.")
	return fig
}

// All lists the experiment generators by id.
func All() map[string]func(Options) Figure {
	return map[string]func(Options) Figure{
		"fig2":      Figure2,
		"fig3":      Figure3,
		"fig4":      Figure4,
		"batchsize": BatchSizes,
		"fairness":  Fairness,
		"stages":    StageBreakdown,
		"churn":     ChurnPhases,
		"baseline":  Baseline,
	}
}

// IDs returns the experiment identifiers in stable order.
func IDs() []string {
	m := All()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Render prints the figure as an aligned text table: one row per x value,
// one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s [%s]\n", f.Title, f.ID)
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", note)
	}
	// Collect the x values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			y := math.NaN()
			for _, p := range s.Points {
				if p.X == x {
					y = p.Y
					break
				}
			}
			if math.IsNaN(y) {
				fmt.Fprintf(&b, " %14s", "-")
			} else {
				fmt.Fprintf(&b, " %14.2f", y)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the figure as comma-separated values: a header row with the
// x label and series labels, then one row per x value. Missing points are
// empty cells.
func (f *Figure) CSV() string {
	var b strings.Builder
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteString(",")
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, "%g", p.Y)
					break
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
