package harness

import (
	"strings"
	"testing"
)

// tiny returns minimal options so every experiment runs in milliseconds.
func tiny() Options {
	return Options{
		Seed:        3,
		Sizes:       []int{8, 16},
		Ratios:      []float64{0, 0.5, 1.0},
		Probs:       []float64{0.1, 0.5},
		Rounds:      40,
		ReqPerRound: 3,
		Fig4N:       8,
		MaxDrain:    60000,
	}
}

func checkFigure(t *testing.T, f Figure, wantSeries int) {
	t.Helper()
	if len(f.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), wantSeries)
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: series %q empty", f.ID, s.Label)
		}
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("%s: negative measurement %v", f.ID, p)
			}
		}
	}
	out := f.Render()
	if !strings.Contains(out, f.ID) {
		t.Fatalf("render misses id: %s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	f := Figure2(tiny())
	checkFigure(t, f, 3)
	// Latency grows with n for every ratio (log growth, but monotone over
	// a doubling).
	for _, s := range f.Series {
		if s.Points[len(s.Points)-1].Y <= 0 {
			t.Fatalf("zero latency in %q", s.Label)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	checkFigure(t, Figure3(tiny()), 3)
}

func TestFigure4Shape(t *testing.T) {
	f := Figure4(tiny())
	checkFigure(t, f, 2)
	// At high rates the stack must not be slower than at low rates by much
	// — local combining absorbs load. Just require both series present and
	// positive; the shape assertions live in EXPERIMENTS.md regeneration.
}

func TestBatchSizesShape(t *testing.T) {
	f := BatchSizes(tiny())
	checkFigure(t, f, 2)
	// Stack batches stay <= 3 runs at any size (Theorem 20).
	for _, s := range f.Series {
		if s.Label != "stack" {
			continue
		}
		for _, p := range s.Points {
			if p.Y > 3 {
				t.Fatalf("stack batch size %v exceeds 3 runs", p.Y)
			}
		}
	}
}

func TestFairnessShape(t *testing.T) {
	checkFigure(t, Fairness(tiny()), 2)
}

func TestStageBreakdownShape(t *testing.T) {
	f := StageBreakdown(tiny())
	checkFigure(t, f, 3)
}

func TestChurnPhasesShape(t *testing.T) {
	checkFigure(t, ChurnPhases(tiny()), 2)
}

func TestBaselineShape(t *testing.T) {
	f := Baseline(tiny())
	checkFigure(t, f, 2)
}

func TestAllAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) || len(ids) != 8 {
		t.Fatalf("expected 8 experiments, got %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestRenderAlignment(t *testing.T) {
	f := Figure{
		ID: "x", Title: "T", XLabel: "n",
		Series: []Series{
			{Label: "a", Points: []Point{{1, 2}, {2, 3}}},
			{Label: "b", Points: []Point{{1, 4}}},
		},
	}
	out := f.Render()
	if !strings.Contains(out, "-") {
		t.Fatalf("missing value should render as -: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header + 3 lines, got %d: %s", len(lines), out)
	}
}

func TestCSVOutput(t *testing.T) {
	f := Figure{
		ID: "x", XLabel: "n",
		Series: []Series{
			{Label: "a,b", Points: []Point{{1, 2.5}, {2, 3}}},
			{Label: "c", Points: []Point{{1, 4}}},
		},
	}
	out := f.CSV()
	want := "n,\"a,b\",c\n1,2.5,4\n2,3,\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
