// Package ldb implements the Linearized De Bruijn network of the paper
// (§II-A, Definition 2): every process emulates three virtual nodes — a
// middle node m(v) with a pseudorandom label in [0,1), a left node
// l(v) = m(v)/2 and a right node r(v) = (m(v)+1)/2 — arranged on a sorted
// cycle with linear edges between consecutive nodes and virtual edges
// between nodes of the same process.
//
// The package provides the three local rules the protocol relies on:
//
//   - the aggregation-tree rules (§III-B): parent = leftmost neighbour,
//     children derived from kind and successor kind, purely from local
//     information;
//   - De Bruijn routing (Lemma 3): O(log n) w.h.p. hops to the predecessor
//     of any point, via bit-prepending hops over the virtual l/r edges plus
//     short linear corrections;
//   - ring bookkeeping helpers used for bootstrap and as test oracles.
package ldb

import (
	"fmt"
	"sort"

	"skueue/internal/fixpoint"
	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// Kind distinguishes the three virtual nodes a process emulates.
type Kind uint8

// The three virtual node kinds of Definition 2.
const (
	Left Kind = iota
	Middle
	Right
)

func (k Kind) String() string {
	switch k {
	case Left:
		return "L"
	case Middle:
		return "M"
	case Right:
		return "R"
	}
	return "?"
}

// Point is a position on the ring: the label plus a tiebreak that makes the
// ordering total even under label collisions (the paper assumes an
// injective hash; the code tolerates collisions).
type Point struct {
	Label fixpoint.Frac
	Tie   uint64
}

// Less is the total order on ring positions.
func (p Point) Less(q Point) bool {
	if p.Label != q.Label {
		return p.Label < q.Label
	}
	return p.Tie < q.Tie
}

// Equal reports identity of ring positions.
func (p Point) Equal(q Point) bool { return p == q }

func (p Point) String() string {
	return fmt.Sprintf("%s#%04x", p.Label, p.Tie&0xffff)
}

// Ref is a node reference as carried in messages: the simulation address
// plus everything a neighbour must know about the node (paper §II-A: when
// a node learns a reference it also learns whether it is a left, middle or
// right virtual node).
type Ref struct {
	ID    transport.NodeID
	Point Point
	Kind  Kind
}

// Valid reports whether the reference points at a node.
func (r Ref) Valid() bool { return r.ID != transport.None }

func (r Ref) String() string {
	if !r.Valid() {
		return "<nil>"
	}
	return fmt.Sprintf("%v@%d%s", r.Point, r.ID, r.Kind)
}

// ProcessPoints derives the three virtual node points for a process with
// the given identifier, using the publicly known label hash.
func ProcessPoints(labels xrand.Hasher, procID uint64) (l, m, r Point) {
	ml := labels.Frac(procID)
	tie := func(kind Kind) uint64 {
		return xrand.SplitMix64(procID*4 + uint64(kind) + 0x5bf05bf0)
	}
	m = Point{Label: ml, Tie: tie(Middle)}
	l = Point{Label: ml.Halve(), Tie: tie(Left)}
	r = Point{Label: ml.HalvePlus(), Tie: tie(Right)}
	return
}

// Neighborhood is the local view a virtual node has of the topology: its
// own identity, its ring neighbours, and the three virtual nodes of its
// process (its "siblings"; Self is one of them).
type Neighborhood struct {
	Self Ref
	Pred Ref
	Succ Ref
	// SibL, SibM, SibR are l(v), m(v), r(v) of the owning process.
	SibL, SibM, SibR Ref
}

// IsAnchor reports whether this node is the leftmost node of the ring,
// detected purely locally: the predecessor wraps around (has a larger
// point). The anchor is always a left virtual node (the minimum left label
// is half the minimum middle label).
func (nb Neighborhood) IsAnchor() bool {
	return nb.Self.Point.Less(nb.Pred.Point) || nb.Self.ID == nb.Pred.ID
}

// isWrapSucc reports whether the successor edge wraps around the ring.
func (nb Neighborhood) isWrapSucc() bool {
	return nb.Succ.Point.Less(nb.Self.Point) || nb.Succ.ID == nb.Self.ID
}

// isWrapPred reports whether the predecessor edge wraps around the ring.
func (nb Neighborhood) isWrapPred() bool {
	return nb.Self.Point.Less(nb.Pred.Point) || nb.Pred.ID == nb.Self.ID
}

// Parent returns the aggregation-tree parent (§III-B): the leftmost
// neighbour. ok is false exactly for the anchor, the tree root.
func (nb Neighborhood) Parent() (parent Ref, ok bool) {
	switch nb.Self.Kind {
	case Middle:
		return nb.SibL, true
	case Right:
		return nb.SibM, true
	default: // Left
		if nb.IsAnchor() {
			return Ref{ID: transport.None}, false
		}
		return nb.Pred, true
	}
}

// Children returns the aggregation-tree children (§III-B): the next
// virtual node of the same process, plus the ring successor when that
// successor is a left virtual node (and the edge does not wrap).
func (nb Neighborhood) Children() []Ref {
	var c []Ref
	switch nb.Self.Kind {
	case Middle:
		c = append(c, nb.SibR)
	case Left:
		c = append(c, nb.SibM)
	case Right:
		return nil
	}
	if nb.Succ.Kind == Left && !nb.isWrapSucc() {
		c = append(c, nb.Succ)
	}
	return c
}

// RouteState is the routing header of a message travelling to the node
// responsible for Target (its predecessor on the ring). BitsLeft counts
// the remaining De Bruijn hops; once zero, routing degenerates to a short
// linear walk. WalkDir (+1 successor, -1 predecessor, 0 undecided) keeps
// the walk-to-a-middle phase moving in one direction.
type RouteState struct {
	Target   fixpoint.Frac
	BitsLeft int
	Hops     int
	WalkDir  int8
}

// RouteSlack is the number of extra De Bruijn bits beyond the local log n
// estimate, driving the final linear walk to O(1) expected steps.
const RouteSlack = 4

// NewRoute prepares a route from a node with the given neighbourhood. The
// bit count k ≈ log2 n + RouteSlack comes from the local density estimate:
// the clockwise distance to the successor is ≈ 1/n w.h.p.
func (nb Neighborhood) NewRoute(target fixpoint.Frac) RouteState {
	d := fixpoint.CWDist(nb.Self.Point.Label, nb.Succ.Point.Label)
	k := d.Log2Inv() + RouteSlack
	if k > 64 {
		k = 64
	}
	return RouteState{Target: target, BitsLeft: k}
}

// NextHop decides the next routing step at the current node. If deliver is
// true the current node is responsible for the target and must consume the
// message; otherwise the message moves to next with the updated state.
func (nb Neighborhood) NextHop(rs RouteState) (next Ref, out RouteState, deliver bool) {
	out = rs
	out.Hops++
	if rs.BitsLeft > 0 {
		if nb.Self.Kind == Middle {
			// One De Bruijn hop: prepend bit b of the target, i.e. jump to
			// the own left (b=0) or right (b=1) virtual node, whose label
			// is exactly (b + label)/2.
			// Bits are consumed from the least significant bit of the
			// k-prefix upward (t_k first, t_1 last) so that after all k
			// prepending hops the position is 0.t1 t2 … tk ….
			b := rs.Target.Bit(rs.BitsLeft)
			out.BitsLeft--
			out.WalkDir = 0
			if b == 0 {
				return nb.SibL, out, false
			}
			return nb.SibR, out, false
		}
		// Walk linearly to the nearest middle node; middles are one third
		// of the ring, so this costs O(1) expected steps. The halving map
		// is continuous on [0,1) but not across the 0/1 seam, so the walk
		// must never wrap: prefer the successor direction, but flip away
		// from the seam whenever the next edge would cross it. The
		// direction travels in the message, so a flip cannot ping-pong:
		// the previous node continues in the flipped direction too.
		dir := rs.WalkDir
		if dir == 0 {
			dir = 1
		}
		if dir > 0 && nb.isWrapSucc() {
			dir = -1
		} else if dir < 0 && nb.isWrapPred() {
			dir = 1
		}
		out.WalkDir = dir
		if dir > 0 {
			return nb.Succ, out, false
		}
		return nb.Pred, out, false
	}
	// Linear phase: deliver at the predecessor of the target.
	if nb.responsible(rs.Target) {
		return Ref{ID: transport.None}, out, true
	}
	if fixpoint.CWDist(nb.Self.Point.Label, rs.Target) <= fixpoint.CCWDist(nb.Self.Point.Label, rs.Target) {
		return nb.Succ, out, false
	}
	return nb.Pred, out, false
}

// responsible reports whether this node's DHT interval [self, succ)
// contains the key.
func (nb Neighborhood) responsible(k fixpoint.Frac) bool {
	return fixpoint.InCWRange(k, nb.Self.Point.Label, nb.Succ.Point.Label)
}

// Responsible is the exported form of the DHT ownership test.
func (nb Neighborhood) Responsible(k fixpoint.Frac) bool { return nb.responsible(k) }

// Ring is a sorted snapshot of references. The protocol itself never uses
// it — nodes act on local neighbourhoods only — but bootstrap wiring and
// test oracles do.
type Ring struct {
	refs []Ref
}

// NewRing sorts the references into ring order.
func NewRing(refs []Ref) *Ring {
	r := &Ring{refs: append([]Ref(nil), refs...)}
	sort.Slice(r.refs, func(i, j int) bool { return r.refs[i].Point.Less(r.refs[j].Point) })
	return r
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.refs) }

// At returns the i-th reference in sorted order.
func (r *Ring) At(i int) Ref { return r.refs[i] }

// Pred returns the ring predecessor of position i (wrapping).
func (r *Ring) Pred(i int) Ref { return r.refs[(i-1+len(r.refs))%len(r.refs)] }

// Succ returns the ring successor of position i (wrapping).
func (r *Ring) Succ(i int) Ref { return r.refs[(i+1)%len(r.refs)] }

// Min returns the leftmost node — the anchor.
func (r *Ring) Min() Ref { return r.refs[0] }

// ResponsibleFor returns the node owning key k: the predecessor of k.
func (r *Ring) ResponsibleFor(k fixpoint.Frac) Ref {
	// First node with label > k, then step back.
	i := sort.Search(len(r.refs), func(i int) bool { return r.refs[i].Point.Label > k })
	return r.refs[(i-1+len(r.refs))%len(r.refs)]
}

// IndexOf returns the position of the reference with the given point, or
// -1 when absent.
func (r *Ring) IndexOf(p Point) int {
	i := sort.Search(len(r.refs), func(i int) bool { return !r.refs[i].Point.Less(p) })
	if i < len(r.refs) && r.refs[i].Point == p {
		return i
	}
	return -1
}
