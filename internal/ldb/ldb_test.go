package ldb

import (
	"math"
	"testing"

	"skueue/internal/fixpoint"
	"skueue/internal/sim"
	"skueue/internal/xrand"
)

// testNet builds a static LDB over n processes and exposes neighbourhoods
// the way live nodes would see them.
type testNet struct {
	ring *Ring
	// sibs maps process id -> [l, m, r] refs.
	sibs map[uint64][3]Ref
	// proc maps a node id -> its process id.
	proc map[sim.NodeID]uint64
}

func buildNet(t *testing.T, n int, seed int64) *testNet {
	t.Helper()
	h := xrand.NewHasher(seed, "label")
	net := &testNet{sibs: make(map[uint64][3]Ref), proc: make(map[sim.NodeID]uint64)}
	var refs []Ref
	for p := 0; p < n; p++ {
		pid := uint64(p)
		l, m, r := ProcessPoints(h, pid)
		rl := Ref{ID: sim.NodeID(p*3 + 0), Point: l, Kind: Left}
		rm := Ref{ID: sim.NodeID(p*3 + 1), Point: m, Kind: Middle}
		rr := Ref{ID: sim.NodeID(p*3 + 2), Point: r, Kind: Right}
		net.sibs[pid] = [3]Ref{rl, rm, rr}
		for _, ref := range []Ref{rl, rm, rr} {
			net.proc[ref.ID] = pid
			refs = append(refs, ref)
		}
	}
	net.ring = NewRing(refs)
	return net
}

func (net *testNet) neighborhood(i int) Neighborhood {
	self := net.ring.At(i)
	s := net.sibs[net.proc[self.ID]]
	return Neighborhood{
		Self: self,
		Pred: net.ring.Pred(i),
		Succ: net.ring.Succ(i),
		SibL: s[0], SibM: s[1], SibR: s[2],
	}
}

func (net *testNet) neighborhoodOf(id sim.NodeID) Neighborhood {
	for i := 0; i < net.ring.Len(); i++ {
		if net.ring.At(i).ID == id {
			return net.neighborhood(i)
		}
	}
	panic("node not on ring")
}

func TestProcessPointsDefinition(t *testing.T) {
	h := xrand.NewHasher(1, "label")
	for pid := uint64(0); pid < 200; pid++ {
		l, m, r := ProcessPoints(h, pid)
		if l.Label != m.Label.Halve() {
			t.Fatalf("pid %d: l != m/2", pid)
		}
		if r.Label != m.Label.HalvePlus() {
			t.Fatalf("pid %d: r != (m+1)/2", pid)
		}
		if l.Label >= fixpoint.Half {
			t.Fatalf("pid %d: left label %v not in [0,0.5)", pid, l.Label)
		}
		if r.Label < fixpoint.Half {
			t.Fatalf("pid %d: right label %v not in [0.5,1)", pid, r.Label)
		}
		if l.Tie == m.Tie || m.Tie == r.Tie || l.Tie == r.Tie {
			t.Fatalf("pid %d: tie collision", pid)
		}
	}
}

func TestKindString(t *testing.T) {
	if Left.String() != "L" || Middle.String() != "M" || Right.String() != "R" || Kind(9).String() != "?" {
		t.Errorf("Kind.String wrong")
	}
}

func TestPointOrderTotal(t *testing.T) {
	a := Point{Label: 5, Tie: 1}
	b := Point{Label: 5, Tie: 2}
	c := Point{Label: 6, Tie: 0}
	if !a.Less(b) || b.Less(a) {
		t.Errorf("tie ordering broken")
	}
	if !b.Less(c) || !a.Less(c) {
		t.Errorf("label ordering broken")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Errorf("equality broken")
	}
}

func TestRingSorted(t *testing.T) {
	net := buildNet(t, 100, 2)
	for i := 1; i < net.ring.Len(); i++ {
		if !net.ring.At(i - 1).Point.Less(net.ring.At(i).Point) {
			t.Fatalf("ring not strictly sorted at %d", i)
		}
	}
	if net.ring.Len() != 300 {
		t.Fatalf("ring has %d nodes, want 300", net.ring.Len())
	}
}

func TestRingPredSuccWrap(t *testing.T) {
	net := buildNet(t, 10, 3)
	n := net.ring.Len()
	if net.ring.Pred(0) != net.ring.At(n-1) {
		t.Errorf("Pred(0) should wrap to max")
	}
	if net.ring.Succ(n-1) != net.ring.At(0) {
		t.Errorf("Succ(max) should wrap to min")
	}
}

func TestRingResponsibleFor(t *testing.T) {
	net := buildNet(t, 50, 4)
	rng := xrand.New(99)
	for trial := 0; trial < 500; trial++ {
		k := rng.Frac()
		owner := net.ring.ResponsibleFor(k)
		// Verify against the definition: owner <= k < succ(owner) cyclically.
		i := net.ring.IndexOf(owner.Point)
		succ := net.ring.Succ(i)
		if !fixpoint.InCWRange(k, owner.Point.Label, succ.Point.Label) {
			t.Fatalf("key %v assigned to %v whose interval ends at %v", k, owner, succ)
		}
	}
}

func TestRingIndexOf(t *testing.T) {
	net := buildNet(t, 20, 5)
	for i := 0; i < net.ring.Len(); i++ {
		if net.ring.IndexOf(net.ring.At(i).Point) != i {
			t.Fatalf("IndexOf roundtrip failed at %d", i)
		}
	}
	if net.ring.IndexOf(Point{Label: 12345, Tie: 999}) != -1 {
		t.Errorf("IndexOf should return -1 for absent point")
	}
}

func TestAnchorIsGlobalMinAndLeft(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 200} {
		net := buildNet(t, n, int64(n))
		anchors := 0
		for i := 0; i < net.ring.Len(); i++ {
			nb := net.neighborhood(i)
			if nb.IsAnchor() {
				anchors++
				if i != 0 {
					t.Fatalf("n=%d: node at ring index %d believes it is the anchor", n, i)
				}
				if nb.Self.Kind != Left {
					t.Fatalf("n=%d: anchor is a %s node, want L", n, nb.Self.Kind)
				}
			}
		}
		if anchors != 1 {
			t.Fatalf("n=%d: %d anchors", n, anchors)
		}
	}
}

func TestParentChildConsistency(t *testing.T) {
	// parent(v) = u  <=>  v in Children(u); exactly one root.
	for _, n := range []int{1, 2, 5, 50, 300} {
		net := buildNet(t, n, int64(n)*7)
		parentOf := make(map[sim.NodeID]Ref)
		childless := 0
		roots := 0
		for i := 0; i < net.ring.Len(); i++ {
			nb := net.neighborhood(i)
			if p, ok := nb.Parent(); ok {
				parentOf[nb.Self.ID] = p
			} else {
				roots++
			}
			if len(nb.Children()) == 0 {
				childless++
			}
		}
		if roots != 1 {
			t.Fatalf("n=%d: %d roots", n, roots)
		}
		// Check symmetry.
		for i := 0; i < net.ring.Len(); i++ {
			nb := net.neighborhood(i)
			for _, c := range nb.Children() {
				if got := parentOf[c.ID]; got.ID != nb.Self.ID {
					t.Fatalf("n=%d: child %v of %v has parent %v", n, c, nb.Self, got)
				}
			}
			if p, ok := nb.Parent(); ok {
				pnb := net.neighborhoodOf(p.ID)
				found := false
				for _, c := range pnb.Children() {
					if c.ID == nb.Self.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("n=%d: node %v not in children of its parent %v", n, nb.Self, p)
				}
			}
		}
	}
}

func TestTreeReachesRootAndHeight(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000} {
		net := buildNet(t, n, int64(n)+11)
		maxDepth := 0
		for i := 0; i < net.ring.Len(); i++ {
			depth := 0
			nb := net.neighborhood(i)
			for {
				p, ok := nb.Parent()
				if !ok {
					break
				}
				depth++
				if depth > net.ring.Len() {
					t.Fatalf("n=%d: parent chain from node %d does not terminate", n, i)
				}
				nb = net.neighborhoodOf(p.ID)
			}
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		if n >= 10 {
			bound := int(8 * math.Log2(float64(3*n)))
			if maxDepth > bound {
				t.Errorf("n=%d: tree height %d exceeds %d (≈8·log2(3n))", n, maxDepth, bound)
			}
		}
	}
}

func TestParentStrictlyLeft(t *testing.T) {
	net := buildNet(t, 150, 12)
	for i := 0; i < net.ring.Len(); i++ {
		nb := net.neighborhood(i)
		if p, ok := nb.Parent(); ok {
			if !p.Point.Less(nb.Self.Point) {
				t.Fatalf("parent %v not left of %v", p, nb.Self)
			}
		}
	}
}

func TestRightNodesAreLeaves(t *testing.T) {
	net := buildNet(t, 80, 13)
	for i := 0; i < net.ring.Len(); i++ {
		nb := net.neighborhood(i)
		if nb.Self.Kind == Right && len(nb.Children()) != 0 {
			t.Fatalf("right node %v has children %v", nb.Self, nb.Children())
		}
	}
}

// route walks a message through the network hop by hop.
func (net *testNet) route(from int, target fixpoint.Frac) (Ref, int) {
	nb := net.neighborhood(from)
	rs := nb.NewRoute(target)
	for {
		next, out, deliver := nb.NextHop(rs)
		if deliver {
			return nb.Self, out.Hops
		}
		if out.Hops > 40*64 {
			return Ref{ID: sim.None}, out.Hops
		}
		nb = net.neighborhoodOf(next.ID)
		rs = out
	}
}

func TestRoutingDeliversAtResponsibleNode(t *testing.T) {
	for _, n := range []int{1, 2, 4, 32, 200} {
		net := buildNet(t, n, int64(n)*3+1)
		rng := xrand.New(int64(n))
		for trial := 0; trial < 200; trial++ {
			start := rng.Intn(net.ring.Len())
			key := rng.Frac()
			got, hops := net.route(start, key)
			if !got.Valid() {
				t.Fatalf("n=%d: routing to %v from %d did not terminate", n, key, start)
			}
			want := net.ring.ResponsibleFor(key)
			if got.ID != want.ID {
				t.Fatalf("n=%d: key %v delivered at %v, responsible is %v (hops %d)", n, key, got, want, hops)
			}
		}
	}
}

func TestRoutingHopBound(t *testing.T) {
	// Average hops should scale like log n; check a generous linear-in-log
	// bound on the max, which would fail badly if routing degenerated to a
	// linear walk.
	for _, n := range []int{64, 512, 2048} {
		net := buildNet(t, n, int64(n)+17)
		rng := xrand.New(7)
		maxHops, sum := 0, 0
		const trials = 300
		for trial := 0; trial < trials; trial++ {
			start := rng.Intn(net.ring.Len())
			key := rng.Frac()
			_, hops := net.route(start, key)
			sum += hops
			if hops > maxHops {
				maxHops = hops
			}
		}
		// Each De Bruijn bit costs one jump plus an expected ~3-step walk
		// to the next middle; the bit count is log2(3n)+RouteSlack.
		perBit := math.Log2(float64(3*n)) + RouteSlack + 2
		if float64(maxHops) > 12*perBit {
			t.Errorf("n=%d: max hops %d > %0.f", n, maxHops, 12*perBit)
		}
		if avg := float64(sum) / trials; avg > 6*perBit {
			t.Errorf("n=%d: avg hops %.1f > %.0f", n, avg, 6*perBit)
		}
	}
}

func TestRoutingToOwnKeyImmediate(t *testing.T) {
	net := buildNet(t, 50, 21)
	for i := 0; i < net.ring.Len(); i++ {
		nb := net.neighborhood(i)
		// A key just inside the own interval must be deliverable.
		key := nb.Self.Point.Label
		got, _ := net.route(i, key)
		if got.ID != nb.Self.ID {
			t.Fatalf("routing to own label landed at %v, not self %v", got, nb.Self)
		}
	}
}

func TestNewRouteBitEstimate(t *testing.T) {
	net := buildNet(t, 1024, 22)
	nb := net.neighborhood(5)
	rs := nb.NewRoute(fixpoint.Half)
	logn := int(math.Log2(3 * 1024))
	if rs.BitsLeft < logn-4 || rs.BitsLeft > logn+12 {
		t.Errorf("bit estimate %d far from log2(3n)=%d", rs.BitsLeft, logn)
	}
}

func TestResponsibleMatchesRingOracle(t *testing.T) {
	net := buildNet(t, 64, 23)
	rng := xrand.New(5)
	for trial := 0; trial < 300; trial++ {
		k := rng.Frac()
		count := 0
		for i := 0; i < net.ring.Len(); i++ {
			if net.neighborhood(i).Responsible(k) {
				count++
				if net.ring.ResponsibleFor(k).ID != net.ring.At(i).ID {
					t.Fatalf("local Responsible disagrees with oracle for %v", k)
				}
			}
		}
		if count != 1 {
			t.Fatalf("key %v claimed by %d nodes", k, count)
		}
	}
}

func TestRefValidAndString(t *testing.T) {
	var r Ref
	r.ID = sim.None
	if r.Valid() || r.String() != "<nil>" {
		t.Errorf("zero ref should be invalid")
	}
	r = Ref{ID: 3, Point: Point{Label: fixpoint.Half}, Kind: Middle}
	if !r.Valid() || r.String() == "" {
		t.Errorf("ref should be valid and printable")
	}
}

func TestSingleProcessTopology(t *testing.T) {
	// One process: chain l <- m <- r, anchor l.
	net := buildNet(t, 1, 42)
	l, m, r := net.neighborhood(0), net.neighborhood(1), net.neighborhood(2)
	if l.Self.Kind != Left || m.Self.Kind != Middle || r.Self.Kind != Right {
		t.Fatalf("ring order not l,m,r: %v %v %v", l.Self, m.Self, r.Self)
	}
	if !l.IsAnchor() {
		t.Fatalf("left node should be anchor")
	}
	if p, ok := m.Parent(); !ok || p.ID != l.Self.ID {
		t.Errorf("parent of middle should be left")
	}
	if p, ok := r.Parent(); !ok || p.ID != m.Self.ID {
		t.Errorf("parent of right should be middle")
	}
	lc := l.Children()
	if len(lc) != 1 || lc[0].ID != m.Self.ID {
		t.Errorf("children of left should be {middle}, got %v", lc)
	}
	mc := m.Children()
	if len(mc) != 1 || mc[0].ID != r.Self.ID {
		t.Errorf("children of middle should be {right}, got %v", mc)
	}
	if len(r.Children()) != 0 {
		t.Errorf("right node should be a leaf")
	}
}
