package seqcheck

// Scale tests for CheckPriority, mirroring scale_test.go: a valid
// at-scale priority history checks clean in bounded time, and planted
// violations deep inside an at-scale history — a priority inversion and
// an intra-level FIFO swap — are found. The chaos harness runs
// CheckPriority after every heap scenario, so both the cost ceiling and
// the detection depth are part of the harness contract.

import (
	"testing"
	"time"

	"skueue/internal/dht"
	"skueue/internal/xrand"
)

// synthPriorityHistory builds a valid heap history of n operations over
// nClients clients and the given number of priority levels by replaying
// level FIFO queues in witness order: enqueues pick a uniform level,
// dequeue-min takes the front of the lowest non-empty level, value()
// ranks are assigned in construction order. This is the shape of a real
// certified heap run at whatever scale the caller asks for.
func synthPriorityHistory(levels, nClients, n int, seed int64) *History {
	rng := xrand.New(seed).Fork("synth-pri")
	h := &History{Ops: make([]Completion, 0, n)}
	localSeq := make([]int64, nClients)
	enqSeq := make([]int64, nClients)
	lvls := make([][]dht.Element, levels)
	pending := 0
	for v := int64(0); v < int64(n); v++ {
		client := int32(rng.Intn(nClients))
		c := Completion{Client: client, LocalSeq: localSeq[client], Value: v, Born: v, Done: v + 1}
		localSeq[client]++
		if rng.Bool(0.55) {
			c.Kind = Enqueue
			c.Pri = int32(rng.Intn(levels))
			c.Elem = dht.Element{Origin: client, Seq: enqSeq[client]}
			enqSeq[client]++
			lvls[c.Pri] = append(lvls[c.Pri], c.Elem)
			pending++
		} else {
			c.Kind = Dequeue
			if pending == 0 {
				c.Bottom = true
			} else {
				for l := range lvls {
					if len(lvls[l]) > 0 {
						c.Elem = lvls[l][0]
						lvls[l] = lvls[l][1:]
						pending--
						break
					}
				}
			}
		}
		h.Record(c)
	}
	return h
}

// elemLevels maps every enqueued element to its priority level (dequeue
// completions do not carry the level; the tests recover it from the
// matching enqueue, exactly like the checker does).
func elemLevels(h *History) map[dht.Element]int32 {
	out := make(map[dht.Element]int32)
	for _, op := range h.Ops {
		if op.Kind == Enqueue {
			out[op.Elem] = op.Pri
		}
	}
	return out
}

// TestSeqcheckPriorityAtScale certifies CheckPriority at chaos-harness
// history sizes: a million-operation heap history (200k under -short)
// across 64 clients and 4 levels checks clean in bounded time.
func TestSeqcheckPriorityAtScale(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 200_000
	}
	const levels = 4
	h := synthPriorityHistory(levels, 64, n, 19)
	start := time.Now()
	if err := CheckPriority(h, levels); err != nil {
		t.Fatalf("valid %d-op priority history rejected: %v", n, err)
	}
	elapsed := time.Since(start)
	t.Logf("checked %d ops in %v (%.0f ops/s)", n, elapsed, float64(n)/elapsed.Seconds())
	if elapsed > 2*time.Minute {
		t.Fatalf("CheckPriority took %v for %d ops; the chaos harness cannot afford that", elapsed, n)
	}
}

// TestSeqcheckPriorityCatchesInversionAtDepth plants a single priority
// inversion deep inside an at-scale history: one dequeue-min returns a
// high-level element while a level-0 element is pending. The checker
// must find it.
func TestSeqcheckPriorityCatchesInversionAtDepth(t *testing.T) {
	n := 300_000
	if testing.Short() {
		n = 60_000
	}
	const levels = 4
	h := synthPriorityHistory(levels, 32, n, 29)
	pri := elemLevels(h)
	// Find a dequeue of a level-0 element in the back half, then a later
	// dequeue of a higher-level element, and swap their returns: the
	// first now jumps the level-0 front.
	lo, hi := -1, -1
	for i := n / 2; i < n && hi < 0; i++ {
		op := h.Ops[i]
		if op.Kind != Dequeue || op.Bottom {
			continue
		}
		if lo < 0 {
			if pri[op.Elem] == 0 {
				lo = i
			}
		} else if pri[op.Elem] > 0 {
			hi = i
		}
	}
	if hi < 0 {
		t.Fatal("synthetic history has no usable dequeue pair to corrupt")
	}
	h.Ops[lo].Elem, h.Ops[hi].Elem = h.Ops[hi].Elem, h.Ops[lo].Elem
	if err := CheckPriority(h, levels); err == nil {
		t.Fatalf("checker accepted a %d-op history with a planted priority inversion at ops %d/%d", n, lo, hi)
	} else {
		t.Logf("caught: %v", err)
	}
}

// TestSeqcheckPriorityCatchesIntraLevelSwap plants an intra-level FIFO
// swap deep inside an at-scale history: two dequeues of same-level
// elements exchange their returns, breaking FIFO order within the level
// while leaving the level sequence itself intact.
func TestSeqcheckPriorityCatchesIntraLevelSwap(t *testing.T) {
	n := 300_000
	if testing.Short() {
		n = 60_000
	}
	const levels = 4
	h := synthPriorityHistory(levels, 32, n, 31)
	pri := elemLevels(h)
	var deqs []int
	for i := n / 2; i < n && len(deqs) < 2; i++ {
		op := h.Ops[i]
		if op.Kind == Dequeue && !op.Bottom && pri[op.Elem] == 1 {
			deqs = append(deqs, i)
		}
	}
	if len(deqs) < 2 {
		t.Fatal("synthetic history has too few level-1 dequeues to corrupt")
	}
	i, j := deqs[0], deqs[1]
	h.Ops[i].Elem, h.Ops[j].Elem = h.Ops[j].Elem, h.Ops[i].Elem
	if err := CheckPriority(h, levels); err == nil {
		t.Fatalf("checker accepted a %d-op history with a planted intra-level FIFO swap at ops %d/%d", n, i, j)
	} else {
		t.Logf("caught: %v", err)
	}
}

// TestSeqcheckPriorityBottomWhilePending plants a false-⊥ deep inside an
// at-scale history: a dequeue that returned an element is rewritten as
// empty while elements are pending.
func TestSeqcheckPriorityBottomWhilePending(t *testing.T) {
	n := 300_000
	if testing.Short() {
		n = 60_000
	}
	const levels = 4
	h := synthPriorityHistory(levels, 32, n, 37)
	for i := n / 2; i < n; i++ {
		op := &h.Ops[i]
		if op.Kind == Dequeue && !op.Bottom {
			op.Bottom = true
			op.Elem = dht.Element{}
			if err := CheckPriority(h, levels); err == nil {
				t.Fatalf("checker accepted a %d-op history with a planted false ⊥ at op %d", n, i)
			} else {
				t.Logf("caught: %v", err)
			}
			return
		}
	}
	t.Fatal("synthetic history has no non-bottom dequeue in the back half")
}

// BenchmarkSeqcheckPriority measures CheckPriority on a 100k-op heap
// history (the typical size of one chaos scenario's merged history).
func BenchmarkSeqcheckPriority(b *testing.B) {
	h := synthPriorityHistory(4, 64, 100_000, 41)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckPriority(h, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(h.Ops))*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
