package seqcheck

import (
	"testing"
	"time"

	"skueue/internal/dht"
	"skueue/internal/xrand"
)

// synthHistory builds a valid history of n operations over nClients
// clients by replaying a sequential queue or stack in witness order:
// value() ranks are assigned in construction order, every client's
// LocalSeq increases along the witness order (so the embedding property
// holds by construction), and dequeue returns come from the sequential
// structure itself (so the replay property holds too). This is the
// shape of a real certified run at whatever scale the caller asks for.
func synthHistory(mode Mode, nClients, n int, seed int64) *History {
	rng := xrand.New(seed).Fork("synth")
	h := &History{Ops: make([]Completion, 0, n)}
	localSeq := make([]int64, nClients)
	enqSeq := make([]int64, nClients)
	var pending []dht.Element // front at index 0 (queue) / top at end (stack)
	for v := int64(0); v < int64(n); v++ {
		client := int32(rng.Intn(nClients))
		c := Completion{Client: client, LocalSeq: localSeq[client], Value: v, Born: v, Done: v + 1}
		localSeq[client]++
		if rng.Bool(0.55) {
			c.Kind = Enqueue
			c.Elem = dht.Element{Origin: client, Seq: enqSeq[client]}
			enqSeq[client]++
			pending = append(pending, c.Elem)
		} else {
			c.Kind = Dequeue
			if len(pending) == 0 {
				c.Bottom = true
			} else if mode == Queue {
				c.Elem = pending[0]
				pending = pending[1:]
			} else {
				c.Elem = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
			}
		}
		h.Record(c)
	}
	return h
}

// TestSeqcheckMillionOps certifies that the Definition 1 checker scales
// to chaos-harness history sizes: a million-operation history (200k under
// -short) across 64 clients checks clean in bounded time. The chaos
// harness runs Check after every scenario, so its cost ceiling is part of
// the harness contract.
func TestSeqcheckMillionOps(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 200_000
	}
	for _, mode := range []Mode{Queue, Stack} {
		h := synthHistory(mode, 64, n, 17)
		start := time.Now()
		if err := Check(mode, h); err != nil {
			t.Fatalf("mode %v: valid %d-op history rejected: %v", mode, n, err)
		}
		elapsed := time.Since(start)
		t.Logf("mode %v: checked %d ops in %v (%.0f ops/s)", mode, n, elapsed, float64(n)/elapsed.Seconds())
		if elapsed > 2*time.Minute {
			t.Fatalf("mode %v: Check took %v for %d ops; the chaos harness cannot afford that", mode, elapsed, n)
		}
	}
}

// TestSeqcheckCatchesDeepViolation plants a single FIFO swap deep inside
// an at-scale history and demands the checker finds it — a checker that
// only looks at small histories end to end would be worthless to the
// chaos harness.
func TestSeqcheckCatchesDeepViolation(t *testing.T) {
	n := 300_000
	if testing.Short() {
		n = 60_000
	}
	h := synthHistory(Queue, 32, n, 23)
	// Swap the returned elements of two non-bottom dequeues in the back
	// half of the history: FIFO order breaks at the first of the two.
	var deqs []int
	for i := n / 2; i < n && len(deqs) < 2; i++ {
		if h.Ops[i].Kind == Dequeue && !h.Ops[i].Bottom {
			deqs = append(deqs, i)
		}
	}
	if len(deqs) < 2 {
		t.Fatal("synthetic history has too few dequeues to corrupt")
	}
	i, j := deqs[0], deqs[1]
	h.Ops[i].Elem, h.Ops[j].Elem = h.Ops[j].Elem, h.Ops[i].Elem
	if err := Check(Queue, h); err == nil {
		t.Fatalf("checker accepted a %d-op history with a planted FIFO swap at ops %d/%d", n, i, j)
	}
}

// BenchmarkSeqcheckQueue measures the checker on a 100k-op queue history
// (the typical size of one chaos scenario's merged history).
func BenchmarkSeqcheckQueue(b *testing.B) {
	h := synthHistory(Queue, 64, 100_000, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Check(Queue, h); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(h.Ops))*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkSeqcheckStack is the stack-mode twin.
func BenchmarkSeqcheckStack(b *testing.B) {
	h := synthHistory(Stack, 64, 100_000, 37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Check(Stack, h); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(h.Ops))*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
