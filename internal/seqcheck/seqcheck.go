// Package seqcheck verifies sequential consistency (paper Definition 1) of
// executions produced by the Skueue protocol and its stack variant.
//
// Definition 1 asks for the existence of a total order ≺ on all ENQUEUE and
// DEQUEUE requests such that (1) elements are enqueued before being
// dequeued, (2) dequeues return an element whenever one is present and no
// enqueued element is skipped, (3) elements leave in FIFO order, and
// (4) ≺ extends every client's local issue order. The protocol's value()
// ranks (§V) provide a witness for ≺; this package checks the witness from
// first principles:
//
//   - per-client issue order must embed into the witness order;
//   - replaying the complete history in witness order against a sequential
//     queue (resp. stack) must reproduce every return value, including ⊥.
//
// With all elements unique (the paper's standing assumption), the replay
// check is equivalent to properties 1-3, and the embedding check is
// property 4.
//
// Stack executions may contain locally combined operation pairs (§VI) that
// never reach the anchor and therefore carry no value() rank. Each
// client's run of combined operations between two anchor-valued operations
// forms a balanced push/pop word; the checker places each such block
// contiguously in the witness order, anchored right after the client's
// preceding valued operation, which preserves both the local order and
// stack semantics (a balanced block is stack-neutral).
package seqcheck

import (
	"fmt"
	"sort"

	"skueue/internal/dht"
)

// Kind is the operation type.
type Kind uint8

// Operation kinds. Push and Pop are aliases used by the stack variant.
const (
	Enqueue Kind = iota
	Dequeue
)

// Push and Pop name the stack flavours of the two kinds.
const (
	Push = Enqueue
	Pop  = Dequeue
)

func (k Kind) String() string {
	if k == Dequeue {
		return "deq"
	}
	return "enq"
}

// NoValue marks an operation without an anchor-assigned value() rank
// (locally combined stack operations).
const NoValue int64 = -1

// Completion records one finished operation.
type Completion struct {
	// Client is the virtual node that issued the request; LocalSeq is the
	// request's index in that client's issue order.
	Client   int32
	LocalSeq int64
	Kind     Kind
	// Elem is the enqueued element, or the element a dequeue returned.
	Elem dht.Element
	// Bottom marks a dequeue that returned ⊥.
	Bottom bool
	// Value is the operation's value() rank in ≺, or NoValue.
	Value int64
	// Pri is the enqueue's priority level (heap mode); zero otherwise.
	// Dequeue completions do not carry it — the checker derives a dequeued
	// element's level from the matching enqueue.
	Pri int32
	// Born and Done are the issue and completion times (rounds).
	Born, Done int64
	// ReqID identifies the request within the run (diagnostics).
	ReqID uint64
	// Blob is the opaque application payload that rode with the element
	// through the DHT (networked deployments; nil under the simulator).
	// The checker ignores it.
	Blob []byte
}

// History is an append-only record of completions.
type History struct {
	Ops []Completion
}

// Record appends one completion.
func (h *History) Record(c Completion) { h.Ops = append(h.Ops, c) }

// Len returns the number of recorded completions.
func (h *History) Len() int { return len(h.Ops) }

// Mode mirrors the data-structure semantics being checked.
type Mode uint8

// The two semantics.
const (
	Queue Mode = iota
	Stack
)

type witnessKey struct {
	v      int64
	client int32 // -1 for anchor-valued ops, issuing client for combined
	sub    int64
}

func (a witnessKey) less(b witnessKey) bool {
	if a.v != b.v {
		return a.v < b.v
	}
	if a.client != b.client {
		return a.client < b.client
	}
	return a.sub < b.sub
}

// Check verifies the history. It returns nil when the execution is
// sequentially consistent, and a descriptive error otherwise.
func Check(mode Mode, h *History) error {
	ops := make([]Completion, len(h.Ops))
	copy(ops, h.Ops)

	// Group by client and sort by local sequence.
	byClient := make(map[int32][]Completion)
	for _, op := range ops {
		byClient[op.Client] = append(byClient[op.Client], op)
	}
	clients := make([]int32, 0, len(byClient))
	for c := range byClient {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })

	// Assign witness keys per client in local order.
	keys := make(map[opID]witnessKey, len(ops))
	seenValues := make(map[int64]opID)
	for _, c := range clients {
		seq := byClient[c]
		sort.Slice(seq, func(i, j int) bool { return seq[i].LocalSeq < seq[j].LocalSeq })
		for i := 1; i < len(seq); i++ {
			if seq[i].LocalSeq == seq[i-1].LocalSeq {
				return fmt.Errorf("seqcheck: client %d has two operations with local seq %d", c, seq[i].LocalSeq)
			}
		}
		lastV := int64(0)
		sub := int64(0)
		for _, op := range seq {
			id := opID{op.Client, op.LocalSeq}
			if op.Value != NoValue {
				if prev, dup := seenValues[op.Value]; dup {
					return fmt.Errorf("seqcheck: value %d assigned to both %v and %v", op.Value, prev, id)
				}
				seenValues[op.Value] = id
				keys[id] = witnessKey{v: op.Value, client: -1}
				lastV = op.Value
				sub = 0
				continue
			}
			if mode == Queue {
				return fmt.Errorf("seqcheck: queue operation without value() rank: client %d seq %d", op.Client, op.LocalSeq)
			}
			sub++
			keys[id] = witnessKey{v: lastV, client: op.Client, sub: sub}
		}
		// Property 4: the witness keys must be strictly increasing in local
		// order. Anchor values increase by construction of the keys only if
		// the protocol assigned them monotonically — check it.
		var prev witnessKey
		for i, op := range seq {
			k := keys[opID{op.Client, op.LocalSeq}]
			if i > 0 && !prev.less(k) {
				return fmt.Errorf("seqcheck: property 4 violated at client %d: op seq %d (key %+v) not after seq %d (key %+v)",
					c, op.LocalSeq, k, seq[i-1].LocalSeq, prev)
			}
			prev = k
		}
	}

	// Global witness order.
	sort.Slice(ops, func(i, j int) bool {
		return keys[opID{ops[i].Client, ops[i].LocalSeq}].less(keys[opID{ops[j].Client, ops[j].LocalSeq}])
	})

	// Uniqueness of elements.
	enqueued := make(map[dht.Element]opID)
	dequeued := make(map[dht.Element]opID)
	for _, op := range ops {
		id := opID{op.Client, op.LocalSeq}
		if op.Kind == Enqueue {
			if prev, dup := enqueued[op.Elem]; dup {
				return fmt.Errorf("seqcheck: element %v enqueued twice (%v and %v)", op.Elem, prev, id)
			}
			enqueued[op.Elem] = id
		} else if !op.Bottom {
			if prev, dup := dequeued[op.Elem]; dup {
				return fmt.Errorf("seqcheck: element %v dequeued twice (%v and %v)", op.Elem, prev, id)
			}
			dequeued[op.Elem] = id
		}
	}

	// Replay (properties 1-3).
	if mode == Queue {
		return replayQueue(ops)
	}
	return replayStack(ops)
}

// CheckPriority verifies a heap-mode history against a sequential
// bounded-priority heap with the given number of levels: DEQUEUE-MIN
// returns the front of the lowest non-empty priority level (FIFO within
// each level), and ⊥ only when every level is empty. The witness order
// machinery is the queue checker's — heap mode never combines locally, so
// every operation must carry an anchor value() rank, and property 4 (the
// witness extends each client's issue order) is checked identically.
func CheckPriority(h *History, levels int) error {
	if levels < 1 {
		return fmt.Errorf("seqcheck: priority check needs at least one level, got %d", levels)
	}
	ops := make([]Completion, len(h.Ops))
	copy(ops, h.Ops)

	byClient := make(map[int32][]Completion)
	for _, op := range ops {
		byClient[op.Client] = append(byClient[op.Client], op)
	}
	seenValues := make(map[int64]opID)
	for c, seq := range byClient {
		sort.Slice(seq, func(i, j int) bool { return seq[i].LocalSeq < seq[j].LocalSeq })
		for i := 1; i < len(seq); i++ {
			if seq[i].LocalSeq == seq[i-1].LocalSeq {
				return fmt.Errorf("seqcheck: client %d has two operations with local seq %d", c, seq[i].LocalSeq)
			}
		}
		for i, op := range seq {
			id := opID{op.Client, op.LocalSeq}
			if op.Value == NoValue {
				return fmt.Errorf("seqcheck: heap operation without value() rank: client %d seq %d", op.Client, op.LocalSeq)
			}
			if prev, dup := seenValues[op.Value]; dup {
				return fmt.Errorf("seqcheck: value %d assigned to both %v and %v", op.Value, prev, id)
			}
			seenValues[op.Value] = id
			if i > 0 && op.Value <= seq[i-1].Value {
				return fmt.Errorf("seqcheck: property 4 violated at client %d: op seq %d (value %d) not after seq %d (value %d)",
					c, op.LocalSeq, op.Value, seq[i-1].LocalSeq, seq[i-1].Value)
			}
		}
	}

	// The heap never combines, so every operation carries a distinct
	// value() rank and the witness order is simply rank order (no
	// combined-block tie-breaking like the queue/stack checker needs).
	sort.Slice(ops, func(i, j int) bool { return ops[i].Value < ops[j].Value })

	// Uniqueness of elements.
	enqueued := make(map[dht.Element]opID)
	dequeued := make(map[dht.Element]opID)
	for _, op := range ops {
		id := opID{op.Client, op.LocalSeq}
		if op.Kind == Enqueue {
			if prev, dup := enqueued[op.Elem]; dup {
				return fmt.Errorf("seqcheck: element %v enqueued twice (%v and %v)", op.Elem, prev, id)
			}
			enqueued[op.Elem] = id
		} else if !op.Bottom {
			if prev, dup := dequeued[op.Elem]; dup {
				return fmt.Errorf("seqcheck: element %v dequeued twice (%v and %v)", op.Elem, prev, id)
			}
			dequeued[op.Elem] = id
		}
	}

	return replayPriority(ops, levels)
}

func replayPriority(ops []Completion, levels int) error {
	lvls := make([][]dht.Element, levels)
	pending := 0
	for _, op := range ops {
		switch {
		case op.Kind == Enqueue:
			if op.Pri < 0 || int(op.Pri) >= levels {
				return fmt.Errorf("seqcheck: enqueue by client %d (seq %d) has priority %d outside [0,%d)",
					op.Client, op.LocalSeq, op.Pri, levels)
			}
			lvls[op.Pri] = append(lvls[op.Pri], op.Elem)
			pending++
		case op.Bottom:
			if pending != 0 {
				low := 0
				for len(lvls[low]) == 0 {
					low++
				}
				return fmt.Errorf("seqcheck: dequeue-min by client %d (seq %d) returned ⊥ while %d elements were pending (min level %d front %v)",
					op.Client, op.LocalSeq, pending, low, lvls[low][0])
			}
		default:
			if pending == 0 {
				return fmt.Errorf("seqcheck: dequeue-min by client %d (seq %d) returned %v from an empty heap",
					op.Client, op.LocalSeq, op.Elem)
			}
			low := 0
			for len(lvls[low]) == 0 {
				low++
			}
			if front := lvls[low][0]; front != op.Elem {
				return fmt.Errorf("seqcheck: priority violation: dequeue-min by client %d (seq %d) returned %v, expected level-%d front %v",
					op.Client, op.LocalSeq, op.Elem, low, front)
			}
			lvls[low] = lvls[low][1:]
			pending--
		}
	}
	return nil
}

type opID struct {
	client int32
	seq    int64
}

func (id opID) String() string { return fmt.Sprintf("op(c%d#%d)", id.client, id.seq) }

func replayQueue(ops []Completion) error {
	var fifo []dht.Element
	for _, op := range ops {
		switch {
		case op.Kind == Enqueue:
			fifo = append(fifo, op.Elem)
		case op.Bottom:
			if len(fifo) != 0 {
				return fmt.Errorf("seqcheck: dequeue by client %d (seq %d) returned ⊥ while %d elements were queued (front %v)",
					op.Client, op.LocalSeq, len(fifo), fifo[0])
			}
		default:
			if len(fifo) == 0 {
				return fmt.Errorf("seqcheck: dequeue by client %d (seq %d) returned %v from an empty queue",
					op.Client, op.LocalSeq, op.Elem)
			}
			if fifo[0] != op.Elem {
				return fmt.Errorf("seqcheck: FIFO violation: dequeue by client %d (seq %d) returned %v, expected front %v",
					op.Client, op.LocalSeq, op.Elem, fifo[0])
			}
			fifo = fifo[1:]
		}
	}
	return nil
}

func replayStack(ops []Completion) error {
	var stk []dht.Element
	for _, op := range ops {
		switch {
		case op.Kind == Push:
			stk = append(stk, op.Elem)
		case op.Bottom:
			if len(stk) != 0 {
				return fmt.Errorf("seqcheck: pop by client %d (seq %d) returned ⊥ while %d elements were stacked (top %v)",
					op.Client, op.LocalSeq, len(stk), stk[len(stk)-1])
			}
		default:
			if len(stk) == 0 {
				return fmt.Errorf("seqcheck: pop by client %d (seq %d) returned %v from an empty stack",
					op.Client, op.LocalSeq, op.Elem)
			}
			if top := stk[len(stk)-1]; top != op.Elem {
				return fmt.Errorf("seqcheck: LIFO violation: pop by client %d (seq %d) returned %v, expected top %v",
					op.Client, op.LocalSeq, op.Elem, top)
			}
			stk = stk[:len(stk)-1]
		}
	}
	return nil
}

// Stats summarizes a history for the experiment harness.
type Stats struct {
	Total     int
	Enqueues  int
	Dequeues  int
	Bottoms   int
	Combined  int // stack operations completed by local combining
	AvgRounds float64
	MaxRounds int64
}

// Summarize computes latency statistics over the history.
func Summarize(h *History) Stats {
	var s Stats
	var sum int64
	for _, op := range h.Ops {
		s.Total++
		if op.Kind == Enqueue {
			s.Enqueues++
		} else {
			s.Dequeues++
			if op.Bottom {
				s.Bottoms++
			}
		}
		if op.Value == NoValue {
			s.Combined++
		}
		d := op.Done - op.Born
		sum += d
		if d > s.MaxRounds {
			s.MaxRounds = d
		}
	}
	if s.Total > 0 {
		s.AvgRounds = float64(sum) / float64(s.Total)
	}
	return s
}
