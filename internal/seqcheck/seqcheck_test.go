package seqcheck

import (
	"strings"
	"testing"

	"skueue/internal/dht"
)

func elem(o, s int) dht.Element { return dht.Element{Origin: int32(o), Seq: int64(s)} }

// op builds a completion tersely.
func op(client int32, seq int64, k Kind, e dht.Element, value int64) Completion {
	return Completion{Client: client, LocalSeq: seq, Kind: k, Elem: e, Value: value}
}

func bottom(client int32, seq int64, value int64) Completion {
	return Completion{Client: client, LocalSeq: seq, Kind: Dequeue, Bottom: true, Value: value}
}

func hist(ops ...Completion) *History {
	h := &History{}
	for _, o := range ops {
		h.Record(o)
	}
	return h
}

func mustPass(t *testing.T, mode Mode, h *History) {
	t.Helper()
	if err := Check(mode, h); err != nil {
		t.Fatalf("expected consistent, got: %v", err)
	}
}

func mustFail(t *testing.T, mode Mode, h *History, want string) {
	t.Helper()
	err := Check(mode, h)
	if err == nil {
		t.Fatalf("expected violation containing %q, got nil", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestEmptyHistory(t *testing.T) {
	mustPass(t, Queue, hist())
	mustPass(t, Stack, hist())
}

func TestSimpleFIFO(t *testing.T) {
	mustPass(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		op(1, 1, Enqueue, elem(1, 1), 2),
		op(2, 0, Dequeue, elem(1, 0), 3),
		op(2, 1, Dequeue, elem(1, 1), 4),
	))
}

func TestFIFOViolationCaught(t *testing.T) {
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		op(1, 1, Enqueue, elem(1, 1), 2),
		op(2, 0, Dequeue, elem(1, 1), 3), // wrong: skips elem(1,0)
		op(2, 1, Dequeue, elem(1, 0), 4),
	), "FIFO violation")
}

func TestDequeueFromEmptyCaught(t *testing.T) {
	mustFail(t, Queue, hist(
		op(2, 0, Dequeue, elem(1, 0), 1),
		op(1, 0, Enqueue, elem(1, 0), 2),
	), "empty queue")
}

func TestBottomWhileElementsPresent(t *testing.T) {
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		bottom(2, 0, 2),
	), "⊥")
}

func TestBottomOnEmptyOK(t *testing.T) {
	mustPass(t, Queue, hist(
		bottom(2, 0, 1),
		op(1, 0, Enqueue, elem(1, 0), 2),
		op(2, 1, Dequeue, elem(1, 0), 3),
		bottom(2, 2, 4),
	))
}

func TestLocalOrderViolationCaught(t *testing.T) {
	// Client 1 issues enq (seq 0) before deq (seq 1), but the values invert
	// that order.
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 5),
		bottom(1, 1, 2),
	), "property 4")
}

func TestDuplicateValueCaught(t *testing.T) {
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		op(2, 0, Enqueue, elem(2, 0), 1),
	), "value 1")
}

func TestDuplicateLocalSeqCaught(t *testing.T) {
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		op(1, 0, Enqueue, elem(1, 1), 2),
	), "local seq")
}

func TestDoubleEnqueueCaught(t *testing.T) {
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(9, 9), 1),
		op(2, 0, Enqueue, elem(9, 9), 2),
	), "enqueued twice")
}

func TestDoubleDeliveryCaught(t *testing.T) {
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		op(2, 0, Dequeue, elem(1, 0), 2),
		op(3, 0, Dequeue, elem(1, 0), 3),
	), "dequeued twice")
}

func TestQueueOpWithoutValueRejected(t *testing.T) {
	mustFail(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), NoValue),
	), "without value")
}

func TestSimpleLIFO(t *testing.T) {
	mustPass(t, Stack, hist(
		op(1, 0, Push, elem(1, 0), 1),
		op(1, 1, Push, elem(1, 1), 2),
		op(2, 0, Pop, elem(1, 1), 3),
		op(2, 1, Pop, elem(1, 0), 4),
	))
}

func TestLIFOViolationCaught(t *testing.T) {
	mustFail(t, Stack, hist(
		op(1, 0, Push, elem(1, 0), 1),
		op(1, 1, Push, elem(1, 1), 2),
		op(2, 0, Pop, elem(1, 0), 3), // wrong: pops the bottom
	), "LIFO violation")
}

func TestCombinedBlockPlacement(t *testing.T) {
	// Client 1: push a (valued 1), then a combined pair (push b, pop b),
	// then pop a (valued 2). The combined ops have no value but must embed
	// between the valued neighbours.
	mustPass(t, Stack, hist(
		op(1, 0, Push, elem(1, 0), 1),
		op(1, 1, Push, elem(1, 1), NoValue),
		op(1, 2, Pop, elem(1, 1), NoValue),
		op(1, 3, Pop, elem(1, 0), 2),
	))
}

func TestCombinedBlockAtHistoryStart(t *testing.T) {
	// A client whose first actions are combined pairs, before any valued op.
	mustPass(t, Stack, hist(
		op(1, 0, Push, elem(1, 0), NoValue),
		op(1, 1, Pop, elem(1, 0), NoValue),
		op(2, 0, Push, elem(2, 0), 1),
		op(1, 2, Pop, elem(2, 0), 2),
	))
}

func TestTwoClientsCombinedBlocksDoNotInterleave(t *testing.T) {
	// Two clients, each with a balanced combined block anchored at the
	// start. Blocks are placed contiguously per client, so both must pass.
	mustPass(t, Stack, hist(
		op(1, 0, Push, elem(1, 0), NoValue),
		op(1, 1, Pop, elem(1, 0), NoValue),
		op(2, 0, Push, elem(2, 0), NoValue),
		op(2, 1, Pop, elem(2, 0), NoValue),
	))
}

func TestCombinedWrongElementCaught(t *testing.T) {
	mustFail(t, Stack, hist(
		op(1, 0, Push, elem(1, 0), NoValue),
		op(1, 1, Push, elem(1, 1), NoValue),
		op(1, 2, Pop, elem(1, 0), NoValue), // should return elem(1,1)
	), "LIFO violation")
}

func TestNestedCombinedBlock(t *testing.T) {
	// push a, push b, pop b, pop a — fully combined, nested.
	mustPass(t, Stack, hist(
		op(1, 0, Push, elem(1, 0), NoValue),
		op(1, 1, Push, elem(1, 1), NoValue),
		op(1, 2, Pop, elem(1, 1), NoValue),
		op(1, 3, Pop, elem(1, 0), NoValue),
	))
}

func TestInterleavedClientsConsistent(t *testing.T) {
	// Values interleave the two producers; consumer respects merged order.
	mustPass(t, Queue, hist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		op(2, 0, Enqueue, elem(2, 0), 2),
		op(1, 1, Enqueue, elem(1, 1), 3),
		op(3, 0, Dequeue, elem(1, 0), 4),
		op(3, 1, Dequeue, elem(2, 0), 5),
		op(3, 2, Dequeue, elem(1, 1), 6),
	))
}

func TestStatsSummarize(t *testing.T) {
	h := hist(
		Completion{Client: 1, LocalSeq: 0, Kind: Enqueue, Elem: elem(1, 0), Value: 1, Born: 0, Done: 10},
		Completion{Client: 1, LocalSeq: 1, Kind: Dequeue, Elem: elem(1, 0), Value: 2, Born: 5, Done: 25},
		Completion{Client: 1, LocalSeq: 2, Kind: Dequeue, Bottom: true, Value: 3, Born: 6, Done: 6},
		Completion{Client: 1, LocalSeq: 3, Kind: Pop, Elem: elem(1, 9), Value: NoValue, Born: 7, Done: 7},
	)
	s := Summarize(h)
	if s.Total != 4 || s.Enqueues != 1 || s.Dequeues != 3 || s.Bottoms != 1 || s.Combined != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.MaxRounds != 20 {
		t.Fatalf("max rounds %d", s.MaxRounds)
	}
	if s.AvgRounds != (10+20+0+0)/4.0 {
		t.Fatalf("avg rounds %v", s.AvgRounds)
	}
}

func TestKindString(t *testing.T) {
	if Enqueue.String() != "enq" || Dequeue.String() != "deq" {
		t.Errorf("kind strings wrong")
	}
}
