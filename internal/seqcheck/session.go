package seqcheck

import "fmt"

// SessionOp records one delivered outcome of a durable client session, as
// observed at the client: the operation's request ID, the session's
// delivered-rank floor at the moment the operation was SUBMITTED, and the
// rank its outcome reported (NoValue when the server did not learn one —
// bare put-acks and locally combined stack operations carry no rank).
type SessionOp struct {
	ReqID uint64
	Floor int64
	Rank  int64
}

// CheckSession verifies one session's guarantees against the merged
// cluster history: every outcome delivered to the session names an
// operation the history actually recorded, the rank the client saw is the
// rank the history assigned, and the session's dependency order holds —
// an operation submitted after the session had observed rank F must
// serialize strictly after F (this is read-your-writes for enqueues and
// monotonic reads for dequeues, per Definition 1's per-client order).
// Operations pipelined asynchronously before any of them completed may
// legitimately interleave ranks among themselves; only the floor each
// operation carried at submission is binding.
func CheckSession(h *History, ops []SessionOp) error {
	ranks := make(map[uint64]int64, h.Len())
	for _, c := range h.Ops {
		ranks[c.ReqID] = c.Value
	}
	for _, op := range ops {
		histRank, ok := ranks[op.ReqID]
		if !ok {
			return fmt.Errorf("seqcheck: session op %d was delivered to the client but is absent from the merged history", op.ReqID)
		}
		if op.Rank != NoValue && histRank != NoValue && histRank != op.Rank {
			return fmt.Errorf("seqcheck: session op %d was delivered rank %d but the history recorded rank %d", op.ReqID, op.Rank, histRank)
		}
		if op.Floor > 0 && op.Rank > 0 && op.Rank <= op.Floor {
			return fmt.Errorf("seqcheck: session order violation: op %d serialized at rank %d, but was submitted after the session observed rank %d", op.ReqID, op.Rank, op.Floor)
		}
	}
	return nil
}
