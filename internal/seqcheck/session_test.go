package seqcheck

import (
	"strings"
	"testing"
)

// sessHist builds a history whose completions carry request IDs, the
// field CheckSession joins on.
func sessHist(ops ...Completion) *History {
	h := &History{}
	for i := range ops {
		ops[i].ReqID = uint64(100 + i)
		h.Record(ops[i])
	}
	return h
}

func TestCheckSessionEmpty(t *testing.T) {
	if err := CheckSession(hist(), nil); err != nil {
		t.Fatalf("empty session: %v", err)
	}
}

func TestCheckSessionHappyPath(t *testing.T) {
	h := sessHist(
		op(1, 0, Enqueue, elem(1, 0), 1),
		op(1, 1, Enqueue, elem(1, 1), 2),
		op(2, 0, Dequeue, elem(1, 0), 3),
	)
	ops := []SessionOp{
		{ReqID: 100, Floor: 0, Rank: 1},
		{ReqID: 101, Floor: 1, Rank: 2},
		{ReqID: 102, Floor: 2, Rank: 3},
	}
	if err := CheckSession(h, ops); err != nil {
		t.Fatalf("consistent session rejected: %v", err)
	}
}

func TestCheckSessionPipelinedInterleaveOK(t *testing.T) {
	// Two ops submitted back-to-back before either completed share the
	// same floor; their ranks may complete in either order.
	h := sessHist(
		op(1, 0, Enqueue, elem(1, 0), 5),
		op(1, 1, Enqueue, elem(1, 1), 4),
	)
	ops := []SessionOp{
		{ReqID: 100, Floor: 0, Rank: 5},
		{ReqID: 101, Floor: 0, Rank: 4},
	}
	if err := CheckSession(h, ops); err != nil {
		t.Fatalf("pipelined interleave rejected: %v", err)
	}
}

func TestCheckSessionMissingOpCaught(t *testing.T) {
	h := sessHist(op(1, 0, Enqueue, elem(1, 0), 1))
	err := CheckSession(h, []SessionOp{{ReqID: 999, Rank: 1}})
	if err == nil || !strings.Contains(err.Error(), "absent from the merged history") {
		t.Fatalf("missing op not caught: %v", err)
	}
}

func TestCheckSessionRankMismatchCaught(t *testing.T) {
	h := sessHist(op(1, 0, Enqueue, elem(1, 0), 7))
	err := CheckSession(h, []SessionOp{{ReqID: 100, Floor: 0, Rank: 3}})
	if err == nil || !strings.Contains(err.Error(), "recorded rank") {
		t.Fatalf("rank mismatch not caught: %v", err)
	}
}

func TestCheckSessionOrderViolationCaught(t *testing.T) {
	// An op submitted after the session observed rank 6 must serialize
	// strictly after 6.
	h := sessHist(
		op(1, 0, Enqueue, elem(1, 0), 6),
		op(1, 1, Enqueue, elem(1, 1), 4),
	)
	ops := []SessionOp{
		{ReqID: 100, Floor: 0, Rank: 6},
		{ReqID: 101, Floor: 6, Rank: 4},
	}
	err := CheckSession(h, ops)
	if err == nil || !strings.Contains(err.Error(), "session order violation") {
		t.Fatalf("order violation not caught: %v", err)
	}
}

func TestCheckSessionNoValueRankSkipsChecks(t *testing.T) {
	// Bare put-acks deliver NoValue: the rank equality and order checks
	// do not apply, but the op must still exist in the history.
	h := sessHist(op(1, 0, Enqueue, elem(1, 0), NoValue))
	if err := CheckSession(h, []SessionOp{{ReqID: 100, Floor: 3, Rank: NoValue}}); err != nil {
		t.Fatalf("NoValue session op rejected: %v", err)
	}
}
