package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"

	"skueue/internal/core"
	"skueue/internal/transport"
	"skueue/internal/wire"
)

// The operation journal gives client operations durable request
// identities, closing the gap the write-ahead snapshot leaves open: a
// snapshot is a consistent cut, and everything after the cut is
// regenerated on restart from replayed peer frames — except the client
// operations injected at this member, whose submitting sessions die with
// the process. The journal records exactly that missing input stream:
//
//   - an op record (request ID, node, kind, value), fsynced, is appended
//     the moment an operation is injected — before any CliDone for it can
//     be released to the client;
//   - a done record (request ID, outcome), fsynced, is appended before a
//     CliDone frame is released, so a confirmed outcome is durable before
//     the client can observe it;
//   - a fire record (node, wave sequence) marks a wave boundary. Markers
//     are written lazily — buffered in memory at each fire, flushed ahead
//     of the next op record of that node — so an idle member journals
//     nothing per wave. A marker is therefore durable whenever any op
//     record that follows it is (fsync flushes the whole file), which is
//     exactly the ordering the restart replay needs.
//
// On restart the records with a member-local sequence beyond the
// snapshot's ReqSeq are re-submitted under their ORIGINAL request IDs
// (core.Cluster.Resubmit), partitioned by the fire markers so each
// operation re-enters the exact wave it originally rode in: the re-fired
// waves then reproduce the crashed incarnation's batches bit for bit,
// the replayed serves line up, and the receiver-side request-ID dedupe
// (core, replay.go) collapses every re-sent effect onto the original —
// neither dropping nor double-applying an operation.
//
// Records are framed individually ([4-byte length][self-contained gob
// body]) so a crash mid-append leaves a recognizable torn tail: the
// loader keeps the valid prefix and discards the rest, which at worst
// forgets an operation whose client never received an answer.

// Journal record kinds.
const (
	recOp   = 1
	recDone = 2
	recFire = 3
)

// journalRecord is one journal entry; Kind selects which fields matter.
type journalRecord struct {
	Kind  uint8
	ReqID uint64           // op, done
	Node  transport.NodeID // op, fire
	IsDeq bool             // op
	Value []byte           // op (enqueue payload)
	Done  wire.CliDone     // done
	Wave  int64            // fire
}

const journalFile = "ops.journal"

// opJournal is the append side. All appends are serialized by mu; the
// submit and resolve paths run on the transport's runner goroutine, the
// compaction on the snapshot goroutine.
type opJournal struct {
	mu  sync.Mutex
	dir string
	f   *os.File
	// size is the current file length; offset() hands it out as the
	// compaction boundary of a snapshot capture (see truncatePrefix).
	size int64
	// Lazily flushed wave boundaries: lastFire is the newest committed
	// fire per node (in memory only), lastMark the newest marker value
	// actually written for the node.
	lastFire map[transport.NodeID]int64
	lastMark map[transport.NodeID]int64
}

// openJournal opens (or, with fresh set, truncates) the journal for
// appending.
func openJournal(dir string, fresh bool) (*opJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if fresh {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), flags, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &opJournal{
		dir:      dir,
		f:        f,
		size:     st.Size(),
		lastFire: make(map[transport.NodeID]int64),
		lastMark: make(map[transport.NodeID]int64),
	}, nil
}

func (j *opJournal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// encodeRecord frames one record as [length][gob body]. Each record is a
// self-contained gob stream: appending across process restarts must not
// depend on a shared encoder's type-descriptor state.
func encodeRecord(rec *journalRecord) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return nil, err
	}
	buf := make([]byte, 4+body.Len())
	binary.BigEndian.PutUint32(buf, uint32(body.Len()))
	copy(buf[4:], body.Bytes())
	return buf, nil
}

// noteFire records a committed wave boundary in memory; appendOp flushes
// it ahead of the next operation of that node.
func (j *opJournal) noteFire(node transport.NodeID, wave int64) {
	j.mu.Lock()
	if wave > j.lastFire[node] {
		j.lastFire[node] = wave
	}
	j.mu.Unlock()
}

// appendOp journals one accepted client operation and fsyncs. It must be
// called after injection and before any CliDone for the operation is
// released.
func (j *opJournal) appendOp(node transport.NodeID, reqID uint64, isDeq bool, value []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	var frames []byte
	if lf := j.lastFire[node]; lf != j.lastMark[node] {
		b, err := encodeRecord(&journalRecord{Kind: recFire, Node: node, Wave: lf})
		if err != nil {
			return err
		}
		frames = append(frames, b...)
		j.lastMark[node] = lf
	}
	b, err := encodeRecord(&journalRecord{Kind: recOp, ReqID: reqID, Node: node, IsDeq: isDeq, Value: value})
	if err != nil {
		return err
	}
	frames = append(frames, b...)
	if _, err := j.f.Write(frames); err != nil {
		return err
	}
	j.size += int64(len(frames))
	return j.f.Sync()
}

// appendDone journals one client-visible outcome and fsyncs. It must be
// called before the CliDone frame is handed to the session writer.
func (j *opJournal) appendDone(reqID uint64, done wire.CliDone) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	b, err := encodeRecord(&journalRecord{Kind: recDone, ReqID: reqID, Done: done})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	j.size += int64(len(b))
	return j.f.Sync()
}

// offset returns the compaction boundary for a snapshot capture: the
// journal length at this instant. All appends run on the transport's
// runner goroutine, so reading it inside the capture's DoSync makes it a
// precise cut — every record before it is covered by the snapshot (op
// and done records carry sequences at or below the captured ReqSeq, and
// fire markers precede some covered op record, putting their wave at or
// below the captured per-node WaveSeq).
func (j *opJournal) offset() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// truncatePrefix drops every record before the given capture boundary by
// copying the suffix — a raw byte copy, no decoding — into a fresh file.
// The cost is proportional to the replay window (records since the
// snapshot's cut), not to history, and the appends it briefly blocks are
// bounded the same way. Crash-safe: temp file, fsync, rename, directory
// fsync — a crash mid-truncation leaves the previous journal intact,
// which the loader's covered-record filters tolerate.
func (j *opJournal) truncatePrefix(offset int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	if offset <= 0 {
		return nil
	}
	if offset > j.size {
		offset = j.size
	}
	path := filepath.Join(j.dir, journalFile)
	src, err := os.Open(path)
	if err != nil {
		return err
	}
	defer src.Close()
	if _, err := src.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(j.dir, journalFile+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	n, err := io.Copy(tmp, src)
	if err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Past the rename the old handle points at an unlinked inode: the
	// swap (or, failing that, closing the journal so appends error
	// loudly) must happen regardless of any later error — silently
	// appending to the orphaned file would defeat the journaled-before-
	// release contract without anyone noticing.
	syncErr := syncDir(j.dir)
	f, openErr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	j.f.Close()
	j.f = f // nil on open failure: subsequent appends fail explicitly
	j.size = n
	if syncErr != nil {
		return syncErr
	}
	return openErr
}

// readJournal decodes the valid prefix of a journal file. A torn or
// corrupt tail (crash mid-append) ends the prefix silently; a missing
// file is an empty journal.
func readJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []journalRecord
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil // EOF or torn length prefix
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > wire.MaxFrame {
			return out, nil // corrupt tail
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			return out, nil // torn body
		}
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return out, nil // corrupt tail
		}
		out = append(out, rec)
	}
}

// replayPlan partitions the journal records a snapshot does not cover
// into the re-submission schedule of a restart: operations grouped by
// the wave boundary they followed, per node, in journal (= original
// injection) order, plus the journaled outcomes for divergence auditing.
type replayPlan struct {
	// immediate ops are re-submitted before the transport starts: they
	// were buffered at the crash, not yet part of any post-snapshot wave.
	immediate []journalRecord
	// held groups are re-submitted when their node re-fires the wave
	// they followed, so they re-enter the exact wave they originally
	// rode in. Groups are consumed strictly in order per node.
	held map[transport.NodeID][]heldGroup
	// outcomes maps request IDs to the CliDone the crashed incarnation
	// released, for divergence auditing on re-completion.
	outcomes map[uint64]wire.CliDone
}

// heldGroup is a run of operations awaiting their wave boundary.
type heldGroup struct {
	afterWave int64
	ops       []journalRecord
}

// buildReplayPlan scans records in file order against the snapshot's
// coverage: ops with sequence <= coveredSeq live inside the snapshot's
// node images and are skipped; markers at or below the snapshotted wave
// of their node reduce to "before the first post-restore fire".
func buildReplayPlan(recs []journalRecord, coveredSeq uint64, waves map[transport.NodeID]int64) *replayPlan {
	plan := &replayPlan{
		held:     make(map[transport.NodeID][]heldGroup),
		outcomes: make(map[uint64]wire.CliDone),
	}
	lastMarker := make(map[transport.NodeID]int64)
	for i := range recs {
		rec := recs[i]
		switch rec.Kind {
		case recFire:
			if rec.Wave <= waves[rec.Node] {
				rec.Wave = 0 // covered by the snapshot: not a boundary
			}
			lastMarker[rec.Node] = rec.Wave
		case recOp:
			if core.ReqIDSeq(rec.ReqID) <= coveredSeq {
				continue
			}
			after := lastMarker[rec.Node]
			if after == 0 {
				plan.immediate = append(plan.immediate, rec)
				continue
			}
			groups := plan.held[rec.Node]
			if len(groups) > 0 && groups[len(groups)-1].afterWave == after {
				groups[len(groups)-1].ops = append(groups[len(groups)-1].ops, rec)
			} else {
				groups = append(groups, heldGroup{afterWave: after, ops: []journalRecord{rec}})
			}
			plan.held[rec.Node] = groups
		case recDone:
			if core.ReqIDSeq(rec.ReqID) <= coveredSeq {
				continue
			}
			plan.outcomes[rec.ReqID] = rec.Done
		}
	}
	return plan
}

// pending reports how many operations the plan still holds back.
func (p *replayPlan) pending() int {
	n := 0
	for _, groups := range p.held {
		for _, g := range groups {
			n += len(g.ops)
		}
	}
	return n
}

// take pops the held groups of node that a fire of the given wave
// releases: the head group (and any earlier-numbered successors) whose
// boundary the fired wave has reached. Strictly in order — a later group
// never jumps an earlier one, preserving original injection order.
func (p *replayPlan) take(node transport.NodeID, wave int64) []journalRecord {
	groups := p.held[node]
	var out []journalRecord
	for len(groups) > 0 && groups[0].afterWave <= wave {
		out = append(out, groups[0].ops...)
		groups = groups[1:]
	}
	if len(out) > 0 {
		if len(groups) == 0 {
			delete(p.held, node)
		} else {
			p.held[node] = groups
		}
	}
	return out
}

// syncDir fsyncs a directory, making a rename inside it crash-durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
