package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"skueue/internal/core"
	"skueue/internal/transport"
	"skueue/internal/wire"
)

// The operation journal gives client operations durable request
// identities, closing the gap the write-ahead snapshot leaves open: a
// snapshot is a consistent cut, and everything after the cut is
// regenerated on restart from replayed peer frames — except the client
// operations injected at this member, whose submitting sessions die with
// the process. The journal records exactly that missing input stream:
//
//   - an op record (request ID, node, kind, value) is appended the moment
//     an operation is injected — durable before any CliDone for it can be
//     released to the client;
//   - a done record (request ID, outcome) is appended when an operation
//     completes — durable before its CliDone frame is released, so a
//     confirmed outcome always survives a crash;
//   - a fire record (node, wave sequence) marks a wave boundary. Markers
//     are written lazily — buffered in memory at each fire, staged ahead
//     of the next op record of that node — so an idle member journals
//     nothing per wave. A marker therefore precedes that op record in the
//     file and is durable whenever the op record is, which is exactly the
//     ordering the restart replay needs.
//
// # Group commit
//
// Appends are asynchronous: appendOp and appendDone only STAGE the
// encoded record in an in-memory buffer — never touching the disk — and
// park a release action on a pending-release queue. A dedicated journal
// writer goroutine drains the buffer, makes each drained batch durable
// with ONE write + fsync, and only then runs the batch's parked releases
// (the actions that hand CliDone frames to their sessions). The
// journaled-before-release invariant is therefore preserved exactly —
// nothing client-visible escapes before the fsync covering it returns —
// but N concurrent operations share one disk sync instead of paying one
// (or two) each, and the submission path, which runs on the transport's
// runner goroutine, never blocks on the disk at all.
//
// Batch formation: with batchDelay zero (the default) the writer flushes
// whenever it is idle and records are staged — batches then form
// naturally while the previous fsync is in flight, adding no latency when
// the journal is keeping up. A positive batchDelay deliberately holds a
// batch open that long to accumulate more records (throughput for
// latency); the batchOps cap flushes early once that many operations are
// staged. batchOps == 1 disables the pipeline entirely and restores the
// synchronous per-record fsync on the caller, which is the baseline
// BenchmarkDurableThroughput contrasts against.
//
// Failure is sticky: once a batch write or fsync fails, the file may end
// in a torn record, and appending past the tear would hide every later
// record from the restart loader's valid-prefix scan — silently
// discarding confirmed operations. Instead the journal fails all parked
// and future releases with the error (the server answers those clients
// "indeterminate") and never writes again.
//
// On restart the records with a member-local sequence beyond the
// snapshot's ReqSeq are re-submitted under their ORIGINAL request IDs
// (core.Cluster.Resubmit), partitioned by the fire markers so each
// operation re-enters the exact wave it originally rode in: the re-fired
// waves then reproduce the crashed incarnation's batches bit for bit,
// the replayed serves line up, and the receiver-side request-ID dedupe
// (core, replay.go) collapses every re-sent effect onto the original —
// neither dropping nor double-applying an operation.
//
// Records are framed individually ([4-byte length][self-contained gob
// body]) so a crash mid-append leaves a recognizable torn tail, and the
// same property covers a torn BATCH: a batch is a concatenation of
// frames written front to back, so a crash mid-batch leaves a valid
// record prefix followed by garbage. The loader keeps the prefix and
// discards the rest — and because a batch's releases run only after its
// fsync returned, every record the tear swallows belongs to an operation
// whose client never received an answer.

// # The sequence lease
//
// Asynchronous appends open one more hole the synchronous code never
// had: an operation's request ID is allocated at injection, and its
// effects can ride a wave to peer members while the op record is still
// staged. If the member then crashes before the batch syncs, the record
// is lost, the restarted member's request counter — advanced only past
// DURABLE records — re-issues the same ID to a fresh client operation,
// and the peers' request-ID dedupe rings (which deliberately match
// across boot epochs, replay depends on it) swallow the new operation as
// a replay of the dead one. The journal therefore maintains a durable
// sequence lease: a ceiling, persisted ahead of use in spans of
// leaseSpan sequences, below which IDs may be issued freely. The server
// refuses an operation whose sequence is not covered by the DURABLE
// ceiling (practically unreachable: extensions are staged half a span
// early), and a restart advances the counter past the ceiling — re-issue
// is impossible by construction, with one tiny journal record per
// leaseSpan operations instead of any per-op durability. Compaction
// cannot lose the ceiling either: every snapshot captures the pending
// ceiling (diskSnapshot.SeqCeiling), and any lease record the compaction
// drops is at or below the ceiling of the snapshot that justified it.

// Journal record kinds.
const (
	recOp      = 1
	recDone    = 2
	recFire    = 3
	recLease   = 4
	recSession = 5
)

// journalRecord is one journal entry; Kind selects which fields matter.
type journalRecord struct {
	Kind    uint8
	ReqID   uint64           // op, done
	Node    transport.NodeID // op, fire
	IsDeq   bool             // op
	Pri     int32            // op (enqueue priority level, heap mode)
	Value   []byte           // op (enqueue payload)
	Done    wire.CliDone     // done
	Wave    int64            // fire
	Ceiling uint64           // lease: request sequences below it may be issued
	// Sess names the durable client session a record belongs to: the
	// session's own record (recSession, staged ahead of its first op) and
	// every op submitted through it. Empty for ephemeral operations; done
	// records need no Sess — restore maps their ReqID back through the op
	// records and the snapshot's session images.
	Sess string // session, op
	// CliSeq is the operation's per-session sequence (op records of a
	// session): the key the member dedupes re-presented operations by and
	// retains undelivered outcomes under.
	CliSeq uint64 // op
}

// leaseSpan is how many request sequences one lease record covers; an
// extension is staged once issuance crosses the half-way mark, so the
// durable ceiling is only ever reached if the journal cannot sync half a
// span's worth of operations in time (or has failed).
const leaseSpan = 1 << 16

const journalFile = "ops.journal"

// defaultBatchOps is the group-commit op cap when the config leaves it 0.
const defaultBatchOps = 64

// journalRelease is a parked release action: called with nil once the
// fsync covering its record returned, or with the journal failure if the
// record never became durable. Runs on the journal writer goroutine (or
// inline on the caller with batchOps == 1).
type journalRelease func(err error)

// opJournal is the append side: staging on the submission path, one
// writer goroutine doing the batched write+fsync, compaction on the
// snapshot goroutine.
type opJournal struct {
	dir      string
	batchOps int           // flush once this many ops are staged; 1 = synchronous
	delay    time.Duration // hold a batch open this long to accumulate (0: flush when idle)

	// mu guards the staging side: the batch buffer, the parked releases,
	// the fire-marker bookkeeping, the lifecycle flags and the logical
	// length. Staging never performs I/O, so appendOp/appendDone return
	// immediately regardless of what the disk is doing.
	//
	//skueue:lock 44
	mu sync.Mutex
	//skueue:guarded-by mu
	buf []byte
	//skueue:guarded-by mu
	releases []journalRelease
	//skueue:guarded-by mu
	stagedOps int
	//skueue:guarded-by mu
	firstStage time.Time // when the open batch received its first record
	//skueue:guarded-by mu
	urgent bool // a barrier or shutdown wants the batch flushed now
	//skueue:guarded-by mu
	closed bool
	//skueue:guarded-by mu
	failed error // sticky: set on the first write/fsync error
	// logical is durable plus the staged bytes: the file length as if
	// everything staged were already written. offset() hands it out as
	// the compaction boundary of a snapshot capture — staging happens on
	// the runner goroutine, so reading it inside the capture's DoSync
	// still yields a precise cut (see offset).
	//
	//skueue:guarded-by mu
	logical int64
	// Lazily flushed wave boundaries: lastFire is the newest committed
	// fire per node (in memory only), lastMark the newest marker value
	// actually staged for the node.
	//
	//skueue:guarded-by mu
	lastFire map[transport.NodeID]int64
	//skueue:guarded-by mu
	lastMark map[transport.NodeID]int64
	// The sequence lease (see the package comment): request sequences
	// below leaseDurable are safe to issue — a ceiling at or above them
	// is on stable storage — and leasePending is the highest ceiling
	// staged so far (what the next snapshot captures).
	//
	//skueue:guarded-by mu
	leaseDurable uint64
	//skueue:guarded-by mu
	leasePending uint64

	// wmu guards the file side: the handle, the durable length, each
	// batch write+fsync, and the compaction handle swap. Never acquired
	// while holding mu (compaction takes mu INSIDE wmu for the length
	// adjustment, so the reverse order would deadlock) — hence the lower
	// rank; "io" because holding it across the batch write+fsync is the
	// whole point.
	//
	//skueue:lock 40 io
	wmu sync.Mutex
	//skueue:guarded-by wmu
	f *os.File
	//skueue:guarded-by wmu
	durable int64

	wake chan struct{}
	wg   sync.WaitGroup

	// testCompactPause, when set, runs between truncatePrefix's bulk
	// suffix copy and its handle-swap critical section; tests park it to
	// prove appends proceed while a compaction is in flight.
	testCompactPause func()
}

// openJournal opens (or, with fresh set, truncates) the journal for
// appending and starts the group-commit writer (unless batchOps is 1,
// which selects the synchronous per-record mode).
func openJournal(dir string, fresh bool, batchOps int, delay time.Duration) (*opJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if fresh {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), flags, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if batchOps <= 0 {
		batchOps = defaultBatchOps
	}
	j := &opJournal{
		dir:      dir,
		batchOps: batchOps,
		delay:    delay,
		f:        f,
		durable:  st.Size(),
		logical:  st.Size(),
		lastFire: make(map[transport.NodeID]int64),
		lastMark: make(map[transport.NodeID]int64),
		wake:     make(chan struct{}, 1),
	}
	if !j.syncMode() {
		j.wg.Add(1)
		go j.writerLoop()
	}
	return j, nil
}

// syncMode reports whether appends write+fsync inline on the caller
// instead of going through the writer goroutine.
func (j *opJournal) syncMode() bool { return j.batchOps == 1 }

// close flushes whatever is still staged, stops the writer and closes the
// file. Parked releases run (or fail) before close returns.
func (j *opJournal) close() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	j.urgent = true
	j.mu.Unlock()
	if !j.syncMode() {
		j.wakeWriter()
		j.wg.Wait()
	}
	j.wmu.Lock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.wmu.Unlock()
}

// discard simulates a fail-stop crash for Server.Kill: staged records are
// dropped instead of flushed and every parked release fails, so whatever
// group commit had not yet synced is lost exactly as a real process death
// would lose it. The restart tests rely on this to exercise the
// torn-batch window with batching enabled.
func (j *opJournal) discard() {
	j.mu.Lock()
	if j.failed == nil {
		j.failed = errors.New("server: journal discarded (simulated crash)")
	}
	j.logical -= int64(len(j.buf))
	j.buf = nil
	j.mu.Unlock()
	j.close()
}

// wakeWriter nudges the writer without ever blocking the caller.
func (j *opJournal) wakeWriter() {
	select {
	case j.wake <- struct{}{}:
	default:
	}
}

// encodeRecord frames one record as [length][gob body]. Each record is a
// self-contained gob stream: appending across process restarts must not
// depend on a shared encoder's type-descriptor state.
func encodeRecord(rec *journalRecord) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return nil, err
	}
	buf := make([]byte, 4+body.Len())
	binary.BigEndian.PutUint32(buf, uint32(body.Len()))
	copy(buf[4:], body.Bytes())
	return buf, nil
}

// noteFire records a committed wave boundary in memory; appendOp stages
// it ahead of the next operation of that node.
func (j *opJournal) noteFire(node transport.NodeID, wave int64) {
	j.mu.Lock()
	if wave > j.lastFire[node] {
		j.lastFire[node] = wave
	}
	j.mu.Unlock()
}

// appendOp stages one accepted client operation — any pending fire marker
// of its node first, preserving the boundary-before-op file order — and
// parks release on the batch. It must be called after injection and
// before any CliDone for the operation can be staged. For an operation
// submitted through a durable session, sess and cliSeq carry the
// session's identity and the operation's per-session sequence; both are
// zero for ephemeral operations.
func (j *opJournal) appendOp(node transport.NodeID, reqID uint64, isDeq bool, pri int32, value []byte, sess string, cliSeq uint64, release journalRelease) {
	j.mu.Lock()
	if err := j.unusableLocked(); err != nil {
		j.mu.Unlock()
		if release != nil {
			release(err)
		}
		return
	}
	var frames []byte
	if lf := j.lastFire[node]; lf != j.lastMark[node] {
		b, err := encodeRecord(&journalRecord{Kind: recFire, Node: node, Wave: lf})
		if err != nil {
			j.mu.Unlock()
			if release != nil {
				release(err)
			}
			return
		}
		frames = append(frames, b...)
		j.lastMark[node] = lf
	}
	b, err := encodeRecord(&journalRecord{Kind: recOp, ReqID: reqID, Node: node, IsDeq: isDeq, Pri: pri, Value: value, Sess: sess, CliSeq: cliSeq})
	if err != nil {
		j.mu.Unlock()
		if release != nil {
			release(err)
		}
		return
	}
	frames = append(frames, b...)
	j.stageLocked(frames, release)
}

// appendSession stages a durable session's record. The server stages it
// on the runner right before the session's first appendOp, so the record
// precedes every operation of the session in the file — a restart that
// finds any of the session's ops finds the session itself first.
func (j *opJournal) appendSession(sess string) {
	j.mu.Lock()
	if j.unusableLocked() != nil {
		j.mu.Unlock()
		return
	}
	b, err := encodeRecord(&journalRecord{Kind: recSession, Sess: sess})
	if err != nil {
		j.mu.Unlock()
		return
	}
	j.stageLocked(b, nil)
}

// appendDone stages one client-visible outcome and parks release on the
// batch; release must be the only path that hands the CliDone frame to
// the session, so nothing escapes before the covering fsync.
func (j *opJournal) appendDone(reqID uint64, done wire.CliDone, release journalRelease) {
	j.mu.Lock()
	if err := j.unusableLocked(); err != nil {
		j.mu.Unlock()
		if release != nil {
			release(err)
		}
		return
	}
	b, err := encodeRecord(&journalRecord{Kind: recDone, ReqID: reqID, Done: done})
	if err != nil {
		j.mu.Unlock()
		if release != nil {
			release(err)
		}
		return
	}
	j.stageLocked(b, release)
}

// unusableLocked returns the error appends must fail with, if any.
//
//skueue:locked mu
func (j *opJournal) unusableLocked() error {
	if j.failed != nil {
		return j.failed
	}
	if j.closed {
		return errors.New("server: journal closed")
	}
	return nil
}

// stageLocked adds frames and a release to the open batch (mu held by the
// caller; unlocks it) and kicks the flush machinery.
//
//skueue:locked mu
func (j *opJournal) stageLocked(frames []byte, release journalRelease) {
	if len(j.buf) == 0 && len(j.releases) == 0 {
		j.firstStage = time.Now()
	}
	j.buf = append(j.buf, frames...)
	j.logical += int64(len(frames))
	j.releases = append(j.releases, release)
	j.stagedOps++
	sync := j.syncMode()
	j.mu.Unlock()
	if sync {
		// Group commit disabled (batchOps == 1): the fsync deliberately
		// runs inline on the caller — the runner pays one disk sync per
		// operation, which is the documented cost of that mode.
		//
		//skueue:ignore runnerblock -- sync mode fsyncs inline by design; group commit (the default) keeps the runner clean
		j.flush()
	} else {
		j.wakeWriter()
	}
}

// coverSeq reports whether request sequence seq may be issued — a lease
// ceiling above it is durable — and stages a lease extension once
// issuance crosses the half-span mark, so the answer goes false only if
// the journal failed or could not sync an extension within half a span
// of operations. Runner goroutine (with the rest of the staging side).
func (j *opJournal) coverSeq(seq uint64) bool {
	j.mu.Lock()
	durable, pending := j.leaseDurable, j.leasePending
	usable := j.failed == nil && !j.closed
	j.mu.Unlock()
	if usable && seq+leaseSpan/2 >= pending {
		j.stageLease(seq + leaseSpan)
	}
	return seq < durable
}

// stageLease stages a lease record raising the ceiling; its release
// publishes the new durable ceiling once the covering fsync returns.
// Ceilings never regress: a stale call is a no-op.
func (j *opJournal) stageLease(ceiling uint64) {
	j.mu.Lock()
	if j.failed != nil || j.closed || ceiling <= j.leasePending {
		j.mu.Unlock()
		return
	}
	b, err := encodeRecord(&journalRecord{Kind: recLease, Ceiling: ceiling})
	if err != nil {
		j.mu.Unlock()
		return
	}
	j.leasePending = ceiling
	j.stageLocked(b, func(err error) {
		if err != nil {
			return
		}
		j.mu.Lock()
		if ceiling > j.leaseDurable {
			j.leaseDurable = ceiling
		}
		j.mu.Unlock()
	})
}

// initLease establishes a durable ceiling a full span above base before
// any client can submit: stage, then barrier. Boot-time only — the one
// place the lease is allowed to wait for the disk.
func (j *opJournal) initLease(base uint64) error {
	j.stageLease(base + leaseSpan)
	return j.barrier()
}

// leaseCeiling returns the highest ceiling staged so far; snapshots
// capture it (diskSnapshot.SeqCeiling) so compaction dropping old lease
// records can never lose the lease — a restored member advances its
// counter past the snapshot's ceiling too.
func (j *opJournal) leaseCeiling() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.leasePending
}

// barrier blocks until every record staged before the call is durable,
// returning nil, or the journal has failed, returning the failure.
// Snapshot compaction uses it to turn a logical cut boundary into a
// durable one.
func (j *opJournal) barrier() error {
	j.mu.Lock()
	if err := j.unusableLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	if j.syncMode() {
		// Inline mode: everything staged was already synced.
		j.mu.Unlock()
		return nil
	}
	// A zero-byte sentinel: releases run in staging order after their
	// batch's fsync, so when this one fires every earlier record is
	// durable — including a batch the writer had already stolen when we
	// arrived, because the sentinel lands in the NEXT batch.
	errc := make(chan error, 1)
	j.releases = append(j.releases, func(err error) { errc <- err })
	j.urgent = true
	j.mu.Unlock()
	j.wakeWriter()
	return <-errc
}

// sendableNow reports whether every record staged so far is already
// durable — the fast path of the WAL-before-send gate (Server.gateSend):
// a peer frame enqueued while this holds cannot be carrying any
// staged-but-unsynced operation, so it may leave the member immediately.
// The releases check matters as much as the buffer check: a batch the
// writer has stolen but not finished syncing keeps its releases parked,
// and a frame overtaking those would reorder the outbound stream.
func (j *opJournal) sendableNow() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed == nil && len(j.buf) == 0 && len(j.releases) == 0
}

// notifyDurable parks fn on the release queue: it runs (on the journal
// writer goroutine, like every release) once everything staged before
// the call is durable, with nil, or with the journal failure. Unlike the
// appends it stages no bytes, so a pile of parked notifications still
// costs one fsync. The WAL-before-send gate uses it to hold outbound
// peer frames until the records they may carry are on stable storage.
func (j *opJournal) notifyDurable(fn journalRelease) {
	j.mu.Lock()
	if err := j.unusableLocked(); err != nil {
		j.mu.Unlock()
		fn(err)
		return
	}
	if len(j.buf) == 0 && len(j.releases) == 0 {
		j.firstStage = time.Now()
	}
	j.releases = append(j.releases, fn)
	j.mu.Unlock()
	j.wakeWriter()
}

// writerLoop is the group-commit engine: it drains the staged batch,
// writes and fsyncs it as one unit, then runs the parked releases. While
// an fsync is in flight new records pile up into the next batch — that is
// where the coalescing comes from.
func (j *opJournal) writerLoop() {
	defer j.wg.Done()
	for {
		j.mu.Lock()
		staged := len(j.buf)
		pending := len(j.releases) > 0 || staged > 0
		ops, urgent, closed, failed := j.stagedOps, j.urgent, j.closed, j.failed != nil
		first := j.firstStage
		j.mu.Unlock()
		if !pending {
			if closed {
				return
			}
			<-j.wake
			continue
		}
		// Accumulation window: hold the batch open up to delay, unless
		// the op cap is reached, a barrier wants it out, or we are
		// draining for shutdown/failure. A batch holding only parked
		// notifications (no bytes) has nothing to coalesce and flushes
		// immediately — waiting would only stall the send gate.
		if j.delay > 0 && staged > 0 && ops < j.batchOps && !urgent && !closed && !failed {
			if wait := time.Until(first.Add(j.delay)); wait > 0 {
				select {
				case <-j.wake:
				case <-time.After(wait):
				}
				continue
			}
		}
		j.flush()
	}
}

// flush steals everything staged, makes it durable with one write+fsync,
// and then runs the parked releases — with nil on success, with the
// journal failure otherwise (sticky: see the package comment on why the
// journal never writes past a failed batch).
func (j *opJournal) flush() {
	j.mu.Lock()
	buf, rels := j.buf, j.releases
	j.buf, j.releases = nil, nil
	j.stagedOps = 0
	j.urgent = false
	err := j.failed
	j.mu.Unlock()
	if len(buf) == 0 && len(rels) == 0 {
		return
	}
	if err == nil && len(buf) > 0 {
		if werr := j.writeBatch(buf); werr != nil {
			j.mu.Lock()
			if j.failed == nil {
				j.failed = werr
			}
			err = j.failed
			j.mu.Unlock()
		}
	}
	for _, rel := range rels {
		if rel != nil {
			rel(err)
		}
	}
}

// writeBatch appends one batch to the file and fsyncs it.
func (j *opJournal) writeBatch(buf []byte) error {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.durable += int64(len(buf))
	return j.f.Sync()
}

// offset returns the compaction boundary for a snapshot capture: the
// LOGICAL journal length at this instant — counting staged records the
// writer has not synced yet. All staging runs on the transport's runner
// goroutine, so reading it inside the capture's DoSync makes it a precise
// cut: every record before it belongs to an operation the snapshot's core
// image covers (op and done records carry sequences at or below the
// captured ReqSeq, and fire markers precede some covered op record,
// putting their wave at or below the captured per-node WaveSeq). Staged
// records before the cut need no durability of their own — once the
// snapshot is durable they are covered by it, and truncatePrefix runs a
// barrier before it copies, so the boundary is durable by the time the
// file is rewritten.
func (j *opJournal) offset() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.logical
}

// truncatePrefix drops every record before the given capture boundary by
// copying the suffix — a raw byte copy, no decoding — into a fresh file.
// The cost is proportional to the replay window (records since the
// snapshot's cut), not to history, and the copy runs OUTSIDE both locks:
// staging never blocks at all, and the writer's batch flushes block only
// for the short catch-up-and-swap critical section at the end, never for
// the bulk copy. Crash-safe: temp file, fsync, rename, directory fsync —
// a crash mid-truncation leaves the previous journal intact, which the
// loader's covered-record filters tolerate.
func (j *opJournal) truncatePrefix(offset int64) error {
	if offset <= 0 {
		return nil
	}
	// The boundary is a logical length and may count staged records: make
	// it durable before copying from the file.
	if err := j.barrier(); err != nil {
		return err
	}
	j.wmu.Lock()
	if j.f == nil {
		j.wmu.Unlock()
		return errors.New("server: journal closed")
	}
	copied := j.durable
	j.wmu.Unlock()
	if offset > copied {
		offset = copied // unreachable post-barrier; clamp defensively
	}
	path := filepath.Join(j.dir, journalFile)
	src, err := os.Open(path)
	if err != nil {
		return err
	}
	defer src.Close()
	if _, err := src.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(j.dir, journalFile+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	// Bulk copy, lock-free: the file is append-only, so the bytes in
	// [offset, copied) are stable even while the writer appends past
	// them.
	if _, err := io.CopyN(tmp, src, copied-offset); err != nil && !errors.Is(err, io.EOF) {
		return fail(err)
	}
	if j.testCompactPause != nil {
		j.testCompactPause()
	}
	// Short critical section: catch up whatever was appended during the
	// bulk copy (bounded by the copy's duration, not by history), then
	// swap the handle.
	j.wmu.Lock()
	defer j.wmu.Unlock()
	if j.f == nil {
		return fail(errors.New("server: journal closed"))
	}
	if j.durable > copied {
		if _, err := io.CopyN(tmp, src, j.durable-copied); err != nil && !errors.Is(err, io.EOF) {
			return fail(err)
		}
	}
	newSize := j.durable - offset
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Past the rename the old handle points at an unlinked inode: the
	// swap (or, failing that, closing the journal so appends error
	// loudly) must happen regardless of any later error — silently
	// appending to the orphaned file would defeat the journaled-before-
	// release contract without anyone noticing.
	syncErr := syncDir(j.dir)
	f, openErr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	j.f.Close()
	j.f = f // nil on open failure: subsequent flushes fail explicitly
	j.durable = newSize
	j.mu.Lock()
	j.logical -= offset
	j.mu.Unlock()
	if syncErr != nil {
		return syncErr
	}
	return openErr
}

// readJournal decodes the valid prefix of a journal file. A torn or
// corrupt tail — a crash mid-append, or mid-BATCH: group commit writes
// several frames back to back, and a tear anywhere leaves a valid frame
// prefix — ends the prefix silently; a missing file is an empty journal.
// Every record a tear swallows belonged to a batch whose fsync never
// returned, so none of its releases ran and no client saw an answer.
func readJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []journalRecord
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil // EOF or torn length prefix
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > wire.MaxFrame {
			return out, nil // corrupt tail
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			return out, nil // torn body
		}
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return out, nil // corrupt tail
		}
		out = append(out, rec)
	}
}

// replayPlan partitions the journal records a snapshot does not cover
// into the re-submission schedule of a restart: operations grouped by
// the wave boundary they followed, per node, in journal (= original
// injection) order, plus the journaled outcomes for divergence auditing.
type replayPlan struct {
	// immediate ops are re-submitted before the transport starts: they
	// were buffered at the crash, not yet part of any post-snapshot wave.
	immediate []journalRecord
	// held groups are re-submitted when their node re-fires the wave
	// they followed, so they re-enter the exact wave they originally
	// rode in. Groups are consumed strictly in order per node.
	held map[transport.NodeID][]heldGroup
	// outcomes maps request IDs to the CliDone the crashed incarnation
	// released, for divergence auditing on re-completion.
	outcomes map[uint64]wire.CliDone
}

// heldGroup is a run of operations awaiting their wave boundary.
type heldGroup struct {
	afterWave int64
	ops       []journalRecord
}

// buildReplayPlan scans records in file order against the snapshot's
// coverage: ops with sequence <= coveredSeq live inside the snapshot's
// node images and are skipped; markers at or below the snapshotted wave
// of their node reduce to "before the first post-restore fire".
func buildReplayPlan(recs []journalRecord, coveredSeq uint64, waves map[transport.NodeID]int64) *replayPlan {
	plan := &replayPlan{
		held:     make(map[transport.NodeID][]heldGroup),
		outcomes: make(map[uint64]wire.CliDone),
	}
	lastMarker := make(map[transport.NodeID]int64)
	for i := range recs {
		rec := recs[i]
		switch rec.Kind {
		case recFire:
			if rec.Wave <= waves[rec.Node] {
				rec.Wave = 0 // covered by the snapshot: not a boundary
			}
			lastMarker[rec.Node] = rec.Wave
		case recOp:
			if core.ReqIDSeq(rec.ReqID) <= coveredSeq {
				continue
			}
			after := lastMarker[rec.Node]
			if after == 0 {
				plan.immediate = append(plan.immediate, rec)
				continue
			}
			groups := plan.held[rec.Node]
			if len(groups) > 0 && groups[len(groups)-1].afterWave == after {
				groups[len(groups)-1].ops = append(groups[len(groups)-1].ops, rec)
			} else {
				groups = append(groups, heldGroup{afterWave: after, ops: []journalRecord{rec}})
			}
			plan.held[rec.Node] = groups
		case recDone:
			if core.ReqIDSeq(rec.ReqID) <= coveredSeq {
				continue
			}
			plan.outcomes[rec.ReqID] = rec.Done
		}
	}
	return plan
}

// pending reports how many operations the plan still holds back.
func (p *replayPlan) pending() int {
	n := 0
	for _, groups := range p.held {
		for _, g := range groups {
			n += len(g.ops)
		}
	}
	return n
}

// take pops the held groups of node that a fire of the given wave
// releases: the head group (and any earlier-numbered successors) whose
// boundary the fired wave has reached. Strictly in order — a later group
// never jumps an earlier one, preserving original injection order.
func (p *replayPlan) take(node transport.NodeID, wave int64) []journalRecord {
	groups := p.held[node]
	var out []journalRecord
	for len(groups) > 0 && groups[0].afterWave <= wave {
		out = append(out, groups[0].ops...)
		groups = groups[1:]
	}
	if len(out) > 0 {
		if len(groups) == 0 {
			delete(p.held, node)
		} else {
			p.held[node] = groups
		}
	}
	return out
}

// journalHoldsOps reports whether recs contain any operation or outcome
// record — the only content whose loss the no-snapshot startup refusal
// guards against. Lease records alone are left behind by a crash inside
// the first boot window (initLease runs before the base snapshot) and
// are recovered through the ceiling scan instead.
func journalHoldsOps(recs []journalRecord) bool {
	for _, rec := range recs {
		if rec.Kind == recOp || rec.Kind == recDone {
			return true
		}
	}
	return false
}

// syncDir fsyncs a directory, making a rename inside it crash-durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
