package server

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"skueue/internal/transport"
	"skueue/internal/wire"
)

// reqID builds a member-1-tagged request ID with the given local sequence.
func reqID(seq uint64) uint64 { return 1<<40 | seq }

// TestJournalRoundTripAndMarkers pins the lazy wave-boundary discipline:
// a fire marker is not written on its own, but is flushed ahead of the
// next operation record of its node — so an idle member journals nothing
// per wave, yet every operation is preceded by the newest boundary it
// follows.
func TestJournalRoundTripAndMarkers(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, true)
	if err != nil {
		t.Fatal(err)
	}

	nodeA, nodeB := transport.NodeID(3), transport.NodeID(4)
	if err := j.appendOp(nodeA, reqID(1), false, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	j.noteFire(nodeA, 7) // boundary, deferred
	j.noteFire(nodeB, 9) // boundary of another node, also deferred
	if err := j.appendOp(nodeA, reqID(2), true, nil); err != nil {
		t.Fatal(err)
	}
	// A second op of the same node must NOT repeat the marker.
	if err := j.appendOp(nodeA, reqID(3), false, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := j.appendDone(reqID(1), wire.CliDone{ReqID: reqID(1)}); err != nil {
		t.Fatal(err)
	}
	j.close()

	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []uint8
	for _, r := range recs {
		kinds = append(kinds, r.Kind)
	}
	want := []uint8{recOp, recFire, recOp, recOp, recDone}
	if len(kinds) != len(want) {
		t.Fatalf("journal has %d records (%v), want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("record %d kind = %d, want %d (%v)", i, kinds[i], want[i], kinds)
		}
	}
	if recs[1].Node != nodeA || recs[1].Wave != 7 {
		t.Fatalf("marker = node %d wave %d, want node %d wave 7", recs[1].Node, recs[1].Wave, nodeA)
	}
	// nodeB's boundary was never followed by an op: no marker for it.
	for _, r := range recs {
		if r.Kind == recFire && r.Node == nodeB {
			t.Fatalf("idle node %d leaked a fire marker", nodeB)
		}
	}
}

// TestJournalTornTail verifies a crash mid-append costs only the torn
// record: the valid prefix loads, the garbage is ignored.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.appendOp(3, reqID(1), false, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	j.close()
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: plausible length prefix, half a body.
	if _, err := f.Write([]byte{0, 0, 0, 200, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ReqID != reqID(1) {
		t.Fatalf("torn journal loaded %d records, want the 1 valid prefix record", len(recs))
	}
}

// TestReplayPlanGrouping pins the re-submission schedule: snapshot-covered
// records are skipped, ops with no post-snapshot boundary are immediate,
// and held groups release strictly in order as their node's waves re-fire.
func TestReplayPlanGrouping(t *testing.T) {
	nodeA := transport.NodeID(3)
	recs := []journalRecord{
		{Kind: recOp, Node: nodeA, ReqID: reqID(5)},                     // covered by snapshot (seq <= 6)
		{Kind: recFire, Node: nodeA, Wave: 10},                          // covered boundary (wave <= 12)
		{Kind: recOp, Node: nodeA, ReqID: reqID(7), Value: []byte("i")}, // post-cut, before any live boundary
		{Kind: recFire, Node: nodeA, Wave: 13},
		{Kind: recOp, Node: nodeA, ReqID: reqID(8)},
		{Kind: recOp, Node: nodeA, ReqID: reqID(9)},
		{Kind: recFire, Node: nodeA, Wave: 14},
		{Kind: recOp, Node: nodeA, ReqID: reqID(10), IsDeq: true},
		{Kind: recDone, ReqID: reqID(7), Done: wire.CliDone{ReqID: reqID(7)}},
		{Kind: recDone, ReqID: reqID(5), Done: wire.CliDone{ReqID: reqID(5)}}, // covered
	}
	plan := buildReplayPlan(recs, 6, map[transport.NodeID]int64{nodeA: 12})

	if len(plan.immediate) != 1 || plan.immediate[0].ReqID != reqID(7) {
		t.Fatalf("immediate = %+v, want the single op seq 7", plan.immediate)
	}
	if got := plan.pending(); got != 3 {
		t.Fatalf("plan holds %d ops, want 3", got)
	}
	if _, ok := plan.outcomes[reqID(7)]; !ok {
		t.Fatal("post-cut done record missing from outcomes")
	}
	if _, ok := plan.outcomes[reqID(5)]; ok {
		t.Fatal("snapshot-covered done record leaked into outcomes")
	}

	// Wave 12 re-fires first: releases nothing (first group waits for 13).
	if out := plan.take(nodeA, 12); len(out) != 0 {
		t.Fatalf("wave 12 released %d ops, want 0", len(out))
	}
	// Wave 13: releases seqs 8 and 9, but NOT the group behind wave 14.
	out := plan.take(nodeA, 13)
	if len(out) != 2 || out[0].ReqID != reqID(8) || out[1].ReqID != reqID(9) {
		t.Fatalf("wave 13 released %+v, want seqs 8, 9", out)
	}
	out = plan.take(nodeA, 14)
	if len(out) != 1 || out[0].ReqID != reqID(10) || !out[0].IsDeq {
		t.Fatalf("wave 14 released %+v, want the dequeue seq 10", out)
	}
	if plan.pending() != 0 {
		t.Fatalf("plan still holds %d ops after all boundaries", plan.pending())
	}
}

// TestJournalCompact verifies offset compaction drops everything before a
// capture boundary, keeps the suffix byte-identical, and leaves the
// journal appendable — including across a close/reopen (the restart
// path), which must pick the size up from disk.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	nodeA := transport.NodeID(3)
	if err := j.appendOp(nodeA, reqID(1), false, nil); err != nil {
		t.Fatal(err)
	}
	j.noteFire(nodeA, 5)
	// A snapshot capture happens here: its boundary covers seq 1.
	boundary := j.offset()
	if err := j.appendOp(nodeA, reqID(2), false, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.appendDone(reqID(2), wire.CliDone{}); err != nil {
		t.Fatal(err)
	}
	if err := j.truncatePrefix(boundary); err != nil {
		t.Fatal(err)
	}
	// The journal stays appendable after the rewrite.
	if err := j.appendOp(nodeA, reqID(3), true, nil); err != nil {
		t.Fatal(err)
	}
	j.close()

	// Reopen (as a restart would) and append once more: size must resume
	// from the on-disk length, not zero.
	j2, err := openJournal(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.appendDone(reqID(3), wire.CliDone{Bottom: true}); err != nil {
		t.Fatal(err)
	}
	j2.close()

	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range recs {
		got = append(got, fmt.Sprintf("%d:%d", r.Kind, r.ReqID&(1<<40-1)))
	}
	// Seq 1's record is gone; the post-boundary suffix (marker flushed
	// ahead of seq 2, seq 2's op and done) plus both later appends remain.
	want := []string{"3:0", "1:2", "2:2", "1:3", "2:3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("compacted journal holds %v, want %v", got, want)
	}
}
