package server

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"skueue/internal/transport"
	"skueue/internal/wire"
)

// reqID builds a member-1-tagged request ID with the given local sequence.
func reqID(seq uint64) uint64 { return 1<<40 | seq }

// openSyncJournal opens a journal in synchronous mode (group commit
// disabled): appends flush inline and releases run before the append
// returns, which keeps the classic tests deterministic.
func openSyncJournal(t *testing.T, dir string, fresh bool) *opJournal {
	t.Helper()
	j, err := openJournal(dir, fresh, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// syncAppendOp appends one op in synchronous mode and fails the test if
// its release reports an error.
func syncAppendOp(t *testing.T, j *opJournal, node transport.NodeID, id uint64, isDeq bool, value []byte) {
	t.Helper()
	var got error
	j.appendOp(node, id, isDeq, 0, value, "", 0, func(err error) { got = err })
	if got != nil {
		t.Fatalf("appendOp: %v", got)
	}
}

// syncAppendDone appends one outcome in synchronous mode and fails the
// test if its release reports an error.
func syncAppendDone(t *testing.T, j *opJournal, id uint64, done wire.CliDone) {
	t.Helper()
	var got error
	j.appendDone(id, done, func(err error) { got = err })
	if got != nil {
		t.Fatalf("appendDone: %v", got)
	}
}

// TestJournalRoundTripAndMarkers pins the lazy wave-boundary discipline:
// a fire marker is not written on its own, but is staged ahead of the
// next operation record of its node — so an idle member journals nothing
// per wave, yet every operation is preceded by the newest boundary it
// follows.
func TestJournalRoundTripAndMarkers(t *testing.T) {
	dir := t.TempDir()
	j := openSyncJournal(t, dir, true)

	nodeA, nodeB := transport.NodeID(3), transport.NodeID(4)
	syncAppendOp(t, j, nodeA, reqID(1), false, []byte("v1"))
	j.noteFire(nodeA, 7) // boundary, deferred
	j.noteFire(nodeB, 9) // boundary of another node, also deferred
	syncAppendOp(t, j, nodeA, reqID(2), true, nil)
	// A second op of the same node must NOT repeat the marker.
	syncAppendOp(t, j, nodeA, reqID(3), false, []byte("v3"))
	syncAppendDone(t, j, reqID(1), wire.CliDone{ReqID: reqID(1)})
	j.close()

	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []uint8
	for _, r := range recs {
		kinds = append(kinds, r.Kind)
	}
	want := []uint8{recOp, recFire, recOp, recOp, recDone}
	if len(kinds) != len(want) {
		t.Fatalf("journal has %d records (%v), want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("record %d kind = %d, want %d (%v)", i, kinds[i], want[i], kinds)
		}
	}
	if recs[1].Node != nodeA || recs[1].Wave != 7 {
		t.Fatalf("marker = node %d wave %d, want node %d wave 7", recs[1].Node, recs[1].Wave, nodeA)
	}
	// nodeB's boundary was never followed by an op: no marker for it.
	for _, r := range recs {
		if r.Kind == recFire && r.Node == nodeB {
			t.Fatalf("idle node %d leaked a fire marker", nodeB)
		}
	}
}

// TestJournalTornTail verifies a crash mid-append costs only the torn
// record: the valid prefix loads, the garbage is ignored.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j := openSyncJournal(t, dir, true)
	syncAppendOp(t, j, 3, reqID(1), false, []byte("ok"))
	j.close()
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: plausible length prefix, half a body.
	if _, err := f.Write([]byte{0, 0, 0, 200, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ReqID != reqID(1) {
		t.Fatalf("torn journal loaded %d records, want the 1 valid prefix record", len(recs))
	}
}

// TestJournalGroupCommitReleasesInOrder drives the batched path: many
// staged appends, releases fired by the writer goroutine strictly in
// staging order and only with nil (every fsync succeeded), and the file
// holding every record in that same order.
func TestJournalGroupCommitReleasesInOrder(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, true, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	type fired struct {
		seq uint64
		err error
	}
	got := make(chan fired, n)
	node := transport.NodeID(3)
	for i := uint64(1); i <= n; i++ {
		id := reqID(i)
		j.appendOp(node, id, false, 0, []byte("v"), "", 0, func(err error) {
			got <- fired{seq: id, err: err}
		})
	}
	for i := uint64(1); i <= n; i++ {
		f := <-got
		if f.err != nil {
			t.Fatalf("release %d reported %v", i, f.err)
		}
		if f.seq != reqID(i) {
			t.Fatalf("release %d fired for op %d: releases out of staging order", i, f.seq&(1<<40-1))
		}
	}
	j.close()
	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("journal holds %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.ReqID != reqID(uint64(i+1)) {
			t.Fatalf("record %d is op %d, want %d", i, r.ReqID&(1<<40-1), i+1)
		}
	}
}

// TestJournalBarrierForcesFlush pins the durability handshake snapshot
// compaction relies on: with a long accumulation delay the writer sits on
// the staged batch, offset() already counts it (the logical cut), and
// barrier() must flush it immediately — not after the delay — so the
// logical boundary becomes durable.
func TestJournalBarrierForcesFlush(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, true, 1<<20, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	j.appendOp(3, reqID(1), false, 0, []byte("v"), "", 0, nil)
	logical := j.offset()
	j.wmu.Lock()
	durable := j.durable
	j.wmu.Unlock()
	if logical <= durable {
		t.Fatalf("logical length %d not ahead of durable %d while the batch is held open", logical, durable)
	}
	start := time.Now()
	if err := j.barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("barrier took %v; it must preempt the accumulation delay", elapsed)
	}
	j.wmu.Lock()
	durable = j.durable
	j.wmu.Unlock()
	if durable != logical {
		t.Fatalf("durable length %d after barrier, want %d", durable, logical)
	}
}

// TestJournalTornBatchTail pins the torn-BATCH contract of group commit:
// several records synced as one batch, a crash tearing the file inside
// the batch — at a record boundary or mid-record — loses only the records
// past the tear, and the valid prefix (including earlier records of the
// same batch) still loads.
func TestJournalTornBatchTail(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, true, 16, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	node := transport.NodeID(3)
	var frames []int // encoded length of each record, in file order
	for i := uint64(1); i <= 3; i++ {
		value := []byte(fmt.Sprintf("value-%d", i))
		b, err := encodeRecord(&journalRecord{Kind: recOp, ReqID: reqID(i), Node: node, IsDeq: false, Value: value})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, len(b))
		j.appendOp(node, reqID(i), false, 0, value, "", 0, nil)
	}
	// All three are still one staged batch (huge delay, cap not reached);
	// the barrier flushes them as a single write+fsync.
	if err := j.barrier(); err != nil {
		t.Fatal(err)
	}
	j.close()

	path := filepath.Join(dir, journalFile)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != frames[0]+frames[1]+frames[2] {
		t.Fatalf("batch wrote %d bytes, want %d", len(whole), frames[0]+frames[1]+frames[2])
	}
	for _, tc := range []struct {
		name string
		keep int // file length after the simulated tear
		want int // surviving records
	}{
		{"mid-record", frames[0] + frames[1]/2, 1},
		{"record-boundary", frames[0] + frames[1], 2},
	} {
		if err := os.WriteFile(path, whole[:tc.keep], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := readJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != tc.want {
			t.Fatalf("%s tear: loaded %d records, want %d", tc.name, len(recs), tc.want)
		}
		for i, r := range recs {
			if r.ReqID != reqID(uint64(i+1)) {
				t.Fatalf("%s tear: record %d is op %d, want %d", tc.name, i, r.ReqID&(1<<40-1), i+1)
			}
		}
	}
}

// TestJournalCompactionDoesNotBlockAppends parks a compaction between its
// bulk suffix copy and its swap critical section and requires appends —
// including their fsync — to complete meanwhile: the old implementation
// held the append lock across the whole copy, freezing the member for the
// duration.
func TestJournalCompactionDoesNotBlockAppends(t *testing.T) {
	dir := t.TempDir()
	j := openSyncJournal(t, dir, true)
	node := transport.NodeID(3)
	syncAppendOp(t, j, node, reqID(1), false, []byte("old"))
	boundary := j.offset()
	syncAppendOp(t, j, node, reqID(2), false, []byte("keep"))

	entered := make(chan struct{})
	resume := make(chan struct{})
	j.testCompactPause = func() {
		close(entered)
		<-resume
	}
	compacted := make(chan error, 1)
	go func() { compacted <- j.truncatePrefix(boundary) }()
	<-entered

	// The compaction is mid-flight; a full append (stage + write + fsync)
	// must still go through.
	appended := make(chan struct{})
	go func() {
		syncAppendOp(t, j, node, reqID(3), true, nil)
		close(appended)
	}()
	select {
	case <-appended:
	case <-time.After(10 * time.Second):
		t.Fatal("append blocked behind an in-flight compaction")
	}
	close(resume)
	if err := <-compacted; err != nil {
		t.Fatalf("truncatePrefix: %v", err)
	}
	j.close()

	// The rewritten journal holds the suffix plus the append that raced
	// the compaction, in order.
	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, r := range recs {
		got = append(got, r.ReqID&(1<<40-1))
	}
	if fmt.Sprint(got) != fmt.Sprint([]uint64{2, 3}) {
		t.Fatalf("compacted journal holds ops %v, want [2 3]", got)
	}
}

// TestReplayPlanGrouping pins the re-submission schedule: snapshot-covered
// records are skipped, ops with no post-snapshot boundary are immediate,
// and held groups release strictly in order as their node's waves re-fire.
func TestReplayPlanGrouping(t *testing.T) {
	nodeA := transport.NodeID(3)
	recs := []journalRecord{
		{Kind: recOp, Node: nodeA, ReqID: reqID(5)},                     // covered by snapshot (seq <= 6)
		{Kind: recFire, Node: nodeA, Wave: 10},                          // covered boundary (wave <= 12)
		{Kind: recOp, Node: nodeA, ReqID: reqID(7), Value: []byte("i")}, // post-cut, before any live boundary
		{Kind: recFire, Node: nodeA, Wave: 13},
		{Kind: recOp, Node: nodeA, ReqID: reqID(8)},
		{Kind: recOp, Node: nodeA, ReqID: reqID(9)},
		{Kind: recFire, Node: nodeA, Wave: 14},
		{Kind: recOp, Node: nodeA, ReqID: reqID(10), IsDeq: true},
		{Kind: recDone, ReqID: reqID(7), Done: wire.CliDone{ReqID: reqID(7)}},
		{Kind: recDone, ReqID: reqID(5), Done: wire.CliDone{ReqID: reqID(5)}}, // covered
	}
	plan := buildReplayPlan(recs, 6, map[transport.NodeID]int64{nodeA: 12})

	if len(plan.immediate) != 1 || plan.immediate[0].ReqID != reqID(7) {
		t.Fatalf("immediate = %+v, want the single op seq 7", plan.immediate)
	}
	if got := plan.pending(); got != 3 {
		t.Fatalf("plan holds %d ops, want 3", got)
	}
	if _, ok := plan.outcomes[reqID(7)]; !ok {
		t.Fatal("post-cut done record missing from outcomes")
	}
	if _, ok := plan.outcomes[reqID(5)]; ok {
		t.Fatal("snapshot-covered done record leaked into outcomes")
	}

	// Wave 12 re-fires first: releases nothing (first group waits for 13).
	if out := plan.take(nodeA, 12); len(out) != 0 {
		t.Fatalf("wave 12 released %d ops, want 0", len(out))
	}
	// Wave 13: releases seqs 8 and 9, but NOT the group behind wave 14.
	out := plan.take(nodeA, 13)
	if len(out) != 2 || out[0].ReqID != reqID(8) || out[1].ReqID != reqID(9) {
		t.Fatalf("wave 13 released %+v, want seqs 8, 9", out)
	}
	out = plan.take(nodeA, 14)
	if len(out) != 1 || out[0].ReqID != reqID(10) || !out[0].IsDeq {
		t.Fatalf("wave 14 released %+v, want the dequeue seq 10", out)
	}
	if plan.pending() != 0 {
		t.Fatalf("plan still holds %d ops after all boundaries", plan.pending())
	}
}

// TestJournalCompact verifies offset compaction drops everything before a
// capture boundary, keeps the suffix byte-identical, and leaves the
// journal appendable — including across a close/reopen (the restart
// path), which must pick the size up from disk.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j := openSyncJournal(t, dir, true)
	nodeA := transport.NodeID(3)
	syncAppendOp(t, j, nodeA, reqID(1), false, nil)
	j.noteFire(nodeA, 5)
	// A snapshot capture happens here: its boundary covers seq 1.
	boundary := j.offset()
	syncAppendOp(t, j, nodeA, reqID(2), false, nil)
	syncAppendDone(t, j, reqID(2), wire.CliDone{})
	if err := j.truncatePrefix(boundary); err != nil {
		t.Fatal(err)
	}
	// The journal stays appendable after the rewrite.
	syncAppendOp(t, j, nodeA, reqID(3), true, nil)
	j.close()

	// Reopen (as a restart would) and append once more: size must resume
	// from the on-disk length, not zero. The reopen uses group commit to
	// cover the batched path against a compacted file too.
	j2, err := openJournal(dir, false, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2.appendDone(reqID(3), wire.CliDone{Bottom: true}, nil)
	if err := j2.barrier(); err != nil {
		t.Fatal(err)
	}
	j2.close()

	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range recs {
		got = append(got, fmt.Sprintf("%d:%d", r.Kind, r.ReqID&(1<<40-1)))
	}
	// Seq 1's record is gone; the post-boundary suffix (marker flushed
	// ahead of seq 2, seq 2's op and done) plus both later appends remain.
	want := []string{"3:0", "1:2", "2:2", "1:3", "2:3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("compacted journal holds %v, want %v", got, want)
	}
}

// TestJournalSequenceLease pins the re-issue guard: sequences are only
// covered below a DURABLE ceiling, extensions are staged ahead of use
// and become effective once synced, and a reopened journal recovers the
// ceiling from its records — so a crash can never re-issue a request ID
// the dead incarnation might already have leaked to a peer.
func TestJournalSequenceLease(t *testing.T) {
	dir := t.TempDir()
	j := openSyncJournal(t, dir, true)
	if j.coverSeq(1) {
		t.Fatal("sequence covered before any lease is durable")
	}
	// coverSeq staged an extension; in sync mode it is already durable.
	if !j.coverSeq(1) {
		t.Fatal("sequence not covered after the lease synced")
	}
	if j.coverSeq(leaseSpan + 1) {
		t.Fatal("sequence beyond the ceiling covered")
	}
	j.close()

	// The ceiling survives in the records: a restart must advance the
	// request counter past it even though no op record exists.
	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var ceiling uint64
	for _, r := range recs {
		if r.Kind == recLease && r.Ceiling > ceiling {
			ceiling = r.Ceiling
		}
	}
	if ceiling <= leaseSpan {
		t.Fatalf("recovered ceiling %d, want > %d (the staged extensions)", ceiling, leaseSpan)
	}

	// Batched mode: initLease (the boot path) must leave a durable
	// ceiling even while the writer would otherwise sit on the batch.
	j2, err := openJournal(dir, false, 1<<20, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if err := j2.initLease(ceiling); err != nil {
		t.Fatal(err)
	}
	if !j2.coverSeq(ceiling + 1) {
		t.Fatal("sequence above the recovered base not covered after initLease")
	}
}

// TestLeaseOnlyJournalDoesNotBrickFreshBoot pins the boot-window crash
// path: initLease writes a journal record BEFORE the base snapshot, so a
// crash in that window leaves a lease-bearing journal with no snapshot.
// That state dir must still boot fresh (the no-snapshot refusal guards
// operation records only) — and must stay above the dead incarnation's
// ceiling, which bounds every request ID it could have issued.
func TestLeaseOnlyJournalDoesNotBrickFreshBoot(t *testing.T) {
	dir := t.TempDir()
	j := openSyncJournal(t, dir, true)
	j.stageLease(12345) // sync mode: durable before the call returns
	j.close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Listener: lis, Seed: 7, Index: 0, Members: []string{lis.Addr().String()},
		StateDir: dir, Tick: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fresh boot with a lease-only journal refused: %v", err)
	}
	defer s.Close()
	var seq uint64
	s.peer.DoSync(func() { seq = s.cl.ReqSeq() })
	if seq < 12345 {
		t.Fatalf("request counter %d below the old lease ceiling 12345: a request ID could be re-issued", seq)
	}
}

// TestJournalDiscardFailsParkedReleases pins the Kill semantics: discard
// drops the staged batch (nothing more reaches the disk) and fails every
// parked release instead of flushing it — a simulated crash must lose
// exactly what a real one would.
func TestJournalDiscardFailsParkedReleases(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, true, 1<<20, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	node := transport.NodeID(3)
	j.appendOp(node, reqID(1), false, 0, []byte("flushed"), "", 0, nil)
	if err := j.barrier(); err != nil {
		t.Fatal(err)
	}
	relErr := make(chan error, 1)
	j.appendOp(node, reqID(2), false, 0, []byte("staged"), "", 0, func(err error) { relErr <- err })
	j.discard()
	if err := <-relErr; err == nil {
		t.Fatal("parked release of a discarded record reported success")
	}
	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ReqID != reqID(1) {
		t.Fatalf("discarded journal holds %d records, want only the flushed op", len(recs))
	}
}

// TestJournalSessionRecordsRoundTrip pins the durable-session records:
// a session record carries its ID, a session op record carries both the
// session and the per-session sequence, and all of it survives a reload.
// A journal holding only session records (no ops or outcomes) must not
// trip the fresh-boot refusal — nothing client-visible can be lost.
func TestJournalSessionRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openSyncJournal(t, dir, true)
	node := transport.NodeID(3)
	j.appendSession("sess-a")
	var got error
	j.appendOp(node, reqID(1), false, 0, []byte("v1"), "sess-a", 7, func(err error) { got = err })
	if got != nil {
		t.Fatalf("appendOp: %v", got)
	}
	syncAppendDone(t, j, reqID(1), wire.CliDone{ReqID: reqID(1), Seq: 7})
	j.close()

	recs, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	// A lease record may precede (initLease); filter to the content kinds.
	var content []journalRecord
	for _, r := range recs {
		if r.Kind == recSession || r.Kind == recOp || r.Kind == recDone {
			content = append(content, r)
		}
	}
	if len(content) != 3 {
		t.Fatalf("journal holds %d content records, want 3", len(content))
	}
	if content[0].Kind != recSession || content[0].Sess != "sess-a" {
		t.Fatalf("session record = %+v, want Sess sess-a", content[0])
	}
	if content[1].Kind != recOp || content[1].Sess != "sess-a" || content[1].CliSeq != 7 {
		t.Fatalf("op record = %+v, want Sess sess-a CliSeq 7", content[1])
	}
	if content[2].Kind != recDone || content[2].Done.Seq != 7 {
		t.Fatalf("done record = %+v, want Done.Seq 7", content[2])
	}

	// Session records alone do not hold client-visible state.
	if journalHoldsOps([]journalRecord{{Kind: recSession, Sess: "x"}}) {
		t.Fatal("a session-only journal claims to hold ops; fresh boots would brick")
	}
}
