package server_test

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"skueue"
	"skueue/internal/server"
)

// journalBatchEnv reads the SKUEUE_JOURNAL_BATCH_OPS / _DELAY overrides
// the CI fault-injection matrix sets to run the restart tests under
// different group-commit configurations — synchronous per-op fsync
// (ops=1), the default, and an aggressive batch with an accumulation
// delay (see .github/workflows/ci.yml). Zero values keep the server
// defaults.
func journalBatchEnv(t *testing.T) (int, time.Duration) {
	t.Helper()
	ops := 0
	if v := os.Getenv("SKUEUE_JOURNAL_BATCH_OPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("SKUEUE_JOURNAL_BATCH_OPS=%q: %v", v, err)
		}
		ops = n
	}
	var delay time.Duration
	if v := os.Getenv("SKUEUE_JOURNAL_BATCH_DELAY"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("SKUEUE_JOURNAL_BATCH_DELAY=%q: %v", v, err)
		}
		delay = d
	}
	return ops, delay
}

// debugLogf returns a prefixed transport logger when SKUEUE_TEST_DEBUG is
// set, for diagnosing recovery wedges; nil otherwise.
func debugLogf(tag string) func(string, ...any) {
	if os.Getenv("SKUEUE_TEST_DEBUG") == "" {
		return nil
	}
	lg := log.New(os.Stderr, tag+" ", log.Ltime|log.Lmicroseconds)
	return func(format string, args ...any) { lg.Printf(format, args...) }
}

// startDurableCluster boots a loopback cluster whose members persist
// write-ahead snapshots, so any of them can be killed and restarted.
func startDurableCluster(t *testing.T, members int) ([]*server.Server, []string) {
	t.Helper()
	base := t.TempDir()
	lis := make([]net.Listener, members)
	addrs := make([]string, members)
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lis[i] = l
		addrs[i] = l.Addr().String()
	}
	batchOps, batchDelay := journalBatchEnv(t)
	srvs := make([]*server.Server, members)
	dirs := make([]string, members)
	for i := range srvs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("m%d", i))
		s, err := server.New(server.Config{
			Listener:          lis[i],
			Seed:              42,
			Index:             i,
			Members:           addrs,
			Tick:              500 * time.Microsecond,
			StateDir:          dirs[i],
			SnapshotEvery:     50 * time.Millisecond,
			JournalBatchOps:   batchOps,
			JournalBatchDelay: batchDelay,
			Logf:              debugLogf(fmt.Sprintf("[m%d]", i)),
		})
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		srvs[i] = s
		t.Cleanup(s.Close)
	}
	return srvs, dirs
}

// TestMemberRestartFromSnapshot is the fail-stop recovery acceptance
// test: run traffic across a durable 3-member cluster, kill one member
// without warning (no final snapshot), keep issuing operations that
// depend on the dead member's fragment, restart it from its snapshot on a
// NEW address via the seed's rejoin handshake, and require that (a) the
// stalled operations complete once the peers' links replay, (b) the
// restarted member serves clients again, and (c) the merged history still
// passes the Definition 1 sequential-consistency checker with every value
// accounted for exactly once.
func TestMemberRestartFromSnapshot(t *testing.T) {
	srvs, dirs := startDurableCluster(t, 3)

	c0, err := skueue.Open(skueue.WithRemote(srvs[0].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	ctxTime := 120 * time.Second
	if os.Getenv("SKUEUE_TEST_DEBUG") != "" {
		ctxTime = 20 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), ctxTime)
	defer cancel()

	enqueued := make(map[string]bool)
	dequeued := make(map[string]bool)
	takeOne := func(c *skueue.Client) {
		t.Helper()
		v, ok, err := c.Dequeue(ctx)
		if err != nil {
			t.Fatalf("dequeue: %v", err)
		}
		if ok {
			s := v.(string)
			if dequeued[s] {
				t.Fatalf("value %q dequeued twice", s)
			}
			dequeued[s] = true
		}
	}

	// Phase 1: spread elements over every member's DHT fragment.
	for i := 0; i < 12; i++ {
		v := fmt.Sprintf("pre-%d", i)
		if err := c0.Enqueue(ctx, v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		enqueued[v] = true
	}
	for i := 0; i < 4; i++ {
		takeOne(c0)
	}

	// Let the periodic snapshots cover everything above: all operations
	// have completed, so after a few intervals the only state still
	// changing is the idle wave circulation the restart protocol is built
	// to tolerate.
	time.Sleep(500 * time.Millisecond)

	// Kill a non-seed member that does not host the anchor (the seed owns
	// rejoin admission, and the anchor adds no coverage here beyond what
	// its wave buffers already get from the snapshot).
	victim := -1
	for i := 1; i < len(srvs); i++ {
		if !srvs[i].HasAnchor() {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no non-seed member without the anchor")
	}
	t.Logf("killing member %d (no final snapshot)", victim)
	srvs[victim].Kill()

	// Phase 2: operations issued at a live member while the victim is
	// down. Any of them whose position hashes into the victim's fragment
	// stalls — buffered on the peers' links — and must complete after the
	// restart replays them. Fail-stop, not fail-silent: nothing is lost.
	var futures []*skueue.Future
	for i := 0; i < 6; i++ {
		v := fmt.Sprintf("down-%d", i)
		f, err := c0.EnqueueAsync(skueue.AnyProcess, v)
		if err != nil {
			t.Fatalf("enqueue while member down: %v", err)
		}
		enqueued[v] = true
		futures = append(futures, f)
	}
	time.Sleep(300 * time.Millisecond) // let them wedge mid-protocol

	// Restart from the snapshot on a fresh port; the rejoin handshake
	// through the seed re-broadcasts the new address.
	batchOps, batchDelay := journalBatchEnv(t)
	restarted, err := server.New(server.Config{
		Addr:              "127.0.0.1:0",
		Join:              srvs[0].Addr(),
		StateDir:          dirs[victim],
		SnapshotEvery:     50 * time.Millisecond,
		Tick:              500 * time.Microsecond,
		JournalBatchOps:   batchOps,
		JournalBatchDelay: batchDelay,
		Logf:              debugLogf("[re]"),
	})
	if err != nil {
		t.Fatalf("restarting member %d: %v", victim, err)
	}
	t.Cleanup(restarted.Close)
	t.Logf("member %d restarted on %s", victim, restarted.Addr())

	// (a) The stalled operations complete.
	for i, f := range futures {
		if err := f.Wait(ctx); err != nil {
			for mi, s := range srvs {
				if mi == victim {
					continue
				}
				for _, d := range s.Diagnose() {
					t.Logf("member %d: %s", mi, d)
				}
			}
			for _, d := range restarted.Diagnose() {
				t.Logf("restarted member %d: %s", victim, d)
			}
			t.Fatalf("stalled enqueue %d never completed after restart: %v", i, err)
		}
		if err := f.Err(); err != nil {
			t.Fatalf("stalled enqueue %d failed: %v", i, err)
		}
	}

	// (b) The restarted member serves clients directly.
	c2, err := skueue.Open(skueue.WithRemote(restarted.Addr()))
	if err != nil {
		t.Fatalf("client via restarted member: %v", err)
	}
	defer c2.Close()
	for i := 0; i < 3; i++ {
		v := fmt.Sprintf("post-%d", i)
		if err := c2.Enqueue(ctx, v); err != nil {
			t.Fatalf("enqueue via restarted member: %v", err)
		}
		enqueued[v] = true
	}
	for i := 0; i < 5; i++ {
		takeOne(c2)
	}

	// (c) Global invariants: nothing dequeued that was not enqueued, and
	// the merged history — including the restored pre-crash completions —
	// is sequentially consistent.
	for v := range dequeued {
		if !enqueued[v] {
			t.Fatalf("dequeued %q was never enqueued", v)
		}
	}
	if err := c2.Check(); err != nil {
		t.Fatalf("sequential consistency check failed after restart: %v", err)
	}
	st := c2.Stats()
	wantTotal := 12 + 4 + 6 + 3 + 5 // every operation completed exactly once
	if st.Total != wantTotal {
		t.Fatalf("merged history has %d completions, want %d (lost or duplicated operations)", st.Total, wantTotal)
	}
}

// startStackCluster boots a durable loopback STACK-mode cluster. Snapshot
// intervals are effectively infinite: the test drives the victim's
// snapshots by hand (SnapshotNow) so it can kill the member at a moment
// when the on-disk image provably holds a non-empty combiner residual.
func startStackCluster(t *testing.T, members int) ([]*server.Server, []string) {
	t.Helper()
	base := t.TempDir()
	lis := make([]net.Listener, members)
	addrs := make([]string, members)
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lis[i] = l
		addrs[i] = l.Addr().String()
	}
	batchOps, batchDelay := journalBatchEnv(t)
	srvs := make([]*server.Server, members)
	dirs := make([]string, members)
	for i := range srvs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("m%d", i))
		s, err := server.New(server.Config{
			Listener:          lis[i],
			Seed:              43,
			Mode:              "stack",
			Index:             i,
			Members:           addrs,
			Tick:              time.Millisecond,
			StateDir:          dirs[i],
			SnapshotEvery:     time.Hour,
			JournalBatchOps:   batchOps,
			JournalBatchDelay: batchDelay,
			Logf:              debugLogf(fmt.Sprintf("[s%d]", i)),
		})
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		srvs[i] = s
		t.Cleanup(s.Close)
	}
	return srvs, dirs
}

// TestStackMemberRestartExactlyOnce is the stack-mode fail-stop
// acceptance test: a member is killed mid-traffic with pending pushes in
// its combiner residual (provably captured in its last snapshot) and
// pops in flight across the cluster, restarted from the snapshot plus
// operation journal on a new port, and every operation must then resolve
// with exactly-once semantics — every confirmed push is popped exactly
// once, no value is ever popped twice, operations that stalled while the
// member was down complete, and the merged history passes the
// Definition 1 checker.
func TestStackMemberRestartExactlyOnce(t *testing.T) {
	srvs, dirs := startStackCluster(t, 3)

	c0, err := skueue.Open(skueue.WithRemote(srvs[0].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	ctxTime := 120 * time.Second
	if os.Getenv("SKUEUE_TEST_DEBUG") != "" {
		ctxTime = 20 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), ctxTime)
	defer cancel()

	confirmed := make(map[string]bool) // pushes whose CliDone the client saw
	maybe := make(map[string]bool)     // pushes in flight at the kill
	popped := make(map[string]bool)    // values returned by any pop
	notePop := func(v any, ok bool) {
		t.Helper()
		if !ok {
			return
		}
		s := v.(string)
		if popped[s] {
			t.Fatalf("value %q popped twice", s)
		}
		popped[s] = true
	}

	// Phase 1: settled traffic so every member's fragment holds elements.
	for i := 0; i < 8; i++ {
		v := fmt.Sprintf("seed-%d", i)
		if err := c0.Enqueue(ctx, v); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		confirmed[v] = true
	}
	for i := 0; i < 2; i++ {
		v, ok, err := c0.Dequeue(ctx)
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		notePop(v, ok)
	}

	// Pick a non-seed victim without the anchor, and a client pinned to it.
	victim := -1
	for i := 1; i < len(srvs); i++ {
		if !srvs[i].HasAnchor() {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no non-seed member without the anchor")
	}
	cv, err := skueue.Open(skueue.WithRemote(srvs[victim].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer cv.Close()

	// Phase 2: hunt for a snapshot with a non-empty combiner residual.
	// Pushes submitted at the victim sit in its §VI combiner between
	// injection and the next wave fire; keep submitting bursts and
	// snapshotting until the cut lands inside such a window.
	var vicFutures []*skueue.Future
	var vicValues []string
	vicSeq := 0
	sawResidual := false
hunt:
	for deadline := time.Now().Add(90 * time.Second); time.Now().Before(deadline); {
		for i := 0; i < 8; i++ {
			v := fmt.Sprintf("vic-%d", vicSeq)
			vicSeq++
			f, err := cv.EnqueueAsync(skueue.AnyProcess, v)
			if err != nil {
				t.Fatalf("push at victim: %v", err)
			}
			vicFutures = append(vicFutures, f)
			vicValues = append(vicValues, v)
		}
		// Several snapshot attempts per burst: the residual lives from a
		// push's injection to its node's next wave fire, so the cut has to
		// land inside that window.
		for attempt := 0; attempt < 5; attempt++ {
			if err := srvs[victim].SnapshotNow(); err != nil {
				continue // not quiescent this instant; try again
			}
			if _, stats := srvs[victim].SnapshotInfo(); stats.CombinerPushes > 0 {
				sawResidual = true
				break hunt
			}
		}
	}
	if !sawResidual {
		t.Fatal("never caught a snapshot with a non-empty combiner residual")
	}

	// Pops in flight cluster-wide at the kill.
	var popFutures []*skueue.Future
	for i := 0; i < 3; i++ {
		f, err := c0.DequeueAsync(skueue.AnyProcess)
		if err != nil {
			t.Fatalf("async pop: %v", err)
		}
		popFutures = append(popFutures, f)
	}

	_, stats := srvs[victim].SnapshotInfo()
	t.Logf("killing member %d (snapshot residual: %d pops, %d pushes)",
		victim, stats.CombinerPops, stats.CombinerPushes)
	srvs[victim].Kill()

	// Classify the victim-submitted pushes: resolved futures are
	// confirmed (their outcome was journaled before release and must
	// survive); the rest are indeterminate — exactly-once allows them to
	// surface zero or one time, never twice.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 2*time.Second)
	for i, f := range vicFutures {
		if err := f.Wait(shortCtx); err == nil && f.Err() == nil {
			confirmed[vicValues[i]] = true
		} else {
			maybe[vicValues[i]] = true
		}
	}
	shortCancel()

	// Phase 3: operations issued while the victim is down stall on its
	// fragment and must complete after the restart.
	var downFutures []*skueue.Future
	for i := 0; i < 4; i++ {
		v := fmt.Sprintf("down-%d", i)
		f, err := c0.EnqueueAsync(skueue.AnyProcess, v)
		if err != nil {
			t.Fatalf("push while member down: %v", err)
		}
		confirmed[v] = true
		downFutures = append(downFutures, f)
	}
	time.Sleep(300 * time.Millisecond)

	batchOps, batchDelay := journalBatchEnv(t)
	restarted, err := server.New(server.Config{
		Addr:              "127.0.0.1:0",
		Join:              srvs[0].Addr(),
		StateDir:          dirs[victim],
		SnapshotEvery:     50 * time.Millisecond,
		Tick:              time.Millisecond,
		JournalBatchOps:   batchOps,
		JournalBatchDelay: batchDelay,
		Logf:              debugLogf("[re]"),
	})
	if err != nil {
		t.Fatalf("restarting member %d: %v", victim, err)
	}
	t.Cleanup(restarted.Close)
	t.Logf("member %d restarted on %s", victim, restarted.Addr())

	// (a) Stalled operations complete: the in-flight pops and the pushes
	// issued during the outage.
	dumpDiagnostics := func() {
		for mi, s := range srvs {
			if mi == victim {
				continue
			}
			for _, d := range s.Diagnose() {
				t.Logf("member %d: %s", mi, d)
			}
		}
		for _, d := range restarted.Diagnose() {
			t.Logf("restarted member %d: %s", victim, d)
		}
	}
	for i, f := range popFutures {
		if err := f.Wait(ctx); err != nil {
			dumpDiagnostics()
			t.Fatalf("stalled pop %d never completed after restart: %v", i, err)
		}
		if f.Err() != nil {
			t.Fatalf("stalled pop %d failed: %v", i, f.Err())
		}
		if !f.Empty() {
			notePop(f.Value(), true)
		}
	}
	for i, f := range downFutures {
		if err := f.Wait(ctx); err != nil {
			dumpDiagnostics()
			t.Fatalf("stalled push %d never completed after restart: %v", i, err)
		}
		if f.Err() != nil {
			t.Fatalf("stalled push %d failed: %v", i, f.Err())
		}
	}

	// (b) The restarted member serves clients; add a few more confirmed
	// pushes through it.
	c2, err := skueue.Open(skueue.WithRemote(restarted.Addr()))
	if err != nil {
		t.Fatalf("client via restarted member: %v", err)
	}
	defer c2.Close()
	for i := 0; i < 3; i++ {
		v := fmt.Sprintf("post-%d", i)
		if err := c2.Enqueue(ctx, v); err != nil {
			t.Fatalf("push via restarted member: %v", err)
		}
		confirmed[v] = true
	}

	// (c) Drain the stack completely: journaled victim pushes re-executed
	// after the restart keep materializing for a while, so only stop
	// after several consecutive empty rounds.
	emptyRounds := 0
	for emptyRounds < 3 {
		v, ok, err := c2.Dequeue(ctx)
		if err != nil {
			dumpDiagnostics()
			t.Fatalf("drain pop: %v", err)
		}
		if !ok {
			emptyRounds++
			time.Sleep(150 * time.Millisecond)
			continue
		}
		emptyRounds = 0
		notePop(v, true)
	}

	// (d) Exactly-once accounting: every pop returned a value that was
	// pushed; every confirmed push surfaced exactly once (notePop already
	// rules out twice); indeterminate pushes surfaced at most once.
	for v := range popped {
		if !confirmed[v] && !maybe[v] {
			t.Fatalf("popped %q was never pushed", v)
		}
	}
	for v := range confirmed {
		if !popped[v] {
			t.Fatalf("confirmed push %q was lost (never popped before the stack drained)", v)
		}
	}

	// (e) The merged history — including the restored and re-executed
	// completions — is sequentially consistent.
	if err := c2.Check(); err != nil {
		t.Fatalf("sequential consistency check failed after stack restart: %v", err)
	}
}

// TestJoinUnreachableSeedFailsFast pins the fail-fast contract of the
// admission handshake: a member pointed at a dead seed address must
// return a clear error once the give-up timeout expires — not hang.
func TestJoinUnreachableSeedFailsFast(t *testing.T) {
	// Reserve an address nobody listens on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	start := time.Now()
	_, err = server.New(server.Config{
		Addr:   "127.0.0.1:0",
		Join:   deadAddr,
		GiveUp: 500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("joining an unreachable seed succeeded?")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("join took %v to fail; the give-up timeout should bound it", elapsed)
	}
	t.Logf("join failed fast with: %v", err)
}

// TestSilentSeedFailsFast covers the nastier variant: the seed address
// accepts connections but never answers the handshake. Without read
// deadlines this used to hang the joining member forever.
func TestSilentSeedFailsFast(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c // accept and say nothing
		}
	}()

	start := time.Now()
	_, err = server.New(server.Config{
		Addr:   "127.0.0.1:0",
		Join:   l.Addr().String(),
		GiveUp: 500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("joining a silent seed succeeded?")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("join took %v to fail; deadlines should bound every read", elapsed)
	}
	t.Logf("join failed fast with: %v", err)
}
