// Package server hosts one member of a networked Skueue cluster: a
// core.Cluster fragment running over the TCP transport, one listener
// speaking both the member-to-member envelope protocol and the remote
// client protocol (the first Hello frame of a connection picks the
// dialect), and the seed-side admission handshake that lets late members
// join a running cluster by address.
//
// Topology bootstrap is coordination-free: all bootstrap members share
// (seed, procs, member list) and derive identical rings, node addresses
// and address books (see core.NewMember). A joining member instead asks
// the seed member (index 0) for a member index and process ID, receives
// the address book, and then enters through the paper's JOIN protocol
// (§IV-A) — its three virtual nodes relay requests through their
// responsible nodes until an update phase splices them into the ring.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"skueue/internal/batch"
	"skueue/internal/core"
	"skueue/internal/ldb"
	"skueue/internal/seqcheck"
	"skueue/internal/transport"
	"skueue/internal/transport/tcp"
	"skueue/internal/wire"
)

// Config configures one cluster member.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	// Ignored when Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of binding Addr; the server
	// takes ownership. Pre-binding lets tests learn every member's address
	// before starting any of them.
	Listener net.Listener

	// Seed is the cluster-wide seed; all members must agree on it.
	Seed int64
	// Mode is "queue" (default) or "stack".
	Mode string
	// UpdateThreshold mirrors core.Config.UpdateThreshold.
	UpdateThreshold int

	// Bootstrap deployment: Index is this member's position in Members,
	// which lists every bootstrap member's address. Procs is the total
	// number of bootstrap processes, distributed round-robin over the
	// members (default: one per member). All bootstrap members must agree
	// on Procs and Members.
	Index   int
	Procs   int
	Members []string

	// Join, when set, ignores the bootstrap fields: the member asks the
	// seed member at this address for admission and enters via the JOIN
	// protocol.
	Join string

	// Tick is the TIMEOUT cadence of the transport (default 1ms).
	Tick time.Duration
	// Logf receives diagnostics; default discards.
	Logf func(format string, args ...any)
}

// BootstrapPids returns the process IDs member index hosts in a bootstrap
// deployment of procs processes over members members (round-robin).
func BootstrapPids(index, members, procs int) []int32 {
	var out []int32
	for pid := index; pid < procs; pid += members {
		out = append(out, int32(pid))
	}
	return out
}

// Server is a running cluster member.
type Server struct {
	cfg  Config
	lis  net.Listener
	peer *tcp.Peer
	cl   *core.Cluster
	mode batch.Mode
	logf func(string, ...any)

	mu      sync.Mutex
	waiters map[uint64]*waiter // reqID -> pending client op
	rr      int                // round-robin over local procs
	// Seed-side admission state (member 0 only).
	nextIndex int32
	nextPid   int32
	closed    bool

	// onEarly catches completions that fire inside an inject call, before
	// the waiter is registered (stack local combining). Runner-confined.
	onEarly func(reqID uint64, done wire.CliDone)

	// conns tracks accepted connections so Close can unblock their
	// handlers (the remote end may outlive us).
	conns map[net.Conn]struct{}

	wg sync.WaitGroup
}

// waiter tracks one in-flight client operation.
type waiter struct {
	sess *session
	seq  uint64
}

// session is one remote client connection; a dedicated writer goroutine
// keeps protocol callbacks from blocking on slow clients.
type session struct {
	conn *wire.Conn
	out  chan any
	quit chan struct{}
	kill sync.Once
}

// send hands a frame to the session writer without ever blocking the
// caller: completion callbacks run on the transport's runner goroutine,
// which must not stall on one slow client. A client that lets the buffer
// fill (it is not reading responses) loses its connection instead of
// freezing the member.
func (s *session) send(v any) {
	select {
	case s.out <- v:
	case <-s.quit:
	default:
		s.kill.Do(func() { s.conn.Close() })
	}
}

// New builds and starts a member.
func New(cfg Config) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	mode := batch.Queue
	switch cfg.Mode {
	case "", "queue":
	case "stack":
		mode = batch.Stack
	default:
		return nil, fmt.Errorf("server: unknown mode %q", cfg.Mode)
	}
	lis := cfg.Listener
	if lis == nil {
		var err error
		lis, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:     cfg,
		lis:     lis,
		mode:    mode,
		logf:    cfg.Logf,
		waiters: make(map[uint64]*waiter),
		conns:   make(map[net.Conn]struct{}),
	}
	var err error
	if cfg.Join != "" {
		err = s.startJoining()
	} else {
		err = s.startBootstrap()
	}
	if err != nil {
		lis.Close()
		return nil, err
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.peer.Start()
	return s, nil
}

// Addr returns the member's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the member. In-flight client operations fail with closed
// connections; the hosted nodes stop processing.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.lis.Close()
	s.peer.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) coreConfig(procs int) core.Config {
	return core.Config{
		Processes:       procs,
		Seed:            s.cfg.Seed,
		Mode:            s.mode,
		UpdateThreshold: s.cfg.UpdateThreshold,
		AckAllPuts:      true,
	}
}

func (s *Server) startBootstrap() error {
	if len(s.cfg.Members) == 0 {
		return errors.New("server: bootstrap needs at least one member address")
	}
	if s.cfg.Index < 0 || s.cfg.Index >= len(s.cfg.Members) {
		return fmt.Errorf("server: index %d outside member list", s.cfg.Index)
	}
	procs := s.cfg.Procs
	if procs == 0 {
		procs = len(s.cfg.Members)
	}
	if procs < len(s.cfg.Members) {
		return fmt.Errorf("server: %d procs cannot cover %d members", procs, len(s.cfg.Members))
	}
	myPids := BootstrapPids(s.cfg.Index, len(s.cfg.Members), procs)
	s.peer = tcp.New(tcp.Options{
		Index: int32(s.cfg.Index),
		Addr:  s.lis.Addr().String(),
		Pids:  myPids,
		Seed:  s.cfg.Seed,
		Tick:  s.cfg.Tick,
		Logf:  s.logf,
	})
	var book []wire.MemberInfo
	for i, addr := range s.cfg.Members {
		book = append(book, wire.MemberInfo{
			Index: int32(i), Addr: addr,
			Pids: BootstrapPids(i, len(s.cfg.Members), procs),
		})
	}
	s.peer.SetBook(book)
	cl, err := core.NewMember(s.coreConfig(procs), int32(s.cfg.Index), myPids, s.peer)
	if err != nil {
		return err
	}
	s.cl = cl
	s.nextIndex = int32(len(s.cfg.Members))
	s.nextPid = int32(procs)
	s.wireCallbacks()
	return nil
}

// startJoining performs the admission handshake with the seed member and
// enters the cluster through the JOIN protocol.
func (s *Server) startJoining() error {
	nc, err := net.DialTimeout("tcp", s.cfg.Join, 5*time.Second)
	if err != nil {
		return fmt.Errorf("server: dialing seed: %w", err)
	}
	conn := wire.NewConn(nc)
	defer conn.Close()
	if err := conn.Write(wire.Hello{Kind: "client"}); err != nil {
		return err
	}
	if _, err := conn.Read(); err != nil { // HelloAck
		return err
	}
	if err := conn.Write(wire.CliJoin{Addr: s.lis.Addr().String()}); err != nil {
		return err
	}
	v, err := conn.Read()
	if err != nil {
		return err
	}
	ack, ok := v.(wire.CliJoinResp)
	if !ok {
		return fmt.Errorf("server: seed answered %T to join request", v)
	}
	if ack.Err != "" {
		return fmt.Errorf("server: join rejected: %s", ack.Err)
	}
	s.cfg.Seed = ack.Seed
	s.cfg.Mode = ack.Mode
	s.cfg.UpdateThreshold = ack.UpdateThreshold
	s.mode = batch.Queue
	if ack.Mode == "stack" {
		s.mode = batch.Stack
	}
	s.peer = tcp.New(tcp.Options{
		Index: ack.Index,
		Addr:  s.lis.Addr().String(),
		Pids:  []int32{ack.Pid},
		Seed:  ack.Seed,
		Tick:  s.cfg.Tick,
		Logf:  s.logf,
	})
	s.peer.SetBook(ack.Book)
	cl, err := core.NewMember(s.coreConfig(0), ack.Index, nil, s.peer)
	if err != nil {
		return err
	}
	s.cl = cl
	s.wireCallbacks()
	pid, contact := ack.Pid, ack.Contact
	s.peer.Do(func() { cl.JoinRemote(pid, contact) })
	return nil
}

// wireCallbacks connects completion and ack events to client waiters.
// Both callbacks run on the transport's runner goroutine.
func (s *Server) wireCallbacks() {
	myTag := uint64(s.peer.Me().Index + 1)
	s.cl.SetOnComplete(func(c seqcheck.Completion) {
		if core.ReqIDMember(c.ReqID) != myTag {
			return // recorded here, issued by another member
		}
		if c.Kind == seqcheck.Enqueue {
			// Local enqueue stored locally, or combined stack push: the
			// put-ack may never come (it does not for combined pairs), so
			// resolve on the completion itself.
			s.resolve(c.ReqID, wire.CliDone{Rounds: c.Done - c.Born})
			return
		}
		s.resolve(c.ReqID, wire.CliDone{
			Bottom: c.Bottom,
			Value:  c.Blob,
			Rounds: c.Done - c.Born,
		})
	})
	s.cl.SetOnPutAck(func(reqID uint64) {
		s.resolve(reqID, wire.CliDone{})
	})
}

// resolve completes the waiter for reqID, if any, filling session
// bookkeeping into the prepared response. Completions with no waiter yet
// fall through to the early hook of an inject call in progress.
func (s *Server) resolve(reqID uint64, done wire.CliDone) {
	s.mu.Lock()
	w, ok := s.waiters[reqID]
	if ok {
		delete(s.waiters, reqID)
	}
	s.mu.Unlock()
	if ok {
		done.Seq = w.seq
		w.sess.send(done)
		return
	}
	if s.onEarly != nil {
		s.onEarly(reqID, done)
	}
}

// pickClient returns the local node to inject the next request at,
// round-robining over the member's live local processes.
func (s *Server) pickClient() (transport.NodeID, error) {
	local := s.cl.LocalProcs()
	if len(local) == 0 {
		return transport.None, errors.New("no live local process")
	}
	s.mu.Lock()
	idx := local[s.rr%len(local)]
	s.rr++
	s.mu.Unlock()
	return s.cl.Client(idx), nil
}

// ---- Listener ----

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, nc)
				s.mu.Unlock()
			}()
			s.handleConn(wire.NewConn(nc))
		}()
	}
}

func (s *Server) handleConn(conn *wire.Conn) {
	v, err := conn.Read()
	if err != nil {
		conn.Close()
		return
	}
	hello, ok := v.(wire.Hello)
	if !ok {
		s.logf("server[%d]: first frame was %T, closing", s.cfg.Index, v)
		conn.Close()
		return
	}
	switch hello.Kind {
	case "peer":
		s.peer.AcceptPeer(conn, hello) // returns when the link closes
	case "client":
		s.serveClient(conn)
	default:
		s.logf("server[%d]: unknown hello kind %q", s.cfg.Index, hello.Kind)
		conn.Close()
	}
}

func (s *Server) serveClient(conn *wire.Conn) {
	// The buffer absorbs completion bursts (one wave can resolve thousands
	// of async operations back-to-back); only a client that stopped
	// reading altogether fills it, and such a client is disconnected
	// rather than allowed to block the runner (see session.send).
	sess := &session{conn: conn, out: make(chan any, 1<<14), quit: make(chan struct{})}
	defer s.dropSessionWaiters(sess)
	defer close(sess.quit)
	defer conn.Close()

	mode := "queue"
	if s.mode == batch.Stack {
		mode = "stack"
	}
	if err := conn.Write(wire.HelloAck{Book: s.peer.Book(), Mode: mode, Index: s.peer.Me().Index}); err != nil {
		return
	}
	// Writer: responses and completion notifications.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case v := <-sess.out:
				if err := conn.Write(v); err != nil {
					return
				}
			case <-sess.quit:
				return
			}
		}
	}()

	for {
		v, err := conn.Read()
		if err != nil {
			return
		}
		switch m := v.(type) {
		case wire.CliEnqueue:
			s.submit(sess, m.Seq, true, m.Value)
		case wire.CliDequeue:
			s.submit(sess, m.Seq, false, nil)
		case wire.CliHistory:
			var ops []seqcheck.Completion
			s.peer.DoSync(func() {
				ops = append(ops, s.cl.History().Ops...)
			})
			sess.send(wire.CliHistoryResp{Ops: ops})
		case wire.CliJoin:
			sess.send(s.admit(m))
		default:
			s.logf("server[%d]: unexpected client frame %T", s.cfg.Index, v)
			return
		}
	}
}

// submit injects one client operation on the runner goroutine. The waiter
// is registered after the inject call returns the request ID; completions
// also run on the runner, so the only thing that can beat the
// registration is a completion firing synchronously inside the inject
// itself (a locally combined stack pair) — the early hook catches those
// and answers from the stash. The runner goroutine serializes the whole
// window, so it cannot interleave with other requests.
func (s *Server) submit(sess *session, seq uint64, enq bool, value []byte) {
	s.peer.Do(func() {
		node, err := s.pickClient()
		if err != nil {
			sess.send(wire.CliDone{Seq: seq, Err: err.Error()})
			return
		}
		early := make(map[uint64]wire.CliDone, 1)
		s.onEarly = func(reqID uint64, done wire.CliDone) { early[reqID] = done }
		var reqID uint64
		if enq {
			reqID = s.cl.EnqueueBlob(node, value)
		} else {
			reqID = s.cl.Dequeue(node)
		}
		s.onEarly = nil
		if done, ok := early[reqID]; ok {
			done.Seq = seq
			sess.send(done)
			return
		}
		s.mu.Lock()
		s.waiters[reqID] = &waiter{sess: sess, seq: seq}
		s.mu.Unlock()
	})
}

// dropSessionWaiters forgets the in-flight operations of a finished
// session so long-lived servers do not leak one waiter per abandoned
// request. The operations themselves are already in flight and still
// take their turn in the serialization — exactly like an abandoned
// in-process call (see Client.Dequeue) — their results just have nobody
// left to deliver to.
func (s *Server) dropSessionWaiters(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, w := range s.waiters {
		if w.sess == sess {
			delete(s.waiters, id)
		}
	}
}

// admit handles a CliJoin: only the seed member assigns member indices and
// process IDs, and it broadcasts the updated address book before
// answering, so every member can route to the newcomer by the time its
// JOIN requests start flowing.
func (s *Server) admit(m wire.CliJoin) wire.CliJoinResp {
	if s.peer.Me().Index != 0 {
		return wire.CliJoinResp{Err: "join via the seed member (index 0)"}
	}
	s.mu.Lock()
	idx := s.nextIndex
	pid := s.nextPid
	s.nextIndex++
	s.nextPid++
	s.mu.Unlock()
	s.peer.AddMember(wire.MemberInfo{Index: idx, Addr: m.Addr, Pids: []int32{pid}})
	s.peer.BroadcastBook()
	mode := "queue"
	if s.mode == batch.Stack {
		mode = "stack"
	}
	return wire.CliJoinResp{
		Index: idx, Pid: pid,
		Seed: s.cfg.Seed, Mode: mode, UpdateThreshold: s.cfg.UpdateThreshold,
		Book:    s.peer.Book(),
		Contact: core.NodeIDForProcess(s.peer.Me().Pids[0], ldb.Middle),
	}
}
