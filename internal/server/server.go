// Package server hosts one member of a networked Skueue cluster: a
// core.Cluster fragment running over the TCP transport, one listener
// speaking both the member-to-member envelope protocol and the remote
// client protocol (the first Hello frame of a connection picks the
// dialect), and the seed-side admission handshake that lets late members
// join a running cluster by address.
//
// Topology bootstrap is coordination-free: all bootstrap members share
// (seed, procs, member list) and derive identical rings, node addresses
// and address books (see core.NewMember). A joining member instead asks
// the seed member (index 0) for a member index and process ID, receives
// the address book, and then enters through the paper's JOIN protocol
// (§IV-A) — its three virtual nodes relay requests through their
// responsible nodes until an update phase splices them into the ring.
//
// # Fail-stop recovery
//
// With Config.StateDir set, the member periodically persists a
// write-ahead snapshot: its core image (core.Cluster.SnapshotMember — DHT
// entries, queue and stack positions, wave buffers, the stack combiner's
// residual word, completion history) plus the transport's receive cursors
// (tcp.Peer.CaptureState). Acknowledgments to peers are only released
// once the snapshot holding their effects is durable (tcp.Options
// .AckGate), so after a crash every message the snapshot misses is still
// buffered at its sender and is replayed when the restarted member
// reconnects.
//
// Client operations are exactly-once across the crash: every accepted
// operation is journaled under its durable request ID before any answer
// can be released (journal.go), and every client-visible completion is
// journaled before its CliDone frame goes out — with group commit, the
// frames are parked on the journal's release queue and go out once the
// fsync coalescing their batch returns, taking the disk entirely off the
// runner goroutine. A restart finds the
// snapshot, rebuilds the member with core.RestoreMember under a fresh
// boot epoch, re-submits the journaled operations the snapshot does not
// cover — at their original wave boundaries, so the re-executed interval
// reproduces the crashed incarnation's batches — announces its (possibly
// new) address through the seed's rejoin handshake, and resumes; peers
// that were blocked on the crashed member unstall as their links replay,
// and receiver-side request-ID dedupe collapses re-sent effects onto the
// originals. Senders that should NOT wait forever set Config.GiveUp:
// when a member stays unreachable past it, pending client operations fail
// with an unreachable error instead of blocking (see wire.CliDone).
package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"skueue/internal/batch"
	"skueue/internal/core"
	"skueue/internal/ldb"
	"skueue/internal/seqcheck"
	"skueue/internal/transport"
	"skueue/internal/transport/tcp"
	"skueue/internal/wire"
)

// Config configures one cluster member.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	// Ignored when Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of binding Addr; the server
	// takes ownership. Pre-binding lets tests learn every member's address
	// before starting any of them.
	Listener net.Listener

	// Seed is the cluster-wide seed; all members must agree on it.
	Seed int64
	// Mode is "queue" (default), "stack" or "heap".
	Mode string
	// HeapLevels is the number of priority levels in heap mode (default
	// 4); ignored in the other modes. All members must agree on it.
	HeapLevels int
	// UpdateThreshold mirrors core.Config.UpdateThreshold.
	UpdateThreshold int

	// Bootstrap deployment: Index is this member's position in Members,
	// which lists every bootstrap member's address. Procs is the total
	// number of bootstrap processes, distributed round-robin over the
	// members (default: one per member). All bootstrap members must agree
	// on Procs and Members.
	Index   int
	Procs   int
	Members []string

	// Join, when set, ignores the bootstrap fields: the member asks the
	// seed member at this address for admission and enters via the JOIN
	// protocol. A member restarting from a snapshot uses it to announce
	// its address through the seed's rejoin handshake instead.
	Join string

	// StateDir, when set, enables fail-stop recovery: the member persists
	// write-ahead snapshots there and restarts from the newest one.
	StateDir string
	// SnapshotEvery is the snapshot cadence (default 250ms). Shorter
	// intervals shrink both the replay window after a crash and the
	// acknowledgment-release latency (peer send buffers drain on release).
	SnapshotEvery time.Duration
	// GiveUp, when positive, bounds how long this member's links redial an
	// unreachable peer before failing pending client operations with an
	// unreachable error (fail-stop detection), and how long the join
	// handshake retries an unreachable seed (default 15s for the latter).
	// It must exceed SnapshotEvery: with write-ahead acknowledgments a
	// healthy peer's frames stay unacknowledged for up to one snapshot
	// interval.
	GiveUp time.Duration

	// JournalBatchOps bounds the operation journal's group commit: the
	// journal writer flushes as soon as this many operations are staged
	// (and otherwise as soon as it is idle, or when JournalBatchDelay
	// expires). 0 selects the default (64); 1 disables group commit and
	// restores the synchronous per-operation fsync on the submission
	// path.
	JournalBatchOps int
	// JournalBatchDelay, when positive, holds a journal batch open this
	// long to accumulate more operations before the fsync — higher
	// throughput for up to this much added confirmation latency. 0 (the
	// default) flushes whenever the journal writer is idle: batches then
	// form naturally while the previous fsync is in flight, adding no
	// latency when the disk keeps up.
	JournalBatchDelay time.Duration

	// Tick is the TIMEOUT cadence of the transport (default 1ms).
	Tick time.Duration
	// Shape is an optional WAN delivery profile applied to this member's
	// inbound peer traffic (see transport.Shape and tcp.Options.Shape);
	// the chaos harness uses it to run realistic wide-area scenarios on
	// one host. The zero Shape delivers immediately.
	Shape transport.Shape
	// Logf receives diagnostics; default discards.
	Logf func(format string, args ...any)
}

// BootstrapPids returns the process IDs member index hosts in a bootstrap
// deployment of procs processes over members members (round-robin).
func BootstrapPids(index, members, procs int) []int32 {
	var out []int32
	for pid := index; pid < procs; pid += members {
		out = append(out, int32(pid))
	}
	return out
}

// Server is a running cluster member.
//
//skueue:snapshot-state diskSnapshot
type Server struct {
	cfg  Config
	lis  net.Listener
	peer *tcp.Peer
	cl   *core.Cluster
	mode batch.Mode
	logf func(string, ...any)

	//skueue:lock 20
	//skueue:ephemeral -- mutex; its zero value is ready after restore
	mu sync.Mutex
	//skueue:guarded-by mu
	//skueue:ephemeral -- in-flight ops tied to live connections; crashed clients re-present or re-dial
	waiters map[uint64]*waiter // reqID -> pending client op (ephemeral)
	//skueue:guarded-by mu
	//skueue:ephemeral -- round-robin cursor; pure load balancing
	rr int // round-robin over local procs
	// Durable client sessions: sessions indexes them by client-chosen ID,
	// sessRefs maps an in-flight session operation's request ID back to
	// its session and per-session sequence (session ops never use
	// waiters — their delivery outlives any one connection).
	//
	//skueue:guarded-by mu
	sessions map[string]*durSession
	//skueue:guarded-by mu
	sessRefs map[uint64]sessRef
	// Seed-side admission state (member 0 only).
	//
	//skueue:guarded-by mu
	nextIndex int32
	//skueue:guarded-by mu
	nextPid int32
	//skueue:guarded-by mu
	//skueue:ephemeral -- shutdown latch; a restored server is by definition not closed
	closed bool
	// procsTotal is the bootstrap process count, persisted in snapshots.
	procsTotal int
	// snapQuit stops the snapshot loop (nil when StateDir is unset).
	//
	//skueue:ephemeral -- snapshot-loop lifecycle channel, recreated by Start
	snapQuit chan struct{}
	// snapMu serializes SnapshotNow: the capture-write-release sequence
	// must be atomic, or a slow periodic snapshot could overwrite a newer
	// one whose acknowledgments were already released — losing the frames
	// between the two cursors for good. The capture-write sequence takes
	// s.mu and runs DoSync inside, so snapMu ranks below everything.
	//
	//skueue:lock 10 io
	//skueue:ephemeral -- mutex; its zero value is ready after restore
	snapMu sync.Mutex
	// lastSnapStats summarizes the in-flight operations of the newest
	// written snapshot (under snapMu; tests assert a kill happened with a
	// non-empty combiner residual through it).
	//
	//skueue:guarded-by snapMu
	lastSnapStats core.SnapshotStats
	//skueue:guarded-by snapMu
	snapCount int64

	// journal is the durable operation journal (nil when StateDir is
	// unset); see journal.go. plan is the restart re-submission schedule,
	// runner-confined after Start (built before the transport starts,
	// consumed by the onFire callback and resolve, which both run on the
	// runner goroutine).
	journal *opJournal
	plan    *replayPlan

	// replayPeers are the senders the restored snapshot held receive
	// cursors for — the only links that can still deliver pre-crash
	// frames. replayConverged latches once every one of them has fenced
	// (tcp.ReplayFenced), the core holds no replayed serves, and the plan
	// drained: from then on fresh client operations cannot change the
	// shape of a wave the replay must reproduce, so the submit gate stops
	// parking them. Both runner-confined after Start.
	replayPeers []int32
	//skueue:ephemeral -- per-boot replay progress latch; every restore starts unconverged
	replayConverged bool

	// sendsParked counts outbound peer frames held by the WAL-before-send
	// gate (gateSend): emitted by the core, but not yet enqueued on their
	// link because a journal batch staged at emission time had not synced.
	// Runner-confined; while it is nonzero a snapshot capture refuses the
	// cut (the parked frames are in no link's replay buffer, so a restore
	// from such a snapshot would never re-send them).
	sendsParked int

	// orphans tracks operations that were injected but whose journal
	// append failed: the client was answered indeterminate, yet the
	// operation still completes eventually — resolve logs, counts and
	// best-effort journals the outcome instead of dropping it silently,
	// keeping the on-disk trace truthful about what executed (under mu).
	//
	//skueue:guarded-by mu
	//skueue:ephemeral -- accounting for already-indeterminate outcomes; the client contract needs no cross-restart memory of them
	orphans map[uint64]bool
	//skueue:guarded-by mu
	//skueue:ephemeral -- diagnostic counter
	orphanFailed int64 // ops whose journal append failed after injection
	//skueue:guarded-by mu
	//skueue:ephemeral -- diagnostic counter
	orphanResolved int64 // orphaned ops whose completion later surfaced

	// onEarly catches completions that fire inside an inject call, before
	// the waiter is registered (stack local combining). Runner-confined.
	//
	//skueue:ephemeral -- injection-window callback, installed per submit call
	onEarly func(reqID uint64, done wire.CliDone)

	// deferring parks PARTNER completions that resolve inside an inject
	// call in progress (a parked pop completed by the push being
	// injected): their done records must not be staged — and can
	// therefore never sync and release — before the op record of the
	// operation whose injection produced them, or a crash between the
	// two batches could make a client-visible outcome durable while the
	// operation that caused it is lost from the journal. Runner-confined,
	// like onEarly; submit drains deferredDones right after staging the
	// op record.
	//
	//skueue:ephemeral -- true only inside an inject call; a snapshot's DoSync never runs mid-inject
	deferring bool
	//skueue:ephemeral -- drained at the end of the inject call that parked them; empty whenever a capture runs
	deferredDones []deferredDone

	// conns tracks accepted connections so Close can unblock their
	// handlers (the remote end may outlive us); cliConns is the subset
	// currently serving the remote client protocol (CloseClientConns
	// severs only those, sparing the peer links).
	//
	//skueue:guarded-by mu
	//skueue:ephemeral -- live connections; nothing to restore, clients re-dial
	conns map[net.Conn]struct{}
	//skueue:guarded-by mu
	//skueue:ephemeral -- live connections; nothing to restore, clients re-dial
	cliConns map[*wire.Conn]struct{}

	//skueue:ephemeral -- goroutine bookkeeping for Close
	wg sync.WaitGroup
}

// waiter tracks one in-flight client operation.
type waiter struct {
	sess *session
	seq  uint64
}

// durSession is one durable client session at its owning member: the
// dedupe table for re-presented operations (ops), the journaled outcomes
// retained for redelivery until the client acknowledges them (outcomes),
// the delivered-outcome cursor (acked), and the currently attached
// connection, nil while the client is disconnected. All fields are
// guarded by Server.mu; outcome delivery itself goes through the
// attached session's writer like any other frame.
//
//skueue:snapshot-state sessionImage
type durSession struct {
	id string
	//skueue:guarded-by Server.mu
	acked uint64
	// ops maps in-flight per-session sequences to their request IDs: a
	// re-presented operation found here is already executing and needs no
	// second injection.
	//
	//skueue:guarded-by Server.mu
	ops map[uint64]uint64
	// outcomes retains completed operations' CliDone frames by
	// per-session sequence. Entries are inserted when the outcome record
	// is STAGED (on the runner, so a snapshot capture on the same
	// goroutine can never miss one inside its journal cut) and pruned
	// when the client's cursor passes them; redelivery to a resuming
	// connection runs a journal barrier first, so nothing leaves before
	// its record is durable.
	//
	//skueue:guarded-by Server.mu
	outcomes map[uint64]wire.CliDone
	// cur is the attached connection; a fresh Hello for the same session
	// detaches (and closes) the previous one.
	//
	//skueue:guarded-by Server.mu
	//skueue:ephemeral -- attached connection; a resuming client re-attaches with a fresh Hello
	cur *session
	// journaled marks the session's own journal record staged (ahead of
	// its first op record); sessions restored from disk count as
	// journaled — the snapshot or the surviving journal prefix is their
	// durable record.
	//
	//skueue:guarded-by Server.mu
	journaled bool
}

// sessRef points an in-flight request ID back to its session.
type sessRef struct {
	sd     *durSession
	cliSeq uint64
}

// sessionImage is a durSession inside a snapshot.
type sessionImage struct {
	ID       string
	Acked    uint64
	Ops      map[uint64]uint64
	Outcomes map[uint64]wire.CliDone
}

// deferredDone is a partner completion parked during an inject call (see
// Server.deferring): fully resolved, its journal release already built,
// waiting for the injected op's record to enter the batch first.
type deferredDone struct {
	reqID   uint64
	done    wire.CliDone
	release journalRelease
}

// session is one remote client connection; a dedicated writer goroutine
// keeps protocol callbacks from blocking on slow clients.
type session struct {
	conn *wire.Conn
	out  chan any
	quit chan struct{}
	kill sync.Once
}

// send hands a frame to the session writer without ever blocking the
// caller: completion callbacks run on the transport's runner goroutine,
// which must not stall on one slow client. A client that lets the buffer
// fill (it is not reading responses) loses its connection instead of
// freezing the member.
//
//skueue:client-release
//skueue:wire-payload
func (s *session) send(v any) {
	select {
	case s.out <- v:
	case <-s.quit:
	default:
		s.kill.Do(func() { s.conn.Close() })
	}
}

// New builds and starts a member.
func New(cfg Config) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	mode := batch.Queue
	switch cfg.Mode {
	case "", "queue":
	case "stack":
		mode = batch.Stack
	case "heap":
		mode = batch.Heap
		if cfg.HeapLevels == 0 {
			cfg.HeapLevels = defaultHeapLevels
		}
		if cfg.HeapLevels < 1 {
			return nil, fmt.Errorf("server: heap mode needs at least one priority level, got %d", cfg.HeapLevels)
		}
	default:
		return nil, fmt.Errorf("server: unknown mode %q", cfg.Mode)
	}
	lis := cfg.Listener
	if lis == nil {
		var err error
		lis, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:      cfg,
		lis:      lis,
		mode:     mode,
		logf:     cfg.Logf,
		waiters:  make(map[uint64]*waiter),
		sessions: make(map[string]*durSession),
		sessRefs: make(map[uint64]sessRef),
		orphans:  make(map[uint64]bool),
		conns:    make(map[net.Conn]struct{}),
		cliConns: make(map[*wire.Conn]struct{}),
	}
	var err error
	var disk *diskSnapshot
	var journalRecs []journalRecord
	if cfg.StateDir != "" {
		// A crash mid-write leaves CreateTemp leftovers behind; without a
		// sweep they accumulate forever (one per interrupted snapshot or
		// journal compaction).
		sweepStaleTemps(cfg.StateDir, cfg.Logf)
		if disk, err = loadSnapshot(cfg.StateDir); err != nil {
			lis.Close()
			return nil, fmt.Errorf("server: reading snapshot: %w", err)
		}
		if journalRecs, err = readJournal(filepath.Join(cfg.StateDir, journalFile)); err != nil {
			lis.Close()
			return nil, fmt.Errorf("server: reading operation journal: %w", err)
		}
		if disk == nil && journalHoldsOps(journalRecs) {
			// A journal without a snapshot means confirmed operations with
			// no cut to replay them against. Refusing beats silently
			// discarding them; the base snapshot taken below closes this
			// window for every member that starts cleanly. Lease records
			// alone do NOT trip this (a crash inside the first boot window
			// leaves them behind) — their ceilings are recovered below and
			// the fresh start is otherwise clean.
			lis.Close()
			return nil, fmt.Errorf("server: state dir %s holds %d journaled records including operations but no snapshot; refusing to discard them", cfg.StateDir, len(journalRecs))
		}
		if s.journal, err = openJournal(cfg.StateDir, disk == nil, cfg.JournalBatchOps, cfg.JournalBatchDelay); err != nil {
			lis.Close()
			return nil, fmt.Errorf("server: opening operation journal: %w", err)
		}
	}
	switch {
	case disk != nil:
		err = s.startRestore(disk, journalRecs)
	case cfg.Join != "":
		err = s.startJoining()
	default:
		err = s.startBootstrap()
	}
	if err == nil && s.journal != nil {
		// Stay above every lease ceiling the old journal carried even
		// when there was no snapshot to restore (a crash inside the first
		// boot window): the dead incarnation may have issued request IDs
		// up to its durable ceiling, and re-issuing one would collide in
		// the peers' dedupe rings. startRestore already scanned these;
		// repeating the scan is idempotent and covers the fresh-boot
		// paths too.
		for _, rec := range journalRecs {
			if rec.Kind == recLease {
				s.cl.AdvanceReqSeq(rec.Ceiling)
			}
		}
		// A durable sequence lease before any client can submit: request
		// IDs may only be issued below a ceiling that is already on disk
		// (journal.go, "The sequence lease"). The runner has not started,
		// so reading the restored counter directly is safe.
		err = s.journal.initLease(s.cl.ReqSeq())
	}
	if err != nil {
		if s.journal != nil {
			s.journal.close()
		}
		lis.Close()
		return nil, err
	}
	s.peer.Start()
	if cfg.StateDir != "" && disk == nil {
		// Base snapshot before any client can be confirmed: without one, a
		// crash inside the first snapshot interval would leave journaled —
		// confirmed — operations with no cut to replay them against. A
		// bootstrap member is quiescent and succeeds immediately; a joiner
		// may need a few retries while its JOIN settles.
		deadline := time.Now().Add(s.joinGiveUp())
		for {
			err := s.SnapshotNow()
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrNotQuiescent) || time.Now().After(deadline) {
				s.logf("server[%d]: base snapshot not written (%v); durability begins at the first periodic snapshot", s.peer.Me().Index, err)
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.cfg.StateDir != "" {
		s.snapQuit = make(chan struct{})
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// Addr returns the member's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the member gracefully: with a StateDir it takes a final
// snapshot first — retrying briefly if a shutdown during churn finds the
// member not quiescent (see finalSnapshot) — so a clean shutdown loses
// nothing. In-flight client operations fail with closed connections; the
// hosted nodes stop processing.
func (s *Server) Close() { s.shutdown(true) }

// Kill stops the member WITHOUT the final snapshot, simulating a
// fail-stop crash: whatever happened since the last periodic snapshot is
// lost and must be recovered through peer replay on restart. Tests use it
// to exercise the recovery path.
func (s *Server) Kill() { s.shutdown(false) }

// ErrFinalSnapshotSkipped reports a graceful shutdown that could not
// take its final snapshot within the retry budget (the member never
// became churn-quiescent): the state on disk is the last periodic
// snapshot plus the operation journal, and the tail since then is
// recovered through peer replay on restart — nothing is lost, but the
// restart will replay more.
var ErrFinalSnapshotSkipped = errors.New("server: final snapshot skipped (member not quiescent within the retry budget)")

// finalSnapshot takes the shutdown snapshot, retrying ErrNotQuiescent
// with a short bounded backoff: a shutdown during churn or mid-wave
// traffic usually becomes quiescent within a few intervals, and silently
// settling for the stale periodic snapshot would discard the latest
// state from the fast path for no reason. It returns
// ErrFinalSnapshotSkipped once the budget is exhausted.
func (s *Server) finalSnapshot() error {
	backoff := 5 * time.Millisecond
	deadline := time.Now().Add(time.Second)
	for {
		err := s.SnapshotNow()
		if err == nil || !errors.Is(err, core.ErrNotQuiescent) {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %v", ErrFinalSnapshotSkipped, err)
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

func (s *Server) shutdown(graceful bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.snapQuit != nil {
		close(s.snapQuit)
	}
	if graceful && s.cfg.StateDir != "" {
		switch err := s.finalSnapshot(); {
		case err == nil:
		case errors.Is(err, ErrFinalSnapshotSkipped):
			s.logf("server[%d]: %v", s.peer.Me().Index, err)
		default:
			s.logf("server[%d]: final snapshot failed: %v", s.peer.Me().Index, err)
		}
	}
	s.lis.Close()
	s.peer.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.journal != nil {
		if graceful {
			s.journal.close()
		} else {
			// A simulated crash must lose what a real one would: staged
			// records whose group commit never synced are dropped, not
			// flushed on the way out.
			s.journal.discard()
		}
	}
}

// defaultHeapLevels is the heap-mode priority-level count when the config
// leaves it 0.
const defaultHeapLevels = 4

// modeString renders the member's mode for the client protocol and the
// disk snapshot.
func (s *Server) modeString() string {
	switch s.mode {
	case batch.Stack:
		return "stack"
	case batch.Heap:
		return "heap"
	default:
		return "queue"
	}
}

// adoptMode installs a mode string received from the seed (join) or the
// snapshot (restore), plus the heap level count riding with it.
func (s *Server) adoptMode(mode string, heapLevels int) {
	s.cfg.Mode = mode
	s.mode = batch.Queue
	switch mode {
	case "stack":
		s.mode = batch.Stack
	case "heap":
		s.mode = batch.Heap
		if heapLevels < 1 {
			heapLevels = defaultHeapLevels
		}
		s.cfg.HeapLevels = heapLevels
	}
}

func (s *Server) coreConfig(procs int) core.Config {
	return core.Config{
		Processes:       procs,
		Seed:            s.cfg.Seed,
		Mode:            s.mode,
		HeapLevels:      s.cfg.HeapLevels,
		UpdateThreshold: s.cfg.UpdateThreshold,
		AckAllPuts:      true,
	}
}

// peerOptions assembles the transport options shared by every start path.
// AckGate is tied to StateDir: without durable snapshots there is nothing
// to gate acknowledgments on, and deliveries acknowledge immediately.
func (s *Server) peerOptions(index int32, pids []int32, boot int64) tcp.Options {
	opts := tcp.Options{
		Index:   index,
		Addr:    s.lis.Addr().String(),
		Pids:    pids,
		Seed:    s.cfg.Seed,
		Tick:    s.cfg.Tick,
		Logf:    s.logf,
		Boot:    boot,
		AckGate: s.cfg.StateDir != "",
		GiveUp:  s.cfg.GiveUp,
		OnDown:  s.peerDown,
		Shape:   s.cfg.Shape,
	}
	if s.cfg.StateDir != "" {
		opts.SendGate = s.gateSend
	}
	return opts
}

// gateSend is the WAL-before-send gate (tcp.Options.SendGate): no frame
// leaves this member while the operation journal holds records that are
// staged but not yet synced. A wave batch fires on the tick, typically
// well inside the group-commit window of the operations it carries; if
// it departed immediately, a crash before the fsync would lose the
// records of operations the cluster went on to execute — the restart
// would replay the wave without them (diverging from the serve shapes
// peers recorded, wedging the member) and a reconnecting session client
// would re-present an operation the journal never admitted, executing
// it twice. Holding the frame until the covering fsync closes both: a
// lost record now proves the operation never left the member.
//
// Ordering: the fast path runs only while no send is parked (the
// counter) and nothing staged is undurable (sendableNow), so it cannot
// overtake a parked frame. Parked frames ride the journal's release
// queue, which runs in staging order on the single writer goroutine,
// and hop back to the runner through Do — FIFO end to end. On a failed
// journal the frame is released anyway: durability is already void
// (appends refuse, clients get errors), and muting the member would
// additionally stall every peer waiting on its waves.
func (s *Server) gateSend(route func()) {
	if s.journal == nil {
		// Boot-time sends (join handshake, restore replay) can precede
		// the journal; nothing is staged yet, so nothing gates them.
		route()
		return
	}
	if s.sendsParked == 0 && s.journal.sendableNow() {
		route()
		return
	}
	s.sendsParked++
	s.journal.notifyDurable(func(err error) {
		s.peer.Do(func() {
			s.sendsParked--
			route()
		})
	})
}

// peerDown handles a give-up notification from the transport: some member
// stayed unreachable past Config.GiveUp. Every pending client operation
// may transitively depend on the dead member (its position assignment,
// its DHT fragment), so all of them fail with an unreachable error rather
// than blocking forever; the member itself keeps serving — operations
// that avoid the dead member's fragment still succeed, and if the member
// ever restarts, replay resumes where it left off.
//
// Session operations get the same notification on their attached
// connections, but their sessRefs entries stay: if the operation ever
// completes, its outcome still retires into the session's retention map
// — the client that treated the notification as final has by then acked
// past the sequence, and the stale outcome is dropped there (resolve).
func (s *Server) peerDown(idx int32) {
	type failing struct {
		sess  *session
		seq   uint64
		reqID uint64
	}
	s.mu.Lock()
	ws := make([]failing, 0, len(s.waiters)+len(s.sessRefs))
	for id, w := range s.waiters {
		ws = append(ws, failing{w.sess, w.seq, id})
	}
	s.waiters = make(map[uint64]*waiter)
	for id, ref := range s.sessRefs {
		if ref.sd.cur != nil {
			ws = append(ws, failing{ref.sd.cur, ref.cliSeq, id})
		}
	}
	s.mu.Unlock()
	if len(ws) == 0 {
		return
	}
	s.logf("server[%d]: member %d unreachable past %v; failing %d pending operations",
		s.peer.Me().Index, idx, s.cfg.GiveUp, len(ws))
	for _, f := range ws {
		// Not journaled: this is a failure notification, not an outcome —
		// the operation may still complete if the member ever returns.
		f.sess.send(wire.CliDone{
			Seq:         f.seq,
			ReqID:       f.reqID,
			Err:         fmt.Sprintf("cluster member %d unreachable past the %v give-up timeout", idx, s.cfg.GiveUp),
			Unreachable: true,
		})
	}
}

//skueue:owned-by startup -- runs before the transport starts; no other goroutine can see the server yet
func (s *Server) startBootstrap() error {
	if len(s.cfg.Members) == 0 {
		return errors.New("server: bootstrap needs at least one member address")
	}
	if s.cfg.Index < 0 || s.cfg.Index >= len(s.cfg.Members) {
		return fmt.Errorf("server: index %d outside member list", s.cfg.Index)
	}
	procs := s.cfg.Procs
	if procs == 0 {
		procs = len(s.cfg.Members)
	}
	if procs < len(s.cfg.Members) {
		return fmt.Errorf("server: %d procs cannot cover %d members", procs, len(s.cfg.Members))
	}
	myPids := BootstrapPids(s.cfg.Index, len(s.cfg.Members), procs)
	s.procsTotal = procs
	s.peer = tcp.New(s.peerOptions(int32(s.cfg.Index), myPids, 1))
	var book []wire.MemberInfo
	for i, addr := range s.cfg.Members {
		book = append(book, wire.MemberInfo{
			Index: int32(i), Addr: addr,
			Pids: BootstrapPids(i, len(s.cfg.Members), procs),
		})
	}
	s.peer.SetBook(book)
	cl, err := core.NewMember(s.coreConfig(procs), int32(s.cfg.Index), myPids, s.peer)
	if err != nil {
		return err
	}
	s.cl = cl
	s.nextIndex = int32(len(s.cfg.Members))
	s.nextPid = int32(procs)
	s.wireCallbacks()
	return nil
}

// joinGiveUp bounds how long the seed admission handshake keeps retrying
// before the member gives up with a clear error instead of hanging.
func (s *Server) joinGiveUp() time.Duration {
	if s.cfg.GiveUp > 0 {
		return s.cfg.GiveUp
	}
	return 15 * time.Second
}

// seedDialog performs one Hello + CliJoin exchange with the seed, every
// read and write bounded by deadline so a reachable-but-silent address
// cannot hang the member.
func seedDialog(addr string, req wire.CliJoin, deadline time.Time) (wire.CliJoinResp, error) {
	var resp wire.CliJoinResp
	nc, err := net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return resp, err
	}
	nc.SetDeadline(deadline)
	conn := wire.NewConn(nc)
	defer conn.Close()
	if err := conn.Write(wire.Hello{Kind: "client"}); err != nil {
		return resp, err
	}
	if _, err := conn.Read(); err != nil { // HelloAck
		return resp, err
	}
	if err := conn.Write(req); err != nil {
		return resp, err
	}
	v, err := conn.Read()
	if err != nil {
		return resp, err
	}
	resp, ok := v.(wire.CliJoinResp)
	if !ok {
		return resp, fmt.Errorf("seed answered %T to join request", v)
	}
	return resp, nil
}

// askSeed retries the admission dialog with backoff until it succeeds, is
// rejected, or the join give-up timeout expires — the member then fails
// with a clear error rather than hanging on an unreachable seed.
func (s *Server) askSeed(req wire.CliJoin) (wire.CliJoinResp, error) {
	giveUp := s.joinGiveUp()
	deadline := time.Now().Add(giveUp)
	backoff := 100 * time.Millisecond
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := seedDialog(s.cfg.Join, req, deadline)
		if err == nil {
			if resp.Err != "" {
				return resp, fmt.Errorf("server: join rejected: %s", resp.Err)
			}
			return resp, nil
		}
		lastErr = err
		s.logf("server: seed %s not answering (%v); retrying", s.cfg.Join, err)
		time.Sleep(backoff)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	return wire.CliJoinResp{}, fmt.Errorf("server: seed %s unreachable after %v give-up timeout: %w",
		s.cfg.Join, giveUp, lastErr)
}

// startJoining performs the admission handshake with the seed member and
// enters the cluster through the JOIN protocol.
func (s *Server) startJoining() error {
	ack, err := s.askSeed(wire.CliJoin{Addr: s.lis.Addr().String()})
	if err != nil {
		return err
	}
	s.cfg.Seed = ack.Seed
	s.cfg.UpdateThreshold = ack.UpdateThreshold
	s.adoptMode(ack.Mode, int(ack.HeapLevels))
	s.peer = tcp.New(s.peerOptions(ack.Index, []int32{ack.Pid}, 1))
	s.peer.SetBook(ack.Book)
	cl, err := core.NewMember(s.coreConfig(0), ack.Index, nil, s.peer)
	if err != nil {
		return err
	}
	s.cl = cl
	s.wireCallbacks()
	pid, contact := ack.Pid, ack.Contact
	s.peer.Do(func() { cl.JoinRemote(pid, contact) })
	return nil
}

// startRestore rebuilds the member from a fail-stop snapshot: same index,
// same process IDs, restored DHT fragment, wave buffers and stack
// combiner residual, next boot epoch. Journaled client operations the
// snapshot does not cover are re-submitted under their original request
// IDs — buffered ones before the transport starts, the rest when their
// node re-fires the wave boundary they followed — so the re-executed
// interval reproduces the crashed incarnation's waves and every
// mid-flight operation completes exactly once. With Config.Join set it
// announces its current address through the seed's rejoin handshake so
// the cluster re-routes to it; without, it relies on the snapshotted
// address book still being accurate (a restart on the same addresses,
// e.g. the seed member itself).
//
//skueue:snapshot-restore Server
//skueue:owned-by startup -- runs before the transport starts; no other goroutine can see the server yet
func (s *Server) startRestore(disk *diskSnapshot, journalRecs []journalRecord) error {
	s.cfg.Seed = disk.Seed
	s.cfg.UpdateThreshold = disk.UpdateThreshold
	s.adoptMode(disk.Mode, disk.HeapLevels)
	s.procsTotal = disk.Procs
	s.peer = tcp.New(s.peerOptions(disk.Member.Index, disk.Pids, disk.Peer.Boot+1))
	s.peer.RestoreState(disk.Peer)
	s.peer.SetBook(disk.Book)
	// The snapshotted book carries our pre-crash address; re-merge the
	// current one so the entry we gossip is the live listener.
	s.peer.AddMember(s.peer.Me())
	cl, err := core.RestoreMember(s.coreConfig(disk.Procs), disk.Member, s.peer)
	if err != nil {
		return err
	}
	s.cl = cl
	s.nextIndex, s.nextPid = disk.NextIndex, disk.NextPid
	s.wireCallbacks()

	// Re-submit journaled operations past the snapshot's cut. The runner
	// has not started, so direct cluster access is safe here.
	waves := make(map[transport.NodeID]int64, len(disk.Member.Nodes))
	for _, img := range disk.Member.Nodes {
		waves[img.Self.ID] = img.WaveSeq
	}
	s.plan = buildReplayPlan(journalRecs, disk.Member.ReqSeq, waves)
	for _, e := range disk.Peer.Recv {
		if e.Index != disk.Member.Index {
			s.replayPeers = append(s.replayPeers, e.Index)
		}
	}
	s.restoreSessions(disk.Sessions, journalRecs)
	// Skip the request counter past EVERY journaled identity first —
	// including operations held back for their wave boundaries — so a
	// client submitting before the held groups drain can never be issued
	// a request ID a journaled operation still owns. The lease ceilings
	// (journal records and the snapshot's capture) go further: past every
	// sequence the crashed incarnation could have issued at all, durable
	// record or not.
	for _, rec := range journalRecs {
		switch rec.Kind {
		case recOp:
			s.cl.AdvanceReqSeq(core.ReqIDSeq(rec.ReqID))
		case recLease:
			s.cl.AdvanceReqSeq(rec.Ceiling)
		}
	}
	s.cl.AdvanceReqSeq(disk.SeqCeiling)
	for _, rec := range s.plan.immediate {
		s.cl.Resubmit(rec.Node, rec.ReqID, rec.IsDeq, rec.Pri, rec.Value)
	}
	if n := len(s.plan.immediate); n > 0 || s.plan.pending() > 0 {
		s.logf("server[%d]: re-submitted %d journaled operations, %d held for wave boundaries",
			disk.Member.Index, n, s.plan.pending())
	}

	if s.cfg.Join != "" && disk.Member.Index != 0 {
		ack, err := s.askSeed(wire.CliJoin{
			Addr:   s.lis.Addr().String(),
			Rejoin: true,
			Index:  disk.Member.Index,
			Pids:   disk.Pids,
		})
		if err != nil {
			return fmt.Errorf("server: announcing restart: %w", err)
		}
		s.peer.SetBook(ack.Book)
		s.peer.AddMember(s.peer.Me())
	}
	s.logf("server[%d]: restored from snapshot (boot %d, %d completions)",
		disk.Member.Index, disk.Peer.Boot+1, len(disk.Member.History))
	return nil
}

// restoreSessions rebuilds the durable session table from the snapshot's
// session images plus the journal records past its cut: session records
// re-create sessions the snapshot predates, op records re-register the
// in-flight dedupe entries, and done records retire ops into the
// retention map (the crashed incarnation staged — and possibly released
// — those outcomes; a resuming client must receive the identical frame,
// not a re-execution). Runs before the transport starts, so no locking
// is needed; restored sessions count as journaled (their record is the
// snapshot itself or the surviving journal prefix).
//
//skueue:snapshot-restore durSession
//skueue:owned-by startup -- runs before the transport starts; no other goroutine can see the session table yet
func (s *Server) restoreSessions(images []sessionImage, recs []journalRecord) {
	ref := make(map[uint64]sessRef) // reqID -> session/cliSeq, for done records
	ensure := func(id string) *durSession {
		if sd := s.sessions[id]; sd != nil {
			return sd
		}
		sd := newDurSession(id)
		sd.journaled = true
		s.sessions[id] = sd
		return sd
	}
	for _, img := range images {
		sd := ensure(img.ID)
		sd.acked = img.Acked
		for cliSeq, reqID := range img.Ops {
			sd.ops[cliSeq] = reqID
			ref[reqID] = sessRef{sd, cliSeq}
		}
		for cliSeq, done := range img.Outcomes {
			sd.outcomes[cliSeq] = done
		}
	}
	for _, rec := range recs {
		switch rec.Kind {
		case recSession:
			ensure(rec.Sess)
		case recOp:
			if rec.Sess == "" {
				continue
			}
			sd := ensure(rec.Sess)
			sd.ops[rec.CliSeq] = rec.ReqID
			ref[rec.ReqID] = sessRef{sd, rec.CliSeq}
		case recDone:
			r, ok := ref[rec.ReqID]
			if !ok {
				continue // ephemeral operation
			}
			delete(r.sd.ops, r.cliSeq)
			r.sd.outcomes[r.cliSeq] = rec.Done
		}
	}
	sessions, retained, inflight := 0, 0, 0
	for _, sd := range s.sessions {
		for cliSeq := range sd.outcomes {
			if cliSeq <= sd.acked {
				delete(sd.outcomes, cliSeq)
			}
		}
		for cliSeq, reqID := range sd.ops {
			if _, done := sd.outcomes[cliSeq]; done || cliSeq <= sd.acked {
				delete(sd.ops, cliSeq)
				continue
			}
			s.sessRefs[reqID] = sessRef{sd, cliSeq}
		}
		sessions++
		retained += len(sd.outcomes)
		inflight += len(sd.ops)
	}
	if sessions > 0 {
		s.logf("server[%d]: restored %d client sessions (%d retained outcomes, %d in flight)",
			s.peer.Me().Index, sessions, retained, inflight)
	}
}

func newDurSession(id string) *durSession {
	return &durSession{
		id:       id,
		ops:      make(map[uint64]uint64),
		outcomes: make(map[uint64]wire.CliDone),
	}
}

// ---- Fail-stop snapshots ----

// diskSnapshot is the on-disk image: one gob stream holding the cluster
// parameters, the member's core image and the transport receive cursors.
type diskSnapshot struct {
	Version         int
	Seed            int64
	Mode            string
	HeapLevels      int
	UpdateThreshold int
	Procs           int
	Pids            []int32
	NextIndex       int32
	NextPid         int32
	Member          *core.MemberSnapshot
	Peer            *tcp.PeerState
	Book            []wire.MemberInfo
	// SeqCeiling is the journal's pending sequence-lease ceiling at the
	// capture: a restart must advance the request counter past it even if
	// compaction dropped the lease records themselves (see journal.go,
	// "The sequence lease"). Zero in pre-lease snapshots.
	SeqCeiling uint64
	// Sessions are the durable client sessions at the capture — dedupe
	// tables, retained outcomes, cursors. Captured inside the same DoSync
	// as the journal cut, so an outcome staged before the cut (and hence
	// compacted away with the prefix) is always in here, and one staged
	// after it is always in the journal suffix: between them, restore
	// rebuilds retention without a gap.
	Sessions []sessionImage
}

const snapshotFile = "snapshot.gob"

// loadSnapshot reads the member snapshot from dir; (nil, nil) when none
// exists yet (first boot). It is the load half of the restore path
// (startRestore consumes what it validates).
//
//skueue:snapshot-restore Server
func loadSnapshot(dir string) (*diskSnapshot, error) {
	// The captured link frames carry core protocol messages in their
	// interface-typed payloads; the decoder needs them registered before
	// any member of this process has constructed a cluster.
	core.RegisterWireTypes()
	f, err := os.Open(filepath.Join(dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var disk diskSnapshot
	if err := gob.NewDecoder(f).Decode(&disk); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", f.Name(), err)
	}
	if disk.Version != 1 || disk.Member == nil || disk.Peer == nil {
		return nil, fmt.Errorf("%s: unsupported or incomplete snapshot", f.Name())
	}
	return &disk, nil
}

// writeSnapshot persists atomically: temp file, fsync, rename, directory
// fsync. A crash mid-write leaves the previous snapshot intact.
//
// Regression note: the directory fsync after the rename is load-bearing.
// Fsyncing only the temp file makes the CONTENT durable, but the rename
// lives in the directory — after a machine crash the directory entry can
// still point at the previous snapshot even though acknowledgments
// covering the new one were already released to peers, which would lose
// the frames between the two cursors for good. Snapshot durability (and
// therefore ReleaseAcks) requires the directory entry on stable storage.
func writeSnapshot(dir string, disk *diskSnapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sweepStaleTemps(dir, nil)
	f, err := os.CreateTemp(dir, snapshotFile+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := gob.NewEncoder(f).Encode(disk); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// sweepStaleTemps removes CreateTemp leftovers (snapshot.gob.tmp-*,
// ops.journal.tmp-*) that a crash mid-write strands in the state
// directory; without the sweep they accumulate forever. The currently
// live snapshot and journal are never matched by the patterns.
func sweepStaleTemps(dir string, logf func(string, ...any)) {
	for _, pattern := range []string{snapshotFile + ".tmp-*", journalFile + ".tmp-*"} {
		stale, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			continue
		}
		for _, path := range stale {
			if err := os.Remove(path); err == nil && logf != nil {
				logf("server: removed stale temp file %s", path)
			}
		}
	}
}

// SnapshotNow captures and durably writes one member snapshot, then
// releases the acknowledgments it covers (the write-ahead step: peers may
// prune their send buffers only once the snapshot is on disk). It returns
// core.ErrNotQuiescent — and changes nothing — while churn is mid-flight;
// the periodic loop just retries next interval.
//
//skueue:snapshot-capture Server
func (s *Server) SnapshotNow() error {
	if s.cfg.StateDir == "" {
		return errors.New("server: no state dir configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	var snap *core.MemberSnapshot
	var ps *tcp.PeerState
	var journalOff int64
	var seqCeiling uint64
	var sessImgs []sessionImage
	var err error
	s.peer.DoSync(func() {
		snap, err = s.cl.SnapshotMember()
		if err != nil {
			return
		}
		if s.sendsParked > 0 {
			// Frames held by the WAL-before-send gate are in no link's
			// replay buffer yet; a cut here would strand them across a
			// crash. They clear within a group-commit window — leave ps
			// nil and retry next interval.
			return
		}
		ps = s.peer.CaptureState()
		if s.journal != nil {
			// The logical journal length at the cut: every record before
			// it — including records still staged for group commit — is
			// covered by this snapshot (staging runs on this goroutine).
			journalOff = s.journal.offset()
			seqCeiling = s.journal.leaseCeiling()
		}
		// Session tables move only on this goroutine (submit/resolve) or
		// under s.mu (cursor advances from connection handlers), so the
		// capture here is consistent with the journal cut above: every
		// outcome whose done record precedes the cut is already in its
		// session's retention map.
		sessImgs = s.captureSessions()
	})
	if err != nil {
		return err
	}
	if snap == nil {
		return fmt.Errorf("%w: shutting down", core.ErrNotQuiescent)
	}
	if ps == nil {
		// Frames parked for unknown pids or local deliveries mid-flight in
		// the task queue; both clear within a drain — retry next interval.
		return fmt.Errorf("%w: transport has frames in flight", core.ErrNotQuiescent)
	}
	s.mu.Lock()
	nextIndex, nextPid := s.nextIndex, s.nextPid
	s.mu.Unlock()
	disk := &diskSnapshot{
		Version:         1,
		Seed:            s.cfg.Seed,
		Mode:            s.modeString(),
		HeapLevels:      s.cfg.HeapLevels,
		UpdateThreshold: s.cfg.UpdateThreshold,
		Procs:           s.procsTotal,
		Pids:            s.peer.Me().Pids,
		NextIndex:       nextIndex,
		NextPid:         nextPid,
		Member:          snap,
		Peer:            ps,
		Book:            s.peer.Book(),
		SeqCeiling:      seqCeiling,
		Sessions:        sessImgs,
	}
	if err := writeSnapshot(s.cfg.StateDir, disk); err != nil {
		return err
	}
	s.peer.ReleaseAcks(ps.Recv)
	s.lastSnapStats = snap.Stats()
	s.snapCount++
	if s.journal != nil {
		// The snapshot now covers every journal record before the
		// captured boundary: drop that prefix.
		if err := s.journal.truncatePrefix(journalOff); err != nil {
			s.logf("server[%d]: compacting operation journal: %v", s.peer.Me().Index, err)
		}
	}
	return nil
}

// captureSessions deep-copies the durable session table for a snapshot.
// Runs inside the capture's DoSync; s.mu still guards the maps against
// cursor advances racing in from connection handlers.
//
//skueue:snapshot-capture durSession
func (s *Server) captureSessions() []sessionImage {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) == 0 {
		return nil
	}
	out := make([]sessionImage, 0, len(s.sessions))
	for _, sd := range s.sessions {
		img := sessionImage{
			ID:       sd.id,
			Acked:    sd.acked,
			Ops:      make(map[uint64]uint64, len(sd.ops)),
			Outcomes: make(map[uint64]wire.CliDone, len(sd.outcomes)),
		}
		for cliSeq, reqID := range sd.ops {
			img.Ops[cliSeq] = reqID
		}
		for cliSeq, done := range sd.outcomes {
			img.Outcomes[cliSeq] = done
		}
		out = append(out, img)
	}
	return out
}

// SnapshotInfo reports how many snapshots have been durably written and
// the in-flight operation summary of the newest one. Tests use it to
// arrange a kill with a non-empty combiner residual on disk.
func (s *Server) SnapshotInfo() (count int64, stats core.SnapshotStats) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapCount, s.lastSnapStats
}

func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	every := s.cfg.SnapshotEvery
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.snapQuit:
			return
		case <-t.C:
			if err := s.SnapshotNow(); err != nil && !errors.Is(err, core.ErrNotQuiescent) {
				s.logf("server[%d]: snapshot failed: %v", s.peer.Me().Index, err)
			}
		}
	}
}

// HasAnchor reports whether this member currently hosts the anchor node
// (tests pick restart victims with it).
func (s *Server) HasAnchor() bool {
	var has bool
	s.peer.DoSync(func() { has = s.cl.AnchorNode() != nil })
	return has
}

// Diagnose reports which local nodes are stalled waiting for wave
// contributions (see core.Cluster.Diagnose) — the first tool to reach for
// when a networked deployment wedges.
func (s *Server) Diagnose() []string {
	var out []string
	s.peer.DoSync(func() { out = s.cl.Diagnose() })
	return out
}

// wireCallbacks connects completion and ack events to client waiters,
// and wave fires to the operation journal. All callbacks run on the
// transport's runner goroutine.
func (s *Server) wireCallbacks() {
	s.cl.SetLogf(s.logf)
	if s.journal != nil {
		s.cl.SetOnFire(func(node transport.NodeID, wave int64) {
			s.journal.noteFire(node, wave)
			if s.plan != nil {
				for _, rec := range s.plan.take(node, wave) {
					s.cl.Resubmit(rec.Node, rec.ReqID, rec.IsDeq, rec.Pri, rec.Value)
				}
			}
		})
	}
	myTag := uint64(s.peer.Me().Index + 1)
	s.cl.SetOnComplete(func(c seqcheck.Completion) {
		if core.ReqIDMember(c.ReqID) != myTag {
			return // recorded here, issued by another member
		}
		if c.Kind == seqcheck.Enqueue {
			// Local enqueue stored locally, or combined stack push: the
			// put-ack may never come (it does not for combined pairs), so
			// resolve on the completion itself.
			s.resolve(c.ReqID, wire.CliDone{Rounds: c.Done - c.Born, Rank: c.Value})
			return
		}
		s.resolve(c.ReqID, wire.CliDone{
			Bottom: c.Bottom,
			Value:  c.Blob,
			Rounds: c.Done - c.Born,
			Rank:   c.Value,
		})
	})
	s.cl.SetOnPutAck(func(reqID uint64) {
		// A bare put-ack does not know its serialization rank; session
		// rank tracking skips NoValue.
		s.resolve(reqID, wire.CliDone{Rank: seqcheck.NoValue})
	})
}

// resolve completes the waiter for reqID, if any, filling session
// bookkeeping into the prepared response; with a state directory the
// outcome is journaled — durably — before the CliDone frame is released:
// the frame is parked on the journal's release queue and goes out on the
// journal writer goroutine once the fsync covering the outcome record
// returns, so a confirmed result always survives a crash of this member.
// Divergence auditing stays here on the runner: outcomes journaled by the
// crashed incarnation were released only after their sync, so anything in
// plan.outcomes was client-visible and must be reproduced. Completions
// with no waiter belong to an orphaned operation (its op record never
// became durable — see journalOpFailed) or fall through to the early hook
// of an inject call in progress. Runs on the runner goroutine.
func (s *Server) resolve(reqID uint64, done wire.CliDone) {
	done.ReqID = reqID
	if s.plan != nil {
		// Divergence audit: a re-executed operation must reach the same
		// client-visible outcome the crashed incarnation released — same
		// bottom-ness AND same value bytes.
		if prev, ok := s.plan.outcomes[reqID]; ok {
			delete(s.plan.outcomes, reqID)
			if prev.Bottom != done.Bottom || !bytes.Equal(prev.Value, done.Value) || prev.Err != done.Err {
				s.logf("server[%d]: DIVERGENT replay outcome for op %d: released (bottom=%v value=%dB err=%q), re-executed (bottom=%v value=%dB err=%q)",
					s.peer.Me().Index, reqID,
					prev.Bottom, len(prev.Value), prev.Err,
					done.Bottom, len(done.Value), done.Err)
			}
		}
	}
	s.mu.Lock()
	if ref, isSess := s.sessRefs[reqID]; isSess {
		// Session operation: retire it into the session's retention map at
		// STAGING time — under s.mu, on this (runner) goroutine — so a
		// snapshot capture is always consistent with its journal cut (see
		// diskSnapshot.Sessions). The parked release only delivers; a
		// client that already acked past the sequence (it treated a
		// give-up notification as final) gets nothing retained.
		sd := ref.sd
		delete(s.sessRefs, reqID)
		delete(sd.ops, ref.cliSeq)
		done.Seq = ref.cliSeq
		stale := ref.cliSeq <= sd.acked
		if !stale {
			sd.outcomes[ref.cliSeq] = done
		}
		s.mu.Unlock()
		if stale {
			return
		}
		if s.journal != nil {
			release := s.releaseSessionDone(sd, ref.cliSeq, reqID)
			if s.deferring {
				// Inside an inject call: park until the injected op's
				// record is staged ahead of this outcome.
				s.deferredDones = append(s.deferredDones, deferredDone{reqID, done, release})
				return
			}
			s.journal.appendDone(reqID, done, release)
			return
		}
		s.deliverSession(sd, done)
		return
	}
	w, ok := s.waiters[reqID]
	if ok {
		delete(s.waiters, reqID)
	}
	orphan := false
	if !ok && s.orphans[reqID] {
		delete(s.orphans, reqID)
		s.orphanResolved++
		orphan = true
	}
	s.mu.Unlock()
	if ok {
		done.Seq = w.seq
		if s.journal != nil {
			release := s.releaseDone(w.sess, w.seq, reqID, done)
			if s.deferring {
				// Inside an inject call: park until the injected op's
				// record is staged ahead of this outcome.
				s.deferredDones = append(s.deferredDones, deferredDone{reqID, done, release})
				return
			}
			s.journal.appendDone(reqID, done, release)
			return
		}
		w.sess.send(done)
		return
	}
	if orphan {
		// The op record never became durable and the client was already
		// answered indeterminate, but the operation executed anyway: log
		// and count it, and journal the outcome best-effort, so the
		// divergence audit and SnapshotInfo stay truthful about what was
		// actually in flight.
		s.logf("server[%d]: orphaned op %d completed after its journal append failed (bottom=%v value=%dB err=%q)",
			s.peer.Me().Index, reqID, done.Bottom, len(done.Value), done.Err)
		if s.journal != nil {
			s.journal.appendDone(reqID, done, nil)
		}
		return
	}
	if s.onEarly != nil {
		s.onEarly(reqID, done)
	}
}

// releaseDone builds the parked release of one journaled outcome: on a
// clean sync the prepared CliDone goes out, on a journal failure the
// client gets an indeterminate error instead — confirming an outcome the
// restarted member would not remember is the one forbidden move. Runs on
// the journal writer goroutine (inline on the runner with group commit
// disabled).
//
//skueue:journaled-release
func (s *Server) releaseDone(sess *session, seq, reqID uint64, done wire.CliDone) journalRelease {
	return func(err error) {
		if err != nil {
			s.logf("server[%d]: journaling completion of op %d: %v", s.peer.Me().Index, reqID, err)
			done = wire.CliDone{
				Seq: seq, ReqID: reqID,
				Err: fmt.Sprintf("operation outcome could not be journaled: %v", err),
			}
		}
		sess.send(done)
	}
}

// releaseSessionDone builds the parked release of a session operation's
// journaled outcome. On a clean sync the outcome retained at staging time
// (resolve) is delivered to whichever connection is attached NOW — the
// client may have reconnected since the record was staged. On a journal
// failure the retained outcome is withdrawn (a restarted member would not
// remember it, so confirming it is forbidden) and the attached client, if
// any, is told the operation is indeterminate. Runs on the journal writer
// goroutine (inline on the runner with group commit disabled).
//
//skueue:journaled-release
func (s *Server) releaseSessionDone(sd *durSession, cliSeq, reqID uint64) journalRelease {
	return func(err error) {
		s.mu.Lock()
		done, retained := sd.outcomes[cliSeq]
		if err != nil && retained && done.ReqID == reqID {
			delete(sd.outcomes, cliSeq)
			retained = false
		}
		cur := sd.cur
		s.mu.Unlock()
		if err != nil {
			s.logf("server[%d]: journaling session %q outcome %d: %v",
				s.peer.Me().Index, sd.id, cliSeq, err)
			if cur != nil {
				cur.send(wire.CliDone{
					Seq: cliSeq, ReqID: reqID, Unreachable: true,
					Err: fmt.Sprintf("operation outcome could not be journaled: %v", err),
				})
			}
			return
		}
		if retained && cur != nil {
			cur.send(done)
		}
	}
}

// deliverSession hands a retained session outcome to the currently
// attached connection, if any; a detached session just keeps the outcome
// for redelivery at the next resume. Only called where no journal gates
// the frame (journal-less members and redelivery of already-synced
// outcomes).
//
//skueue:journaled-release
func (s *Server) deliverSession(sd *durSession, done wire.CliDone) {
	s.mu.Lock()
	cur := sd.cur
	s.mu.Unlock()
	if cur != nil {
		cur.send(done)
	}
}

// redeliverRetained replays the session's undelivered retained outcomes to
// a freshly attached connection, in per-session sequence order. The
// journal barrier first: outcomes are retained at STAGING time, so an
// entry may not have synced yet — the barrier waits out the writer (any
// entry whose sync failed is withdrawn by its release before the barrier
// returns, and its parked release answered the failure). The client
// dedupes by sequence, so racing a parked release delivering the same
// frame is harmless. Runs on the connection's reader goroutine.
//
//skueue:journaled-release
func (s *Server) redeliverRetained(sd *durSession, sess *session) {
	if s.journal != nil {
		if err := s.journal.barrier(); err != nil {
			s.logf("server[%d]: session %q resume barrier: %v", s.peer.Me().Index, sd.id, err)
		}
	}
	s.mu.Lock()
	pending := make([]wire.CliDone, 0, len(sd.outcomes))
	for seq, done := range sd.outcomes {
		if seq > sd.acked {
			pending = append(pending, done)
		}
	}
	s.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool { return pending[i].Seq < pending[j].Seq })
	for _, done := range pending {
		sess.send(done)
	}
}

// sessionAck advances the session's delivered-outcome cursor: every
// retained outcome at or below ack has reached the client (outcome
// delivery is cumulative on the client side), so the member can stop
// retaining them. Piggybacked on every CliEnqueue/CliDequeue and sent
// standalone as CliSessionAck when the client has nothing else to say.
func (s *Server) sessionAck(sd *durSession, ack uint64) {
	if ack == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ack <= sd.acked {
		return
	}
	sd.acked = ack
	for seq := range sd.outcomes {
		if seq <= ack {
			delete(sd.outcomes, seq)
		}
	}
}

// ensureSessionRecord stages the session's own journal record ahead of
// its first op record, so a restart knows the session existed even before
// any outcome was retained in a snapshot. Idempotent; restored sessions
// count as already journaled. Runner goroutine.
func (s *Server) ensureSessionRecord(sd *durSession) {
	s.mu.Lock()
	stage := !sd.journaled
	sd.journaled = true
	s.mu.Unlock()
	if stage {
		s.journal.appendSession(sd.id)
	}
}

// sessionOpFailed is journalOpFailed for session operations: the op
// record's append failed after injection, so the client is answered
// indeterminate and the request ID becomes an orphan (its eventual
// completion is logged and counted by resolve, not silently dropped).
// Runs on the journal writer goroutine.
func (s *Server) sessionOpFailed(sd *durSession, cliSeq, reqID uint64, err error) {
	s.mu.Lock()
	_, ok := s.sessRefs[reqID]
	if ok {
		delete(s.sessRefs, reqID)
		delete(sd.ops, cliSeq)
		s.orphans[reqID] = true
		s.orphanFailed++
	}
	cur := sd.cur
	s.mu.Unlock()
	if !ok {
		return
	}
	s.logf("server[%d]: journaling session %q op %d: %v", s.peer.Me().Index, sd.id, reqID, err)
	if cur != nil {
		cur.send(wire.CliDone{
			Seq: cliSeq, ReqID: reqID, Unreachable: true,
			Err: fmt.Sprintf("operation could not be journaled: %v", err),
		})
	}
}

// attachSession binds an arriving connection to its durable session,
// creating the session unless the Hello asked for attach-only resume
// (SessionResume with an ID this member does not hold returns nil — the
// client is probing for the owner and must not strand a fresh empty
// session here). A previously attached connection is displaced and
// closed: the ID names one logical client, and its newest connection
// wins. The Hello's cursor is applied before any redelivery.
func (s *Server) attachSession(hello wire.Hello, sess *session) (*durSession, bool) {
	s.mu.Lock()
	sd, known := s.sessions[hello.Session]
	if !known {
		if hello.SessionResume {
			s.mu.Unlock()
			return nil, false
		}
		sd = newDurSession(hello.Session)
		s.sessions[hello.Session] = sd
	}
	prev := sd.cur
	sd.cur = sess
	s.mu.Unlock()
	if prev != nil && prev != sess {
		prev.kill.Do(func() { prev.conn.Close() })
	}
	s.sessionAck(sd, hello.SessionAck)
	return sd, known
}

// sessionHighSeq returns the session's operation-sequence high-water mark
// (HelloAck.SessionSeq): the acked cursor is a floor — every retained
// outcome below it has been discarded — and in-flight ops or retained
// outcomes can sit above it. A resuming client without its own counter
// numbers fresh operations past this mark; anything at or below it would
// be deduplicated as dead history.
func (s *Server) sessionHighSeq(sd *durSession) uint64 {
	if sd == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	high := sd.acked
	for seq := range sd.ops {
		if seq > high {
			high = seq
		}
	}
	for seq := range sd.outcomes {
		if seq > high {
			high = seq
		}
	}
	return high
}

// detachSession clears the session's attached connection when its reader
// exits — unless a newer connection already displaced this one, in which
// case the session is the newcomer's. The session itself, with its
// in-flight operations and retained outcomes, stays until its client
// resumes (or forever: sessions are only bounded by their clients' acks).
func (s *Server) detachSession(sd *durSession, sess *session) {
	if sd == nil {
		return
	}
	s.mu.Lock()
	if sd.cur == sess {
		sd.cur = nil
	}
	s.mu.Unlock()
}

// journalOpFailed handles a failed op-record append AFTER the operation
// was injected: the waiter, if still registered, is answered with an
// indeterminate error, and the request ID is remembered as an orphan so
// the completion that eventually surfaces at resolve is logged, counted
// and best-effort journaled rather than silently dropped. If the waiter
// is already gone the outcome path owns the answer (its parked release
// reports the same journal failure) and nothing is owed here. Runs on the
// journal writer goroutine (inline on the runner with group commit
// disabled).
func (s *Server) journalOpFailed(reqID uint64, err error) {
	s.mu.Lock()
	w, ok := s.waiters[reqID]
	if ok {
		delete(s.waiters, reqID)
		s.orphans[reqID] = true
		s.orphanFailed++
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	s.logf("server[%d]: journaling op %d: %v", s.peer.Me().Index, reqID, err)
	w.sess.send(wire.CliDone{
		Seq: w.seq, ReqID: reqID,
		Err: fmt.Sprintf("operation could not be journaled: %v", err),
	})
}

// OrphanInfo reports how many operations were injected but never
// journaled (their clients were answered indeterminate), and how many of
// those later completed anyway. Non-zero numbers mean the journal failed
// at some point; the completions were logged and counted rather than
// silently dropped.
func (s *Server) OrphanInfo() (failed, resolved int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.orphanFailed, s.orphanResolved
}

// pickClient returns the local node to inject the next request at,
// round-robining over the member's live local processes.
func (s *Server) pickClient() (transport.NodeID, error) {
	local := s.cl.LocalProcs()
	if len(local) == 0 {
		return transport.None, errors.New("no live local process")
	}
	s.mu.Lock()
	idx := local[s.rr%len(local)]
	s.rr++
	s.mu.Unlock()
	return s.cl.Client(idx), nil
}

// ---- Listener ----

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, nc)
				s.mu.Unlock()
			}()
			s.handleConn(wire.NewConn(nc))
		}()
	}
}

func (s *Server) handleConn(conn *wire.Conn) {
	v, err := conn.Read()
	if err != nil {
		conn.Close()
		return
	}
	hello, ok := v.(wire.Hello)
	if !ok {
		s.logf("server[%d]: first frame was %T, closing", s.cfg.Index, v)
		conn.Close()
		return
	}
	switch hello.Kind {
	case "peer":
		s.peer.AcceptPeer(conn, hello) // returns when the link closes
	case "client":
		s.serveClient(conn, hello)
	default:
		s.logf("server[%d]: unknown hello kind %q", s.cfg.Index, hello.Kind)
		conn.Close()
	}
}

func (s *Server) serveClient(conn *wire.Conn, hello wire.Hello) {
	// The buffer absorbs completion bursts (one wave can resolve thousands
	// of async operations back-to-back); only a client that stopped
	// reading altogether fills it, and such a client is disconnected
	// rather than allowed to block the runner (see session.send).
	sess := &session{conn: conn, out: make(chan any, 1<<14), quit: make(chan struct{})}
	s.mu.Lock()
	s.cliConns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cliConns, conn)
		s.mu.Unlock()
	}()
	defer s.dropSessionWaiters(sess)
	defer close(sess.quit)
	defer conn.Close()

	var sd *durSession
	resumed := false
	var sessSeq uint64
	if hello.Session != "" {
		sd, resumed = s.attachSession(hello, sess)
		defer s.detachSession(sd, sess)
		sessSeq = s.sessionHighSeq(sd)
	}
	if err := conn.Write(wire.HelloAck{
		Book: s.peer.Book(), Mode: s.modeString(), HeapLevels: int32(s.cfg.HeapLevels),
		Index:          s.peer.Me().Index,
		SessionResumed: resumed, SessionSeq: sessSeq,
	}); err != nil {
		return
	}
	if hello.Session != "" && hello.SessionResume && !resumed {
		// Attach-only resume of a session this member does not hold: the
		// ack already said so; the client re-locates the owner through the
		// book. Creating an empty session here would strand the real one.
		return
	}
	// Writer: responses and completion notifications.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case v := <-sess.out:
				if err := conn.Write(v); err != nil {
					return
				}
			case <-sess.quit:
				return
			}
		}
	}()
	if sd != nil {
		// Outcomes completed while the client was away go out before any
		// new traffic; runs a journal barrier so nothing unsynced leaves.
		s.redeliverRetained(sd, sess)
	}

	for {
		v, err := conn.Read()
		if err != nil {
			return
		}
		switch m := v.(type) {
		case wire.CliEnqueue:
			if sd != nil {
				s.sessionAck(sd, m.Ack)
			}
			s.submit(sess, sd, m.Seq, true, m.Pri, m.PriOp, m.Value)
		case wire.CliDequeue:
			if sd != nil {
				s.sessionAck(sd, m.Ack)
			}
			s.submit(sess, sd, m.Seq, false, 0, m.PriOp, nil)
		case wire.CliSessionAck:
			if sd != nil {
				s.sessionAck(sd, m.Ack)
			}
		case wire.CliHistory:
			var ops []seqcheck.Completion
			s.peer.DoSync(func() {
				ops = append(ops, s.cl.History().Ops...)
			})
			sess.send(wire.CliHistoryResp{Ops: ops})
		case wire.CliJoin:
			sess.send(s.admit(m))
		default:
			s.logf("server[%d]: unexpected client frame %T", s.cfg.Index, v)
			return
		}
	}
}

// submit injects one client operation on the runner goroutine. The waiter
// is registered after the inject call returns the request ID; completions
// also run on the runner, so the only thing that can beat the
// registration is a completion firing synchronously inside the inject
// itself (a locally combined stack pair) — the early hook catches those
// and answers from the stash. The runner goroutine serializes the whole
// window, so it cannot interleave with other requests.
//
// With a state directory, the operation's journal record is STAGED under
// its durable request ID before submit returns — the group-commit writer
// makes it durable off the runner — and every CliDone for it is parked on
// the journal's release queue behind its own outcome record, so nothing
// client-visible escapes before the covering fsync (journal.go). The
// combined-pair answer produced inside the inject call takes the same
// parked path. A crash after the op record synced re-submits the
// operation on restart; a crash before it loses an operation no client
// was ever answered for.
func (s *Server) submit(sess *session, sd *durSession, seq uint64, enq bool, pri int32, priOp bool, value []byte) {
	s.peer.Do(func() {
		if priOp != (s.mode == batch.Heap) {
			// Mode police: a priority operation on a queue/stack cluster
			// (or a plain one on a heap cluster) never injects. The
			// rejection is deterministic — it depends only on the immutable
			// cluster mode — so a session replay re-deriving it is safe and
			// it needs no journaled identity.
			sess.send(wire.CliDone{
				Seq: seq, WrongMode: true,
				Err: fmt.Sprintf("operation flavour does not match cluster mode %q", s.modeString()),
			})
			return
		}
		if priOp && enq && (pri < 0 || int(pri) >= s.cl.HeapLevels()) {
			sess.send(wire.CliDone{
				Seq: seq,
				Err: fmt.Sprintf("priority %d outside [0,%d)", pri, s.cl.HeapLevels()),
			})
			return
		}
		if sd != nil {
			// Session dedupe before touching the cluster: a re-presented
			// operation (the client reconnected and replayed its unresolved
			// window) must not inject twice.
			s.mu.Lock()
			if done, ok := sd.outcomes[seq]; ok {
				s.mu.Unlock()
				// Already completed and retained: redeliver. Behind a
				// journal the frame parks behind a duplicate done record
				// (restore collapses duplicates idempotently), so even a
				// redelivery waits for a covering fsync.
				if s.journal != nil {
					s.journal.appendDone(done.ReqID, done, s.releaseSessionDone(sd, seq, done.ReqID))
					return
				}
				s.deliverSession(sd, done)
				return
			}
			if seq <= sd.acked {
				s.mu.Unlock()
				return // delivered and acknowledged; the client moved on
			}
			if _, inFlight := sd.ops[seq]; inFlight {
				s.mu.Unlock()
				return // already executing; resolve will deliver it
			}
			s.mu.Unlock()
		}
		if s.plan != nil && !s.replayConverged {
			// Restart replay gate: until every pre-crash sender's replay
			// fence arrived, the core applied its parked replayed serves,
			// and the journal plan re-submitted its held operations, a
			// fresh operation could join a wave whose serve the crashed
			// incarnation already consumed — the shape guard would refuse
			// the replayed serve and wedge the member. Park the submission
			// and retry; the dedupe above makes re-entry harmless, and a
			// client that reconnected fast sees only added latency, never
			// a lost operation.
			if !s.peer.ReplayFenced(s.replayPeers) ||
				s.cl.HeldReplayServes() > 0 || s.plan.pending() > 0 {
				time.AfterFunc(2*time.Millisecond, func() {
					s.submit(sess, sd, seq, enq, pri, priOp, value)
				})
				return
			}
			s.replayConverged = true
			s.logf("server[%d]: restart replay converged; admitting fresh client operations",
				s.peer.Me().Index)
		}
		node, err := s.pickClient()
		if err != nil {
			sess.send(wire.CliDone{Seq: seq, Err: err.Error()})
			return
		}
		if s.journal != nil && !s.journal.coverSeq(s.cl.ReqSeq()+1) {
			// The next request ID is not covered by a durable lease
			// ceiling: issuing it could let a crash re-issue the same ID,
			// which peer dedupe would then swallow. Refuse BEFORE
			// injection — the operation never exists, so the client can
			// simply retry. Only reachable when the journal failed or
			// cannot sync a lease extension within half a span of
			// operations.
			sess.send(wire.CliDone{
				Seq: seq,
				Err: "operation refused: journal sequence lease is not durable; retry",
			})
			return
		}
		early := make(map[uint64]wire.CliDone, 1)
		s.onEarly = func(reqID uint64, done wire.CliDone) { early[reqID] = done }
		s.deferring = s.journal != nil
		var reqID uint64
		if enq {
			reqID = s.cl.EnqueuePriBlob(node, pri, value)
		} else {
			reqID = s.cl.Dequeue(node)
		}
		s.onEarly = nil
		s.deferring = false
		if sd != nil {
			// Session bookkeeping before any journal staging: the op
			// record's failure callback and the eventual resolve both find
			// the operation through sessRefs, and an early (combined-pair)
			// completion is replayed through resolve below, which needs the
			// ref registered.
			s.mu.Lock()
			sd.ops[seq] = reqID
			s.sessRefs[reqID] = sessRef{sd, seq}
			s.mu.Unlock()
			if s.journal == nil {
				if done, ok := early[reqID]; ok {
					s.resolve(reqID, done)
				}
				return
			}
			s.ensureSessionRecord(sd)
			if done, ok := early[reqID]; ok {
				// Combined pair answered inside the inject call: stage the
				// op record, then retire the outcome through resolve (which
				// retains it and parks the frame behind its done record).
				s.journal.appendOp(node, reqID, !enq, pri, value, sd.id, seq, nil)
				s.resolve(reqID, done)
				s.flushDeferred()
				return
			}
			s.journal.appendOp(node, reqID, !enq, pri, value, sd.id, seq, func(err error) {
				if err != nil {
					s.sessionOpFailed(sd, seq, reqID, err)
				}
			})
			s.flushDeferred()
			return
		}
		if s.journal == nil {
			if done, ok := early[reqID]; ok {
				done.Seq = seq
				done.ReqID = reqID
				sess.send(done)
				return
			}
			s.mu.Lock()
			s.waiters[reqID] = &waiter{sess: sess, seq: seq}
			s.mu.Unlock()
			return
		}
		if done, ok := early[reqID]; ok {
			// Combined pair answered inside the inject call: stage the op
			// record, then the outcome record, and park the frame behind
			// the latter. A journal failure answers indeterminate through
			// the parked release, so the op record needs no release of
			// its own.
			done.Seq = seq
			done.ReqID = reqID
			s.journal.appendOp(node, reqID, !enq, pri, value, "", 0, nil)
			s.journal.appendDone(reqID, done, s.releaseDone(sess, seq, reqID, done))
			s.flushDeferred()
			return
		}
		// Waiter before op record: the record's release can fire on the
		// journal writer as soon as it is staged, and a failed append
		// must find the waiter to answer it.
		s.mu.Lock()
		s.waiters[reqID] = &waiter{sess: sess, seq: seq}
		s.mu.Unlock()
		s.journal.appendOp(node, reqID, !enq, pri, value, "", 0, func(err error) {
			if err != nil {
				s.journalOpFailed(reqID, err)
			}
		})
		s.flushDeferred()
	})
}

// flushDeferred stages the partner completions parked during the inject
// call, now that the injected operation's own record precedes them in
// the batch: if any of these outcomes ever syncs and releases, the op
// that produced it is durable too. Runner goroutine.
func (s *Server) flushDeferred() {
	for _, d := range s.deferredDones {
		s.journal.appendDone(d.reqID, d.done, d.release)
	}
	s.deferredDones = s.deferredDones[:0]
}

// dropSessionWaiters forgets the in-flight operations of a finished
// session so long-lived servers do not leak one waiter per abandoned
// request. The operations themselves are already in flight and still
// take their turn in the serialization — exactly like an abandoned
// in-process call (see Client.Dequeue) — their results just have nobody
// left to deliver to.
func (s *Server) dropSessionWaiters(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, w := range s.waiters {
		if w.sess == sess {
			delete(s.waiters, id)
		}
	}
}

// CloseClientConns severs every connection currently serving the remote
// client protocol, sparing the member-to-member peer links. Chaos/test
// hook: it simulates a client-facing network partition without killing
// the member — durable sessions must detach, retain their outcomes, and
// redeliver on resume.
func (s *Server) CloseClientConns() {
	s.mu.Lock()
	conns := make([]*wire.Conn, 0, len(s.cliConns))
	for c := range s.cliConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// admit handles a CliJoin: only the seed member assigns member indices and
// process IDs, and it broadcasts the updated address book before
// answering, so every member can route to the newcomer by the time its
// JOIN requests start flowing. A rejoin (fail-stop restart) keeps the
// member's existing assignment and only re-broadcasts its address.
func (s *Server) admit(m wire.CliJoin) wire.CliJoinResp {
	if s.peer.Me().Index != 0 {
		return wire.CliJoinResp{Err: "join via the seed member (index 0)"}
	}
	if m.Rejoin {
		if m.Index == 0 {
			return wire.CliJoinResp{Err: "the seed member cannot rejoin through itself"}
		}
		s.logf("server[0]: member %d rejoining from %s after restart", m.Index, m.Addr)
		s.peer.AddMember(wire.MemberInfo{Index: m.Index, Addr: m.Addr, Pids: m.Pids})
		s.peer.BroadcastBook()
		return wire.CliJoinResp{
			Index: m.Index,
			Seed:  s.cfg.Seed, Mode: s.modeString(), HeapLevels: int32(s.cfg.HeapLevels),
			UpdateThreshold: s.cfg.UpdateThreshold,
			Book:            s.peer.Book(),
		}
	}
	s.mu.Lock()
	idx := s.nextIndex
	pid := s.nextPid
	s.nextIndex++
	s.nextPid++
	s.mu.Unlock()
	s.peer.AddMember(wire.MemberInfo{Index: idx, Addr: m.Addr, Pids: []int32{pid}})
	s.peer.BroadcastBook()
	return wire.CliJoinResp{
		Index: idx, Pid: pid,
		Seed: s.cfg.Seed, Mode: s.modeString(), HeapLevels: int32(s.cfg.HeapLevels),
		UpdateThreshold: s.cfg.UpdateThreshold,
		Book:            s.peer.Book(),
		Contact:         core.NodeIDForProcess(s.peer.Me().Pids[0], ldb.Middle),
	}
}
