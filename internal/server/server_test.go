package server_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"skueue"
	"skueue/internal/server"
)

// startCluster boots a members-process loopback cluster. Listeners are
// pre-bound so every member knows the full address list before any of
// them starts.
func startCluster(t *testing.T, members int, mode string) []*server.Server {
	t.Helper()
	lis := make([]net.Listener, members)
	addrs := make([]string, members)
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lis[i] = l
		addrs[i] = l.Addr().String()
	}
	srvs := make([]*server.Server, members)
	for i := range srvs {
		s, err := server.New(server.Config{
			Listener: lis[i],
			Seed:     42,
			Mode:     mode,
			Index:    i,
			Members:  addrs,
			Tick:     500 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		srvs[i] = s
		t.Cleanup(s.Close)
	}
	return srvs
}

// TestLoopbackClusterSequentialConsistency is the acceptance test of the
// networked deployment: a 3-member TCP cluster serves interleaved
// enqueues and dequeues from concurrent remote clients (two per member),
// every dequeued value must be one that some client enqueued, and the
// merged execution history must pass the Definition 1 checker.
func TestLoopbackClusterSequentialConsistency(t *testing.T) {
	srvs := startCluster(t, 3, "queue")

	const clientsPerMember = 2
	const opsPerClient = 24

	var mu sync.Mutex
	enqueued := make(map[string]bool)
	dequeued := make(map[string]bool)

	var wg sync.WaitGroup
	errs := make(chan error, len(srvs)*clientsPerMember)
	for m, s := range srvs {
		for k := 0; k < clientsPerMember; k++ {
			wg.Add(1)
			go func(member, cli int, addr string) {
				defer wg.Done()
				c, err := skueue.Open(skueue.WithRemote(addr))
				if err != nil {
					errs <- fmt.Errorf("client %d.%d: open: %w", member, cli, err)
					return
				}
				defer c.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				for i := 0; i < opsPerClient; i++ {
					if i%2 == 0 {
						v := fmt.Sprintf("v-%d.%d.%d", member, cli, i)
						if err := c.Enqueue(ctx, v); err != nil {
							errs <- fmt.Errorf("client %d.%d: enqueue %d: %w", member, cli, i, err)
							return
						}
						mu.Lock()
						enqueued[v] = true
						mu.Unlock()
					} else {
						v, ok, err := c.Dequeue(ctx)
						if err != nil {
							errs <- fmt.Errorf("client %d.%d: dequeue %d: %w", member, cli, i, err)
							return
						}
						if ok {
							s, isStr := v.(string)
							if !isStr {
								errs <- fmt.Errorf("client %d.%d: dequeued %T, want string", member, cli, v)
								return
							}
							mu.Lock()
							if dequeued[s] {
								errs <- fmt.Errorf("client %d.%d: value %q dequeued twice", member, cli, s)
								mu.Unlock()
								return
							}
							dequeued[s] = true
							mu.Unlock()
						}
					}
				}
			}(m, k, s.Addr())
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every dequeued value was enqueued by some client, across members.
	mu.Lock()
	for v := range dequeued {
		if !enqueued[v] {
			t.Errorf("dequeued %q was never enqueued", v)
		}
	}
	mu.Unlock()

	// Merge all member histories and verify Definition 1 end to end.
	c, err := skueue.Open(skueue.WithRemote(srvs[0].Addr()))
	if err != nil {
		t.Fatalf("checker client: %v", err)
	}
	defer c.Close()
	if err := c.Check(); err != nil {
		t.Fatalf("sequential consistency check failed: %v", err)
	}
	st := c.Stats()
	wantTotal := len(srvs) * clientsPerMember * opsPerClient
	if st.Total != wantTotal {
		t.Fatalf("merged history has %d completions, want %d", st.Total, wantTotal)
	}
}

// TestLoopbackClusterStackMode runs the same deployment with LIFO
// semantics, exercising tickets, the stage-4 wait and local combining
// over the network.
func TestLoopbackClusterStackMode(t *testing.T) {
	srvs := startCluster(t, 3, "stack")
	c, err := skueue.Open(skueue.WithRemote(srvs[1].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 8; i++ {
		if err := c.Push(ctx, i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, ok, err := c.Pop(ctx); err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := c.Check(); err != nil {
		t.Fatalf("stack check: %v", err)
	}
}

// TestJoinServer admits a fourth member into a running 3-member cluster
// through the seed handshake and the §IV-A JOIN protocol, then serves a
// client through the newcomer.
func TestJoinServer(t *testing.T) {
	srvs := startCluster(t, 3, "queue")

	joiner, err := server.New(server.Config{
		Addr: "127.0.0.1:0",
		Join: srvs[0].Addr(),
		Tick: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("joining server: %v", err)
	}
	t.Cleanup(joiner.Close)

	c, err := skueue.Open(skueue.WithRemote(joiner.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Enqueue(ctx, "via-joiner"); err != nil {
		t.Fatalf("enqueue via joiner: %v", err)
	}
	v, ok, err := c.Dequeue(ctx)
	if err != nil || !ok || v != "via-joiner" {
		t.Fatalf("dequeue via joiner: v=%v ok=%v err=%v", v, ok, err)
	}
	if err := c.Check(); err != nil {
		t.Fatalf("post-join check: %v", err)
	}
}

// TestSingleMemberSmoke is the minimal networked deployment: one member,
// one client, one enqueue and one dequeue.
func TestSingleMemberSmoke(t *testing.T) {
	srvs := startCluster(t, 1, "queue")
	c, err := skueue.Open(skueue.WithRemote(srvs[0].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := c.Enqueue(ctx, "x"); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	v, ok, err := c.Dequeue(ctx)
	if err != nil || !ok || v != "x" {
		t.Fatalf("dequeue: v=%v ok=%v err=%v", v, ok, err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}
