package server_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"skueue"
	"skueue/internal/server"
)

// TestSessionSurvivesMemberRestart is the durable-session acceptance
// test: a WithSession client attached to one member submits traffic,
// the member is killed without warning (kill -9 semantics: no final
// snapshot, staged journal batches lost) with async futures in flight,
// and is restarted from its state directory on a fresh port. The client
// must ride the crash out invisibly — reconnect, locate the restarted
// owner through the address book, resume the session, and complete every
// future exactly once (no ErrUnreachable, no duplicates) — and the
// merged history must pass both Definition 1 and the per-session order
// check.
func TestSessionSurvivesMemberRestart(t *testing.T) {
	srvs, dirs := startDurableCluster(t, 3)

	victim := -1
	for i := 1; i < len(srvs); i++ {
		if !srvs[i].HasAnchor() {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no non-seed member without the anchor")
	}

	sess, err := skueue.Open(
		skueue.WithRemote(srvs[victim].Addr()),
		skueue.WithSession("restart-acceptance"),
		skueue.WithDialTimeout(2*time.Second),
		skueue.WithReconnect(200, 50*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	enqueued := make(map[string]bool)

	// Confirmed operations before the crash: their outcomes are journaled
	// and, once the periodic snapshots pass, partially compacted into the
	// victim's snapshot — restore must stitch both sources together.
	for i := 0; i < 8; i++ {
		v := fmt.Sprintf("s-pre-%d", i)
		if err := sess.Enqueue(ctx, v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		enqueued[v] = true
	}
	time.Sleep(300 * time.Millisecond) // let a snapshot cover some of it

	// Futures in flight at the kill: any of them may be unsynced staging,
	// journaled-but-unanswered, or answered-but-undelivered when the
	// process dies. All three classes must converge to exactly-once.
	var futures []*skueue.Future
	for i := 0; i < 6; i++ {
		v := fmt.Sprintf("s-down-%d", i)
		f, err := sess.EnqueueAsync(skueue.AnyProcess, v)
		if err != nil {
			t.Fatalf("async enqueue %d: %v", i, err)
		}
		enqueued[v] = true
		futures = append(futures, f)
	}
	t.Logf("killing session owner %d with %d futures in flight", victim, len(futures))
	srvs[victim].Kill()

	batchOps, batchDelay := journalBatchEnv(t)
	restarted, err := server.New(server.Config{
		Addr:              "127.0.0.1:0",
		Join:              srvs[0].Addr(),
		StateDir:          dirs[victim],
		SnapshotEvery:     50 * time.Millisecond,
		Tick:              500 * time.Microsecond,
		JournalBatchOps:   batchOps,
		JournalBatchDelay: batchDelay,
		Logf:              debugLogf("[re]"),
	})
	if err != nil {
		t.Fatalf("restarting member %d: %v", victim, err)
	}
	t.Cleanup(restarted.Close)
	t.Logf("member %d restarted on %s", victim, restarted.Addr())

	// Every in-flight future completes cleanly: the session absorbed the
	// crash. An ErrUnreachable (or Indeterminate) here means the resume
	// failed to recover an outcome it had to.
	for i, f := range futures {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("session future %d failed across the restart: %v (indeterminate=%v)",
				i, err, f.Indeterminate())
		}
	}

	// Exactly-once delivery: drain through the same session; every value
	// must come out exactly once, nothing extra, nothing missing.
	dequeued := make(map[string]bool)
	for len(dequeued) < len(enqueued) {
		if ctx.Err() != nil {
			t.Fatalf("drain stalled with %d/%d values (ctx: %v)", len(dequeued), len(enqueued), ctx.Err())
		}
		v, ok, err := sess.Dequeue(ctx)
		if err != nil {
			t.Fatalf("dequeue: %v", err)
		}
		if !ok {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s := v.(string)
		if dequeued[s] {
			t.Fatalf("value %q dequeued twice", s)
		}
		if !enqueued[s] {
			t.Fatalf("dequeued %q was never enqueued", s)
		}
		dequeued[s] = true
	}

	// Definition 1 over the merged histories, plus the per-session order
	// check (read-your-writes / monotonic dequeues across the failover).
	if err := sess.Check(); err != nil {
		t.Fatalf("consistency check failed after session failover: %v", err)
	}
}

// TestSessionResumeRedeliversUndelivered pins the retention half of the
// exactly-once contract: outcomes that complete while the session is
// DETACHED (the client's connection died, no reconnect yet) are retained
// by the member and redelivered on resume — the reconnecting client
// collects them without re-executing anything. The second connection
// presents the same session ID and the same per-session sequences; the
// member's dedupe table must answer from retention, not inject again.
func TestSessionResumeRedeliversUndelivered(t *testing.T) {
	srvs, _ := startDurableCluster(t, 2)

	sess, err := skueue.Open(
		skueue.WithRemote(srvs[1].Addr()),
		skueue.WithSession("redeliver"),
		skueue.WithDialTimeout(2*time.Second),
		skueue.WithReconnect(100, 20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 5; i++ {
		if err := sess.Enqueue(ctx, fmt.Sprintf("r-%d", i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}

	// Submit async, then immediately sever the TCP connection from the
	// client side of the server (CloseClientConns) so the outcomes land
	// while no connection is attached. The reconnect resumes the same
	// session and must collect all of them exactly once.
	var futures []*skueue.Future
	for i := 0; i < 5; i++ {
		f, err := sess.EnqueueAsync(skueue.AnyProcess, fmt.Sprintf("r-fly-%d", i))
		if err != nil {
			t.Fatalf("async enqueue %d: %v", i, err)
		}
		futures = append(futures, f)
	}
	srvs[1].CloseClientConns()

	for i, f := range futures {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("future %d failed across reconnect: %v", i, err)
		}
	}
	if err := sess.Check(); err != nil {
		t.Fatalf("consistency check failed after reconnect: %v", err)
	}
}
