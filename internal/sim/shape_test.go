package sim

import (
	"testing"
	"time"

	"skueue/internal/transport"
)

// wanShape builds a fixed-delay profile of extra whole rounds.
func wanShape(rounds int) transport.Shape {
	return transport.Shape{
		Latency: time.Duration(rounds) * time.Millisecond,
		Round:   time.Millisecond,
	}
}

func TestSyncShapedDeliveryDelayed(t *testing.T) {
	e := New(Config{Seed: 1, Shape: wanShape(5)})
	a := &echoNode{}
	b := &echoNode{}
	ida := e.Spawn(a)
	idb := e.Spawn(b)
	_ = ida
	sent := false
	var deliveredAt int64 = -1
	b.onMsg = func(ctx *Context, from NodeID, payload any) { deliveredAt = ctx.Now() }
	a.onTick = func(ctx *Context) {
		if !sent {
			ctx.Send(idb, "wan")
			sent = true
		}
	}
	e.Step() // round 1: send
	if e.InFlight() != 1 {
		t.Fatalf("in-flight = %d after shaped send, want 1", e.InFlight())
	}
	for i := 0; i < 10 && deliveredAt < 0; i++ {
		e.Step()
	}
	// Sent in round 1, native slot round 2, plus 5 extra rounds.
	if deliveredAt != 7 {
		t.Fatalf("shaped message delivered at round %d, want 7", deliveredAt)
	}
	if e.InFlight() != 0 {
		t.Fatalf("in-flight = %d after delivery, want 0", e.InFlight())
	}
}

func TestSyncShapedZeroExtraKeepsNextRound(t *testing.T) {
	// An enabled profile that samples to zero extra rounds must behave
	// exactly like the classic synchronous model.
	e := New(Config{Seed: 1, Shape: transport.Shape{Latency: time.Microsecond, Round: time.Millisecond}})
	a := &echoNode{}
	b := &echoNode{}
	e.Spawn(a)
	idb := e.Spawn(b)
	sent := false
	a.onTick = func(ctx *Context) {
		if !sent {
			ctx.Send(idb, "x")
			sent = true
		}
	}
	e.Step()
	e.Step()
	if len(b.got) != 1 {
		t.Fatalf("zero-extra shaped message not delivered next round")
	}
}

func TestAsyncShapedDelayAdds(t *testing.T) {
	e := New(Config{Seed: 3, Async: true, MaxDelay: 2, Shape: wanShape(10)})
	a := &echoNode{}
	b := &echoNode{}
	ida := e.Spawn(a)
	idb := e.Spawn(b)
	var deliveredAt int64 = -1
	b.onMsg = func(ctx *Context, from NodeID, payload any) { deliveredAt = ctx.Now() }
	e.Inject(ida, idb, "wan")
	for e.Step() && deliveredAt < 0 {
	}
	// Native delay is in [1, 2]; shaping adds exactly 10.
	if deliveredAt < 11 || deliveredAt > 12 {
		t.Fatalf("async shaped delivery at t=%d, want within [11, 12]", deliveredAt)
	}
}

func TestShapedRunDeterministic(t *testing.T) {
	run := func() []int64 {
		e := New(Config{Seed: 99, Shape: transport.Shape{
			Latency: 3 * time.Millisecond,
			Jitter:  4 * time.Millisecond,
			Loss:    0.2,
			RTO:     6 * time.Millisecond,
			Round:   time.Millisecond,
		}})
		a := &echoNode{}
		b := &echoNode{}
		e.Spawn(a)
		idb := e.Spawn(b)
		var times []int64
		b.onMsg = func(ctx *Context, from NodeID, payload any) { times = append(times, ctx.Now()) }
		n := 0
		a.onTick = func(ctx *Context) {
			if n < 50 {
				ctx.Send(idb, n)
				n++
			}
		}
		for i := 0; i < 200; i++ {
			e.Step()
		}
		if len(times) != 50 {
			t.Fatalf("delivered %d/50 shaped messages in 200 rounds", len(times))
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shaped schedule diverged at message %d: round %d vs %d", i, a[i], b[i])
		}
	}
}
