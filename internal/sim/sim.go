// Package sim is a deterministic discrete-event simulator for the two
// message-passing models of the paper (§I-B):
//
//   - the synchronous model used for the runtime analysis and the
//     evaluation: time proceeds in rounds, every message sent in round i is
//     delivered in round i+1, and every node executes its TIMEOUT action
//     once per round;
//   - the fully asynchronous model the correctness proofs assume: every
//     message experiences an independent, arbitrary (bounded here, but
//     configurable) delay, so messages can outrun each other (non-FIFO),
//     and TIMEOUT fires periodically per node with random jitter.
//
// In both models messages are never lost and never duplicated (the paper's
// channel assumption); the engine checks this with internal accounting.
// All scheduling randomness derives from one seed, so every run is exactly
// reproducible.
//
// The engine is the in-memory implementation of transport.Network — the
// deterministic default backend; internal/transport/tcp is the networked
// one. The node-facing vocabulary (NodeID, Handler, Context) lives in
// internal/transport and is aliased here for convenience.
package sim

import (
	"container/heap"
	"fmt"

	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// NodeID identifies a simulated node. IDs are dense indices assigned in
// spawn order.
type NodeID = transport.NodeID

// None is the nil NodeID.
const None = transport.None

// Handler is the behaviour of a simulated node; see transport.Handler.
type Handler = transport.Handler

// Context is the handler-to-backend interface; see transport.Context.
type Context = transport.Context

// Config configures an Engine.
type Config struct {
	Seed int64
	// Async selects the asynchronous scheduler. Default is synchronous.
	Async bool
	// MaxDelay (async only) is the maximum message delay; each message is
	// delayed uniformly in [1, MaxDelay]. Defaults to 8.
	MaxDelay int
	// TimeoutEvery (async only) is the maximum gap between consecutive
	// TIMEOUT firings of a node; each gap is uniform in [1, TimeoutEvery].
	// Defaults to 4.
	TimeoutEvery int
	// ShuffleTimeouts (sync only) randomizes the per-round order in which
	// nodes execute TIMEOUT. Delivery order is always shuffled. Shuffling
	// timeouts costs a permutation per round; tests enable it to widen
	// schedule coverage, large benchmarks leave it off.
	ShuffleTimeouts bool
	// Shape is an optional WAN delivery profile. When enabled, every
	// message is charged extra whole-round delay sampled from the profile:
	// synchronous sends land extra rounds late (via the event heap instead
	// of the next-round batch), asynchronous sends add the extra to their
	// native random delay. The zero Shape keeps the classic models.
	Shape transport.Shape
	// TraceMessage, when set, observes every delivered message.
	TraceMessage func(now int64, from, to NodeID, payload any)
}

// Stats carries engine-level accounting.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	TimeoutsRun       int64
	Spawned           int64
}

type message struct {
	from, to NodeID
	payload  any
	seq      uint64
}

type event struct {
	at   int64
	tie  uint64 // random tiebreak among same-time events
	seq  uint64 // creation order, final tiebreak for determinism
	kind uint8  // 0 = message, 1 = timeout
	msg  message
	node NodeID // timeout target
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].tie != h[j].tie {
		return h[i].tie < h[j].tie
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type nodeSlot struct {
	h        Handler
	active   bool
	timeouts bool
	// ctx is the node's reusable callback context; binding it once per
	// node keeps delivery allocation-free.
	ctx Context
}

// Engine runs a set of nodes under one of the two schedulers.
type Engine struct {
	cfg   Config
	rng   *xrand.RNG
	nodes []nodeSlot
	now   int64
	// synchronous queues: messages awaiting delivery next round.
	next []message
	// asynchronous event heap.
	events eventHeap
	// messages in flight (both models).
	inFlight int64
	stats    Stats
	seq      uint64
}

var _ transport.Network = (*Engine)(nil)
var _ transport.Registry = (*Engine)(nil)

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 8
	}
	if cfg.TimeoutEvery <= 0 {
		cfg.TimeoutEvery = 4
	}
	return &Engine{cfg: cfg, rng: xrand.New(cfg.Seed)}
}

// Spawn adds a node and runs its OnInit. It may be called before the run
// starts or from within any handler callback.
func (e *Engine) Spawn(h Handler) NodeID {
	id := NodeID(len(e.nodes))
	e.nodes = append(e.nodes, nodeSlot{h: h, active: true, timeouts: true})
	e.nodes[id].ctx = transport.NewContext(e, id)
	e.stats.Spawned++
	if e.cfg.Async {
		e.scheduleTimeout(id)
	}
	h.OnInit(&e.nodes[id].ctx)
	return id
}

// Register places a node at a caller-chosen address (transport.Registry).
// The simulator allocates addresses densely itself, so registration is
// only valid for the next free index; it exists to satisfy backends-agnostic
// bootstrap code paths in tests.
func (e *Engine) Register(id NodeID, h Handler) {
	if int(id) != len(e.nodes) {
		panic(fmt.Sprintf("sim: Register(%d) out of spawn order (next is %d)", id, len(e.nodes)))
	}
	e.Spawn(h)
}

// Now returns the current round (synchronous) or virtual time (async).
func (e *Engine) Now() int64 { return e.now }

// Stats returns a copy of the engine statistics.
func (e *Engine) Stats() Stats { return e.stats }

// InFlight returns the number of sent-but-undelivered messages.
func (e *Engine) InFlight() int { return int(e.inFlight) }

// NumNodes returns the number of nodes ever spawned.
func (e *Engine) NumNodes() int { return len(e.nodes) }

// Active reports whether the node receives messages.
func (e *Engine) Active(id NodeID) bool {
	return id >= 0 && int(id) < len(e.nodes) && e.nodes[id].active
}

// Handler returns the handler of a node (for test inspection).
func (e *Engine) Handler(id NodeID) Handler { return e.nodes[id].h }

// Rand exposes the engine RNG for workload generators that must share the
// deterministic schedule.
func (e *Engine) Rand() *xrand.RNG { return e.rng }

// Send delivers a message between nodes (transport.Network). Called from
// outside any handler it is an injection (e.g. a freshly joining process
// contacting a member); handler sends arrive here through the Context.
func (e *Engine) Send(from, to NodeID, payload any) {
	e.send(from, to, payload)
}

// Inject is a readability alias of Send for out-of-band sends.
func (e *Engine) Inject(from, to NodeID, payload any) {
	e.send(from, to, payload)
}

// StopTimeouts disables further TIMEOUT callbacks for a node, leaving it
// able to receive messages (used for departed nodes that only forward).
func (e *Engine) StopTimeouts(id NodeID) { e.nodes[id].timeouts = false }

// Deactivate removes a node entirely; delivering or sending to it
// afterwards is a protocol error and panics. The paper's leave protocol
// guarantees no such message exists once the drain completes.
func (e *Engine) Deactivate(id NodeID) { e.nodes[id].active = false }

func (e *Engine) scheduleTimeout(id NodeID) {
	gap := int64(1 + e.rng.Intn(e.cfg.TimeoutEvery))
	e.seq++
	heap.Push(&e.events, event{
		at: e.now + gap, tie: e.rng.Uint64(), seq: e.seq, kind: 1, node: id,
	})
}

func (e *Engine) send(from, to NodeID, payload any) {
	if to < 0 || int(to) >= len(e.nodes) {
		panic(fmt.Sprintf("sim: send to invalid node %d from %d at t=%d", to, from, e.now))
	}
	if !e.nodes[to].active {
		panic(fmt.Sprintf("sim: send to deactivated node %d from %d at t=%d (message would be lost)", to, from, e.now))
	}
	e.stats.MessagesSent++
	e.inFlight++
	e.seq++
	m := message{from: from, to: to, payload: payload, seq: e.seq}
	var extra int64
	if e.cfg.Shape.Enabled() {
		extra = e.cfg.Shape.Rounds(e.rng)
	}
	if e.cfg.Async {
		delay := int64(1+e.rng.Intn(e.cfg.MaxDelay)) + extra
		heap.Push(&e.events, event{at: e.now + delay, tie: e.rng.Uint64(), seq: e.seq, kind: 0, msg: m})
	} else if extra > 0 {
		// A shaped synchronous message misses its round-(i+1) slot and is
		// parked on the event heap; stepSync drains due events into the
		// round's delivery batch.
		heap.Push(&e.events, event{at: e.now + 1 + extra, tie: e.rng.Uint64(), seq: e.seq, kind: 0, msg: m})
	} else {
		e.next = append(e.next, m)
	}
}

func (e *Engine) deliver(m message) {
	slot := &e.nodes[m.to]
	if !slot.active {
		panic(fmt.Sprintf("sim: message from %d delivered to deactivated node %d at t=%d", m.from, m.to, e.now))
	}
	e.inFlight--
	e.stats.MessagesDelivered++
	if e.cfg.TraceMessage != nil {
		e.cfg.TraceMessage(e.now, m.from, m.to, m.payload)
	}
	slot.h.OnMessage(&slot.ctx, m.from, m.payload)
}

func (e *Engine) timeout(id NodeID) {
	slot := &e.nodes[id]
	if !slot.active || !slot.timeouts {
		return
	}
	e.stats.TimeoutsRun++
	slot.h.OnTimeout(&slot.ctx)
}

// Step advances the simulation: one full round in the synchronous model,
// one event in the asynchronous model. It reports whether anything can
// still happen (async: events remain; sync: always true, since timeouts
// recur every round).
func (e *Engine) Step() bool {
	if e.cfg.Async {
		return e.stepAsync()
	}
	e.stepSync()
	return true
}

func (e *Engine) stepSync() {
	e.now++
	// Deliver every message sent in the previous round, in random order
	// (the channel is a set: arbitrary processing order, non-FIFO).
	batch := e.next
	e.next = nil
	// Shaped messages whose delay has elapsed rejoin the round's batch
	// (the heap holds only kind-0 events in the synchronous model).
	for len(e.events) > 0 && e.events[0].at <= e.now {
		batch = append(batch, heap.Pop(&e.events).(event).msg)
	}
	e.rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	for _, m := range batch {
		e.deliver(m)
	}
	// Then every node runs TIMEOUT once.
	if e.cfg.ShuffleTimeouts {
		order := e.rng.Perm(len(e.nodes))
		for _, i := range order {
			e.timeout(NodeID(i))
		}
	} else {
		for i := range e.nodes {
			e.timeout(NodeID(i))
		}
	}
}

func (e *Engine) stepAsync() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	if ev.at > e.now {
		e.now = ev.at
	}
	switch ev.kind {
	case 0:
		e.deliver(ev.msg)
	case 1:
		if e.nodes[ev.node].active {
			e.timeout(ev.node)
			if e.nodes[ev.node].timeouts {
				e.scheduleTimeout(ev.node)
			}
		}
	}
	return true
}

// Run advances the simulation until limit rounds (sync) or limit time
// units (async) have elapsed, or — async only — no events remain.
func (e *Engine) Run(limit int64) {
	target := e.now + limit
	for e.now < target {
		if !e.Step() {
			return
		}
	}
}

// RunUntil advances the simulation until cond returns true or maxTime
// elapses. It returns whether cond was met. cond is evaluated after each
// round (sync) or each event (async).
func (e *Engine) RunUntil(cond func() bool, maxTime int64) bool {
	target := e.now + maxTime
	for e.now < target {
		if cond() {
			return true
		}
		if !e.Step() {
			return cond()
		}
	}
	return cond()
}
