package sim

import (
	"testing"
)

// echoNode counts messages and can ping-pong.
type echoNode struct {
	got      []any
	froms    []NodeID
	initRuns int
	timeouts int
	onMsg    func(ctx *Context, from NodeID, payload any)
	onTick   func(ctx *Context)
}

func (n *echoNode) OnInit(ctx *Context) { n.initRuns++ }
func (n *echoNode) OnMessage(ctx *Context, from NodeID, payload any) {
	n.got = append(n.got, payload)
	n.froms = append(n.froms, from)
	if n.onMsg != nil {
		n.onMsg(ctx, from, payload)
	}
}
func (n *echoNode) OnTimeout(ctx *Context) {
	n.timeouts++
	if n.onTick != nil {
		n.onTick(ctx)
	}
}

func TestSyncDeliveryNextRound(t *testing.T) {
	e := New(Config{Seed: 1})
	a := &echoNode{}
	b := &echoNode{}
	ida := e.Spawn(a)
	idb := e.Spawn(b)
	sent := false
	a.onTick = func(ctx *Context) {
		if !sent {
			ctx.Send(idb, "hello")
			sent = true
		}
	}
	_ = ida
	e.Step() // round 1: a sends during timeout
	if len(b.got) != 0 {
		t.Fatalf("message delivered in sending round")
	}
	e.Step() // round 2: delivery
	if len(b.got) != 1 || b.got[0] != "hello" || b.froms[0] != ida {
		t.Fatalf("message not delivered in next round: %v", b.got)
	}
}

func TestSyncTimeoutOncePerRound(t *testing.T) {
	e := New(Config{Seed: 1})
	nodes := make([]*echoNode, 5)
	for i := range nodes {
		nodes[i] = &echoNode{}
		e.Spawn(nodes[i])
	}
	e.Run(10)
	for i, n := range nodes {
		if n.timeouts != 10 {
			t.Errorf("node %d ran %d timeouts, want 10", i, n.timeouts)
		}
		if n.initRuns != 1 {
			t.Errorf("node %d init ran %d times", i, n.initRuns)
		}
	}
}

func TestNoLossNoDuplication(t *testing.T) {
	for _, async := range []bool{false, true} {
		e := New(Config{Seed: 7, Async: async, MaxDelay: 5})
		recv := 0
		sink := &echoNode{}
		sink.onMsg = func(ctx *Context, from NodeID, payload any) { recv++ }
		idSink := e.Spawn(sink)
		src := &echoNode{}
		count := 0
		src.onTick = func(ctx *Context) {
			if count < 100 {
				ctx.Send(idSink, count)
				count++
			}
		}
		e.Spawn(src)
		e.Run(2000)
		if e.InFlight() != 0 {
			t.Fatalf("async=%v: %d messages still in flight", async, e.InFlight())
		}
		if recv != count {
			t.Fatalf("async=%v: sent %d received %d", async, count, recv)
		}
		st := e.Stats()
		if st.MessagesSent != st.MessagesDelivered {
			t.Fatalf("async=%v: accounting mismatch %+v", async, st)
		}
	}
}

func TestAsyncNonFIFO(t *testing.T) {
	// With random delays, some pair of messages must arrive out of order.
	e := New(Config{Seed: 3, Async: true, MaxDelay: 10})
	sink := &echoNode{}
	idSink := e.Spawn(sink)
	src := &echoNode{}
	next := 0
	src.onTick = func(ctx *Context) {
		if next < 200 {
			ctx.Send(idSink, next)
			next++
		}
	}
	e.Spawn(src)
	e.Run(5000)
	if len(sink.got) != 200 {
		t.Fatalf("got %d messages, want 200", len(sink.got))
	}
	reordered := false
	for i := 1; i < len(sink.got); i++ {
		if sink.got[i].(int) < sink.got[i-1].(int) {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Errorf("async scheduler delivered 200 messages in exact FIFO order; non-FIFO not exercised")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []any {
		e := New(Config{Seed: seed, Async: true, MaxDelay: 6})
		sink := &echoNode{}
		idSink := e.Spawn(sink)
		for s := 0; s < 3; s++ {
			src := &echoNode{}
			tag := s * 1000
			n := 0
			src.onTick = func(ctx *Context) {
				if n < 20 {
					ctx.Send(idSink, tag+n)
					n++
				}
			}
			e.Spawn(src)
		}
		e.Run(1000)
		return sink.got
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("different seeds produced identical delivery order")
	}
}

func TestSpawnMidRun(t *testing.T) {
	e := New(Config{Seed: 2})
	parent := &echoNode{}
	var child *echoNode
	var childID NodeID = None
	spawned := false
	parent.onTick = func(ctx *Context) {
		if !spawned {
			child = &echoNode{}
			childID = ctx.Spawn(child)
			ctx.Send(childID, "welcome")
			spawned = true
		}
	}
	e.Spawn(parent)
	e.Run(3)
	if child == nil || child.initRuns != 1 {
		t.Fatalf("child not initialized")
	}
	if len(child.got) != 1 {
		t.Fatalf("child did not receive welcome: %v", child.got)
	}
	if child.timeouts == 0 {
		t.Errorf("child never ran a timeout")
	}
}

func TestDeactivatePanicsOnDelivery(t *testing.T) {
	e := New(Config{Seed: 4})
	target := &echoNode{}
	idT := e.Spawn(target)
	src := &echoNode{}
	step := 0
	src.onTick = func(ctx *Context) {
		switch step {
		case 0:
			ctx.Deactivate(idT)
		case 1:
			ctx.Send(idT, "boom")
		}
		step++
	}
	e.Spawn(src)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on send to deactivated node")
		}
	}()
	e.Run(5)
}

func TestStopTimeouts(t *testing.T) {
	e := New(Config{Seed: 5})
	n := &echoNode{}
	id := e.Spawn(n)
	e.Run(3)
	before := n.timeouts
	stopper := &echoNode{}
	stopper.onTick = func(ctx *Context) { ctx.StopTimeouts(id) }
	e.Spawn(stopper)
	e.Run(5)
	if n.timeouts > before+1 {
		t.Errorf("timeouts kept firing after StopTimeouts: %d -> %d", before, n.timeouts)
	}
	// Node must still receive messages.
	sender := &echoNode{}
	sender.onTick = func(ctx *Context) { ctx.Send(id, "still alive") }
	e.Spawn(sender)
	got := len(n.got)
	e.Run(3)
	if len(n.got) <= got {
		t.Errorf("passive node stopped receiving messages")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(Config{Seed: 6})
	n := &echoNode{}
	e.Spawn(n)
	ok := e.RunUntil(func() bool { return n.timeouts >= 5 }, 100)
	if !ok {
		t.Fatalf("condition not met")
	}
	if n.timeouts < 5 || n.timeouts > 6 {
		t.Errorf("overran condition: %d timeouts", n.timeouts)
	}
	ok = e.RunUntil(func() bool { return false }, 10)
	if ok {
		t.Errorf("RunUntil reported success for impossible condition")
	}
}

func TestAsyncTimeoutsRecur(t *testing.T) {
	e := New(Config{Seed: 8, Async: true, TimeoutEvery: 3})
	n := &echoNode{}
	e.Spawn(n)
	e.Run(100)
	if n.timeouts < 20 {
		t.Errorf("expected ~33 timeouts in 100 time units, got %d", n.timeouts)
	}
}

func TestSelfSend(t *testing.T) {
	e := New(Config{Seed: 9})
	n := &echoNode{}
	var id NodeID
	sent := false
	n.onTick = func(ctx *Context) {
		if !sent {
			ctx.Send(ctx.Self(), "me")
			sent = true
		}
	}
	id = e.Spawn(n)
	_ = id
	e.Run(3)
	if len(n.got) != 1 || n.got[0] != "me" {
		t.Errorf("self-send failed: %v", n.got)
	}
}

func TestContextIdentity(t *testing.T) {
	e := New(Config{Seed: 10})
	var seen []NodeID
	for i := 0; i < 3; i++ {
		n := &echoNode{}
		n.onTick = func(ctx *Context) { seen = append(seen, ctx.Self()) }
		e.Spawn(n)
	}
	e.Step()
	if len(seen) != 3 || seen[0] == seen[1] || seen[1] == seen[2] {
		t.Errorf("Self() identities wrong: %v", seen)
	}
}

func TestNowAdvances(t *testing.T) {
	e := New(Config{Seed: 11})
	if e.Now() != 0 {
		t.Fatalf("initial time not 0")
	}
	e.Run(7)
	if e.Now() != 7 {
		t.Errorf("Now() = %d after 7 rounds", e.Now())
	}
}

func TestShuffledTimeoutOrderDiffers(t *testing.T) {
	order := func(seed int64) []NodeID {
		e := New(Config{Seed: seed, ShuffleTimeouts: true})
		var got []NodeID
		for i := 0; i < 16; i++ {
			n := &echoNode{}
			n.onTick = func(ctx *Context) { got = append(got, ctx.Self()) }
			e.Spawn(n)
		}
		e.Step()
		return got
	}
	a, b := order(1), order(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Errorf("shuffled timeout order identical across seeds")
	}
}

func TestInjectFromOutside(t *testing.T) {
	e := New(Config{Seed: 12})
	n := &echoNode{}
	id := e.Spawn(n)
	e.Inject(None, id, "external")
	e.Run(2)
	if len(n.got) != 1 || n.got[0] != "external" {
		t.Fatalf("injected message not delivered: %v", n.got)
	}
}

func TestActiveAndHandlerAccessors(t *testing.T) {
	e := New(Config{Seed: 13})
	n := &echoNode{}
	id := e.Spawn(n)
	if !e.Active(id) || e.Active(NodeID(99)) || e.Active(None) {
		t.Fatalf("Active() wrong")
	}
	if e.Handler(id) != n {
		t.Fatalf("Handler() wrong")
	}
	if e.NumNodes() != 1 {
		t.Fatalf("NumNodes() wrong")
	}
}

func TestStatsAccounting(t *testing.T) {
	e := New(Config{Seed: 14})
	sink := &echoNode{}
	idSink := e.Spawn(sink)
	src := &echoNode{}
	sent := 0
	src.onTick = func(ctx *Context) {
		if sent < 5 {
			ctx.Send(idSink, sent)
			sent++
		}
	}
	e.Spawn(src)
	e.Run(10)
	st := e.Stats()
	if st.MessagesSent != 5 || st.MessagesDelivered != 5 || st.Spawned != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.TimeoutsRun == 0 {
		t.Fatalf("timeouts not counted")
	}
}

func TestAsyncRunUntilStopsOnEmpty(t *testing.T) {
	// An async engine with no nodes has no events; RunUntil must not spin.
	e := New(Config{Seed: 15, Async: true})
	if e.RunUntil(func() bool { return false }, 1000) {
		t.Fatalf("impossible condition reported met")
	}
}
