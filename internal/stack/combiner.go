// Package stack implements the stack-specific machinery of §VI: the local
// combining of PUSH/POP pairs. A node that generates a POP while it still
// buffers an unsent PUSH can answer both immediately — the POP returns the
// newest buffered PUSH's element — without involving the anchor at all.
// The buffered residual word is then always of the form POP^a PUSH^b,
// which is why stack batches have constant size (Theorem 20).
//
// The anchor-side stack changes (tickets, descending pop intervals) live
// in internal/batch; the stage-4 completion wait lives in internal/core.
package stack

import "skueue/internal/dht"

// PendingOp is one buffered stack operation.
type PendingOp struct {
	ReqID    uint64
	Elem     dht.Element // pushes only
	Born     int64
	LocalSeq int64
	Blob     []byte // opaque payload riding with a push (networked mode)
}

// Combiner maintains a node's buffered, not-yet-sent stack operations in
// the reduced form POP^a PUSH^b.
type Combiner struct {
	pops   []PendingOp
	pushes []PendingOp
}

// Push buffers a push. A push never combines on arrival (only a later pop
// can consume it).
func (c *Combiner) Push(op PendingOp) {
	c.pushes = append(c.pushes, op)
}

// Pop either combines with the newest buffered push — returning it with
// ok=true, in which case both operations are complete — or buffers the pop
// (ok=false).
func (c *Combiner) Pop(op PendingOp) (match PendingOp, ok bool) {
	if n := len(c.pushes); n > 0 {
		match = c.pushes[n-1]
		c.pushes = c.pushes[:n-1]
		return match, true
	}
	c.pops = append(c.pops, op)
	return PendingOp{}, false
}

// TakeResidual removes and returns the buffered residual word: all pops
// (in issue order) followed by all pushes (in issue order). It is called
// when the node folds its waiting batch into the processing batch.
func (c *Combiner) TakeResidual() (pops, pushes []PendingOp) {
	pops, pushes = c.pops, c.pushes
	c.pops, c.pushes = nil, nil
	return pops, pushes
}

// Counts returns the residual word shape (a pops, b pushes).
func (c *Combiner) Counts() (pops, pushes int) {
	return len(c.pops), len(c.pushes)
}

// RestorePop puts a pop back at the end of the pop run; used when a wave
// could not be sent and its operations return to the buffer.
func (c *Combiner) RestorePop(op PendingOp) { c.pops = append(c.pops, op) }

// RestorePush puts a push back at the end of the push run.
func (c *Combiner) RestorePush(op PendingOp) { c.pushes = append(c.pushes, op) }

// Empty reports whether nothing is buffered.
func (c *Combiner) Empty() bool { return len(c.pops) == 0 && len(c.pushes) == 0 }

// Snapshot returns copies of the buffered residual word — all pops and all
// pushes in issue order — without disturbing the combiner. It is the
// fail-stop persistence surface: a networked member captures the residual
// into its write-ahead snapshot so buffered stack operations survive a
// crash (see internal/core.SnapshotMember).
func (c *Combiner) Snapshot() (pops, pushes []PendingOp) {
	if len(c.pops) > 0 {
		pops = append([]PendingOp(nil), c.pops...)
	}
	if len(c.pushes) > 0 {
		pushes = append([]PendingOp(nil), c.pushes...)
	}
	return pops, pushes
}

// Restore replaces the combiner's contents with a previously snapshotted
// residual word. The word must already have the reduced POP^a PUSH^b
// shape, which Snapshot guarantees; restoring re-arms the buffered
// operations exactly where the crash interrupted them.
func (c *Combiner) Restore(pops, pushes []PendingOp) {
	c.pops = append(c.pops[:0], pops...)
	c.pushes = append(c.pushes[:0], pushes...)
}
