package stack

import (
	"testing"
	"testing/quick"

	"skueue/internal/dht"
)

func push(seq int64) PendingOp {
	return PendingOp{ReqID: uint64(seq), Elem: dht.Element{Seq: seq}, LocalSeq: seq}
}

func TestPopCombinesWithNewestPush(t *testing.T) {
	var c Combiner
	c.Push(push(1))
	c.Push(push(2))
	m, ok := c.Pop(PendingOp{LocalSeq: 3})
	if !ok || m.Elem.Seq != 2 {
		t.Fatalf("pop should combine with push 2, got %v ok=%v", m, ok)
	}
	m, ok = c.Pop(PendingOp{LocalSeq: 4})
	if !ok || m.Elem.Seq != 1 {
		t.Fatalf("second pop should combine with push 1, got %v", m)
	}
	if _, ok := c.Pop(PendingOp{LocalSeq: 5}); ok {
		t.Fatalf("third pop has nothing to combine with")
	}
	if a, b := c.Counts(); a != 1 || b != 0 {
		t.Fatalf("residual should be 1 pop, got %d/%d", a, b)
	}
}

func TestResidualShape(t *testing.T) {
	// Any sequence reduces to pops-then-pushes.
	var c Combiner
	c.Pop(PendingOp{LocalSeq: 0})
	c.Push(push(1))
	c.Push(push(2))
	m, ok := c.Pop(PendingOp{LocalSeq: 3})
	if !ok || m.LocalSeq != 2 {
		t.Fatalf("expected combine with local seq 2")
	}
	c.Push(push(4))
	pops, pushes := c.TakeResidual()
	if len(pops) != 1 || pops[0].LocalSeq != 0 {
		t.Fatalf("residual pops wrong: %v", pops)
	}
	if len(pushes) != 2 || pushes[0].LocalSeq != 1 || pushes[1].LocalSeq != 4 {
		t.Fatalf("residual pushes wrong: %v", pushes)
	}
	if !c.Empty() {
		t.Fatalf("combiner should be empty after TakeResidual")
	}
}

func TestTakeResidualResets(t *testing.T) {
	var c Combiner
	c.Push(push(1))
	c.TakeResidual()
	// A pop after the wave fired cannot combine with the already-sent push.
	if _, ok := c.Pop(PendingOp{LocalSeq: 2}); ok {
		t.Fatalf("pop combined with a push that already left the buffer")
	}
}

func TestReductionProperty(t *testing.T) {
	// Property: after any operation sequence, the residual is pop^a push^b
	// with a,b >= 0, combined pairs match LIFO-correctly, and the total
	// number of ops is conserved.
	f := func(opsRaw []bool) bool {
		var c Combiner
		var seq int64
		combined := 0
		for _, isPush := range opsRaw {
			seq++
			if isPush {
				c.Push(push(seq))
			} else if _, ok := c.Pop(PendingOp{LocalSeq: seq}); ok {
				combined += 2
			}
		}
		a, b := c.Counts()
		return combined+a+b == len(opsRaw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestoreProperty(t *testing.T) {
	// Property: snapshotting mid-sequence and restoring into a fresh
	// combiner is transparent — the restored combiner behaves identically
	// to the original on the remaining operations, and the snapshot itself
	// does not disturb the running combiner.
	f := func(prefix, suffix []bool) bool {
		var orig Combiner
		var seq int64
		apply := func(c *Combiner, isPush bool) (PendingOp, bool) {
			if isPush {
				c.Push(push(seq))
				return PendingOp{}, false
			}
			return c.Pop(PendingOp{LocalSeq: seq})
		}
		for _, isPush := range prefix {
			seq++
			apply(&orig, isPush)
		}
		pops, pushes := orig.Snapshot()
		if a, b := orig.Counts(); len(pops) != a || len(pushes) != b {
			return false // snapshot must mirror the live counts
		}
		var restored Combiner
		restored.Restore(pops, pushes)
		for _, isPush := range suffix {
			seq++
			m1, ok1 := apply(&orig, isPush)
			m2, ok2 := apply(&restored, isPush)
			if ok1 != ok2 || m1.LocalSeq != m2.LocalSeq || m1.ReqID != m2.ReqID {
				return false
			}
		}
		p1, q1 := orig.TakeResidual()
		p2, q2 := restored.TakeResidual()
		if len(p1) != len(p2) || len(q1) != len(q2) {
			return false
		}
		for i := range p1 {
			if p1[i].LocalSeq != p2[i].LocalSeq {
				return false
			}
		}
		for i := range q1 {
			if q1[i].LocalSeq != q2[i].LocalSeq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	// Mutating the combiner after Snapshot must not change the snapshot.
	var c Combiner
	c.Pop(PendingOp{LocalSeq: 1})
	c.Push(push(2))
	pops, pushes := c.Snapshot()
	c.Pop(PendingOp{LocalSeq: 3}) // combines with push 2
	c.TakeResidual()
	if len(pops) != 1 || pops[0].LocalSeq != 1 || len(pushes) != 1 || pushes[0].LocalSeq != 2 {
		t.Fatalf("snapshot changed under mutation: pops=%v pushes=%v", pops, pushes)
	}
}

func TestLIFOMatchingProperty(t *testing.T) {
	// Replaying the combines against a reference stack must agree.
	f := func(opsRaw []bool) bool {
		var c Combiner
		var ref []int64 // reference stack of unsent pushes
		var seq int64
		for _, isPush := range opsRaw {
			seq++
			if isPush {
				c.Push(push(seq))
				ref = append(ref, seq)
				continue
			}
			m, ok := c.Pop(PendingOp{LocalSeq: seq})
			if len(ref) == 0 {
				if ok {
					return false
				}
				continue
			}
			want := ref[len(ref)-1]
			ref = ref[:len(ref)-1]
			if !ok || m.LocalSeq != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
