package transport

import (
	"fmt"
	"time"

	"skueue/internal/xrand"
)

// Shape is a WAN delivery profile: extra per-message delay injected by a
// backend on top of its native scheduling. Both backends honor it — the
// simulator converts sampled delays into whole rounds, the TCP backend
// sleeps wall-clock time on the receive path — so the same profile
// describes the same network under either model.
//
// Loss never violates the reliable-channel contract (§I-B: messages are
// never lost). A "lost" transmission is modeled as the delay of detecting
// the loss and retransmitting: each lost attempt charges one RTO of extra
// latency, with the number of lost attempts geometric in Loss. This is
// what a reliable transport over a lossy link actually exhibits, and it
// keeps the engine's in-flight accounting and the TCP layer's exactly-once
// sequencing exact.
type Shape struct {
	// Latency is the base one-way delay added to every message.
	Latency time.Duration
	// Jitter widens each delay by a uniform sample from [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0, 1) that one transmission attempt is
	// lost and must be retried after RTO. Attempts are independent; the
	// retry count is capped at maxRetransmits so a pathological profile
	// cannot stall a message forever.
	Loss float64
	// RTO is the retransmission timeout charged per lost attempt.
	// Defaults to 4×Latency, and to 4×Round when Latency is zero.
	RTO time.Duration
	// Round is the simulated wall-clock length of one synchronous round,
	// used to convert sampled delays into rounds. Defaults to 1ms.
	Round time.Duration
}

// maxRetransmits bounds the geometric retry sampling so Loss→1 degrades
// to a large finite delay instead of an unbounded one.
const maxRetransmits = 8

// Enabled reports whether the profile shapes anything at all. The zero
// Shape is a no-op and backends skip the sampling path entirely.
func (s Shape) Enabled() bool {
	return s.Latency > 0 || s.Jitter > 0 || s.Loss > 0
}

// Validate rejects nonsensical profiles.
func (s Shape) Validate() error {
	if s.Latency < 0 || s.Jitter < 0 || s.RTO < 0 || s.Round < 0 {
		return fmt.Errorf("transport: negative Shape durations (%+v)", s)
	}
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("transport: Shape.Loss %v outside [0, 1)", s.Loss)
	}
	return nil
}

func (s Shape) round() time.Duration {
	if s.Round > 0 {
		return s.Round
	}
	return time.Millisecond
}

func (s Shape) rto() time.Duration {
	if s.RTO > 0 {
		return s.RTO
	}
	if s.Latency > 0 {
		return 4 * s.Latency
	}
	return 4 * s.round()
}

// Wall samples one shaped delay in wall-clock time (TCP backend).
func (s Shape) Wall(rng *xrand.RNG) time.Duration {
	d := s.Latency
	if s.Jitter > 0 {
		d += time.Duration(rng.Float64() * float64(s.Jitter))
	}
	if s.Loss > 0 {
		rto := s.rto()
		for k := 0; k < maxRetransmits && rng.Float64() < s.Loss; k++ {
			d += rto
		}
	}
	return d
}

// Rounds samples one shaped delay in whole simulation rounds (sim
// backend), rounding the wall-clock sample half-up at Round granularity.
func (s Shape) Rounds(rng *xrand.RNG) int64 {
	r := s.round()
	return int64((s.Wall(rng) + r/2) / r)
}

func (s Shape) String() string {
	if !s.Enabled() {
		return "off"
	}
	return fmt.Sprintf("latency=%v jitter=%v loss=%.3f rto=%v round=%v",
		s.Latency, s.Jitter, s.Loss, s.rto(), s.round())
}
