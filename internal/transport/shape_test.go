package transport

import (
	"testing"
	"time"

	"skueue/internal/xrand"
)

func TestShapeZeroIsDisabled(t *testing.T) {
	var s Shape
	if s.Enabled() {
		t.Fatal("zero Shape reports Enabled")
	}
	rng := xrand.New(1)
	if d := s.Wall(rng); d != 0 {
		t.Fatalf("zero Shape Wall = %v, want 0", d)
	}
	if r := s.Rounds(rng); r != 0 {
		t.Fatalf("zero Shape Rounds = %d, want 0", r)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero Shape invalid: %v", err)
	}
}

func TestShapeFixedLatency(t *testing.T) {
	s := Shape{Latency: 10 * time.Millisecond, Round: time.Millisecond}
	rng := xrand.New(7)
	for i := 0; i < 100; i++ {
		if d := s.Wall(rng); d != 10*time.Millisecond {
			t.Fatalf("Wall = %v, want exactly 10ms with no jitter/loss", d)
		}
		if r := s.Rounds(rng); r != 10 {
			t.Fatalf("Rounds = %d, want 10 at 1ms/round", r)
		}
	}
}

func TestShapeJitterRange(t *testing.T) {
	s := Shape{Latency: 5 * time.Millisecond, Jitter: 3 * time.Millisecond}
	rng := xrand.New(7)
	sawSpread := false
	var first time.Duration
	for i := 0; i < 500; i++ {
		d := s.Wall(rng)
		if d < 5*time.Millisecond || d >= 8*time.Millisecond {
			t.Fatalf("Wall = %v outside [5ms, 8ms)", d)
		}
		if i == 0 {
			first = d
		} else if d != first {
			sawSpread = true
		}
	}
	if !sawSpread {
		t.Fatal("jitter produced a constant delay over 500 samples")
	}
}

func TestShapeLossChargesRTO(t *testing.T) {
	s := Shape{Latency: time.Millisecond, Loss: 0.5, RTO: 4 * time.Millisecond}
	rng := xrand.New(7)
	var retried int
	for i := 0; i < 2000; i++ {
		d := s.Wall(rng)
		extra := d - time.Millisecond
		if extra%(4*time.Millisecond) != 0 {
			t.Fatalf("loss extra %v is not a multiple of the RTO", extra)
		}
		if max := time.Duration(maxRetransmits) * 4 * time.Millisecond; extra > max {
			t.Fatalf("loss extra %v exceeds the retransmission cap %v", extra, max)
		}
		if extra > 0 {
			retried++
		}
	}
	// Loss 0.5 retries roughly half the messages; 1/3 is a safe floor.
	if retried < 2000/3 {
		t.Fatalf("only %d/2000 samples charged a retransmission at Loss=0.5", retried)
	}
}

func TestShapeDeterministicPerSeed(t *testing.T) {
	s := Shape{Latency: 2 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.2}
	a, b := xrand.New(42), xrand.New(42)
	for i := 0; i < 200; i++ {
		if da, db := s.Wall(a), s.Wall(b); da != db {
			t.Fatalf("sample %d diverged: %v vs %v", i, da, db)
		}
	}
}

func TestShapeValidate(t *testing.T) {
	for _, bad := range []Shape{
		{Latency: -time.Millisecond},
		{Loss: -0.1},
		{Loss: 1},
		{Jitter: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
	good := Shape{Latency: time.Millisecond, Jitter: time.Millisecond, Loss: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected %+v: %v", good, err)
	}
}
