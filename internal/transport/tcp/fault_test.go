package tcp

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skueue/internal/transport"
	"skueue/internal/wire"
)

// resetProxy sits between a dialing peer and its target member and
// force-drops established connections after a configurable number of
// forwarded bytes, up to a reset budget — the "kernel accepted the frame
// but the network swallowed it" failure the ack/retransmit layer exists
// for. Connections are killed with SetLinger(0), so the drop surfaces as
// a hard RST and any unacknowledged bytes in flight are discarded.
type resetProxy struct {
	t         *testing.T
	lis       net.Listener
	target    string
	dropAfter int64
	maxResets int32
	resets    atomic.Int32
}

func newResetProxy(t *testing.T, target string, dropAfter int64, maxResets int32) *resetProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &resetProxy{t: t, lis: lis, target: target, dropAfter: dropAfter, maxResets: maxResets}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go p.serveConn(c)
		}
	}()
	return p
}

func (p *resetProxy) Addr() string { return p.lis.Addr().String() }

func (p *resetProxy) serveConn(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	var once sync.Once
	kill := func(abort bool) {
		once.Do(func() {
			if abort {
				if tc, ok := client.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				if tc, ok := upstream.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
			}
			client.Close()
			upstream.Close()
		})
	}
	// Forward direction, with reset injection at the byte mark.
	go func() {
		defer kill(false)
		buf := make([]byte, 512)
		var fwd int64
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := upstream.Write(buf[:n]); werr != nil {
					return
				}
				fwd += int64(n)
				if fwd >= p.dropAfter && p.resets.Load() < p.maxResets {
					p.resets.Add(1)
					kill(true)
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	// Reverse direction (handshake acks, cumulative acks): plain copy.
	go func() {
		defer kill(false)
		buf := make([]byte, 512)
		for {
			n, err := upstream.Read(buf)
			if n > 0 {
				if _, werr := client.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
}

// recorderNode appends every delivered int payload.
type recorderNode struct {
	mu  sync.Mutex
	got []int
}

func (r *recorderNode) OnInit(ctx *transport.Context)    {}
func (r *recorderNode) OnTimeout(ctx *transport.Context) {}
func (r *recorderNode) OnMessage(ctx *transport.Context, from transport.NodeID, payload any) {
	if v, ok := payload.(int); ok {
		r.mu.Lock()
		r.got = append(r.got, v)
		r.mu.Unlock()
	}
}

func (r *recorderNode) snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.got...)
}

// TestExactlyOnceAcrossResets is the fault-injection acceptance test of
// the link layer: a proxy between two peers force-drops the connection at
// byte marks (several forced mid-connection resets), and every sequenced
// frame must still arrive exactly once and in order — nothing lost to a
// reset the sender's write already "succeeded" into, nothing duplicated
// by the replay.
func TestExactlyOnceAcrossResets(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis0.Close()
	defer lis1.Close()

	const wantResets = 5
	proxy := newResetProxy(t, lis1.Addr().String(), 900, wantResets)

	p0 := New(Options{Index: 0, Addr: lis0.Addr().String(), Pids: []int32{0}, Seed: 1, Tick: time.Millisecond})
	// Member 1 advertises the proxy address, so member 0's link dials
	// through the resetting path.
	p1 := New(Options{Index: 1, Addr: proxy.Addr(), Pids: []int32{1}, Seed: 1, Tick: time.Millisecond})
	defer p0.Close()
	defer p1.Close()
	p0.SetBook([]wire.MemberInfo{p1.Me()})
	p1.SetBook([]wire.MemberInfo{p0.Me()})

	sender, rec := &echoNode{}, &recorderNode{}
	p0.Register(0, sender) // pid 0, kind L
	p1.Register(3, rec)    // pid 1, kind L
	serve(t, lis0, p0)
	serve(t, lis1, p1)
	p0.Start()
	p1.Start()

	const frames = 400
	for i := 0; i < frames; i++ {
		i := i
		p0.Do(func() { p0.Send(0, 3, i) })
		if i%25 == 0 {
			time.Sleep(2 * time.Millisecond) // spread traffic over several connections
		}
	}

	deadline := time.After(60 * time.Second)
	for len(rec.snapshot()) < frames {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d frames arrived after %d resets", len(rec.snapshot()), frames, proxy.resets.Load())
		case <-time.After(10 * time.Millisecond):
		}
	}
	got := rec.snapshot()
	if len(got) != frames {
		t.Fatalf("received %d frames, want exactly %d (duplicates?)", len(got), frames)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("frame %d out of order or duplicated: got value %d (full head: %v)", i, v, got[:min(i+3, len(got))])
		}
	}
	if r := proxy.resets.Load(); r < 3 {
		t.Fatalf("proxy forced only %d resets, want >= 3 for the test to mean anything", r)
	}
	t.Logf("%d frames exactly once, in order, across %d forced resets", frames, proxy.resets.Load())
}

// TestIdleLinkReplaysAfterReset covers the reader-side death detection: a
// link whose every frame was already written (nothing left in the send
// queue) must still notice a reset that swallowed frames in flight and
// replay them — the write path alone never learns about the loss.
func TestIdleLinkReplaysAfterReset(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis0.Close()
	defer lis1.Close()

	// One reset, triggered only after the handshake plus a few frames have
	// flowed; everything the sender wrote after the mark dies in flight
	// while the sender goes idle.
	proxy := newResetProxy(t, lis1.Addr().String(), 600, 1)

	p0 := New(Options{Index: 0, Addr: lis0.Addr().String(), Pids: []int32{0}, Seed: 1, Tick: time.Millisecond})
	p1 := New(Options{Index: 1, Addr: proxy.Addr(), Pids: []int32{1}, Seed: 1, Tick: time.Millisecond})
	defer p0.Close()
	defer p1.Close()
	p0.SetBook([]wire.MemberInfo{p1.Me()})
	p1.SetBook([]wire.MemberInfo{p0.Me()})
	rec := &recorderNode{}
	p0.Register(0, &echoNode{})
	p1.Register(3, rec)
	serve(t, lis0, p0)
	serve(t, lis1, p1)
	p0.Start()
	p1.Start()

	const frames = 60
	for i := 0; i < frames; i++ {
		i := i
		p0.Do(func() { p0.Send(0, 3, i) })
	}
	// The sender is now idle; only drainControl noticing the dead
	// connection can trigger the replay of whatever the reset swallowed.
	deadline := time.After(30 * time.Second)
	for len(rec.snapshot()) < frames {
		select {
		case <-deadline:
			t.Fatalf("idle link never replayed: %d/%d frames (resets=%d)", len(rec.snapshot()), frames, proxy.resets.Load())
		case <-time.After(10 * time.Millisecond):
		}
	}
	got := rec.snapshot()
	for i, v := range got {
		if v != i {
			t.Fatalf("frame %d: got %d, want %d", i, v, i)
		}
	}
}

// TestGiveUpNotifiesOnDown checks fail-stop detection: a member that
// stays unreachable past Options.GiveUp is reported through OnDown
// instead of stalling its senders silently forever.
func TestGiveUpNotifiesOnDown(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis0.Close()
	// Reserve an address with nobody listening behind it.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	var downs atomic.Int32
	p0 := New(Options{
		Index: 0, Addr: lis0.Addr().String(), Pids: []int32{0}, Seed: 1,
		Tick:   time.Millisecond,
		GiveUp: 150 * time.Millisecond,
		OnDown: func(idx int32) {
			if idx == 1 {
				downs.Add(1)
			}
		},
	})
	defer p0.Close()
	p0.SetBook([]wire.MemberInfo{{Index: 1, Addr: deadAddr, Pids: []int32{1}}})
	p0.Register(0, &echoNode{})
	p0.Start()
	p0.Do(func() { p0.Send(0, 3, "ping") })

	deadline := time.After(10 * time.Second)
	for downs.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("OnDown never fired for the unreachable member")
		case <-time.After(10 * time.Millisecond):
		}
	}
}
