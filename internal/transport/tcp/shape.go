package tcp

import (
	"time"

	"skueue/internal/transport"
	"skueue/internal/xrand"
)

// shaper injects the Options.Shape WAN profile on the receive path of one
// remote sender. Admitted sequenced frames (envelopes and book updates)
// are parked in a FIFO pipe and released to the runner after a sampled
// delay instead of immediately.
//
// Shaping must preserve per-sender FIFO order: preAdmit advances the
// enqueued cursor at admission, and markDelivered advances the durable
// delivery cursor to the maximum sequence seen. Delivering frame n+1
// before frame n would let a state capture record a cursor covering an
// undelivered frame, which the sender would then prune — losing the frame
// across a crash. A single pipe goroutine per sender (not per connection,
// and not one time.AfterFunc per frame) makes reordering impossible: the
// pipe outlives connection resets, so a frame admitted on a dying
// connection still delivers before anything admitted on its replacement.
//
// Only the inbound path is shaped. Acknowledgments stay immediate —
// delaying them merely postpones prune, which is always safe — so one
// traversal of the pipe charges exactly one one-way delay per message.
// After a sender reboot the pipe can still hold old-epoch frames; their
// markDelivered calls no-op on the boot check and their node effects are
// the benign pre-crash duplicates the protocol layer already drops.
type shaper struct {
	idx   int32
	shape transport.Shape
	ch    chan shapedTask
}

type shapedTask struct {
	arrived time.Time
	fn      func()
}

// shaperBuffer bounds admitted-but-unreleased frames per sender; a full
// pipe backpressures the connection goroutine, which is exactly what a
// congested WAN path does.
const shaperBuffer = 4096

// shaperFor returns the shaping pipe for sender idx, creating it (and its
// goroutine) on first use, or nil when shaping is off. Pipes live until
// the peer closes, deliberately spanning connection resets.
func (p *Peer) shaperFor(idx int32) *shaper {
	if !p.opts.Shape.Enabled() {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh, ok := p.shapers[idx]; ok {
		return sh
	}
	sh := &shaper{idx: idx, shape: p.opts.Shape, ch: make(chan shapedTask, shaperBuffer)}
	p.shapers[idx] = sh
	go sh.run(p)
	return sh
}

// admit routes an admitted frame's delivery through the shaping pipe, or
// runs it inline when shaping is off. Called on the connection goroutine;
// a full pipe blocks it (TCP backpressure), never the runner.
func (sh *shaper) admit(p *Peer, fn func()) {
	if sh == nil {
		fn()
		return
	}
	select {
	case sh.ch <- shapedTask{arrived: time.Now(), fn: fn}:
	case <-p.quit:
	}
}

// run releases parked frames in admission order after their sampled
// delays. The pipe goroutine owns its RNG — Peer.rng is runner-confined —
// and is unreachable from the runner, so sleeping here stalls only this
// sender's shaped traffic.
func (sh *shaper) run(p *Peer) {
	rng := xrand.New(p.opts.Seed ^ int64(sh.idx)<<33 ^ 0x5a17e)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-p.quit:
			return
		case task := <-sh.ch:
			if wait := time.Until(task.arrived.Add(sh.shape.Wall(rng))); wait > 0 {
				timer.Reset(wait)
				select {
				case <-p.quit:
					return
				case <-timer.C:
				}
			}
			task.fn()
		}
	}
}
