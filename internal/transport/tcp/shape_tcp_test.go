package tcp

import (
	"net"
	"sync"
	"testing"
	"time"

	"skueue/internal/transport"
	"skueue/internal/wire"
)

// orderNode records payload arrival order and times.
type orderNode struct {
	mu   sync.Mutex
	got  []int
	when []time.Time
}

func (n *orderNode) OnInit(ctx *transport.Context)    {}
func (n *orderNode) OnTimeout(ctx *transport.Context) {}
func (n *orderNode) OnMessage(ctx *transport.Context, from transport.NodeID, payload any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.got = append(n.got, payload.(int))
	n.when = append(n.when, time.Now())
}

func (n *orderNode) snapshot() ([]int, []time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]int(nil), n.got...), append([]time.Time(nil), n.when...)
}

// TestShapedPeerDelaysButPreservesFIFO sends a burst across the wire into
// a WAN-shaped receiver and asserts every frame is (a) delayed by at
// least the configured latency and (b) delivered in admission order —
// the property the per-sender shaping pipe exists to protect (an
// out-of-order delivery could let a snapshot cursor cover an undelivered
// frame).
func TestShapedPeerDelaysButPreservesFIFO(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis0.Close()
	defer lis1.Close()

	const latency = 80 * time.Millisecond
	p0 := New(Options{Index: 0, Addr: lis0.Addr().String(), Pids: []int32{0}, Seed: 1, Tick: time.Millisecond})
	p1 := New(Options{
		Index: 1, Addr: lis1.Addr().String(), Pids: []int32{1}, Seed: 1, Tick: time.Millisecond,
		Shape: transport.Shape{Latency: latency, Jitter: 10 * time.Millisecond},
	})
	defer p0.Close()
	defer p1.Close()
	p0.SetBook([]wire.MemberInfo{p1.Me()})
	p1.SetBook([]wire.MemberInfo{p0.Me()})

	sink := &orderNode{}
	p0.Register(0, &echoNode{})
	p1.Register(3, sink)
	serve(t, lis0, p0)
	serve(t, lis1, p1)
	p0.Start()
	p1.Start()

	const burst = 20
	sent := time.Now()
	for i := 0; i < burst; i++ {
		i := i
		p0.Do(func() { p0.Send(0, 3, i) })
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := sink.snapshot()
		if len(got) == burst {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d shaped frames delivered in 10s", len(got), burst)
		}
		time.Sleep(5 * time.Millisecond)
	}

	got, when := sink.snapshot()
	for i, v := range got {
		if v != i {
			t.Fatalf("shaped delivery out of order: got %v", got)
		}
	}
	// Allow generous slack below the nominal latency for coarse timers.
	if earliest := when[0].Sub(sent); earliest < latency/2 {
		t.Fatalf("first shaped frame arrived after %v, want >= %v", earliest, latency/2)
	}
}
