// Package tcp is the networked transport.Network backend: each
// operating-system process runs a Peer hosting a subset of the protocol
// nodes, and messages between members travel as length-prefixed gob
// frames over persistent TCP links (see internal/wire).
//
// # Addressing
//
// NodeIDs are globally routable without coordination:
//
//   - the three virtual nodes of process pid live at IDs 3*pid+kind
//     (internal/core.NodeIDForProcess), and the address book maps pids to
//     members, so any member resolves any bootstrap or joined node;
//   - nodes spawned at runtime (leave replacements) get IDs from the
//     spawning member's reserved range DynBase + Index*DynSpan + i, so the
//     member is recoverable from the ID alone.
//
// # Execution model
//
// One runner goroutine per Peer executes every handler callback, every
// TIMEOUT tick and every injected closure (Do), serializing all access to
// the hosted nodes and their shared member state — the same
// single-threaded discipline a simulated process enjoys, while different
// members run genuinely in parallel. Inbound frames and outbound writes
// are handled by per-connection goroutines that never touch node state.
//
// # Delivery guarantees
//
// Every link (the directed frame stream from one member to another)
// assigns monotonically increasing sequence numbers to its frames and
// keeps them buffered until the receiver's cumulative acknowledgment
// covers them. Acknowledgments piggyback on reverse-direction traffic
// (wire.Envelope.Ack) and on a standalone wire.Ack frame written on the
// connection's reverse path when the link is otherwise idle. When a
// connection dies — detected at write time or by the reader goroutine —
// the link redials with backoff, learns the receiver's last delivered
// sequence from the HelloAck handshake, and replays every buffered frame
// past it in order; the receiver drops any sequence it has already
// delivered. The result is exactly-once, per-link FIFO delivery across
// arbitrary connection resets, including frames the kernel accepted but
// the network dropped.
//
// Across member crashes the guarantee is pairwise two-sided: each member
// tracks the boot epoch of every sender (wire.Hello.Boot) and resets its
// delivery sequence when the epoch changes, and a member restored from a
// snapshot resumes the receive sequences recorded there (see
// internal/server for the write-ahead snapshot discipline that makes
// acknowledgment release durable). A member that never comes back is
// detected by the give-up timeout (Options.GiveUp): the dialing side
// reports it through Options.OnDown so the hosting layer can fail
// blocked operations instead of stalling forever.
//
// Frames addressed to a pid no member claims yet are parked until an
// address-book update names its host, which covers the join handshake
// races.
package tcp

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"skueue/internal/transport"
	"skueue/internal/wire"
	"skueue/internal/xrand"
)

// Dynamic NodeID layout: IDs below DynBase belong to process triads
// (3*pid+kind); IDs at or above encode the spawning member.
const (
	// DynBase is the first runtime-allocated NodeID; it caps process IDs
	// at DynBase/3 processes per cluster.
	DynBase = 1 << 20
	// DynSpan is the runtime allocation window per member: the number of
	// leave replacements a member can spawn over its lifetime before the
	// range is exhausted (IDs are not recycled; at three per adjacent
	// leave this covers tens of thousands of leaves).
	DynSpan = 1 << 16
)

// Options configures a Peer.
type Options struct {
	// Index is this member's index; it must be unique across the cluster.
	Index int32
	// Addr is the member's advertised listen address (host:port). The
	// listener itself is owned by the caller, which hands inbound peer
	// connections to AcceptPeer.
	Addr string
	// Pids are the process IDs this member hosts.
	Pids []int32
	// Seed seeds the backend RNG.
	Seed int64
	// Tick is the TIMEOUT cadence; default 1ms.
	Tick time.Duration
	// Logf receives diagnostics; default discards.
	Logf func(format string, args ...any)
	// Boot is this member's boot epoch, strictly increasing across
	// restarts of the same member index (default 1). Receivers reset
	// their per-sender delivery sequence when it changes.
	Boot int64
	// AckGate delays acknowledgment release until the hosting layer calls
	// ReleaseAcks (the write-ahead snapshot discipline): delivered frames
	// stay unacknowledged — and thus replayable by their sender — until a
	// durable snapshot covers their effects. Off, deliveries acknowledge
	// immediately.
	AckGate bool
	// GiveUp, when positive, bounds how long a link keeps redialing an
	// unreachable member before declaring it down; OnDown fires once per
	// elapsed GiveUp period while the member stays unreachable.
	GiveUp time.Duration
	// OnDown receives give-up notifications. It runs on a link goroutine
	// and must not block.
	OnDown func(index int32)
	// Shape is an optional WAN delivery profile applied on the receive
	// path: every admitted sequenced frame is released to the runner after
	// a sampled extra delay, FIFO per sender (see shaper). The zero Shape
	// delivers immediately.
	Shape transport.Shape
	// SendGate, when set, interposes on every frame leaving this member
	// for a remote peer: route performs the actual enqueue onto the
	// target link, and the gate must run it exactly once, on the runner
	// goroutine, preserving submission order across all gated sends. The
	// durable server installs one to hold outbound frames until the
	// operation journal is synced past everything staged when the frame
	// was emitted (WAL-before-send): a wave batch may otherwise carry an
	// operation whose journal record a crash then loses, and the restart
	// would replay that wave without the operation — diverging from the
	// shape peers already recorded — while a session client re-presents
	// the officially-never-accepted operation for a second execution.
	// Local deliveries bypass the gate: they cross no member boundary, so
	// a crash erases them together with the records.
	SendGate func(route func())
}

type nodeState struct {
	h        transport.Handler
	active   bool
	timeouts bool
	ctx      transport.Context
}

// link is the sending side of one directed member-to-member stream. Both
// stages of the outbound pipeline are mutex-guarded slices rather than
// channels: the queue never blocks the runner goroutine however dead the
// target member is, and a state capture (CaptureState) can copy the
// not-yet-delivered frames — queued and unacknowledged alike — without
// draining anything.
//
//skueue:snapshot-state LinkState
type link struct {
	idx  int32
	quit chan struct{}

	// bmu shares rank 60 with Peer.mu: the two are never held together
	// (see route's unlock-before-send comment).
	//
	//skueue:lock 60
	bmu sync.Mutex
	//skueue:guarded-by bmu
	queue []any // accepted, not yet transmitted (unsequenced)
	//skueue:guarded-by bmu
	unacked []any // transmitted with a sequence, awaiting acknowledgment
	//skueue:guarded-by bmu
	//skueue:ephemeral -- per-boot sequence counter; restored frames get fresh sequences under the new epoch
	nextSeq uint64
	// Cumulative-ack intake, coalesced to the maximum seen.
	//
	//skueue:guarded-by bmu
	//skueue:ephemeral -- per-boot acknowledgment cursor; the restore handshake re-establishes it
	pendingAck uint64
	// deadConns records connections whose reader goroutine saw them die,
	// so an idle link still replays frames lost to a reset. A set, not a
	// channel: a dropped notification would leave the link blocked on a
	// dead connection forever.
	//
	//skueue:guarded-by bmu
	//skueue:ephemeral -- live connection bookkeeping; no connection survives a restart
	deadConns map[*wire.Conn]bool

	// notify wakes the link goroutine for new frames, acknowledgments or
	// connection deaths.
	notify chan struct{}
}

// recvState tracks one remote sender. enqueued is the connection-side
// dedupe cursor (highest sequence admitted into the task queue);
// delivered trails it, advanced on the runner goroutine as frames
// actually reach their nodes, so a state capture never records a
// sequence whose effects it does not hold. acked is the highest sequence
// acknowledgment release has reached (== delivered unless AckGate holds
// acks back for the write-ahead snapshot), and lastSent the highest
// acknowledgment actually transmitted.
//
//skueue:snapshot-state RecvEntry
type recvState struct {
	boot     int64
	enqueued uint64
	//skueue:guarded-by Peer.mu
	delivered uint64
	acked     uint64
	//skueue:ephemeral -- transmit-side ack dedupe; the first ack of the new boot re-seeds it
	lastSent uint64
}

// RecvEntry is one sender's durable receive cursor, as captured into and
// restored from a member snapshot.
type RecvEntry struct {
	Index int32
	Boot  int64
	Seq   uint64
}

// LinkState is the not-yet-delivered outbound traffic of one link at
// capture time: every envelope the target member has not durably
// acknowledged. A restored member re-queues them (under fresh sequence
// numbers of its new boot epoch), so a serve or aggregate emitted just
// before the snapshot but swallowed by the crash still reaches its
// destination; the receiving side tolerates the duplicates this can
// produce (see internal/core).
type LinkState struct {
	Index  int32
	Frames []wire.Envelope
}

// PeerState is the transport-level state a member persists: its own boot
// epoch, the runner clock, the dynamic NodeID allocator, the receive
// cursor for every known sender, and the undelivered outbound frames per
// link.
type PeerState struct {
	Boot    int64
	Now     int64
	NextDyn int32
	Recv    []RecvEntry
	Links   []LinkState
}

// Peer is one cluster member's transport endpoint.
//
//skueue:snapshot-state PeerState
type Peer struct {
	opts Options
	//skueue:ephemeral -- fault-injection randomness, reseeded per boot; determinism is per-run, not cross-restart
	rng *xrand.RNG

	// Runner-confined state (nodes, clock, dynamic allocator). Register is
	// additionally allowed before Start, when no runner exists yet.
	//
	//skueue:ephemeral -- node registry; the hosting layer re-registers every node after restore
	nodes map[transport.NodeID]*nodeState
	//skueue:ephemeral -- tick iteration order, rebuilt by re-registration
	order     []transport.NodeID // registration order, for tick iteration
	now       int64
	nextDyn   int32
	heldLocal map[transport.NodeID][]wire.Envelope
	// localPending counts local deliveries sitting in the task queue. A
	// state capture refuses while any are in flight: a local send crosses
	// no link, so nothing would replay it if the snapshot cut fell between
	// the send and its delivery.
	localPending int

	// Task queue feeding the runner.
	//
	//skueue:lock 70
	//skueue:ephemeral -- mutex; its zero value is ready after restore
	taskMu sync.Mutex
	//skueue:guarded-by taskMu
	//skueue:ephemeral -- pending runner closures; a capture refuses while local work is queued (localPending)
	tasks []func()
	//skueue:ephemeral -- runner wake channel, recreated by Start
	wake chan struct{}

	// Address book, links and receive cursors (shared with connection
	// goroutines). Shares rank 60 with link.bmu: never hold both.
	//
	//skueue:lock 60
	mu sync.Mutex
	//skueue:guarded-by mu
	//skueue:ephemeral -- address book; a stale book could regress addresses, and the seed re-broadcasts on rejoin
	book map[int32]wire.MemberInfo
	//skueue:guarded-by mu
	//skueue:ephemeral -- pid routing cache, rebuilt from the re-broadcast book
	pidToMember map[int32]int32
	//skueue:guarded-by mu
	links map[int32]*link
	//skueue:guarded-by mu
	pendingPid map[int32][]wire.Envelope
	//skueue:guarded-by mu
	recv map[int32]*recvState
	//skueue:guarded-by mu
	//skueue:ephemeral -- WAN-shaping configuration, reapplied by the harness after restore
	shapers map[int32]*shaper
	// fenced records senders whose reconnect replay completed at least
	// once in this boot: a wire.ReplayFence was delivered through the
	// ordered receive path, so every frame the sender buffered before the
	// fence's connection was established has been processed by the runner.
	// Consulted by a restarting member's replay gate (ReplayFenced).
	//
	//skueue:guarded-by mu
	//skueue:ephemeral -- per-boot replay progress; a new boot starts unfenced by definition
	fenced map[int32]bool

	//skueue:ephemeral -- runner lifecycle channel, recreated by Start
	quit chan struct{}
	//skueue:ephemeral -- runner lifecycle channel, recreated by Start
	stopped chan struct{}
	//skueue:ephemeral -- lifecycle flag; a restored peer has not been started yet
	started bool
}

var _ transport.Network = (*Peer)(nil)
var _ transport.Registry = (*Peer)(nil)

// New creates a Peer. Register the bootstrap nodes and seed the address
// book (SetBook) before Start.
func New(opts Options) *Peer {
	if opts.Tick <= 0 {
		opts.Tick = time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Boot <= 0 {
		opts.Boot = 1
	}
	p := &Peer{
		opts:        opts,
		rng:         xrand.New(opts.Seed ^ int64(opts.Index)<<17),
		nodes:       make(map[transport.NodeID]*nodeState),
		heldLocal:   make(map[transport.NodeID][]wire.Envelope),
		wake:        make(chan struct{}, 1),
		book:        make(map[int32]wire.MemberInfo),
		pidToMember: make(map[int32]int32),
		links:       make(map[int32]*link),
		pendingPid:  make(map[int32][]wire.Envelope),
		recv:        make(map[int32]*recvState),
		shapers:     make(map[int32]*shaper),
		fenced:      make(map[int32]bool),
		quit:        make(chan struct{}),
		stopped:     make(chan struct{}),
	}
	p.AddMember(p.Me())
	return p
}

// Me returns this member's address-book entry.
func (p *Peer) Me() wire.MemberInfo {
	return wire.MemberInfo{Index: p.opts.Index, Addr: p.opts.Addr, Pids: p.opts.Pids}
}

// ---- transport.Network ----

// Send routes a payload to the member hosting the target node; local
// targets are delivered through the task queue, preserving asynchrony.
// Like every node-touching Peer method it must run on the runner
// goroutine (handler callbacks, Do/DoSync closures) or before Start:
// isLocal consults the runner-confined node table.
//
//skueue:wire-payload
func (p *Peer) Send(from, to transport.NodeID, payload any) {
	env := wire.Envelope{From: from, To: to, Payload: payload}
	if p.isLocal(to) {
		p.localPending++
		p.Do(func() {
			p.localPending--
			p.deliver(env)
		})
		return
	}
	if p.opts.SendGate != nil {
		p.opts.SendGate(func() { p.route(env) })
		return
	}
	p.route(env)
}

// Spawn registers a runtime-created node under a fresh ID from this
// member's reserved range. Runner goroutine only (handlers, Do closures).
func (p *Peer) Spawn(h transport.Handler) transport.NodeID {
	if p.nextDyn >= DynSpan {
		panic("tcp: dynamic NodeID range exhausted")
	}
	id := transport.NodeID(DynBase + p.opts.Index*DynSpan + p.nextDyn)
	p.nextDyn++
	p.register(id, h)
	return id
}

// Now returns the tick count: the backend clock completions are stamped
// with.
func (p *Peer) Now() int64 { return p.now }

// Rand returns the backend RNG (runner goroutine only).
func (p *Peer) Rand() *xrand.RNG { return p.rng }

// StopTimeouts disables TIMEOUT for a local node.
func (p *Peer) StopTimeouts(id transport.NodeID) {
	if st, ok := p.nodes[id]; ok {
		st.timeouts = false
	}
}

// Deactivate drops a local node; further deliveries to it are logged and
// discarded (the simulator panics instead, but a networked member cannot
// assume global quiescence).
func (p *Peer) Deactivate(id transport.NodeID) {
	if st, ok := p.nodes[id]; ok {
		st.active = false
	}
}

// ---- transport.Registry ----

// Register places a node at a fixed ID (bootstrap wiring and joins; see
// core.NodeIDForProcess). Valid before Start or on the runner goroutine.
func (p *Peer) Register(id transport.NodeID, h transport.Handler) {
	p.register(id, h)
}

func (p *Peer) register(id transport.NodeID, h transport.Handler) {
	if _, dup := p.nodes[id]; dup {
		panic(fmt.Sprintf("tcp: node %d registered twice", id))
	}
	st := &nodeState{h: h, active: true, timeouts: true, ctx: transport.NewContext(p, id)}
	p.nodes[id] = st
	p.order = append(p.order, id)
	h.OnInit(&st.ctx)
	if held, ok := p.heldLocal[id]; ok {
		delete(p.heldLocal, id)
		for _, env := range held {
			p.deliver(env)
		}
	}
}

// ---- Runner ----

// Start launches the runner and the TIMEOUT ticker.
func (p *Peer) Start() {
	if p.started {
		return
	}
	p.started = true
	go p.run()
}

// Close stops the runner, the ticker and all links.
func (p *Peer) Close() {
	select {
	case <-p.quit:
		return
	default:
	}
	close(p.quit)
	if p.started {
		<-p.stopped
	}
	p.mu.Lock()
	for _, l := range p.links {
		close(l.quit)
	}
	p.mu.Unlock()
}

// Do schedules fn on the runner goroutine, where it may touch hosted
// nodes, inject requests and call Send/Spawn. It returns immediately.
//
//skueue:runs-on-runner
func (p *Peer) Do(fn func()) {
	p.taskMu.Lock()
	p.tasks = append(p.tasks, fn)
	p.taskMu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// DoSync runs fn on the runner goroutine and waits for it to finish. If
// the peer shuts down before the task runs, DoSync returns without it —
// waiting for the runner to have fully exited first, so fn can no longer
// be running concurrently with the caller.
//
//skueue:runs-on-runner
//skueue:blocking -- waits for the task to finish on the runner; calling it from the runner would self-deadlock
func (p *Peer) DoSync(fn func()) {
	done := make(chan struct{})
	p.Do(func() { defer close(done); fn() })
	select {
	case <-done:
	case <-p.quit:
		if p.started {
			<-p.stopped
		}
		select {
		case <-done:
		default:
		}
	}
}

// run is the runner goroutine: the single thread on which every hosted
// node, handler callback and scheduled task executes. Nothing reachable
// from here may block (see internal/analysis/runnerblock).
//
//skueue:runner
func (p *Peer) run() {
	defer close(p.stopped)
	ticker := time.NewTicker(p.opts.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-ticker.C:
			p.tickAll()
		case <-p.wake:
			p.drainTasks()
		}
	}
}

func (p *Peer) drainTasks() {
	for {
		p.taskMu.Lock()
		tasks := p.tasks
		p.tasks = nil
		p.taskMu.Unlock()
		if len(tasks) == 0 {
			return
		}
		for _, fn := range tasks {
			fn()
		}
	}
}

// tickAll advances the clock and fires TIMEOUT on every live node, then
// drains tasks the timeouts produced.
func (p *Peer) tickAll() {
	p.now++
	for _, id := range p.order {
		st := p.nodes[id]
		if st.active && st.timeouts {
			st.h.OnTimeout(&st.ctx)
		}
	}
	p.drainTasks()
}

func (p *Peer) deliver(env wire.Envelope) {
	st, ok := p.nodes[env.To]
	if !ok {
		// A frame can outrun the local registration it depends on (join
		// handshakes); park it until the node appears.
		p.heldLocal[env.To] = append(p.heldLocal[env.To], env)
		p.opts.Logf("tcp[%d]: holding %T for unregistered node %d", p.opts.Index, env.Payload, env.To)
		return
	}
	if !st.active {
		p.opts.Logf("tcp[%d]: dropping %T for deactivated node %d", p.opts.Index, env.Payload, env.To)
		return
	}
	st.h.OnMessage(&st.ctx, env.From, env.Payload)
}

// ---- Addressing ----

func (p *Peer) isLocal(id transport.NodeID) bool {
	if _, ok := p.nodes[id]; ok {
		return true
	}
	idx, ok := p.resolve(id)
	return ok && idx == p.opts.Index
}

// resolve maps a NodeID to the member hosting it.
func (p *Peer) resolve(id transport.NodeID) (int32, bool) {
	if id >= DynBase {
		return (int32(id) - DynBase) / DynSpan, true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.pidToMember[int32(id)/3]
	return idx, ok
}

func (p *Peer) route(env wire.Envelope) {
	idx, ok := p.resolve(env.To)
	if !ok {
		pid := int32(env.To) / 3
		p.mu.Lock()
		p.pendingPid[pid] = append(p.pendingPid[pid], env)
		p.mu.Unlock()
		p.opts.Logf("tcp[%d]: parking %T for unknown pid %d", p.opts.Index, env.Payload, pid)
		return
	}
	p.linkTo(idx).send(env)
}

// ---- Address book ----

// SetBook merges a full address book (bootstrap, hello, join ack).
func (p *Peer) SetBook(ms []wire.MemberInfo) {
	for _, m := range ms {
		p.AddMember(m)
	}
}

// AddMember merges one member into the address book and releases any
// frames parked on its pids.
func (p *Peer) AddMember(m wire.MemberInfo) {
	var release []wire.Envelope
	p.mu.Lock()
	cur, ok := p.book[m.Index]
	if !ok {
		cur = m
	} else {
		if m.Addr != "" {
			cur.Addr = m.Addr
		}
		for _, pid := range m.Pids {
			dup := false
			for _, have := range cur.Pids {
				if have == pid {
					dup = true
					break
				}
			}
			if !dup {
				cur.Pids = append(cur.Pids, pid)
			}
		}
	}
	p.book[m.Index] = cur
	for _, pid := range cur.Pids {
		p.pidToMember[pid] = m.Index
		if parked := p.pendingPid[pid]; len(parked) > 0 {
			release = append(release, parked...)
			delete(p.pendingPid, pid)
		}
	}
	p.mu.Unlock()
	for _, env := range release {
		p.route(env)
	}
}

// Book returns a sorted copy of the address book.
func (p *Peer) Book() []wire.MemberInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bookLocked()
}

//skueue:locked mu
func (p *Peer) bookLocked() []wire.MemberInfo {
	out := make([]wire.MemberInfo, 0, len(p.book))
	for _, m := range p.book {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// BroadcastBook pushes the current book to every known member, opening
// links as needed (the seed calls it when a member joins or rejoins, so
// everyone learns the newcomer's address before protocol traffic names
// it). Book updates share the links' sequence space, so a broadcast lost
// to a connection reset is replayed like any protocol frame.
func (p *Peer) BroadcastBook() {
	p.mu.Lock()
	book := p.bookLocked()
	p.mu.Unlock()
	for _, m := range book {
		if m.Index == p.opts.Index {
			continue
		}
		p.linkTo(m.Index).send(wire.BookUpdate{Book: book})
	}
}

// ---- Receive cursors and acknowledgments ----

// senderHello records a peer handshake: a changed boot epoch means the
// sender restarted and will number its frames from zero again, so the
// delivery cursors reset. It returns the acknowledgment to hand back in
// the HelloAck — the replay point for the dialer.
func (p *Peer) senderHello(idx int32, boot int64) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs := p.recvLocked(idx)
	if rs.boot != boot {
		if rs.boot != 0 {
			p.opts.Logf("tcp[%d]: member %d rebooted (epoch %d -> %d); resetting delivery cursor %d",
				p.opts.Index, idx, rs.boot, boot, rs.delivered)
		}
		rs.boot = boot
		rs.enqueued, rs.delivered, rs.acked, rs.lastSent = 0, 0, 0, 0
	}
	return rs.acked
}

//skueue:locked mu
func (p *Peer) recvLocked(idx int32) *recvState {
	rs, ok := p.recv[idx]
	if !ok {
		rs = &recvState{}
		p.recv[idx] = rs
	}
	return rs
}

// preAdmit decides on the connection goroutine whether a sequenced frame
// from idx is new (admit) or a replay duplicate (drop). Sequences arrive
// in order per link — TCP preserves order within a connection and
// reconnect replay is an in-order suffix — so a cumulative cursor
// suffices. boot is the epoch of the connection's handshake: a frame
// still in flight on a pre-restart connection must not touch the reset
// cursor (the new epoch's handshake already arranged any replay needed),
// so stale-epoch frames are dropped outright.
func (p *Peer) preAdmit(idx int32, boot int64, seq uint64) bool {
	if seq == 0 {
		return true // unsequenced (never produced by current senders)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rs := p.recvLocked(idx)
	if rs.boot != boot {
		return false
	}
	if seq <= rs.enqueued {
		return false
	}
	rs.enqueued = seq
	return true
}

// markDelivered advances the durable receive cursor. It runs on the
// runner goroutine, in the same task as (and ahead of) the frame's node
// delivery, so a snapshot's cursor never exceeds the node state it
// captured. boot guards against a sender reboot racing the task queue.
func (p *Peer) markDelivered(idx int32, boot int64, seq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs := p.recvLocked(idx)
	if rs.boot != boot {
		return
	}
	if seq > rs.delivered {
		rs.delivered = seq
	}
	if !p.opts.AckGate && rs.delivered > rs.acked {
		rs.acked = rs.delivered
	}
}

// noteReplayFence records that sender idx's reconnect replay drained.
// Runs on the runner goroutine (ordered after every replayed frame's
// delivery task). The boot guard drops a fence still in flight on a
// connection from before the sender's own restart — its replacement
// connection replays again and fences again.
func (p *Peer) noteReplayFence(idx int32, boot int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rs, ok := p.recv[idx]; ok && rs.boot != boot {
		return
	}
	p.fenced[idx] = true
}

// ReplayFenced reports whether every listed sender has completed a
// reconnect replay since this peer booted. A member restoring from a
// fail-stop crash passes the senders its snapshot holds receive cursors
// for: once each has fenced, no pre-crash frame is still in flight
// toward this member, so (together with the core's held-serve drain) new
// client operations can no longer change the shape of a wave the replay
// must reproduce exactly.
func (p *Peer) ReplayFenced(senders []int32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, idx := range senders {
		if !p.fenced[idx] {
			return false
		}
	}
	return true
}

// takeAck returns the acknowledgment to piggyback on an outbound frame to
// idx, marking it transmitted so the idle acker stays quiet.
func (p *Peer) takeAck(idx int32) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs, ok := p.recv[idx]
	if !ok {
		return 0
	}
	if rs.acked > rs.lastSent {
		rs.lastSent = rs.acked
	}
	return rs.acked
}

// ackDue reports an acknowledgment that piggybacking has not transmitted
// yet, marking it sent.
func (p *Peer) ackDue(idx int32) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs, ok := p.recv[idx]
	if !ok || rs.acked <= rs.lastSent {
		return 0, false
	}
	rs.lastSent = rs.acked
	return rs.acked, true
}

// noteAckFor feeds a received cumulative acknowledgment to the link
// sending to idx, if one exists.
func (p *Peer) noteAckFor(idx int32, seq uint64) {
	p.mu.Lock()
	l := p.links[idx]
	p.mu.Unlock()
	if l != nil {
		l.noteAck(seq)
	}
}

// ReleaseAcks advances acknowledgment release to the given durable
// receive cursors (write-ahead snapshot discipline, AckGate mode): the
// hosting layer calls it after the snapshot recording these cursors hit
// stable storage. Entries whose boot epoch no longer matches — the sender
// restarted since the capture — are skipped.
func (p *Peer) ReleaseAcks(entries []RecvEntry) {
	p.mu.Lock()
	for _, e := range entries {
		rs, ok := p.recv[e.Index]
		if ok && rs.boot == e.Boot && e.Seq > rs.acked {
			rs.acked = e.Seq
		}
	}
	p.mu.Unlock()
}

// CaptureState snapshots the transport-level member state, including the
// undelivered outbound frames of every link. It must run on the runner
// goroutine (DoSync): the clock and the dynamic allocator are
// runner-confined, and with the runner parked no new sends race the
// capture. It returns nil while frames are parked for unknown pids or
// unregistered local nodes — such frames are delivered-but-held state a
// snapshot cannot represent, and they only exist transiently during join
// handshakes.
//
//skueue:snapshot-capture Peer link recvState
func (p *Peer) CaptureState() *PeerState {
	if len(p.heldLocal) > 0 || p.localPending > 0 {
		return nil
	}
	ps := &PeerState{Boot: p.opts.Boot, Now: p.now, NextDyn: p.nextDyn}
	p.mu.Lock()
	if len(p.pendingPid) > 0 {
		p.mu.Unlock()
		return nil
	}
	for idx, rs := range p.recv {
		if rs.boot == 0 && rs.delivered == 0 {
			continue
		}
		ps.Recv = append(ps.Recv, RecvEntry{Index: idx, Boot: rs.boot, Seq: rs.delivered})
	}
	links := make(map[int32]*link, len(p.links))
	for idx, l := range p.links {
		links[idx] = l
	}
	p.mu.Unlock() // never hold p.mu and a link's bmu together
	for idx, l := range links {
		frames := l.pendingFrames()
		var envs []wire.Envelope
		for _, f := range frames {
			if env, ok := f.(wire.Envelope); ok {
				env.Seq, env.Ack = 0, 0
				envs = append(envs, env)
			}
			// Book updates are not persisted: a stale book could regress
			// addresses, and the seed re-broadcasts on rejoin anyway.
		}
		if len(envs) > 0 {
			ps.Links = append(ps.Links, LinkState{Index: idx, Frames: envs})
		}
	}
	sort.Slice(ps.Recv, func(i, j int) bool { return ps.Recv[i].Index < ps.Recv[j].Index })
	sort.Slice(ps.Links, func(i, j int) bool { return ps.Links[i].Index < ps.Links[j].Index })
	return ps
}

// RestoreState rewinds the peer to a captured state (before Start). The
// restored receive cursors count as acknowledged: the snapshot holding
// them covers their effects, so senders may prune them — the HelloAck of
// the next handshake tells them to replay everything newer. Captured
// outbound frames re-enter their links' queues and get fresh sequence
// numbers under the new boot epoch. The peer must have been created with
// a boot epoch strictly above the captured one: receivers reset their
// dedupe cursors on a boot bump, so restoring under a stale epoch would
// silently replay frames into cursors that still cover them.
//
//skueue:snapshot-restore Peer link recvState
func (p *Peer) RestoreState(ps *PeerState) {
	if p.opts.Boot <= ps.Boot {
		panic(fmt.Sprintf("tcp: RestoreState with boot %d, captured state is from boot %d; the restored peer must advance the epoch", p.opts.Boot, ps.Boot))
	}
	p.now = ps.Now
	p.nextDyn = ps.NextDyn
	p.mu.Lock()
	for _, e := range ps.Recv {
		p.recv[e.Index] = &recvState{boot: e.Boot, enqueued: e.Seq, delivered: e.Seq, acked: e.Seq}
	}
	p.mu.Unlock()
	for _, ls := range ps.Links {
		l := p.linkTo(ls.Index)
		for _, env := range ls.Frames {
			l.send(env)
		}
	}
}

// ---- Links ----

func (p *Peer) linkTo(idx int32) *link {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.links[idx]; ok {
		return l
	}
	l := &link{
		idx:    idx,
		quit:   make(chan struct{}),
		notify: make(chan struct{}, 1),
	}
	p.links[idx] = l
	go p.runLink(l)
	return l
}

// send queues a frame. It never blocks: a member that stopped reading
// must not stall the runner goroutine feeding the queue, however long it
// stays dead (the give-up timeout, not backpressure, is the bound on a
// dead member).
func (l *link) send(frame any) {
	l.bmu.Lock()
	l.queue = append(l.queue, frame)
	l.bmu.Unlock()
	l.wake()
}

func (l *link) wake() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// noteAck records a cumulative acknowledgment for this link, coalescing
// to the maximum, and wakes the link goroutine to prune its buffer.
func (l *link) noteAck(seq uint64) {
	l.bmu.Lock()
	if seq > l.pendingAck {
		l.pendingAck = seq
	}
	l.bmu.Unlock()
	l.wake()
}

// prune drops every buffered frame the cumulative acknowledgment covers.
func (l *link) prune() {
	l.bmu.Lock()
	ack := l.pendingAck
	i := 0
	for ; i < len(l.unacked); i++ {
		if frameSeq(l.unacked[i]) > ack {
			break
		}
	}
	if i > 0 {
		l.unacked = append(l.unacked[:0], l.unacked[i:]...)
	}
	l.bmu.Unlock()
}

// popQueue moves the oldest queued frame into the unacknowledged buffer
// under a fresh sequence number and returns it sealed with the piggyback
// acknowledgment.
func (l *link) popQueue(ack uint64) (any, bool) {
	l.bmu.Lock()
	defer l.bmu.Unlock()
	if len(l.queue) == 0 {
		return nil, false
	}
	frame := l.queue[0]
	l.queue = append(l.queue[:0], l.queue[1:]...)
	l.nextSeq++
	sealed := sealFrame(frame, l.nextSeq, ack)
	l.unacked = append(l.unacked, sealed)
	return sealed, true
}

// dropUnacked removes the frame with the given sequence (unencodable).
func (l *link) dropUnacked(seq uint64) {
	l.bmu.Lock()
	for i, f := range l.unacked {
		if frameSeq(f) == seq {
			l.unacked = append(l.unacked[:i], l.unacked[i+1:]...)
			break
		}
	}
	l.bmu.Unlock()
}

// unackedFrames copies the retransmission buffer (reconnect replay).
func (l *link) unackedFrames() []any {
	l.bmu.Lock()
	defer l.bmu.Unlock()
	return append([]any(nil), l.unacked...)
}

// pendingFrames copies everything not yet delivered — transmitted but
// unacknowledged frames first, then the untransmitted queue — for a state
// capture.
func (l *link) pendingFrames() []any {
	l.bmu.Lock()
	defer l.bmu.Unlock()
	out := make([]any, 0, len(l.unacked)+len(l.queue))
	out = append(out, l.unacked...)
	out = append(out, l.queue...)
	return out
}

// noteDead tells the link goroutine a connection died, so an idle link
// (nothing left to write) still reconnects and replays unacknowledged
// frames. Never lossy: the link re-checks the set on every wake-up.
func (l *link) noteDead(c *wire.Conn) {
	l.bmu.Lock()
	if l.deadConns == nil {
		l.deadConns = make(map[*wire.Conn]bool)
	}
	l.deadConns[c] = true
	l.bmu.Unlock()
	l.wake()
}

// adoptConn makes c the link's current connection: entries for previous
// connections are dropped (they can no longer be current), keeping the
// set bounded. It reports false if c already died — the reader goroutine
// can notice a death before the link loop ever runs with the connection.
func (l *link) adoptConn(c *wire.Conn) bool {
	l.bmu.Lock()
	defer l.bmu.Unlock()
	if l.deadConns[c] {
		delete(l.deadConns, c)
		return false
	}
	for k := range l.deadConns {
		delete(l.deadConns, k)
	}
	return true
}

// connDead reports whether the current connection was declared dead.
func (l *link) connDead(c *wire.Conn) bool {
	l.bmu.Lock()
	defer l.bmu.Unlock()
	if l.deadConns[c] {
		delete(l.deadConns, c)
		return true
	}
	return false
}

// sealFrame stamps a link frame with its sequence number and the current
// piggyback acknowledgment.
func sealFrame(frame any, seq, ack uint64) any {
	switch f := frame.(type) {
	case wire.Envelope:
		f.Seq, f.Ack = seq, ack
		return f
	case wire.BookUpdate:
		f.Seq, f.Ack = seq, ack
		return f
	}
	return frame
}

func frameSeq(frame any) uint64 {
	switch f := frame.(type) {
	case wire.Envelope:
		return f.Seq
	case wire.BookUpdate:
		return f.Seq
	}
	return 0
}

// writeFrame writes one sealed frame, handling the two failure classes:
// an encoding failure drops the frame (retrying can never succeed) and
// recycles the connection (a partial encode desyncs the gob stream); any
// other failure recycles the connection for redial-and-replay. It reports
// whether the connection survived.
func (p *Peer) writeFrame(l *link, conn *wire.Conn, sealed any) bool {
	err := conn.Write(sealed)
	if err == nil {
		return true
	}
	if errors.Is(err, wire.ErrEncode) {
		p.opts.Logf("tcp[%d]: dropping unencodable frame for member %d: %v", p.opts.Index, l.idx, err)
		l.dropUnacked(frameSeq(sealed))
	} else {
		p.opts.Logf("tcp[%d]: link to member %d broke (%v); redialing", p.opts.Index, l.idx, err)
	}
	conn.Close()
	return false
}

// runLink owns one directed stream: it dials (and redials) the target
// member, assigns sequence numbers, writes frames, keeps everything
// unacknowledged buffered, and replays past the receiver's cursor after
// every reconnect. The buffer only shrinks on cumulative acknowledgments,
// so a frame the kernel accepted but a reset swallowed is retransmitted.
func (p *Peer) runLink(l *link) {
	var conn *wire.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		if conn == nil {
			c, ackSeq := p.dial(l)
			if c == nil {
				return // shutting down
			}
			if !l.adoptConn(c) {
				c.Close()
				continue // died during the handshake; redial
			}
			conn = c
			l.noteAck(ackSeq)
			l.prune()
			for _, f := range l.unackedFrames() {
				f = sealFrame(f, frameSeq(f), p.takeAck(l.idx))
				if !p.writeFrame(l, conn, f) {
					conn = nil
					break
				}
			}
			if conn == nil {
				continue
			}
			// End-of-replay fence: every frame buffered unacknowledged at
			// reconnect now precedes it on this connection, so a receiver
			// restoring from a crash knows this link's pre-crash traffic
			// has fully arrived (see the replay gate in internal/server).
			if err := conn.Write(wire.ReplayFence{Boot: p.opts.Boot}); err != nil {
				p.opts.Logf("tcp[%d]: link to member %d broke (%v); redialing", p.opts.Index, l.idx, err)
				conn.Close()
				conn = nil
				continue
			}
		}
		l.prune()
		if l.connDead(conn) {
			conn.Close()
			conn = nil
			continue
		}
		if sealed, ok := l.popQueue(p.takeAck(l.idx)); ok {
			if !p.writeFrame(l, conn, sealed) {
				conn = nil
			}
			continue
		}
		select {
		case <-l.quit:
			return
		case <-p.quit:
			return
		case <-l.notify:
			// Re-check queue, acknowledgments and connection liveness at
			// the top of the loop.
		}
	}
}

// dial establishes a connection to member l.idx, performing the Hello
// exchange. It retries until it succeeds or the peer shuts down, firing
// the give-up notification each time Options.GiveUp elapses without a
// connection. It returns the connection and the receiver's cumulative
// acknowledgment (the replay point).
func (p *Peer) dial(l *link) (*wire.Conn, uint64) {
	backoff := 10 * time.Millisecond
	var giveUpAt time.Time
	if p.opts.GiveUp > 0 {
		giveUpAt = time.Now().Add(p.opts.GiveUp)
	}
	for {
		select {
		case <-l.quit:
			return nil, 0
		case <-p.quit:
			return nil, 0
		default:
		}
		p.mu.Lock()
		addr := p.book[l.idx].Addr
		p.mu.Unlock()
		if addr == "" {
			p.opts.Logf("tcp[%d]: no address for member %d yet", p.opts.Index, l.idx)
		} else if nc, err := net.DialTimeout("tcp", addr, 2*time.Second); err == nil {
			conn := wire.NewConn(nc)
			if err := conn.Write(wire.Hello{Kind: "peer", Me: p.Me(), Book: p.Book(), Boot: p.opts.Boot}); err == nil {
				if ack, err := conn.Read(); err == nil {
					if ha, ok := ack.(wire.HelloAck); ok {
						p.SetBook(ha.Book)
						// Reverse path: acknowledgments and book pushes.
						go p.drainControl(conn, l)
						return conn, ha.AckSeq
					}
				}
			}
			conn.Close()
		} else {
			p.opts.Logf("tcp[%d]: dial member %d (%s): %v", p.opts.Index, l.idx, addr, err)
		}
		select {
		case <-time.After(backoff):
		case <-l.quit:
			return nil, 0
		case <-p.quit:
			return nil, 0
		}
		if backoff < time.Second {
			backoff *= 2
		}
		if !giveUpAt.IsZero() && time.Now().After(giveUpAt) {
			p.opts.Logf("tcp[%d]: member %d unreachable for %v; declaring it down", p.opts.Index, l.idx, p.opts.GiveUp)
			if p.opts.OnDown != nil {
				p.opts.OnDown(l.idx)
			}
			giveUpAt = time.Now().Add(p.opts.GiveUp)
		}
	}
}

// drainControl consumes frames the remote pushes on a dialer-owned
// connection — cumulative acknowledgments and address-book updates —
// until the connection closes, then tells the link so it reconnects and
// replays even when it has nothing new to write.
func (p *Peer) drainControl(conn *wire.Conn, l *link) {
	for {
		v, err := conn.Read()
		if err != nil {
			l.noteDead(conn)
			return
		}
		switch m := v.(type) {
		case wire.Ack:
			l.noteAck(m.Seq)
		case wire.BookUpdate:
			p.SetBook(m.Book)
		}
	}
}

// ackLoop writes standalone acknowledgments on the reverse path of an
// inbound peer connection while no outbound traffic to that member
// piggybacks them. It exits when the connection dies or the read loop
// finishes.
func (p *Peer) ackLoop(conn *wire.Conn, idx int32, stop <-chan struct{}) {
	period := 8 * p.opts.Tick
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-p.quit:
			return
		case <-t.C:
			if seq, due := p.ackDue(idx); due {
				if err := conn.Write(wire.Ack{Seq: seq}); err != nil {
					return
				}
			}
		}
	}
}

// AcceptPeer serves an inbound peer connection whose Hello the listener
// already consumed: it merges the dialer's book, acks with ours (carrying
// the delivery cursor the dialer must replay from), and delivers inbound
// envelopes — deduplicated by link sequence — until the connection
// closes. Run it on the connection's goroutine.
func (p *Peer) AcceptPeer(conn *wire.Conn, hello wire.Hello) {
	idx := hello.Me.Index
	p.AddMember(hello.Me)
	p.SetBook(hello.Book)
	ackSeq := p.senderHello(idx, hello.Boot)
	if err := conn.Write(wire.HelloAck{Book: p.Book(), Index: p.opts.Index, AckSeq: ackSeq}); err != nil {
		conn.Close()
		return
	}
	stop := make(chan struct{})
	defer close(stop)
	go p.ackLoop(conn, idx, stop)
	boot := hello.Boot
	sh := p.shaperFor(idx) // nil unless Options.Shape is enabled
	for {
		v, err := conn.Read()
		if err != nil {
			conn.Close()
			return
		}
		switch m := v.(type) {
		case wire.Envelope:
			if m.Ack > 0 {
				p.noteAckFor(idx, m.Ack)
			}
			if p.preAdmit(idx, boot, m.Seq) {
				m := m
				sh.admit(p, func() {
					p.Do(func() {
						// Cursor and node effect advance in the same runner
						// task: a state capture sees both or neither.
						p.markDelivered(idx, boot, m.Seq)
						p.deliver(m)
					})
				})
			}
		case wire.BookUpdate:
			if m.Ack > 0 {
				p.noteAckFor(idx, m.Ack)
			}
			if p.preAdmit(idx, boot, m.Seq) {
				m := m
				sh.admit(p, func() {
					p.SetBook(m.Book)
					p.Do(func() { p.markDelivered(idx, boot, m.Seq) })
				})
			}
		case wire.Ack:
			p.noteAckFor(idx, m.Seq)
		case wire.ReplayFence:
			// Ride the same ordered path as sequenced frames (shaper pipe,
			// then runner queue): when the runner task fires, every frame
			// the sender replayed ahead of the fence has been processed.
			sh.admit(p, func() {
				p.Do(func() { p.noteReplayFence(idx, m.Boot) })
			})
		default:
			p.opts.Logf("tcp[%d]: unexpected peer frame %T", p.opts.Index, v)
		}
	}
}
