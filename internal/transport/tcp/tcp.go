// Package tcp is the networked transport.Network backend: each
// operating-system process runs a Peer hosting a subset of the protocol
// nodes, and messages between members travel as length-prefixed gob
// frames over persistent TCP links (see internal/wire).
//
// # Addressing
//
// NodeIDs are globally routable without coordination:
//
//   - the three virtual nodes of process pid live at IDs 3*pid+kind
//     (internal/core.NodeIDForProcess), and the address book maps pids to
//     members, so any member resolves any bootstrap or joined node;
//   - nodes spawned at runtime (leave replacements) get IDs from the
//     spawning member's reserved range DynBase + Index*DynSpan + i, so the
//     member is recoverable from the ID alone.
//
// # Execution model
//
// One runner goroutine per Peer executes every handler callback, every
// TIMEOUT tick and every injected closure (Do), serializing all access to
// the hosted nodes and their shared member state — the same
// single-threaded discipline a simulated process enjoys, while different
// members run genuinely in parallel. Inbound frames and outbound writes
// are handled by per-connection goroutines that never touch node state.
//
// # Delivery guarantees
//
// Links reconnect with backoff and resend the frame whose write failed,
// so dial failures and resets detected at write time lose nothing. A
// frame the kernel accepted but the network dropped on a mid-connection
// reset is NOT redelivered — exactly-once across arbitrary connection
// failures would need per-link acknowledgment sequencing, which this
// backend does not implement; it targets the paper's model of reliable
// processes on a reliable network (§I-B), where such resets do not
// occur. A member that never comes back stalls its senders' queues (no
// fail-stop story, same model). Frames addressed to a pid no member
// claims yet are parked until an address-book update names its host,
// which covers the join handshake races.
package tcp

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"skueue/internal/transport"
	"skueue/internal/wire"
	"skueue/internal/xrand"
)

// Dynamic NodeID layout: IDs below DynBase belong to process triads
// (3*pid+kind); IDs at or above encode the spawning member.
const (
	// DynBase is the first runtime-allocated NodeID; it caps process IDs
	// at DynBase/3 processes per cluster.
	DynBase = 1 << 20
	// DynSpan is the runtime allocation window per member: the number of
	// leave replacements a member can spawn over its lifetime before the
	// range is exhausted (IDs are not recycled; at three per adjacent
	// leave this covers tens of thousands of leaves).
	DynSpan = 1 << 16
)

// Options configures a Peer.
type Options struct {
	// Index is this member's index; it must be unique across the cluster.
	Index int32
	// Addr is the member's advertised listen address (host:port). The
	// listener itself is owned by the caller, which hands inbound peer
	// connections to AcceptPeer.
	Addr string
	// Pids are the process IDs this member hosts.
	Pids []int32
	// Seed seeds the backend RNG.
	Seed int64
	// Tick is the TIMEOUT cadence; default 1ms.
	Tick time.Duration
	// Logf receives diagnostics; default discards.
	Logf func(format string, args ...any)
}

type nodeState struct {
	h        transport.Handler
	active   bool
	timeouts bool
	ctx      transport.Context
}

type link struct {
	idx  int32
	out  chan any // wire.Envelope or wire.BookUpdate frames
	quit chan struct{}
}

// Peer is one cluster member's transport endpoint.
type Peer struct {
	opts Options
	rng  *xrand.RNG

	// Runner-confined state (nodes, clock, dynamic allocator). Register is
	// additionally allowed before Start, when no runner exists yet.
	nodes     map[transport.NodeID]*nodeState
	order     []transport.NodeID // registration order, for tick iteration
	now       int64
	nextDyn   int32
	heldLocal map[transport.NodeID][]wire.Envelope

	// Task queue feeding the runner.
	taskMu sync.Mutex
	tasks  []func()
	wake   chan struct{}

	// Address book and links (shared with connection goroutines).
	mu          sync.Mutex
	book        map[int32]wire.MemberInfo
	pidToMember map[int32]int32
	links       map[int32]*link
	pendingPid  map[int32][]wire.Envelope

	quit    chan struct{}
	stopped chan struct{}
	started bool
}

var _ transport.Network = (*Peer)(nil)
var _ transport.Registry = (*Peer)(nil)

// New creates a Peer. Register the bootstrap nodes and seed the address
// book (SetBook) before Start.
func New(opts Options) *Peer {
	if opts.Tick <= 0 {
		opts.Tick = time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	p := &Peer{
		opts:        opts,
		rng:         xrand.New(opts.Seed ^ int64(opts.Index)<<17),
		nodes:       make(map[transport.NodeID]*nodeState),
		heldLocal:   make(map[transport.NodeID][]wire.Envelope),
		wake:        make(chan struct{}, 1),
		book:        make(map[int32]wire.MemberInfo),
		pidToMember: make(map[int32]int32),
		links:       make(map[int32]*link),
		pendingPid:  make(map[int32][]wire.Envelope),
		quit:        make(chan struct{}),
		stopped:     make(chan struct{}),
	}
	p.AddMember(p.Me())
	return p
}

// Me returns this member's address-book entry.
func (p *Peer) Me() wire.MemberInfo {
	return wire.MemberInfo{Index: p.opts.Index, Addr: p.opts.Addr, Pids: p.opts.Pids}
}

// ---- transport.Network ----

// Send routes a payload to the member hosting the target node; local
// targets are delivered through the task queue, preserving asynchrony.
// Like every node-touching Peer method it must run on the runner
// goroutine (handler callbacks, Do/DoSync closures) or before Start:
// isLocal consults the runner-confined node table.
func (p *Peer) Send(from, to transport.NodeID, payload any) {
	env := wire.Envelope{From: from, To: to, Payload: payload}
	if p.isLocal(to) {
		p.Do(func() { p.deliver(env) })
		return
	}
	p.route(env)
}

// Spawn registers a runtime-created node under a fresh ID from this
// member's reserved range. Runner goroutine only (handlers, Do closures).
func (p *Peer) Spawn(h transport.Handler) transport.NodeID {
	if p.nextDyn >= DynSpan {
		panic("tcp: dynamic NodeID range exhausted")
	}
	id := transport.NodeID(DynBase + p.opts.Index*DynSpan + p.nextDyn)
	p.nextDyn++
	p.register(id, h)
	return id
}

// Now returns the tick count: the backend clock completions are stamped
// with.
func (p *Peer) Now() int64 { return p.now }

// Rand returns the backend RNG (runner goroutine only).
func (p *Peer) Rand() *xrand.RNG { return p.rng }

// StopTimeouts disables TIMEOUT for a local node.
func (p *Peer) StopTimeouts(id transport.NodeID) {
	if st, ok := p.nodes[id]; ok {
		st.timeouts = false
	}
}

// Deactivate drops a local node; further deliveries to it are logged and
// discarded (the simulator panics instead, but a networked member cannot
// assume global quiescence).
func (p *Peer) Deactivate(id transport.NodeID) {
	if st, ok := p.nodes[id]; ok {
		st.active = false
	}
}

// ---- transport.Registry ----

// Register places a node at a fixed ID (bootstrap wiring and joins; see
// core.NodeIDForProcess). Valid before Start or on the runner goroutine.
func (p *Peer) Register(id transport.NodeID, h transport.Handler) {
	p.register(id, h)
}

func (p *Peer) register(id transport.NodeID, h transport.Handler) {
	if _, dup := p.nodes[id]; dup {
		panic(fmt.Sprintf("tcp: node %d registered twice", id))
	}
	st := &nodeState{h: h, active: true, timeouts: true, ctx: transport.NewContext(p, id)}
	p.nodes[id] = st
	p.order = append(p.order, id)
	h.OnInit(&st.ctx)
	if held, ok := p.heldLocal[id]; ok {
		delete(p.heldLocal, id)
		for _, env := range held {
			p.deliver(env)
		}
	}
}

// ---- Runner ----

// Start launches the runner and the TIMEOUT ticker.
func (p *Peer) Start() {
	if p.started {
		return
	}
	p.started = true
	go p.run()
}

// Close stops the runner, the ticker and all links.
func (p *Peer) Close() {
	select {
	case <-p.quit:
		return
	default:
	}
	close(p.quit)
	if p.started {
		<-p.stopped
	}
	p.mu.Lock()
	for _, l := range p.links {
		close(l.quit)
	}
	p.mu.Unlock()
}

// Do schedules fn on the runner goroutine, where it may touch hosted
// nodes, inject requests and call Send/Spawn. It returns immediately.
func (p *Peer) Do(fn func()) {
	p.taskMu.Lock()
	p.tasks = append(p.tasks, fn)
	p.taskMu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// DoSync runs fn on the runner goroutine and waits for it to finish. If
// the peer shuts down before the task runs, DoSync returns without it —
// waiting for the runner to have fully exited first, so fn can no longer
// be running concurrently with the caller.
func (p *Peer) DoSync(fn func()) {
	done := make(chan struct{})
	p.Do(func() { defer close(done); fn() })
	select {
	case <-done:
	case <-p.quit:
		if p.started {
			<-p.stopped
		}
		select {
		case <-done:
		default:
		}
	}
}

func (p *Peer) run() {
	defer close(p.stopped)
	ticker := time.NewTicker(p.opts.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-ticker.C:
			p.tickAll()
		case <-p.wake:
			p.drainTasks()
		}
	}
}

func (p *Peer) drainTasks() {
	for {
		p.taskMu.Lock()
		tasks := p.tasks
		p.tasks = nil
		p.taskMu.Unlock()
		if len(tasks) == 0 {
			return
		}
		for _, fn := range tasks {
			fn()
		}
	}
}

// tickAll advances the clock and fires TIMEOUT on every live node, then
// drains tasks the timeouts produced.
func (p *Peer) tickAll() {
	p.now++
	for _, id := range p.order {
		st := p.nodes[id]
		if st.active && st.timeouts {
			st.h.OnTimeout(&st.ctx)
		}
	}
	p.drainTasks()
}

func (p *Peer) deliver(env wire.Envelope) {
	st, ok := p.nodes[env.To]
	if !ok {
		// A frame can outrun the local registration it depends on (join
		// handshakes); park it until the node appears.
		p.heldLocal[env.To] = append(p.heldLocal[env.To], env)
		p.opts.Logf("tcp[%d]: holding %T for unregistered node %d", p.opts.Index, env.Payload, env.To)
		return
	}
	if !st.active {
		p.opts.Logf("tcp[%d]: dropping %T for deactivated node %d", p.opts.Index, env.Payload, env.To)
		return
	}
	st.h.OnMessage(&st.ctx, env.From, env.Payload)
}

// ---- Addressing ----

func (p *Peer) isLocal(id transport.NodeID) bool {
	if _, ok := p.nodes[id]; ok {
		return true
	}
	idx, ok := p.resolve(id)
	return ok && idx == p.opts.Index
}

// resolve maps a NodeID to the member hosting it.
func (p *Peer) resolve(id transport.NodeID) (int32, bool) {
	if id >= DynBase {
		return (int32(id) - DynBase) / DynSpan, true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.pidToMember[int32(id)/3]
	return idx, ok
}

func (p *Peer) route(env wire.Envelope) {
	idx, ok := p.resolve(env.To)
	if !ok {
		pid := int32(env.To) / 3
		p.mu.Lock()
		p.pendingPid[pid] = append(p.pendingPid[pid], env)
		p.mu.Unlock()
		p.opts.Logf("tcp[%d]: parking %T for unknown pid %d", p.opts.Index, env.Payload, pid)
		return
	}
	p.linkTo(idx).send(env)
}

// ---- Address book ----

// SetBook merges a full address book (bootstrap, hello, join ack).
func (p *Peer) SetBook(ms []wire.MemberInfo) {
	for _, m := range ms {
		p.AddMember(m)
	}
}

// AddMember merges one member into the address book and releases any
// frames parked on its pids.
func (p *Peer) AddMember(m wire.MemberInfo) {
	var release []wire.Envelope
	p.mu.Lock()
	cur, ok := p.book[m.Index]
	if !ok {
		cur = m
	} else {
		if m.Addr != "" {
			cur.Addr = m.Addr
		}
		for _, pid := range m.Pids {
			dup := false
			for _, have := range cur.Pids {
				if have == pid {
					dup = true
					break
				}
			}
			if !dup {
				cur.Pids = append(cur.Pids, pid)
			}
		}
	}
	p.book[m.Index] = cur
	for _, pid := range cur.Pids {
		p.pidToMember[pid] = m.Index
		if parked := p.pendingPid[pid]; len(parked) > 0 {
			release = append(release, parked...)
			delete(p.pendingPid, pid)
		}
	}
	p.mu.Unlock()
	for _, env := range release {
		p.route(env)
	}
}

// Book returns a sorted copy of the address book.
func (p *Peer) Book() []wire.MemberInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bookLocked()
}

func (p *Peer) bookLocked() []wire.MemberInfo {
	out := make([]wire.MemberInfo, 0, len(p.book))
	for _, m := range p.book {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// BroadcastBook pushes the current book to every known member, opening
// links as needed (the seed calls it when a member joins, so everyone
// learns the newcomer's address before protocol traffic names it).
func (p *Peer) BroadcastBook() {
	p.mu.Lock()
	book := p.bookLocked()
	p.mu.Unlock()
	for _, m := range book {
		if m.Index == p.opts.Index {
			continue
		}
		p.linkTo(m.Index).send(wire.BookUpdate{Book: book})
	}
}

// ---- Links ----

func (p *Peer) linkTo(idx int32) *link {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.links[idx]; ok {
		return l
	}
	l := &link{idx: idx, out: make(chan any, 1<<14), quit: make(chan struct{})}
	p.links[idx] = l
	go p.runLink(l)
	return l
}

func (l *link) send(frame any) {
	select {
	case l.out <- frame:
	case <-l.quit:
	}
}

// runLink owns one outbound connection: it dials (and redials) the target
// member and writes queued frames. The frame that hits a write error is
// retried on the fresh connection, so transient failures lose nothing.
func (p *Peer) runLink(l *link) {
	var conn *wire.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := 10 * time.Millisecond
	for {
		var frame any
		select {
		case <-l.quit:
			return
		case <-p.quit:
			return
		case frame = <-l.out:
		}
		for {
			if conn == nil {
				conn = p.dial(l)
				if conn == nil {
					return // shutting down
				}
			}
			err := conn.Write(frame)
			if err == nil {
				break
			}
			if errors.Is(err, wire.ErrEncode) {
				// Deterministic failure: retrying the same frame can never
				// succeed. Drop it — and restart the connection, because a
				// partial encode may have desynced the gob stream state
				// shared with the receiver.
				p.opts.Logf("tcp[%d]: dropping unencodable frame for member %d: %v", p.opts.Index, l.idx, err)
				conn.Close()
				conn = nil
				break
			}
			p.opts.Logf("tcp[%d]: link to member %d broke (%v); redialing", p.opts.Index, l.idx, err)
			conn.Close()
			conn = nil
			select {
			case <-time.After(backoff):
			case <-l.quit:
				return
			case <-p.quit:
				return
			}
		}
	}
}

// dial establishes a connection to member l.idx, performing the Hello
// exchange. It retries until it succeeds or the peer shuts down.
func (p *Peer) dial(l *link) *wire.Conn {
	backoff := 10 * time.Millisecond
	for {
		select {
		case <-l.quit:
			return nil
		case <-p.quit:
			return nil
		default:
		}
		p.mu.Lock()
		addr := p.book[l.idx].Addr
		p.mu.Unlock()
		if addr == "" {
			p.opts.Logf("tcp[%d]: no address for member %d yet", p.opts.Index, l.idx)
		} else if nc, err := net.DialTimeout("tcp", addr, 2*time.Second); err == nil {
			conn := wire.NewConn(nc)
			if err := conn.Write(wire.Hello{Kind: "peer", Me: p.Me(), Book: p.Book()}); err == nil {
				if ack, err := conn.Read(); err == nil {
					if ha, ok := ack.(wire.HelloAck); ok {
						p.SetBook(ha.Book)
						// Drain control frames (book updates) and detect close.
						go p.drainControl(conn)
						return conn
					}
				}
			}
			conn.Close()
		} else {
			p.opts.Logf("tcp[%d]: dial member %d (%s): %v", p.opts.Index, l.idx, addr, err)
		}
		select {
		case <-time.After(backoff):
		case <-l.quit:
			return nil
		case <-p.quit:
			return nil
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// drainControl consumes frames the remote pushes on a dialer-owned
// connection (address-book updates) until the connection closes.
func (p *Peer) drainControl(conn *wire.Conn) {
	for {
		v, err := conn.Read()
		if err != nil {
			return
		}
		if bu, ok := v.(wire.BookUpdate); ok {
			p.SetBook(bu.Book)
		}
	}
}

// AcceptPeer serves an inbound peer connection whose Hello the listener
// already consumed: it merges the dialer's book, acks with ours, and
// delivers inbound envelopes until the connection closes. Run it on the
// connection's goroutine.
func (p *Peer) AcceptPeer(conn *wire.Conn, hello wire.Hello) {
	p.AddMember(hello.Me)
	p.SetBook(hello.Book)
	if err := conn.Write(wire.HelloAck{Book: p.Book(), Index: p.opts.Index}); err != nil {
		conn.Close()
		return
	}
	for {
		v, err := conn.Read()
		if err != nil {
			conn.Close()
			return
		}
		switch m := v.(type) {
		case wire.Envelope:
			p.Do(func() { p.deliver(m) })
		case wire.BookUpdate:
			p.SetBook(m.Book)
		default:
			p.opts.Logf("tcp[%d]: unexpected peer frame %T", p.opts.Index, v)
		}
	}
}
